#include "obs/tracer.hpp"

#include <stdexcept>

namespace rtopex::obs {

Tracer::Tracer(unsigned num_tracks, std::size_t ring_capacity,
               std::size_t max_stored_events)
    : max_stored_(max_stored_events) {
  if (num_tracks == 0)
    throw std::invalid_argument("Tracer: need at least one track");
  if (ring_capacity == 0)
    throw std::invalid_argument("Tracer: ring_capacity must be positive");
  tracks_.reserve(num_tracks);
  for (unsigned i = 0; i < num_tracks; ++i)
    tracks_.push_back(std::make_unique<Track>(ring_capacity));
}

void Tracer::emit(const TraceEvent& ev) {
  Track& track = *tracks_.at(ev.core);
  if (!track.ring.try_push(ev))
    track.drops.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Tracer::collect() {
  std::size_t moved = 0;
  for (auto& track : tracks_) {
    while (auto ev = track->ring.try_pop()) {
      if (store_.events.size() < max_stored_) {
        store_.events.push_back(*ev);
        ++moved;
      } else {
        ++store_.store_drops;
      }
    }
  }
  return moved;
}

std::uint64_t Tracer::drops(unsigned track) const {
  return tracks_.at(track)->drops.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::total_ring_drops() const {
  std::uint64_t total = 0;
  for (const auto& track : tracks_)
    total += track->drops.load(std::memory_order_relaxed);
  return total;
}

const TraceStore& Tracer::store() const {
  refresh_drops();
  return store_;
}

TraceStore Tracer::take() {
  collect();
  refresh_drops();
  TraceStore out = std::move(store_);
  store_ = TraceStore{};
  return out;
}

void Tracer::refresh_drops() const {
  store_.ring_drops_per_track.resize(tracks_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const std::uint64_t d = tracks_[i]->drops.load(std::memory_order_relaxed);
    store_.ring_drops_per_track[i] = d;
    total += d;
  }
  store_.ring_drops = total;
}

std::string describe_trace_drops(const TraceStore& store) {
  if (store.total_drops() == 0) return "";
  std::string out = "trace lost " + std::to_string(store.total_drops()) +
                    " events (" + std::to_string(store.ring_drops) +
                    " ring, " + std::to_string(store.store_drops) + " store";
  bool first = true;
  for (std::size_t t = 0; t < store.ring_drops_per_track.size(); ++t) {
    if (store.ring_drops_per_track[t] == 0) continue;
    out += first ? "; ring drops by track: " : ", ";
    out += std::to_string(t) + "=" +
           std::to_string(store.ring_drops_per_track[t]);
    first = false;
  }
  out += ")";
  return out;
}

}  // namespace rtopex::obs
