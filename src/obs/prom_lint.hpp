// Prometheus text-exposition-format linter: a dependency-free validator of
// the output MetricsRegistry::render() produces (and of any .prom snapshot
// a run writes), strict enough to catch the classic malformations a real
// scrape would reject or silently misread — bad metric/label names,
// unescaped label values, interleaved metric families, duplicate series,
// non-cumulative or +Inf-less histograms. Used by the format-lint tests
// and the CI health smoke.
#pragma once

#include <string>
#include <vector>

namespace rtopex::obs {

/// Validates a full text exposition. Returns every problem found as a
/// human-readable "line N: ..." message; an empty vector means the text is
/// well-formed.
std::vector<std::string> lint_prometheus_text(const std::string& text);

}  // namespace rtopex::obs
