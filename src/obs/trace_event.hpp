// Trace-event vocabulary shared by the virtual-time simulator and the
// real-thread runtime. One TraceEvent is a fixed-size POD stamped with a
// nanosecond timestamp (virtual or wall-clock, depending on the substrate),
// the core (track) it happened on, and an event kind with two kind-specific
// payload words — small enough to push through a lock-free ring on the hot
// path without allocation.
#pragma once

#include <cstdint>

#include "common/time_types.hpp"

namespace rtopex::obs {

/// Processing stage an event refers to (kNone for whole-subframe events).
enum class Stage : std::uint8_t {
  kNone = 0,
  kFft = 1,
  kDemod = 2,
  kDecode = 3,
};

inline constexpr unsigned kNumStages = 4;

enum class EventKind : std::uint8_t {
  kSubframeBegin = 0,  ///< worker starts a subframe (span open).
  kSubframeEnd,        ///< span close; a = 1 when the deadline was missed.
  kStageBegin,         ///< stage span open (stage field set).
  kStageEnd,           ///< stage span close.
  kOffload,            ///< migrator placed a chunk; a = target core, b = count.
  kHostBegin,          ///< host starts a migrated chunk; a = source core.
  kHostEnd,            ///< host finished/preempted the chunk; b = completed.
  kRecovery,           ///< migrator re-executed subtasks locally; b = count.
  kWatchdogFire,       ///< watchdog declared a core dead; a = dead core.
  kDegrade,            ///< decode admitted below full quality; a = cap.
  kGapBegin,           ///< idle gap opens on a core (virtual time only).
  kGapEnd,             ///< idle gap closes.
  kDrop,               ///< slack check rejected the subframe.
  kTerminate,          ///< execution was cut at the deadline.
  kLost,               ///< fronthaul loss: subframe never arrived.
  kLate,               ///< arrived after its deadline had passed; a = ns late.
  kArrival,            ///< fronthaul delivery; a = deadline - arrival (ns,
                       ///< clamped at 0), b = arrival - radio_time (ns).
  kJobSpec,            ///< workload-capture record for the what-if replayer:
                       ///< ts = radio time, a = field id, b = field value
                       ///< (see obs/analysis/replay.hpp). Ignored by the
                       ///< postmortem analyzer.
  kShed,               ///< cluster admission control dropped the subframe at
                       ///< ingress; ts = arrival, a = deadline - arrival (ns,
                       ///< clamped at 0), b = arrival - radio_time (ns) —
                       ///< kArrival's payload shape, so the analyzer can
                       ///< place the subframe without a kArrival of its own.
  kRehome,             ///< cluster control plane dispatched the subframe to a
                       ///< node other than its basestation's original home
                       ///< (failure re-homing); ts = arrival, a = new node,
                       ///< b = original node.
  kAlert,              ///< health rule fired (obs/health): ts = evaluation
                       ///< boundary, index = rule id, bs = scope id,
                       ///< a = severity | (scope kind << 8), b = the windowed
                       ///< statistic that tripped the rule x1000 (burn rate
                       ///< in SLO multiples, or |z| for anomaly rules).
  kAlertClear,         ///< the same rule/scope dropped back below its clear
                       ///< threshold for the hold period; payload mirrors
                       ///< kAlert with b = the statistic at clear time.
};

// Payload conventions consumed by the postmortem analyzer (obs/analysis):
//  * kArrival stamps ts = arrival and carries the deadline (a) and the
//    transport delay (b) in-band, so the analyzer never guesses either.
//  * kStageBegin carries the stage-duration estimate the admission logic
//    used in `a` (ns, clamped to 32 bits — far above the 2 ms budget); for
//    the decode stage `b` is the turbo-iteration count that estimate
//    assumed (Lm under WCET admission, 1 under optimistic, the cap when
//    degraded).
//  * kSubframeEnd carries `a` = 1 on a deadline miss and `b` = the turbo
//    iterations actually executed (0 when the decode never ran).
//  * kAlert / kAlertClear are emitted by the health engine (obs/health), not
//    the schedulers: the analyzer collects them into per-alert windows and
//    links each to the miss causes active inside it.
//  * kJobSpec is not consumed by the analyzer at all: it carries one field
//    of the offered workload (costs, iteration counts, deadlines) so the
//    what-if replayer can rebuild the exact per-subframe job the scheduler
//    saw. The field-id vocabulary lives in obs/analysis/replay.hpp.

/// Compact fixed-size trace record. `core` doubles as the ring/track index;
/// non-core producers (the transport ticker) use a dedicated extra track.
struct TraceEvent {
  TimePoint ts = 0;          ///< nanoseconds (virtual or since run start).
  std::uint32_t bs = 0;      ///< basestation id (0 when not applicable).
  std::uint32_t index = 0;   ///< subframe index within the basestation.
  std::uint32_t a = 0;       ///< kind-specific (target core, cap, ...).
  std::uint32_t b = 0;       ///< kind-specific (subtask count, ...).
  std::uint32_t core = 0;    ///< track the event belongs to.
  EventKind kind = EventKind::kSubframeBegin;
  Stage stage = Stage::kNone;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

const char* to_string(EventKind kind);
const char* to_string(Stage stage);

/// Saturates a nanosecond duration into a 32-bit payload word. Negative
/// values clamp to 0, values past 2^32-1 ns (~4.3 s, far above any
/// per-subframe quantity) to the maximum.
inline std::uint32_t clamp_payload_ns(std::int64_t ns) {
  if (ns <= 0) return 0;
  if (ns >= 0xffffffffLL) return 0xffffffffu;
  return static_cast<std::uint32_t>(ns);
}

}  // namespace rtopex::obs
