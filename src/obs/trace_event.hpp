// Trace-event vocabulary shared by the virtual-time simulator and the
// real-thread runtime. One TraceEvent is a fixed-size POD stamped with a
// nanosecond timestamp (virtual or wall-clock, depending on the substrate),
// the core (track) it happened on, and an event kind with two kind-specific
// payload words — small enough to push through a lock-free ring on the hot
// path without allocation.
#pragma once

#include <cstdint>

#include "common/time_types.hpp"

namespace rtopex::obs {

/// Processing stage an event refers to (kNone for whole-subframe events).
enum class Stage : std::uint8_t {
  kNone = 0,
  kFft = 1,
  kDemod = 2,
  kDecode = 3,
};

inline constexpr unsigned kNumStages = 4;

enum class EventKind : std::uint8_t {
  kSubframeBegin = 0,  ///< worker starts a subframe (span open).
  kSubframeEnd,        ///< span close; a = 1 when the deadline was missed.
  kStageBegin,         ///< stage span open (stage field set).
  kStageEnd,           ///< stage span close.
  kOffload,            ///< migrator placed a chunk; a = target core, b = count.
  kHostBegin,          ///< host starts a migrated chunk; a = source core.
  kHostEnd,            ///< host finished/preempted the chunk; b = completed.
  kRecovery,           ///< migrator re-executed subtasks locally; b = count.
  kWatchdogFire,       ///< watchdog declared a core dead; a = dead core.
  kDegrade,            ///< decode admitted below full quality; a = cap.
  kGapBegin,           ///< idle gap opens on a core (virtual time only).
  kGapEnd,             ///< idle gap closes.
  kDrop,               ///< slack check rejected the subframe.
  kTerminate,          ///< execution was cut at the deadline.
  kLost,               ///< fronthaul loss: subframe never arrived.
  kLate,               ///< arrived after its deadline had passed.
};

/// Compact fixed-size trace record. `core` doubles as the ring/track index;
/// non-core producers (the transport ticker) use a dedicated extra track.
struct TraceEvent {
  TimePoint ts = 0;          ///< nanoseconds (virtual or since run start).
  std::uint32_t bs = 0;      ///< basestation id (0 when not applicable).
  std::uint32_t index = 0;   ///< subframe index within the basestation.
  std::uint32_t a = 0;       ///< kind-specific (target core, cap, ...).
  std::uint32_t b = 0;       ///< kind-specific (subtask count, ...).
  std::uint32_t core = 0;    ///< track the event belongs to.
  EventKind kind = EventKind::kSubframeBegin;
  Stage stage = Stage::kNone;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

const char* to_string(EventKind kind);
const char* to_string(Stage stage);

}  // namespace rtopex::obs
