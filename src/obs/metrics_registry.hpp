// Prometheus-text-format metrics snapshot. The registry is a passive
// container: producers (scheduler, runtime, resilience, transport layers)
// fill it with counter/gauge/histogram samples at snapshot time and
// render() emits the text exposition format, suitable for a textfile
// collector, a bench sidecar file next to its CSVs, or plain stdout.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace rtopex::obs {

class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void add_counter(const std::string& name, const std::string& help,
                   double value, const Labels& labels = {});
  void add_gauge(const std::string& name, const std::string& help,
                 double value, const Labels& labels = {});
  /// Rendered as the native Prometheus histogram type: cumulative
  /// `_bucket{le="..."}` series over the histogram's log-scale bucket
  /// upper edges, plus `_sum` and `_count`.
  void add_histogram(const std::string& name, const std::string& help,
                     const Histogram& histogram, const Labels& labels = {});

  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Appends every sample from `other`, adding `extra_labels` to each (an
  /// extra key already present on a sample overrides its value). This is
  /// the federation primitive: merge per-node registries into one fleet
  /// snapshot with {node="N"} labels keeping the series distinct.
  void merge(const MetricsRegistry& other, const Labels& extra_labels = {});

  /// Prometheus text exposition format. Samples sharing a metric name are
  /// rendered contiguously under one # HELP / # TYPE header (first help
  /// string and type win), regardless of insertion order — interleaved
  /// families are invalid expositions.
  std::string render() const;

  /// render() to a file (truncates). Throws std::runtime_error on failure.
  void write(const std::string& path) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type;
    std::string name;
    std::string help;
    Labels labels;
    double value = 0.0;    ///< counter/gauge only.
    Histogram histogram;   ///< histogram only.
  };

  static void render_entry(std::string& out, const Entry& e);

  std::vector<Entry> entries_;
};

}  // namespace rtopex::obs
