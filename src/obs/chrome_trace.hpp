// Trace exporters: Chrome trace-event JSON (loads directly in
// chrome://tracing and ui.perfetto.dev) and a flat numeric CSV dump via
// common/csv. The JSON view renders one track per core, subframe and stage
// processing as nested spans, resilience events as instants, and
// migrations as flow arrows from the offloading core to the host core.
#pragma once

#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace rtopex::obs {

struct ChromeTraceOptions {
  std::string process_name = "rtopex";
  /// Tracks below this index are named "core N", tracks at or above it
  /// "ticker N" (the runtime's extra non-worker track). 0 names every
  /// track "core N".
  unsigned num_cores = 0;

  /// Optional process grouping for merged multi-node traces: each entry
  /// becomes one Perfetto process (pid = entry index) owning the
  /// half-open track range [first_track, first_track + num_tracks), with
  /// process_name metadata and tracks named "core K" relative to the
  /// range. Tracks no group claims (the cluster control / health tracks)
  /// fall into a final process named `process_name`. Empty = the flat
  /// single-process layout.
  struct ProcessGroup {
    std::string name;
    unsigned first_track = 0;
    unsigned num_tracks = 0;
  };
  std::vector<ProcessGroup> processes;

  /// Perfetto counter tracks ("C"-phase events): each entry renders as one
  /// named counter lane with a value sample per point. The profiler's
  /// counter_tracks() builds per-core IPC / cache-miss lanes from its span
  /// stream; any other producer can add lanes the same way.
  struct CounterTrack {
    std::string name;
    std::vector<std::pair<TimePoint, double>> points;  ///< (ts_ns, value).
  };
  std::vector<CounterTrack> counters;
};

/// Serializes a drained TraceStore as Chrome trace-event JSON. Events are
/// sorted by timestamp, so per-track timestamps in the output are monotone.
/// Timestamps are emitted in microseconds (the format's unit) at nanosecond
/// resolution.
std::string chrome_trace_json(const TraceStore& store,
                              const ChromeTraceOptions& options = {});

/// chrome_trace_json() to a file (truncates). Throws std::runtime_error on
/// I/O failure.
void write_chrome_trace(const std::string& path, const TraceStore& store,
                        const ChromeTraceOptions& options = {});

/// Flat numeric CSV (ts_ns, core, kind, stage, bs, index, a, b) — one row
/// per event, kinds/stages as their enum codes, via common/csv. The header
/// names the format version in its first column ("ts_ns_v3"). After the
/// events come optional per-track ring-drop rows (kind =
/// kTraceCsvTrackDropsKind: core = track, a = that ring's drop count), and
/// the last row is always a footer sentinel (kind = kTraceCsvFooterKind)
/// carrying the event count and the total ring/store drop counters, so
/// truncated files are detectable on load.
void write_trace_csv(const std::string& path, const TraceStore& store);

/// Kind code reserved for the trace-CSV footer row; never a real event.
inline constexpr unsigned kTraceCsvFooterKind = 255;
/// Kind code reserved for v3 per-track ring-drop rows; never a real event.
inline constexpr unsigned kTraceCsvTrackDropsKind = 254;

}  // namespace rtopex::obs
