#include "obs/metrics_registry.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>

namespace rtopex::obs {
namespace {

std::string format_value(double v) {
  char buf[64];
  // Integral values print without a fractional part (counter-friendly).
  if (v == static_cast<double>(static_cast<long long>(v)))
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  else
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// HELP text escaping differs from label values: only backslash and newline
// are escaped (quotes are legal in help text).
std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string render_labels(const MetricsRegistry::Labels& labels,
                          const std::string& extra_key = "",
                          const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    out += k + "=\"" + escape_label(v) + "\"";
    first = false;
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void MetricsRegistry::add_counter(const std::string& name,
                                  const std::string& help, double value,
                                  const Labels& labels) {
  entries_.push_back({Type::kCounter, name, help, labels, value, {}});
}

void MetricsRegistry::add_gauge(const std::string& name,
                                const std::string& help, double value,
                                const Labels& labels) {
  entries_.push_back({Type::kGauge, name, help, labels, value, {}});
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    const std::string& help,
                                    const Histogram& histogram,
                                    const Labels& labels) {
  entries_.push_back({Type::kHistogram, name, help, labels, 0.0, histogram});
}

void MetricsRegistry::merge(const MetricsRegistry& other,
                            const Labels& extra_labels) {
  for (Entry e : other.entries_) {
    for (const auto& [key, value] : extra_labels) {
      bool replaced = false;
      for (auto& [k, v] : e.labels)
        if (k == key) {
          v = value;
          replaced = true;
          break;
        }
      if (!replaced) e.labels.push_back({key, value});
    }
    entries_.push_back(std::move(e));
  }
}

std::string MetricsRegistry::render() const {
  // Group samples by metric name (first-appearance order): the text format
  // requires every line of one metric family to be contiguous.
  std::vector<std::string> name_order;
  std::set<std::string> seen;
  for (const Entry& e : entries_)
    if (seen.insert(e.name).second) name_order.push_back(e.name);

  std::string out;
  for (const std::string& name : name_order) {
    bool header_done = false;
    for (const Entry& e : entries_) {
      if (e.name != name) continue;
      if (!header_done) {
        out += "# HELP " + e.name + " " + escape_help(e.help) + "\n";
        out += "# TYPE " + e.name + " ";
        out += e.type == Type::kCounter
                   ? "counter"
                   : e.type == Type::kGauge ? "gauge" : "histogram";
        out += "\n";
        header_done = true;
      }
      render_entry(out, e);
    }
  }
  return out;
}

void MetricsRegistry::render_entry(std::string& out, const Entry& e) {
  if (e.type != Type::kHistogram) {
    out += e.name + render_labels(e.labels) + " " + format_value(e.value) +
           "\n";
    return;
  }
  const Histogram& h = e.histogram;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    // Empty buckets are skipped (log-scale histograms are sparse); the
    // cumulative +Inf bucket below always carries the full count.
    if (h.bucket(i) == 0) continue;
    cum += h.bucket(i);
    out += e.name + "_bucket" +
           render_labels(e.labels, "le", format_value(h.bucket_upper(i))) +
           " " + format_value(static_cast<double>(cum)) + "\n";
  }
  out += e.name + "_bucket" + render_labels(e.labels, "le", "+Inf") + " " +
         format_value(static_cast<double>(h.count())) + "\n";
  out += e.name + "_sum" + render_labels(e.labels) + " " +
         format_value(h.sum()) + "\n";
  out += e.name + "_count" + render_labels(e.labels) + " " +
         format_value(static_cast<double>(h.count())) + "\n";
}

void MetricsRegistry::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f)
    throw std::runtime_error("MetricsRegistry::write: cannot open " + path);
  const std::string text = render();
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (n != text.size())
    throw std::runtime_error("MetricsRegistry::write: short write to " + path);
}

}  // namespace rtopex::obs
