#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "common/csv.hpp"

namespace rtopex::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSubframeBegin: return "subframe_begin";
    case EventKind::kSubframeEnd: return "subframe_end";
    case EventKind::kStageBegin: return "stage_begin";
    case EventKind::kStageEnd: return "stage_end";
    case EventKind::kOffload: return "offload";
    case EventKind::kHostBegin: return "host_begin";
    case EventKind::kHostEnd: return "host_end";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kWatchdogFire: return "watchdog_fire";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kGapBegin: return "gap_begin";
    case EventKind::kGapEnd: return "gap_end";
    case EventKind::kDrop: return "drop";
    case EventKind::kTerminate: return "terminate";
    case EventKind::kLost: return "lost";
    case EventKind::kLate: return "late";
    case EventKind::kArrival: return "arrival";
    case EventKind::kJobSpec: return "job_spec";
    case EventKind::kShed: return "shed";
    case EventKind::kRehome: return "rehome";
    case EventKind::kAlert: return "alert";
    case EventKind::kAlertClear: return "alert_clear";
  }
  return "unknown";
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kNone: return "none";
    case Stage::kFft: return "fft";
    case Stage::kDemod: return "demod";
    case Stage::kDecode: return "decode";
  }
  return "unknown";
}

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

std::string ts_us(TimePoint ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ts_ns) / 1000.0);
  return buf;
}

/// Flow id shared by the offload ("s") and host ("f") halves of one
/// migration: both sides can derive it independently from the event.
std::string flow_id(const TraceEvent& ev, unsigned src, unsigned dst) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "bs%u.%u.%s.%u-%u", ev.bs, ev.index,
                to_string(ev.stage), src, dst);
  return buf;
}

void emit_event_json(std::string& out, const TraceEvent& ev, unsigned pid) {
  const std::string ts = ts_us(ev.ts);
  const unsigned tid = ev.core;
  switch (ev.kind) {
    case EventKind::kSubframeBegin:
      append(out,
             ",\n{\"name\":\"subframe bs%u\",\"cat\":\"subframe\",\"ph\":\"B\","
             "\"pid\":%u,\"tid\":%u,\"ts\":%s,\"args\":{\"bs\":%u,\"index\":%u}}",
             ev.bs, pid, tid, ts.c_str(), ev.bs, ev.index);
      break;
    case EventKind::kSubframeEnd:
      append(out,
             ",\n{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
             "\"args\":{\"missed\":%u}}",
             pid, tid, ts.c_str(), ev.a);
      break;
    case EventKind::kStageBegin:
      append(out,
             ",\n{\"name\":\"%s\",\"cat\":\"stage\",\"ph\":\"B\",\"pid\":%u,"
             "\"tid\":%u,\"ts\":%s,\"args\":{\"bs\":%u,\"index\":%u}}",
             to_string(ev.stage), pid, tid, ts.c_str(), ev.bs, ev.index);
      break;
    case EventKind::kStageEnd:
      append(out, ",\n{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,\"ts\":%s}", pid,
             tid, ts.c_str());
      break;
    case EventKind::kOffload: {
      // Instant on the migrator track plus the start half of the flow arrow
      // to the host core (ev.a); ev.b carries the subtask count.
      append(out,
             ",\n{\"name\":\"offload %s\",\"cat\":\"migration\",\"ph\":\"i\","
             "\"s\":\"t\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
             "\"args\":{\"bs\":%u,\"index\":%u,\"target\":%u,\"count\":%u}}",
             to_string(ev.stage), pid, tid, ts.c_str(), ev.bs, ev.index, ev.a,
             ev.b);
      append(out,
             ",\n{\"name\":\"migrate\",\"cat\":\"migration\",\"ph\":\"s\","
             "\"id\":\"%s\",\"pid\":%u,\"tid\":%u,\"ts\":%s}",
             flow_id(ev, tid, ev.a).c_str(), pid, tid, ts.c_str());
      break;
    }
    case EventKind::kHostBegin:
      // ev.a is the source (offloading) core; close the flow arrow here.
      append(out,
             ",\n{\"name\":\"host %s bs%u\",\"cat\":\"migration\","
             "\"ph\":\"B\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
             "\"args\":{\"bs\":%u,\"index\":%u,\"src\":%u}}",
             to_string(ev.stage), ev.bs, pid, tid, ts.c_str(), ev.bs, ev.index,
             ev.a);
      append(out,
             ",\n{\"name\":\"migrate\",\"cat\":\"migration\",\"ph\":\"f\","
             "\"bp\":\"e\",\"id\":\"%s\",\"pid\":%u,\"tid\":%u,\"ts\":%s}",
             flow_id(ev, ev.a, tid).c_str(), pid, tid, ts.c_str());
      break;
    case EventKind::kHostEnd:
      append(out,
             ",\n{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
             "\"args\":{\"completed\":%u}}",
             pid, tid, ts.c_str(), ev.b);
      break;
    case EventKind::kGapBegin:
      append(out,
             ",\n{\"name\":\"gap\",\"cat\":\"gap\",\"ph\":\"B\",\"pid\":%u,"
             "\"tid\":%u,\"ts\":%s}",
             pid, tid, ts.c_str());
      break;
    case EventKind::kGapEnd:
      append(out, ",\n{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,\"ts\":%s}", pid,
             tid, ts.c_str());
      break;
    default:
      // Everything else renders as a thread-scoped instant marker.
      append(out,
             ",\n{\"name\":\"%s\",\"cat\":\"marker\",\"ph\":\"i\","
             "\"s\":\"t\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
             "\"args\":{\"bs\":%u,\"index\":%u,\"stage\":\"%s\",\"a\":%u,"
             "\"b\":%u}}",
             to_string(ev.kind), pid, tid, ts.c_str(), ev.bs, ev.index,
             to_string(ev.stage), ev.a, ev.b);
      break;
  }
}

}  // namespace

std::string chrome_trace_json(const TraceStore& store,
                              const ChromeTraceOptions& options) {
  // Sort by timestamp so per-track timestamps in the file are monotone;
  // stable so same-timestamp events keep their per-track emission order
  // (collect() drains each ring in push order).
  std::vector<TraceEvent> events = store.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.ts < y.ts;
                   });

  std::set<unsigned> tracks;
  for (const TraceEvent& ev : events) tracks.insert(ev.core);

  // track -> Perfetto process: the claiming group's index, or one synthetic
  // trailing process (named process_name) for unclaimed tracks.
  const unsigned other_pid =
      static_cast<unsigned>(options.processes.size());
  auto pid_of = [&](unsigned track) {
    for (std::size_t g = 0; g < options.processes.size(); ++g) {
      const auto& p = options.processes[g];
      if (track >= p.first_track && track < p.first_track + p.num_tracks)
        return static_cast<unsigned>(g);
    }
    return other_pid;
  };

  std::string out = "{\"traceEvents\":[";
  append(out,
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
         "\"args\":{\"name\":\"%s\"}}",
         other_pid, options.process_name.c_str());
  for (std::size_t g = 0; g < options.processes.size(); ++g) {
    append(out,
           ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
           "\"args\":{\"name\":\"%s\"}}",
           static_cast<unsigned>(g), options.processes[g].name.c_str());
    append(out,
           ",\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%u,"
           "\"args\":{\"sort_index\":%u}}",
           static_cast<unsigned>(g), static_cast<unsigned>(g));
  }
  for (const unsigned t : tracks) {
    const unsigned pid = pid_of(t);
    // Grouped tracks are named relative to their process; the flat layout
    // keeps the core/ticker split on the global track id.
    std::string name;
    if (pid < other_pid) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "core %u",
                    t - options.processes[pid].first_track);
      name = buf;
    } else {
      const bool worker = options.num_cores == 0 || t < options.num_cores;
      name = (worker ? "core " : "ticker ") + std::to_string(t);
    }
    append(out,
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
           "\"args\":{\"name\":\"%s\"}}",
           pid, t, name.c_str());
    // sort_index keeps tracks in core order top-to-bottom in the UI.
    append(out,
           ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%u,"
           "\"tid\":%u,\"args\":{\"sort_index\":%u}}",
           pid, t, t);
  }
  // Counter tracks: one "C"-phase lane per entry, attached to the trailing
  // process so they render below the span tracks. Points are re-sorted by
  // timestamp — Perfetto requires monotone counter samples per lane.
  for (const auto& track : options.counters) {
    auto points = track.points;
    std::stable_sort(points.begin(), points.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    for (const auto& [ts, value] : points)
      append(out,
             ",\n{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\","
             "\"pid\":%u,\"ts\":%s,\"args\":{\"value\":%.6g}}",
             track.name.c_str(), other_pid, ts_us(ts).c_str(), value);
  }
  for (const TraceEvent& ev : events) emit_event_json(out, ev, pid_of(ev.core));
  append(out,
         "],\n\"otherData\":{\"event_count\":%llu,\"ring_drops\":%llu,"
         "\"store_drops\":%llu}}\n",
         static_cast<unsigned long long>(events.size()),
         static_cast<unsigned long long>(store.ring_drops),
         static_cast<unsigned long long>(store.store_drops));
  return out;
}

void write_chrome_trace(const std::string& path, const TraceStore& store,
                        const ChromeTraceOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f)
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  const std::string text = chrome_trace_json(store, options);
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (n != text.size())
    throw std::runtime_error("write_chrome_trace: short write to " + path);
}

void write_trace_csv(const std::string& path, const TraceStore& store) {
  CsvWriter csv(path);
  // Version-tagged header (v3): the first column name carries the format
  // version so the loader can reject files written by a future layout
  // instead of misreading them.
  csv.write_header(
      {"ts_ns_v3", "core", "kind", "stage", "bs", "index", "a", "b"});
  for (const TraceEvent& ev : store.events)
    csv.write_row({static_cast<double>(ev.ts), static_cast<double>(ev.core),
                   static_cast<double>(static_cast<unsigned>(ev.kind)),
                   static_cast<double>(static_cast<unsigned>(ev.stage)),
                   static_cast<double>(ev.bs), static_cast<double>(ev.index),
                   static_cast<double>(ev.a), static_cast<double>(ev.b)});
  // Per-track ring-drop rows (kind = 254): one row per track, so the
  // loaded store keeps the full per-ring loss breakdown. Zeros included —
  // the row count doubles as the track count.
  for (std::size_t t = 0; t < store.ring_drops_per_track.size(); ++t)
    csv.write_row({0.0, static_cast<double>(t),
                   static_cast<double>(kTraceCsvTrackDropsKind), 0.0, 0.0,
                   0.0,
                   static_cast<double>(clamp_payload_ns(static_cast<std::int64_t>(
                       store.ring_drops_per_track[t]))),
                   0.0});
  // Footer sentinel (kind = 255, never a real event): carries the event
  // count in the ts column plus the trace-loss counters, so a file whose
  // tail was cut off — even at a clean line boundary — fails loading
  // loudly instead of silently yielding a short stream.
  csv.write_row({static_cast<double>(store.events.size()), 0.0,
                 static_cast<double>(kTraceCsvFooterKind), 0.0, 0.0, 0.0,
                 static_cast<double>(clamp_payload_ns(
                     static_cast<std::int64_t>(store.ring_drops))),
                 static_cast<double>(clamp_payload_ns(
                     static_cast<std::int64_t>(store.store_drops)))});
}

}  // namespace rtopex::obs
