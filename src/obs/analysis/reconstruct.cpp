// Critical-path reconstruction: turns a flat event stream back into
// per-subframe timelines (arrival -> queue -> stages, with migrated chunks
// stitched back via the offload/host flow events) plus per-core busy/gap
// accounting. Attribution over the reconstructed paths lives in
// attribute.cpp.
#include <algorithm>
#include <map>

#include "obs/analysis/analysis.hpp"
#include "obs/analysis/internal.hpp"

namespace rtopex::obs::analysis {

namespace {

/// Events that belong to a core or to the run as a whole, never to one
/// subframe — grouping by (bs, index) must skip them (their bs/index
/// fields are zero, which is also a valid subframe identity; on alert
/// events they are a scope id and a rule id, not a subframe at all).
bool is_global_kind(EventKind kind) {
  switch (kind) {
    case EventKind::kGapBegin:
    case EventKind::kGapEnd:
    case EventKind::kWatchdogFire:
    case EventKind::kAlert:
    case EventKind::kAlertClear:
      return true;
    default:
      return false;
  }
}

unsigned stage_slot(Stage stage) {
  const unsigned s = static_cast<unsigned>(stage);
  return s < kNumStages ? s : 0;
}

}  // namespace

Reconstruction reconstruct(const TraceStore& store,
                           const AnalyzerOptions& options) {
  Reconstruction rec;
  rec.ring_drops = store.ring_drops;
  rec.store_drops = store.store_drops;
  if (store.events.empty()) return rec;

  // Single time-ordered view; the store interleaves per-track FIFO runs.
  // kJobSpec is workload-capture data for the what-if replayer, not an
  // observation — filtering it here (before the horizon computation and
  // the per-subframe grouping) keeps analyze() identical whether or not a
  // run captured its workload.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(store.events.size());
  for (const TraceEvent& ev : store.events)
    if (ev.kind != EventKind::kJobSpec) ordered.push_back(&ev);
  if (ordered.empty()) return rec;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });
  rec.horizon_begin = ordered.front()->ts;
  rec.horizon_end = ordered.back()->ts;

  // std::map keys keep subframes in deterministic (bs, index) order and
  // give stable iteration for the report regardless of track interleaving.
  std::map<std::uint64_t, SubframeAnalysis> subframes;
  auto slot = [&subframes](const TraceEvent& ev) -> SubframeAnalysis& {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ev.bs) << 32) | ev.index;
    SubframeAnalysis& sf = subframes[key];
    sf.bs = ev.bs;
    sf.index = ev.index;
    return sf;
  };

  // Decode-recovery markers (kRecovery carries the local-end timestamp;
  // the tail extends to the stage end, seen later) and open host spans,
  // keyed by (subframe, stage, source core, host core) so concurrent
  // migrations from different subframes never cross-stitch.
  std::map<std::uint64_t, TimePoint> recovery_at;
  struct HostKey {
    std::uint64_t subframe;
    unsigned stage;
    std::uint32_t src;
    std::uint32_t host;
    auto operator<=>(const HostKey&) const = default;
  };
  std::map<HostKey, TimePoint> open_hosts;
  std::map<unsigned, TimePoint> open_gaps;

  auto& cores = rec.core_usage;
  auto core_of = [&cores](unsigned id) -> CoreUsage& {
    CoreUsage& cu = cores[id];
    cu.core = id;
    return cu;
  };

  for (const TraceEvent* evp : ordered) {
    const TraceEvent& ev = *evp;
    switch (ev.kind) {
      case EventKind::kWatchdogFire:
        rec.watchdog_fires.push_back(ev.ts);
        break;
      case EventKind::kGapBegin:
        open_gaps[ev.core] = ev.ts;
        break;
      case EventKind::kGapEnd: {
        const auto it = open_gaps.find(ev.core);
        if (it != open_gaps.end()) {
          CoreUsage& cu = core_of(ev.core);
          ++cu.gaps;
          cu.gap_total_ns += std::max<Duration>(0, ev.ts - it->second);
          open_gaps.erase(it);
        }
        break;
      }
      case EventKind::kAlert: {
        AlertWindow w;
        w.rule = ev.index;
        w.severity = ev.a & 0xffu;
        w.scope_kind = ev.a >> 8;
        w.scope_id = ev.bs;
        w.fired_at = ev.ts;
        w.value = static_cast<double>(ev.b) / 1000.0;
        rec.alerts.push_back(w);
        break;
      }
      case EventKind::kAlertClear:
        // Close the oldest still-open window for this (rule, scope). The
        // health engine never overlaps windows per scope, so first-match
        // is exact; an unmatched clear (trace cut mid-run) is dropped.
        for (AlertWindow& w : rec.alerts) {
          if (w.cleared_at < 0 && w.rule == ev.index && w.scope_id == ev.bs &&
              w.scope_kind == ev.a >> 8) {
            w.cleared_at = ev.ts;
            break;
          }
        }
        break;
      default:
        break;
    }
    if (is_global_kind(ev.kind)) continue;

    SubframeAnalysis& sf = slot(ev);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ev.bs) << 32) | ev.index;
    switch (ev.kind) {
      case EventKind::kArrival:
        sf.arrival = ev.ts;
        sf.deadline = ev.ts + static_cast<Duration>(ev.a);
        sf.transport_ns = static_cast<Duration>(ev.b);
        sf.core = ev.core;
        break;
      case EventKind::kLost:
        sf.lost = true;
        sf.radio_time = ev.ts;
        break;
      case EventKind::kLate:
        sf.late = true;
        sf.missed = true;
        sf.arrival = ev.ts;
        sf.deadline = ev.ts - static_cast<Duration>(ev.a);
        sf.transport_ns = static_cast<Duration>(ev.b);
        break;
      case EventKind::kSubframeBegin:
        sf.start = ev.ts;
        sf.core = ev.core;
        break;
      case EventKind::kSubframeEnd:
        sf.end = ev.ts;
        if (ev.a) sf.missed = true;
        sf.iterations_executed = ev.b;
        break;
      case EventKind::kStageBegin: {
        StageTiming& st = sf.stages[stage_slot(ev.stage)];
        st.begin = ev.ts;
        st.expected = static_cast<Duration>(ev.a);
        if (ev.stage == Stage::kDecode) sf.iterations_estimated = ev.b;
        break;
      }
      case EventKind::kStageEnd:
        sf.stages[stage_slot(ev.stage)].end = ev.ts;
        break;
      case EventKind::kOffload:
        ++sf.offloads;
        break;
      case EventKind::kHostBegin:
        open_hosts[{key, stage_slot(ev.stage), ev.a, ev.core}] = ev.ts;
        break;
      case EventKind::kHostEnd: {
        const auto it =
            open_hosts.find({key, stage_slot(ev.stage), ev.a, ev.core});
        if (it != open_hosts.end()) {
          core_of(ev.core).host_busy_ns +=
              std::max<Duration>(0, ev.ts - it->second);
          open_hosts.erase(it);
        }
        break;
      }
      case EventKind::kRecovery: {
        // Keep the earliest marker: the recovery tail runs from there to
        // the stage end.
        const auto [it, inserted] = recovery_at.try_emplace(
            (key << 2) | stage_slot(ev.stage), ev.ts);
        if (!inserted) it->second = std::min(it->second, ev.ts);
        break;
      }
      case EventKind::kDegrade:
        sf.degraded = true;
        break;
      case EventKind::kDrop:
        sf.dropped = true;
        sf.missed = true;
        sf.missed_stage = ev.stage;
        sf.end = ev.ts;
        sf.core = ev.core;
        break;
      case EventKind::kTerminate:
        sf.terminated = true;
        sf.missed = true;
        sf.missed_stage = ev.stage;
        break;
      case EventKind::kShed:
        // Cluster-ingress drop: carries kArrival's payload shape (the
        // subframe never reaches a node, so no kArrival follows). The span
        // ends where it began — the subframe consumed no processing time.
        sf.shed = true;
        sf.dropped = true;
        sf.missed = true;
        sf.arrival = ev.ts;
        sf.deadline = ev.ts + static_cast<Duration>(ev.a);
        sf.transport_ns = static_cast<Duration>(ev.b);
        sf.end = ev.ts;
        sf.core = ev.core;
        break;
      case EventKind::kRehome:
        sf.rehomed = true;
        break;
      default:
        break;
    }
  }

  // Finalize each subframe: synthesize what older traces omit, derive the
  // queue wait and end-of-path slack, and fold recovery markers into the
  // owning stage.
  rec.subframes.reserve(subframes.size());
  for (auto& [key, sf] : subframes) {
    if (!sf.lost) {
      if (sf.arrival < 0 && sf.start >= 0) {
        // Pre-kArrival trace: no delivery metadata. Assume zero queueing
        // and the full budget from the processing start.
        sf.arrival = sf.start;
        sf.deadline = sf.start + options.budget;
        sf.transport_ns = options.nominal_transport;
      }
      if (sf.arrival >= 0) sf.radio_time = sf.arrival - sf.transport_ns;
      if (sf.start >= 0 && sf.arrival >= 0)
        sf.queue_ns = std::max<Duration>(0, sf.start - sf.arrival);
      if (sf.end < 0) {
        // Span never closed (truncated trace): treat the last stage end —
        // or the start — as the end so downstream math stays finite.
        TimePoint last = sf.start;
        for (const StageTiming& st : sf.stages)
          if (st.end > last) last = st.end;
        sf.end = last >= 0 ? last : sf.arrival;
      }
      for (unsigned s = 0; s < kNumStages; ++s) {
        const auto it = recovery_at.find((key << 2) | s);
        if (it == recovery_at.end()) continue;
        StageTiming& st = sf.stages[s];
        if (st.present())
          st.recovery_ns = std::max<Duration>(0, st.end - it->second);
      }
      if (sf.deadline >= 0 && sf.end >= 0) sf.slack_ns = sf.deadline - sf.end;
      if (sf.start >= 0 && sf.end >= sf.start) {
        CoreUsage& cu = core_of(sf.core);
        ++cu.subframes;
        cu.busy_ns += sf.end - sf.start;
      }
    }
    rec.subframes.push_back(std::move(sf));
  }
  return rec;
}

}  // namespace rtopex::obs::analysis
