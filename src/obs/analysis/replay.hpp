// What-if trace replay engine (ROADMAP item 5): inverts the postmortem
// analyzer into a counterfactual evaluator. A run that captured its
// offered workload (capture_workload: one kJobSpec event per field per
// subframe, riding in the ordinary trace stream and surviving the CSV
// export) can be re-run through ANY sim scheduler/config in virtual time
// — "would RT-OPEX have saved these misses?" — and the two postmortem
// reports diffed per cause.
//
// Correctness anchor: *self-replay identity*. Replaying a captured trace
// under its own original scheduler/config reproduces the original
// per-cause miss counts exactly, because the capture carries the full
// ground truth of every SubframeWork (sampled costs, iteration draws,
// fault flags, arrival/deadline offsets) and the sim is deterministic.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "obs/analysis/analysis.hpp"
#include "sched/global.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"

namespace rtopex::obs::analysis {

/// Field vocabulary of kJobSpec events (TraceEvent.a = field id,
/// TraceEvent.b = value, ts = the subframe's radio time). kMeta opens each
/// subframe's record; the remaining fields follow on the same track.
/// Durations are nanoseconds clamped to 32 bits (far above any
/// per-subframe quantity); times are offsets from the radio time so they
/// fit the payload word. The WCET subtask *counts* equal the actual-cost
/// counts (the model derives both from the same MCS), so only the
/// per-subtask durations are carried twice.
enum class JobSpecField : std::uint32_t {
  kMeta = 0,          ///< mcs | lm << 8 | decodable << 16 | lost << 17.
  kIterations,        ///< sampled turbo iterations L.
  kArrivalOffsetNs,   ///< arrival - radio_time.
  kDeadlineOffsetNs,  ///< deadline - radio_time.
  kFftNs,             ///< costs.fft.
  kDemodNs,           ///< costs.demod.
  kDecodeNs,          ///< costs.decode (includes the jitter draw).
  kFftSubtasks,       ///< costs.fft_subtasks == wcet.fft_subtasks.
  kFftSubtaskNs,      ///< costs.fft_subtask.
  kDecodeSubtasks,    ///< costs.decode_subtasks == wcet.decode_subtasks.
  kDecodeSubtaskNs,   ///< costs.decode_subtask.
  kWcetFftNs,         ///< wcet.fft.
  kWcetDemodNs,       ///< wcet.demod.
  kWcetDecodeNs,      ///< wcet.decode.
  kWcetFftSubtaskNs,  ///< wcet.fft_subtask.
  kWcetDecodeSubtaskNs,  ///< wcet.decode_subtask.
  kDecodeOptimisticNs,   ///< decode_optimistic (L = 1 bound).
};

inline constexpr unsigned kNumJobSpecFields = 17;

/// Emits the full ground truth of `work` as kJobSpec events on `track`
/// (the sim is single-threaded, so any track is a legal producer) and
/// drains the tracer periodically so the capture never overflows a ring.
/// Call before (or after) the scheduler runs over the same tracer — the
/// analyzer ignores kJobSpec, so analyze() output is unaffected.
void capture_workload(Tracer& tracer, std::span<const sim::SubframeWork> work,
                      unsigned track = 0);

/// Rebuilds the offered workload from a captured trace (store order, which
/// preserves the generator's arrival-sorted order). Returns an empty
/// vector when the trace carries no kJobSpec events; throws
/// std::runtime_error on a malformed capture (field before its kMeta).
std::vector<sim::SubframeWork> recover_workload(const TraceStore& store);

/// Scheduler/config to re-run a workload under, in virtual time.
struct ReplayConfig {
  enum class Policy { kPartitioned, kGlobal, kRtOpex };
  Policy policy = Policy::kPartitioned;
  sched::PartitionedConfig partitioned;
  sched::GlobalConfig global;
  sched::RtOpexConfig rtopex;
  /// 0: derived from the workload (max bs + 1).
  unsigned num_basestations = 0;
  /// Tracer sizing for the virtual re-run.
  std::size_t ring_capacity = 1 << 15;
  std::size_t max_stored_events = 4 << 20;
  /// Postmortem options for the replayed trace (pass the config's RTT/2 as
  /// nominal_transport for faithful cloud-tail attribution).
  AnalyzerOptions analyzer;
};

const char* to_string(ReplayConfig::Policy policy);

struct ReplayResult {
  AnalysisReport report;          ///< postmortem of the replayed run.
  sim::SchedulerMetrics metrics;  ///< scheduler metrics of the replayed run.
  std::string scheduler_name;
  unsigned num_cores = 0;
};

/// Re-runs `workload` under `config` in virtual time with a fresh tracer
/// and analyzes the resulting trace. The tracer embedded in the policy
/// configs is ignored (replay always uses its own).
ReplayResult replay(std::span<const sim::SubframeWork> workload,
                    const ReplayConfig& config);

/// recover_workload() + replay(). Throws std::runtime_error when the trace
/// carries no workload capture.
ReplayResult replay(const TraceStore& captured, const ReplayConfig& config);

/// Per-cause and headline-counter difference of two postmortem reports
/// (replayed - baseline). Horizon and utilization are excluded: they
/// depend on tracer wall-clock details, not scheduling outcomes.
struct ReportDelta {
  std::array<long long, kNumMissCauses> cause_delta{};
  long long subframes = 0;
  long long completed = 0;
  long long misses = 0;
  long long lost = 0;
  long long late = 0;
  long long dropped = 0;
  long long terminated = 0;
  long long degraded = 0;

  bool empty() const {
    for (const long long d : cause_delta)
      if (d != 0) return false;
    return subframes == 0 && completed == 0 && misses == 0 && lost == 0 &&
           late == 0 && dropped == 0 && terminated == 0 && degraded == 0;
  }
};

ReportDelta diff_reports(const AnalysisReport& baseline,
                         const AnalysisReport& replayed);

/// Single-line JSON rendering of a delta (cause names as keys).
std::string delta_json(const ReportDelta& delta);

}  // namespace rtopex::obs::analysis
