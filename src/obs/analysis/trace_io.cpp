// Reloads the flat CSV written by obs::write_trace_csv back into a
// TraceStore, so the analyzer (and the rtopex_analyze CLI) can run on an
// exported trace file long after the run that produced it.
//
// Format versions:
//  * v1 — header first column "ts_ns", no footer (pre-footer files; still
//    loadable, but truncation is undetectable).
//  * v2 — header first column "ts_ns_v2"; the last row is a footer sentinel
//    (kind = kTraceCsvFooterKind) carrying the event count and the
//    ring/store drop counters. A v2 file with a missing footer or a
//    mismatched count is rejected: its tail was cut off.
//  * v3 — header first column "ts_ns_v3"; between the events and the footer
//    sit per-track ring-drop rows (kind = kTraceCsvTrackDropsKind, core =
//    track, a = that ring's drops), restoring ring_drops_per_track on load.
#include <cmath>
#include <stdexcept>

#include "common/csv.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/chrome_trace.hpp"

namespace rtopex::obs::analysis {

namespace {

std::int64_t as_i64(double v) { return std::llround(v); }

std::uint32_t as_u32(double v) {
  const std::int64_t n = std::llround(v);
  if (n < 0 || n > 0xffffffffLL)
    throw std::runtime_error("load_trace_csv: field out of 32-bit range");
  return static_cast<std::uint32_t>(n);
}

}  // namespace

TraceStore load_trace_csv(const std::string& path) {
  CsvTable table = read_csv(path);

  // Version gate on the first header column. Headerless files (or files
  // whose first row parsed as data) are rejected outright — every version
  // of write_trace_csv has emitted a header.
  if (table.header.empty())
    throw std::runtime_error("load_trace_csv: missing header in " + path);
  const std::string& version = table.header.front();
  const bool v3 = version == "ts_ns_v3";
  const bool v2 = v3 || version == "ts_ns_v2";
  if (!v2 && version != "ts_ns")
    throw std::runtime_error("load_trace_csv: unknown trace CSV version \"" +
                             version + "\" in " + path);

  TraceStore store;
  if (v2) {
    // The footer must be the last row; anything else means the file lost
    // its tail (truncated download, interrupted writer, ...).
    if (table.rows.empty() || table.rows.back().size() != 8 ||
        as_u32(table.rows.back()[2]) != kTraceCsvFooterKind)
      throw std::runtime_error(
          "load_trace_csv: trace CSV footer missing (file truncated?): " +
          path);
    const std::vector<double>& footer = table.rows.back();
    const std::uint64_t expected = static_cast<std::uint64_t>(as_i64(footer[0]));
    store.ring_drops = as_u32(footer[6]);
    store.store_drops = as_u32(footer[7]);
    table.rows.pop_back();
    // v3: per-track ring-drop rows sit just before the footer.
    while (v3 && !table.rows.empty() && table.rows.back().size() == 8 &&
           as_u32(table.rows.back()[2]) == kTraceCsvTrackDropsKind) {
      const std::vector<double>& row = table.rows.back();
      const std::uint32_t track = as_u32(row[1]);
      if (store.ring_drops_per_track.size() <= track)
        store.ring_drops_per_track.resize(track + 1, 0);
      store.ring_drops_per_track[track] = as_u32(row[6]);
      table.rows.pop_back();
    }
    if (table.rows.size() != expected)
      throw std::runtime_error(
          "load_trace_csv: event count mismatch (footer says " +
          std::to_string(expected) + ", file has " +
          std::to_string(table.rows.size()) + "): " + path);
  }

  store.events.reserve(table.rows.size());
  for (const std::vector<double>& row : table.rows) {
    if (row.size() != 8)
      throw std::runtime_error("load_trace_csv: expected 8 columns in " +
                               path);
    TraceEvent ev;
    ev.ts = as_i64(row[0]);
    ev.core = as_u32(row[1]);
    const std::uint32_t kind = as_u32(row[2]);
    if (kind > static_cast<std::uint32_t>(EventKind::kAlertClear))
      throw std::runtime_error("load_trace_csv: unknown event kind in " +
                               path);
    ev.kind = static_cast<EventKind>(kind);
    const std::uint32_t stage = as_u32(row[3]);
    if (stage >= kNumStages)
      throw std::runtime_error("load_trace_csv: unknown stage in " + path);
    ev.stage = static_cast<Stage>(stage);
    ev.bs = as_u32(row[4]);
    ev.index = as_u32(row[5]);
    ev.a = as_u32(row[6]);
    ev.b = as_u32(row[7]);
    store.events.push_back(ev);
  }
  return store;
}

}  // namespace rtopex::obs::analysis
