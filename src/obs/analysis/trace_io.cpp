// Reloads the flat CSV written by obs::write_trace_csv back into a
// TraceStore, so the analyzer (and the rtopex_analyze CLI) can run on an
// exported trace file long after the run that produced it.
#include <cmath>
#include <stdexcept>

#include "common/csv.hpp"
#include "obs/analysis/analysis.hpp"

namespace rtopex::obs::analysis {

namespace {

std::int64_t as_i64(double v) { return std::llround(v); }

std::uint32_t as_u32(double v) {
  const std::int64_t n = std::llround(v);
  if (n < 0 || n > 0xffffffffLL)
    throw std::runtime_error("load_trace_csv: field out of 32-bit range");
  return static_cast<std::uint32_t>(n);
}

}  // namespace

TraceStore load_trace_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  TraceStore store;
  store.events.reserve(table.rows.size());
  for (const std::vector<double>& row : table.rows) {
    if (row.size() != 8)
      throw std::runtime_error("load_trace_csv: expected 8 columns in " +
                               path);
    TraceEvent ev;
    ev.ts = as_i64(row[0]);
    ev.core = as_u32(row[1]);
    const std::uint32_t kind = as_u32(row[2]);
    if (kind > static_cast<std::uint32_t>(EventKind::kArrival))
      throw std::runtime_error("load_trace_csv: unknown event kind in " +
                               path);
    ev.kind = static_cast<EventKind>(kind);
    const std::uint32_t stage = as_u32(row[3]);
    if (stage >= kNumStages)
      throw std::runtime_error("load_trace_csv: unknown stage in " + path);
    ev.stage = static_cast<Stage>(stage);
    ev.bs = as_u32(row[4]);
    ev.index = as_u32(row[5]);
    ev.a = as_u32(row[6]);
    ev.b = as_u32(row[7]);
    store.events.push_back(ev);
  }
  return store;
}

}  // namespace rtopex::obs::analysis
