// Deadline-miss postmortem engine. Consumes a drained trace stream (an
// obs::TraceStore, either live from a Tracer or reloaded from the flat CSV
// export) and reconstructs, for every subframe, the critical path from
// fronthaul delivery through queueing and the three processing stages —
// stitching migrated chunks back onto the owning subframe via the
// offload/host flow events — then attributes each deadline miss to exactly
// one cause from a fixed taxonomy.
//
// Attribution is deterministic: for a missed subframe the analyzer computes
// the *overage* of every critical-path component against the expectation
// the admission logic itself used (carried in-band on kArrival /
// kStageBegin payloads), and the dominant overage names the cause. Ties
// break in fixed component order (transport, queue, fft, demod, decode),
// so the same trace always yields the same report, bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"

namespace rtopex::model {
class TaskCostModel;
}

namespace rtopex::obs::analysis {

/// Fixed miss-cause taxonomy. The enum codes appear verbatim in the miss
/// report CSV, so existing entries keep their codes; new causes go at the
/// end (kUnknown moves last and kNumMissCauses follows).
enum class MissCause : std::uint8_t {
  kNone = 0,              ///< subframe met its deadline (or never arrived).
  kFronthaulLate,         ///< arrived after the deadline had already passed.
  kCloudTail,             ///< transport delay beyond the nominal fronthaul RTT.
  kDecodeOverrun,         ///< more turbo iterations than the admitted estimate.
  kMigrationRecovery,     ///< local re-execution tail after a failed offload.
  kQueueingBacklog,       ///< waited behind other subframes past its slack.
  kFailoverRepartition,   ///< queueing delay within the failover window of a
                          ///< watchdog fire (repartition backlog).
  kPlatformErrorSpike,    ///< a stage ran long versus its own estimate
                          ///< (platform jitter, not excess iterations).
  kNodeFailureRehoming,   ///< queueing delay on a basestation re-homed after
                          ///< a whole-node failure (survivor backlog).
  kClusterShed,           ///< dropped at cluster ingress by admission
                          ///< control (offered load exceeded surviving
                          ///< capacity).
  kUnknown,               ///< no component overran; trace too sparse.
};

inline constexpr unsigned kNumMissCauses = 11;

const char* to_string(MissCause cause);

/// One critical-path component of a subframe: transport, queue wait, or a
/// processing stage, with the expectation the admission logic used for it.
struct PathSegment {
  enum class Kind : std::uint8_t {
    kTransport = 0,
    kQueue,
    kFft,
    kDemod,
    kDecode,
  };
  Kind kind = Kind::kTransport;
  TimePoint begin = 0;
  TimePoint end = 0;
  Duration expected = 0;     ///< nominal / admitted duration, 0 for queue.
  Duration slack_after = 0;  ///< deadline - end at this boundary.

  Duration actual() const { return end - begin; }
  Duration overage() const {
    const Duration over = actual() - expected;
    return over > 0 ? over : 0;
  }
};

const char* to_string(PathSegment::Kind kind);

/// Reconstructed begin/end of one processing stage within a subframe.
struct StageTiming {
  TimePoint begin = -1;
  TimePoint end = -1;
  Duration expected = 0;      ///< admission estimate (kStageBegin.a).
  Duration recovery_ns = 0;   ///< tail spent re-executing offloaded subtasks.

  bool present() const { return begin >= 0 && end >= begin; }
  Duration actual() const { return present() ? end - begin : 0; }
};

/// Everything the analyzer reconstructed about one subframe.
struct SubframeAnalysis {
  std::uint32_t bs = 0;
  std::uint32_t index = 0;
  std::uint32_t core = 0;       ///< core that ran (or dropped) it.
  TimePoint radio_time = -1;    ///< arrival - transport_ns.
  TimePoint arrival = -1;
  TimePoint deadline = -1;
  TimePoint start = -1;         ///< kSubframeBegin timestamp.
  TimePoint end = -1;           ///< kSubframeEnd / kDrop timestamp.
  Duration transport_ns = 0;    ///< fronthaul delay (kArrival.b).
  Duration queue_ns = 0;        ///< start - arrival, clamped at 0.
  std::array<StageTiming, kNumStages> stages{};  ///< indexed by obs::Stage.
  std::uint32_t iterations_estimated = 0;  ///< decode admission assumption.
  std::uint32_t iterations_executed = 0;   ///< decode iterations actually run.
  unsigned offloads = 0;        ///< migrated chunks placed from this subframe.

  bool lost = false;        ///< never arrived (fronthaul loss).
  bool late = false;        ///< arrived past its deadline.
  bool missed = false;
  bool dropped = false;     ///< rejected by a slack check.
  bool shed = false;        ///< dropped at cluster ingress (kShed).
  bool rehomed = false;     ///< dispatched off its original node (kRehome).
  bool terminated = false;  ///< cut at the deadline mid-decode.
  bool degraded = false;    ///< admitted below full quality.
  Stage missed_stage = Stage::kNone;

  MissCause cause = MissCause::kNone;
  Duration dominant_over_ns = 0;  ///< overage of the attributed component.
  Duration slack_ns = 0;          ///< deadline - end (negative on a miss).
  /// Critical path with per-boundary slack; filled for misses, and for
  /// every subframe under AnalyzerOptions::keep_all_paths.
  std::vector<PathSegment> path;
};

/// Busy/idle accounting for one core over the trace horizon.
struct CoreUsage {
  unsigned core = 0;
  std::uint64_t subframes = 0;
  Duration busy_ns = 0;       ///< own subframe spans.
  Duration host_busy_ns = 0;  ///< hosted migrated chunks.
  std::uint64_t gaps = 0;     ///< explicit kGapBegin/kGapEnd pairs.
  Duration gap_total_ns = 0;
  double utilization = 0.0;   ///< (busy + host_busy) / trace horizon.
};

/// Per-basestation slack summary plus the slack trajectory over subframe
/// index (kept only under AnalyzerOptions::keep_trajectories).
struct BasestationSlack {
  std::uint32_t bs = 0;
  std::uint64_t subframes = 0;
  std::uint64_t misses = 0;
  Duration min_slack_ns = 0;
  double mean_slack_ns = 0.0;
  /// (subframe index, end-of-path slack in ns), index-ordered.
  std::vector<std::pair<std::uint32_t, Duration>> trajectory;
};

/// One alert interval reconstructed from kAlert / kAlertClear trace events
/// (emitted by the obs::health monitor), linked to the misses inside its
/// window. Fields mirror the raw on-trace encoding so the analyzer stays
/// independent of the health library.
struct AlertWindow {
  std::uint32_t rule = 0;        ///< health rule id (kAlert.index).
  std::uint32_t severity = 0;    ///< 1 = warn, 2 = page (kAlert.a & 0xff).
  std::uint32_t scope_kind = 0;  ///< 0 = cluster, 1 = node, 2 = basestation
                                 ///< (kAlert.a >> 8).
  std::uint32_t scope_id = 0;    ///< node / basestation id (kAlert.bs).
  TimePoint fired_at = -1;
  TimePoint cleared_at = -1;     ///< -1: still firing at end of trace.
  double value = 0.0;            ///< statistic at firing (kAlert.b / 1000).
  /// Misses whose subframe ended (or, never-executed, was due) inside
  /// [fired_at - alert_lookback, cleared_at] and match the alert's scope.
  std::uint64_t misses_in_window = 0;
  std::array<std::uint64_t, kNumMissCauses> cause_counts{};
  MissCause dominant_cause = MissCause::kNone;  ///< most-frequent cause.
};

struct AnalysisReport {
  std::uint64_t subframes = 0;   ///< reconstructed, including lost/late.
  std::uint64_t completed = 0;
  std::uint64_t misses = 0;
  std::uint64_t lost = 0;
  std::uint64_t late = 0;
  std::uint64_t dropped = 0;
  std::uint64_t terminated = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;     ///< cluster-ingress drops (subset of dropped).
  std::uint64_t rehomed = 0;  ///< subframes dispatched off their home node.
  std::array<std::uint64_t, kNumMissCauses> cause_counts{};
  std::vector<SubframeAnalysis> detail;  ///< sorted by (bs, index).
  std::vector<CoreUsage> cores;
  std::vector<BasestationSlack> per_bs;
  std::vector<AlertWindow> alerts;       ///< in firing order.
  TimePoint horizon_begin = 0;
  TimePoint horizon_end = 0;
  std::uint64_t ring_drops = 0;
  std::uint64_t store_drops = 0;

  double miss_rate() const {
    return subframes ? static_cast<double>(misses) /
                           static_cast<double>(subframes)
                     : 0.0;
  }
  std::uint64_t unknown() const {
    return cause_counts[static_cast<unsigned>(MissCause::kUnknown)];
  }
};

struct AnalyzerOptions {
  /// End-to-end deadline budget, used only when a trace predates kArrival
  /// events and deadlines must be synthesized from subframe starts.
  Duration budget = kEndToEndBudget;
  /// Expected one-way fronthaul delay; transport time beyond this is the
  /// cloud-tail overage. Benches pass their configured RTT/2.
  Duration nominal_transport = microseconds(500);
  /// Queueing delay within this window after a watchdog fire is blamed on
  /// the failover repartition rather than ordinary backlog.
  Duration failover_window = milliseconds(100);
  /// Overages at or below this threshold are noise, never a cause.
  Duration epsilon = microseconds(1);
  /// Keep the critical path for hit subframes too (memory-hungry).
  bool keep_all_paths = false;
  /// Record per-basestation slack trajectories (memory-hungry).
  bool keep_trajectories = false;
  /// Fallback stage-duration estimator for traces whose kStageBegin events
  /// carry no in-band estimate (a == 0): Eq. (1) stage costs at the given
  /// MCS. Null disables the fallback (expected = 0 then).
  const model::TaskCostModel* cost_model = nullptr;
  unsigned fallback_mcs = 27;
  unsigned fallback_iterations = 1;  ///< iteration count for the fallback.
  /// Misses ending within this span *before* an alert fired still count as
  /// inside its window: a burn-rate rule looks back over past traffic, so
  /// the misses that tripped it precede the firing edge. Default matches
  /// the health engine's slow-burn long window.
  Duration alert_lookback = milliseconds(120);
};

/// Reconstructs every subframe from the trace, attributes misses, and
/// aggregates per-core and per-basestation accounting.
AnalysisReport analyze(const TraceStore& store,
                       const AnalyzerOptions& options = {});

/// Reloads a TraceStore from the flat CSV written by write_trace_csv().
/// Throws std::runtime_error on I/O or format errors.
TraceStore load_trace_csv(const std::string& path);

/// One row per missed subframe: identity, reconstructed path times, and
/// the attributed cause (as its enum code — the file stays all-numeric).
void write_miss_report_csv(const std::string& path,
                           const AnalysisReport& report);

/// One row per analyzed subframe: bs, index, end-of-path slack, missed
/// flag, cause code. Requires keep_trajectories.
void write_slack_trajectory_csv(const std::string& path,
                                const AnalysisReport& report);

/// Single-line JSON summary: counts, miss rate, per-cause breakdown and
/// trace-loss counters.
std::string summary_json(const AnalysisReport& report);

/// Exposes the report through the Prometheus registry:
/// rtopex_analysis_subframes_total, rtopex_analysis_misses_total,
/// rtopex_analysis_miss_cause_total{cause=...}, per-core utilization
/// gauges and the end-of-path slack histogram.
void fill_registry(const AnalysisReport& report, MetricsRegistry& registry);

}  // namespace rtopex::obs::analysis
