// Root-cause attribution. For each missed subframe the analyzer walks the
// reconstructed critical path, computes every component's overage against
// the expectation the admission logic itself used, and blames the dominant
// one. The component -> cause mapping encodes the taxonomy:
//
//   arrival past deadline                  -> fronthaul_late
//   transport beyond the nominal fronthaul -> cloud_tail
//   queue wait, watchdog within window     -> failover_repartition
//   queue wait otherwise                   -> queueing_backlog
//   fft/demod beyond their estimates       -> platform_error_spike
//   decode recovery tail dominates         -> migration_recovery
//   decode rest, executed > admitted iters -> decode_overrun
//   decode rest otherwise (jitter)         -> platform_error_spike
//
// A dropped subframe whose components all ran at or under expectation was
// rejected purely for lack of budget; the largest absolute consumer
// (queue wait vs transport) is blamed instead, and only a subframe with no
// usable timing at all stays unknown. Pure integer comparisons with a
// fixed tie-break order keep the verdicts bit-identical across runs.
#include <algorithm>

#include "model/task_cost_model.hpp"
#include "obs/analysis/internal.hpp"

namespace rtopex::obs::analysis {

namespace {

/// Fallback stage estimate from the Eq. (1) cost model when the trace
/// carries none (pre-kArrival traces).
Duration model_expected(Stage stage, const AnalyzerOptions& options) {
  if (!options.cost_model) return 0;
  const model::SubframeCosts costs = options.cost_model->costs(
      options.fallback_mcs, options.fallback_iterations, 0);
  switch (stage) {
    case Stage::kFft: return costs.fft;
    case Stage::kDemod: return costs.demod;
    case Stage::kDecode: return costs.decode;
    default: return 0;
  }
}

PathSegment::Kind stage_segment_kind(Stage stage) {
  switch (stage) {
    case Stage::kFft: return PathSegment::Kind::kFft;
    case Stage::kDemod: return PathSegment::Kind::kDemod;
    default: return PathSegment::Kind::kDecode;
  }
}

bool watchdog_within(const Reconstruction& rec, TimePoint start,
                     Duration window) {
  // watchdog_fires is time-ordered: binary-search the window before start.
  const auto lo = std::lower_bound(rec.watchdog_fires.begin(),
                                   rec.watchdog_fires.end(), start - window);
  return lo != rec.watchdog_fires.end() && *lo <= start;
}

}  // namespace

void attribute(SubframeAnalysis& sf, const Reconstruction& rec,
               const AnalyzerOptions& options) {
  if (sf.lost) {
    sf.cause = MissCause::kNone;  // never arrived: not a processing miss.
    return;
  }
  if (sf.shed) {
    // Dropped at cluster ingress: admission control, not a node-side
    // component overrun — nothing downstream to attribute.
    sf.missed = true;
    sf.cause = MissCause::kClusterShed;
    sf.dominant_over_ns = 0;
    return;
  }
  if (sf.late || (sf.arrival >= 0 && sf.deadline >= 0 &&
                  sf.arrival > sf.deadline)) {
    sf.missed = true;
    sf.cause = MissCause::kFronthaulLate;
    sf.dominant_over_ns =
        sf.deadline >= 0 ? std::max<Duration>(0, sf.arrival - sf.deadline) : 0;
    return;
  }

  // Critical path with slack at every component boundary.
  sf.path.clear();
  auto push = [&sf](PathSegment::Kind kind, TimePoint begin, TimePoint end,
                    Duration expected) {
    sf.path.push_back({kind, begin, end, expected,
                       sf.deadline >= 0 ? sf.deadline - end : 0});
  };
  if (sf.radio_time >= 0 && sf.arrival >= sf.radio_time)
    push(PathSegment::Kind::kTransport, sf.radio_time, sf.arrival,
         options.nominal_transport);
  if (sf.arrival >= 0 && sf.start >= sf.arrival)
    push(PathSegment::Kind::kQueue, sf.arrival, sf.start, 0);
  for (unsigned s = 1; s < kNumStages; ++s) {
    const StageTiming& st = sf.stages[s];
    if (!st.present()) continue;
    const Stage stage = static_cast<Stage>(s);
    const Duration expected =
        st.expected > 0 ? st.expected : model_expected(stage, options);
    push(stage_segment_kind(stage), st.begin, st.end, expected);
  }

  if (!sf.missed) {
    sf.cause = MissCause::kNone;
    if (!options.keep_all_paths) sf.path.clear();
    return;
  }

  // Component overages, in fixed tie-break order. The decode overage is
  // split into the migration-recovery tail and the rest so each half can
  // carry its own cause.
  struct Candidate {
    MissCause cause;
    Duration over;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(6);
  Duration transport_abs = 0;
  Duration queue_abs = 0;
  for (const PathSegment& seg : sf.path) {
    const Duration over = seg.overage();
    switch (seg.kind) {
      case PathSegment::Kind::kTransport:
        transport_abs = seg.actual();
        candidates.push_back({MissCause::kCloudTail, over});
        break;
      case PathSegment::Kind::kQueue:
        queue_abs = seg.actual();
        // A re-homed basestation's queueing is the survivor absorbing the
        // dead node's load — named before the generic failover window.
        candidates.push_back(
            {sf.rehomed ? MissCause::kNodeFailureRehoming
             : watchdog_within(rec, sf.start, options.failover_window)
                 ? MissCause::kFailoverRepartition
                 : MissCause::kQueueingBacklog,
             over});
        break;
      case PathSegment::Kind::kFft:
      case PathSegment::Kind::kDemod:
        candidates.push_back({MissCause::kPlatformErrorSpike, over});
        break;
      case PathSegment::Kind::kDecode: {
        const Duration recovery =
            sf.stages[static_cast<unsigned>(Stage::kDecode)].recovery_ns;
        const Duration recovery_over = std::min(recovery, over);
        candidates.push_back({MissCause::kMigrationRecovery, recovery_over});
        const bool excess_iterations =
            sf.iterations_estimated > 0 &&
            sf.iterations_executed > sf.iterations_estimated;
        candidates.push_back({excess_iterations
                                  ? MissCause::kDecodeOverrun
                                  : MissCause::kPlatformErrorSpike,
                              over - recovery_over});
        break;
      }
    }
  }

  // Dominant overage above the noise floor wins; earlier candidates win
  // ties (transport > queue > fft > demod > decode halves).
  MissCause cause = MissCause::kUnknown;
  Duration best = options.epsilon;
  for (const Candidate& c : candidates)
    if (c.over > best) {
      cause = c.cause;
      best = c.over;
    }

  if (cause == MissCause::kUnknown) {
    // Nothing overran its own estimate: the budget was simply consumed
    // (typical for admission drops). Blame the largest absolute pre-
    // processing consumer.
    if (queue_abs > options.epsilon && queue_abs >= transport_abs)
      cause = sf.rehomed ? MissCause::kNodeFailureRehoming
              : watchdog_within(rec, sf.start, options.failover_window)
                  ? MissCause::kFailoverRepartition
                  : MissCause::kQueueingBacklog;
    else if (transport_abs > options.epsilon)
      cause = MissCause::kCloudTail;
    best = std::max(queue_abs, transport_abs);
    if (cause == MissCause::kUnknown) best = 0;
  }
  sf.cause = cause;
  sf.dominant_over_ns = best;
}

}  // namespace rtopex::obs::analysis
