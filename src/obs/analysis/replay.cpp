#include "obs/analysis/replay.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "sched/scheduler.hpp"

namespace rtopex::obs::analysis {

namespace {

/// Drain interval during capture: 17 events per subframe, so 64 subframes
/// stay far below the default ring capacity on any one track.
constexpr std::size_t kCollectEvery = 64;

std::uint32_t meta_word(const sim::SubframeWork& w) {
  return (w.mcs & 0xffu) | ((w.lm & 0xffu) << 8) |
         (static_cast<std::uint32_t>(w.decodable) << 16) |
         (static_cast<std::uint32_t>(w.lost) << 17);
}

void emit_field(Tracer& tracer, const sim::SubframeWork& w, unsigned track,
                JobSpecField field, std::uint32_t value) {
  TraceEvent ev;
  ev.ts = w.radio_time;
  ev.bs = w.bs;
  ev.index = w.index;
  ev.a = static_cast<std::uint32_t>(field);
  ev.b = value;
  ev.core = track;
  ev.kind = EventKind::kJobSpec;
  tracer.emit(ev);
}

}  // namespace

void capture_workload(Tracer& tracer, std::span<const sim::SubframeWork> work,
                      unsigned track) {
  std::size_t since_collect = 0;
  for (const sim::SubframeWork& w : work) {
    emit_field(tracer, w, track, JobSpecField::kMeta, meta_word(w));
    emit_field(tracer, w, track, JobSpecField::kIterations, w.iterations);
    emit_field(tracer, w, track, JobSpecField::kArrivalOffsetNs,
               clamp_payload_ns(w.arrival - w.radio_time));
    emit_field(tracer, w, track, JobSpecField::kDeadlineOffsetNs,
               clamp_payload_ns(w.deadline - w.radio_time));
    emit_field(tracer, w, track, JobSpecField::kFftNs,
               clamp_payload_ns(w.costs.fft));
    emit_field(tracer, w, track, JobSpecField::kDemodNs,
               clamp_payload_ns(w.costs.demod));
    emit_field(tracer, w, track, JobSpecField::kDecodeNs,
               clamp_payload_ns(w.costs.decode));
    emit_field(tracer, w, track, JobSpecField::kFftSubtasks,
               w.costs.fft_subtasks);
    emit_field(tracer, w, track, JobSpecField::kFftSubtaskNs,
               clamp_payload_ns(w.costs.fft_subtask));
    emit_field(tracer, w, track, JobSpecField::kDecodeSubtasks,
               w.costs.decode_subtasks);
    emit_field(tracer, w, track, JobSpecField::kDecodeSubtaskNs,
               clamp_payload_ns(w.costs.decode_subtask));
    emit_field(tracer, w, track, JobSpecField::kWcetFftNs,
               clamp_payload_ns(w.wcet.fft));
    emit_field(tracer, w, track, JobSpecField::kWcetDemodNs,
               clamp_payload_ns(w.wcet.demod));
    emit_field(tracer, w, track, JobSpecField::kWcetDecodeNs,
               clamp_payload_ns(w.wcet.decode));
    emit_field(tracer, w, track, JobSpecField::kWcetFftSubtaskNs,
               clamp_payload_ns(w.wcet.fft_subtask));
    emit_field(tracer, w, track, JobSpecField::kWcetDecodeSubtaskNs,
               clamp_payload_ns(w.wcet.decode_subtask));
    emit_field(tracer, w, track, JobSpecField::kDecodeOptimisticNs,
               clamp_payload_ns(w.decode_optimistic));
    if (++since_collect >= kCollectEvery) {
      tracer.collect();
      since_collect = 0;
    }
  }
  tracer.collect();
}

std::vector<sim::SubframeWork> recover_workload(const TraceStore& store) {
  std::vector<sim::SubframeWork> work;
  // (bs, index) -> position in `work`, so fields can land on their
  // subframe even if another track's capture interleaved in the store.
  std::map<std::uint64_t, std::size_t> position;
  for (const TraceEvent& ev : store.events) {
    if (ev.kind != EventKind::kJobSpec) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ev.bs) << 32) | ev.index;
    const auto field = static_cast<JobSpecField>(ev.a);
    if (field == JobSpecField::kMeta) {
      sim::SubframeWork w;
      w.bs = ev.bs;
      w.index = ev.index;
      w.radio_time = ev.ts;
      w.mcs = ev.b & 0xffu;
      w.lm = (ev.b >> 8) & 0xffu;
      w.decodable = (ev.b >> 16) & 1u;
      w.lost = (ev.b >> 17) & 1u;
      position[key] = work.size();
      work.push_back(w);
      continue;
    }
    const auto it = position.find(key);
    if (it == position.end())
      throw std::runtime_error(
          "recover_workload: job-spec field before its meta record");
    sim::SubframeWork& w = work[it->second];
    const auto ns = static_cast<Duration>(ev.b);
    switch (field) {
      case JobSpecField::kIterations: w.iterations = ev.b; break;
      case JobSpecField::kArrivalOffsetNs: w.arrival = w.radio_time + ns; break;
      case JobSpecField::kDeadlineOffsetNs:
        w.deadline = w.radio_time + ns;
        break;
      case JobSpecField::kFftNs: w.costs.fft = ns; break;
      case JobSpecField::kDemodNs: w.costs.demod = ns; break;
      case JobSpecField::kDecodeNs: w.costs.decode = ns; break;
      case JobSpecField::kFftSubtasks:
        w.costs.fft_subtasks = ev.b;
        w.wcet.fft_subtasks = ev.b;
        break;
      case JobSpecField::kFftSubtaskNs: w.costs.fft_subtask = ns; break;
      case JobSpecField::kDecodeSubtasks:
        w.costs.decode_subtasks = ev.b;
        w.wcet.decode_subtasks = ev.b;
        break;
      case JobSpecField::kDecodeSubtaskNs: w.costs.decode_subtask = ns; break;
      case JobSpecField::kWcetFftNs: w.wcet.fft = ns; break;
      case JobSpecField::kWcetDemodNs: w.wcet.demod = ns; break;
      case JobSpecField::kWcetDecodeNs: w.wcet.decode = ns; break;
      case JobSpecField::kWcetFftSubtaskNs: w.wcet.fft_subtask = ns; break;
      case JobSpecField::kWcetDecodeSubtaskNs:
        w.wcet.decode_subtask = ns;
        break;
      case JobSpecField::kDecodeOptimisticNs: w.decode_optimistic = ns; break;
      case JobSpecField::kMeta: break;  // handled above
      default:
        throw std::runtime_error("recover_workload: unknown job-spec field");
    }
  }
  return work;
}

const char* to_string(ReplayConfig::Policy policy) {
  switch (policy) {
    case ReplayConfig::Policy::kPartitioned: return "partitioned";
    case ReplayConfig::Policy::kGlobal: return "global";
    case ReplayConfig::Policy::kRtOpex: return "rt-opex";
  }
  return "unknown";
}

ReplayResult replay(std::span<const sim::SubframeWork> workload,
                    const ReplayConfig& config) {
  unsigned num_bs = config.num_basestations;
  if (num_bs == 0) {
    for (const sim::SubframeWork& w : workload)
      num_bs = std::max(num_bs, w.bs + 1);
    if (num_bs == 0) num_bs = 1;
  }

  // The scheduler copies its config at construction, so the tracer must be
  // installed first; one extra track mirrors the runtime's ticker track.
  std::unique_ptr<sched::NodeScheduler> scheduler;
  std::unique_ptr<Tracer> tracer;
  auto make_tracer = [&](unsigned cores) {
    tracer = std::make_unique<Tracer>(cores + 1, config.ring_capacity,
                                      config.max_stored_events);
  };
  switch (config.policy) {
    case ReplayConfig::Policy::kPartitioned: {
      sched::PartitionedConfig pc = config.partitioned;
      make_tracer(num_bs * pc.cores_per_bs());
      pc.tracer = tracer.get();
      scheduler = std::make_unique<sched::PartitionedScheduler>(num_bs, pc);
      break;
    }
    case ReplayConfig::Policy::kGlobal: {
      sched::GlobalConfig gc = config.global;
      make_tracer(gc.num_cores);
      gc.tracer = tracer.get();
      scheduler = std::make_unique<sched::GlobalScheduler>(num_bs, gc);
      break;
    }
    case ReplayConfig::Policy::kRtOpex: {
      sched::RtOpexConfig rc = config.rtopex;
      make_tracer(num_bs * rc.cores_per_bs());
      rc.tracer = tracer.get();
      scheduler = std::make_unique<sched::RtOpexScheduler>(num_bs, rc);
      break;
    }
  }
  if (!scheduler) throw std::logic_error("replay: unknown policy");

  ReplayResult result;
  result.metrics = scheduler->run(workload);
  result.scheduler_name = scheduler->name();
  result.num_cores = scheduler->num_cores();
  result.report = analyze(tracer->take(), config.analyzer);
  return result;
}

ReplayResult replay(const TraceStore& captured, const ReplayConfig& config) {
  const std::vector<sim::SubframeWork> workload = recover_workload(captured);
  if (workload.empty())
    throw std::runtime_error(
        "replay: trace carries no workload capture (kJobSpec events) — "
        "re-run the producer with capture enabled");
  return replay(workload, config);
}

ReportDelta diff_reports(const AnalysisReport& baseline,
                         const AnalysisReport& replayed) {
  ReportDelta d;
  auto sub = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<long long>(a) - static_cast<long long>(b);
  };
  for (unsigned c = 0; c < kNumMissCauses; ++c)
    d.cause_delta[c] = sub(replayed.cause_counts[c], baseline.cause_counts[c]);
  d.subframes = sub(replayed.subframes, baseline.subframes);
  d.completed = sub(replayed.completed, baseline.completed);
  d.misses = sub(replayed.misses, baseline.misses);
  d.lost = sub(replayed.lost, baseline.lost);
  d.late = sub(replayed.late, baseline.late);
  d.dropped = sub(replayed.dropped, baseline.dropped);
  d.terminated = sub(replayed.terminated, baseline.terminated);
  d.degraded = sub(replayed.degraded, baseline.degraded);
  return d;
}

std::string delta_json(const ReportDelta& d) {
  std::string out = "{";
  auto field = [&out](const char* name, long long v, bool first = false) {
    if (!first) out += ",";
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  field("subframes", d.subframes, true);
  field("completed", d.completed);
  field("misses", d.misses);
  field("lost", d.lost);
  field("late", d.late);
  field("dropped", d.dropped);
  field("terminated", d.terminated);
  field("degraded", d.degraded);
  out += ",\"causes\":{";
  for (unsigned c = 0; c < kNumMissCauses; ++c) {
    if (c) out += ",";
    out += "\"";
    out += to_string(static_cast<MissCause>(c));
    out += "\":";
    out += std::to_string(d.cause_delta[c]);
  }
  out += "},\"identical\":";
  out += d.empty() ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace rtopex::obs::analysis
