// Aggregation and output: analyze() ties reconstruction and attribution
// together, then the writers render the report as a numeric miss CSV, a
// slack-trajectory CSV, a one-line JSON summary, or Prometheus samples.
#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/csv.hpp"
#include "obs/analysis/internal.hpp"

namespace rtopex::obs::analysis {

const char* to_string(MissCause cause) {
  switch (cause) {
    case MissCause::kNone: return "none";
    case MissCause::kFronthaulLate: return "fronthaul_late";
    case MissCause::kCloudTail: return "cloud_tail";
    case MissCause::kDecodeOverrun: return "decode_overrun";
    case MissCause::kMigrationRecovery: return "migration_recovery";
    case MissCause::kQueueingBacklog: return "queueing_backlog";
    case MissCause::kFailoverRepartition: return "failover_repartition";
    case MissCause::kPlatformErrorSpike: return "platform_error_spike";
    case MissCause::kNodeFailureRehoming: return "node_failure_rehoming";
    case MissCause::kClusterShed: return "cluster_shed";
    case MissCause::kUnknown: return "unknown";
  }
  return "invalid";
}

const char* to_string(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kTransport: return "transport";
    case PathSegment::Kind::kQueue: return "queue";
    case PathSegment::Kind::kFft: return "fft";
    case PathSegment::Kind::kDemod: return "demod";
    case PathSegment::Kind::kDecode: return "decode";
  }
  return "invalid";
}

AnalysisReport analyze(const TraceStore& store,
                       const AnalyzerOptions& options) {
  Reconstruction rec = reconstruct(store, options);

  AnalysisReport report;
  report.horizon_begin = rec.horizon_begin;
  report.horizon_end = rec.horizon_end;
  report.ring_drops = rec.ring_drops;
  report.store_drops = rec.store_drops;

  std::map<std::uint32_t, BasestationSlack> per_bs;
  std::map<std::uint32_t, double> slack_sums;
  for (SubframeAnalysis& sf : rec.subframes) {
    attribute(sf, rec, options);

    ++report.subframes;
    BasestationSlack& bss = per_bs[sf.bs];
    bss.bs = sf.bs;
    ++bss.subframes;
    if (sf.lost) {
      ++report.lost;
    } else {
      if (sf.late) ++report.late;
      if (sf.dropped) ++report.dropped;
      if (sf.terminated) ++report.terminated;
      if (sf.degraded) ++report.degraded;
      if (sf.shed) ++report.shed;
      if (sf.rehomed) ++report.rehomed;
      if (sf.missed) {
        ++report.misses;
        ++bss.misses;
      } else {
        ++report.completed;
      }
      if (bss.subframes == 1 || sf.slack_ns < bss.min_slack_ns)
        bss.min_slack_ns = sf.slack_ns;
      slack_sums[sf.bs] += static_cast<double>(sf.slack_ns);
      if (options.keep_trajectories)
        bss.trajectory.emplace_back(sf.index, sf.slack_ns);
    }
    ++report.cause_counts[static_cast<unsigned>(sf.cause)];
  }
  // Every subframe lands in cause_counts; completed/lost ones under kNone.

  for (auto& [bs, bss] : per_bs) {
    const std::uint64_t processed =
        bss.subframes;  // includes lost (slack 0 contributions skipped)
    if (processed)
      bss.mean_slack_ns = slack_sums[bs] / static_cast<double>(processed);
    std::sort(bss.trajectory.begin(), bss.trajectory.end());
    report.per_bs.push_back(std::move(bss));
  }

  const Duration horizon = rec.horizon_end - rec.horizon_begin;
  for (auto& [id, cu] : rec.core_usage) {
    if (horizon > 0)
      cu.utilization = static_cast<double>(cu.busy_ns + cu.host_busy_ns) /
                       static_cast<double>(horizon);
    report.cores.push_back(cu);
  }

  // Link each alert window to the misses (and losses) inside it, so every
  // alert names the root causes that tripped it. Node- and cluster-scope
  // alerts are linked trace-wide: an exported trace carries no track->node
  // map, so the analyzer cannot tell which basestation ran where.
  for (AlertWindow& w : rec.alerts) {
    const TimePoint lo = w.fired_at - options.alert_lookback;
    const TimePoint hi = w.cleared_at >= 0 ? w.cleared_at : rec.horizon_end;
    for (const SubframeAnalysis& sf : rec.subframes) {
      if (!sf.missed && !sf.lost) continue;
      if (w.scope_kind == 2 && sf.bs != w.scope_id) continue;
      const TimePoint at =
          sf.end >= 0 ? sf.end
                      : (sf.deadline >= 0 ? sf.deadline : sf.radio_time);
      if (at < lo || at > hi) continue;
      ++w.misses_in_window;
      ++w.cause_counts[static_cast<unsigned>(sf.cause)];
    }
    // Dominant cause over the real causes (kNone excluded); ties break to
    // the lowest enum code, so the report is deterministic.
    unsigned best = 1;
    for (unsigned c = 2; c < kNumMissCauses; ++c)
      if (w.cause_counts[c] > w.cause_counts[best]) best = c;
    if (w.cause_counts[best] > 0)
      w.dominant_cause = static_cast<MissCause>(best);
  }
  report.alerts = std::move(rec.alerts);

  report.detail = std::move(rec.subframes);
  return report;
}

void write_miss_report_csv(const std::string& path,
                           const AnalysisReport& report) {
  CsvWriter csv(path);
  csv.write_header({"bs", "index", "core", "cause", "dominant_over_ns",
                    "slack_ns", "arrival_ns", "deadline_ns", "start_ns",
                    "end_ns", "transport_ns", "queue_ns", "fft_ns",
                    "demod_ns", "decode_ns", "recovery_ns", "iter_est",
                    "iter_exec", "dropped", "terminated", "degraded",
                    "late"});
  auto stage_ns = [](const SubframeAnalysis& sf, Stage s) {
    return static_cast<double>(
        sf.stages[static_cast<unsigned>(s)].actual());
  };
  for (const SubframeAnalysis& sf : report.detail) {
    if (!sf.missed) continue;
    csv.write_row(
        {static_cast<double>(sf.bs), static_cast<double>(sf.index),
         static_cast<double>(sf.core),
         static_cast<double>(static_cast<unsigned>(sf.cause)),
         static_cast<double>(sf.dominant_over_ns),
         static_cast<double>(sf.slack_ns), static_cast<double>(sf.arrival),
         static_cast<double>(sf.deadline), static_cast<double>(sf.start),
         static_cast<double>(sf.end), static_cast<double>(sf.transport_ns),
         static_cast<double>(sf.queue_ns), stage_ns(sf, Stage::kFft),
         stage_ns(sf, Stage::kDemod), stage_ns(sf, Stage::kDecode),
         static_cast<double>(
             sf.stages[static_cast<unsigned>(Stage::kDecode)].recovery_ns),
         static_cast<double>(sf.iterations_estimated),
         static_cast<double>(sf.iterations_executed),
         sf.dropped ? 1.0 : 0.0, sf.terminated ? 1.0 : 0.0,
         sf.degraded ? 1.0 : 0.0, sf.late ? 1.0 : 0.0});
  }
}

void write_slack_trajectory_csv(const std::string& path,
                                const AnalysisReport& report) {
  CsvWriter csv(path);
  csv.write_header({"bs", "index", "slack_ns"});
  for (const BasestationSlack& bss : report.per_bs)
    for (const auto& [index, slack] : bss.trajectory)
      csv.write_row({static_cast<double>(bss.bs), static_cast<double>(index),
                     static_cast<double>(slack)});
}

std::string summary_json(const AnalysisReport& report) {
  char buf[256];
  std::string out;
  auto append = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  append("{\"subframes\":%" PRIu64 ",\"completed\":%" PRIu64
         ",\"misses\":%" PRIu64 ",\"miss_rate\":%.6g,\"lost\":%" PRIu64
         ",\"late\":%" PRIu64 ",\"dropped\":%" PRIu64
         ",\"terminated\":%" PRIu64 ",\"degraded\":%" PRIu64
         ",\"shed\":%" PRIu64 ",\"rehomed\":%" PRIu64,
         report.subframes, report.completed, report.misses,
         report.miss_rate(), report.lost, report.late, report.dropped,
         report.terminated, report.degraded, report.shed, report.rehomed);
  out += ",\"causes\":{";
  bool first = true;
  for (unsigned c = 1; c < kNumMissCauses; ++c) {
    if (!first) out += ',';
    first = false;
    append("\"%s\":%" PRIu64, to_string(static_cast<MissCause>(c)),
           report.cause_counts[c]);
  }
  std::uint64_t pages = 0;
  for (const AlertWindow& w : report.alerts)
    if (w.severity >= 2) ++pages;
  append("},\"alerts\":%" PRIu64 ",\"page_alerts\":%" PRIu64,
         static_cast<std::uint64_t>(report.alerts.size()), pages);
  append(",\"ring_drops\":%" PRIu64 ",\"store_drops\":%" PRIu64 "}",
         report.ring_drops, report.store_drops);
  return out;
}

void fill_registry(const AnalysisReport& report, MetricsRegistry& registry) {
  registry.add_counter("rtopex_analysis_subframes_total",
                       "Subframes reconstructed from the trace.",
                       static_cast<double>(report.subframes));
  registry.add_counter("rtopex_analysis_misses_total",
                       "Deadline misses found in the trace.",
                       static_cast<double>(report.misses));
  for (unsigned c = 1; c < kNumMissCauses; ++c)
    registry.add_counter(
        "rtopex_analysis_miss_cause_total",
        "Deadline misses by attributed root cause.",
        static_cast<double>(report.cause_counts[c]),
        {{"cause", to_string(static_cast<MissCause>(c))}});
  registry.add_counter("rtopex_analysis_trace_drops_total",
                       "Trace events lost before analysis (ring + store).",
                       static_cast<double>(report.ring_drops +
                                           report.store_drops));
  Histogram slack_us;
  for (const SubframeAnalysis& sf : report.detail)
    if (!sf.lost && sf.slack_ns > 0) slack_us.add(to_us(sf.slack_ns));
  registry.add_histogram("rtopex_analysis_slack_us",
                         "Positive end-of-path slack per subframe (us).",
                         slack_us);
  double warn_alerts = 0.0, page_alerts = 0.0;
  for (const AlertWindow& w : report.alerts)
    (w.severity >= 2 ? page_alerts : warn_alerts) += 1.0;
  registry.add_counter("rtopex_analysis_alerts_total",
                       "Alert windows found in the trace, by severity.",
                       warn_alerts, {{"severity", "warn"}});
  registry.add_counter("rtopex_analysis_alerts_total",
                       "Alert windows found in the trace, by severity.",
                       page_alerts, {{"severity", "page"}});
  for (const CoreUsage& cu : report.cores) {
    registry.add_gauge("rtopex_analysis_core_utilization",
                       "Fraction of the trace horizon the core was busy "
                       "(own subframes plus hosted chunks).",
                       cu.utilization,
                       {{"core", std::to_string(cu.core)}});
    registry.add_gauge("rtopex_analysis_core_gap_seconds_total",
                       "Idle-gap time observed on the core.",
                       static_cast<double>(cu.gap_total_ns) * 1e-9,
                       {{"core", std::to_string(cu.core)}});
  }
}

}  // namespace rtopex::obs::analysis
