// Shared between the analyzer's translation units: the intermediate
// reconstruction (per-subframe timelines plus run-wide context) handed from
// reconstruct.cpp to attribute.cpp, and the final aggregation in report.cpp.
// Not installed; include only from within src/obs/analysis.
#pragma once

#include <map>

#include "obs/analysis/analysis.hpp"

namespace rtopex::obs::analysis {

struct Reconstruction {
  std::vector<SubframeAnalysis> subframes;  ///< (bs, index)-ordered.
  std::vector<TimePoint> watchdog_fires;    ///< time-ordered.
  std::vector<AlertWindow> alerts;          ///< firing order; miss linkage
                                            ///< still empty (report.cpp).
  std::map<unsigned, CoreUsage> core_usage;
  TimePoint horizon_begin = 0;
  TimePoint horizon_end = 0;
  std::uint64_t ring_drops = 0;
  std::uint64_t store_drops = 0;
};

/// Rebuilds per-subframe timelines and per-core accounting from the raw
/// event stream.
Reconstruction reconstruct(const TraceStore& store,
                           const AnalyzerOptions& options);

/// Builds the critical path for one reconstructed subframe and names the
/// miss cause (MissCause::kNone when the deadline was met). Fills
/// sf.path, sf.cause and sf.dominant_over_ns.
void attribute(SubframeAnalysis& sf, const Reconstruction& rec,
               const AnalyzerOptions& options);

}  // namespace rtopex::obs::analysis
