#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtopex::obs {

Histogram::Histogram(double lo, double hi, unsigned buckets_per_decade)
    : lo_(lo), hi_(hi), buckets_per_decade_(buckets_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || buckets_per_decade == 0)
    throw std::invalid_argument(
        "Histogram: need hi > lo > 0 and buckets_per_decade > 0");
  const double decades = std::log10(hi / lo);
  const auto buckets = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(buckets_per_decade) - 1e-9));
  counts_.assign(std::max<std::size_t>(buckets, 1), 0);
  growth_ = std::pow(10.0, 1.0 / static_cast<double>(buckets_per_decade));
}

std::size_t Histogram::bucket_index(double x) const {
  if (!(x > lo_)) return 0;
  const double pos =
      std::log10(x / lo_) * static_cast<double>(buckets_per_decade_);
  const auto i = static_cast<std::size_t>(pos);
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bucket_index(x)];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  if (!same_layout(other))
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::bucket_lower(std::size_t i) const {
  if (i >= counts_.size())
    throw std::out_of_range("Histogram::bucket_lower");
  return lo_ * std::pow(growth_, static_cast<double>(i));
}

double Histogram::bucket_upper(std::size_t i) const {
  if (i >= counts_.size())
    throw std::out_of_range("Histogram::bucket_upper");
  return lo_ * std::pow(growth_, static_cast<double>(i + 1));
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;  // guard: never read bucket 0 of nothing
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based: ceil(q * n), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_) - 1e-9)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cum + counts_[i] >= rank) {
      // Interpolate linearly inside the bucket by rank position.
      const double within = (static_cast<double>(rank - cum) - 0.5) /
                            static_cast<double>(counts_[i]);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double v = lo + within * (hi - lo);
      return std::clamp(v, min_, max_);
    }
    cum += counts_[i];
  }
  return max_;
}

}  // namespace rtopex::obs
