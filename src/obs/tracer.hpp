// Lock-free per-core event tracer. Each track (one per worker core, plus
// one for the transport ticker / collector itself) is a single-producer
// single-consumer ring: the owning thread pushes TraceEvents, a single
// collector (the ticker in the runtime, the simulation loop in virtual
// time) drains every ring into a bounded in-memory store. A full ring never
// blocks the producer — the event is dropped and a per-track drop counter
// incremented, so tracing can stay on in production without ever stalling
// the real-time path.
//
// Emission at call sites goes through the RTOPEX_TRACE_* macros below,
// which compile to nothing when the build sets RTOPEX_NO_TRACING
// (cmake -DRTOPEX_TRACING=OFF), leaving zero overhead on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ring_buffer.hpp"
#include "obs/trace_event.hpp"

namespace rtopex::obs {

/// Everything the collector drained, plus the two loss counters: events the
/// rings overflowed away and events the bounded store refused.
struct TraceStore {
  std::vector<TraceEvent> events;
  std::uint64_t ring_drops = 0;
  std::uint64_t store_drops = 0;
  /// ring_drops broken down by track (index = core); empty when the store
  /// was built by hand rather than drained from a Tracer.
  std::vector<std::uint64_t> ring_drops_per_track;

  std::uint64_t total_drops() const { return ring_drops + store_drops; }
};

/// One-line human rendering of a store's event losses, with the per-track
/// ring breakdown when available — e.g. "trace lost 12 events (10 ring, 2
/// store; ring drops by track: 3=8, 7=2)". Returns "" when nothing was
/// lost. The single formatter behind the bench warning and the analyzer's
/// drop report, so every tool describes loss identically.
std::string describe_trace_drops(const TraceStore& store);

/// Tracing knobs embedded in substrate configs (RuntimeConfig etc.).
struct TraceConfig {
  bool enabled = false;
  std::size_t ring_capacity = 4096;        ///< events per track.
  std::size_t max_stored_events = 1 << 20; ///< bounded collector store.
};

class Tracer {
 public:
  /// Timestamp source for emit_now(); defaults to 0 until set. The runtime
  /// installs its GlobalClock; virtual-time callers stamp events themselves
  /// and never call emit_now().
  using ClockFn = std::function<TimePoint()>;

  explicit Tracer(unsigned num_tracks, std::size_t ring_capacity = 4096,
                  std::size_t max_stored_events = 1 << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  unsigned num_tracks() const { return static_cast<unsigned>(tracks_.size()); }

  void set_clock(ClockFn clock) { clock_ = std::move(clock); }
  TimePoint now() const { return clock_ ? clock_() : 0; }

  /// Producer side: push onto the ring selected by ev.core. Must only be
  /// called by the single thread that owns that track. Never blocks; a full
  /// ring drops the event and bumps the track's drop counter.
  void emit(const TraceEvent& ev);

  /// emit() with ev.ts stamped from the installed clock.
  void emit_now(TraceEvent ev) {
    ev.ts = now();
    emit(ev);
  }

  /// Consumer side (single collector thread): drain every ring into the
  /// bounded store. Returns the number of events moved.
  std::size_t collect();

  /// Ring-overflow drops on one track / across all tracks (includes events
  /// dropped since the last collect()).
  std::uint64_t drops(unsigned track) const;
  std::uint64_t total_ring_drops() const;

  /// Collector-side view of everything drained so far. collect() first for
  /// an up-to-date snapshot; drop counters are refreshed on access.
  const TraceStore& store() const;

  /// collect(), then move the store out (leaves the tracer empty).
  TraceStore take();

 private:
  void refresh_drops() const;

  struct Track {
    explicit Track(std::size_t capacity) : ring(capacity) {}
    SpscRingBuffer<TraceEvent> ring;
    std::atomic<std::uint64_t> drops{0};
  };

  std::vector<std::unique_ptr<Track>> tracks_;
  mutable TraceStore store_;
  std::size_t max_stored_;
  ClockFn clock_;
};

}  // namespace rtopex::obs

// Call-site macros: compiled out entirely under RTOPEX_NO_TRACING. The
// tracer argument is a (possibly null) obs::Tracer*; arguments are not
// evaluated when the pointer is null or tracing is compiled out.
#if !defined(RTOPEX_NO_TRACING)
#define RTOPEX_TRACE_ENABLED 1
#define RTOPEX_TRACE_EVENT(tracer, ...)                            \
  do {                                                             \
    if (::rtopex::obs::Tracer* rtopex_tracer_ = (tracer))          \
      rtopex_tracer_->emit(::rtopex::obs::TraceEvent{__VA_ARGS__}); \
  } while (0)
#define RTOPEX_TRACE_NOW(tracer, ...)                                  \
  do {                                                                 \
    if (::rtopex::obs::Tracer* rtopex_tracer_ = (tracer))              \
      rtopex_tracer_->emit_now(::rtopex::obs::TraceEvent{__VA_ARGS__}); \
  } while (0)
#else
#define RTOPEX_TRACE_ENABLED 0
#define RTOPEX_TRACE_EVENT(tracer, ...) \
  do {                                  \
  } while (0)
#define RTOPEX_TRACE_NOW(tracer, ...) \
  do {                                \
  } while (0)
#endif
