#include "obs/prom_lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

namespace rtopex::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

bool parse_float(const std::string& text, double* out) {
  if (text.empty()) return false;
  if (text == "+Inf" || text == "Inf") {
    *out = 1e308 * 10;
    return true;
  }
  if (text == "-Inf") {
    *out = -1e308 * 10;
    return true;
  }
  if (text == "NaN") {
    *out = 0.0;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

struct Sample {
  std::size_t line = 0;
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// Canonical series key: name plus labels sorted by key.
std::string series_key(const Sample& s, bool drop_le = false) {
  std::vector<std::pair<std::string, std::string>> labels = s.labels;
  if (drop_le)
    labels.erase(std::remove_if(labels.begin(), labels.end(),
                                [](const auto& kv) { return kv.first == "le"; }),
                 labels.end());
  std::sort(labels.begin(), labels.end());
  std::string key = s.name;
  for (const auto& [k, v] : labels) key += "|" + k + "=" + v;
  return key;
}

}  // namespace

std::vector<std::string> lint_prometheus_text(const std::string& text) {
  std::vector<std::string> errors;
  auto fail = [&](std::size_t line, const std::string& message) {
    errors.push_back("line " + std::to_string(line) + ": " + message);
  };

  std::map<std::string, std::string> type_of;   // family -> TYPE value.
  std::set<std::string> help_seen, type_seen;
  std::vector<Sample> samples;
  // Family appearance order for the contiguity check: headers and samples
  // both extend the current family block.
  std::vector<std::pair<std::string, std::size_t>> family_sequence;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      if (eol == std::string::npos) break;
      continue;
    }

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; any other comment passes.
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0)
        continue;
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      const std::string name =
          space == std::string::npos ? rest : rest.substr(0, space);
      if (!valid_metric_name(name)) {
        fail(line_no, "invalid metric name in header: \"" + name + "\"");
        continue;
      }
      if (is_type) {
        const std::string type =
            space == std::string::npos ? "" : rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          fail(line_no, "unknown TYPE \"" + type + "\" for " + name);
        if (!type_seen.insert(name).second)
          fail(line_no, "duplicate TYPE for " + name);
        type_of[name] = type;
      } else {
        if (space == std::string::npos || space + 1 >= rest.size())
          fail(line_no, "HELP without text for " + name);
        if (!help_seen.insert(name).second)
          fail(line_no, "duplicate HELP for " + name);
      }
      family_sequence.push_back({name, line_no});
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    Sample s;
    s.line = line_no;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    if (!valid_metric_name(s.name)) {
      fail(line_no, "invalid metric name: \"" + s.name + "\"");
      continue;
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      bool closed = false;
      while (i < line.size() && !closed) {
        if (line[i] == '}') {
          closed = true;
          ++i;
          break;
        }
        std::size_t eq = line.find('=', i);
        if (eq == std::string::npos) break;
        const std::string key = line.substr(i, eq - i);
        if (!valid_label_name(key))
          fail(line_no, "invalid label name: \"" + key + "\"");
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') {
          fail(line_no, "label value missing opening quote");
          break;
        }
        ++i;
        std::string value;
        bool value_closed = false;
        while (i < line.size()) {
          const char c = line[i];
          if (c == '\\') {
            if (i + 1 >= line.size() ||
                (line[i + 1] != '\\' && line[i + 1] != '"' &&
                 line[i + 1] != 'n')) {
              fail(line_no, "invalid escape in label value of " + key);
              break;
            }
            value.push_back(line[i + 1]);
            i += 2;
            continue;
          }
          if (c == '"') {
            value_closed = true;
            ++i;
            break;
          }
          value.push_back(c);
          ++i;
        }
        if (!value_closed) {
          fail(line_no, "unterminated label value for " + key);
          break;
        }
        s.labels.push_back({key, value});
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (!closed) {
        fail(line_no, "unterminated label set");
        continue;
      }
    }
    if (i >= line.size() || line[i] != ' ') {
      fail(line_no, "missing value separator");
      continue;
    }
    ++i;
    const std::size_t value_end = line.find(' ', i);
    const std::string value_text =
        line.substr(i, value_end == std::string::npos ? std::string::npos
                                                      : value_end - i);
    if (!parse_float(value_text, &s.value)) {
      fail(line_no, "unparseable sample value: \"" + value_text + "\"");
      continue;
    }
    if (value_end != std::string::npos) {
      // Optional timestamp: a (signed) integer in milliseconds.
      const std::string ts = line.substr(value_end + 1);
      char* end = nullptr;
      std::strtoll(ts.c_str(), &end, 10);
      if (ts.empty() || end != ts.c_str() + ts.size())
        fail(line_no, "trailing garbage after value: \"" + ts + "\"");
    }

    // Resolve the family: histogram/summary suffixes fold onto the base.
    std::string family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string sfx = suffix;
      if (s.name.size() > sfx.size() &&
          s.name.compare(s.name.size() - sfx.size(), sfx.size(), sfx) == 0) {
        const std::string base = s.name.substr(0, s.name.size() - sfx.size());
        const auto it = type_of.find(base);
        if (it != type_of.end() &&
            (it->second == "histogram" || it->second == "summary")) {
          family = base;
          break;
        }
      }
    }
    family_sequence.push_back({family, line_no});
    samples.push_back(std::move(s));
  }

  // Family contiguity: every family must form one run.
  std::set<std::string> closed_families;
  for (std::size_t k = 0; k < family_sequence.size(); ++k) {
    const auto& [family, at_line] = family_sequence[k];
    if (k > 0 && family_sequence[k - 1].first != family) {
      closed_families.insert(family_sequence[k - 1].first);
      if (closed_families.count(family))
        fail(at_line, "metric family " + family +
                          " is interleaved with another family");
    }
  }

  // Duplicate series.
  std::set<std::string> series;
  for (const Sample& s : samples)
    if (!series.insert(series_key(s)).second)
      fail(s.line, "duplicate series: " + series_key(s));

  // Histogram shape: cumulative buckets, increasing le, +Inf present,
  // _count consistent with the +Inf bucket.
  struct HistogramShape {
    double last_le = 0.0;
    double last_count = 0.0;
    bool any = false;
    bool has_inf = false;
    double inf_count = 0.0;
    bool has_sum = false;
    bool has_count = false;
    double count_value = 0.0;
    std::size_t line = 0;
  };
  std::map<std::string, HistogramShape> shapes;
  for (const Sample& s : samples) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string sfx = suffix;
      if (s.name.size() <= sfx.size() ||
          s.name.compare(s.name.size() - sfx.size(), sfx.size(), sfx) != 0)
        continue;
      const std::string base = s.name.substr(0, s.name.size() - sfx.size());
      const auto it = type_of.find(base);
      if (it == type_of.end() || it->second != "histogram") continue;
      Sample keyed = s;
      keyed.name = base;
      HistogramShape& shape = shapes[series_key(keyed, /*drop_le=*/true)];
      shape.line = s.line;
      if (sfx == "_sum") {
        shape.has_sum = true;
      } else if (sfx == "_count") {
        shape.has_count = true;
        shape.count_value = s.value;
      } else {
        std::string le;
        for (const auto& [k, v] : s.labels)
          if (k == "le") le = v;
        if (le.empty()) {
          fail(s.line, base + "_bucket without an le label");
          continue;
        }
        double edge = 0.0;
        if (le == "+Inf") {
          shape.has_inf = true;
          shape.inf_count = s.value;
          edge = 1e308 * 10;
        } else if (!parse_float(le, &edge)) {
          fail(s.line, "unparseable le value: \"" + le + "\"");
          continue;
        }
        if (shape.any && edge <= shape.last_le)
          fail(s.line, base + " bucket edges not increasing");
        if (shape.any && s.value < shape.last_count)
          fail(s.line, base + " bucket counts not cumulative");
        shape.any = true;
        shape.last_le = edge;
        shape.last_count = s.value;
      }
      break;
    }
  }
  for (const auto& [key, shape] : shapes) {
    if (!shape.has_inf)
      fail(shape.line, "histogram " + key + " missing its +Inf bucket");
    if (!shape.has_sum || !shape.has_count)
      fail(shape.line, "histogram " + key + " missing _sum or _count");
    if (shape.has_inf && shape.has_count &&
        shape.inf_count != shape.count_value)
      fail(shape.line, "histogram " + key + " _count != +Inf bucket");
  }

  return errors;
}

}  // namespace rtopex::obs
