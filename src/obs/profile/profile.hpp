// Continuous-profiling layer: scoped spans that carry hardware-counter
// deltas next to the stage-span vocabulary the tracer records. Each span
// samples a per-thread counter group at begin and end; the delta (cycles,
// instructions, LLC misses, branch misses, thread CPU time, page faults)
// is appended to a preallocated per-track sample slab, so steady-state
// profiling allocates nothing and never blocks the real-time path.
//
// Backends:
//  * kPerf      — perf_event_open grouped reads (one leader + 3 siblings
//                 per thread, PERF_FORMAT_GROUP with enabled/running time
//                 so multiplexed counts are rescaled). Linux only; needs
//                 perf_event_paranoid to permit unprivileged self-profiling.
//  * kSoftware  — CLOCK_THREAD_CPUTIME_ID + getrusage(RUSAGE_THREAD) minor/
//                 major fault counters. Always available; hardware fields
//                 stay zero. The span *structure* (frames, stages, nesting)
//                 is identical to the perf backend, so every consumer
//                 degrades gracefully.
//  * kSynthetic — a caller-supplied counter function, for deterministic
//                 golden tests under the virtual clock.
//  * kAuto      — probe perf at construction, fall back to software. This
//                 is the default: containers commonly deny perf_event_open
//                 (EPERM/EACCES) and the profiler must keep working.
//
// Threading contract mirrors obs::Tracer: each track is owned by exactly
// one producer thread (begin/end on that track must come from its owner);
// take()/aggregation happen after the producers have quiesced (joined, or
// provably done emitting on that track).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time_types.hpp"
#include "obs/trace_event.hpp"

namespace rtopex::obs::profile {

/// One counter snapshot / delta. Hardware fields are zero under the
/// software backend; software fields are filled under every backend, which
/// is what makes the two span streams structurally identical.
struct Counters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cpu_time_ns = 0;   ///< CLOCK_THREAD_CPUTIME_ID.
  std::uint64_t minor_faults = 0;  ///< ru_minflt.
  std::uint64_t major_faults = 0;  ///< ru_majflt.

  Counters operator-(const Counters& o) const {
    auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : 0;  // clamp: multiplex rescaling can jitter.
    };
    return {sub(cycles, o.cycles),
            sub(instructions, o.instructions),
            sub(llc_misses, o.llc_misses),
            sub(branch_misses, o.branch_misses),
            sub(cpu_time_ns, o.cpu_time_ns),
            sub(minor_faults, o.minor_faults),
            sub(major_faults, o.major_faults)};
  }
  Counters& operator+=(const Counters& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_misses += o.llc_misses;
    branch_misses += o.branch_misses;
    cpu_time_ns += o.cpu_time_ns;
    minor_faults += o.minor_faults;
    major_faults += o.major_faults;
    return *this;
  }
  friend bool operator==(const Counters&, const Counters&) = default;
};

enum class Backend : std::uint8_t { kAuto = 0, kPerf, kSoftware, kSynthetic };

const char* to_string(Backend backend);

/// Profiling knobs embedded in substrate configs (RuntimeConfig etc.).
struct ProfileConfig {
  bool enabled = false;
  Backend backend = Backend::kAuto;
  /// Preallocated samples per track; spans past this are counted as drops.
  std::size_t max_samples_per_track = 1 << 15;
  /// kSynthetic only: returns the next counter snapshot. Called once at
  /// span begin and once at end, on the owning thread.
  std::function<Counters()> synthetic_read;
};

/// Deepest span nesting a track keeps; a begin() past this depth records a
/// drop and its end() is a no-op. Four levels cover the runtime's deepest
/// stack (process; subframe; stage; substage).
inline constexpr unsigned kMaxSpanDepth = 8;

/// One closed span. `frames` are the open-span names root-first (string
/// literals with static storage — the profiler never copies them). `a`/`b`
/// are caller payload words, conventionally mirroring the trace vocabulary
/// (decode spans: a = packed regressors, b = D | L << 16; see
/// pack_decode_regressors below).
struct ProfileSample {
  TimePoint ts_begin = 0;
  TimePoint ts_end = 0;
  Counters delta;
  const char* frames[kMaxSpanDepth] = {};
  std::uint8_t depth = 0;  ///< number of valid entries in frames.
  Stage stage = Stage::kNone;
  std::uint32_t bs = 0;
  std::uint32_t index = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t core = 0;  ///< track the span ran on.
};

/// Everything the profiler recorded, plus the loss counters (spans dropped
/// on full slabs or past kMaxSpanDepth) and the backend that actually ran.
struct ProfileStore {
  std::vector<ProfileSample> samples;
  std::uint64_t drops = 0;
  Backend backend = Backend::kSoftware;
};

/// Packs the Eq. (1) regressors a decode span carries: a = modulation
/// order | antennas << 8 | mcs << 16, b = code blocks | iterations << 16.
inline std::uint32_t pack_decode_regressors(unsigned mod_order,
                                            unsigned antennas, unsigned mcs) {
  return (mod_order & 0xffu) | ((antennas & 0xffu) << 8) |
         ((mcs & 0xffu) << 16);
}
inline std::uint32_t pack_decode_load(unsigned code_blocks,
                                      unsigned iterations) {
  return (code_blocks & 0xffffu) | ((iterations & 0xffffu) << 16);
}

class Profiler {
 public:
  using ClockFn = std::function<TimePoint()>;

  /// Resolves kAuto by probing perf_event_open on the calling thread. The
  /// per-track counter groups are opened lazily by each track's owner on
  /// its first begin(); a track whose open fails (perf revoked mid-run)
  /// degrades to software counters for its own samples.
  Profiler(unsigned num_tracks, const ProfileConfig& config);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  unsigned num_tracks() const { return static_cast<unsigned>(tracks_.size()); }
  /// The backend spans actually sample with (never kAuto).
  Backend backend() const { return backend_; }

  void set_clock(ClockFn clock) { clock_ = std::move(clock); }
  TimePoint now() const { return clock_ ? clock_() : 0; }

  /// Opaque span token; pass the value begin() returned to the matching
  /// end() on the same track/thread.
  struct SpanToken {
    std::uint8_t depth = 0;
    bool live = false;
  };

  /// Opens a span on `track` (owner thread only). `name` must be a string
  /// literal or otherwise outlive the profiler.
  SpanToken begin(unsigned track, const char* name,
                  Stage stage = Stage::kNone, std::uint32_t bs = 0,
                  std::uint32_t index = 0);

  /// Closes the span `token` opened on `track`, recording the counter
  /// delta. `a`/`b` are stored on the sample verbatim.
  void end(unsigned track, SpanToken token, std::uint32_t a = 0,
           std::uint32_t b = 0);

  /// Spans dropped (full slab or depth overflow) on one track / overall.
  std::uint64_t drops(unsigned track) const;
  std::uint64_t total_drops() const;

  /// Moves everything recorded so far out (slabs keep their reserved
  /// capacity, so profiling can continue allocation-free afterwards).
  /// Producers must be quiescent across the call.
  ProfileStore take();

 private:
  struct Track;

  Counters read_counters(Track& track);

  std::vector<std::unique_ptr<Track>> tracks_;
  ProfileConfig config_;
  Backend backend_ = Backend::kSoftware;
  ClockFn clock_;
};

/// RAII convenience over Profiler::begin/end for bench and example code
/// (the runtime calls begin/end explicitly across its stage sections).
class ProfileSpan {
 public:
  ProfileSpan(Profiler* profiler, unsigned track, const char* name,
              Stage stage = Stage::kNone, std::uint32_t bs = 0,
              std::uint32_t index = 0)
      : profiler_(profiler), track_(track) {
    if (profiler_) token_ = profiler_->begin(track, name, stage, bs, index);
  }
  ~ProfileSpan() { close(); }

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  void set_payload(std::uint32_t a, std::uint32_t b) {
    a_ = a;
    b_ = b;
  }
  /// Ends the span early (the destructor becomes a no-op).
  void close() {
    if (profiler_ && token_.live) profiler_->end(track_, token_, a_, b_);
    token_.live = false;
  }

 private:
  Profiler* profiler_ = nullptr;
  unsigned track_ = 0;
  Profiler::SpanToken token_;
  std::uint32_t a_ = 0;
  std::uint32_t b_ = 0;
};

/// True when perf_event_open works for self-profiling on this system (the
/// probe the kAuto resolution uses). False on kernels without perf, under
/// seccomp filters, or with perf_event_paranoid locked down.
bool perf_available();

}  // namespace rtopex::obs::profile
