#include "obs/profile/profile_report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace rtopex::obs::profile {

namespace {

std::string path_of(const ProfileSample& s) {
  std::string path;
  for (std::uint8_t d = 0; d < s.depth && d < kMaxSpanDepth; ++d) {
    if (!s.frames[d]) continue;
    if (!path.empty()) path += ';';
    path += s.frames[d];
  }
  if (path.empty()) path = "unknown";
  return path;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::uint64_t span_cost(const ProfileSample& sample, Backend backend) {
  if (backend == Backend::kPerf || sample.delta.cycles > 0)
    return sample.delta.cycles;
  return sample.delta.cpu_time_ns;
}

ProfileReport aggregate(const ProfileStore& store) {
  ProfileReport report;
  report.backend = store.backend;
  report.drops = store.drops;
  std::vector<model::TimingMeasurement> fit_rows;
  for (const ProfileSample& s : store.samples) {
    report.by_path[path_of(s)].add(s);
    report.total.add(s);
    if (s.stage != Stage::kNone) {
      report.by_stage_core[{s.stage, s.core}].add(s);
      report.by_stage_bs[{s.stage, s.bs}].add(s);
    }
    if (s.stage == Stage::kDecode && s.a != 0 && s.b != 0) {
      model::TimingMeasurement m;
      m.modulation_order = s.a & 0xffu;
      m.antennas = (s.a >> 8) & 0xffu;
      m.subcarrier_load = static_cast<double>(s.b & 0xffffu);  // code blocks
      m.iterations = static_cast<double>((s.b >> 16) & 0xffffu);
      // Response in kilocycles; under the software fallback thread-CPU
      // microseconds stand in (1 kilo-ns = 1 us), keeping the fit defined.
      m.time_us = s.delta.cycles > 0
                      ? static_cast<double>(s.delta.cycles) / 1e3
                      : static_cast<double>(s.delta.cpu_time_ns) / 1e3;
      if (m.time_us > 0.0) fit_rows.push_back(m);
    }
  }
  report.cycles_fit_observations = fit_rows.size();
  if (fit_rows.size() >= 4) {
    try {
      report.cycles_fit = model::fit_cycles_model(fit_rows);
      report.cycles_fit_ok = true;
    } catch (const std::exception&) {
      report.cycles_fit_ok = false;  // degenerate variation (single MCS run)
    }
  }
  return report;
}

void fill_registry(const ProfileReport& report, MetricsRegistry& registry) {
  registry.add_gauge("rtopex_profile_backend",
                     "Profiling backend in use (1 = this backend).", 1.0,
                     {{"backend", to_string(report.backend)}});
  registry.add_counter("rtopex_profile_spans_total",
                       "Closed profile spans recorded.",
                       static_cast<double>(report.total.spans));
  registry.add_counter("rtopex_profile_drops_total",
                       "Profile spans dropped (slab full or depth overflow).",
                       static_cast<double>(report.drops));
  const char* stage_names[kNumStages] = {"none", "fft", "demod", "decode"};
  for (const auto& [key, agg] : report.by_stage_core) {
    const MetricsRegistry::Labels labels = {
        {"stage", stage_names[static_cast<unsigned>(key.first)]},
        {"core", std::to_string(key.second)}};
    registry.add_counter("rtopex_profile_stage_spans_total",
                         "Spans per stage and core.",
                         static_cast<double>(agg.spans), labels);
    registry.add_counter("rtopex_profile_cycles_total",
                         "CPU cycles per stage and core (perf backend).",
                         static_cast<double>(agg.total.cycles), labels);
    registry.add_counter("rtopex_profile_instructions_total",
                         "Instructions retired per stage and core.",
                         static_cast<double>(agg.total.instructions), labels);
    registry.add_counter("rtopex_profile_llc_misses_total",
                         "Last-level cache misses per stage and core.",
                         static_cast<double>(agg.total.llc_misses), labels);
    registry.add_counter("rtopex_profile_branch_misses_total",
                         "Branch mispredictions per stage and core.",
                         static_cast<double>(agg.total.branch_misses), labels);
    registry.add_counter("rtopex_profile_cpu_ns_total",
                         "Thread CPU time per stage and core (ns).",
                         static_cast<double>(agg.total.cpu_time_ns), labels);
    registry.add_counter("rtopex_profile_minor_faults_total",
                         "Minor page faults per stage and core.",
                         static_cast<double>(agg.total.minor_faults), labels);
    registry.add_counter("rtopex_profile_major_faults_total",
                         "Major page faults per stage and core.",
                         static_cast<double>(agg.total.major_faults), labels);
    registry.add_gauge("rtopex_profile_ipc",
                       "Instructions per cycle per stage and core.",
                       agg.ipc(), labels);
    registry.add_gauge("rtopex_profile_llc_miss_per_kinstr",
                       "LLC misses per kilo-instruction per stage and core.",
                       agg.llc_miss_per_kinstr(), labels);
  }
  if (report.cycles_fit_ok) {
    const model::CyclesModel& fit = report.cycles_fit;
    auto coeff = [&](const char* name, double v) {
      registry.add_gauge("rtopex_profile_cycles_fit_kc",
                         "Cycles-domain Eq. (1) coefficient (kilocycles).",
                         v, {{"coefficient", name}});
    };
    coeff("w0", fit.c0_kc);
    coeff("w1_antenna", fit.c1_kc);
    coeff("w2_mod_order", fit.c2_kc);
    coeff("w3_block_iter", fit.c3_kc);
    registry.add_gauge("rtopex_profile_cycles_fit_r_squared",
                       "Cycles-domain Eq. (1) fit quality.", fit.r_squared);
  }
}

std::string folded(const ProfileStore& store) {
  std::map<std::string, std::uint64_t> inclusive;
  for (const ProfileSample& s : store.samples)
    inclusive[path_of(s)] += span_cost(s, store.backend);
  // Flamegraph tools sum a frame's descendants back onto it, so each line
  // must carry *self* cost: subtract every path's inclusive total from its
  // parent (counters are per-thread cumulative, so a parent span's delta
  // contains its children's).
  std::map<std::string, std::uint64_t> self = inclusive;
  for (const auto& [path, count] : inclusive) {
    const std::size_t cut = path.rfind(';');
    if (cut == std::string::npos) continue;
    const auto parent = self.find(path.substr(0, cut));
    if (parent != self.end())
      parent->second -= std::min(parent->second, count);
  }
  std::string out;
  for (const auto& [path, count] : self) {
    if (count == 0) continue;
    out += path;
    append(out, " %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

std::vector<ChromeTraceOptions::CounterTrack> counter_tracks(
    const ProfileStore& store) {
  // track id -> lane, built per core in sorted order for determinism.
  std::map<std::uint32_t, ChromeTraceOptions::CounterTrack> ipc, llc, share;
  for (const ProfileSample& s : store.samples) {
    if (s.stage == Stage::kNone) continue;
    if (s.delta.cycles > 0) {
      ipc[s.core].points.emplace_back(
          s.ts_end, static_cast<double>(s.delta.instructions) /
                        static_cast<double>(s.delta.cycles));
      if (s.delta.instructions > 0)
        llc[s.core].points.emplace_back(
            s.ts_end, 1e3 * static_cast<double>(s.delta.llc_misses) /
                          static_cast<double>(s.delta.instructions));
    } else if (s.ts_end > s.ts_begin) {
      share[s.core].points.emplace_back(
          s.ts_end, static_cast<double>(s.delta.cpu_time_ns) /
                        static_cast<double>(s.ts_end - s.ts_begin));
    }
  }
  std::vector<ChromeTraceOptions::CounterTrack> out;
  auto flush = [&out](std::map<std::uint32_t,
                               ChromeTraceOptions::CounterTrack>& lanes,
                      const char* what) {
    for (auto& [core, lane] : lanes) {
      lane.name = "core " + std::to_string(core) + " " + what;
      out.push_back(std::move(lane));
    }
  };
  flush(ipc, "IPC");
  flush(llc, "LLC miss/kinstr");
  flush(share, "cpu share");
  return out;
}

std::string render_report(const ProfileReport& report) {
  std::string out;
  append(out, "backend: %s | spans: %llu | drops: %llu\n",
         to_string(report.backend),
         static_cast<unsigned long long>(report.total.spans),
         static_cast<unsigned long long>(report.drops));
  append(out, "%-10s %-5s %10s %14s %14s %6s %10s %12s\n", "stage", "core",
         "spans", "cycles", "instructions", "ipc", "llc/kinst", "cpu_ms");
  const char* stage_names[kNumStages] = {"none", "fft", "demod", "decode"};
  for (const auto& [key, agg] : report.by_stage_core)
    append(out, "%-10s %-5u %10llu %14llu %14llu %6.2f %10.2f %12.3f\n",
           stage_names[static_cast<unsigned>(key.first)], key.second,
           static_cast<unsigned long long>(agg.spans),
           static_cast<unsigned long long>(agg.total.cycles),
           static_cast<unsigned long long>(agg.total.instructions), agg.ipc(),
           agg.llc_miss_per_kinstr(),
           static_cast<double>(agg.total.cpu_time_ns) / 1e6);
  if (report.cycles_fit_ok) {
    const model::CyclesModel& f = report.cycles_fit;
    append(out,
           "cycles fit (Eq. 1, kilocycles): w0=%.1f w1=%.1f w2=%.1f "
           "w3=%.1f r2=%.3f over %zu decode spans\n",
           f.c0_kc, f.c1_kc, f.c2_kc, f.c3_kc, f.r_squared,
           report.cycles_fit_observations);
  } else {
    append(out, "cycles fit: unavailable (%zu usable decode spans)\n",
           report.cycles_fit_observations);
  }
  return out;
}

}  // namespace rtopex::obs::profile
