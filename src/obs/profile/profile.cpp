#include "obs/profile/profile.hpp"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace rtopex::obs::profile {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kPerf: return "perf";
    case Backend::kSoftware: return "software";
    case Backend::kSynthetic: return "synthetic";
  }
  return "unknown";
}

namespace {

#if defined(__linux__)

/// One grouped perf_event fd set for the calling thread: cycles (leader),
/// instructions, LLC misses, branch misses. Grouped so one read() returns
/// all four atomically, with enabled/running times for multiplex rescaling.
struct PerfGroup {
  static constexpr int kNumEvents = 4;
  int fd[kNumEvents] = {-1, -1, -1, -1};
  bool open_ok = false;

  static long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                              int group_fd, unsigned long flags) {
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
  }

  bool open() {
    const std::uint64_t configs[kNumEvents] = {
        PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (int i = 0; i < kNumEvents; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.type = PERF_TYPE_HARDWARE;
      attr.size = sizeof(attr);
      attr.config = configs[i];
      attr.disabled = i == 0 ? 1 : 0;
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      const long r = perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                     /*group_fd=*/i == 0 ? -1 : fd[0],
                                     PERF_FLAG_FD_CLOEXEC);
      if (r < 0) {
        close();
        return false;
      }
      fd[i] = static_cast<int>(r);
    }
    if (ioctl(fd[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(fd[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      close();
      return false;
    }
    open_ok = true;
    return true;
  }

  /// Fills the four hardware fields of `out`, rescaled for multiplexing
  /// (count * enabled / running). Leaves them untouched on a failed read.
  void read_into(Counters& out) const {
    struct {
      std::uint64_t nr;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
      std::uint64_t values[kNumEvents];
    } data;
    if (!open_ok) return;
    const ssize_t n = ::read(fd[0], &data, sizeof(data));
    if (n < static_cast<ssize_t>(sizeof(std::uint64_t) * 3) ||
        data.nr != kNumEvents)
      return;
    const double scale =
        data.time_running > 0 ? static_cast<double>(data.time_enabled) /
                                    static_cast<double>(data.time_running)
                              : 1.0;
    auto scaled = [scale](std::uint64_t v) {
      return static_cast<std::uint64_t>(static_cast<double>(v) * scale);
    };
    out.cycles = scaled(data.values[0]);
    out.instructions = scaled(data.values[1]);
    out.llc_misses = scaled(data.values[2]);
    out.branch_misses = scaled(data.values[3]);
  }

  void close() {
    for (int& f : fd) {
      if (f >= 0) ::close(f);
      f = -1;
    }
    open_ok = false;
  }
};

void read_software(Counters& out) {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    out.cpu_time_ns = static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
                      static_cast<std::uint64_t>(ts.tv_nsec);
  rusage ru;
  if (getrusage(RUSAGE_THREAD, &ru) == 0) {
    out.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    out.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  }
}

#else  // !__linux__

struct PerfGroup {
  bool open_ok = false;
  bool open() { return false; }
  void read_into(Counters&) const {}
  void close() {}
};

void read_software(Counters&) {}

#endif

}  // namespace

bool perf_available() {
  PerfGroup probe;
  const bool ok = probe.open();
  probe.close();
  return ok;
}

/// Per-track state. Owned by exactly one producer thread between begin()
/// and end(); the sample slab is preallocated so the steady state never
/// touches the heap.
struct Profiler::Track {
  struct OpenSpan {
    const char* name = nullptr;
    Stage stage = Stage::kNone;
    std::uint32_t bs = 0;
    std::uint32_t index = 0;
    TimePoint ts = 0;
    Counters at_begin;
  };
  OpenSpan stack[kMaxSpanDepth];
  std::uint8_t depth = 0;
  std::uint32_t overflow = 0;  ///< spans open past kMaxSpanDepth.
  std::vector<ProfileSample> samples;
  std::uint64_t drops = 0;
  PerfGroup perf;
  bool perf_tried = false;
};

Profiler::Profiler(unsigned num_tracks, const ProfileConfig& config)
    : config_(config) {
  backend_ = config.backend;
  if (backend_ == Backend::kAuto)
    backend_ = perf_available() ? Backend::kPerf : Backend::kSoftware;
  if (backend_ == Backend::kSynthetic && !config_.synthetic_read)
    backend_ = Backend::kSoftware;
  tracks_.reserve(num_tracks);
  for (unsigned i = 0; i < num_tracks; ++i) {
    tracks_.push_back(std::make_unique<Track>());
    tracks_.back()->samples.reserve(config_.max_samples_per_track);
  }
}

Profiler::~Profiler() {
  for (auto& t : tracks_) t->perf.close();
}

Counters Profiler::read_counters(Track& track) {
  Counters c;
  if (backend_ == Backend::kSynthetic) return config_.synthetic_read();
  read_software(c);
  if (backend_ == Backend::kPerf) {
    // Lazy per-thread open: perf groups count the opening thread, so the
    // owner must open its own. A failed open (perf revoked after the
    // construction-time probe) leaves this track on software counters.
    if (!track.perf_tried) {
      track.perf_tried = true;
      track.perf.open();
    }
    track.perf.read_into(c);
  }
  return c;
}

Profiler::SpanToken Profiler::begin(unsigned track_id, const char* name,
                                    Stage stage, std::uint32_t bs,
                                    std::uint32_t index) {
  Track& t = *tracks_[track_id];
  if (t.depth >= kMaxSpanDepth) {
    ++t.overflow;
    ++t.drops;
    return SpanToken{t.depth, false};
  }
  Track::OpenSpan& s = t.stack[t.depth];
  s.name = name;
  s.stage = stage;
  s.bs = bs;
  s.index = index;
  s.ts = now();
  s.at_begin = read_counters(t);
  const SpanToken token{t.depth, true};
  ++t.depth;
  return token;
}

void Profiler::end(unsigned track_id, SpanToken token, std::uint32_t a,
                   std::uint32_t b) {
  Track& t = *tracks_[track_id];
  if (!token.live) {
    // The matching begin() overflowed; unwind its overflow marker.
    if (t.overflow > 0) --t.overflow;
    return;
  }
  // Spans close innermost-first; an out-of-order end() closes everything
  // above it too (their samples are lost — counted as drops).
  while (t.depth > token.depth + 1) {
    --t.depth;
    ++t.drops;
  }
  if (t.depth == 0) return;  // unmatched end(); nothing to close.
  --t.depth;
  const Track::OpenSpan& s = t.stack[t.depth];
  if (t.samples.size() >= config_.max_samples_per_track) {
    ++t.drops;
    return;
  }
  ProfileSample sample;
  sample.ts_begin = s.ts;
  sample.ts_end = now();
  sample.delta = read_counters(t) - s.at_begin;
  for (std::uint8_t d = 0; d <= t.depth && d < kMaxSpanDepth; ++d)
    sample.frames[d] = t.stack[d].name;
  sample.depth = static_cast<std::uint8_t>(t.depth + 1);
  sample.stage = s.stage;
  sample.bs = s.bs;
  sample.index = s.index;
  sample.a = a;
  sample.b = b;
  sample.core = track_id;
  t.samples.push_back(sample);
}

std::uint64_t Profiler::drops(unsigned track) const {
  return tracks_[track]->drops;
}

std::uint64_t Profiler::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& t : tracks_) total += t->drops;
  return total;
}

ProfileStore Profiler::take() {
  ProfileStore store;
  store.backend = backend_;
  std::size_t total = 0;
  for (const auto& t : tracks_) total += t->samples.size();
  store.samples.reserve(total);
  for (auto& t : tracks_) {
    store.samples.insert(store.samples.end(), t->samples.begin(),
                         t->samples.end());
    store.drops += t->drops;
    t->drops = 0;
    t->samples.clear();  // capacity retained: profiling can continue.
  }
  return store;
}

}  // namespace rtopex::obs::profile
