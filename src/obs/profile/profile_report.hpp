// Deterministic aggregation of a drained ProfileStore plus its three
// exports: Prometheus rtopex_profile_* series, Perfetto counter tracks for
// the Chrome trace exporter, and collapsed-stack folded output consumable
// by standard flamegraph tooling (flamegraph.pl / inferno / speedscope).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/timing_model.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile/profile.hpp"

namespace rtopex::obs::profile {

/// Counter totals over a group of spans, with the derived rates the
/// Prometheus export and the report table read off.
struct Aggregate {
  std::uint64_t spans = 0;
  std::uint64_t wall_ns = 0;
  Counters total;

  /// Instructions per cycle; 0 when cycles were not counted (software
  /// backend).
  double ipc() const {
    return total.cycles > 0 ? static_cast<double>(total.instructions) /
                                  static_cast<double>(total.cycles)
                            : 0.0;
  }
  /// LLC misses per kilo-instruction.
  double llc_miss_per_kinstr() const {
    return total.instructions > 0
               ? 1e3 * static_cast<double>(total.llc_misses) /
                     static_cast<double>(total.instructions)
               : 0.0;
  }
  double cycles_per_span() const {
    return spans > 0
               ? static_cast<double>(total.cycles) / static_cast<double>(spans)
               : 0.0;
  }
  void add(const ProfileSample& s) {
    ++spans;
    wall_ns += s.ts_end >= s.ts_begin
                   ? static_cast<std::uint64_t>(s.ts_end - s.ts_begin)
                   : 0;
    total += s.delta;
  }
};

/// Per-stage/per-BS/per-core profile model. Maps are ordered, so iteration
/// (and everything rendered from it) is deterministic for a given store.
struct ProfileReport {
  Backend backend = Backend::kSoftware;
  std::uint64_t drops = 0;

  /// Leaf-frame path ("subframe;decode") -> totals. The folded export is a
  /// direct rendering of this map with the cost column appended.
  std::map<std::string, Aggregate> by_path;
  /// (stage, core) and (stage, bs) cuts over stage-tagged spans.
  std::map<std::pair<Stage, std::uint32_t>, Aggregate> by_stage_core;
  std::map<std::pair<Stage, std::uint32_t>, Aggregate> by_stage_bs;
  /// Whole-store totals.
  Aggregate total;

  /// Cycles-domain Eq. (1) fit over decode spans that carried packed
  /// regressors (pack_decode_regressors / pack_decode_load). Under the
  /// software backend the response falls back to thread-CPU kilo-ns, so
  /// the fit stays defined (and still orders the predictors correctly)
  /// without hardware counters.
  model::CyclesModel cycles_fit;
  bool cycles_fit_ok = false;
  std::size_t cycles_fit_observations = 0;
};

ProfileReport aggregate(const ProfileStore& store);

/// The span cost a single number must summarize: cycles under the perf
/// backend, thread-CPU nanoseconds under the software fallback (the folded
/// output's count column and the counter-track fallback both use it).
std::uint64_t span_cost(const ProfileSample& sample, Backend backend);

/// Prometheus export: rtopex_profile_* counters/gauges per (stage, core)
/// plus the backend marker and the cycles-fit coefficients.
void fill_registry(const ProfileReport& report, MetricsRegistry& registry);

/// Collapsed-stack folded output: one "frame;frame;... count" line per
/// distinct span path, count = summed *self* span_cost (each path's
/// inclusive total minus its children's, since flamegraph tooling adds
/// descendants back on). Zero-self paths are omitted; lines are sorted by
/// path, so equal stores render byte-identically.
std::string folded(const ProfileStore& store);

/// Per-core Perfetto counter lanes for the Chrome trace exporter: under
/// the perf backend an IPC lane and an LLC-misses-per-kinstr lane per
/// core; under the software fallback a thread-CPU-share lane (cpu time /
/// wall time per span). One point per closed stage-tagged span, at its end
/// timestamp.
std::vector<ChromeTraceOptions::CounterTrack> counter_tracks(
    const ProfileStore& store);

/// Human-readable per-stage table plus the cycles fit — the rtopex_profile
/// CLI's stdout body (kept here so tests can golden it).
std::string render_report(const ProfileReport& report);

}  // namespace rtopex::obs::profile
