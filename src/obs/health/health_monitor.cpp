#include "obs/health/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rtopex::obs::health {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kWarn: return "warn";
    case Severity::kPage: return "page";
  }
  return "unknown";
}

const char* to_string(ScopeKind kind) {
  switch (kind) {
    case ScopeKind::kCluster: return "cluster";
    case ScopeKind::kNode: return "node";
    case ScopeKind::kBasestation: return "bs";
  }
  return "unknown";
}

const char* to_string(Rule rule) {
  switch (rule) {
    case Rule::kFastBurn: return "fast_burn";
    case Rule::kSlowBurn: return "slow_burn";
    case Rule::kSlackAnomaly: return "slack_anomaly";
    case Rule::kGapAnomaly: return "gap_anomaly";
    case Rule::kMigrationAnomaly: return "migration_anomaly";
  }
  return "unknown";
}

namespace {

void validate_rule(const BurnRateRule& rule, Duration eval_period,
                   const char* name) {
  const std::string prefix = std::string("HealthConfig: ") + name;
  if (rule.short_window <= 0 || rule.long_window <= 0)
    throw std::invalid_argument(prefix + " windows must be > 0");
  if (rule.short_window % eval_period != 0 ||
      rule.long_window % eval_period != 0)
    throw std::invalid_argument(prefix +
                                " windows must be multiples of eval_period");
  if (rule.short_window > rule.long_window)
    throw std::invalid_argument(prefix + " short window exceeds long window");
  if (rule.threshold <= 0.0)
    throw std::invalid_argument(prefix + " threshold must be > 0");
  if (rule.clear_fraction <= 0.0 || rule.clear_fraction > 1.0)
    throw std::invalid_argument(prefix + " clear_fraction outside (0, 1]");
  if (rule.clear_hold < 0)
    throw std::invalid_argument(prefix + " clear_hold must be >= 0");
}

}  // namespace

void HealthConfig::validate() const {
  if (eval_period <= 0)
    throw std::invalid_argument("HealthConfig: eval_period must be > 0");
  if (slo_miss_rate <= 0.0 || slo_miss_rate > 1.0)
    throw std::invalid_argument("HealthConfig: slo_miss_rate outside (0, 1]");
  validate_rule(fast_burn, eval_period, "fast_burn");
  validate_rule(slow_burn, eval_period, "slow_burn");
  if (anomaly_enabled) {
    if (anomaly_alpha <= 0.0 || anomaly_alpha > 1.0)
      throw std::invalid_argument("HealthConfig: anomaly_alpha outside (0, 1]");
    if (z_threshold <= 0.0)
      throw std::invalid_argument("HealthConfig: z_threshold must be > 0");
    if (z_consecutive == 0)
      throw std::invalid_argument("HealthConfig: z_consecutive must be > 0");
  }
}

namespace {

/// Slack histogram layout: [0.1 us, 100 ms) at 8 buckets/decade — coarse
/// enough to keep one histogram per rolling bucket per node cheap, fine
/// enough for p99 at ~33% relative error bounds.
Histogram make_slack_histogram() { return Histogram(0.1, 1e5, 8); }

struct Bucket {
  std::int64_t seq = -1;  ///< bucket sequence number; -1 = never written.
  std::uint64_t offered = 0;
  std::uint64_t bad = 0;
  std::uint64_t gaps = 0;
  std::uint64_t migrations = 0;
  Duration busy = 0;
  double slack_sum_us = 0.0;
  std::uint64_t slack_count = 0;
  /// Single-bucket placeholder by default; percentile-tracking scopes
  /// (cluster, nodes) swap in the real layout at construction.
  Histogram slack{0.1, 1.0, 1};

  void reset(std::int64_t new_seq) {
    seq = new_seq;
    offered = bad = gaps = migrations = 0;
    busy = 0;
    slack_sum_us = 0.0;
    slack_count = 0;
    slack.reset();
  }
};

struct RuleState {
  bool active = false;
  TimePoint below_since = -1;  ///< burn rules: first boundary below clear.
  unsigned anomalous_streak = 0;
  unsigned normal_streak = 0;
  std::size_t alert_idx = 0;  ///< index into HealthMonitor::alerts_.
};

struct ScopeState {
  ScopeKind kind = ScopeKind::kCluster;
  std::uint32_t id = 0;
  bool track_percentiles = false;  ///< per-bucket slack histograms kept.
  std::int64_t newest_seq = -1;
  std::vector<Bucket> ring;
  RuleState rules[kNumRules];
  model::MeanVarEwma slack_z;
  model::MeanVarEwma gap_z;
  model::MeanVarEwma migration_z;
  /// Run-cumulative slack distribution (percentile-tracking scopes only):
  /// never reset, so the Prometheus export keeps the conventional
  /// monotone-bucket histogram semantics and survives quiescent windows.
  Histogram slack_total{0.1, 1.0, 1};

  Bucket* bucket_for(std::int64_t seq) {
    const std::int64_t len = static_cast<std::int64_t>(ring.size());
    if (seq <= newest_seq - len) return nullptr;  // rotated out already.
    if (seq > newest_seq) {
      for (std::int64_t s = std::max(newest_seq + 1, seq - len + 1); s <= seq;
           ++s)
        ring[static_cast<std::size_t>(s % len)].reset(s);
      newest_seq = seq;
    }
    Bucket& b = ring[static_cast<std::size_t>(seq % len)];
    return b.seq == seq ? &b : nullptr;
  }

  const Bucket* bucket_at(std::int64_t seq) const {
    if (seq < 0) return nullptr;
    const Bucket& b = ring[static_cast<std::size_t>(
        seq % static_cast<std::int64_t>(ring.size()))];
    return b.seq == seq ? &b : nullptr;
  }
};

struct WindowSum {
  std::uint64_t offered = 0;
  std::uint64_t bad = 0;
  Duration busy = 0;
};

}  // namespace

struct HealthMonitor::Impl {
  HealthConfig cfg;
  Topology topo;
  Duration eval_ns = 0;
  std::int64_t last_evaluated = -1;  ///< newest fully evaluated bucket seq.
  Tracer* tracer = nullptr;
  unsigned tracer_track = 0;
  std::uint64_t stale_events = 0;  ///< events older than the ring.

  ScopeState cluster;
  std::vector<ScopeState> nodes;
  std::vector<ScopeState> basestations;

  /// (bs << 32 | index) -> deadline from kArrival, for completion slack.
  std::unordered_map<std::uint64_t, TimePoint> deadline;
  /// Open subframe/host span start per track, for busy-time accounting.
  std::unordered_map<std::uint32_t, TimePoint> span_open;

  unsigned node_of(const TraceEvent& ev) const {
    if (ev.core < topo.track_to_node.size()) return topo.track_to_node[ev.core];
    if (!topo.track_to_node.empty() && ev.bs < topo.bs_to_node.size())
      return topo.bs_to_node[ev.bs];
    return 0;
  }

  std::int64_t seq_of(TimePoint ts) const {
    return ts <= 0 ? 0 : ts / eval_ns;
  }

  unsigned window_buckets(Duration window) const {
    return static_cast<unsigned>(window / eval_ns);
  }

  WindowSum window_sum(const ScopeState& scope, std::int64_t end_seq,
                       unsigned nbuckets) const {
    WindowSum sum;
    for (std::int64_t s = end_seq - static_cast<std::int64_t>(nbuckets) + 1;
         s <= end_seq; ++s) {
      const Bucket* b = scope.bucket_at(s);
      if (!b) continue;
      sum.offered += b->offered;
      sum.bad += b->bad;
      sum.busy += b->busy;
    }
    return sum;
  }

  double burn(const WindowSum& w) const {
    if (w.offered == 0) return 0.0;
    return (static_cast<double>(w.bad) / static_cast<double>(w.offered)) /
           cfg.slo_miss_rate;
  }
};

HealthMonitor::HealthMonitor(const HealthConfig& config,
                             const Topology& topology)
    : impl_(std::make_unique<Impl>()) {
  config.validate();
  if (topology.num_nodes == 0)
    throw std::invalid_argument("HealthMonitor: topology has zero nodes");
  for (const unsigned n : topology.track_to_node)
    if (n >= topology.num_nodes)
      throw std::invalid_argument("HealthMonitor: track maps past num_nodes");
  for (const unsigned n : topology.bs_to_node)
    if (n >= topology.num_nodes)
      throw std::invalid_argument(
          "HealthMonitor: basestation maps past num_nodes");

  Impl& im = *impl_;
  im.cfg = config;
  im.topo = topology;
  im.eval_ns = config.eval_period;
  const Duration longest =
      std::max(config.fast_burn.long_window, config.slow_burn.long_window);
  const std::size_t ring_len = static_cast<std::size_t>(
      longest / config.eval_period + 2);

  auto init_scope = [&](ScopeState& scope, ScopeKind kind, std::uint32_t id,
                        bool percentiles) {
    scope.kind = kind;
    scope.id = id;
    scope.track_percentiles = percentiles;
    scope.ring.assign(ring_len, Bucket{});
    if (percentiles) {
      for (Bucket& b : scope.ring) b.slack = make_slack_histogram();
      scope.slack_total = make_slack_histogram();
    }
    scope.slack_z = model::MeanVarEwma(config.anomaly_alpha, config.z_warmup);
    scope.gap_z = model::MeanVarEwma(config.anomaly_alpha, config.z_warmup);
    scope.migration_z =
        model::MeanVarEwma(config.anomaly_alpha, config.z_warmup);
  };

  init_scope(im.cluster, ScopeKind::kCluster, 0, true);
  im.nodes.resize(topology.num_nodes);
  for (unsigned n = 0; n < topology.num_nodes; ++n)
    init_scope(im.nodes[n], ScopeKind::kNode, n, true);
  im.basestations.resize(topology.num_basestations);
  for (unsigned b = 0; b < topology.num_basestations; ++b)
    init_scope(im.basestations[b], ScopeKind::kBasestation, b, false);
}

HealthMonitor::~HealthMonitor() = default;

void HealthMonitor::set_tracer(Tracer* tracer, unsigned track) {
  impl_->tracer = tracer;
  impl_->tracer_track = track;
}

void HealthMonitor::observe(const TraceEvent& ev) {
  Impl& im = *impl_;
  // Evaluate any boundary this event's timestamp has passed first, so a
  // time-sorted feed never retro-fills an already-evaluated window.
  advance(ev.ts);

  const auto key = [&] {
    return (static_cast<std::uint64_t>(ev.bs) << 32) | ev.index;
  };

  std::uint64_t offered = 0, bad = 0, gaps = 0, migrations = 0;
  Duration busy = 0;
  double slack_us = -1.0;
  bool count_bs = true;

  switch (ev.kind) {
    case EventKind::kArrival:
      // Deadline rides in `a` as deadline - arrival; remember it so the
      // completion event can compute slack without guessing budgets.
      im.deadline[key()] = ev.ts + static_cast<TimePoint>(ev.a);
      return;
    case EventKind::kSubframeBegin:
      im.span_open[ev.core] = ev.ts;
      return;
    case EventKind::kHostBegin:
      im.span_open[ev.core] = ev.ts;
      return;
    case EventKind::kHostEnd: {
      const auto it = im.span_open.find(ev.core);
      if (it == im.span_open.end()) return;
      busy = ev.ts - it->second;
      im.span_open.erase(it);
      count_bs = false;  // chunk work accounts to the host node, not the bs.
      break;
    }
    case EventKind::kSubframeEnd: {
      offered = 1;
      bad = ev.a != 0 ? 1 : 0;
      const auto span = im.span_open.find(ev.core);
      if (span != im.span_open.end()) {
        busy = ev.ts - span->second;
        im.span_open.erase(span);
      }
      const auto dl = im.deadline.find(key());
      if (dl != im.deadline.end()) {
        if (ev.a == 0)
          slack_us = static_cast<double>(std::max<TimePoint>(
                         0, dl->second - ev.ts)) /
                     1000.0;
        im.deadline.erase(dl);
      }
      break;
    }
    case EventKind::kLate:
    case EventKind::kLost:
    case EventKind::kShed:
      offered = 1;
      bad = 1;
      im.deadline.erase(key());
      break;
    case EventKind::kGapEnd:
      gaps = 1;
      count_bs = false;
      break;
    case EventKind::kOffload:
      migrations = 1;
      count_bs = false;
      break;
    default:
      return;  // stage spans, markers, kJobSpec, alerts: not health inputs.
  }

  const std::int64_t seq = im.seq_of(ev.ts);
  const unsigned node = im.node_of(ev);
  auto deposit = [&](ScopeState& scope, bool with_busy) {
    Bucket* b = scope.bucket_for(seq);
    if (!b) {
      ++im.stale_events;
      return;
    }
    b->offered += offered;
    b->bad += bad;
    b->gaps += gaps;
    b->migrations += migrations;
    if (with_busy) b->busy += busy;
    if (slack_us >= 0.0) {
      b->slack_sum_us += slack_us;
      ++b->slack_count;
      if (scope.track_percentiles) {
        b->slack.add(slack_us);
        scope.slack_total.add(slack_us);
      }
    }
  };

  deposit(im.cluster, true);
  if (node < im.nodes.size()) deposit(im.nodes[node], true);
  if (count_bs && ev.bs < im.basestations.size())
    deposit(im.basestations[ev.bs], false);
}

namespace {

/// Packs severity and scope kind into the kAlert `a` payload word.
std::uint32_t pack_alert_a(Severity severity, ScopeKind scope) {
  return static_cast<std::uint32_t>(severity) |
         (static_cast<std::uint32_t>(scope) << 8);
}

std::uint32_t milli_payload(double value) {
  return clamp_payload_ns(static_cast<std::int64_t>(value * 1000.0));
}

}  // namespace

void HealthMonitor::advance(TimePoint now) {
  Impl& im = *impl_;

  // Evaluate boundary T = (seq + 1) * eval once `now` has reached it: every
  // event belonging to buckets <= seq must already have been observed on a
  // sorted feed.
  while ((im.last_evaluated + 2) * im.eval_ns <= now) {
    const std::int64_t seq = im.last_evaluated + 1;
    const TimePoint boundary = (seq + 1) * im.eval_ns;

    auto emit_transition = [&](const ScopeState& scope, Rule rule,
                               Severity severity, double value, bool fired) {
      TraceEvent ev;
      ev.ts = boundary;
      ev.bs = scope.id;
      ev.index = static_cast<std::uint32_t>(rule);
      ev.a = pack_alert_a(severity, scope.kind);
      ev.b = milli_payload(value);
      ev.core = im.tracer_track;
      ev.kind = fired ? EventKind::kAlert : EventKind::kAlertClear;
      events_.push_back(ev);
      if (im.tracer) im.tracer->emit(ev);
    };

    auto eval_burn_rule = [&](ScopeState& scope, Rule rule,
                              const BurnRateRule& r) {
      RuleState& st = scope.rules[static_cast<std::size_t>(rule)];
      const WindowSum short_w =
          im.window_sum(scope, seq, im.window_buckets(r.short_window));
      const WindowSum long_w =
          im.window_sum(scope, seq, im.window_buckets(r.long_window));
      const double burn_s = im.burn(short_w);
      const double burn_l = im.burn(long_w);
      if (!st.active) {
        if (long_w.offered >= im.cfg.min_window_samples &&
            burn_s >= r.threshold && burn_l >= r.threshold) {
          st.active = true;
          st.below_since = -1;
          st.alert_idx = alerts_.size();
          alerts_.push_back({rule, r.severity, scope.kind, scope.id, boundary,
                             -1, burn_l, long_w.bad, long_w.offered});
          emit_transition(scope, rule, r.severity, burn_l, true);
        }
        return;
      }
      const double clear_at = r.clear_fraction * r.threshold;
      if (burn_s < clear_at && burn_l < clear_at) {
        if (st.below_since < 0) st.below_since = boundary;
        if (boundary - st.below_since >= r.clear_hold) {
          st.active = false;
          st.below_since = -1;
          alerts_[st.alert_idx].cleared_at = boundary;
          emit_transition(scope, rule, r.severity, burn_l, false);
        }
      } else {
        st.below_since = -1;
      }
    };

    // One anomaly detector: the rule fires after `z_consecutive` anomalous
    // buckets in a row and clears after the same count of normal ones.
    // `sample` < 0 means "no observation this bucket" (skips the EWMA).
    auto eval_anomaly = [&](ScopeState& scope, Rule rule,
                            model::MeanVarEwma& ewma, double sample,
                            bool low_is_bad) {
      if (!im.cfg.anomaly_enabled) return;
      RuleState& st = scope.rules[static_cast<std::size_t>(rule)];
      if (sample < 0.0) return;
      const double z = ewma.zscore(sample);
      const bool anomalous =
          low_is_bad ? z <= -im.cfg.z_threshold : z >= im.cfg.z_threshold;
      // Anomalous buckets are withheld from the EWMA so a sustained fault
      // cannot teach the detector that broken is normal before it fires.
      if (!anomalous) ewma.observe(sample);
      if (anomalous) {
        ++st.anomalous_streak;
        st.normal_streak = 0;
      } else {
        st.anomalous_streak = 0;
        ++st.normal_streak;
      }
      if (!st.active && st.anomalous_streak >= im.cfg.z_consecutive) {
        st.active = true;
        st.alert_idx = alerts_.size();
        alerts_.push_back({rule, Severity::kWarn, scope.kind, scope.id,
                           boundary, -1, std::abs(z), 0, 0});
        emit_transition(scope, rule, Severity::kWarn, std::abs(z), true);
      } else if (st.active && st.normal_streak >= im.cfg.z_consecutive) {
        st.active = false;
        alerts_[st.alert_idx].cleared_at = boundary;
        emit_transition(scope, rule, Severity::kWarn, std::abs(z), false);
      }
    };

    auto eval_scope = [&](ScopeState& scope) {
      eval_burn_rule(scope, Rule::kFastBurn, im.cfg.fast_burn);
      eval_burn_rule(scope, Rule::kSlowBurn, im.cfg.slow_burn);
      const Bucket* b = scope.bucket_at(seq);
      const double slack_mean =
          b && b->slack_count > 0
              ? b->slack_sum_us / static_cast<double>(b->slack_count)
              : -1.0;
      eval_anomaly(scope, Rule::kSlackAnomaly, scope.slack_z, slack_mean,
                   /*low_is_bad=*/true);
      if (scope.kind != ScopeKind::kBasestation) {
        // Gap/migration rates are core phenomena; basestation scope only
        // watches its own outcomes and slack.
        eval_anomaly(scope, Rule::kGapAnomaly, scope.gap_z,
                     b ? static_cast<double>(b->gaps) : 0.0,
                     /*low_is_bad=*/false);
        eval_anomaly(scope, Rule::kMigrationAnomaly, scope.migration_z,
                     b ? static_cast<double>(b->migrations) : 0.0,
                     /*low_is_bad=*/false);
      }
    };

    eval_scope(im.cluster);
    for (ScopeState& scope : im.nodes) eval_scope(scope);
    for (ScopeState& scope : im.basestations) eval_scope(scope);

    im.last_evaluated = seq;
    if (im.cfg.keep_history) history_.push_back(snapshot());
  }
}

void HealthMonitor::finish(TimePoint end) {
  const Impl& im = *impl_;
  // Enough empty boundaries past the end for every clearable alert to
  // actually clear: the longest window plus the longest hold, plus the
  // anomaly streak length, plus one boundary of slack.
  const Duration drain =
      std::max(im.cfg.fast_burn.long_window, im.cfg.slow_burn.long_window) +
      std::max(im.cfg.fast_burn.clear_hold, im.cfg.slow_burn.clear_hold) +
      static_cast<Duration>(im.cfg.z_consecutive + 2) * im.eval_ns;
  advance(std::max<TimePoint>(end, 0) + drain);
}

unsigned HealthMonitor::active_alerts(Severity severity) const {
  unsigned n = 0;
  for (const Alert& a : alerts_)
    if (a.active() && a.severity == severity) ++n;
  return n;
}

HealthSnapshot HealthMonitor::snapshot() const {
  const Impl& im = *impl_;
  HealthSnapshot snap;
  snap.at = (im.last_evaluated + 1) * im.eval_ns;

  auto scope_health = [&](const ScopeState& scope, unsigned cores) {
    ScopeHealth h;
    h.kind = scope.kind;
    h.id = scope.id;
    const unsigned nbuckets =
        im.window_buckets(im.cfg.slow_burn.long_window);
    const WindowSum w = im.window_sum(scope, im.last_evaluated, nbuckets);
    h.offered = w.offered;
    h.bad = w.bad;
    h.miss_rate = w.offered == 0 ? 0.0
                                 : static_cast<double>(w.bad) /
                                       static_cast<double>(w.offered);
    h.burn_rate = h.miss_rate / im.cfg.slo_miss_rate;
    if (cores > 0) {
      const double capacity = static_cast<double>(cores) *
                              static_cast<double>(nbuckets) *
                              static_cast<double>(im.eval_ns);
      h.utilization =
          capacity > 0.0 ? static_cast<double>(w.busy) / capacity : 0.0;
    }
    if (scope.track_percentiles) {
      Histogram slack = make_slack_histogram();
      for (std::int64_t s = im.last_evaluated - nbuckets + 1;
           s <= im.last_evaluated; ++s) {
        const Bucket* b = scope.bucket_at(s);
        if (b && b->slack.count() > 0) slack.merge(b->slack);
      }
      if (slack.count() > 0) {
        h.slack_p50_us = slack.p50();
        h.slack_p99_us = slack.percentile(0.01);  // worst-1% slack: low tail.
      }
      if (scope.slack_total.count() > 0) h.slack = scope.slack_total;
    }
    for (const RuleState& st : scope.rules)
      if (st.active) {
        const Alert& a = alerts_[st.alert_idx];
        if (a.severity == Severity::kPage)
          ++h.active_page;
        else
          ++h.active_warn;
      }
    double score =
        100.0 *
        std::max(0.0, 1.0 - h.burn_rate / im.cfg.fast_burn.threshold);
    if (h.active_warn > 0) score = std::min(score, 70.0);
    if (h.active_page > 0) score = std::min(score, 25.0);
    h.health_score = score;
    return h;
  };

  unsigned total_cores = 0;
  for (const unsigned c : im.topo.node_cores) total_cores += c;
  snap.cluster = scope_health(im.cluster, total_cores);
  snap.nodes.reserve(im.nodes.size());
  for (std::size_t n = 0; n < im.nodes.size(); ++n)
    snap.nodes.push_back(scope_health(
        im.nodes[n],
        n < im.topo.node_cores.size() ? im.topo.node_cores[n] : 0));
  return snap;
}

void HealthMonitor::fill_registry(MetricsRegistry& registry) const {
  health::fill_registry(snapshot(), alerts_, registry);
}

void fill_registry(const HealthSnapshot& snap, const std::vector<Alert>& alerts,
                   MetricsRegistry& registry) {
  auto scope_labels = [](const ScopeHealth& h) {
    MetricsRegistry::Labels labels{{"scope", to_string(h.kind)}};
    if (h.kind != ScopeKind::kCluster)
      labels.push_back({to_string(h.kind), std::to_string(h.id)});
    return labels;
  };
  auto emit_scope = [&](const ScopeHealth& h) {
    const MetricsRegistry::Labels labels = scope_labels(h);
    registry.add_gauge("rtopex_health_score",
                       "Scope health score, 0 (paging) to 100 (idle-clean).",
                       h.health_score, labels);
    registry.add_gauge("rtopex_health_miss_rate",
                       "Bad-outcome fraction over the slow-burn long window.",
                       h.miss_rate, labels);
    registry.add_gauge("rtopex_health_burn_rate",
                       "Error-budget burn rate in SLO multiples.", h.burn_rate,
                       labels);
    registry.add_gauge("rtopex_health_utilization",
                       "Busy fraction of the scope's cores over the window.",
                       h.utilization, labels);
    registry.add_gauge("rtopex_health_slack_p50_us",
                       "Median completion slack over the window (us).",
                       h.slack_p50_us, labels);
    registry.add_gauge(
        "rtopex_health_slack_p99_us",
        "Worst-percentile (lowest 1%) completion slack over the window (us).",
        h.slack_p99_us, labels);
    if (h.slack.count() > 0)
      registry.add_histogram(
          "rtopex_health_slack_us",
          "Completion slack distribution since the run began (us).", h.slack,
          labels);
    registry.add_gauge("rtopex_health_window_offered",
                       "Outcomes seen in the slow-burn long window.",
                       static_cast<double>(h.offered), labels);
  };

  emit_scope(snap.cluster);
  for (const ScopeHealth& h : snap.nodes) emit_scope(h);

  for (const Severity severity : {Severity::kWarn, Severity::kPage}) {
    unsigned active = 0;
    for (const Alert& a : alerts)
      if (a.active() && a.severity == severity) ++active;
    registry.add_gauge("rtopex_health_active_alerts",
                       "Currently active alerts across every scope.",
                       static_cast<double>(active),
                       {{"severity", to_string(severity)}});
  }

  std::uint64_t fired[kNumRules] = {};
  std::uint64_t cleared[kNumRules] = {};
  for (const Alert& a : alerts) {
    ++fired[static_cast<std::size_t>(a.rule)];
    if (!a.active()) ++cleared[static_cast<std::size_t>(a.rule)];
  }
  for (unsigned r = 0; r < kNumRules; ++r) {
    const MetricsRegistry::Labels labels{
        {"rule", to_string(static_cast<Rule>(r))}};
    registry.add_counter("rtopex_health_alerts_fired_total",
                         "Alerts fired since the run began.",
                         static_cast<double>(fired[r]), labels);
    registry.add_counter("rtopex_health_alerts_cleared_total",
                         "Fired alerts that have since cleared.",
                         static_cast<double>(cleared[r]), labels);
  }
}

std::unique_ptr<HealthMonitor> scan_store(const TraceStore& store,
                                          const HealthConfig& config,
                                          const Topology& topology) {
  auto monitor = std::make_unique<HealthMonitor>(config, topology);
  std::vector<TraceEvent> events = store.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.ts < y.ts;
                   });
  TimePoint end = 0;
  for (const TraceEvent& ev : events) {
    monitor->observe(ev);
    end = std::max(end, ev.ts);
  }
  monitor->finish(end);
  return monitor;
}

void write_alert_log_csv(const std::string& path,
                         const std::vector<Alert>& alerts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f)
    throw std::runtime_error("write_alert_log_csv: cannot open " + path);
  std::fputs(
      "rule,severity,scope,scope_id,fired_ns,cleared_ns,value,"
      "window_bad,window_offered\n",
      f);
  for (const Alert& a : alerts)
    std::fprintf(f, "%s,%s,%s,%u,%lld,%lld,%.6g,%llu,%llu\n",
                 to_string(a.rule), to_string(a.severity), to_string(a.scope),
                 a.scope_id, static_cast<long long>(a.fired_at),
                 static_cast<long long>(a.cleared_at), a.value,
                 static_cast<unsigned long long>(a.window_bad),
                 static_cast<unsigned long long>(a.window_offered));
  if (std::fclose(f) != 0)
    throw std::runtime_error("write_alert_log_csv: short write to " + path);
}

std::string describe(const Alert& alert) {
  char buf[192];
  char scope[48];
  if (alert.scope == ScopeKind::kCluster)
    std::snprintf(scope, sizeof(scope), "cluster");
  else
    std::snprintf(scope, sizeof(scope), "%s %u", to_string(alert.scope),
                  alert.scope_id);
  if (alert.active())
    std::snprintf(buf, sizeof(buf),
                  "%s %s @ %s fired=%.1fms value=%.2f (ACTIVE)",
                  to_string(alert.severity), to_string(alert.rule), scope,
                  to_ms(alert.fired_at), alert.value);
  else
    std::snprintf(buf, sizeof(buf),
                  "%s %s @ %s fired=%.1fms cleared=%.1fms value=%.2f",
                  to_string(alert.severity), to_string(alert.rule), scope,
                  to_ms(alert.fired_at), to_ms(alert.cleared_at), alert.value);
  return buf;
}

}  // namespace rtopex::obs::health
