// Live fleet health: rolling-window SLO tracking with SRE-style
// multi-window burn-rate alerting and online anomaly detection, shared by
// the virtual-time simulator, the real-thread runtime and the cluster
// layer. The tracing stack stays the single source of truth: a
// HealthMonitor *consumes* the same TraceEvents the postmortem engine
// reads — kArrival/kSubframeEnd for outcomes and slack, kLate/kLost/kShed
// for the never-executed paths, kGap*/kOffload for behavioural rates — and
// *produces* kAlert/kAlertClear events back into the trace, so every alert
// is replayable, mergeable and attributable after the fact.
//
// Scope hierarchy. Every outcome is accounted at three scopes at once:
// its basestation, the node that hosted it (via the track -> node map, or
// the basestation's home for control-plane events), and the whole cluster.
// Rules evaluate independently per scope, so a single dead node pages both
// its own node scope and — when the fleet-wide budget burns fast enough —
// the cluster scope, while unaffected nodes stay green.
//
// Burn-rate semantics (the SRE multi-window rule): with an SLO of
// `slo_miss_rate`, the burn rate of a window is
//     burn = (bad / offered) / slo_miss_rate
// i.e. how many times faster than "exactly at SLO" the error budget is
// being spent. A rule fires when BOTH its short and long window exceed the
// threshold (the short window makes alerts fast to clear, the long window
// suppresses blips), and clears with hysteresis: both windows must stay
// below clear_fraction x threshold for clear_hold before the alert ends.
//
// Determinism: time is whatever the feeding substrate stamps into the
// events (virtual ns in the sim/cluster, wall ns in the runtime).
// Evaluation happens on fixed eval_period boundaries, all state is
// integer-or-IEEE arithmetic in a fixed order, and the monitor never reads
// a real clock — so same-seed virtual-time runs produce bit-identical
// kAlert/kAlertClear streams.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/online_fit.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"

namespace rtopex::obs::health {

enum class Severity : std::uint8_t {
  kWarn = 1,  ///< slow burn / anomaly: look when convenient.
  kPage = 2,  ///< fast burn: the SLO is burning now.
};

enum class ScopeKind : std::uint8_t {
  kCluster = 0,
  kNode = 1,
  kBasestation = 2,
};

/// Alert-rule vocabulary; the rule id rides in TraceEvent::index.
enum class Rule : std::uint8_t {
  kFastBurn = 0,         ///< page: short+long window burn over threshold.
  kSlowBurn = 1,         ///< warn: slower sustained budget burn.
  kSlackAnomaly = 2,     ///< warn: mean completion slack collapsed (z-score).
  kGapAnomaly = 3,       ///< warn: idle-gap rate jumped (z-score).
  kMigrationAnomaly = 4, ///< warn: migration/offload rate jumped (z-score).
};

inline constexpr unsigned kNumRules = 5;

const char* to_string(Severity severity);
const char* to_string(ScopeKind kind);
const char* to_string(Rule rule);

/// One multi-window burn-rate rule. Windows are multiples of the monitor's
/// eval_period (validated); severities map fast-burn -> page and
/// slow-burn -> warn in the defaults but are free knobs.
struct BurnRateRule {
  Duration short_window = 0;
  Duration long_window = 0;
  /// Fire when burn >= threshold in BOTH windows.
  double threshold = 1.0;
  /// Clear when burn < clear_fraction * threshold in both windows...
  double clear_fraction = 0.5;
  /// ...continuously for this long (hysteresis hold).
  Duration clear_hold = 0;
  Severity severity = Severity::kPage;
};

/// Everything the monitor needs to know about the run. Defaults are tuned
/// for the millisecond-scale LTE subframe cadence (1 ms TTI): detection in
/// one-to-few subframe periods, clears within tens of periods. Wall-clock
/// runtimes with slower simulated periods scale these up via config.
struct HealthConfig {
  bool enabled = false;

  /// Deadline-miss SLO target: the tolerated long-run miss fraction.
  /// "bad" counts misses AND losses (a dead node burns budget immediately).
  double slo_miss_rate = 0.01;

  /// Rule-evaluation cadence; also the rolling-window bucket width.
  Duration eval_period = milliseconds(5);

  /// Page: the classic fast-burn pair, scaled to subframe time. 14x burn
  /// over both windows empties a day-equivalent budget in under two hours.
  BurnRateRule fast_burn{milliseconds(10), milliseconds(30), 14.0, 0.5,
                         milliseconds(30), Severity::kPage};
  /// Warn: slow sustained burn.
  BurnRateRule slow_burn{milliseconds(30), milliseconds(120), 2.0, 0.5,
                         milliseconds(60), Severity::kWarn};

  /// A burn rule only *fires* once its long window holds at least this many
  /// outcomes (clearing is never gated: an empty window reads as burn 0).
  std::uint64_t min_window_samples = 20;

  /// EWMA/z-score anomaly detectors over per-bucket slack means and
  /// gap/migration rates.
  bool anomaly_enabled = true;
  double anomaly_alpha = 0.25;     ///< EWMA gain of both moments.
  double z_threshold = 4.0;        ///< |z| that counts as anomalous.
  unsigned z_consecutive = 3;      ///< anomalous buckets in a row to fire.
  unsigned z_warmup = 8;           ///< buckets before z-scores are trusted.

  /// Keep a per-eval HealthSnapshot history (rtopex_cluster --watch).
  bool keep_history = false;

  /// Throws std::invalid_argument on: non-positive eval period or SLO,
  /// windows that are zero / not multiples of eval_period / short > long,
  /// thresholds <= 0, clear fractions outside (0, 1], or anomaly knobs
  /// <= 0 where a positive value is required.
  void validate() const;
};

/// Static shape of the run being watched: how tracks and basestations map
/// onto nodes. Single-node substrates leave the maps empty (everything is
/// node 0); ClusterSim fills them from its track ranges and placement.
struct Topology {
  unsigned num_nodes = 1;
  unsigned num_basestations = 0;
  /// Worker cores per node (utilization denominator); empty -> unknown,
  /// utilization reads 0.
  std::vector<unsigned> node_cores;
  /// track -> node; empty means every track is node 0. Tracks at or past
  /// the end (e.g. the cluster control track) resolve via bs_to_node.
  std::vector<unsigned> track_to_node;
  /// basestation -> home node for events on unmapped tracks; empty means
  /// node 0.
  std::vector<unsigned> bs_to_node;
};

/// One fired (and possibly cleared) alert.
struct Alert {
  Rule rule = Rule::kFastBurn;
  Severity severity = Severity::kPage;
  ScopeKind scope = ScopeKind::kCluster;
  std::uint32_t scope_id = 0;    ///< node id / basestation id; 0 for cluster.
  TimePoint fired_at = 0;
  TimePoint cleared_at = -1;     ///< -1 while active.
  double value = 0.0;            ///< burn (SLO multiples) or |z| at fire.
  std::uint64_t window_bad = 0;      ///< long-window outcomes at fire time.
  std::uint64_t window_offered = 0;

  bool active() const { return cleared_at < 0; }
  friend bool operator==(const Alert&, const Alert&) = default;
};

/// Point-in-time health of one scope (a row of the rtopex_top table).
struct ScopeHealth {
  ScopeKind kind = ScopeKind::kCluster;
  std::uint32_t id = 0;
  std::uint64_t offered = 0;  ///< outcomes in the slow-burn long window.
  std::uint64_t bad = 0;
  double miss_rate = 0.0;     ///< bad / offered over that window.
  double burn_rate = 0.0;     ///< miss_rate / slo.
  double utilization = 0.0;   ///< busy / (cores x window); nodes only.
  double slack_p50_us = 0.0;  ///< completion slack percentiles over the
  double slack_p99_us = 0.0;  ///< window (completed subframes only).
  /// Run-cumulative slack distribution (completed subframes only; empty
  /// unless the scope tracks percentiles). Exported as the native
  /// Prometheus histogram rtopex_health_slack_us — cumulative so the
  /// bucket counters stay monotone as Prometheus expects — from which
  /// consumers (rtopex_top) derive percentiles without trusting the
  /// windowed gauges above.
  Histogram slack{0.1, 1.0, 1};
  unsigned active_warn = 0;
  unsigned active_page = 0;
  /// 0..100: 100 x (1 - burn/threshold)+ capped at 70 under an active warn
  /// and 25 under an active page, so the score degrades before an alert
  /// fires and an alert always dominates the number.
  double health_score = 100.0;
};

struct HealthSnapshot {
  TimePoint at = 0;
  ScopeHealth cluster;
  std::vector<ScopeHealth> nodes;  ///< one row per node, in node order.
};

/// The engine. Feed it events (any order within a bucket; exactly
/// time-sorted input makes the output deterministic), advance() it past
/// evaluation boundaries, then read alerts / snapshots / metrics.
/// Single-threaded by design: in the runtime it lives entirely on the
/// ticker thread, in virtual time on the simulation loop.
class HealthMonitor {
 public:
  /// Validates the config (HealthConfig::validate) and the topology
  /// (throws std::invalid_argument on zero nodes or an out-of-range map).
  HealthMonitor(const HealthConfig& config, const Topology& topology);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Alert events are additionally pushed onto this tracer track (the
  /// emitting substrate's own collector drains them like any other event).
  /// Optional: alert_events() always records them regardless.
  void set_tracer(Tracer* tracer, unsigned track);

  /// Consume one trace event. Events at or past the next eval boundary
  /// first advance evaluation, so a sorted feed never attributes an
  /// outcome to an already-evaluated window.
  void observe(const TraceEvent& ev);

  /// Evaluate every rule at each eval boundary <= now. Idempotent.
  void advance(TimePoint now);

  /// Final advance past the end of the run: evaluates through `end` plus
  /// one full long window of empty buckets so quiescent scopes can clear.
  void finish(TimePoint end);

  /// Every alert fired so far, in fire order (cleared ones keep their slot).
  const std::vector<Alert>& alerts() const { return alerts_; }
  unsigned active_alerts(Severity severity) const;

  /// The kAlert/kAlertClear events emitted so far, in emission order.
  const std::vector<TraceEvent>& alert_events() const { return events_; }

  /// Health table at the last evaluated boundary.
  HealthSnapshot snapshot() const;
  /// Per-eval snapshots (empty unless config.keep_history).
  const std::vector<HealthSnapshot>& history() const { return history_; }

  /// rtopex_health_* series: per-scope score/burn/miss-rate/slack gauges,
  /// active-alert gauges and fired-alert counters.
  void fill_registry(MetricsRegistry& registry) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<Alert> alerts_;
  std::vector<TraceEvent> events_;
  std::vector<HealthSnapshot> history_;
};

/// Convenience for trace-fed substrates: stable-sort a drained store by
/// timestamp, feed it through a fresh monitor, finish at the last event.
/// Returns the monitor for snapshot/registry access.
std::unique_ptr<HealthMonitor> scan_store(const TraceStore& store,
                                          const HealthConfig& config,
                                          const Topology& topology);

/// The rtopex_health_* series from stored outputs — what
/// HealthMonitor::fill_registry delegates to. Lets a consumer holding only
/// a ClusterResult (snapshot + alert log) re-emit the health series into a
/// federated registry without the live monitor.
void fill_registry(const HealthSnapshot& snapshot,
                   const std::vector<Alert>& alerts,
                   MetricsRegistry& registry);

/// Alert log CSV (rule, severity, scope, scope_id, fired_ns, cleared_ns,
/// value, window_bad, window_offered), one row per alert. Throws
/// std::runtime_error on I/O failure.
void write_alert_log_csv(const std::string& path,
                         const std::vector<Alert>& alerts);

/// One-line rendering ("PAGE fast_burn node 1 fired=305ms ...") for CLIs.
std::string describe(const Alert& alert);

}  // namespace rtopex::obs::health
