// Fixed-bucket log-scale latency histogram: the default recording mode for
// latency-like samples (processing times, idle gaps), replacing unbounded
// raw-sample vectors. Buckets grow geometrically, so relative resolution is
// constant across the range and a percentile read is accurate to within one
// bucket width. All operations are O(1) or O(buckets); memory is fixed at
// construction, independent of sample count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rtopex::obs {

class Histogram {
 public:
  /// Default layout for microsecond latencies: [0.1 us, 1e7 us) with 24
  /// buckets per decade (~10% relative bucket width, 192 buckets).
  Histogram() : Histogram(0.1, 1e7, 24) {}

  /// Geometric buckets over [lo, hi): bucket i spans
  /// [lo * g^i, lo * g^(i+1)) with g = 10^(1/buckets_per_decade). Samples
  /// below lo (or non-positive) land in the first bucket, samples at or
  /// above hi in the last — total mass is always preserved. Throws
  /// std::invalid_argument unless hi > lo > 0 and buckets_per_decade > 0.
  Histogram(double lo, double hi, unsigned buckets_per_decade);

  void add(double x);

  /// Adds another histogram's mass. Throws std::invalid_argument when the
  /// bucket layouts differ.
  void merge(const Histogram& other);

  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Exact observed extrema (not bucket edges); 0 when empty.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Quantile estimate, q in [0, 1], linearly interpolated inside the
  /// containing bucket and clamped to the observed [min, max] — accurate to
  /// within one bucket width of the true sample quantile. Returns 0 on an
  /// empty histogram (never reads bucket 0 of nothing).
  double percentile(double q) const;

  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const;
  /// Widest relative step between adjacent bucket edges (upper/lower).
  double growth_factor() const { return growth_; }

  bool same_layout(const Histogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           buckets_per_decade_ == other.buckets_per_decade_;
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::size_t bucket_index(double x) const;

  double lo_ = 0.0;
  double hi_ = 0.0;
  unsigned buckets_per_decade_ = 0;
  double growth_ = 0.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rtopex::obs
