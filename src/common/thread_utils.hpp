// Thin wrappers over the pthread knobs the paper's implementation relies on:
// 1:1 kernel threads pinned to dedicated cores with SCHED_FIFO priority
// (paper §4.1/§4.2 "processing threads are pinned to dedicated cores and use
// FIFO scheduling").
//
// All calls degrade gracefully (return false) on hosts where the operation
// is not permitted or the core does not exist, so the library remains usable
// on laptops and CI machines.
#pragma once

#include <cstdint>
#include <string>

namespace rtopex {

/// Number of online CPU cores on this host.
unsigned hardware_core_count();

/// Pin the calling thread to the given core. Returns false on failure
/// (e.g. core id out of range or insufficient privileges).
bool pin_current_thread(unsigned core_id);

/// Request SCHED_FIFO with the given priority (1..99) for the calling
/// thread. Returns false when the caller lacks CAP_SYS_NICE.
bool set_current_thread_fifo(int priority);

/// Name the calling thread (visible in /proc and debuggers); truncated to
/// the 15-character kernel limit.
void set_current_thread_name(const std::string& name);

/// Monotonic wall-clock timestamp in nanoseconds (CLOCK_MONOTONIC_RAW when
/// available). Used for real measurements, never for simulation time.
std::int64_t monotonic_ns();

/// Busy-spin until monotonic_ns() >= deadline_ns. Used by the real-thread
/// runtime's 1 ms subframe ticker where sleep jitter would be unacceptable.
void spin_until_ns(std::int64_t deadline_ns);

}  // namespace rtopex
