// Virtual-time primitives shared by the simulator, schedulers and models.
//
// All simulated durations and instants are integer nanoseconds. Integer time
// keeps the discrete-event simulator exactly reproducible across platforms
// (no floating-point drift in event ordering).
#pragma once

#include <cstdint>

namespace rtopex {

/// A point in virtual time, in nanoseconds since simulation start.
using TimePoint = std::int64_t;

/// A span of virtual time, in nanoseconds. May be negative in intermediate
/// arithmetic (e.g. slack computations) — callers clamp where needed.
using Duration = std::int64_t;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t us) { return us * 1000; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * 1'000'000; }

/// Fractional microseconds, rounded to the nearest nanosecond.
constexpr Duration microseconds_f(double us) {
  return static_cast<Duration>(us * 1000.0 + (us >= 0 ? 0.5 : -0.5));
}

constexpr double to_us(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1'000'000.0; }

/// LTE transmission-time interval: one subframe every 1 ms.
inline constexpr Duration kSubframePeriod = milliseconds(1);

/// Uplink HARQ timing: ACK/NACK must be encoded in the downlink subframe sent
/// 3 ms after reception; TX processing claims the last 1 ms, so reception has
/// a 2 ms end-to-end budget (paper Eq. 2).
inline constexpr Duration kEndToEndBudget = milliseconds(2);

}  // namespace rtopex
