#include "common/rng.hpp"

#include <cmath>

namespace rtopex {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection: draw until below the largest multiple of n.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace rtopex
