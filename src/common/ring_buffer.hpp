// Fixed-capacity ring buffers.
//
// The paper's global scheduler (§3.1.2) holds incoming subframes in "a
// fixed-size ring-buffer" shared across basestations. SpscRingBuffer is the
// lock-free single-producer/single-consumer variant used on the hot transport
// -> processing path of the real-thread runtime; MpmcRingBuffer is the
// mutex-guarded variant used by the global scheduler's shared queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace rtopex {

/// Lock-free SPSC ring. Capacity is rounded up to a power of two; one slot is
/// sacrificed to distinguish full from empty.
template <typename T>
class SpscRingBuffer {
 public:
  explicit SpscRingBuffer(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRingBuffer(const SpscRingBuffer&) = delete;
  SpscRingBuffer& operator=(const SpscRingBuffer&) = delete;

  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

/// Mutex-guarded MPMC ring with blocking pop, used for the global scheduler's
/// shared subframe queue. push() on a full ring drops the oldest element and
/// returns false (the C-RAN queue must never block the transport thread).
template <typename T>
class MpmcRingBuffer {
 public:
  explicit MpmcRingBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Returns false when an old element was evicted to make room.
  bool push(T value) {
    bool clean = true;
    {
      std::lock_guard lock(mu_);
      if (items_.size() == capacity_) {
        items_.erase(items_.begin());
        clean = false;
      }
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return clean;
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.erase(items_.begin());
    return value;
  }

  /// Blocks until an element is available or close() is called.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.erase(items_.begin());
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  bool closed_ = false;
};

}  // namespace rtopex
