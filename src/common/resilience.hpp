// Shared degraded-mode vocabulary: the per-subframe quality level the
// processing chain fell back to, and the resilience counters both substrates
// (the real-thread runtime and the virtual-time simulator) report.
//
// Rationale (Rost et al., "Computationally Aware Sum-Rate Optimal Scheduling
// for Centralized RANs"): trading decode effort for deadline compliance beats
// dropping outright. The paper's slack check (§4.1) only knows how to drop;
// the resilience layer first shrinks the turbo-iteration cap, and only drops
// when even the minimal-quality estimate cannot fit.
#pragma once

#include <array>
#include <cstddef>

namespace rtopex {

/// Quality level a subframe was processed at. Levels above kNone shrink the
/// turbo-iteration cap below the configured Lm; a capped decode may NACK
/// where the full-quality decode would have converged — that is the traded
/// cost, accounted separately from ordinary decode failures.
enum class DegradeLevel : unsigned {
  kNone = 0,                ///< full quality (cap == Lm).
  kReducedIterations = 1,   ///< cap in (min_iterations, Lm).
  kMinimalIterations = 2,   ///< cap == min_iterations.
};

inline constexpr std::size_t kNumDegradeLevels = 3;

/// Failure-handling counters surfaced by both substrates. Subframe
/// conservation under faults: processed + dropped + late + lost == offered,
/// where `late` and `lost` are the two fronthaul-fault dispositions below
/// and every other subframe is either processed or slack-check dropped.
struct ResilienceMetrics {
  std::size_t failovers = 0;     ///< cores declared dead by the watchdog.
  std::size_t repartitions = 0;  ///< partition-table rebuilds after failures.
  std::size_t requeued_jobs = 0; ///< jobs moved off a dead core's queue.
  std::size_t lost_subframes = 0; ///< fronthaul loss: never arrived.
  std::size_t late_arrivals = 0;  ///< arrived after the deadline had passed.
  std::size_t degraded = 0;       ///< processed below full quality.
  /// Degraded subframes whose capped decode failed (quality traded away);
  /// not counted as ordinary decode/CRC failures.
  std::size_t degraded_decode_failures = 0;
  /// Completion-flag waits that exceeded the configured timeout.
  std::size_t flag_timeouts = 0;
  /// Subframes per DegradeLevel (index by static_cast<unsigned>(level)).
  std::array<std::size_t, kNumDegradeLevels> degrade_histogram{};
};

}  // namespace rtopex
