// Minimal CSV writing/reading for traces and experiment results.
// Numeric-only cells; no quoting or embedded separators, by design — every
// file this library produces or consumes is a plain numeric table with an
// optional header row.
#pragma once

#include <string>
#include <vector>

namespace rtopex {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);

 private:
  struct Impl;
  Impl* impl_;
};

struct CsvTable {
  std::vector<std::string> header;        ///< empty if the file had no header.
  std::vector<std::vector<double>> rows;  ///< all-numeric cells.
};

/// Reads a numeric CSV. A first row containing any non-numeric cell is
/// treated as the header. Throws std::runtime_error on I/O or parse errors.
CsvTable read_csv(const std::string& path);

}  // namespace rtopex
