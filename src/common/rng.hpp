// Deterministic, seedable random number generation.
//
// The whole reproduction must be bit-reproducible given a seed, so every
// stochastic component draws from an explicitly passed Rng rather than any
// global or hardware source.
#pragma once

#include <cstdint>
#include <limits>

namespace rtopex {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator, so it can also drive the
/// <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// A decorrelated child generator (for per-entity streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rtopex
