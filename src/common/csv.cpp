#include "common/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rtopex {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << columns[i];
  }
  impl_->out << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  impl_->out.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << values[i];
  }
  impl_->out << '\n';
}

namespace {

bool parse_double(const std::string& cell, double& out) {
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto cells = split_line(line);
    std::vector<double> row;
    row.reserve(cells.size());
    bool numeric = true;
    for (const auto& c : cells) {
      double v = 0.0;
      if (!parse_double(c, v)) {
        numeric = false;
        break;
      }
      row.push_back(v);
    }
    if (!numeric) {
      if (!first)
        throw std::runtime_error("read_csv: non-numeric cell mid-file in " +
                                 path);
      table.header = cells;
    } else {
      if (!table.rows.empty() && row.size() != table.rows.front().size())
        throw std::runtime_error("read_csv: ragged rows in " + path);
      table.rows.push_back(std::move(row));
    }
    first = false;
  }
  return table;
}

}  // namespace rtopex
