#include "common/thread_utils.hpp"

#include <pthread.h>
#include <sched.h>
#include <time.h>
#include <unistd.h>

#include <thread>

namespace rtopex {

unsigned hardware_core_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

bool pin_current_thread(unsigned core_id) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core_id, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

bool set_current_thread_fifo(int priority) {
  sched_param param{};
  param.sched_priority = priority;
  return pthread_setschedparam(pthread_self(), SCHED_FIFO, &param) == 0;
}

void set_current_thread_name(const std::string& name) {
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
}

std::int64_t monotonic_ns() {
  timespec ts{};
#ifdef CLOCK_MONOTONIC_RAW
  clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
#else
  clock_gettime(CLOCK_MONOTONIC, &ts);
#endif
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void spin_until_ns(std::int64_t deadline_ns) {
  while (monotonic_ns() < deadline_ns) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace rtopex
