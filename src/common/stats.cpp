#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtopex {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("quantile of empty sample");
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return EmpiricalCdf(std::move(copy)).quantile(q);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty())
    throw std::invalid_argument("EmpiricalCdf needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram needs hi > lo and bins > 0");
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / w));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

OlsFit ols_fit(const std::vector<std::vector<double>>& rows,
               std::span<const double> y) {
  if (rows.empty() || rows.size() != y.size())
    throw std::invalid_argument("ols_fit: size mismatch");
  const std::size_t p = rows.front().size();
  if (p == 0 || rows.size() < p)
    throw std::invalid_argument("ols_fit: need at least as many rows as columns");
  for (const auto& r : rows)
    if (r.size() != p) throw std::invalid_argument("ols_fit: ragged rows");

  // Normal equations: (X'X) beta = X'y.
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = a; b < p; ++b) xtx[a][b] += rows[i][a] * rows[i][b];
    }
  }
  for (std::size_t a = 0; a < p; ++a)
    for (std::size_t b = 0; b < a; ++b) xtx[a][b] = xtx[b][a];

  // Gaussian elimination with partial pivoting.
  std::vector<double> beta = xty;
  for (std::size_t col = 0; col < p; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < p; ++r)
      if (std::abs(xtx[r][col]) > std::abs(xtx[pivot][col])) pivot = r;
    if (std::abs(xtx[pivot][col]) < 1e-12)
      throw std::runtime_error("ols_fit: singular design matrix");
    std::swap(xtx[col], xtx[pivot]);
    std::swap(beta[col], beta[pivot]);
    for (std::size_t r = col + 1; r < p; ++r) {
      const double f = xtx[r][col] / xtx[col][col];
      for (std::size_t c = col; c < p; ++c) xtx[r][c] -= f * xtx[col][c];
      beta[r] -= f * beta[col];
    }
  }
  for (std::size_t col = p; col-- > 0;) {
    for (std::size_t c = col + 1; c < p; ++c)
      beta[col] -= xtx[col][c] * beta[c];
    beta[col] /= xtx[col][col];
  }

  OlsFit fit;
  fit.coefficients = beta;
  fit.residuals.resize(rows.size());
  double y_mean = 0.0;
  for (const double v : y) y_mean += v;
  y_mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double pred = 0.0;
    for (std::size_t a = 0; a < p; ++a) pred += rows[i][a] * beta[a];
    fit.residuals[i] = y[i] - pred;
    ss_res += fit.residuals[i] * fit.residuals[i];
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace rtopex
