// Streaming and batch statistics used throughout the evaluation harness:
// running moments, percentiles, histograms, empirical CDFs and ordinary
// least squares (for the paper's Eq. (1) model fit, Table 1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rtopex {

/// Numerically stable running mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample set with linear interpolation; q in [0, 1].
/// Sorts a copy; for repeated queries build an EmpiricalCdf instead.
double quantile(std::span<const double> samples, double q);

/// Empirical CDF over a fixed sample set; O(log n) evaluation.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  double operator()(double x) const;
  /// Inverse CDF with linear interpolation; q in [0, 1].
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are clamped into
/// the first/last bin so that total mass is preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  /// Fraction of mass in the given bin (0 if empty histogram).
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Result of an ordinary-least-squares fit y ~ X * beta.
struct OlsFit {
  std::vector<double> coefficients;  ///< beta, one per regressor column.
  double r_squared = 0.0;            ///< coefficient of determination.
  std::vector<double> residuals;     ///< y - X*beta, one per observation.
};

/// Ordinary least squares via normal equations with partial-pivot Gaussian
/// elimination. `rows` holds one regressor vector per observation (include a
/// leading 1.0 for an intercept). Requires rows.size() >= columns and all
/// rows the same length. Throws std::invalid_argument on malformed input and
/// std::runtime_error on a singular system.
OlsFit ols_fit(const std::vector<std::vector<double>>& rows,
               std::span<const double> y);

}  // namespace rtopex
