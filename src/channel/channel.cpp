#include "channel/channel.hpp"

#include <cmath>
#include <stdexcept>

namespace rtopex::channel {

Channel::Channel(const ChannelConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.num_rx_antennas == 0 || config_.num_taps == 0)
    throw std::invalid_argument("Channel: antennas and taps must be > 0");
}

std::vector<phy::IqVector> Channel::apply(
    std::span<const phy::Complex> tx_samples) {
  const unsigned n_ant = config_.num_rx_antennas;
  const unsigned n_taps = config_.num_taps;
  std::vector<phy::IqVector> rx(n_ant, phy::IqVector(tx_samples.size()));

  for (unsigned a = 0; a < n_ant; ++a) {
    // Draw taps: unit total power, exponentially decaying profile.
    std::vector<phy::Complex> taps(n_taps);
    if (config_.rayleigh_fading) {
      double power_sum = 0.0;
      std::vector<double> profile(n_taps);
      for (unsigned t = 0; t < n_taps; ++t) {
        profile[t] = std::exp(-static_cast<double>(t));
        power_sum += profile[t];
      }
      for (unsigned t = 0; t < n_taps; ++t) {
        const double sigma = std::sqrt(profile[t] / power_sum / 2.0);
        taps[t] = {static_cast<float>(rng_.normal(0.0, sigma)),
                   static_cast<float>(rng_.normal(0.0, sigma))};
      }
    } else {
      taps[0] = {1.0f, 0.0f};
      for (unsigned t = 1; t < n_taps; ++t) taps[t] = {0.0f, 0.0f};
    }

    // Linear convolution (truncated to the input length; the cyclic prefix
    // absorbs the transient).
    phy::IqVector& out = rx[a];
    double signal_power = 0.0;
    for (std::size_t i = 0; i < tx_samples.size(); ++i) {
      phy::Complex acc{0.0f, 0.0f};
      for (unsigned t = 0; t < n_taps && t <= i; ++t)
        acc += taps[t] * tx_samples[i - t];
      out[i] = acc;
      signal_power += acc.real() * acc.real() + acc.imag() * acc.imag();
    }
    signal_power /= static_cast<double>(tx_samples.size());

    // AWGN at the requested SNR.
    const double snr_lin = std::pow(10.0, config_.snr_db / 10.0);
    const double noise_var = signal_power / snr_lin;
    const double sigma = std::sqrt(noise_var / 2.0);
    for (auto& x : out) {
      x += phy::Complex{static_cast<float>(rng_.normal(0.0, sigma)),
                        static_cast<float>(rng_.normal(0.0, sigma))};
    }
  }
  return rx;
}

std::vector<phy::IqVector> pass_through_channel(const phy::IqVector& tx_samples,
                                                const ChannelConfig& config,
                                                std::uint64_t seed) {
  Channel ch(config, seed);
  return ch.apply(tx_samples);
}

}  // namespace rtopex::channel
