// Wireless channel models between the (single-antenna) user transmitter and
// the basestation's N receive antennas.
//
// Block-fading: taps are redrawn per subframe. AWGN is added per antenna at
// the configured per-antenna SNR (signal power measured after the channel).
// Tap count 1 gives a flat Rayleigh channel; more taps give frequency
// selectivity within the cyclic prefix. The paper's evaluation (§4.2) uses
// an AWGN channel at fixed SNR with trace-driven MCS — ChannelConfig covers
// that as `rayleigh_fading = false`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "phy/modulation.hpp"

namespace rtopex::channel {

struct ChannelConfig {
  double snr_db = 30.0;          ///< per-antenna post-channel SNR.
  unsigned num_rx_antennas = 2;
  unsigned num_taps = 1;         ///< 1 = flat; must stay below the CP length.
  bool rayleigh_fading = false;  ///< false: fixed unit gain per antenna (AWGN).
};

class Channel {
 public:
  Channel(const ChannelConfig& config, std::uint64_t seed);

  /// Applies per-antenna fading + AWGN to the transmitted samples.
  /// Returns one received stream per antenna, same length as the input.
  std::vector<phy::IqVector> apply(std::span<const phy::Complex> tx_samples);

  const ChannelConfig& config() const { return config_; }

 private:
  ChannelConfig config_;
  Rng rng_;
};

/// Convenience wrapper: transmit -> channel -> per-antenna streams.
std::vector<phy::IqVector> pass_through_channel(
    const phy::IqVector& tx_samples, const ChannelConfig& config,
    std::uint64_t seed);

}  // namespace rtopex::channel
