#include "runtime/node_runtime.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "model/task_cost_model.hpp"
#include "phy/uplink_tx.hpp"
#include "runtime/clock.hpp"
#include "runtime/cpu_state_table.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/mailbox.hpp"
#include "sched/migration.hpp"

namespace rtopex::runtime {
namespace {

/// Pre-generated received subframe (one per (bs, mcs) pair).
struct RxVariant {
  unsigned mcs = 0;
  std::uint32_t tx_subframe_index = 0;  ///< scrambling seed used at TX.
  std::vector<phy::IqVector> antenna_samples;
};

struct Job {
  const RxVariant* variant = nullptr;
  unsigned bs = 0;
  std::uint32_t index = 0;
  TimePoint radio_time = 0;
  TimePoint arrival = 0;
  TimePoint deadline = 0;
};

/// Per-worker state: private job queue (partitioned/RT-OPEX) plus the
/// migration mailbox.
struct WorkerState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Job> queue;
  std::atomic<int> pending{0};
  Mailbox mailbox;
  std::vector<SubframeRecord> records;
  /// Nominal arrival of this worker's next own subframe (RT-OPEX horizon).
  std::atomic<TimePoint> next_own_arrival{0};
};

}  // namespace

struct NodeRuntime::Impl {
  RuntimeConfig config;
  GlobalClock clock;
  CpuStateTable table;
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::unique_ptr<phy::UplinkRxProcessor> rx;
  std::vector<std::vector<RxVariant>> variants;  // [bs][distinct mcs]
  std::atomic<bool> running{true};

  // Shared queue for global mode.
  std::mutex global_mu;
  std::condition_variable global_cv;
  std::deque<Job> global_queue;
  std::atomic<int> global_pending{0};

  // Planning-model subtask/stage time estimates (EWMA-updated at runtime).
  std::atomic<std::int64_t> fft_subtask_est_ns{50'000};
  std::atomic<std::int64_t> decode_subtask_est_ns{500'000};
  std::atomic<std::int64_t> demod_est_ns{500'000};
  Duration migration_cost = microseconds(20);

  std::atomic<std::size_t> migrations{0};
  std::atomic<std::size_t> recoveries{0};

  explicit Impl(const RuntimeConfig& cfg)
      : config(cfg), table(worker_count(cfg)) {
    for (unsigned i = 0; i < worker_count(cfg); ++i) {
      workers.push_back(std::make_unique<WorkerState>());
      workers.back()->mailbox.set_owner(i);
    }
    rx = std::make_unique<phy::UplinkRxProcessor>(cfg.phy);
    build_variants();
  }

  static unsigned worker_count(const RuntimeConfig& cfg) {
    return cfg.mode == RuntimeMode::kGlobal
               ? cfg.global_cores
               : cfg.num_basestations * cfg.cores_per_bs;
  }

  void build_variants() {
    phy::UplinkTransmitter tx(config.phy);
    Rng rng(config.seed);
    variants.resize(config.num_basestations);
    std::vector<unsigned> distinct = config.mcs_cycle;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (unsigned bs = 0; bs < config.num_basestations; ++bs) {
      for (const unsigned mcs : distinct) {
        const std::uint32_t tx_index = bs;  // distinct scrambling per BS
        const phy::TxSubframe sf = tx.transmit(mcs, tx_index, rng.next());
        channel::ChannelConfig ch;
        ch.snr_db = config.snr_db;
        ch.num_rx_antennas = config.phy.num_antennas;
        RxVariant v;
        v.mcs = mcs;
        v.tx_subframe_index = tx_index;
        v.antenna_samples =
            channel::pass_through_channel(sf.samples, ch, rng.next());
        variants[bs].push_back(std::move(v));
      }
    }
  }

  const RxVariant& variant_for(unsigned bs, unsigned mcs) const {
    for (const auto& v : variants[bs])
      if (v.mcs == mcs) return v;
    throw std::logic_error("no RX variant for this MCS");
  }

  unsigned partitioned_worker(unsigned bs, std::uint32_t index) const {
    return bs * config.cores_per_bs + index % config.cores_per_bs;
  }

  // ---- worker side ----------------------------------------------------

  void update_estimate(std::atomic<std::int64_t>& est, Duration sample) {
    // EWMA with alpha = 1/4.
    const std::int64_t old = est.load(std::memory_order_relaxed);
    est.store(old + (sample - old) / 4, std::memory_order_relaxed);
  }

  /// Runs a parallelizable stage with migration; returns subtask counts.
  void run_stage_migrating(unsigned self_id, phy::UplinkRxJob& job,
                           std::size_t subtasks,
                           Duration tp_estimate, bool is_fft,
                           StageTiming& timing) {
    auto run_subtask = [&](std::size_t i) {
      if (is_fft)
        rx->run_fft_subtask(job, i);
      else
        rx->run_decode_subtask(job, i);
    };

    // Plan from the CPU-state table snapshots.
    const TimePoint now = clock.now();
    std::vector<sched::MigrationCandidate> cands;
    for (unsigned k = 0; k < table.size(); ++k) {
      if (k == self_id) continue;
      const auto snap = table.get(k);
      Duration window =
          snap.activity == CoreActivity::kIdle ? snap.horizon - now : 0;
      if (const fault::Hooks* h = fault::active(); h && h->plan_window)
        h->plan_window(self_id, k, window);
      if (window > 0) cands.push_back({k, window});
    }
    std::sort(cands.begin(), cands.end(),
              [](const auto& a, const auto& b) {
                if (a.free_window != b.free_window)
                  return a.free_window > b.free_window;
                return a.core < b.core;
              });
    const sched::MigrationPlan plan = sched::plan_migration(
        static_cast<unsigned>(subtasks), std::max<Duration>(tp_estimate, 1),
        migration_cost, cands);

    // Publish chunks: claim target mailboxes; a failed claim (the core just
    // went active) simply keeps those subtasks local.
    struct LiveChunk {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> completed{0};
      std::size_t first = 0;
      std::size_t count = 0;
      unsigned core = 0;
    };
    std::vector<std::shared_ptr<LiveChunk>> live;
    std::size_t assigned_from_tail = 0;
    for (const auto& chunk : plan.chunks) {
      Mailbox& box = workers[chunk.core]->mailbox;
      if (!box.try_claim()) continue;
      auto lc = std::make_shared<LiveChunk>();
      lc->count = chunk.count;
      lc->core = chunk.core;
      assigned_from_tail += chunk.count;
      lc->first = subtasks - assigned_from_tail;
      lc->next.store(lc->first);
      MigratedChunk mc;
      mc.run_subtask = run_subtask;
      mc.first = lc->first;
      mc.count = lc->count;
      mc.next_index = &lc->next;
      mc.completed = &lc->completed;
      mc.keepalive = lc;
      box.fill(std::move(mc));
      migrations.fetch_add(chunk.count, std::memory_order_relaxed);
      if (is_fft)
        timing.fft_migrated += chunk.count;
      else
        timing.decode_migrated += chunk.count;
      live.push_back(std::move(lc));
    }
    const std::size_t local_end = subtasks - assigned_from_tail;

    // Local subtasks: range [0, local_end).
    for (std::size_t i = 0; i < local_end; ++i) run_subtask(i);

    // Check result flags; recover unfinished migrated subtasks by claiming
    // from the same counters (no duplicate execution possible).
    for (const auto& lc : live) {
      for (;;) {
        const std::size_t i =
            lc->next.fetch_add(1, std::memory_order_acq_rel);
        if (i >= lc->first + lc->count) break;
        run_subtask(i);
        lc->completed.fetch_add(1, std::memory_order_acq_rel);
        recoveries.fetch_add(1, std::memory_order_relaxed);
        timing.recovered += 1;
      }
    }
    // Withdraw chunks the host never started, then wait out any host that
    // is mid-subtask (bounded by one subtask) — the stage's buffers must
    // not be written after this function returns.
    for (const auto& lc : live) {
      workers[lc->core]->mailbox.try_revoke();
      while (lc->completed.load(std::memory_order_acquire) <
             std::min(lc->next.load(std::memory_order_acquire),
                      lc->first + lc->count) -
                 lc->first) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  SubframeRecord process_job(unsigned self_id, phy::UplinkRxJob& job,
                             const Job& j, bool migrate) {
    SubframeRecord rec;
    rec.bs = j.bs;
    rec.index = j.index;
    rec.mcs = j.variant->mcs;
    rec.radio_time = j.radio_time;
    rec.arrival = j.arrival;
    rec.start = clock.now();
    table.set(self_id, CoreActivity::kActive, 0);

    rx->begin(job, j.variant->antenna_samples, j.variant->mcs,
              j.variant->tx_subframe_index);

    // Slack check (paper §4.1): drop the subframe when the estimated
    // execution time exceeds the time left before its deadline.
    const std::size_t fft_n = rx->fft_subtask_count();
    const std::size_t dec_n_est = phy::num_code_blocks(
        j.variant->mcs, config.phy.num_prb());
    if (config.enforce_deadlines) {
      const Duration estimate =
          fft_subtask_est_ns.load() * static_cast<Duration>(fft_n) +
          demod_est_ns.load() +
          decode_subtask_est_ns.load() * static_cast<Duration>(dec_n_est);
      if (clock.now() + estimate > j.deadline) {
        rec.completion = clock.now();
        rec.deadline_missed = true;
        rec.dropped = true;
        return rec;
      }
    }

    // --- FFT ---
    TimePoint t0 = clock.now();
    if (migrate) {
      run_stage_migrating(self_id, job, fft_n, fft_subtask_est_ns.load(),
                          /*is_fft=*/true, rec.timing);
    } else {
      for (std::size_t i = 0; i < fft_n; ++i) rx->run_fft_subtask(job, i);
    }
    TimePoint t1 = clock.now();
    rec.timing.fft = t1 - t0;
    update_estimate(fft_subtask_est_ns,
                    rec.timing.fft / static_cast<Duration>(fft_n));

    // --- Demod ---
    rx->demod_prepare(job);
    for (std::size_t i = 0; i < rx->demod_subtask_count(); ++i)
      rx->run_demod_subtask(job, i);
    TimePoint t2 = clock.now();
    rec.timing.demod = t2 - t1;
    update_estimate(demod_est_ns, rec.timing.demod);

    // --- Decode ---
    rx->decode_prepare(job);
    const std::size_t dec_n = rx->decode_subtask_count(job);
    if (migrate && dec_n > 1) {
      run_stage_migrating(self_id, job, dec_n, decode_subtask_est_ns.load(),
                          /*is_fft=*/false, rec.timing);
    } else {
      for (std::size_t i = 0; i < dec_n; ++i) rx->run_decode_subtask(job, i);
    }
    const phy::UplinkRxResult result = rx->finalize(job);
    TimePoint t3 = clock.now();
    rec.timing.decode = t3 - t2;
    update_estimate(decode_subtask_est_ns,
                    rec.timing.decode / static_cast<Duration>(dec_n));

    rec.completion = t3;
    rec.crc_ok = result.crc_ok;
    rec.iterations = result.iterations;
    rec.deadline_missed = rec.completion > j.deadline;
    return rec;
  }

  // Worker body for partitioned/global modes: block on the queue.
  void blocking_worker(unsigned id) {
    if (config.pin_threads) pin_current_thread(id % hardware_core_count());
    if (config.try_fifo_priority) set_current_thread_fifo(50);
    set_current_thread_name("rtopex-w" + std::to_string(id));
    const bool global = config.mode == RuntimeMode::kGlobal;
    WorkerState& self = *workers[id];
    phy::UplinkRxJob job = rx->make_job();
    auto& mu = global ? global_mu : self.mu;
    auto& cv = global ? global_cv : self.cv;
    auto& queue = global ? global_queue : self.queue;
    for (;;) {
      Job j;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || !running.load(); });
        if (queue.empty()) return;
        j = queue.front();
        queue.pop_front();
      }
      self.records.push_back(process_job(id, job, j, /*migrate=*/false));
    }
  }

  // Worker body for RT-OPEX: poll own queue and the migration mailbox.
  void rtopex_worker(unsigned id) {
    if (config.pin_threads) pin_current_thread(id % hardware_core_count());
    if (config.try_fifo_priority) set_current_thread_fifo(50);
    set_current_thread_name("rtopex-w" + std::to_string(id));
    WorkerState& self = *workers[id];
    phy::UplinkRxJob job = rx->make_job();
    for (;;) {
      if (self.pending.load(std::memory_order_acquire) > 0) {
        Job j;
        {
          std::lock_guard lock(self.mu);
          j = self.queue.front();
          self.queue.pop_front();
        }
        self.pending.fetch_sub(1, std::memory_order_acq_rel);
        self.records.push_back(process_job(id, job, j, /*migrate=*/true));
        continue;
      }
      if (!running.load(std::memory_order_acquire)) return;

      // Waiting state: publish idleness with the predicted horizon, then
      // serve at most one migrated chunk.
      table.set(id, CoreActivity::kIdle,
                self.next_own_arrival.load(std::memory_order_acquire));
      if (const fault::Hooks* h = fault::active();
          h && h->host_take && !h->host_take(id)) {
        std::this_thread::yield();
        continue;
      }
      MigratedChunk chunk;
      if (self.mailbox.try_take(chunk)) {
        table.set(id, CoreActivity::kHosting, 0);
        for (;;) {
          // Preemption check between subtasks.
          if (self.pending.load(std::memory_order_acquire) > 0) break;
          if (const fault::Hooks* h = fault::active();
              h && h->host_subtask && !h->host_subtask(id))
            break;
          const std::size_t i =
              chunk.next_index->fetch_add(1, std::memory_order_acq_rel);
          if (i >= chunk.first + chunk.count) break;
          chunk.run_subtask(i);
          chunk.completed->fetch_add(1, std::memory_order_acq_rel);
        }
        self.mailbox.release();
        continue;
      }
      std::this_thread::yield();
    }
  }

  // ---- transport side ---------------------------------------------------

  void push_job(const Job& j) {
    if (config.mode == RuntimeMode::kGlobal) {
      {
        std::lock_guard lock(global_mu);
        global_queue.push_back(j);
      }
      global_cv.notify_one();
      return;
    }
    WorkerState& w = *workers[partitioned_worker(j.bs, j.index)];
    {
      std::lock_guard lock(w.mu);
      w.queue.push_back(j);
      // Predict this worker's following own arrival (one stride later).
      w.next_own_arrival.store(
          j.arrival + static_cast<Duration>(config.cores_per_bs) *
                          config.subframe_period,
          std::memory_order_release);
    }
    w.pending.fetch_add(1, std::memory_order_acq_rel);
    w.cv.notify_one();
  }
};

NodeRuntime::NodeRuntime(const RuntimeConfig& config) {
  if (config.num_basestations == 0 || config.subframes_per_bs == 0 ||
      config.mcs_cycle.empty())
    throw std::invalid_argument("NodeRuntime: empty configuration");
  // A zero worker count would leave pushed jobs queued forever (the drain
  // loop in run() would hang); reject up front.
  if (Impl::worker_count(config) == 0)
    throw std::invalid_argument("NodeRuntime: zero worker cores");
  if (config.subframe_period <= 0 || config.deadline_budget <= 0)
    throw std::invalid_argument("NodeRuntime: non-positive period or budget");
  // rtt_half at or beyond the deadline budget means every subframe is
  // already dead on arrival — a configuration error, not a workload.
  if (config.rtt_half < 0 || config.rtt_half >= config.deadline_budget)
    throw std::invalid_argument(
        "NodeRuntime: rtt_half must be in [0, deadline_budget)");
  for (const unsigned mcs : config.mcs_cycle)
    if (mcs > phy::kMaxMcs)
      throw std::invalid_argument("NodeRuntime: mcs_cycle entry > 27");
  impl_ = std::make_unique<Impl>(config);
}

NodeRuntime::~NodeRuntime() = default;

RuntimeReport NodeRuntime::run() {
  Impl& im = *impl_;
  const RuntimeConfig& cfg = im.config;

  // Start the schedule now, not at construction: variant pre-generation in
  // the Impl constructor can take long enough (notably under sanitizers)
  // to push the first subframes past their deadlines otherwise.
  im.clock.reset();

  std::vector<std::thread> threads;
  const unsigned n_workers = Impl::worker_count(cfg);
  threads.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    if (cfg.mode == RuntimeMode::kRtOpex)
      threads.emplace_back([&im, i] { im.rtopex_worker(i); });
    else
      threads.emplace_back([&im, i] { im.blocking_worker(i); });
  }

  // Transport ticker: one tick per subframe period, all basestations.
  for (std::uint32_t j = 0; j < cfg.subframes_per_bs; ++j) {
    const TimePoint radio_time =
        static_cast<TimePoint>(j) * cfg.subframe_period;
    const TimePoint arrival = radio_time + cfg.rtt_half;
    // Coarse sleep then a short spin to the arrival instant.
    const TimePoint pre = arrival - microseconds(200);
    while (im.clock.now() < pre)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    // Per-basestation jittered arrivals (fault injection); without a hook
    // every basestation arrives at the nominal instant in one batch.
    std::vector<std::pair<TimePoint, unsigned>> deliveries;
    deliveries.reserve(cfg.num_basestations);
    for (unsigned bs = 0; bs < cfg.num_basestations; ++bs) {
      TimePoint at = arrival;
      if (const fault::Hooks* h = fault::active(); h && h->transport_jitter)
        at += std::max<Duration>(0, h->transport_jitter(bs, j));
      deliveries.emplace_back(at, bs);
    }
    std::sort(deliveries.begin(), deliveries.end());
    for (const auto& [at, bs] : deliveries) {
      im.clock.spin_until(at);
      Job job;
      const unsigned mcs =
          cfg.mcs_cycle[(j + bs) % cfg.mcs_cycle.size()];
      job.variant = &im.variant_for(bs, mcs);
      job.bs = bs;
      job.index = j;
      job.radio_time = radio_time;
      job.arrival = at;
      job.deadline = radio_time + cfg.deadline_budget;
      im.push_job(job);
    }
  }

  // Drain: wait until all queues empty, then stop the workers.
  auto queues_empty = [&im, &cfg] {
    if (cfg.mode == RuntimeMode::kGlobal) {
      std::lock_guard lock(im.global_mu);
      return im.global_queue.empty();
    }
    for (const auto& w : im.workers) {
      std::lock_guard lock(w->mu);
      if (!w->queue.empty()) return false;
    }
    return true;
  };
  while (!queues_empty())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  im.running.store(false);
  im.global_cv.notify_all();
  for (const auto& w : im.workers) w->cv.notify_all();
  for (auto& t : threads) t.join();

  RuntimeReport report;
  for (const auto& w : im.workers)
    report.records.insert(report.records.end(), w->records.begin(),
                          w->records.end());
  std::sort(report.records.begin(), report.records.end(),
            [](const SubframeRecord& a, const SubframeRecord& b) {
              if (a.radio_time != b.radio_time) return a.radio_time < b.radio_time;
              return a.bs < b.bs;
            });
  for (const auto& r : report.records) {
    if (r.deadline_missed) ++report.deadline_misses;
    if (r.dropped) ++report.dropped;
    if (!r.dropped && !r.crc_ok) ++report.crc_failures;
  }
  report.migrations = im.migrations.load();
  report.recoveries = im.recoveries.load();
  return report;
}

}  // namespace rtopex::runtime
