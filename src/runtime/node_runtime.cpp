#include "runtime/node_runtime.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>

#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "model/online_fit.hpp"
#include "model/task_cost_model.hpp"
#include "obs/analysis/replay.hpp"  // kJobSpec field vocabulary (header-only)
#include "obs/histogram.hpp"
#include "obs/profile/profile.hpp"
#include "obs/profile/profile_report.hpp"
#include "obs/tracer.hpp"
#include "phy/uplink_tx.hpp"
#include "runtime/affinity.hpp"
#include "runtime/clock.hpp"
#include "runtime/cpu_state_table.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/workspace_pool.hpp"
#include "sched/migration.hpp"

namespace rtopex::runtime {
namespace {

/// Pre-generated received subframe (one per (bs, mcs) pair).
struct RxVariant {
  unsigned mcs = 0;
  std::uint32_t tx_subframe_index = 0;  ///< scrambling seed used at TX.
  std::vector<phy::IqVector> antenna_samples;
};

struct Job {
  const RxVariant* variant = nullptr;
  unsigned bs = 0;
  std::uint32_t index = 0;
  TimePoint radio_time = 0;
  TimePoint arrival = 0;
  TimePoint deadline = 0;
};

/// Per-worker state: private job queue (partitioned/RT-OPEX) plus the
/// migration mailbox.
struct WorkerState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Job> queue;
  std::atomic<int> pending{0};
  Mailbox mailbox;
  std::vector<SubframeRecord> records;
  /// Nominal arrival of this worker's next own subframe (RT-OPEX horizon).
  std::atomic<TimePoint> next_own_arrival{0};
  /// Bumped once per worker-loop iteration and per hosted subtask; the
  /// ticker-side watchdog reads it to distinguish a stalled core (queued
  /// work, frozen heartbeat) from a busy or idle one.
  std::atomic<std::uint64_t> heartbeat{0};
  /// Set by the watchdog: excluded from migration planning and from the
  /// partition table from then on.
  std::atomic<bool> dead{false};
  /// Set by the worker itself just before parking on a kill_worker hook.
  /// A parked worker has returned from its loop and will never touch job
  /// buffers again — unlike a watchdog-declared-dead worker, which may
  /// merely be slow and still finish its subtask.
  std::atomic<bool> parked{false};
};

}  // namespace

struct NodeRuntime::Impl {
  RuntimeConfig config;
  GlobalClock clock;
  CpuStateTable table;
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::unique_ptr<phy::UplinkRxProcessor> rx;
  std::vector<std::vector<RxVariant>> variants;  // [bs][distinct mcs]
  std::atomic<bool> running{true};
  /// Workers that have finished per-thread setup (job buffers, workspace).
  /// The ticker holds the schedule epoch until every worker has checked in:
  /// batch mode allocates `batch` job buffers per worker, easily >10 ms of
  /// page faults, which would otherwise be charged to the first subframes'
  /// deadlines.
  std::atomic<unsigned> workers_ready{0};

  // Shared queue for global mode.
  std::mutex global_mu;
  std::condition_variable global_cv;
  std::deque<Job> global_queue;
  std::atomic<int> global_pending{0};

  // Planning-model subtask/stage time estimates (seeded from the config,
  // EWMA-updated at runtime).
  std::atomic<std::int64_t> fft_subtask_est_ns;
  std::atomic<std::int64_t> decode_subtask_est_ns;
  std::atomic<std::int64_t> demod_est_ns;
  Duration migration_cost = microseconds(20);

  /// Online adaptive estimators (null unless config.adaptive). Workers
  /// observe and predict concurrently, so access goes through the mutex;
  /// the critical sections are a handful of FLOPs against ms-scale jobs.
  struct AdaptiveState {
    std::mutex mu;
    model::OnlineEstimators est;
    explicit AdaptiveState(const RuntimeConfig& cfg)
        : est(cfg.phy.num_antennas, cfg.phy.num_prb(), cfg.num_basestations,
              cfg.phy.max_iterations, cfg.adaptive_params) {}
  };
  std::unique_ptr<AdaptiveState> adaptive;

  Duration adaptive_fft_subtask(Duration fallback) {
    if (!adaptive) return fallback;
    std::lock_guard lock(adaptive->mu);
    return adaptive->est.fft_subtask_or(fallback);
  }
  Duration adaptive_decode_subtask(Duration fallback) {
    if (!adaptive) return fallback;
    std::lock_guard lock(adaptive->mu);
    return adaptive->est.decode_subtask_or(fallback);
  }

  std::atomic<std::size_t> migrations{0};
  std::atomic<std::size_t> recoveries{0};
  std::atomic<std::size_t> flag_timeouts{0};

  /// Null unless config.trace.enabled (or config.health.enabled, which
  /// needs the event stream). One track per worker plus a dedicated ticker
  /// track; the ticker is the sole collector.
  std::unique_ptr<obs::Tracer> tracer;

  /// Null unless config.profile.enabled. One track per worker plus the
  /// ticker track (unused today, reserved so track ids line up with the
  /// tracer's); same SPSC ownership contract — begin/end only from the
  /// owning thread, take() once the workers have joined.
  std::unique_ptr<obs::profile::Profiler> profiler;

  /// Live health engine (null unless config.health.enabled). Ticker-owned:
  /// fed from the bounded store after each collect(), advanced on the
  /// monotonic clock, so it never contends with the workers.
  std::unique_ptr<obs::health::HealthMonitor> health;
  std::size_t health_fed = 0;  ///< store events already fed to the monitor.

  // ---- resilience state (ticker-thread only unless noted) ---------------
  /// Partition table: slots[bs][residue] -> worker id. Read and written
  /// only on the ticker thread (push_job and the watchdog both run there),
  /// so repartitioning needs no synchronization against dispatch.
  std::vector<std::vector<unsigned>> slots;
  /// Fronthaul loss / late-delivery process (validated at construction).
  transport::FronthaulFaultModel fault_model;
  /// Watchdog bookkeeping per worker.
  std::vector<std::uint64_t> last_heartbeat;
  std::vector<TimePoint> last_progress;
  std::size_t res_failovers = 0;
  std::size_t res_repartitions = 0;
  std::size_t res_requeued = 0;
  /// Records for subframes that never reached the node (ticker-owned).
  std::vector<SubframeRecord> lost_records;

  // ---- throughput mode --------------------------------------------------
  /// Hard cap on ThroughputConfig::batch — the cross-subframe decode
  /// groups at most this many subframes per call.
  static constexpr std::size_t kMaxBatch = 16;
  /// Per-worker pre-warmed decode workspaces (null unless
  /// config.throughput.numa_pools; built by the NodeRuntime constructor so
  /// run() timing covers schedule execution only).
  std::unique_ptr<WorkspacePool> pool;
  NumaTopology numa_topo;
  /// Subframes decoded inside a cross-subframe batch of >= 2.
  std::atomic<std::size_t> batched_subframes{0};

  bool should_pin() const {
    return config.pin_threads || config.throughput.pin_workers;
  }
  unsigned worker_pin_core(unsigned id) const {
    const std::vector<unsigned>& cores = config.throughput.worker_cores;
    if (!cores.empty()) return cores[id % cores.size()];
    return id % hardware_core_count();
  }

  explicit Impl(const RuntimeConfig& cfg)
      : config(cfg),
        table(worker_count(cfg)),
        fft_subtask_est_ns(cfg.initial_fft_subtask_est),
        decode_subtask_est_ns(cfg.initial_decode_subtask_est),
        demod_est_ns(cfg.initial_demod_est),
        fault_model(cfg.resilience.fronthaul_faults) {
    if (cfg.adaptive) adaptive = std::make_unique<AdaptiveState>(cfg);
    for (unsigned i = 0; i < worker_count(cfg); ++i) {
      workers.push_back(std::make_unique<WorkerState>());
      workers.back()->mailbox.set_owner(i);
    }
    if (cfg.mode != RuntimeMode::kGlobal) {
      slots.resize(cfg.num_basestations);
      for (unsigned bs = 0; bs < cfg.num_basestations; ++bs) {
        slots[bs].resize(cfg.cores_per_bs);
        for (unsigned r = 0; r < cfg.cores_per_bs; ++r)
          slots[bs][r] = bs * cfg.cores_per_bs + r;
      }
    }
    last_heartbeat.assign(worker_count(cfg), 0);
    last_progress.assign(worker_count(cfg), 0);
    if (cfg.trace.enabled || cfg.health.enabled) {
      tracer = std::make_unique<obs::Tracer>(worker_count(cfg) + 1,
                                             cfg.trace.ring_capacity,
                                             cfg.trace.max_stored_events);
      tracer->set_clock([this] { return clock.now(); });
    }
    if (cfg.profile.enabled) {
      profiler = std::make_unique<obs::profile::Profiler>(
          worker_count(cfg) + 1, cfg.profile);
      profiler->set_clock([this] { return clock.now(); });
    }
    if (cfg.health.enabled) {
      obs::health::Topology topo;
      topo.num_nodes = 1;
      topo.num_basestations = cfg.num_basestations;
      topo.node_cores = {worker_count(cfg)};
      health = std::make_unique<obs::health::HealthMonitor>(cfg.health, topo);
      health->set_tracer(tracer.get(), ticker_track());
    }
    rx = std::make_unique<phy::UplinkRxProcessor>(cfg.phy);
    build_variants();
  }

  obs::Tracer* trc() { return tracer.get(); }
  obs::profile::Profiler* prof() { return profiler.get(); }
  /// The ticker's dedicated trace track (the one past the worker tracks).
  std::uint32_t ticker_track() const {
    return static_cast<std::uint32_t>(workers.size());
  }

  static unsigned worker_count(const RuntimeConfig& cfg) {
    return cfg.mode == RuntimeMode::kGlobal
               ? cfg.global_cores
               : cfg.num_basestations * cfg.cores_per_bs;
  }

  void build_variants() {
    phy::UplinkTransmitter tx(config.phy);
    Rng rng(config.seed);
    variants.resize(config.num_basestations);
    std::vector<unsigned> distinct = config.mcs_cycle;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (unsigned bs = 0; bs < config.num_basestations; ++bs) {
      for (const unsigned mcs : distinct) {
        const std::uint32_t tx_index = bs;  // distinct scrambling per BS
        const phy::TxSubframe sf = tx.transmit(mcs, tx_index, rng.next());
        channel::ChannelConfig ch;
        ch.snr_db = config.snr_db;
        ch.num_rx_antennas = config.phy.num_antennas;
        RxVariant v;
        v.mcs = mcs;
        v.tx_subframe_index = tx_index;
        v.antenna_samples =
            channel::pass_through_channel(sf.samples, ch, rng.next());
        variants[bs].push_back(std::move(v));
      }
    }
  }

  const RxVariant& variant_for(unsigned bs, unsigned mcs) const {
    for (const auto& v : variants[bs])
      if (v.mcs == mcs) return v;
    throw std::logic_error("no RX variant for this MCS");
  }

  /// Grows a pool workspace to its working size before the schedule
  /// starts: one full dummy decode of the highest-MCS variant through the
  /// explicit-workspace overloads, including the SoA batch-decode buffers.
  /// Runs on the pool's node-pinned warmer threads, so first touch places
  /// the pages on the worker's NUMA node. (Per-c_init scramble sequences
  /// for basestations other than 0 still generate lazily on their first
  /// subframe — a few hundred bytes each, bounded by the LRU cache.)
  void prewarm_workspace(phy::DecodeWorkspace& ws) {
    phy::UplinkRxJob job = rx->make_job();
    phy::UplinkRxResult result;
    const RxVariant* worst = nullptr;
    for (const auto& v : variants[0])
      if (!worst || v.mcs > worst->mcs) worst = &v;
    rx->begin(job, worst->antenna_samples, worst->mcs,
              worst->tx_subframe_index);
    for (std::size_t i = 0; i < rx->fft_subtask_count(); ++i)
      rx->run_fft_subtask(job, i, ws);
    rx->demod_prepare(job);
    for (std::size_t i = 0; i < rx->demod_subtask_count(); ++i)
      rx->run_demod_subtask(job, i);
    rx->decode_prepare(job, ws);
    rx->run_decode_batch(job, ws);
    rx->finalize_into(job, ws, result);
  }

  unsigned partitioned_worker(unsigned bs, std::uint32_t index) const {
    return bs * config.cores_per_bs + index % config.cores_per_bs;
  }

  // ---- worker side ----------------------------------------------------

  void update_estimate(std::atomic<std::int64_t>& est, Duration sample) {
    // EWMA with alpha = 1/4.
    const std::int64_t old = est.load(std::memory_order_relaxed);
    est.store(old + (sample - old) / 4, std::memory_order_relaxed);
  }

  /// Workload capture: emits one kJobSpec record per field onto `track`
  /// (the emitter's own SPSC track) so the drained trace is replayable by
  /// obs/analysis/replay. Costs carry the measured stage times when the
  /// subframe was actually processed; for dropped/late/lost subframes —
  /// never decoded, so never measured — the planning estimates in force
  /// stand in, which keeps a counterfactual replay able to schedule them.
  void emit_job_spec(std::uint32_t track, const Job& j, unsigned mcs,
                     const SubframeRecord& rec, std::size_t fft_n,
                     std::size_t dec_n) {
    if (!tracer) return;
    using Field = obs::analysis::JobSpecField;
    const unsigned lm = std::max(1u, config.phy.max_iterations);
    const Duration fft_sub = fft_subtask_est_ns.load();
    const Duration dec_sub = decode_subtask_est_ns.load();
    const bool measured =
        !rec.lost && !rec.late_arrival && !rec.dropped && rec.timing.decode > 0;
    const Duration fft =
        measured ? rec.timing.fft : fft_sub * static_cast<Duration>(fft_n);
    const Duration demod = measured ? rec.timing.demod : demod_est_ns.load();
    const Duration decode =
        measured ? rec.timing.decode : dec_sub * static_cast<Duration>(dec_n);
    const unsigned iters = measured ? std::max(1u, rec.iterations) : lm;
    auto put = [&](Field field, std::uint32_t value) {
      RTOPEX_TRACE_EVENT(trc(), .ts = j.radio_time, .bs = j.bs,
                         .index = j.index,
                         .a = static_cast<std::uint32_t>(field), .b = value,
                         .core = track, .kind = obs::EventKind::kJobSpec);
    };
    put(Field::kMeta, (mcs & 0xffu) | ((lm & 0xffu) << 8) |
                          (static_cast<std::uint32_t>(
                               measured ? rec.crc_ok : true)
                           << 16) |
                          (static_cast<std::uint32_t>(rec.lost) << 17));
    put(Field::kIterations, iters);
    put(Field::kArrivalOffsetNs, obs::clamp_payload_ns(j.arrival - j.radio_time));
    put(Field::kDeadlineOffsetNs,
        obs::clamp_payload_ns(j.deadline - j.radio_time));
    put(Field::kFftNs, obs::clamp_payload_ns(fft));
    put(Field::kDemodNs, obs::clamp_payload_ns(demod));
    put(Field::kDecodeNs, obs::clamp_payload_ns(decode));
    put(Field::kFftSubtasks, static_cast<std::uint32_t>(fft_n));
    put(Field::kFftSubtaskNs,
        obs::clamp_payload_ns(fft / static_cast<Duration>(std::max<std::size_t>(
                                        1, fft_n))));
    put(Field::kDecodeSubtasks, static_cast<std::uint32_t>(dec_n));
    put(Field::kDecodeSubtaskNs,
        obs::clamp_payload_ns(
            decode / static_cast<Duration>(std::max<std::size_t>(1, dec_n))));
    put(Field::kWcetFftNs,
        obs::clamp_payload_ns(fft_sub * static_cast<Duration>(fft_n)));
    put(Field::kWcetDemodNs, obs::clamp_payload_ns(demod_est_ns.load()));
    put(Field::kWcetDecodeNs,
        obs::clamp_payload_ns(dec_sub * static_cast<Duration>(dec_n)));
    put(Field::kWcetFftSubtaskNs, obs::clamp_payload_ns(fft_sub));
    put(Field::kWcetDecodeSubtaskNs, obs::clamp_payload_ns(dec_sub));
    put(Field::kDecodeOptimisticNs,
        obs::clamp_payload_ns(decode / static_cast<Duration>(iters)));
  }

  /// Runs a parallelizable stage with migration; returns subtask counts.
  void run_stage_migrating(unsigned self_id, phy::UplinkRxJob& job,
                           const Job& j, std::size_t subtasks,
                           Duration tp_estimate, bool is_fft,
                           StageTiming& timing) {
    const obs::Stage stage = is_fft ? obs::Stage::kFft : obs::Stage::kDecode;
    unsigned recovered_here = 0;
    auto run_subtask = [&](std::size_t i) {
      if (is_fft)
        rx->run_fft_subtask(job, i);
      else
        rx->run_decode_subtask(job, i);
    };

    // Plan from the CPU-state table snapshots.
    const TimePoint now = clock.now();
    std::vector<sched::MigrationCandidate> cands;
    for (unsigned k = 0; k < table.size(); ++k) {
      if (k == self_id) continue;
      if (workers[k]->dead.load(std::memory_order_acquire)) continue;
      const auto snap = table.get(k);
      Duration window =
          snap.activity == CoreActivity::kIdle ? snap.horizon - now : 0;
      if (const fault::Hooks* h = fault::active(); h && h->plan_window)
        h->plan_window(self_id, k, window);
      if (window > 0) cands.push_back({k, window});
    }
    std::sort(cands.begin(), cands.end(),
              [](const auto& a, const auto& b) {
                if (a.free_window != b.free_window)
                  return a.free_window > b.free_window;
                return a.core < b.core;
              });
    const sched::MigrationPlan plan = sched::plan_migration(
        static_cast<unsigned>(subtasks), std::max<Duration>(tp_estimate, 1),
        migration_cost, cands);

    // Publish chunks: claim target mailboxes; a failed claim (the core just
    // went active) simply keeps those subtasks local.
    struct LiveChunk {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> completed{0};
      std::unique_ptr<std::atomic<std::uint8_t>[]> done;
      std::size_t first = 0;
      std::size_t count = 0;
      unsigned core = 0;
    };
    std::vector<std::shared_ptr<LiveChunk>> live;
    std::size_t assigned_from_tail = 0;
    for (const auto& chunk : plan.chunks) {
      Mailbox& box = workers[chunk.core]->mailbox;
      if (!box.try_claim()) continue;
      auto lc = std::make_shared<LiveChunk>();
      lc->count = chunk.count;
      lc->core = chunk.core;
      lc->done =
          std::make_unique<std::atomic<std::uint8_t>[]>(chunk.count);
      for (std::size_t i = 0; i < chunk.count; ++i)
        lc->done[i].store(0, std::memory_order_relaxed);
      assigned_from_tail += chunk.count;
      lc->first = subtasks - assigned_from_tail;
      lc->next.store(lc->first);
      MigratedChunk mc;
      mc.run_subtask = run_subtask;
      mc.first = lc->first;
      mc.count = lc->count;
      mc.next_index = &lc->next;
      mc.completed = &lc->completed;
      mc.done = lc->done.get();
      mc.keepalive = lc;
      mc.bs = j.bs;
      mc.index = j.index;
      mc.src_core = self_id;
      mc.stage = stage;
      box.fill(std::move(mc));
      RTOPEX_TRACE_NOW(trc(), .bs = j.bs, .index = j.index,
                       .a = chunk.core,
                       .b = static_cast<std::uint32_t>(chunk.count),
                       .core = self_id, .kind = obs::EventKind::kOffload,
                       .stage = stage);
      migrations.fetch_add(chunk.count, std::memory_order_relaxed);
      if (is_fft)
        timing.fft_migrated += chunk.count;
      else
        timing.decode_migrated += chunk.count;
      live.push_back(std::move(lc));
    }
    const std::size_t local_end = subtasks - assigned_from_tail;

    // Local subtasks: range [0, local_end).
    for (std::size_t i = 0; i < local_end; ++i) run_subtask(i);

    // Check result flags; recover unfinished migrated subtasks by claiming
    // from the same counters (no duplicate execution possible).
    for (const auto& lc : live) {
      for (;;) {
        const std::size_t i =
            lc->next.fetch_add(1, std::memory_order_acq_rel);
        if (i >= lc->first + lc->count) break;
        run_subtask(i);
        lc->done[i - lc->first].store(1, std::memory_order_release);
        lc->completed.fetch_add(1, std::memory_order_acq_rel);
        recoveries.fetch_add(1, std::memory_order_relaxed);
        timing.recovered += 1;
        ++recovered_here;
      }
    }
    // Withdraw chunks the host never started, then wait out any host that
    // is mid-subtask (normally bounded by one subtask) — the stage's
    // buffers must not be written after this function returns. The wait
    // backs off (pause -> yield -> sleep) and, when a completion-flag
    // timeout is configured, gives up after it expires *if* the host has
    // provably parked: a parked host returned from its loop and will never
    // write again, so the unfinished claimed subtasks (identified by the
    // per-subtask done flags) are re-executed locally. A slow-but-alive
    // host is always waited out — correctness over latency.
    const Duration flag_timeout = config.resilience.completion_flag_timeout;
    for (const auto& lc : live) {
      workers[lc->core]->mailbox.try_revoke();
      auto claimed = [&] {
        return std::min(lc->next.load(std::memory_order_acquire),
                        lc->first + lc->count) -
               lc->first;
      };
      const TimePoint wait_start = clock.now();
      bool timed_out = false;
      unsigned spins = 0;
      while (lc->completed.load(std::memory_order_acquire) < claimed()) {
        if (flag_timeout > 0 && !timed_out &&
            clock.now() - wait_start > flag_timeout) {
          timed_out = true;
          flag_timeouts.fetch_add(1, std::memory_order_relaxed);
        }
        if (timed_out &&
            workers[lc->core]->parked.load(std::memory_order_acquire)) {
          for (std::size_t i = 0; i < claimed(); ++i) {
            std::uint8_t expected = 0;
            if (!lc->done[i].compare_exchange_strong(
                    expected, 2, std::memory_order_acq_rel))
              continue;
            run_subtask(lc->first + i);
            lc->completed.fetch_add(1, std::memory_order_acq_rel);
            recoveries.fetch_add(1, std::memory_order_relaxed);
            timing.recovered += 1;
            ++recovered_here;
          }
          break;
        }
        if (spins < 1024) {
          ++spins;
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        } else if (spins < 4096) {
          ++spins;
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
    if (recovered_here > 0)
      RTOPEX_TRACE_NOW(trc(), .bs = j.bs, .index = j.index,
                       .b = recovered_here, .core = self_id,
                       .kind = obs::EventKind::kRecovery, .stage = stage);
  }

  /// Carry-over between the pre-decode and post-decode halves of one
  /// subframe, split so throughput mode can fuse the decode stage of
  /// several drained subframes into one cross-subframe SoA batch between
  /// the halves.
  struct JobProgress {
    SubframeRecord rec;
    obs::profile::Profiler::SpanToken sf_span;
    obs::profile::Profiler::SpanToken dec_span;
    std::size_t fft_n = 0;
    std::size_t dec_n = 0;
    Duration dec_sub_est = 0;
    TimePoint t2 = 0;  ///< decode-stage start (right after demod).
  };

  // `job` and `rx_result` are the calling worker's reusable buffers; all
  // kernel scratch lives in per-thread phy::DecodeWorkspace instances (the
  // stage methods route through UplinkRxProcessor::thread_workspace()), so
  // a host thread executing migrated subtasks of this job brings its own
  // workspace and a steady-state subframe allocates nothing anywhere.
  SubframeRecord process_job(unsigned self_id, phy::UplinkRxJob& job,
                             phy::UplinkRxResult& rx_result, const Job& j,
                             bool migrate) {
    return process_job_single(self_id, job, rx_result, j, migrate,
                              phy::UplinkRxProcessor::thread_workspace());
  }

  /// One subframe end to end through an explicit workspace (the worker's
  /// pool workspace in throughput mode, its thread-local one otherwise).
  SubframeRecord process_job_single(unsigned self_id, phy::UplinkRxJob& job,
                                    phy::UplinkRxResult& rx_result,
                                    const Job& j, bool migrate,
                                    phy::DecodeWorkspace& ws) {
    JobProgress p;
    if (!process_job_front(self_id, job, j, migrate, ws, p)) return p.rec;
    if (migrate && p.dec_n > 1) {
      run_stage_migrating(self_id, job, j, p.dec_n, p.dec_sub_est,
                          /*is_fft=*/false, p.rec.timing);
    } else if (config.throughput.batch > 1) {
      // Throughput mode, shallow queue: every code block through the SoA
      // decoder in one pass (bit-identical to the per-subtask loop — the
      // kernel differential tests assert it).
      rx->run_decode_batch(job, ws);
    } else {
      // Default latency-oriented runtime: per-block subtasks, the
      // granularity the slack estimates, profiler spans and migration
      // machinery are built around.
      const std::size_t dec_n = rx->decode_subtask_count(job);
      for (std::size_t s = 0; s < dec_n; ++s)
        rx->run_decode_subtask(job, s, ws);
    }
    return process_job_back(self_id, job, rx_result, j, ws, p,
                            /*decode_attr=*/-1);
  }

  /// Throughput mode: `drained.size()` subframes as one worker pass — each
  /// runs FFT/demod in arrival order, then every admitted subframe's code
  /// blocks decode in a single cross-subframe SoA batch, so blocks from
  /// different basestations fill out lanes one subframe would leave empty.
  /// The fused decode window is attributed to the records proportionally
  /// to code-block count; finalize runs per subframe after the batch, so
  /// each record's completion time is honest.
  void process_job_batch(unsigned self_id,
                         std::span<phy::UplinkRxJob> job_bufs,
                         phy::UplinkRxResult& rx_result,
                         std::span<const Job> drained,
                         phy::DecodeWorkspace& ws,
                         std::vector<SubframeRecord>& out) {
    std::array<JobProgress, kMaxBatch> prog;
    std::array<phy::UplinkRxJob*, kMaxBatch> ready{};
    std::array<std::size_t, kMaxBatch> ready_idx{};
    std::size_t n_ready = 0;
    std::size_t total_blocks = 0;
    for (std::size_t i = 0; i < drained.size(); ++i) {
      if (process_job_front(self_id, job_bufs[i], drained[i],
                            /*migrate=*/false, ws, prog[i])) {
        ready[n_ready] = &job_bufs[i];
        ready_idx[n_ready] = i;
        ++n_ready;
        total_blocks += prog[i].dec_n;
      } else {
        out.push_back(prog[i].rec);  // late or dropped: already complete
      }
    }
    if (n_ready == 0) return;
    const TimePoint b0 = clock.now();
    rx->run_decode_batch(
        std::span<phy::UplinkRxJob* const>(ready.data(), n_ready), ws);
    const Duration window = clock.now() - b0;
    if (n_ready > 1)
      batched_subframes.fetch_add(n_ready, std::memory_order_relaxed);
    for (std::size_t k = 0; k < n_ready; ++k) {
      JobProgress& p = prog[ready_idx[k]];
      const Duration attr =
          total_blocks > 0
              ? window * static_cast<Duration>(p.dec_n) /
                    static_cast<Duration>(total_blocks)
              : window;
      out.push_back(process_job_back(self_id, *ready[k], rx_result,
                                     drained[ready_idx[k]], ws, p, attr));
    }
  }

  /// Pre-decode half: arrival wait, classification, slack check, FFT and
  /// demod stages, decode_prepare and the decode StageBegin trace. Returns
  /// true when the subframe reached the decode stage; false when it
  /// finished early (late arrival or slack drop) — p.rec is complete then.
  /// Non-migrating stages run out of `ws`.
  bool process_job_front(unsigned self_id, phy::UplinkRxJob& job, const Job& j,
                         bool migrate, phy::DecodeWorkspace& ws,
                         JobProgress& p) {
    p = JobProgress{};
    SubframeRecord& rec = p.rec;
    obs::profile::Profiler::SpanToken& sf_span = p.sf_span;
    rec.bs = j.bs;
    rec.index = j.index;
    rec.mcs = j.variant->mcs;
    rec.radio_time = j.radio_time;
    rec.arrival = j.arrival;
    // The ticker may enqueue a very late delivery ahead of its modeled
    // arrival so it never stalls its own schedule; emulate the IQ data not
    // being there yet (no point waiting past the deadline — the subframe
    // is a late arrival either way).
    while (clock.now() < j.arrival && clock.now() <= j.deadline)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    rec.start = clock.now();
    table.set(self_id, CoreActivity::kActive, 0);
    RTOPEX_TRACE_EVENT(trc(), .ts = j.arrival, .bs = j.bs, .index = j.index,
                       .a = obs::clamp_payload_ns(j.deadline - j.arrival),
                       .b = obs::clamp_payload_ns(j.arrival - j.radio_time),
                       .core = self_id, .kind = obs::EventKind::kArrival);
    RTOPEX_TRACE_EVENT(trc(), .ts = rec.start, .bs = j.bs, .index = j.index,
                       .core = self_id,
                       .kind = obs::EventKind::kSubframeBegin);
    obs::profile::Profiler* const pr = prof();
    if (pr)
      sf_span = pr->begin(self_id, "subframe", obs::Stage::kNone, j.bs,
                          j.index);

    const std::size_t fft_n = rx->fft_subtask_count();
    p.fft_n = fft_n;
    const std::size_t dec_n_est = phy::num_code_blocks(
        j.variant->mcs, config.phy.num_prb());

    // A subframe that arrived after its deadline had already passed (a late
    // fronthaul delivery) is classified and skipped regardless of
    // enforce_deadlines — there is no decision to make, the deadline is
    // gone, and decoding it would only stall the queue behind it.
    if (j.arrival > j.deadline) {
      rec.completion = clock.now();
      rec.deadline_missed = true;
      rec.late_arrival = true;
      RTOPEX_TRACE_NOW(trc(), .bs = j.bs, .index = j.index,
                       .a = obs::clamp_payload_ns(j.arrival - j.deadline),
                       .b = obs::clamp_payload_ns(j.arrival - j.radio_time),
                       .core = self_id, .kind = obs::EventKind::kLate);
      RTOPEX_TRACE_EVENT(trc(), .ts = rec.completion, .bs = j.bs,
                         .index = j.index, .a = 1, .core = self_id,
                         .kind = obs::EventKind::kSubframeEnd);
      emit_job_spec(self_id, j, j.variant->mcs, rec, fft_n, dec_n_est);
      if (pr) pr->end(self_id, sf_span);
      return false;
    }

    rx->begin(job, j.variant->antenna_samples, j.variant->mcs,
              j.variant->tx_subframe_index);

    // Slack check (paper §4.1): drop the subframe when the estimated
    // execution time exceeds the time left before its deadline. With
    // degradation enabled, first retry the estimate with the
    // turbo-iteration cap shrunk below Lm — trading decode quality for
    // deadline compliance — and only drop when even the minimal-quality
    // estimate cannot fit. With adaptive estimation on, the learned
    // MCS-aware Eq. (1) fit and per-BS iteration predictors replace the
    // single global EWMA products (falling back to them until warmed up).
    if (config.enforce_deadlines) {
      Duration fft_sub = fft_subtask_est_ns.load();
      Duration decode_full =
          decode_subtask_est_ns.load() * static_cast<Duration>(dec_n_est);
      if (adaptive) {
        std::lock_guard lock(adaptive->mu);
        fft_sub = adaptive->est.fft_subtask_or(fft_sub);
        decode_full =
            adaptive->est.predict_decode(j.bs, j.variant->mcs, decode_full);
      }
      const Duration base =
          fft_sub * static_cast<Duration>(fft_n) + demod_est_ns.load();
      if (clock.now() + base + decode_full > j.deadline) {
        bool admitted = false;
        const unsigned lm = config.phy.max_iterations;
        if (config.resilience.enable_degradation && lm > 1) {
          const unsigned lmin =
              std::min(config.resilience.min_turbo_iterations, lm);
          // Decode cost is ~linear in the iteration count (Eq. (1)); the
          // EWMA estimate tracks full-quality (Lm) decodes, so a cap of L
          // scales it by L / Lm.
          for (unsigned cap = lm - 1; cap >= lmin; --cap) {
            const Duration est =
                base + decode_full * static_cast<Duration>(cap) /
                           static_cast<Duration>(lm);
            if (clock.now() + est <= j.deadline) {
              job.iteration_cap = cap;
              rec.degrade = cap <= lmin ? DegradeLevel::kMinimalIterations
                                        : DegradeLevel::kReducedIterations;
              RTOPEX_TRACE_NOW(trc(), .bs = j.bs, .index = j.index, .a = cap,
                               .core = self_id,
                               .kind = obs::EventKind::kDegrade,
                               .stage = obs::Stage::kDecode);
              admitted = true;
              break;
            }
            if (cap == lmin) break;
          }
        }
        if (!admitted) {
          rec.completion = clock.now();
          rec.deadline_missed = true;
          rec.dropped = true;
          RTOPEX_TRACE_NOW(trc(), .bs = j.bs, .index = j.index,
                           .core = self_id, .kind = obs::EventKind::kDrop);
          RTOPEX_TRACE_EVENT(trc(), .ts = rec.completion, .bs = j.bs,
                             .index = j.index, .a = 1, .core = self_id,
                             .kind = obs::EventKind::kSubframeEnd);
          emit_job_spec(self_id, j, j.variant->mcs, rec, fft_n, dec_n_est);
          if (pr) pr->end(self_id, sf_span);
          return false;
        }
      }
    }

    // --- FFT ---
    const Duration fft_sub_est =
        adaptive_fft_subtask(fft_subtask_est_ns.load());
    TimePoint t0 = clock.now();
    RTOPEX_TRACE_EVENT(trc(), .ts = t0, .bs = j.bs, .index = j.index,
                       .a = obs::clamp_payload_ns(
                           fft_sub_est * static_cast<Duration>(fft_n)),
                       .core = self_id, .kind = obs::EventKind::kStageBegin,
                       .stage = obs::Stage::kFft);
    obs::profile::Profiler::SpanToken fft_span;
    if (pr)
      fft_span = pr->begin(self_id, "fft", obs::Stage::kFft, j.bs, j.index);
    if (migrate) {
      run_stage_migrating(self_id, job, j, fft_n, fft_sub_est,
                          /*is_fft=*/true, rec.timing);
    } else {
      for (std::size_t i = 0; i < fft_n; ++i) rx->run_fft_subtask(job, i, ws);
    }
    if (pr) pr->end(self_id, fft_span, static_cast<std::uint32_t>(fft_n), 0);
    TimePoint t1 = clock.now();
    rec.timing.fft = t1 - t0;
    RTOPEX_TRACE_EVENT(trc(), .ts = t1, .bs = j.bs, .index = j.index,
                       .core = self_id, .kind = obs::EventKind::kStageEnd,
                       .stage = obs::Stage::kFft);
    update_estimate(fft_subtask_est_ns,
                    rec.timing.fft / static_cast<Duration>(fft_n));

    // --- Demod ---
    obs::profile::Profiler::SpanToken demod_span;
    if (pr)
      demod_span =
          pr->begin(self_id, "demod", obs::Stage::kDemod, j.bs, j.index);
    rx->demod_prepare(job);
    for (std::size_t i = 0; i < rx->demod_subtask_count(); ++i)
      rx->run_demod_subtask(job, i);
    if (pr) pr->end(self_id, demod_span);
    TimePoint t2 = clock.now();
    rec.timing.demod = t2 - t1;
    RTOPEX_TRACE_EVENT(trc(), .ts = t1, .bs = j.bs, .index = j.index,
                       .a = obs::clamp_payload_ns(demod_est_ns.load()),
                       .core = self_id, .kind = obs::EventKind::kStageBegin,
                       .stage = obs::Stage::kDemod);
    RTOPEX_TRACE_EVENT(trc(), .ts = t2, .bs = j.bs, .index = j.index,
                       .core = self_id, .kind = obs::EventKind::kStageEnd,
                       .stage = obs::Stage::kDemod);
    update_estimate(demod_est_ns, rec.timing.demod);

    // --- Decode prelude (the stage itself runs in the caller) ---
    if (pr)
      p.dec_span =
          pr->begin(self_id, "decode", obs::Stage::kDecode, j.bs, j.index);
    rx->decode_prepare(job, ws);
    const std::size_t dec_n = rx->decode_subtask_count(job);
    p.dec_n = dec_n;
    // Estimate the admission logic would have used: the EWMA per-subtask
    // decode time tracks full-quality (Lm) decodes, scaled to the cap when
    // the subframe was admitted degraded. With adaptive estimation on, the
    // Eq. (1) fit's prediction (at the per-BS predicted iteration count)
    // takes over, and the migration chunks are sized with the learned
    // per-subtask time instead of the global EWMA.
    const unsigned lm = config.phy.max_iterations;
    const Duration dec_sub_est =
        adaptive_decode_subtask(decode_subtask_est_ns.load());
    Duration decode_est = dec_sub_est * static_cast<Duration>(dec_n);
    unsigned assumed_iters = job.iteration_cap > 0 ? job.iteration_cap : lm;
    if (adaptive) {
      std::lock_guard lock(adaptive->mu);
      decode_est = adaptive->est.predict_decode(j.bs, j.variant->mcs,
                                                decode_est);
      if (job.iteration_cap == 0)
        assumed_iters = adaptive->est.predict_iterations(j.bs);
    }
    if (job.iteration_cap > 0 && lm > 0)
      decode_est = decode_est * static_cast<Duration>(job.iteration_cap) /
                   static_cast<Duration>(lm);
    RTOPEX_TRACE_NOW(trc(), .bs = j.bs, .index = j.index,
                     .a = obs::clamp_payload_ns(decode_est),
                     .b = assumed_iters,
                     .core = self_id, .kind = obs::EventKind::kStageBegin,
                     .stage = obs::Stage::kDecode);
    p.dec_sub_est = dec_sub_est;
    p.t2 = t2;
    return true;
  }

  /// Post-decode half: finalize, decode timing, estimate updates, closing
  /// traces. `decode_attr` < 0 measures the stage as (now - p.t2), exactly
  /// the original single-subframe timing; >= 0 substitutes the caller's
  /// attribution (throughput mode: this subframe's share of the fused
  /// batch decode window — its own decode_prepare and finalize tails stay
  /// outside the attributed figure).
  SubframeRecord process_job_back(unsigned self_id, phy::UplinkRxJob& job,
                                  phy::UplinkRxResult& rx_result,
                                  const Job& j, phy::DecodeWorkspace& ws,
                                  JobProgress& p, Duration decode_attr) {
    SubframeRecord& rec = p.rec;
    obs::profile::Profiler* const pr = prof();
    const std::size_t dec_n = p.dec_n;
    rx->finalize_into(job, ws, rx_result);
    if (pr)
      pr->end(self_id, p.dec_span,
              obs::profile::pack_decode_regressors(
                  phy::modulation_order(j.variant->mcs),
                  config.phy.num_antennas, j.variant->mcs),
              obs::profile::pack_decode_load(static_cast<unsigned>(dec_n),
                                             rx_result.iterations));
    TimePoint t3 = clock.now();
    rec.timing.decode = decode_attr >= 0 ? decode_attr : t3 - p.t2;
    RTOPEX_TRACE_EVENT(trc(), .ts = t3, .bs = j.bs, .index = j.index,
                       .core = self_id, .kind = obs::EventKind::kStageEnd,
                       .stage = obs::Stage::kDecode);
    // A capped decode is cheaper than a full-quality one; feeding it into
    // the EWMA would bias the full-quality estimate downward and admit
    // subframes that then miss.
    if (job.iteration_cap == 0)
      update_estimate(decode_subtask_est_ns,
                      rec.timing.decode / static_cast<Duration>(dec_n));

    rec.completion = t3;
    rec.crc_ok = rx_result.crc_ok;
    rec.iterations = rx_result.iterations;
    rec.deadline_missed = rec.completion > j.deadline;
    if (adaptive && job.iteration_cap == 0) {
      std::lock_guard lock(adaptive->mu);
      adaptive->est.observe_fft(rec.timing.fft /
                                static_cast<Duration>(p.fft_n));
      adaptive->est.observe_decode(
          j.bs, j.variant->mcs, rec.iterations, rec.timing.decode,
          rec.timing.decode / static_cast<Duration>(dec_n));
    }
    RTOPEX_TRACE_EVENT(trc(), .ts = rec.completion, .bs = j.bs,
                       .index = j.index, .a = rec.deadline_missed ? 1u : 0u,
                       .b = rec.iterations, .core = self_id,
                       .kind = obs::EventKind::kSubframeEnd);
    emit_job_spec(self_id, j, j.variant->mcs, rec, p.fft_n, dec_n);
    if (pr) pr->end(self_id, p.sf_span);
    return rec;
  }

  /// Kill switch (fault injection): a worker that reads true parks for the
  /// rest of the run. It marks itself parked *before* it stops servicing
  /// anything, never abandons a claimed subtask (the check sits between
  /// jobs and between hosted subtasks), and keeps the thread joinable.
  bool should_die(unsigned id) {
    const fault::Hooks* h = fault::active();
    return h && h->kill_worker && h->kill_worker(id);
  }

  void park(unsigned id) {
    WorkerState& self = *workers[id];
    self.parked.store(true, std::memory_order_release);
    table.set(id, CoreActivity::kActive, 0);
    while (running.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Worker body for partitioned/global modes: block on the queue. With
  // throughput batching on, drain up to `batch` already-queued jobs per
  // pass and fuse their decode stages into one cross-subframe SoA batch.
  // Draining is opportunistic — it never waits for the queue to fill — so
  // an underloaded node degenerates to batch-of-1 and pays no added
  // latency.
  void blocking_worker(unsigned id) {
    if (should_pin()) pin_current_thread(worker_pin_core(id));
    if (config.try_fifo_priority) set_current_thread_fifo(50);
    set_current_thread_name("rtopex-w" + std::to_string(id));
    const bool global = config.mode == RuntimeMode::kGlobal;
    const std::size_t batch = std::min<std::size_t>(
        std::max(1u, config.throughput.batch), kMaxBatch);
    WorkerState& self = *workers[id];
    std::vector<phy::UplinkRxJob> job_bufs;
    job_bufs.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) job_bufs.push_back(rx->make_job());
    phy::UplinkRxResult rx_result;
    phy::DecodeWorkspace& ws =
        pool ? pool->workspace(id)
             : phy::UplinkRxProcessor::thread_workspace();
    std::vector<Job> drained;
    drained.reserve(batch);
    workers_ready.fetch_add(1, std::memory_order_release);
    auto& mu = global ? global_mu : self.mu;
    auto& cv = global ? global_cv : self.cv;
    auto& queue = global ? global_queue : self.queue;
    for (;;) {
      if (should_die(id)) return park(id);
      drained.clear();
      {
        std::unique_lock lock(mu);
        // Wake at least once per watchdog period so the kill switch is
        // polled even when this worker's queue stays empty.
        cv.wait_for(lock, std::chrono::milliseconds(5),
                    [&] { return !queue.empty() || !running.load(); });
        // The queue may be empty on a spurious wake, at shutdown, or after
        // the watchdog requeued this worker's jobs elsewhere.
        if (queue.empty()) {
          if (!running.load()) return;
          continue;
        }
        while (!queue.empty() && drained.size() < batch) {
          // Fuse only subframes whose IQ data has already arrived: the
          // ticker enqueues ahead of the modeled arrival, and batching a
          // future delivery would make this pass sleep on it mid-batch
          // while peers sit idle. The first job is taken unconditionally
          // (the batch-of-1 path waits on it exactly like the default).
          if (!drained.empty() && queue.front().arrival > clock.now()) break;
          drained.push_back(queue.front());
          queue.pop_front();
        }
      }
      self.heartbeat.fetch_add(drained.size(), std::memory_order_relaxed);
      if (drained.size() == 1) {
        self.records.push_back(process_job_single(
            id, job_bufs[0], rx_result, drained[0], /*migrate=*/false, ws));
      } else {
        process_job_batch(id, job_bufs, rx_result, drained, ws,
                          self.records);
      }
      if (!global)
        self.pending.fetch_sub(static_cast<int>(drained.size()),
                               std::memory_order_acq_rel);
    }
  }

  // Worker body for RT-OPEX: poll own queue and the migration mailbox.
  void rtopex_worker(unsigned id) {
    if (should_pin()) pin_current_thread(worker_pin_core(id));
    if (config.try_fifo_priority) set_current_thread_fifo(50);
    set_current_thread_name("rtopex-w" + std::to_string(id));
    WorkerState& self = *workers[id];
    phy::UplinkRxJob job = rx->make_job();
    phy::UplinkRxResult rx_result;
    workers_ready.fetch_add(1, std::memory_order_release);
    for (;;) {
      if (should_die(id)) return park(id);
      self.heartbeat.fetch_add(1, std::memory_order_relaxed);
      if (self.pending.load(std::memory_order_acquire) > 0) {
        Job j;
        bool got = false;
        {
          std::lock_guard lock(self.mu);
          // Empty despite pending > 0 when the watchdog just requeued this
          // worker's jobs elsewhere (it decrements pending under the lock,
          // but this thread may have read the counter before that).
          if (!self.queue.empty()) {
            j = self.queue.front();
            self.queue.pop_front();
            got = true;
          }
        }
        if (got) {
          self.pending.fetch_sub(1, std::memory_order_acq_rel);
          self.records.push_back(
              process_job(id, job, rx_result, j, /*migrate=*/true));
        }
        continue;
      }
      if (!running.load(std::memory_order_acquire)) return;

      // Waiting state: publish idleness with the predicted horizon, then
      // serve at most one migrated chunk.
      table.set(id, CoreActivity::kIdle,
                self.next_own_arrival.load(std::memory_order_acquire));
      if (const fault::Hooks* h = fault::active();
          h && h->host_take && !h->host_take(id)) {
        std::this_thread::yield();
        continue;
      }
      MigratedChunk chunk;
      if (self.mailbox.try_take(chunk)) {
        table.set(id, CoreActivity::kHosting, 0);
        RTOPEX_TRACE_NOW(trc(), .bs = chunk.bs, .index = chunk.index,
                         .a = chunk.src_core, .core = id,
                         .kind = obs::EventKind::kHostBegin,
                         .stage = chunk.stage);
        obs::profile::Profiler* const pr = prof();
        obs::profile::Profiler::SpanToken host_span, host_stage_span;
        if (pr) {
          host_span = pr->begin(id, "host", obs::Stage::kNone, chunk.bs,
                                chunk.index);
          host_stage_span = pr->begin(id, obs::to_string(chunk.stage),
                                      chunk.stage, chunk.bs, chunk.index);
        }
        std::uint32_t served = 0;
        for (;;) {
          // Preemption and kill checks between subtasks — a killed host
          // finishes the subtask it claimed before parking, so it never
          // strands a claimed-but-incomplete index.
          if (self.pending.load(std::memory_order_acquire) > 0) break;
          if (should_die(id)) {
            self.mailbox.release();
            return park(id);
          }
          if (const fault::Hooks* h = fault::active();
              h && h->host_subtask && !h->host_subtask(id))
            break;
          const std::size_t i =
              chunk.next_index->fetch_add(1, std::memory_order_acq_rel);
          if (i >= chunk.first + chunk.count) break;
          chunk.run_subtask(i);
          if (chunk.done)
            chunk.done[i - chunk.first].store(1, std::memory_order_release);
          chunk.completed->fetch_add(1, std::memory_order_acq_rel);
          self.heartbeat.fetch_add(1, std::memory_order_relaxed);
          ++served;
        }
        if (pr) {
          // No payload on the stage child: a/b on decode-stage spans are
          // reserved for the packed Eq. (1) regressors the fit consumes.
          pr->end(id, host_stage_span);
          pr->end(id, host_span, chunk.src_core, served);
        }
        RTOPEX_TRACE_NOW(trc(), .bs = chunk.bs, .index = chunk.index,
                         .a = chunk.src_core, .b = served, .core = id,
                         .kind = obs::EventKind::kHostEnd,
                         .stage = chunk.stage);
        self.mailbox.release();
        continue;
      }
      std::this_thread::yield();
    }
  }

  // ---- transport side ---------------------------------------------------

  void push_job(const Job& j) {
    if (config.mode == RuntimeMode::kGlobal) {
      {
        std::lock_guard lock(global_mu);
        global_queue.push_back(j);
      }
      global_cv.notify_one();
      return;
    }
    const unsigned wid = slots[j.bs][j.index % config.cores_per_bs];
    WorkerState& w = *workers[wid];
    // A push to a caught-up worker restarts its stall timer: the watchdog
    // must measure "queued work with no progress" from the moment the work
    // arrived, not from its last (sparse, once-per-tick) observation —
    // otherwise idle time between checks counts as stall time, and a
    // survivor handed a requeued orphan can be declared dead in the very
    // watchdog pass that failed over the real stall. Ticker thread owns
    // both push_job and last_progress, so no synchronization is needed.
    if (w.pending.load(std::memory_order_acquire) <= 0)
      last_progress[wid] = clock.now();
    {
      std::lock_guard lock(w.mu);
      w.queue.push_back(j);
      // Predict this worker's following own arrival (one stride later).
      // After a repartition the worker may own extra slots and the stride
      // is only an upper bound on its idle window — a conservative horizon
      // under-migrates, it never corrupts.
      w.next_own_arrival.store(
          j.arrival + static_cast<Duration>(config.cores_per_bs) *
                          config.subframe_period,
          std::memory_order_release);
    }
    w.pending.fetch_add(1, std::memory_order_acq_rel);
    w.cv.notify_one();
  }

  // ---- watchdog (ticker thread) -----------------------------------------

  /// Declares `id` dead, rebuilds the partition table without it and
  /// requeues its stranded jobs onto the survivors.
  void fail_over(unsigned id) {
    WorkerState& w = *workers[id];
    w.dead.store(true, std::memory_order_release);
    // Never a migration target again: pin its table entry to active.
    table.set(id, CoreActivity::kActive, 0);
    ++res_failovers;
    RTOPEX_TRACE_NOW(trc(), .a = id, .core = ticker_track(),
                     .kind = obs::EventKind::kWatchdogFire);

    std::vector<unsigned> survivors;
    for (unsigned k = 0; k < workers.size(); ++k)
      if (!workers[k]->dead.load(std::memory_order_acquire))
        survivors.push_back(k);
    if (survivors.empty()) return;  // nothing left to repartition onto

    // Reassign every slot the dead worker owned, round-robin across the
    // survivors (preferring the dead worker's own basestation peers first
    // simply by survivor order).
    std::size_t rr = 0;
    for (auto& per_bs : slots)
      for (auto& slot : per_bs)
        if (slot == id) slot = survivors[rr++ % survivors.size()];
    ++res_repartitions;

    // Drain the dead worker's queue and re-push through the new table.
    // Holding its mutex here is what makes the counter adjustment safe
    // against the (possibly still live) worker's own pop.
    std::deque<Job> orphans;
    {
      std::lock_guard lock(w.mu);
      orphans.swap(w.queue);
      w.pending.fetch_sub(static_cast<int>(orphans.size()),
                          std::memory_order_acq_rel);
    }
    for (const Job& j : orphans) {
      push_job(j);
      ++res_requeued;
    }
  }

  /// Stall detection: a worker whose heartbeat has not advanced across one
  /// whole watchdog_timeout while it had queued work is declared dead. A
  /// worker blocked with an empty queue is idle, not dead; one slowly
  /// grinding through jobs heartbeats per job, so the timeout must exceed
  /// the worst single-job latency (it defaults to 10x a typical decode).
  void check_watchdog(TimePoint now) {
    if (!config.resilience.enable_watchdog ||
        config.mode == RuntimeMode::kGlobal || workers.size() < 2)
      return;
    for (unsigned k = 0; k < workers.size(); ++k) {
      WorkerState& w = *workers[k];
      if (w.dead.load(std::memory_order_acquire)) continue;
      const std::uint64_t hb = w.heartbeat.load(std::memory_order_relaxed);
      if (hb != last_heartbeat[k] ||
          w.pending.load(std::memory_order_acquire) <= 0) {
        last_heartbeat[k] = hb;
        last_progress[k] = now;
        continue;
      }
      if (now - last_progress[k] >= config.resilience.watchdog_timeout)
        fail_over(k);
    }
  }

  /// Feeds every newly stored event to the health monitor (oldest first)
  /// and advances evaluation to the present. Store slices arrive per-ring
  /// and are only loosely time-ordered, so the new slice is sorted before
  /// feeding; the monitor's two-period evaluation lag absorbs the rest of
  /// the collection delay. Ticker thread only.
  void feed_health() {
    if (!health) return;
    const std::vector<obs::TraceEvent>& events = tracer->store().events;
    if (health_fed < events.size()) {
      std::vector<obs::TraceEvent> slice(
          events.begin() + static_cast<std::ptrdiff_t>(health_fed),
          events.end());
      health_fed = events.size();
      std::stable_sort(slice.begin(), slice.end(),
                       [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                         return a.ts < b.ts;
                       });
      for (const obs::TraceEvent& ev : slice) {
        // Skip our own output, re-surfaced by the next collect().
        if (ev.kind == obs::EventKind::kAlert ||
            ev.kind == obs::EventKind::kAlertClear)
          continue;
        health->observe(ev);
      }
    }
    health->advance(clock.now());
  }

  /// Mid-run Prometheus snapshot built only from state the ticker may read
  /// without locks: atomics and ticker-owned counters. Per-subframe latency
  /// histograms need the worker-private records and appear only in the
  /// post-run fill_registry() snapshot.
  std::string render_live_metrics() {
    obs::MetricsRegistry reg;
    reg.add_gauge("rtopex_runtime_uptime_seconds",
                  "Wall-clock run time so far.",
                  static_cast<double>(clock.now()) / 1e9);
    reg.add_counter("rtopex_runtime_migrations_total",
                    "Subtasks executed on a remote core.",
                    static_cast<double>(migrations.load()));
    reg.add_counter("rtopex_runtime_recoveries_total",
                    "Migrated subtasks re-executed locally.",
                    static_cast<double>(recoveries.load()));
    reg.add_counter("rtopex_runtime_flag_timeouts_total",
                    "Completion-flag waits that expired.",
                    static_cast<double>(flag_timeouts.load()));
    reg.add_counter("rtopex_runtime_batched_subframes_total",
                    "Subframes decoded in a cross-subframe batch.",
                    static_cast<double>(batched_subframes.load()));
    reg.add_counter("rtopex_runtime_failovers_total",
                    "Workers declared dead by the watchdog.",
                    static_cast<double>(res_failovers));
    reg.add_counter("rtopex_runtime_repartitions_total",
                    "Partition-table rebuilds after a failover.",
                    static_cast<double>(res_repartitions));
    reg.add_counter("rtopex_runtime_requeued_jobs_total",
                    "Jobs requeued from a dead worker's queue.",
                    static_cast<double>(res_requeued));
    reg.add_counter("rtopex_runtime_lost_subframes_total",
                    "Subframes the fronthaul never delivered.",
                    static_cast<double>(lost_records.size()));
    if (tracer) {
      reg.add_counter("rtopex_trace_ring_drops_total",
                      "Trace events dropped on full per-core rings.",
                      static_cast<double>(tracer->total_ring_drops()));
      for (unsigned t = 0; t < tracer->num_tracks(); ++t)
        reg.add_counter("rtopex_trace_ring_dropped_total",
                        "Trace events dropped on one core's full ring.",
                        static_cast<double>(tracer->drops(t)),
                        {{"core", std::to_string(t)}});
      reg.add_counter("rtopex_trace_collected_events_total",
                      "Trace events drained into the bounded store.",
                      static_cast<double>(tracer->store().events.size()));
    }
    if (health) health->fill_registry(reg);
    return reg.render();
  }
};

NodeRuntime::NodeRuntime(const RuntimeConfig& config) {
  if (config.num_basestations == 0 || config.subframes_per_bs == 0 ||
      config.mcs_cycle.empty())
    throw std::invalid_argument("NodeRuntime: empty configuration");
  // A zero worker count would leave pushed jobs queued forever (the drain
  // loop in run() would hang); reject up front.
  if (Impl::worker_count(config) == 0)
    throw std::invalid_argument("NodeRuntime: zero worker cores");
  if (config.subframe_period <= 0 || config.deadline_budget <= 0)
    throw std::invalid_argument("NodeRuntime: non-positive period or budget");
  // rtt_half at or beyond the deadline budget means every subframe is
  // already dead on arrival — a configuration error, not a workload.
  if (config.rtt_half < 0 || config.rtt_half >= config.deadline_budget)
    throw std::invalid_argument(
        "NodeRuntime: rtt_half must be in [0, deadline_budget)");
  for (const unsigned mcs : config.mcs_cycle)
    if (mcs > phy::kMaxMcs)
      throw std::invalid_argument("NodeRuntime: mcs_cycle entry > 27");
  // A zero or negative estimate seed would admit every subframe (or divide
  // the migration planner's chunk sizing by zero downstream).
  if (config.initial_fft_subtask_est <= 0 ||
      config.initial_decode_subtask_est <= 0 || config.initial_demod_est <= 0)
    throw std::invalid_argument(
        "NodeRuntime: planning estimate seeds must be positive");
  const ResilienceConfig& res = config.resilience;
  if (res.enable_watchdog && res.watchdog_timeout <= 0)
    throw std::invalid_argument(
        "NodeRuntime: non-positive watchdog_timeout");
  if (res.enable_degradation &&
      (res.min_turbo_iterations == 0 ||
       res.min_turbo_iterations >= config.phy.max_iterations))
    throw std::invalid_argument(
        "NodeRuntime: min_turbo_iterations must be in [1, Lm)");
  if (res.completion_flag_timeout < 0)
    throw std::invalid_argument(
        "NodeRuntime: negative completion_flag_timeout");
  const ThroughputConfig& tp = config.throughput;
  if (tp.batch == 0)
    throw std::invalid_argument("NodeRuntime: throughput.batch must be >= 1");
  if (tp.batch > 16)
    throw std::invalid_argument(
        "NodeRuntime: throughput.batch exceeds the cross-subframe decode "
        "limit (16)");
  if (tp.batch > 1 && config.mode == RuntimeMode::kRtOpex)
    throw std::invalid_argument(
        "NodeRuntime: batching requires partitioned or global mode "
        "(RT-OPEX migrates decode per-subtask)");
  // An explicit pin set must cover every worker — a short list would
  // silently double up workers on shared cores, which defeats isolation.
  if (!tp.worker_cores.empty() &&
      tp.worker_cores.size() < Impl::worker_count(config))
    throw std::invalid_argument(
        "NodeRuntime: worker_cores must list at least one core per worker");
  // Fronthaul fault params are validated by the model's own constructor
  // (inside Impl); anything invalid throws std::invalid_argument there.
  if (config.health.enabled) config.health.validate();
  impl_ = std::make_unique<Impl>(config);
  // Throughput-mode pool setup happens here, at construction: the pre-warm
  // (a full dummy decode per worker workspace, from a node-pinned helper
  // thread) is expensive, and callers timing run() should see schedule
  // execution only, not setup.
  if (config.throughput.numa_pools) {
    Impl& im = *impl_;
    const unsigned n_workers = Impl::worker_count(config);
    im.numa_topo = detect_numa_topology();
    std::vector<unsigned> worker_cpus;
    if (im.should_pin())
      for (unsigned i = 0; i < n_workers; ++i)
        worker_cpus.push_back(im.worker_pin_core(i));
    im.pool = std::make_unique<WorkspacePool>(
        im.numa_topo, worker_cpus, n_workers,
        [&im](phy::DecodeWorkspace& ws) { im.prewarm_workspace(ws); });
  }
}

NodeRuntime::~NodeRuntime() = default;

RuntimeReport NodeRuntime::run() {
  Impl& im = *impl_;
  const RuntimeConfig& cfg = im.config;

  const unsigned n_workers = Impl::worker_count(cfg);
  // Dedicated ticker core (FlexRAN-style timing isolation): the calling
  // thread is the ticker, so pin it here. Best effort, like all affinity.
  if (cfg.throughput.ticker_core >= 0)
    pin_current_thread(static_cast<unsigned>(cfg.throughput.ticker_core));

  std::vector<std::thread> threads;
  threads.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    if (cfg.mode == RuntimeMode::kRtOpex)
      threads.emplace_back([&im, i] { im.rtopex_worker(i); });
    else
      threads.emplace_back([&im, i] { im.blocking_worker(i); });
  }

  // Start the schedule only once every worker has finished its per-thread
  // setup (and not at construction: variant pre-generation in the Impl
  // constructor can take long enough, notably under sanitizers, to push the
  // first subframes past their deadlines). Batch mode allocates `batch` job
  // buffers per worker — >10 ms of page faults on some hosts — and the
  // first subframes should not pay for that either.
  while (im.workers_ready.load(std::memory_order_acquire) < n_workers)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  im.clock.reset();

  // Transport ticker: one tick per subframe period, all basestations.
  // The fronthaul fault stream is independent of the payload RNG so that
  // enabling faults does not perturb the generated waveforms.
  Rng fault_rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  const bool faults = cfg.resilience.fronthaul_faults.enabled();
  TimePoint last_metrics = 0;
  for (std::uint32_t j = 0; j < cfg.subframes_per_bs; ++j) {
    const TimePoint radio_time =
        static_cast<TimePoint>(j) * cfg.subframe_period;
    const TimePoint arrival = radio_time + cfg.rtt_half;
    // Coarse sleep then a short spin to the arrival instant.
    const TimePoint pre = arrival - microseconds(200);
    while (im.clock.now() < pre)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    im.check_watchdog(im.clock.now());
    // The ticker is the sole trace collector: drain every worker ring once
    // per tick so rings never fill under normal load.
    if (im.tracer) im.tracer->collect();
    im.feed_health();
    if (cfg.metrics_period > 0 && cfg.metrics_sink &&
        im.clock.now() - last_metrics >= cfg.metrics_period) {
      last_metrics = im.clock.now();
      cfg.metrics_sink(im.render_live_metrics());
    }
    // Per-basestation jittered arrivals (fault injection); without a hook
    // every basestation arrives at the nominal instant in one batch.
    std::vector<std::pair<TimePoint, unsigned>> deliveries;
    deliveries.reserve(cfg.num_basestations);
    for (unsigned bs = 0; bs < cfg.num_basestations; ++bs) {
      TimePoint at = arrival;
      if (faults) {
        const transport::FronthaulFault f = im.fault_model.sample(fault_rng);
        if (f.lost) {
          // The subframe never reaches the node: record it directly and
          // free the slot instead of parking a job a worker would block on.
          SubframeRecord rec;
          rec.bs = bs;
          rec.index = j;
          rec.mcs = cfg.mcs_cycle[(j + bs) % cfg.mcs_cycle.size()];
          rec.radio_time = radio_time;
          rec.lost = true;
          im.lost_records.push_back(rec);
          RTOPEX_TRACE_NOW(im.trc(), .bs = bs, .index = j,
                           .core = im.ticker_track(),
                           .kind = obs::EventKind::kLost);
          // Capture the lost subframe too (on the ticker's own track): a
          // replay must see the full offered load, losses included.
          Job lost_job;
          lost_job.bs = bs;
          lost_job.index = j;
          lost_job.radio_time = radio_time;
          lost_job.arrival = arrival;
          lost_job.deadline = radio_time + cfg.deadline_budget;
          im.emit_job_spec(im.ticker_track(), lost_job, rec.mcs, rec,
                           im.rx->fft_subtask_count(),
                           phy::num_code_blocks(rec.mcs, cfg.phy.num_prb()));
          continue;
        }
        at += f.extra_delay;
      }
      if (const fault::Hooks* h = fault::active(); h && h->transport_jitter)
        at += std::max<Duration>(0, h->transport_jitter(bs, j));
      deliveries.emplace_back(at, bs);
    }
    std::sort(deliveries.begin(), deliveries.end());
    for (const auto& [at, bs] : deliveries) {
      // Cap the wait on a late delivery at one tick so the ticker never
      // falls behind the schedule; the job's recorded arrival stays `at`.
      im.clock.spin_until(std::min(at, arrival + cfg.subframe_period));
      Job job;
      const unsigned mcs =
          cfg.mcs_cycle[(j + bs) % cfg.mcs_cycle.size()];
      job.variant = &im.variant_for(bs, mcs);
      job.bs = bs;
      job.index = j;
      job.radio_time = radio_time;
      job.arrival = at;
      job.deadline = radio_time + cfg.deadline_budget;
      im.push_job(job);
    }
  }

  // Drain: wait until all queues empty, then stop the workers.
  auto queues_empty = [&im, &cfg] {
    if (cfg.mode == RuntimeMode::kGlobal) {
      std::lock_guard lock(im.global_mu);
      return im.global_queue.empty();
    }
    for (const auto& w : im.workers) {
      std::lock_guard lock(w->mu);
      if (!w->queue.empty()) return false;
    }
    return true;
  };
  while (!queues_empty()) {
    im.check_watchdog(im.clock.now());
    if (im.tracer) im.tracer->collect();
    im.feed_health();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  im.running.store(false);
  im.global_cv.notify_all();
  for (const auto& w : im.workers) w->cv.notify_all();
  for (auto& t : threads) t.join();

  RuntimeReport report;
  for (const auto& w : im.workers)
    report.records.insert(report.records.end(), w->records.begin(),
                          w->records.end());
  report.records.insert(report.records.end(), im.lost_records.begin(),
                        im.lost_records.end());
  std::sort(report.records.begin(), report.records.end(),
            [](const SubframeRecord& a, const SubframeRecord& b) {
              if (a.radio_time != b.radio_time) return a.radio_time < b.radio_time;
              return a.bs < b.bs;
            });
  ResilienceMetrics& res = report.resilience;
  for (const auto& r : report.records) {
    if (r.deadline_missed) ++report.deadline_misses;
    if (r.dropped) ++report.dropped;
    if (r.lost) ++res.lost_subframes;
    if (r.late_arrival) ++res.late_arrivals;
    res.degrade_histogram[static_cast<unsigned>(r.degrade)] +=
        !r.lost && !r.dropped && !r.late_arrival;
    if (r.degrade != DegradeLevel::kNone) {
      ++res.degraded;
      if (!r.crc_ok) ++res.degraded_decode_failures;
    }
    // CRC failures count ordinary decode failures only: subframes that
    // were actually decoded at full quality. Lost/late subframes were
    // never decoded; degraded failures are accounted above.
    if (!r.dropped && !r.lost && !r.late_arrival &&
        r.degrade == DegradeLevel::kNone && !r.crc_ok)
      ++report.crc_failures;
  }
  res.failovers = im.res_failovers;
  res.repartitions = im.res_repartitions;
  res.requeued_jobs = im.res_requeued;
  res.flag_timeouts = im.flag_timeouts.load();
  report.migrations = im.migrations.load();
  report.recoveries = im.recoveries.load();
  report.batched_subframes = im.batched_subframes.load();
  // Workers have joined: one final drain picks up everything they emitted
  // after the ticker's last pass, then the health monitor finishes (its
  // trailing clear events land in the store through one more collect).
  if (im.tracer && im.health) {
    im.tracer->collect();
    im.feed_health();
    im.health->finish(im.clock.now());
    im.tracer->collect();
    report.alerts = im.health->alerts();
    report.health = im.health->snapshot();
  }
  if (im.tracer && cfg.trace.enabled) report.trace = im.tracer->take();
  if (im.profiler) report.profile = im.profiler->take();
  return report;
}

void fill_registry(const RuntimeReport& report,
                   obs::MetricsRegistry& registry) {
  obs::Histogram stage_us[obs::kNumStages];
  obs::Histogram processing_us;
  for (const auto& r : report.records) {
    if (r.lost || r.late_arrival || r.dropped) continue;
    stage_us[static_cast<unsigned>(obs::Stage::kFft)].add(to_us(r.timing.fft));
    stage_us[static_cast<unsigned>(obs::Stage::kDemod)].add(
        to_us(r.timing.demod));
    stage_us[static_cast<unsigned>(obs::Stage::kDecode)].add(
        to_us(r.timing.decode));
    processing_us.add(to_us(r.completion - r.start));
  }

  registry.add_counter("rtopex_runtime_subframes_total",
                       "Subframe records produced by the run.",
                       static_cast<double>(report.records.size()));
  registry.add_counter("rtopex_runtime_deadline_misses_total",
                       "Subframes past their deadline (incl. drops/losses).",
                       static_cast<double>(report.deadline_misses));
  registry.add_counter("rtopex_runtime_dropped_total",
                       "Subframes rejected by the slack check.",
                       static_cast<double>(report.dropped));
  registry.add_counter("rtopex_runtime_crc_failures_total",
                       "Full-quality decodes that failed CRC.",
                       static_cast<double>(report.crc_failures));
  registry.add_counter("rtopex_runtime_migrations_total",
                       "Subtasks executed on a remote core.",
                       static_cast<double>(report.migrations));
  registry.add_counter("rtopex_runtime_recoveries_total",
                       "Migrated subtasks re-executed locally.",
                       static_cast<double>(report.recoveries));
  registry.add_counter("rtopex_runtime_batched_subframes_total",
                       "Subframes decoded in a cross-subframe batch.",
                       static_cast<double>(report.batched_subframes));
  const ResilienceMetrics& res = report.resilience;
  registry.add_counter("rtopex_runtime_failovers_total",
                       "Workers declared dead by the watchdog.",
                       static_cast<double>(res.failovers));
  registry.add_counter("rtopex_runtime_repartitions_total",
                       "Partition-table rebuilds after a failover.",
                       static_cast<double>(res.repartitions));
  registry.add_counter("rtopex_runtime_requeued_jobs_total",
                       "Jobs requeued from a dead worker's queue.",
                       static_cast<double>(res.requeued_jobs));
  registry.add_counter("rtopex_runtime_flag_timeouts_total",
                       "Completion-flag waits that expired.",
                       static_cast<double>(res.flag_timeouts));
  registry.add_counter("rtopex_runtime_lost_subframes_total",
                       "Subframes the fronthaul never delivered.",
                       static_cast<double>(res.lost_subframes));
  registry.add_counter("rtopex_runtime_late_arrivals_total",
                       "Subframes that arrived after their deadline.",
                       static_cast<double>(res.late_arrivals));
  registry.add_counter("rtopex_runtime_degraded_total",
                       "Subframes decoded below full quality.",
                       static_cast<double>(res.degraded));
  registry.add_counter(
      "rtopex_runtime_degraded_decode_failures_total",
      "Degraded decodes that failed CRC.",
      static_cast<double>(res.degraded_decode_failures));
  registry.add_counter("rtopex_trace_ring_drops_total",
                       "Trace events dropped on full per-core rings.",
                       static_cast<double>(report.trace.ring_drops));
  for (std::size_t t = 0; t < report.trace.ring_drops_per_track.size(); ++t)
    registry.add_counter(
        "rtopex_trace_ring_dropped_total",
        "Trace events dropped on one core's full ring.",
        static_cast<double>(report.trace.ring_drops_per_track[t]),
        {{"core", std::to_string(t)}});
  registry.add_counter("rtopex_trace_store_drops_total",
                       "Trace events refused by the bounded store.",
                       static_cast<double>(report.trace.store_drops));
  registry.add_counter("rtopex_trace_collected_events_total",
                       "Trace events drained into the bounded store.",
                       static_cast<double>(report.trace.events.size()));

  registry.add_histogram("rtopex_runtime_processing_time_us",
                         "Per-subframe processing time (start to completion).",
                         processing_us);
  const char* stage_names[obs::kNumStages] = {"none", "fft", "demod",
                                              "decode"};
  for (unsigned s = 1; s < obs::kNumStages; ++s)
    registry.add_histogram("rtopex_runtime_stage_us",
                           "Per-stage processing time.", stage_us[s],
                           {{"stage", stage_names[s]}});

  // Health series (present only when the run had health enabled — the
  // snapshot carries its per-node row then).
  if (!report.health.nodes.empty())
    obs::health::fill_registry(report.health, report.alerts, registry);

  // Profile series (present only when the run had profiling enabled).
  if (!report.profile.samples.empty() || report.profile.drops > 0)
    obs::profile::fill_registry(obs::profile::aggregate(report.profile),
                                registry);
}

}  // namespace rtopex::runtime
