#include "runtime/workspace_pool.hpp"

#include <thread>

#include "common/thread_utils.hpp"

namespace rtopex::runtime {

WorkspacePool::WorkspacePool(
    const NumaTopology& topo, std::span<const unsigned> worker_cpus,
    std::size_t num_workers,
    const std::function<void(phy::DecodeWorkspace&)>& prewarm) {
  per_worker_.reserve(num_workers);
  node_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    per_worker_.push_back(std::make_unique<phy::DecodeWorkspace>());
    const unsigned cpu =
        worker_cpus.empty()
            ? 0u
            : worker_cpus[i % worker_cpus.size()];
    node_.push_back(worker_cpus.empty() ? 0u : numa_node_of(topo, cpu));
  }
  if (!prewarm) return;

  // One warming thread per node that owns workspaces: pin it to the node's
  // first CPU so first-touch lands the pages locally, then grow every
  // workspace of that node. A denied pin just warms from wherever the
  // thread happens to run — correct, merely not node-local.
  std::vector<std::thread> warmers;
  for (std::size_t n = 0; n < topo.num_nodes(); ++n) {
    bool owns = false;
    for (std::size_t i = 0; i < node_.size(); ++i)
      if (node_[i] == n) owns = true;
    if (!owns) continue;
    warmers.emplace_back([this, &topo, &prewarm, n] {
      if (!topo.node_cpus[n].empty())
        pin_current_thread(topo.node_cpus[n].front());
      for (std::size_t i = 0; i < node_.size(); ++i)
        if (node_[i] == n) prewarm(*per_worker_[i]);
    });
  }
  for (std::thread& t : warmers) t.join();
}

}  // namespace rtopex::runtime
