// NUMA topology discovery and core-pinning helpers for throughput mode.
//
// Discovery reads /sys/devices/system/node/node*/cpulist directly (no
// libnuma dependency). Hosts without the sysfs tree — containers, non-NUMA
// machines, non-Linux builds — degrade to a single synthetic node covering
// every hardware core, so callers never need a NUMA-specific code path:
// "one node" is simply the trivial topology. Pinning stays best-effort
// throughout (pthread_setaffinity_np may be denied under restricted
// seccomp/cgroup policies, like the perf backend's syscall probe); a denied
// pin downgrades to an unpinned thread, never to an error.
#pragma once

#include <string_view>
#include <vector>

namespace rtopex::runtime {

/// Per-node CPU lists, sorted ascending within each node.
struct NumaTopology {
  std::vector<std::vector<unsigned>> node_cpus;
  /// True when read from sysfs; false for the single-node fallback.
  bool from_sysfs = false;

  std::size_t num_nodes() const { return node_cpus.size(); }
};

/// Parses a kernel cpulist string ("0-3,8,10-11") into sorted CPU ids.
/// Malformed fragments are skipped rather than thrown: a topology read is
/// advisory, and the caller's fallback is the trivial single-node plan.
std::vector<unsigned> parse_cpulist(std::string_view text);

/// Reads the sysfs node tree; falls back to one node spanning
/// hardware_core_count() CPUs when the tree is absent or unreadable.
NumaTopology detect_numa_topology();

/// Node owning `cpu`; 0 when the CPU appears in no node (offline CPU or
/// fallback topology).
unsigned numa_node_of(const NumaTopology& topo, unsigned cpu);

}  // namespace rtopex::runtime
