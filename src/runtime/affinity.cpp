#include "runtime/affinity.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <numeric>
#include <string>

#include "common/thread_utils.hpp"

namespace rtopex::runtime {
namespace {

bool parse_unsigned(std::string_view s, unsigned& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\n' ||
                        s.front() == '\t' || s.front() == '\r'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\n' ||
                        s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<unsigned> parse_cpulist(std::string_view text) {
  std::vector<unsigned> cpus;
  std::string_view rest = trim(text);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t dash = item.find('-');
    unsigned lo = 0, hi = 0;
    if (dash == std::string_view::npos) {
      if (!parse_unsigned(item, lo)) continue;
      hi = lo;
    } else {
      if (!parse_unsigned(trim(item.substr(0, dash)), lo) ||
          !parse_unsigned(trim(item.substr(dash + 1)), hi) || hi < lo)
        continue;
    }
    // Guard against a corrupt range exploding the list.
    if (hi - lo > 4096) continue;
    for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

NumaTopology detect_numa_topology() {
  NumaTopology topo;
#if defined(__linux__)
  for (unsigned node = 0; node < 1024; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f.is_open()) break;
    std::string line;
    std::getline(f, line);
    std::vector<unsigned> cpus = parse_cpulist(line);
    // Memory-only nodes (no CPUs) exist on some machines; keep them out of
    // the plan — workers can only pin to nodes that have cores.
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    std::vector<unsigned> all(hardware_core_count());
    std::iota(all.begin(), all.end(), 0u);
    topo.node_cpus.push_back(std::move(all));
    topo.from_sysfs = false;
  } else {
    topo.from_sysfs = true;
  }
  return topo;
}

unsigned numa_node_of(const NumaTopology& topo, unsigned cpu) {
  for (std::size_t n = 0; n < topo.node_cpus.size(); ++n)
    for (const unsigned c : topo.node_cpus[n])
      if (c == cpu) return static_cast<unsigned>(n);
  return 0;
}

}  // namespace rtopex::runtime
