// Migration mailbox: the mechanism by which an active processing thread
// hands a subtask chunk to an idle core and later consumes its result flag
// (paper Fig. 12: result ready / result not ready).
//
// One mailbox per core. The owner polls in its waiting state; a remote
// thread claims the mailbox with a CAS, fills in the chunk, and the owner
// executes it. The result_ready flag is the only synchronization the
// migrating side reads — it never blocks on the remote.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "obs/trace_event.hpp"
#include "runtime/fault_injection.hpp"

namespace rtopex::runtime {

/// A chunk of subtasks migrated to one core. Subtask indices in
/// [first, first + count) are claimed one at a time through `next_index`
/// (shared with the migrating thread's recovery loop), so no subtask is
/// ever executed twice.
struct MigratedChunk {
  /// Runs subtask `index` of the stage this chunk belongs to.
  std::function<void(std::size_t)> run_subtask;
  std::size_t first = 0;
  std::size_t count = 0;
  /// Claim counter (starts at `first`); fetch_add to claim the next index.
  std::atomic<std::size_t>* next_index = nullptr;
  /// Incremented after each completed subtask (the "result ready" flags).
  std::atomic<std::size_t>* completed = nullptr;
  /// Per-subtask completion flags (`count` entries, indexed by
  /// index - first), set after the matching subtask finished. Lets the
  /// migrating thread identify which claimed subtasks a parked host never
  /// finished, instead of inferring from the aggregate counter. May be null
  /// (counter-only operation).
  std::atomic<std::uint8_t>* done = nullptr;
  /// Keeps the counters alive while either side still references them.
  std::shared_ptr<void> keepalive;
  /// Provenance, carried so the hosting core can emit kHostBegin/kHostEnd
  /// trace events whose flow id matches the migrator's kOffload: which
  /// subframe the chunk belongs to, which stage, and who offloaded it.
  unsigned bs = 0;
  std::uint32_t index = 0;
  unsigned src_core = 0;
  obs::Stage stage = obs::Stage::kNone;
};

class Mailbox {
 public:
  enum class State : int { kEmpty = 0, kClaimed = 1, kFilled = 2, kRunning = 3 };

  /// Remote side: try to claim the mailbox (owner must be idle-polling).
  bool try_claim() {
    if (const fault::Hooks* h = fault::active();
        h && h->claim && !h->claim(owner_))
      return false;
    int expected = static_cast<int>(State::kEmpty);
    return state_.compare_exchange_strong(expected,
                                          static_cast<int>(State::kClaimed),
                                          std::memory_order_acq_rel);
  }

  /// Remote side: publish the chunk after a successful claim.
  void fill(MigratedChunk chunk) {
    if (const fault::Hooks* h = fault::active(); h && h->fill) h->fill(owner_);
    chunk_ = std::move(chunk);
    state_.store(static_cast<int>(State::kFilled), std::memory_order_release);
  }

  /// Owner side: take a filled chunk if present.
  bool try_take(MigratedChunk& out) {
    int expected = static_cast<int>(State::kFilled);
    if (!state_.compare_exchange_strong(expected,
                                        static_cast<int>(State::kRunning),
                                        std::memory_order_acq_rel))
      return false;
    out = std::move(chunk_);
    return true;
  }

  /// Owner side: mark the chunk finished (or abandoned at preemption).
  void release() {
    chunk_ = MigratedChunk{};
    state_.store(static_cast<int>(State::kEmpty), std::memory_order_release);
  }

  /// Remote side: withdraw a chunk the owner never started (the migrating
  /// thread is about to reuse the buffers the chunk writes into). Returns
  /// false when the owner already took it (it will then run the claim loop,
  /// which finds nothing left to claim).
  bool try_revoke() {
    int expected = static_cast<int>(State::kFilled);
    if (!state_.compare_exchange_strong(expected,
                                        static_cast<int>(State::kClaimed),
                                        std::memory_order_acq_rel))
      return false;
    chunk_ = MigratedChunk{};
    state_.store(static_cast<int>(State::kEmpty), std::memory_order_release);
    return true;
  }

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }

  /// Core id passed to fault-injection hooks (set once before any traffic).
  void set_owner(std::size_t id) { owner_ = id; }
  std::size_t owner() const { return owner_; }

 private:
  std::atomic<int> state_{static_cast<int>(State::kEmpty)};
  MigratedChunk chunk_;
  std::size_t owner_ = 0;
};

}  // namespace rtopex::runtime
