// Global reference clock for the real-thread runtime — the paper's "common
// watchdog timer that maintains a global reference time that allows
// detecting deadline-misses across the cores" (§4.1).
#pragma once

#include <cstdint>

#include "common/thread_utils.hpp"
#include "common/time_types.hpp"

namespace rtopex::runtime {

/// Monotonic clock with a fixed epoch; all runtime timestamps are
/// nanoseconds since start(). Thread-safe.
class GlobalClock {
 public:
  GlobalClock() : epoch_ns_(monotonic_ns()) {}

  /// Restarts the epoch at the current instant. NodeRuntime::run() calls
  /// this before launching workers so that construction-time work (variant
  /// pre-generation is expensive, especially under sanitizers) does not eat
  /// into the real-time schedule. Not synchronized: call only while no
  /// other thread reads the clock.
  void reset() { epoch_ns_ = monotonic_ns(); }

  /// Nanoseconds since construction (or the last reset()).
  TimePoint now() const { return monotonic_ns() - epoch_ns_; }

  /// Busy-waits until the given runtime instant (sub-microsecond accurate).
  void spin_until(TimePoint t) const { spin_until_ns(t + epoch_ns_); }

 private:
  std::int64_t epoch_ns_;
};

}  // namespace rtopex::runtime
