// Real-thread C-RAN compute node: pinned 1:1 worker threads, a 1 ms
// transport ticker, semaphore handshakes, the shared CPU-state table and the
// migration mailboxes — the paper's implementation layer (§4.1), driving the
// real PHY chain from src/phy.
//
// Scope note (DESIGN.md §2): this runtime demonstrates and tests the
// *mechanisms* (partitioned/global dispatch, subtask migration with result
// flags and recovery) with real decoding work. Multicore wall-clock numbers
// are only meaningful on a multicore host; the virtual-time simulator in
// src/sim is the substrate used to regenerate the paper's figures.
//
// One deliberate divergence from the paper's state machine: a hosting core
// finishes the migrated subtask it is executing before it switches to a
// newly arrived subframe of its own (preemption happens between subtasks,
// not within one). Subtask claiming is per-index via a shared atomic, so
// local recovery and the remote host never execute the same subtask twice.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/resilience.hpp"
#include "common/time_types.hpp"
#include "model/online_fit.hpp"
#include "obs/health/health.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile/profile.hpp"
#include "obs/tracer.hpp"
#include "phy/uplink_rx.hpp"
#include "transport/transport.hpp"

namespace rtopex::runtime {

enum class RuntimeMode { kPartitioned, kGlobal, kRtOpex };

/// Degraded-mode and failure-handling knobs. All default to off so existing
/// configurations behave exactly as before.
struct ResilienceConfig {
  /// Ticker-side watchdog: a worker with queued work whose heartbeat has not
  /// advanced for `watchdog_timeout` is declared dead; its basestation slots
  /// are repartitioned round-robin across the survivors and its queued jobs
  /// requeued. Requires >= 2 workers to do anything.
  bool enable_watchdog = false;
  Duration watchdog_timeout = milliseconds(20);

  /// Graceful degradation: when the full-quality slack check fails, retry
  /// the estimate with the turbo-iteration cap shrunk (down to
  /// `min_turbo_iterations`) before dropping the subframe.
  bool enable_degradation = false;
  unsigned min_turbo_iterations = 1;

  /// Bound on the migration-recovery completion-flag wait. Zero means wait
  /// forever (the pre-resilience behaviour). On expiry the migrator checks
  /// whether the hosting worker died and, if so, re-executes the unfinished
  /// subtasks itself.
  Duration completion_flag_timeout = 0;

  /// Fronthaul loss / late-delivery process applied by the ticker.
  transport::FronthaulFaultParams fronthaul_faults;
};

/// Throughput-mode knobs (FlexRAN-style batched operation). Defaults keep
/// the original latency-oriented behaviour bit-for-bit.
///
/// Batching applies to the blocking runtimes (partitioned/global): a worker
/// opportunistically drains up to `batch` already-queued subframes per
/// pass, runs each through FFT/demod, then decodes all their code blocks in
/// one cross-subframe SoA batch (UplinkRxProcessor::run_decode_batch) so
/// blocks from different basestations fill out SIMD lanes a single
/// subframe would leave empty. Draining never waits for more jobs, so an
/// underloaded node degenerates to batch-of-1 and adds no latency. RT-OPEX
/// mode rejects batch > 1: its migration protocol claims decode subtasks
/// per-block across cores, which is exactly the granularity batching fuses
/// away.
struct ThroughputConfig {
  /// Max subframes decoded per worker pass (1 = off; capped at 16 by the
  /// cross-subframe batch decoder).
  unsigned batch = 1;
  /// Pin workers to explicit cores (FlexRAN-style core isolation) even when
  /// `pin_threads` is off. Best effort, like all affinity here.
  bool pin_workers = false;
  /// Dedicated ticker core: the thread calling run() pins itself here
  /// before starting the schedule (-1 = leave it unpinned).
  int ticker_core = -1;
  /// Explicit worker pin set: worker i runs on worker_cores[i]. Empty
  /// falls back to the legacy id-modulo-cores placement. When non-empty it
  /// must list at least one core per worker (validated).
  std::vector<unsigned> worker_cores;
  /// Pre-warm one DecodeWorkspace per worker from a thread pinned to the
  /// worker's NUMA node (first-touch locality) before the schedule starts;
  /// workers then decode out of their pool workspace instead of growing
  /// the thread-local one mid-run. Single-node hosts still get the
  /// pre-warm, just without a locality distinction.
  bool numa_pools = false;
};

/// Validated by the NodeRuntime constructor: at least one basestation,
/// subframe and worker core; a non-empty `mcs_cycle` of valid MCS indices;
/// positive period and budget; and `rtt_half` in [0, deadline_budget) —
/// anything else throws std::invalid_argument instead of hanging a worker.
struct RuntimeConfig {
  RuntimeMode mode = RuntimeMode::kRtOpex;
  unsigned num_basestations = 2;
  unsigned cores_per_bs = 2;     ///< partitioned/rt-opex cores per BS.
  unsigned global_cores = 4;     ///< worker count in global mode.
  std::size_t subframes_per_bs = 20;

  /// Real-time pacing. On slow or single-core hosts, scale the period up so
  /// that processing fits; the deadline budget scales alongside.
  Duration subframe_period = milliseconds(1);
  Duration deadline_budget = milliseconds(2);
  Duration rtt_half = microseconds(500);  ///< emulated transport delay.

  double snr_db = 30.0;
  /// MCS sequence cycled across ticks (per basestation, offset by BS id).
  std::vector<unsigned> mcs_cycle = {4, 16, 27};

  phy::UplinkConfig phy;          ///< antennas, bandwidth, Lm.
  /// Initial planning-model estimates, EWMA-updated from the first job on.
  /// The paper's testbed seeds these from offline WCET profiling; deploys
  /// on different hardware should calibrate them (all must be positive).
  Duration initial_fft_subtask_est = microseconds(50);
  Duration initial_decode_subtask_est = microseconds(500);
  Duration initial_demod_est = microseconds(500);
  /// Slack-check dropping (paper §4.1): before each task, compare the
  /// EWMA-estimated execution time with the remaining slack and drop the
  /// subframe when it cannot fit. Disabled configs only record misses.
  bool enforce_deadlines = true;
  /// Online adaptive estimation (opt-in): per-basestation turbo-iteration
  /// predictors and a streaming Eq. (1) decode fit sharpen the slack check
  /// and the migration chunk sizing. The static seeds above stay in force
  /// as fallbacks until the fit warms up; with `adaptive` false the
  /// original single-EWMA behaviour is untouched.
  bool adaptive = false;
  model::AdaptiveParams adaptive_params;
  bool pin_threads = false;       ///< attempt CPU affinity (best effort).
  bool try_fifo_priority = false; ///< attempt SCHED_FIFO (best effort).
  std::uint64_t seed = 1;

  ResilienceConfig resilience;

  ThroughputConfig throughput;

  /// Tracing. When enabled, each worker thread emits TraceEvents onto its
  /// own SPSC track; the transport ticker owns a dedicated extra track
  /// (index = worker count) and is the sole collector, draining every ring
  /// once per tick. The drained store is returned in RuntimeReport::trace.
  obs::TraceConfig trace;

  /// Periodic Prometheus snapshots: every `metrics_period` of run time the
  /// ticker renders the live (lock-free readable) counters and hands the
  /// text to `metrics_sink`. Zero period or a null sink disables this; the
  /// full post-run snapshot comes from fill_registry() below either way.
  Duration metrics_period = 0;
  std::function<void(const std::string&)> metrics_sink;

  /// Live SLO/alerting engine (obs/health) fed by the ticker from the same
  /// event stream the trace records — enabling it implies the internal
  /// tracer even when `trace.enabled` is false (the report's trace stays
  /// empty then). Alerts ride the ticker track as kAlert/kAlertClear
  /// events; live snapshots land in the metrics_sink stream, final state
  /// in RuntimeReport::alerts / RuntimeReport::health. Wall-clock periods
  /// slower than the 1 ms default should scale the windows alongside.
  obs::health::HealthConfig health;

  /// Continuous profiling (obs/profile). When enabled, every stage section
  /// a worker executes — the fft/demod/decode legs of process_job and the
  /// hosted migration chunks — runs inside a ProfileSpan carrying hardware
  /// counter deltas (perf_event_open when permitted, the portable
  /// thread-CPU/rusage fallback otherwise). Each worker owns one track
  /// (SPSC, same contract as the tracer); the drained samples are returned
  /// in RuntimeReport::profile after the workers have joined.
  obs::profile::ProfileConfig profile;
};

struct StageTiming {
  Duration fft = 0;
  Duration demod = 0;
  Duration decode = 0;
  unsigned fft_migrated = 0;     ///< subtasks executed on remote cores.
  unsigned decode_migrated = 0;
  unsigned recovered = 0;        ///< subtasks recovered locally.
};

struct SubframeRecord {
  unsigned bs = 0;
  std::uint32_t index = 0;
  unsigned mcs = 0;
  TimePoint radio_time = 0;
  TimePoint arrival = 0;     ///< when the job became available to a worker.
  TimePoint start = 0;       ///< when a worker began processing.
  TimePoint completion = 0;
  bool crc_ok = false;
  unsigned iterations = 0;
  bool deadline_missed = false;
  bool dropped = false;  ///< rejected by a slack check; never decoded.
  bool lost = false;          ///< fronthaul loss: never reached the node.
  bool late_arrival = false;  ///< arrived after its deadline had passed.
  DegradeLevel degrade = DegradeLevel::kNone;
  StageTiming timing;
};

struct RuntimeReport {
  std::vector<SubframeRecord> records;
  std::size_t deadline_misses = 0;
  std::size_t dropped = 0;       ///< slack-check rejections (subset of misses).
  std::size_t crc_failures = 0;  ///< decode failures among processed subframes.
  std::size_t migrations = 0;  ///< migrated subtasks (fft + decode).
  std::size_t recoveries = 0;
  /// Subframes whose decode ran inside a cross-subframe batch of >= 2
  /// (throughput mode only; zero whenever ThroughputConfig::batch <= 1).
  std::size_t batched_subframes = 0;
  ResilienceMetrics resilience;
  /// Drained trace events (empty unless RuntimeConfig::trace.enabled).
  obs::TraceStore trace;
  /// Health engine outputs (empty unless RuntimeConfig::health.enabled).
  std::vector<obs::health::Alert> alerts;
  obs::health::HealthSnapshot health;
  /// Drained profile samples (empty unless RuntimeConfig::profile.enabled).
  obs::profile::ProfileStore profile;
};

/// Renders the full post-run report as Prometheus metrics: subframe /
/// miss / migration counters, resilience counters, per-stage latency
/// histograms built from the subframe records, and trace-loss counters.
void fill_registry(const RuntimeReport& report, obs::MetricsRegistry& registry);

class NodeRuntime {
 public:
  explicit NodeRuntime(const RuntimeConfig& config);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Runs the configured workload to completion and returns the report.
  RuntimeReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtopex::runtime
