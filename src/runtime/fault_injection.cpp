#include "runtime/fault_injection.hpp"

namespace rtopex::runtime::fault {

namespace detail {
std::atomic<const Hooks*> g_active{nullptr};
}

void install(const Hooks* hooks) {
  detail::g_active.store(hooks, std::memory_order_release);
}

}  // namespace rtopex::runtime::fault
