// Test-only fault-injection hooks for the real-thread runtime.
//
// The migration machinery's interesting branches — a failed mailbox claim,
// a hosting core that never gets to a chunk, local recovery of preempted
// subtasks, transport jitter breaking the horizon prediction — are all
// timing-dependent and therefore unreachable deterministically from a unit
// test. These hooks make them reachable: a test installs a `Hooks` set
// before constructing a `NodeRuntime`, the runtime (and `Mailbox`) consult
// the active set at each decision point, and the test removes it afterwards.
//
// Always compiled in; the disabled-state cost is one relaxed atomic load of
// a null pointer per decision point, so production builds need no #ifdef.
// Installation is NOT synchronized against running workers: install before
// `NodeRuntime::run()` starts and reset only after it returned.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/time_types.hpp"

namespace rtopex::runtime::fault {

/// One hook per injectable decision point. Every member may be empty (the
/// default), in which case the runtime behaves exactly as without the hook.
/// Hooks run on worker/ticker threads — they must be thread-safe themselves.
struct Hooks {
  /// Mailbox::try_claim (remote side). Return false to force the claim to
  /// fail — the planner then keeps that chunk's subtasks local. Sleeping
  /// here instead models a slow claimer. `owner` is the mailbox's core id.
  std::function<bool(std::size_t owner)> claim;

  /// Mailbox::fill (remote side), called before the chunk is published —
  /// a delay here widens the claimed-but-not-yet-filled window the owner
  /// polls through.
  std::function<void(std::size_t owner)> fill;

  /// Hosting side, before the idle worker takes a filled chunk. Return
  /// false to stall the host: the chunk stays filled, the migrating thread
  /// recovers every subtask locally and revokes the chunk — the recovery
  /// path, made deterministic.
  std::function<bool(std::size_t owner)> host_take;

  /// Hosting side, before each migrated subtask. Return false to stop
  /// hosting between subtasks (a forced preemption): remaining indices are
  /// recovered by the migrating thread.
  std::function<bool(std::size_t owner)> host_subtask;

  /// Migration planning: adjust the idle window the planner computed for
  /// `core` from the CPU-state table (0 when the core is not idle). Tests
  /// raise it to force migration regardless of real idleness, or zero it
  /// to starve the planner.
  std::function<void(unsigned self, unsigned core, Duration& window)>
      plan_window;

  /// Transport ticker: extra one-way delay for one subframe's arrival at
  /// the node. Positive jitter breaks the workers' horizon predictions,
  /// which is what preempts migrated subtasks in the wild.
  std::function<Duration(unsigned bs, std::uint32_t index)> transport_jitter;

  /// Worker kill switch, polled by each worker between jobs and between
  /// hosted subtasks. Return true to park `worker` for the rest of the run:
  /// it stops heartbeating and taking work (but never abandons a claimed
  /// subtask mid-flight), which is what the watchdog detects as a dead
  /// core. The deterministic trigger for failover tests.
  std::function<bool(std::size_t worker)> kill_worker;
};

namespace detail {
extern std::atomic<const Hooks*> g_active;
}

/// The active hook set, or nullptr (the common, uninstrumented case).
inline const Hooks* active() {
  return detail::g_active.load(std::memory_order_acquire);
}

/// Install `hooks` (caller keeps ownership) or pass nullptr to reset.
void install(const Hooks* hooks);

/// RAII installer for tests: holds the hook set by value, installs it on
/// construction and removes it on destruction.
class ScopedInjection {
 public:
  explicit ScopedInjection(Hooks hooks) : hooks_(std::move(hooks)) {
    install(&hooks_);
  }
  ~ScopedInjection() { install(nullptr); }
  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;

 private:
  Hooks hooks_;
};

}  // namespace rtopex::runtime::fault
