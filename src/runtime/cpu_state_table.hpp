// Shared CPU-state table (paper §4.1): one slot per core, updated by its
// processing thread and polled by others when planning migrations. Lock-free
// (a single atomic per core packs the state and the busy/idle horizon).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/time_types.hpp"

namespace rtopex::runtime {

enum class CoreActivity : std::uint8_t {
  kIdle = 0,    ///< waiting state: available for migrated subtasks.
  kActive = 1,  ///< processing its own subframe.
  kHosting = 2, ///< executing a migrated subtask.
};

class CpuStateTable {
 public:
  explicit CpuStateTable(std::size_t num_cores) : slots_(num_cores) {}

  struct Snapshot {
    CoreActivity activity = CoreActivity::kActive;
    /// When idle: the predicted preemption instant (next own subframe).
    TimePoint horizon = 0;
  };

  void set(std::size_t core, CoreActivity activity, TimePoint horizon) {
    slots_[core].packed.store(pack(activity, horizon),
                              std::memory_order_release);
  }

  Snapshot get(std::size_t core) const {
    return unpack(slots_[core].packed.load(std::memory_order_acquire));
  }

  std::size_t size() const { return slots_.size(); }

 private:
  static std::uint64_t pack(CoreActivity a, TimePoint horizon) {
    // Horizon in microseconds, 56 bits; activity in the top byte.
    const auto us =
        static_cast<std::uint64_t>(std::max<TimePoint>(0, horizon / 1000)) &
        0x00ff'ffff'ffff'ffffULL;
    return us | (static_cast<std::uint64_t>(a) << 56);
  }
  static Snapshot unpack(std::uint64_t v) {
    Snapshot s;
    s.activity = static_cast<CoreActivity>(v >> 56);
    s.horizon =
        static_cast<TimePoint>(v & 0x00ff'ffff'ffff'ffffULL) * 1000;
    return s;
  }

  struct alignas(64) Slot {  // avoid false sharing between cores
    std::atomic<std::uint64_t> packed{0};
  };
  std::vector<Slot> slots_;
};

}  // namespace rtopex::runtime
