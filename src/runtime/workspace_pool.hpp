// Per-NUMA-node DecodeWorkspace pool for throughput mode.
//
// A DecodeWorkspace grows lazily on first use, so whichever thread first
// touches its buffers determines which NUMA node backs the pages
// (first-touch policy). The default per-thread workspaces are therefore
// already node-local once a worker is pinned — but only after the first
// subframe has paid the growth allocations inside the real-time path. The
// pool moves that cost to setup: it constructs one workspace per worker and
// pre-warms each from a helper thread pinned to the worker's NUMA node, so
// workers start with fully grown, node-local scratch and the steady state
// allocates nothing.
//
// On single-node hosts (or when pinning is denied) the pool degrades to a
// plain pre-warmed per-worker workspace set — still useful, just without
// the locality guarantee.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "phy/workspace.hpp"
#include "runtime/affinity.hpp"

namespace rtopex::runtime {

class WorkspacePool {
 public:
  /// Builds `num_workers` workspaces. `worker_cpus[i]` is the CPU worker i
  /// will run pinned to, used only to group workspaces by NUMA node; an
  /// empty span assigns every workspace to node 0. `prewarm` runs once per
  /// workspace, from a thread pinned (best-effort) to the workspace's node
  /// — typically a full dummy-subframe decode that grows every buffer to
  /// its worst-case size.
  WorkspacePool(const NumaTopology& topo,
                std::span<const unsigned> worker_cpus,
                std::size_t num_workers,
                const std::function<void(phy::DecodeWorkspace&)>& prewarm);

  phy::DecodeWorkspace& workspace(std::size_t worker_id) {
    return *per_worker_[worker_id];
  }
  unsigned node_of(std::size_t worker_id) const { return node_[worker_id]; }
  std::size_t size() const { return per_worker_.size(); }

 private:
  std::vector<std::unique_ptr<phy::DecodeWorkspace>> per_worker_;
  std::vector<unsigned> node_;
};

}  // namespace rtopex::runtime
