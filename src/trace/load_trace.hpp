// Cellular load traces.
//
// The paper drives per-subframe MCS selection from load traces captured off
// the air on Band-13/Band-17 LTE downlinks of four towers (Fig. 1, Fig. 14).
// Public decodable traces are unavailable, so this module synthesizes loads
// with the two properties the evaluation depends on (DESIGN.md §2):
//   1. strong per-millisecond variation around a per-basestation operating
//      point (Fig. 1: consecutive subframes differ substantially), and
//   2. distinct per-basestation load distributions (Fig. 14: the four CDFs
//      differ in median and spread).
//
// Model: load(t) = clamp(AR1(t) + burst(t)), an AR(1) Gaussian around the
// basestation mean plus an occasional high-load burst, clamped to [0, 1].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rtopex::trace {

struct BasestationLoadParams {
  double mean = 0.5;        ///< operating point of the normalized load.
  double stddev = 0.2;      ///< AR(1) stationary standard deviation.
  double correlation = 0.6; ///< lag-1 (per-ms) autocorrelation in [0, 1).
  double burst_prob = 0.05; ///< per-subframe probability of a traffic burst.
  double burst_mean = 0.35; ///< mean burst amplitude (exponential).
};

/// One basestation's normalized load per subframe (1 ms granularity).
class LoadTrace {
 public:
  LoadTrace() = default;
  explicit LoadTrace(std::vector<double> loads) : loads_(std::move(loads)) {}

  double load(std::size_t subframe) const {
    return loads_[subframe % loads_.size()];
  }
  std::size_t size() const { return loads_.size(); }
  const std::vector<double>& values() const { return loads_; }

 private:
  std::vector<double> loads_;
};

/// Generates a synthetic trace of `length` subframes.
LoadTrace generate_load_trace(const BasestationLoadParams& params,
                              std::size_t length, std::uint64_t seed);

/// Per-basestation parameters mimicking the paper's four-tower metropolitan
/// capture (distinct means/spreads). `count` <= 8.
std::vector<BasestationLoadParams> metropolitan_preset(std::size_t count);

/// metropolitan_preset extended to arbitrary counts for cluster-scale
/// workloads: the 8 operating points repeat cyclically past 8, with a small
/// deterministic mean offset per cycle so tower 0 and tower 8 are not
/// byte-identical twins. Identical to metropolitan_preset for count <= 8.
std::vector<BasestationLoadParams> metropolitan_preset_cycled(
    std::size_t count);

/// Load -> MCS (0..27), the paper's §4.2 emulation of traffic via MCS.
unsigned mcs_from_load(double load);

/// CSV persistence: one column per basestation, one row per subframe.
void write_traces_csv(const std::string& path,
                      const std::vector<LoadTrace>& traces);
std::vector<LoadTrace> read_traces_csv(const std::string& path);

}  // namespace rtopex::trace
