#include "trace/load_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/csv.hpp"

namespace rtopex::trace {

LoadTrace generate_load_trace(const BasestationLoadParams& params,
                              std::size_t length, std::uint64_t seed) {
  if (length == 0) throw std::invalid_argument("trace length == 0");
  if (params.correlation < 0.0 || params.correlation >= 1.0)
    throw std::invalid_argument("correlation must be in [0, 1)");
  Rng rng(seed);
  std::vector<double> loads(length);
  const double rho = params.correlation;
  // Innovation variance for a stationary AR(1) with the target stddev.
  const double innovation_sd = params.stddev * std::sqrt(1.0 - rho * rho);
  double x = rng.normal(0.0, params.stddev);
  for (std::size_t i = 0; i < length; ++i) {
    x = rho * x + rng.normal(0.0, innovation_sd);
    double load = params.mean + x;
    if (rng.bernoulli(params.burst_prob))
      load += rng.exponential(params.burst_mean);
    loads[i] = std::clamp(load, 0.0, 1.0);
  }
  return LoadTrace(std::move(loads));
}

std::vector<BasestationLoadParams> metropolitan_preset(std::size_t count) {
  if (count > 8) throw std::invalid_argument("preset supports up to 8 BSs");
  // Distinct operating points and spreads, echoing the paper's Fig. 14 where
  // the four basestations show clearly separated load CDFs. Tail mass above
  // ~0.75 load (the WCET cliff at tight budgets) is kept small so that the
  // node-level baseline miss rates land at the paper's 1e-3..1e-2 scale.
  static const std::vector<BasestationLoadParams> all = {
      {0.55, 0.10, 0.55, 0.03, 0.10},  // busy urban macro
      {0.45, 0.09, 0.60, 0.02, 0.10},  // mid-load
      {0.35, 0.09, 0.65, 0.02, 0.08},  // lighter
      {0.25, 0.08, 0.70, 0.02, 0.08},  // suburban
      {0.50, 0.11, 0.50, 0.03, 0.10},
      {0.40, 0.09, 0.60, 0.02, 0.08},
      {0.30, 0.10, 0.65, 0.02, 0.08},
      {0.18, 0.07, 0.70, 0.01, 0.08},
  };
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<BasestationLoadParams> metropolitan_preset_cycled(
    std::size_t count) {
  const auto base = metropolitan_preset(std::min<std::size_t>(count, 8));
  std::vector<BasestationLoadParams> out;
  out.reserve(count);
  for (std::size_t bs = 0; bs < count; ++bs) {
    BasestationLoadParams p = base[bs % base.size()];
    // Nudge repeated operating points so cycles stay distinguishable but
    // keep the preset's overall load profile (means move < ±0.03).
    const std::size_t cycle = bs / base.size();
    if (cycle > 0)
      p.mean = std::clamp(
          p.mean + 0.015 * static_cast<double>(cycle % 4) - 0.02, 0.05, 0.95);
    out.push_back(p);
  }
  return out;
}

unsigned mcs_from_load(double load) {
  load = std::clamp(load, 0.0, 1.0);
  return static_cast<unsigned>(std::lround(load * 27.0));
}

void write_traces_csv(const std::string& path,
                      const std::vector<LoadTrace>& traces) {
  if (traces.empty()) throw std::invalid_argument("no traces to write");
  const std::size_t len = traces.front().size();
  for (const auto& t : traces)
    if (t.size() != len)
      throw std::invalid_argument("traces must have equal length");
  CsvWriter writer(path);
  std::vector<std::string> header;
  for (std::size_t b = 0; b < traces.size(); ++b)
    header.push_back("bs" + std::to_string(b));
  writer.write_header(header);
  for (std::size_t i = 0; i < len; ++i) {
    std::vector<double> row;
    row.reserve(traces.size());
    for (const auto& t : traces) row.push_back(t.load(i));
    writer.write_row(row);
  }
}

std::vector<LoadTrace> read_traces_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  if (table.rows.empty()) throw std::runtime_error("empty trace file");
  const std::size_t cols = table.rows.front().size();
  std::vector<std::vector<double>> columns(cols);
  for (const auto& row : table.rows)
    for (std::size_t c = 0; c < cols; ++c) columns[c].push_back(row[c]);
  std::vector<LoadTrace> traces;
  traces.reserve(cols);
  for (auto& col : columns) traces.emplace_back(std::move(col));
  return traces;
}

}  // namespace rtopex::trace
