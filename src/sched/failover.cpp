#include "sched/failover.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/tracer.hpp"

namespace rtopex::sched {

std::vector<TimePoint> apply_core_outages(
    std::span<const sim::SubframeWork> active, std::vector<unsigned>& assign,
    unsigned num_cores, std::span<const CoreFailure> failures,
    std::span<const unsigned> unprovisioned, sim::SchedulerMetrics& metrics,
    obs::Tracer* tracer) {
  // Per-core fail-stop instant (kCoreNeverFails: the core never fails).
  std::vector<TimePoint> fails(num_cores, kCoreNeverFails);
  for (const unsigned c : unprovisioned) {
    if (c >= num_cores)
      throw std::invalid_argument(
          "apply_core_outages: unprovisioned core id out of range");
    fails[c] = kCoreNeverProvisioned;
  }
  for (const auto& f : failures) {
    if (f.core >= num_cores)
      throw std::invalid_argument(
          "apply_core_outages: core_failure id out of range");
    if (fails[f.core] != kCoreNeverProvisioned)
      fails[f.core] = std::min(fails[f.core], f.at);
  }

  // Phantom slots first: their subframes fold round-robin onto the
  // provisioned cores from t = 0, silently — this is offline placement (a
  // re-homed basestation lands on a survivor's existing cores), not a
  // runtime failover.
  if (!unprovisioned.empty()) {
    std::vector<unsigned> provisioned;
    for (unsigned c = 0; c < num_cores; ++c)
      if (fails[c] != kCoreNeverProvisioned) provisioned.push_back(c);
    if (provisioned.empty())
      throw std::invalid_argument(
          "apply_core_outages: every core is unprovisioned");
    std::size_t rr = 0;
    for (std::size_t i = 0; i < active.size(); ++i)
      if (fails[assign[i]] == kCoreNeverProvisioned)
        assign[i] = provisioned[rr++ % provisioned.size()];
  }

  // Then — mirroring the runtime watchdog — each failure repartitions the
  // dead core's subframes from its fail instant onward, round-robin across
  // survivors.
  if (!failures.empty()) {
    std::vector<CoreFailure> events(failures.begin(), failures.end());
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) { return a.at < b.at; });
    std::size_t rr = 0;
    for (const auto& ev : events) {
      std::vector<unsigned> survivors;
      for (unsigned c = 0; c < num_cores; ++c)
        if (fails[c] > ev.at) survivors.push_back(c);
      if (survivors.empty()) continue;  // no one left to take over
      ++metrics.resilience.failovers;
      ++metrics.resilience.repartitions;
      // Mirror the runtime watchdog's trace marker so the analyzer can
      // correlate queueing misses with the repartition instant.
      RTOPEX_TRACE_EVENT(tracer, .ts = ev.at, .a = ev.core,
                         .kind = obs::EventKind::kWatchdogFire);
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (assign[i] != ev.core || active[i].arrival < ev.at) continue;
        assign[i] = survivors[rr++ % survivors.size()];
        // Subframes already in flight (radio fired before the failure)
        // would have sat in the dead core's queue: requeued, not merely
        // remapped.
        if (active[i].radio_time < ev.at) ++metrics.resilience.requeued_jobs;
      }
    }
  }
  return fails;
}

}  // namespace rtopex::sched
