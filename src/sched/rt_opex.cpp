#include "sched/rt_opex.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sched/migration.hpp"
#include "sched/serial_exec.hpp"

namespace rtopex::sched {
namespace {

constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

/// Per-core runtime state.
struct CoreState {
  TimePoint free_at = 0;        ///< own (partitioned) work completion.
  TimePoint mig_busy_until = 0; ///< occupied by a migrated chunk until then.
  std::size_t next_own = 0;     ///< index into `own` of the next subframe.
  bool used = false;
  /// This core's partitioned subframes in arrival order: (nominal arrival,
  /// actual arrival).
  std::vector<std::pair<TimePoint, TimePoint>> own;
};

/// Outcome of running one parallelizable stage with migration.
struct StageOutcome {
  TimePoint end = 0;
  unsigned migrated = 0;    ///< subtasks placed on remote cores.
  unsigned recovered = 0;   ///< subtasks recomputed locally.
  bool lost_results = false;///< only without recovery: results missing.
  int first_host = -1;      ///< first remote core that hosted a chunk.
};

}  // namespace

RtOpexScheduler::RtOpexScheduler(unsigned num_basestations,
                                 const RtOpexConfig& cfg)
    : num_basestations_(num_basestations), config_(cfg) {
  if (num_basestations == 0)
    throw std::invalid_argument("RtOpexScheduler: no basestations");
  if (cfg.rtt_half < 0 || cfg.rtt_half >= kEndToEndBudget)
    throw std::invalid_argument("RtOpexScheduler: invalid rtt_half");
  for (const auto& f : cfg.core_failures)
    if (f.core >= num_basestations * cfg.cores_per_bs())
      throw std::invalid_argument("RtOpexScheduler: core_failure id out of range");
  for (const unsigned c : cfg.unprovisioned_cores)
    if (c >= num_basestations * cfg.cores_per_bs())
      throw std::invalid_argument(
          "RtOpexScheduler: unprovisioned core id out of range");
}

unsigned RtOpexScheduler::core_of(unsigned bs,
                                  std::uint32_t subframe_index) const {
  const unsigned c = config_.cores_per_bs();
  return bs * c + subframe_index % c;
}

sim::SchedulerMetrics RtOpexScheduler::run(
    std::span<const sim::SubframeWork> work) {
  sim::SchedulerMetrics metrics;
  metrics.per_bs.resize(num_basestations_);

  obs::Tracer* const tracer = config_.tracer;
  const auto filtered = filter_faulted(work, metrics, tracer);
  const std::span<const sim::SubframeWork> active =
      filtered ? std::span<const sim::SubframeWork>(*filtered) : work;

  // Subframe -> core assignment: the offline partition, then the shared
  // outage machinery folds unprovisioned slots onto real cores and
  // repartitions each failed core's subframes across survivors (see
  // sched/failover.hpp).
  std::vector<unsigned> assign(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i].bs >= num_basestations_)
      throw std::invalid_argument("run: basestation id out of range");
    assign[i] = core_of(active[i].bs, active[i].index);
  }
  const std::vector<TimePoint> fails = apply_core_outages(
      active, assign, num_cores(), config_.core_failures,
      config_.unprovisioned_cores, metrics, tracer);

  std::vector<CoreState> cores(num_cores());
  for (std::size_t i = 0; i < active.size(); ++i)
    cores[assign[i]].own.emplace_back(
        active[i].radio_time + config_.rtt_half, active[i].arrival);

  std::optional<model::OnlineEstimators> estimators =
      make_estimators(config_.adaptive, num_basestations_);
  model::OnlineEstimators* const adaptive =
      estimators ? &*estimators : nullptr;

  // Predicted idle window of core k at time t: until the *nominal* arrival
  // of its next own subframe. Actual preemption happens at the *actual*
  // arrival.
  auto predicted_preempt = [&](const CoreState& k, TimePoint t) {
    for (std::size_t i = k.next_own; i < k.own.size(); ++i)
      if (k.own[i].first > t) return k.own[i].first;
    return kNever;
  };
  auto actual_preempt = [&](const CoreState& k) {
    return k.next_own < k.own.size() ? k.own[k.next_own].second : kNever;
  };

  // Candidate idle cores for a migration decision taken at time `t`.
  auto gather_candidates = [&](unsigned self, TimePoint t) {
    std::vector<MigrationCandidate> cands;
    for (unsigned k = 0; k < cores.size(); ++k) {
      if (k == self) continue;
      if (fails[k] <= t) continue;  // failed cores host nothing
      const CoreState& ck = cores[k];
      if (ck.free_at > t || ck.mig_busy_until > t) continue;
      // A core whose next own subframe has already arrived is (about to be)
      // busy in its active state, not waiting — never a migration target.
      if (actual_preempt(ck) <= t) continue;
      const TimePoint preempt = predicted_preempt(ck, t);
      if (preempt == kNever) {
        cands.push_back({k, kEndToEndBudget});  // idle "forever": cap window
        continue;
      }
      const Duration window = preempt - t;
      if (window > 0) cands.push_back({k, window});
    }
    std::sort(cands.begin(), cands.end(),
              [](const MigrationCandidate& a, const MigrationCandidate& b) {
                if (a.free_window != b.free_window)
                  return a.free_window > b.free_window;
                return a.core < b.core;
              });
    return cands;
  };

  // Executes a previously planned parallelizable stage starting at `t` on
  // core `self`, with actual per-subtask time `tp`. The plan may have been
  // made slightly earlier (and with WCET subtask times); a planned target
  // that is no longer available behaves like a failed mailbox claim — its
  // subtasks simply stay local.
  auto run_stage = [&](TimePoint t, const MigrationPlan& plan,
                       unsigned subtasks, Duration tp,
                       const sim::SubframeWork& w, unsigned self,
                       obs::Stage stage) {
    StageOutcome out;
    if (tp <= 0 || subtasks == 0 || plan.chunks.empty()) {
      out.end = t + static_cast<Duration>(subtasks) * tp;
      return out;
    }

    // Execute migrated chunks on their remote cores; each chunk runs until
    // it completes or its core is preempted by that core's next partitioned
    // subframe (actual arrival).
    struct RunningChunk {
      unsigned count;
      TimePoint abort_at;
    };
    std::vector<RunningChunk> running;
    unsigned local_count = subtasks;
    for (const auto& chunk : plan.chunks) {
      CoreState& ck = cores[chunk.core];
      const bool still_available = fails[chunk.core] > t &&
                                   ck.free_at <= t &&
                                   ck.mig_busy_until <= t &&
                                   actual_preempt(ck) > t;
      if (!still_available) continue;  // failed claim: stays local
      const TimePoint abort_at = actual_preempt(ck);
      const TimePoint natural_end =
          t + config_.migration_cost + static_cast<Duration>(chunk.count) * tp;
      ck.mig_busy_until = std::min(natural_end, abort_at);
      running.push_back({chunk.count, abort_at});
      out.migrated += chunk.count;
      local_count -= chunk.count;
      if (out.first_host < 0) out.first_host = static_cast<int>(chunk.core);
      // Offload instant + flow start on the migrator's track, host span on
      // the remote track (b = subtasks the host completed before its own
      // work preempted the chunk).
      RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                         .a = chunk.core, .b = chunk.count, .core = self,
                         .kind = obs::EventKind::kOffload, .stage = stage);
      RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                         .a = self, .core = chunk.core,
                         .kind = obs::EventKind::kHostBegin, .stage = stage);
      const Duration usable =
          ck.mig_busy_until - t - config_.migration_cost;
      const unsigned completed = static_cast<unsigned>(std::clamp<Duration>(
          usable > 0 ? usable / tp : 0, 0, chunk.count));
      RTOPEX_TRACE_EVENT(tracer, .ts = ck.mig_busy_until, .bs = w.bs,
                         .index = w.index, .a = self, .b = completed,
                         .core = chunk.core,
                         .kind = obs::EventKind::kHostEnd, .stage = stage);
    }
    const TimePoint local_end =
        t + static_cast<Duration>(local_count) * tp;

    // Subtasks a chunk has completed by time tau (remote runs them in order
    // after the delta state fetch, stopping at preemption).
    auto done_by = [&](const RunningChunk& c, TimePoint tau) {
      const Duration usable =
          std::min(tau, c.abort_at) - t - config_.migration_cost;
      return static_cast<unsigned>(
          std::clamp<Duration>(usable > 0 ? usable / tp : 0, 0, c.count));
    };
    // Outstanding (not naturally completed) subtasks at time tau.
    auto outstanding_at = [&](TimePoint tau) {
      unsigned n = 0;
      for (const auto& c : running) n += c.count - done_by(c, tau);
      return n;
    };

    // When the local core finishes, it checks the result flags and recovers
    // incomplete migrated subtasks one at a time; remotes keep completing
    // meanwhile. The stage ends at the smallest R with
    // outstanding(local_end + R * tp) <= R.
    unsigned recovery = 0;
    while (outstanding_at(local_end +
                          static_cast<Duration>(recovery) * tp) > recovery)
      ++recovery;

    if (recovery > 0 && !config_.enable_recovery) {
      out.lost_results = true;
      out.end = local_end;
      return out;
    }
    out.recovered = recovery;
    out.end = local_end + static_cast<Duration>(recovery) * tp;
    if (recovery > 0)
      RTOPEX_TRACE_EVENT(tracer, .ts = local_end, .bs = w.bs,
                         .index = w.index, .b = recovery, .core = self,
                         .kind = obs::EventKind::kRecovery, .stage = stage);
    return out;
  };

  for (std::size_t wi = 0; wi < active.size(); ++wi) {
    const auto& w = active[wi];
    const unsigned self = assign[wi];
    CoreState& core = cores[self];
    // This subframe must be the core's next own work item.
    if (core.next_own >= core.own.size() ||
        core.own[core.next_own].second != w.arrival)
      throw std::logic_error("RtOpexScheduler: core work list out of sync");
    ++core.next_own;

    const TimePoint start = std::max(w.arrival, core.free_at);
    if (core.used && start > core.free_at) {
      metrics.record_gap(to_us(start - core.free_at),
                         config_.record_samples);
      RTOPEX_TRACE_EVENT(tracer, .ts = core.free_at, .core = self,
                         .kind = obs::EventKind::kGapBegin);
      RTOPEX_TRACE_EVENT(tracer, .ts = start, .core = self,
                         .kind = obs::EventKind::kGapEnd);
    }
    core.used = true;
    RTOPEX_TRACE_EVENT(tracer, .ts = w.arrival, .bs = w.bs, .index = w.index,
                       .a = obs::clamp_payload_ns(w.deadline - w.arrival),
                       .b = obs::clamp_payload_ns(w.arrival - w.radio_time),
                       .core = self, .kind = obs::EventKind::kArrival);
    RTOPEX_TRACE_EVENT(tracer, .ts = start, .bs = w.bs, .index = w.index,
                       .core = self,
                       .kind = obs::EventKind::kSubframeBegin);

    ++metrics.total_subframes;
    ++metrics.per_bs[w.bs].subframes;

    bool miss = false;
    bool dropped = false;
    bool terminated = false;
    DegradeLevel degrade_level = DegradeLevel::kNone;
    bool degraded_failure = false;
    obs::Stage missed_stage = obs::Stage::kNone;
    int host_core = -1;
    unsigned executed_iters = 0;
    TimePoint t = start;

    // --- FFT stage (deterministic duration; exact slack check) ---
    if (t + w.costs.fft > w.deadline) {
      miss = dropped = true;
      missed_stage = obs::Stage::kFft;
      RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                         .core = self, .kind = obs::EventKind::kDrop,
                         .stage = obs::Stage::kFft);
    } else {
      RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                         .a = obs::clamp_payload_ns(w.costs.fft),
                         .core = self, .kind = obs::EventKind::kStageBegin,
                         .stage = obs::Stage::kFft);
      const TimePoint fft_start = t;
      metrics.fft_subtasks_total += w.costs.fft_subtasks;
      if (config_.migrate_fft) {
        const MigrationPlan plan = plan_migration(
            w.costs.fft_subtasks, std::max<Duration>(w.costs.fft_subtask, 1),
            config_.migration_cost, gather_candidates(self, t),
            config_.constraints);
        const StageOutcome o = run_stage(t, plan, w.costs.fft_subtasks,
                                         w.costs.fft_subtask, w, self,
                                         obs::Stage::kFft);
        metrics.fft_subtasks_migrated += o.migrated;
        metrics.recoveries += o.recovered;
        if (host_core < 0) host_core = o.first_host;
        // Serial residue of the FFT stage (rounding of fft / subtasks).
        const Duration residue =
            w.costs.fft -
            static_cast<Duration>(w.costs.fft_subtasks) * w.costs.fft_subtask;
        t = o.end + residue;
        if (o.lost_results) {
          miss = true;
          missed_stage = obs::Stage::kFft;
        }
      } else {
        t += w.costs.fft;
      }
      metrics.record_stage(obs::Stage::kFft, to_us(t - fft_start));
      RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                         .core = self, .kind = obs::EventKind::kStageEnd,
                         .stage = obs::Stage::kFft);
    }

    // --- Demod stage (serial, deterministic) ---
    if (!miss) {
      if (t + w.costs.demod > w.deadline) {
        miss = dropped = true;
        missed_stage = obs::Stage::kDemod;
        RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                           .core = self, .kind = obs::EventKind::kDrop,
                           .stage = obs::Stage::kDemod);
      } else {
        RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                           .a = obs::clamp_payload_ns(w.costs.demod),
                           .core = self, .kind = obs::EventKind::kStageBegin,
                           .stage = obs::Stage::kDemod);
        t += w.costs.demod;
        metrics.record_stage(obs::Stage::kDemod, to_us(w.costs.demod));
        RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                           .core = self, .kind = obs::EventKind::kStageEnd,
                           .stage = obs::Stage::kDemod);
      }
    }

    // --- Decode stage ---
    // Plan the migration first (using the model's WCET subtask time and the
    // predicted start of the parallelizable part), then run the slack check
    // against the post-migration worst case: migration is what lets RT-OPEX
    // admit high-MCS subframes that partitioned scheduling must drop.
    if (!miss) {
      // Per-subtask time the migration planner and the admission check
      // assume: the WCET constant, or — adaptive — the learned EWMA over
      // executed per-code-block times (Algorithm 1 with adaptive chunks).
      const Duration planning_subtask =
          adaptive ? adaptive->decode_subtask_or(w.wcet.decode_subtask)
                   : w.wcet.decode_subtask;
      MigrationPlan plan;  // empty unless decode migration is enabled
      unsigned planned_local = w.wcet.decode_subtasks;
      if (config_.migrate_decode && w.costs.decode_subtasks > 1) {
        const TimePoint par_start_pred = t + w.wcet.decode_serial();
        plan = plan_migration(
            w.wcet.decode_subtasks,
            std::max<Duration>(planning_subtask, 1),
            config_.migration_cost, gather_candidates(self, par_start_pred),
            config_.constraints);
        planned_local = plan.local_subtasks;
      }
      const Duration admission_estimate =
          config_.admission == AdmissionPolicy::kWcet
              ? w.wcet.decode_serial() +
                    static_cast<Duration>(planned_local) * planning_subtask
              : w.decode_optimistic;
      // Static reference for estimate-accuracy accounting: the same plan
      // costed with the frozen WCET constant.
      const Duration static_estimate =
          config_.admission == AdmissionPolicy::kWcet
              ? w.wcet.decode_serial() +
                    static_cast<Duration>(planned_local) *
                        w.wcet.decode_subtask
              : w.decode_optimistic;
      const TimePoint decode_start = t;
      if (t + admission_estimate > w.deadline) {
        // Even the post-migration worst case cannot fit: before dropping,
        // try a serial decode with the iteration cap shrunk (migration
        // plans assume full-quality subtask times, so the degraded
        // fallback runs unmigrated).
        const DegradePlan dplan = plan_degrade(w, t, config_.degrade);
        if (dplan.cap == 0) {
          miss = dropped = true;
          missed_stage = obs::Stage::kDecode;
          RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                             .core = self, .kind = obs::EventKind::kDrop,
                             .stage = obs::Stage::kDecode);
        } else {
          degrade_level = dplan.level;
          degraded_failure = w.decodable && w.iterations > dplan.cap;
          executed_iters = std::min(w.iterations, dplan.cap);
          RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                             .a = dplan.cap, .core = self,
                             .kind = obs::EventKind::kDegrade,
                             .stage = obs::Stage::kDecode);
          RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                             .a = obs::clamp_payload_ns(dplan.estimate),
                             .b = dplan.cap, .core = self,
                             .kind = obs::EventKind::kStageBegin,
                             .stage = obs::Stage::kDecode);
          t += degraded_decode_time(w, dplan.cap);
          if (t > w.deadline) {
            miss = terminated = true;
            missed_stage = obs::Stage::kDecode;
            t = w.deadline;
          }
          metrics.record_stage(obs::Stage::kDecode, to_us(t - decode_start));
          RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                             .core = self, .kind = obs::EventKind::kStageEnd,
                             .stage = obs::Stage::kDecode);
          if (terminated)
            RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                               .core = self,
                               .kind = obs::EventKind::kTerminate,
                               .stage = obs::Stage::kDecode);
        }
      } else {
        metrics.decode_subtasks_total += w.costs.decode_subtasks;
        executed_iters = w.iterations;
        RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                           .a = obs::clamp_payload_ns(admission_estimate),
                           .b = adaptive
                                    ? adaptive->predict_iterations(w.bs)
                                    : (config_.admission ==
                                               AdmissionPolicy::kWcet
                                           ? w.lm
                                           : 1u),
                           .core = self, .kind = obs::EventKind::kStageBegin,
                           .stage = obs::Stage::kDecode);
        if (config_.migrate_decode) {
          t += w.costs.decode_serial();
          const StageOutcome o =
              run_stage(t, plan, w.costs.decode_subtasks,
                        w.costs.decode_subtask, w, self, obs::Stage::kDecode);
          metrics.decode_subtasks_migrated += o.migrated;
          metrics.recoveries += o.recovered;
          if (host_core < 0) host_core = o.first_host;
          t = o.end;
          if (o.lost_results) {
            miss = true;
            missed_stage = obs::Stage::kDecode;
          }
        } else {
          t += w.costs.decode;
        }
        if (!miss && t > w.deadline) {
          miss = terminated = true;
          missed_stage = obs::Stage::kDecode;
          t = w.deadline;
        }
        metrics.record_stage(obs::Stage::kDecode, to_us(t - decode_start));
        RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                           .core = self, .kind = obs::EventKind::kStageEnd,
                           .stage = obs::Stage::kDecode);
        if (terminated)
          RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                             .core = self,
                             .kind = obs::EventKind::kTerminate,
                             .stage = obs::Stage::kDecode);
        if (!terminated)
          metrics.record_decode_estimate(to_us(admission_estimate),
                                         to_us(static_estimate),
                                         to_us(t - decode_start));
      }
      if (adaptive && !miss) {
        // Feed the executed stage back: the full serial decode work
        // content (what a single core would have run) as the Eq. (1)
        // sample, plus the per-code-block time for chunk sizing.
        adaptive->observe_fft(w.costs.fft_subtask);
        adaptive->observe_decode(w.bs, w.mcs, executed_iters,
                                 degrade_level == DegradeLevel::kNone
                                     ? w.costs.decode
                                     : degraded_decode_time(
                                           w, std::max(1u, executed_iters)),
                                 w.costs.decode_subtask);
      }
    }

    core.free_at = t;
    RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                       .a = miss ? 1u : 0u, .b = executed_iters,
                       .core = self, .kind = obs::EventKind::kSubframeEnd);
    if (tracer) tracer->collect();
    if (config_.record_timeline)
      metrics.timeline.push_back({w.bs, w.index, self, start, t, miss,
                                  missed_stage, host_core});
    if (!dropped) {
      metrics.resilience
          .degrade_histogram[static_cast<unsigned>(degrade_level)] += 1;
      if (degrade_level != DegradeLevel::kNone) {
        ++metrics.resilience.degraded;
        if (!miss && degraded_failure)
          ++metrics.resilience.degraded_decode_failures;
      }
    }
    if (miss) {
      ++metrics.deadline_misses;
      ++metrics.per_bs[w.bs].misses;
      if (dropped) ++metrics.dropped;
      if (terminated) ++metrics.terminated;
    } else {
      metrics.record_processing(w.bs, to_us(t - w.arrival),
                                config_.record_samples);
      if (!w.decodable) ++metrics.decode_failures;
    }
  }
  return metrics;
}

}  // namespace rtopex::sched
