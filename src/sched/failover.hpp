// Shared core-outage machinery for the partition-style schedulers
// (Partitioned and RT-OPEX both map subframes onto per-basestation cores
// offline). Two outage flavours fold into the same subframe -> core
// assignment:
//
//  * Fail-stop core failures (PR-2 semantics): from `at` onward the core
//    takes no new subframes; its slots are repartitioned round-robin across
//    the survivors, mirroring the runtime watchdog, with failover /
//    repartition / requeue accounting and a kWatchdogFire trace marker.
//  * Unprovisioned cores: core slots that exist in the offline partition
//    (so per-BS subframe identities stay unique) but were never given a
//    physical core — the cluster layer uses this to re-home a dead node's
//    basestations onto a survivor without granting extra capacity. Their
//    subframes fold onto the provisioned cores from t = 0, silently: no
//    failover counters, no watchdog marker, and the core is never a
//    migration target.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "common/time_types.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace rtopex::obs {
class Tracer;
}

namespace rtopex::sched {

/// Injected fail-stop core failure (shared by RtOpexConfig and
/// PartitionedConfig). A subframe already started finishes — failure is
/// detected between jobs, like the runtime's kill semantics.
struct CoreFailure {
  unsigned core = 0;
  TimePoint at = 0;
};

/// Sentinel fail instants in the per-core vector returned by
/// apply_core_outages: kCoreNeverFails for healthy cores,
/// kCoreNeverProvisioned (< any event time) for phantom cores.
inline constexpr TimePoint kCoreNeverFails =
    std::numeric_limits<TimePoint>::max();
inline constexpr TimePoint kCoreNeverProvisioned = -1;

/// Rewrites `assign` (subframe i -> core, parallel to `active`) for the
/// configured outages and returns the per-core fail-instant vector: a core
/// with fails[c] <= t at decision time t hosts nothing and is never a
/// migration target. `active` must be the arrival-sorted executable
/// workload. Requires at least one provisioned core.
std::vector<TimePoint> apply_core_outages(
    std::span<const sim::SubframeWork> active, std::vector<unsigned>& assign,
    unsigned num_cores, std::span<const CoreFailure> failures,
    std::span<const unsigned> unprovisioned, sim::SchedulerMetrics& metrics,
    obs::Tracer* tracer);

}  // namespace rtopex::sched
