#include "sched/serial_exec.hpp"

#include "sched/scheduler.hpp"

namespace rtopex::sched {

Duration decode_admission_estimate(const sim::SubframeWork& w,
                                   AdmissionPolicy policy) {
  return policy == AdmissionPolicy::kWcet ? w.wcet.decode
                                          : w.decode_optimistic;
}

SerialOutcome execute_serial(const sim::SubframeWork& w, TimePoint start,
                             Duration entry_penalty,
                             AdmissionPolicy admission) {
  SerialOutcome out;
  TimePoint t = start;

  // FFT (deterministic duration -> exact slack check).
  const Duration fft = w.costs.fft + entry_penalty;
  if (t + fft > w.deadline) {
    out.end = t;
    out.miss = out.dropped = true;
    return out;
  }
  t += fft;

  // Demod (deterministic).
  if (t + w.costs.demod > w.deadline) {
    out.end = t;
    out.miss = out.dropped = true;
    return out;
  }
  t += w.costs.demod;

  // Decode: admission per policy (WCET by default), then actual execution
  // with termination at the deadline.
  if (t + decode_admission_estimate(w, admission) > w.deadline) {
    out.end = t;
    out.miss = out.dropped = true;
    return out;
  }
  t += w.costs.decode;
  if (t > w.deadline) {
    out.end = w.deadline;
    out.miss = out.terminated = true;
    return out;
  }
  out.end = t;
  out.completed = true;
  return out;
}

}  // namespace rtopex::sched
