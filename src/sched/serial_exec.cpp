#include "sched/serial_exec.hpp"

#include <algorithm>

#include "sched/scheduler.hpp"

namespace rtopex::sched {

Duration decode_admission_estimate(const sim::SubframeWork& w,
                                   AdmissionPolicy policy) {
  return policy == AdmissionPolicy::kWcet ? w.wcet.decode
                                          : w.decode_optimistic;
}

std::optional<model::OnlineEstimators> make_estimators(
    const AdaptiveConfig& cfg, unsigned num_basestations) {
  if (!cfg.enabled) return std::nullopt;
  return model::OnlineEstimators(cfg.num_antennas, cfg.num_prb,
                                 num_basestations, cfg.max_iterations,
                                 cfg.params);
}

namespace {

/// Model-predicted (jitter-free) full decode duration at `l` iterations:
/// linear interpolation between the L = 1 and L = Lm bounds.
Duration model_decode(const sim::SubframeWork& w, unsigned l) {
  if (w.lm <= 1) return w.wcet.decode;
  const Duration slope =
      (w.wcet.decode - w.decode_optimistic) / static_cast<Duration>(w.lm - 1);
  return w.decode_optimistic + static_cast<Duration>(l - 1) * slope;
}

}  // namespace

std::optional<std::vector<sim::SubframeWork>> filter_faulted(
    std::span<const sim::SubframeWork> work, sim::SchedulerMetrics& metrics,
    obs::Tracer* tracer) {
  bool any = false;
  for (const auto& w : work)
    if (w.lost || w.arrival > w.deadline) {
      any = true;
      break;
    }
  if (!any) return std::nullopt;
  std::vector<sim::SubframeWork> rest;
  rest.reserve(work.size());
  for (const auto& w : work) {
    if (!w.lost && w.arrival <= w.deadline) {
      rest.push_back(w);
      continue;
    }
    ++metrics.total_subframes;
    if (w.bs < metrics.per_bs.size()) ++metrics.per_bs[w.bs].subframes;
    if (w.lost) {
      ++metrics.resilience.lost_subframes;
      RTOPEX_TRACE_EVENT(tracer, .ts = w.radio_time, .bs = w.bs,
                         .index = w.index, .kind = obs::EventKind::kLost);
      continue;  // never arrived: not a processing miss
    }
    ++metrics.resilience.late_arrivals;
    ++metrics.deadline_misses;
    if (w.bs < metrics.per_bs.size()) ++metrics.per_bs[w.bs].misses;
    RTOPEX_TRACE_EVENT(tracer, .ts = w.arrival, .bs = w.bs, .index = w.index,
                       .a = obs::clamp_payload_ns(w.arrival - w.deadline),
                       .b = obs::clamp_payload_ns(w.arrival - w.radio_time),
                       .kind = obs::EventKind::kLate);
  }
  if (tracer) tracer->collect();
  return rest;
}

DegradePlan plan_degrade(const sim::SubframeWork& w, TimePoint t,
                         const DegradeConfig& cfg) {
  DegradePlan plan;
  if (!cfg.enabled || w.lm <= 1) return plan;
  const unsigned lmin = std::max(1u, std::min(cfg.min_iterations, w.lm - 1));
  for (unsigned cap = w.lm - 1; cap >= lmin; --cap) {
    const Duration est = model_decode(w, cap);
    if (t + est <= w.deadline) {
      plan.cap = cap;
      plan.level = cap <= lmin ? DegradeLevel::kMinimalIterations
                               : DegradeLevel::kReducedIterations;
      plan.estimate = est;
      return plan;
    }
    if (cap == lmin) break;
  }
  return plan;
}

Duration degraded_decode_time(const sim::SubframeWork& w, unsigned cap) {
  const unsigned executed = std::min(w.iterations, cap);
  // Scale the sampled (jittered) cost to the executed iteration count
  // along the model slope: jitter multiplies the whole decode, so the
  // ratio of model predictions carries it.
  const Duration predicted = model_decode(w, w.iterations);
  if (predicted <= 0) return w.costs.decode;
  return static_cast<Duration>(
      static_cast<double>(w.costs.decode) *
      static_cast<double>(model_decode(w, executed)) /
      static_cast<double>(predicted));
}

SerialOutcome execute_serial(const sim::SubframeWork& w, TimePoint start,
                             Duration entry_penalty,
                             AdmissionPolicy admission,
                             const DegradeConfig& degrade,
                             obs::Tracer* tracer, unsigned core,
                             model::OnlineEstimators* adaptive) {
  SerialOutcome out;
  TimePoint t = start;

  // FFT (deterministic duration -> exact slack check).
  const Duration fft = w.costs.fft + entry_penalty;
  if (t + fft > w.deadline) {
    out.end = t;
    out.miss = out.dropped = true;
    out.missed_stage = obs::Stage::kFft;
    RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                       .core = core, .kind = obs::EventKind::kDrop,
                       .stage = obs::Stage::kFft);
    return out;
  }
  RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                     .a = obs::clamp_payload_ns(fft), .core = core,
                     .kind = obs::EventKind::kStageBegin,
                     .stage = obs::Stage::kFft);
  t += fft;
  out.fft_ns = fft;
  RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                     .core = core, .kind = obs::EventKind::kStageEnd,
                     .stage = obs::Stage::kFft);
  if (adaptive) adaptive->observe_fft(w.costs.fft_subtask);

  // Demod (deterministic).
  if (t + w.costs.demod > w.deadline) {
    out.end = t;
    out.miss = out.dropped = true;
    out.missed_stage = obs::Stage::kDemod;
    RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                       .core = core, .kind = obs::EventKind::kDrop,
                       .stage = obs::Stage::kDemod);
    return out;
  }
  RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                     .a = obs::clamp_payload_ns(w.costs.demod), .core = core,
                     .kind = obs::EventKind::kStageBegin,
                     .stage = obs::Stage::kDemod);
  t += w.costs.demod;
  out.demod_ns = w.costs.demod;
  RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                     .core = core, .kind = obs::EventKind::kStageEnd,
                     .stage = obs::Stage::kDemod);

  // Decode: admission per policy (WCET by default), then actual execution
  // with termination at the deadline. A failed full-quality check first
  // tries shrinking the iteration cap (graceful degradation) and only
  // drops when even the minimal-quality estimate cannot fit.
  Duration decode_time = w.costs.decode;
  Duration decode_est = decode_admission_estimate(w, admission);
  unsigned iter_est = admission == AdmissionPolicy::kWcet ? w.lm : 1;
  if (adaptive) {
    iter_est = adaptive->predict_iterations(w.bs);
    decode_est = adaptive->predict_decode(w.bs, w.mcs, decode_est);
  }
  out.executed_iterations = w.iterations;
  if (t + decode_est > w.deadline) {
    const DegradePlan plan = plan_degrade(w, t, degrade);
    if (plan.cap == 0) {
      out.end = t;
      out.miss = out.dropped = true;
      out.missed_stage = obs::Stage::kDecode;
      out.executed_iterations = 0;
      RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                         .core = core, .kind = obs::EventKind::kDrop,
                         .stage = obs::Stage::kDecode);
      return out;
    }
    out.degrade = plan.level;
    out.degraded_failure = w.decodable && w.iterations > plan.cap;
    decode_time = degraded_decode_time(w, plan.cap);
    decode_est = plan.estimate;
    iter_est = plan.cap;
    out.executed_iterations = std::min(w.iterations, plan.cap);
    RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                       .a = plan.cap, .core = core,
                       .kind = obs::EventKind::kDegrade,
                       .stage = obs::Stage::kDecode);
  }
  out.decode_est_ns = decode_est;
  RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                     .a = obs::clamp_payload_ns(decode_est), .b = iter_est,
                     .core = core, .kind = obs::EventKind::kStageBegin,
                     .stage = obs::Stage::kDecode);
  if (t + decode_time > w.deadline) {
    out.decode_ns = w.deadline - t;
    out.end = w.deadline;
    out.miss = out.terminated = true;
    out.missed_stage = obs::Stage::kDecode;
    RTOPEX_TRACE_EVENT(tracer, .ts = w.deadline, .bs = w.bs, .index = w.index,
                       .core = core, .kind = obs::EventKind::kStageEnd,
                       .stage = obs::Stage::kDecode);
    RTOPEX_TRACE_EVENT(tracer, .ts = w.deadline, .bs = w.bs, .index = w.index,
                       .core = core, .kind = obs::EventKind::kTerminate,
                       .stage = obs::Stage::kDecode);
    return out;
  }
  t += decode_time;
  out.decode_ns = decode_time;
  RTOPEX_TRACE_EVENT(tracer, .ts = t, .bs = w.bs, .index = w.index,
                     .core = core, .kind = obs::EventKind::kStageEnd,
                     .stage = obs::Stage::kDecode);
  out.end = t;
  out.completed = true;
  // Close the loop: feed the executed decode back into the estimators (the
  // executed iteration count and the duration it produced are a consistent
  // Eq. (1) sample even on the degraded path).
  if (adaptive)
    adaptive->observe_decode(w.bs, w.mcs, out.executed_iterations,
                             out.decode_ns, w.costs.decode_subtask);
  return out;
}

}  // namespace rtopex::sched
