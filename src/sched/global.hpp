// Global scheduler (paper §3.1.2): a shared queue across basestations; a
// dispatcher thread hands each subframe to the next available core (EDF,
// which equals FIFO when all basestations share the same transport delay).
//
// Overheads the paper attributes to global scheduling:
//  * per-dispatch latency (queueing machinery, semaphore wakeups), and
//  * cache refill when a core picks up a different basestation than it last
//    processed (OAI eNB state is per-basestation and large) — the origin of
//    the Fig. 19 behaviour where 16 cores do no better (or worse) than 8.
#pragma once

#include "obs/tracer.hpp"
#include "sched/scheduler.hpp"

namespace rtopex::sched {

enum class DispatchOrder {
  kEdf,   ///< earliest deadline first among queued subframes.
  kFifo,  ///< arrival order.
};

struct GlobalConfig {
  unsigned num_cores = 8;
  DispatchOrder order = DispatchOrder::kEdf;
  Duration dispatch_latency = microseconds(5);
  /// Slack-check prediction for the decode task (paper: WCET).
  AdmissionPolicy admission = AdmissionPolicy::kWcet;
  /// Populate SchedulerMetrics::timeline (costs memory on big runs).
  bool record_timeline = false;
  /// Cache-refill penalty charged when a core switches basestations.
  Duration switch_penalty = microseconds(40);
  /// The real dispatcher wakes whichever idle processing thread the kernel
  /// picks — effectively arbitrary, with no basestation affinity. When more
  /// than one core is idle at dispatch time the simulator picks uniformly at
  /// random (seeded here); this is what makes cache-switch frequency grow
  /// with core count (paper Fig. 19).
  std::uint64_t selection_seed = 0x9e3779b9;
  /// Graceful degradation on a failed decode slack check.
  DegradeConfig degrade;
  /// Online adaptive decode-admission estimation (off: static WCET seeds).
  AdaptiveConfig adaptive;
  /// Fill the raw gap_us / processing_time_us sample vectors in addition to
  /// the bounded histograms (costs memory on big runs).
  bool record_samples = false;
  /// Optional trace sink: virtual-time-stamped events on track = core id.
  /// Needs at least num_cores tracks; drained once per subframe.
  obs::Tracer* tracer = nullptr;
};

class GlobalScheduler final : public NodeScheduler {
 public:
  explicit GlobalScheduler(unsigned num_basestations, const GlobalConfig& cfg);

  sim::SchedulerMetrics run(std::span<const sim::SubframeWork> work) override;

  unsigned num_cores() const override { return config_.num_cores; }
  const char* name() const override { return "global"; }

 private:
  unsigned num_basestations_;
  GlobalConfig config_;
};

}  // namespace rtopex::sched
