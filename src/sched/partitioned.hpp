// Partitioned scheduler (paper §3.1.1): an offline schedule that maps
// basestation i's subframe j to core i * ceil(Tmax) + (j mod ceil(Tmax)),
// giving each subframe ceil(Tmax) milliseconds of exclusive core time.
// Gaps left by early-finishing subframes are not reused.
#pragma once

#include "obs/tracer.hpp"
#include "sched/failover.hpp"
#include "sched/scheduler.hpp"

namespace rtopex::sched {

struct PartitionedConfig {
  /// Budgeted one-way transport delay; Tmax = 2 ms - rtt_half (Eq. 3).
  Duration rtt_half = microseconds(500);
  /// Slack-check prediction for the decode task (paper: WCET).
  AdmissionPolicy admission = AdmissionPolicy::kWcet;
  /// Populate SchedulerMetrics::timeline (costs memory on big runs).
  bool record_timeline = false;
  /// Graceful degradation on a failed decode slack check.
  DegradeConfig degrade;
  /// Online adaptive decode-admission estimation (off: static WCET seeds).
  AdaptiveConfig adaptive;
  /// Fill the raw gap_us / processing_time_us sample vectors in addition to
  /// the bounded histograms (costs memory on big runs).
  bool record_samples = false;
  /// Injected fail-stop core failures, with PR-2 round-robin repartition
  /// semantics (see sched/failover.hpp).
  std::vector<CoreFailure> core_failures;
  /// Core slots in the offline partition never backed by a physical core;
  /// their subframes fold onto the provisioned cores from t = 0, silently.
  /// The cluster layer re-homes a dead node's basestations through this.
  std::vector<unsigned> unprovisioned_cores;
  /// Optional trace sink: virtual-time-stamped events on track = core id.
  /// Needs at least num_cores() tracks; drained once per subframe.
  obs::Tracer* tracer = nullptr;

  /// Cores per basestation: ceil(Tmax in ms). For the paper's sweep
  /// (RTT/2 in 0.4–0.7 ms) this is always 2.
  unsigned cores_per_bs() const {
    const Duration tmax = kEndToEndBudget - rtt_half;
    return static_cast<unsigned>((tmax + kSubframePeriod - 1) /
                                 kSubframePeriod);
  }
};

class PartitionedScheduler final : public NodeScheduler {
 public:
  PartitionedScheduler(unsigned num_basestations, const PartitionedConfig& cfg);

  sim::SchedulerMetrics run(std::span<const sim::SubframeWork> work) override;

  unsigned num_cores() const override {
    return num_basestations_ * config_.cores_per_bs();
  }
  const char* name() const override { return "partitioned"; }

  /// The offline mapping: subframe j of basestation i -> core id.
  unsigned core_of(unsigned bs, std::uint32_t subframe_index) const;

 private:
  unsigned num_basestations_;
  PartitionedConfig config_;
};

}  // namespace rtopex::sched
