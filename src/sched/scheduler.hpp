// Node-scheduler interface: consumes an arrival-sorted workload, simulates
// the compute node in virtual time, returns metrics.
//
// Common execution semantics shared by all policies (paper §3/§4.1):
//  * A subframe is processed stage by stage (FFT -> demod -> decode).
//  * Before each stage, a slack check against the task model runs; a
//    subframe whose predicted execution cannot meet the deadline is dropped
//    (deadline miss) and the remaining stages are skipped.
//  * If actual execution crosses the deadline anyway (platform jitter), the
//    task is terminated at the deadline (deadline miss), freeing the core.
#pragma once

#include <span>

#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace rtopex::sched {

/// What the slack check predicts for the decode task, whose iteration count
/// is unknowable at admission time.
enum class AdmissionPolicy {
  /// The paper's choice: predict with L = Lm (the WCET bound of §2.1).
  /// Subframes whose worst case cannot fit are dropped up front — this is
  /// what makes the partitioned scheduler miss 100% of high-MCS subframes
  /// at tight budgets (Fig. 17).
  kWcet,
  /// Ablation: admit whenever even the best case (L = 1) could fit, and
  /// terminate at the deadline when it does not.
  kOptimistic,
};

class NodeScheduler {
 public:
  virtual ~NodeScheduler() = default;

  /// `work` must be sorted by arrival time (WorkloadGenerator guarantees
  /// this). Returns the collected metrics.
  virtual sim::SchedulerMetrics run(std::span<const sim::SubframeWork> work) = 0;

  /// Number of processing cores this scheduler occupies.
  virtual unsigned num_cores() const = 0;

  /// Human-readable policy name for reports.
  virtual const char* name() const = 0;
};

/// The decode-time prediction the slack check uses under a policy.
Duration decode_admission_estimate(const sim::SubframeWork& w,
                                   AdmissionPolicy policy);

}  // namespace rtopex::sched
