// Node-scheduler interface: consumes an arrival-sorted workload, simulates
// the compute node in virtual time, returns metrics.
//
// Common execution semantics shared by all policies (paper §3/§4.1):
//  * A subframe is processed stage by stage (FFT -> demod -> decode).
//  * Before each stage, a slack check against the task model runs; a
//    subframe whose predicted execution cannot meet the deadline is dropped
//    (deadline miss) and the remaining stages are skipped.
//  * If actual execution crosses the deadline anyway (platform jitter), the
//    task is terminated at the deadline (deadline miss), freeing the core.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/resilience.hpp"
#include "model/online_fit.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace rtopex::obs {
class Tracer;
}

namespace rtopex::sched {

/// What the slack check predicts for the decode task, whose iteration count
/// is unknowable at admission time.
enum class AdmissionPolicy {
  /// The paper's choice: predict with L = Lm (the WCET bound of §2.1).
  /// Subframes whose worst case cannot fit are dropped up front — this is
  /// what makes the partitioned scheduler miss 100% of high-MCS subframes
  /// at tight budgets (Fig. 17).
  kWcet,
  /// Ablation: admit whenever even the best case (L = 1) could fit, and
  /// terminate at the deadline when it does not.
  kOptimistic,
};

class NodeScheduler {
 public:
  virtual ~NodeScheduler() = default;

  /// `work` must be sorted by arrival time (WorkloadGenerator guarantees
  /// this). Returns the collected metrics.
  virtual sim::SchedulerMetrics run(std::span<const sim::SubframeWork> work) = 0;

  /// Number of processing cores this scheduler occupies.
  virtual unsigned num_cores() const = 0;

  /// Human-readable policy name for reports.
  virtual const char* name() const = 0;
};

/// The decode-time prediction the slack check uses under a policy.
Duration decode_admission_estimate(const sim::SubframeWork& w,
                                   AdmissionPolicy policy);

/// Graceful-degradation knobs, shared by every policy: when the decode
/// slack check fails at full quality, retry with the turbo-iteration cap
/// shrunk (down to min_iterations) before dropping the subframe.
struct DegradeConfig {
  bool enabled = false;
  unsigned min_iterations = 1;
};

/// Opt-in online adaptive estimation (ROADMAP item 5), shared by every
/// policy. When enabled, run() builds a model::OnlineEstimators bundle and
/// the decode admission estimate becomes the streaming Eq. (1) fit at the
/// per-BS predicted iteration count instead of the frozen WCET/optimistic
/// seed; RT-OPEX additionally sizes Algorithm-1 migration chunks with the
/// learned per-code-block time. Disabled (the default), every decision is
/// bit-identical to the static path. The regressor context fields are
/// synced from the workload config by core::run_scheduler.
struct AdaptiveConfig {
  bool enabled = false;
  model::AdaptiveParams params;
  unsigned num_antennas = 2;
  unsigned num_prb = 50;        ///< PRBs of the cell (10 MHz default).
  unsigned max_iterations = 4;  ///< turbo Lm (PR-2 iteration cap).
};

/// The per-run estimator bundle, or nullopt when adaptive is disabled.
std::optional<model::OnlineEstimators> make_estimators(
    const AdaptiveConfig& cfg, unsigned num_basestations);

/// Classifies fronthaul-faulted subframes (lost / arrived past deadline)
/// into `metrics` and returns the remaining executable workload. Lost
/// subframes never occupy a core; a late arrival is a deadline miss of its
/// own category (late_arrivals), also skipped — by the time it lands the
/// deadline is gone. Returns nullopt when nothing was filtered (the caller
/// keeps using the original span: no copy on the clean path). A non-null
/// `tracer` receives a kLost marker per lost subframe (at its radio time)
/// and a kLate marker per late arrival (at its arrival, a = ns past the
/// deadline), both on track 0 — the sim is single-threaded, so any track
/// is a legal producer.
std::optional<std::vector<sim::SubframeWork>> filter_faulted(
    std::span<const sim::SubframeWork> work, sim::SchedulerMetrics& metrics,
    obs::Tracer* tracer = nullptr);

/// Degraded-decode planning: the largest iteration cap whose (WCET-model)
/// estimate fits the deadline from `t`, or cap = 0 when even
/// min_iterations cannot fit. The model interpolates linearly between the
/// L = 1 and L = Lm decode estimates (Eq. (1): decode cost ~ linear in L).
struct DegradePlan {
  unsigned cap = 0;  ///< 0: drop — even minimal quality cannot fit.
  DegradeLevel level = DegradeLevel::kNone;
  Duration estimate = 0;  ///< admission estimate at `cap`.
};
DegradePlan plan_degrade(const sim::SubframeWork& w, TimePoint t,
                         const DegradeConfig& cfg);

/// Actual (jittered) decode duration when capped at `cap` iterations: the
/// sampled decode cost scaled down to the executed iteration count
/// min(L, cap) along the model's per-iteration slope.
Duration degraded_decode_time(const sim::SubframeWork& w, unsigned cap);

}  // namespace rtopex::sched
