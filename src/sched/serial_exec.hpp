// Shared serial (non-migrating) execution of one subframe's stage chain,
// used by the partitioned and global policies.
#pragma once

#include "sched/scheduler.hpp"
#include "sim/workload.hpp"

namespace rtopex::sched {

struct SerialOutcome {
  TimePoint end = 0;       ///< when the core becomes free.
  bool miss = false;       ///< dropped or terminated (deadline miss).
  bool dropped = false;    ///< rejected by a slack check (no decode ran).
  bool terminated = false; ///< killed mid-execution at the deadline.
  bool completed = false;  ///< all stages ran to completion in time.
};

/// Runs FFT -> demod -> decode serially from `start`. `entry_penalty` models
/// extra per-dispatch cost (e.g. the global scheduler's cache-refill after a
/// basestation switch); it is charged before the FFT stage.
SerialOutcome execute_serial(const sim::SubframeWork& w, TimePoint start,
                             Duration entry_penalty = 0,
                             AdmissionPolicy admission = AdmissionPolicy::kWcet);

}  // namespace rtopex::sched
