// Shared serial (non-migrating) execution of one subframe's stage chain,
// used by the partitioned and global policies.
#pragma once

#include "obs/tracer.hpp"
#include "sched/scheduler.hpp"
#include "sim/workload.hpp"

namespace rtopex::sched {

struct SerialOutcome {
  TimePoint end = 0;       ///< when the core becomes free.
  bool miss = false;       ///< dropped or terminated (deadline miss).
  bool dropped = false;    ///< rejected by a slack check (no decode ran).
  bool terminated = false; ///< killed mid-execution at the deadline.
  bool completed = false;  ///< all stages ran to completion in time.
  /// Quality level the decode ran at (degradation enabled only).
  DegradeLevel degrade = DegradeLevel::kNone;
  /// Decodable subframe that NACKed *because* of the iteration cap.
  bool degraded_failure = false;
  /// Stage at which the miss occurred (kNone when the subframe completed).
  obs::Stage missed_stage = obs::Stage::kNone;
  /// Turbo iterations the decode executed (capped under degradation; 0 when
  /// the decode never ran). Mirrored into kSubframeEnd's `b` payload.
  unsigned executed_iterations = 0;
  /// Per-stage execution time in ns; -1 when the stage never ran. The FFT
  /// figure includes the entry penalty (charged before the stage).
  Duration fft_ns = -1;
  Duration demod_ns = -1;
  Duration decode_ns = -1;
  /// Admission estimate the decode ran under (post-degradation when the
  /// cap shrank; -1 when the decode was never admitted). Compared against
  /// decode_ns for estimate-accuracy accounting.
  Duration decode_est_ns = -1;
};

/// Runs FFT -> demod -> decode serially from `start`. `entry_penalty` models
/// extra per-dispatch cost (e.g. the global scheduler's cache-refill after a
/// basestation switch); it is charged before the FFT stage. With
/// `degrade.enabled`, a failed decode slack check shrinks the iteration cap
/// before dropping. A non-null `tracer` receives stage spans, degrade
/// markers and drop/terminate instants on track `core`, stamped with
/// virtual time. A non-null `adaptive` bundle replaces the static decode
/// admission estimate with the learned Eq. (1) fit at the predicted
/// iteration count and is fed the executed stage observations afterwards;
/// null keeps the static path bit-identical.
SerialOutcome execute_serial(const sim::SubframeWork& w, TimePoint start,
                             Duration entry_penalty = 0,
                             AdmissionPolicy admission = AdmissionPolicy::kWcet,
                             const DegradeConfig& degrade = {},
                             obs::Tracer* tracer = nullptr,
                             unsigned core = 0,
                             model::OnlineEstimators* adaptive = nullptr);

/// Folds one outcome's degradation fields into the metrics (histogram over
/// executed subframes; capped-decode NACKs counted apart from ordinary
/// decode failures).
inline void account_degrade(const SerialOutcome& o,
                            sim::SchedulerMetrics& metrics) {
  if (o.dropped) return;
  metrics.resilience.degrade_histogram[static_cast<unsigned>(o.degrade)] += 1;
  if (o.degrade == DegradeLevel::kNone) return;
  ++metrics.resilience.degraded;
  if (o.completed && o.degraded_failure)
    ++metrics.resilience.degraded_decode_failures;
}

/// Folds one outcome's per-stage durations into the stage histograms.
inline void account_stages(const SerialOutcome& o,
                           sim::SchedulerMetrics& metrics) {
  if (o.fft_ns >= 0) metrics.record_stage(obs::Stage::kFft, to_us(o.fft_ns));
  if (o.demod_ns >= 0)
    metrics.record_stage(obs::Stage::kDemod, to_us(o.demod_ns));
  if (o.decode_ns >= 0)
    metrics.record_stage(obs::Stage::kDecode, to_us(o.decode_ns));
}

/// Folds one outcome's decode-estimate accuracy into the metrics: the
/// estimate actually used vs the frozen static seed, each against the
/// executed decode time. Only decodes that ran to natural completion
/// count (a terminated decode's duration is deadline-truncated).
inline void account_decode_estimate(const SerialOutcome& o,
                                    const sim::SubframeWork& w,
                                    AdmissionPolicy admission,
                                    sim::SchedulerMetrics& metrics) {
  if (o.decode_ns < 0 || o.terminated || o.decode_est_ns < 0) return;
  metrics.record_decode_estimate(to_us(o.decode_est_ns),
                                 to_us(decode_admission_estimate(w, admission)),
                                 to_us(o.decode_ns));
}

}  // namespace rtopex::sched
