// Shared serial (non-migrating) execution of one subframe's stage chain,
// used by the partitioned and global policies.
#pragma once

#include "sched/scheduler.hpp"
#include "sim/workload.hpp"

namespace rtopex::sched {

struct SerialOutcome {
  TimePoint end = 0;       ///< when the core becomes free.
  bool miss = false;       ///< dropped or terminated (deadline miss).
  bool dropped = false;    ///< rejected by a slack check (no decode ran).
  bool terminated = false; ///< killed mid-execution at the deadline.
  bool completed = false;  ///< all stages ran to completion in time.
  /// Quality level the decode ran at (degradation enabled only).
  DegradeLevel degrade = DegradeLevel::kNone;
  /// Decodable subframe that NACKed *because* of the iteration cap.
  bool degraded_failure = false;
};

/// Runs FFT -> demod -> decode serially from `start`. `entry_penalty` models
/// extra per-dispatch cost (e.g. the global scheduler's cache-refill after a
/// basestation switch); it is charged before the FFT stage. With
/// `degrade.enabled`, a failed decode slack check shrinks the iteration cap
/// before dropping.
SerialOutcome execute_serial(const sim::SubframeWork& w, TimePoint start,
                             Duration entry_penalty = 0,
                             AdmissionPolicy admission = AdmissionPolicy::kWcet,
                             const DegradeConfig& degrade = {});

/// Folds one outcome's degradation fields into the metrics (histogram over
/// executed subframes; capped-decode NACKs counted apart from ordinary
/// decode failures).
inline void account_degrade(const SerialOutcome& o,
                            sim::SchedulerMetrics& metrics) {
  if (o.dropped) return;
  metrics.resilience.degrade_histogram[static_cast<unsigned>(o.degrade)] += 1;
  if (o.degrade == DegradeLevel::kNone) return;
  ++metrics.resilience.degraded;
  if (o.completed && o.degraded_failure)
    ++metrics.resilience.degraded_decode_failures;
}

}  // namespace rtopex::sched
