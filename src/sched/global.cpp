#include "sched/global.hpp"

#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "sched/serial_exec.hpp"

namespace rtopex::sched {
GlobalScheduler::GlobalScheduler(unsigned num_basestations,
                                 const GlobalConfig& cfg)
    : num_basestations_(num_basestations), config_(cfg) {
  if (num_basestations == 0 || cfg.num_cores == 0)
    throw std::invalid_argument("GlobalScheduler: empty configuration");
}

sim::SchedulerMetrics GlobalScheduler::run(
    std::span<const sim::SubframeWork> work) {
  sim::SchedulerMetrics metrics;
  metrics.per_bs.resize(num_basestations_);

  obs::Tracer* const tracer = config_.tracer;
  const auto filtered = filter_faulted(work, metrics, tracer);
  const std::span<const sim::SubframeWork> active =
      filtered ? std::span<const sim::SubframeWork>(*filtered) : work;

  // Pending queue keyed by the dispatch order (EDF: deadline; FIFO:
  // arrival), with the insertion sequence as tie-break.
  const bool edf = config_.order == DispatchOrder::kEdf;
  using Key = std::pair<TimePoint, std::size_t>;
  auto key_of = [&](const sim::SubframeWork& w, std::size_t seq) {
    return Key{edf ? w.deadline : w.arrival, seq};
  };
  std::set<std::pair<Key, const sim::SubframeWork*>> pending;

  std::vector<TimePoint> free_at(config_.num_cores, 0);
  std::vector<int> last_bs(config_.num_cores, -1);
  std::vector<bool> used(config_.num_cores, false);
  Rng pick_rng(config_.selection_seed);

  std::optional<model::OnlineEstimators> estimators =
      make_estimators(config_.adaptive, num_basestations_);
  model::OnlineEstimators* const adaptive =
      estimators ? &*estimators : nullptr;

  // Earliest-free core; among cores idle at the dispatch instant the choice
  // is uniform at random (no basestation affinity — see GlobalConfig).
  auto choose_core = [&](TimePoint head_arrival) {
    TimePoint earliest = free_at[0];
    for (const TimePoint f : free_at) earliest = std::min(earliest, f);
    const TimePoint t0 = std::max(earliest, head_arrival);
    std::vector<unsigned> idle;
    for (unsigned c = 0; c < config_.num_cores; ++c)
      if (free_at[c] <= t0) idle.push_back(c);
    if (idle.empty()) {
      // No core idle at t0 (t0 == earliest == unique min): take the argmin.
      unsigned best = 0;
      for (unsigned c = 1; c < config_.num_cores; ++c)
        if (free_at[c] < free_at[best]) best = c;
      return best;
    }
    return idle[pick_rng.uniform_int(idle.size())];
  };

  std::size_t next = 0;
  std::size_t seq = 0;
  while (next < active.size() || !pending.empty()) {
    if (pending.empty()) {
      pending.insert({key_of(active[next], seq++), &active[next]});
      ++next;
    }
    // The earliest-free core serves the queue head; any subframe arriving
    // before that service instant joins the EDF choice first.
    const TimePoint head_arrival = pending.begin()->second->arrival;
    const unsigned core_id = choose_core(head_arrival);
    const TimePoint t0 = std::max(free_at[core_id], head_arrival);
    while (next < active.size() && active[next].arrival <= t0) {
      pending.insert({key_of(active[next], seq++), &active[next]});
      ++next;
    }
    const sim::SubframeWork& w = *pending.begin()->second;
    pending.erase(pending.begin());

    if (w.bs >= num_basestations_)
      throw std::invalid_argument("run: basestation id out of range");

    const TimePoint start =
        std::max(free_at[core_id], w.arrival) + config_.dispatch_latency;
    if (used[core_id] && start > free_at[core_id]) {
      metrics.record_gap(to_us(start - free_at[core_id]),
                         config_.record_samples);
      RTOPEX_TRACE_EVENT(tracer, .ts = free_at[core_id], .core = core_id,
                         .kind = obs::EventKind::kGapBegin);
      RTOPEX_TRACE_EVENT(tracer, .ts = start, .core = core_id,
                         .kind = obs::EventKind::kGapEnd);
    }
    const Duration penalty =
        last_bs[core_id] == static_cast<int>(w.bs) ? 0 : config_.switch_penalty;

    RTOPEX_TRACE_EVENT(tracer, .ts = w.arrival, .bs = w.bs, .index = w.index,
                       .a = obs::clamp_payload_ns(w.deadline - w.arrival),
                       .b = obs::clamp_payload_ns(w.arrival - w.radio_time),
                       .core = core_id, .kind = obs::EventKind::kArrival);
    RTOPEX_TRACE_EVENT(tracer, .ts = start, .bs = w.bs, .index = w.index,
                       .core = core_id,
                       .kind = obs::EventKind::kSubframeBegin);
    const SerialOutcome o =
        execute_serial(w, start, penalty, config_.admission, config_.degrade,
                       tracer, core_id, adaptive);
    last_bs[core_id] = static_cast<int>(w.bs);
    used[core_id] = true;
    free_at[core_id] = o.end;
    RTOPEX_TRACE_EVENT(tracer, .ts = o.end, .bs = w.bs, .index = w.index,
                       .a = o.miss ? 1u : 0u, .b = o.executed_iterations,
                       .core = core_id,
                       .kind = obs::EventKind::kSubframeEnd);
    if (tracer) tracer->collect();
    if (config_.record_timeline)
      metrics.timeline.push_back({w.bs, w.index, core_id, start, o.end,
                                  o.miss, o.missed_stage, -1});

    ++metrics.total_subframes;
    ++metrics.per_bs[w.bs].subframes;
    account_degrade(o, metrics);
    account_stages(o, metrics);
    account_decode_estimate(o, w, config_.admission, metrics);
    if (o.miss) {
      ++metrics.deadline_misses;
      ++metrics.per_bs[w.bs].misses;
      if (o.dropped) ++metrics.dropped;
      if (o.terminated) ++metrics.terminated;
    } else {
      metrics.record_processing(w.bs, to_us(o.end - w.arrival),
                                config_.record_samples);
      if (!w.decodable) ++metrics.decode_failures;
    }
  }
  return metrics;
}

}  // namespace rtopex::sched
