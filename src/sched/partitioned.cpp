#include "sched/partitioned.hpp"

#include <stdexcept>
#include <vector>

#include "sched/serial_exec.hpp"

namespace rtopex::sched {

PartitionedScheduler::PartitionedScheduler(unsigned num_basestations,
                                           const PartitionedConfig& cfg)
    : num_basestations_(num_basestations), config_(cfg) {
  if (num_basestations == 0)
    throw std::invalid_argument("PartitionedScheduler: no basestations");
  if (cfg.rtt_half < 0 || cfg.rtt_half >= kEndToEndBudget)
    throw std::invalid_argument("PartitionedScheduler: invalid rtt_half");
  for (const auto& f : cfg.core_failures)
    if (f.core >= num_basestations * cfg.cores_per_bs())
      throw std::invalid_argument(
          "PartitionedScheduler: core_failure id out of range");
  for (const unsigned c : cfg.unprovisioned_cores)
    if (c >= num_basestations * cfg.cores_per_bs())
      throw std::invalid_argument(
          "PartitionedScheduler: unprovisioned core id out of range");
}

unsigned PartitionedScheduler::core_of(unsigned bs,
                                       std::uint32_t subframe_index) const {
  const unsigned c = config_.cores_per_bs();
  return bs * c + subframe_index % c;
}

sim::SchedulerMetrics PartitionedScheduler::run(
    std::span<const sim::SubframeWork> work) {
  sim::SchedulerMetrics metrics;
  metrics.per_bs.resize(num_basestations_);
  std::vector<TimePoint> free_at(num_cores(), 0);
  std::vector<bool> used(num_cores(), false);

  obs::Tracer* const tracer = config_.tracer;
  const auto filtered = filter_faulted(work, metrics, tracer);
  const std::span<const sim::SubframeWork> active =
      filtered ? std::span<const sim::SubframeWork>(*filtered) : work;

  std::optional<model::OnlineEstimators> estimators =
      make_estimators(config_.adaptive, num_basestations_);
  model::OnlineEstimators* const adaptive =
      estimators ? &*estimators : nullptr;

  // The offline partition plus the shared outage machinery (unprovisioned
  // slots fold onto real cores; failed cores repartition to survivors).
  std::vector<unsigned> assign(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i].bs >= num_basestations_)
      throw std::invalid_argument("run: basestation id out of range");
    assign[i] = core_of(active[i].bs, active[i].index);
  }
  apply_core_outages(active, assign, num_cores(), config_.core_failures,
                     config_.unprovisioned_cores, metrics, tracer);

  for (std::size_t wi = 0; wi < active.size(); ++wi) {
    const auto& w = active[wi];
    const unsigned core = assign[wi];
    const TimePoint start = std::max(w.arrival, free_at[core]);
    if (used[core] && start > free_at[core]) {
      metrics.record_gap(to_us(start - free_at[core]),
                         config_.record_samples);
      RTOPEX_TRACE_EVENT(tracer, .ts = free_at[core], .core = core,
                         .kind = obs::EventKind::kGapBegin);
      RTOPEX_TRACE_EVENT(tracer, .ts = start, .core = core,
                         .kind = obs::EventKind::kGapEnd);
    }
    RTOPEX_TRACE_EVENT(tracer, .ts = w.arrival, .bs = w.bs, .index = w.index,
                       .a = obs::clamp_payload_ns(w.deadline - w.arrival),
                       .b = obs::clamp_payload_ns(w.arrival - w.radio_time),
                       .core = core, .kind = obs::EventKind::kArrival);
    RTOPEX_TRACE_EVENT(tracer, .ts = start, .bs = w.bs, .index = w.index,
                       .core = core,
                       .kind = obs::EventKind::kSubframeBegin);

    const SerialOutcome o = execute_serial(w, start, 0, config_.admission,
                                           config_.degrade, tracer, core,
                                           adaptive);
    free_at[core] = o.end;
    used[core] = true;
    RTOPEX_TRACE_EVENT(tracer, .ts = o.end, .bs = w.bs, .index = w.index,
                       .a = o.miss ? 1u : 0u, .b = o.executed_iterations,
                       .core = core, .kind = obs::EventKind::kSubframeEnd);
    if (tracer) tracer->collect();
    if (config_.record_timeline)
      metrics.timeline.push_back({w.bs, w.index, core, start, o.end, o.miss,
                                  o.missed_stage, -1});

    ++metrics.total_subframes;
    ++metrics.per_bs[w.bs].subframes;
    account_degrade(o, metrics);
    account_stages(o, metrics);
    account_decode_estimate(o, w, config_.admission, metrics);
    if (o.miss) {
      ++metrics.deadline_misses;
      ++metrics.per_bs[w.bs].misses;
      if (o.dropped) ++metrics.dropped;
      if (o.terminated) ++metrics.terminated;
    } else {
      metrics.record_processing(w.bs, to_us(o.end - w.arrival),
                                config_.record_samples);
      if (!w.decodable) ++metrics.decode_failures;
    }
  }
  return metrics;
}

}  // namespace rtopex::sched
