// Algorithm 1 of the paper: the greedy subtask-migration planner.
//
// Given P equal-cost subtasks (t_p each), a per-subtask migration cost
// delta, and the free-time windows of candidate idle cores, decide how many
// subtasks to offload to each core such that:
//   R1  n_off <= floor(f_ck / (t_p + delta))      (fits in the core's window)
//   R2  S - n_off >= max_off                      (local keeps at least the
//                                                  largest migrated chunk)
//   R3  n_off <= floor(S / 2)                     (local keeps the majority)
// where S is the number of not-yet-migrated subtasks. The greedy loop stops
// when S <= 1 or candidates are exhausted.
#pragma once

#include <span>
#include <vector>

#include "common/time_types.hpp"

namespace rtopex::sched {

struct MigrationCandidate {
  unsigned core = 0;
  Duration free_window = 0;  ///< f_ck: predicted idle time from now.
};

struct MigrationChunk {
  unsigned core = 0;
  unsigned count = 0;  ///< subtasks migrated to this core.
};

struct MigrationPlan {
  std::vector<MigrationChunk> chunks;
  unsigned local_subtasks = 0;  ///< subtasks kept on the local core.

  unsigned migrated_total() const {
    unsigned n = 0;
    for (const auto& c : chunks) n += c.count;
    return n;
  }
};

/// Which of Algorithm 1's structural constraints to enforce. The defaults
/// are the paper's; the toggles exist for the ablation study (disabling
/// them lets the local core become the straggler-waiter the paper's rules
/// R2/R3 are designed to prevent).
struct MigrationConstraints {
  /// R2: the subtasks kept local must cover the largest migrated chunk.
  bool local_covers_largest_chunk = true;
  /// R3: at most floor(S/2) subtasks migrate per decision step.
  bool local_keeps_majority = true;
};

/// Runs Algorithm 1. Candidates are considered in the order given (callers
/// typically sort by descending window). `subtask_time` must be > 0.
MigrationPlan plan_migration(unsigned num_subtasks, Duration subtask_time,
                             Duration migration_cost,
                             std::span<const MigrationCandidate> candidates,
                             const MigrationConstraints& constraints = {});

}  // namespace rtopex::sched
