#include "sched/migration.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtopex::sched {

MigrationPlan plan_migration(unsigned num_subtasks, Duration subtask_time,
                             Duration migration_cost,
                             std::span<const MigrationCandidate> candidates,
                             const MigrationConstraints& constraints) {
  if (subtask_time <= 0)
    throw std::invalid_argument("plan_migration: subtask_time must be > 0");

  MigrationPlan plan;
  unsigned s = num_subtasks;   // S: subtasks not yet migrated
  unsigned max_off = 0;        // max migrated chunk so far
  for (const auto& cand : candidates) {
    if (s <= 1) break;
    const Duration per_subtask = subtask_time + migration_cost;
    const auto lim_off = static_cast<unsigned>(
        std::max<Duration>(0, cand.free_window / per_subtask));  // R1
    unsigned n_off = std::min(lim_off, s);
    if (constraints.local_covers_largest_chunk)                  // R2
      n_off = std::min(n_off, s - max_off);
    if (constraints.local_keeps_majority)                        // R3
      n_off = std::min(n_off, s / 2);
    if (n_off == 0) continue;
    plan.chunks.push_back({cand.core, n_off});
    max_off = std::max(max_off, n_off);
    s -= n_off;
  }
  plan.local_subtasks = s;
  return plan;
}

}  // namespace rtopex::sched
