// RT-OPEX (paper §3.2): partitioned scheduling underneath, plus
// opportunistic runtime migration of parallelizable subtasks (FFT and turbo
// code blocks) into the idle gaps of other cores, planned by Algorithm 1
// and guarded by the recovery path.
//
// Semantics implemented (faithful to the paper's state machine, Fig. 12):
//  * Migration decisions use the *predicted* preemption time of each idle
//    core (the nominal arrival of its next partitioned subframe); actual
//    arrivals can differ (transport jitter), in which case the migrated
//    subtask is preempted and its result flag stays "not ready".
//  * When the local core finishes its local subtasks, any migrated subtask
//    without a ready result is recomputed locally (recovery) — the local
//    core never waits on a remote, so RT-OPEX is never slower than the
//    no-migration baseline (the paper's key guarantee).
//  * A migrated chunk pays the migration cost delta once on arrival at the
//    remote core (shared-memory state fetch, Fig. 18 ~20 us), while
//    Algorithm 1 budgets delta per subtask as printed in the paper —
//    planning is therefore slightly conservative.
#pragma once

#include "obs/tracer.hpp"
#include "sched/failover.hpp"
#include "sched/migration.hpp"
#include "sched/scheduler.hpp"

namespace rtopex::sched {

struct RtOpexConfig {
  /// Budgeted one-way transport delay: sets Tmax, the partitioned core
  /// count, and the predicted preemption times.
  Duration rtt_half = microseconds(500);
  /// Per-chunk migration cost delta (paper Fig. 18: ~20 us).
  Duration migration_cost = microseconds(20);
  /// Slack-check prediction for the decode task (paper: WCET). Under kWcet
  /// the check runs *after* migration planning, against the post-migration
  /// local worst case — which is exactly how RT-OPEX admits (and saves)
  /// high-MCS subframes the partitioned scheduler must drop.
  AdmissionPolicy admission = AdmissionPolicy::kWcet;
  bool migrate_fft = true;
  bool migrate_decode = true;
  /// Algorithm 1 constraint toggles (ablation; defaults are the paper's).
  MigrationConstraints constraints;
  /// Ablation: with recovery disabled, a preempted migrated subtask makes
  /// the subframe unrecoverable (counted as a miss).
  bool enable_recovery = true;
  /// Populate SchedulerMetrics::timeline (costs memory on big runs).
  bool record_timeline = false;
  /// Graceful degradation: when the post-migration WCET slack check fails,
  /// fall back to a serial decode with the iteration cap shrunk before
  /// dropping the subframe.
  DegradeConfig degrade;
  /// Online adaptive estimation: Algorithm-1 migration chunks sized with
  /// the learned per-code-block decode time (EWMA over executed subtask
  /// durations) instead of the fixed WCET constant, and the post-migration
  /// admission estimate built from it (off: static WCET seeds).
  AdaptiveConfig adaptive;
  /// Injected fail-stop core failures: from `at` onward the core takes no
  /// new subframes (its slots are repartitioned round-robin across the
  /// survivors, mirroring the runtime watchdog) and it is never a migration
  /// target. A subframe already started finishes — failure is detected
  /// between jobs, like the runtime's kill semantics.
  using CoreFailure = sched::CoreFailure;
  std::vector<CoreFailure> core_failures;
  /// Core slots present in the offline partition but never backed by a
  /// physical core: their subframes fold onto the provisioned cores from
  /// t = 0 (round-robin, silent — no failover accounting) and they are
  /// never migration targets. The cluster layer re-homes a dead node's
  /// basestations through this without granting the survivor extra
  /// capacity; see sched/failover.hpp.
  std::vector<unsigned> unprovisioned_cores;
  /// Fill the raw gap_us / processing_time_us sample vectors in addition to
  /// the bounded histograms (costs memory on big runs).
  bool record_samples = false;
  /// Optional trace sink: virtual-time-stamped events on track = core id
  /// (offloads carry flow metadata; host spans land on the remote track).
  /// Needs at least num_cores() tracks; drained once per subframe.
  obs::Tracer* tracer = nullptr;

  unsigned cores_per_bs() const {
    const Duration tmax = kEndToEndBudget - rtt_half;
    return static_cast<unsigned>((tmax + kSubframePeriod - 1) /
                                 kSubframePeriod);
  }
};

class RtOpexScheduler final : public NodeScheduler {
 public:
  RtOpexScheduler(unsigned num_basestations, const RtOpexConfig& cfg);

  sim::SchedulerMetrics run(std::span<const sim::SubframeWork> work) override;

  unsigned num_cores() const override {
    return num_basestations_ * config_.cores_per_bs();
  }
  const char* name() const override { return "rt-opex"; }

  unsigned core_of(unsigned bs, std::uint32_t subframe_index) const;

 private:
  unsigned num_basestations_;
  RtOpexConfig config_;
};

}  // namespace rtopex::sched
