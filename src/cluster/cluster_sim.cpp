// ClusterSim: the failure-aware control plane (placement, heartbeat
// detection, re-homing, shedding, rebalancing) runs as a deterministic
// pre-pass over the arrival-sorted cluster workload, deciding every
// subframe's disposition — dispatch to a node, shed at ingress, or lost in
// a dead node's detection window. Each node then runs its slice through an
// unchanged per-node scheduler in shared virtual time (timestamps are
// cluster-global), and the per-node traces merge back into one store with
// disjoint track ranges and global basestation ids.
//
// Failure semantics mirror PR-2 one level up: a subframe that arrived
// before the fail instant is processed (failure is detected between jobs,
// like the runtime watchdog's kill semantics); arrivals inside the
// detection window are lost-and-attributed; arrivals after detection follow
// the basestation to its re-homed survivor, which hosts them on
// unprovisioned core slots (sched/failover.hpp) so the survivor's own
// capacity absorbs the extra load.
#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "model/online_fit.hpp"
#include "obs/analysis/replay.hpp"
#include "phy/lte_params.hpp"
#include "sched/failover.hpp"
#include "sim/metrics.hpp"

namespace rtopex::cluster {

namespace {

/// One validated, deduplicated node failure with its detection instant.
struct FailureEvent {
  unsigned node = 0;
  TimePoint at = 0;
  TimePoint detected_at = 0;
};

/// What the control pass decided for one node.
struct NodePlan {
  std::vector<unsigned> residents;       ///< global bs ids, ascending.
  std::vector<unsigned> local_to_global; ///< residents, then adopted.
  std::vector<sim::SubframeWork> slice;  ///< local-bs workload.
  TimePoint failed_at = -1;
  TimePoint detected_at = -1;
};

/// Recovery bookkeeping for one detected failure.
struct RehomeRecord {
  FailureEvent failure;
  /// (global bs, new node) pairs re-homed at detection.
  std::vector<std::pair<unsigned, unsigned>> moves;
};

}  // namespace

unsigned ClusterSim::cores_per_bs() const {
  const Duration tmax = kEndToEndBudget - node_config_.rtt_half;
  return static_cast<unsigned>((tmax + kSubframePeriod - 1) /
                               kSubframePeriod);
}

ClusterSim::ClusterSim(const core::ExperimentConfig& node_config,
                       const ClusterConfig& cluster_config)
    : node_config_(node_config),
      cluster_(cluster_config),
      num_bs_(node_config.workload.num_basestations) {
  if (cluster_.num_nodes == 0)
    throw std::invalid_argument("ClusterConfig: zero nodes");
  if (num_bs_ == 0)
    throw std::invalid_argument(
        "ClusterConfig: no basestations to place (empty placement)");
  if (!cluster_.explicit_placement.empty()) {
    if (cluster_.explicit_placement.size() != num_bs_)
      throw std::invalid_argument(
          "ClusterConfig: explicit placement must cover every basestation");
    for (const unsigned n : cluster_.explicit_placement)
      if (n >= cluster_.num_nodes)
        throw std::invalid_argument(
            "ClusterConfig: explicit placement names an invalid node");
  }
  if (cluster_.heartbeat_period <= 0)
    throw std::invalid_argument("ClusterConfig: heartbeat period must be > 0");
  if (cluster_.detection_timeout <= 0)
    throw std::invalid_argument(
        "ClusterConfig: detection timeout must be > 0");
  if (cluster_.heartbeat_period >= cluster_.detection_timeout)
    throw std::invalid_argument(
        "ClusterConfig: heartbeat period must be shorter than the detection "
        "timeout");
  if (!(cluster_.shed_threshold > 0.0 && cluster_.shed_threshold <= 1.0))
    throw std::invalid_argument(
        "ClusterConfig: shed threshold outside (0, 1]");
  for (const NodeFailure& f : cluster_.failures) {
    if (f.node >= cluster_.num_nodes)
      throw std::invalid_argument(
          "ClusterConfig: failure names an invalid node");
    if (f.at < 0)
      throw std::invalid_argument(
          "ClusterConfig: failure instant must be >= 0");
  }
  if (cluster_.rebalance_enabled) {
    if (cluster_.rebalance_period <= 0)
      throw std::invalid_argument(
          "ClusterConfig: rebalance period must be > 0");
    if (!(cluster_.hotspot_utilization > 0.0 &&
          cluster_.hotspot_utilization <= 1.0))
      throw std::invalid_argument(
          "ClusterConfig: hotspot utilization outside (0, 1]");
  }
  if (!(cluster_.load_alpha > 0.0 && cluster_.load_alpha <= 1.0))
    throw std::invalid_argument("ClusterConfig: load alpha outside (0, 1]");
  if (cluster_.health.enabled) cluster_.health.validate();
}

ClusterResult ClusterSim::run() {
  const auto work = core::make_workload(node_config_);
  return run(work);
}

ClusterResult ClusterSim::run(std::span<const sim::SubframeWork> work) {
  const unsigned M = cluster_.num_nodes;
  const unsigned cpb = cores_per_bs();
  // Health needs the event stream, so enabling it implies tracing.
  const bool tracing = cluster_.trace.enabled || cluster_.health.enabled;

  ClusterResult result;
  result.placement = make_placement(cluster_, num_bs_, work);
  ClusterMetrics& agg = result.metrics;
  agg.offered = work.size();

  // --- Control-plane state -------------------------------------------------
  std::vector<NodePlan> plans(M);
  for (unsigned bs = 0; bs < num_bs_; ++bs)
    plans[result.placement[bs]].residents.push_back(bs);
  std::vector<std::vector<int>> local_id(M, std::vector<int>(num_bs_, -1));
  for (unsigned n = 0; n < M; ++n) {
    plans[n].local_to_global = plans[n].residents;
    for (unsigned i = 0; i < plans[n].residents.size(); ++i)
      local_id[n][plans[n].residents[i]] = static_cast<int>(i);
  }
  // Fixed provisioned capacity per node: its residents' cores. Adopted
  // basestations ride unprovisioned slots and never add capacity.
  auto capacity_ns = [&](unsigned n) {
    return static_cast<Duration>(plans[n].residents.size()) * cpb *
           kSubframePeriod;
  };

  std::vector<unsigned> home = result.placement;
  std::vector<TimePoint> rehome_time(num_bs_, -1);
  std::vector<unsigned> rehome_from(num_bs_, 0);
  std::vector<bool> declared_dead(M, false);
  std::vector<TimePoint> fail_at(M, -1);

  // First failure per node wins; detection at the first heartbeat check at
  // or after at + detection_timeout.
  std::vector<FailureEvent> detections;
  for (const NodeFailure& f : cluster_.failures) {
    if (fail_at[f.node] >= 0 && fail_at[f.node] <= f.at) continue;
    fail_at[f.node] = f.at;
  }
  for (unsigned n = 0; n < M; ++n) {
    if (fail_at[n] < 0) continue;
    plans[n].failed_at = fail_at[n];
    const TimePoint earliest = fail_at[n] + cluster_.detection_timeout;
    const TimePoint detected =
        ((earliest + cluster_.heartbeat_period - 1) /
         cluster_.heartbeat_period) *
        cluster_.heartbeat_period;
    detections.push_back({n, fail_at[n], detected});
  }
  std::sort(detections.begin(), detections.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              if (a.detected_at != b.detected_at)
                return a.detected_at < b.detected_at;
              return a.node < b.node;
            });

  // Demand estimators (the PR-6 online headroom hook): per-tick WCET demand
  // EWMAs per node and per basestation.
  std::vector<model::DurationEwma> node_ewma(
      M, model::DurationEwma(cluster_.load_alpha));
  std::vector<model::DurationEwma> bs_ewma(
      num_bs_, model::DurationEwma(cluster_.load_alpha));

  // Cluster-track events, assembled by hand (the control plane is the
  // single-threaded sweep; track id is remapped at merge time).
  std::vector<obs::TraceEvent> control;
  auto control_emit = [&](obs::TraceEvent ev) {
    if (tracing) control.push_back(ev);
  };

  std::vector<RehomeRecord> rehomes;
  std::size_t detection_next = 0;
  std::size_t rr = 0;  // round-robin cursor across survivors (PR-2 style).
  TimePoint next_rebalance =
      cluster_.rebalance_enabled ? cluster_.rebalance_period : -1;

  // Survivor eligibility: believed alive and with real (resident) cores.
  auto eligible_target = [&](unsigned n) {
    return !declared_dead[n] && !plans[n].residents.empty();
  };

  auto adopt = [&](unsigned n, unsigned bs) {
    if (local_id[n][bs] >= 0) return;
    local_id[n][bs] = static_cast<int>(plans[n].local_to_global.size());
    plans[n].local_to_global.push_back(bs);
  };

  auto process_detection = [&](const FailureEvent& ev) {
    declared_dead[ev.node] = true;
    plans[ev.node].detected_at = ev.detected_at;
    ++agg.node_failovers;
    ++agg.resilience.failovers;
    ++agg.resilience.repartitions;
    control_emit({.ts = ev.detected_at, .a = ev.node,
                  .kind = obs::EventKind::kWatchdogFire});
    std::vector<unsigned> survivors;
    for (unsigned n = 0; n < M; ++n)
      if (eligible_target(n)) survivors.push_back(n);
    RehomeRecord record{ev, {}};
    if (!survivors.empty()) {
      for (unsigned bs = 0; bs < num_bs_; ++bs) {
        if (home[bs] != ev.node) continue;
        const unsigned target = survivors[rr++ % survivors.size()];
        home[bs] = target;
        rehome_time[bs] = ev.detected_at;
        rehome_from[bs] = ev.node;
        ++agg.rehomed_basestations;
        record.moves.emplace_back(bs, target);
      }
    }
    rehomes.push_back(std::move(record));
  };

  auto process_rebalance = [&](TimePoint now) {
    // Hottest vs coolest believed-alive node by estimated utilization.
    int hot = -1, cool = -1;
    double hot_util = 0.0, cool_util = 0.0;
    for (unsigned n = 0; n < M; ++n) {
      if (!eligible_target(n)) continue;
      const Duration cap = capacity_ns(n);
      if (cap <= 0) continue;
      const double util =
          static_cast<double>(node_ewma[n].value_or(0)) /
          static_cast<double>(cap);
      if (hot < 0 || util > hot_util) { hot = static_cast<int>(n); hot_util = util; }
      if (cool < 0 || util < cool_util) { cool = static_cast<int>(n); cool_util = util; }
    }
    if (hot < 0 || cool < 0 || hot == cool) return;
    if (hot_util <= cluster_.hotspot_utilization) return;
    // Largest-demand basestation on the hot node whose move strictly
    // improves the imbalance: its share of the cool node's capacity must
    // stay under the utilization gap, or the move merely relocates the
    // hotspot (and would ping-pong back next period).
    const double gap = hot_util - cool_util;
    const double cool_cap = static_cast<double>(
        capacity_ns(static_cast<unsigned>(cool)));
    int victim = -1;
    Duration victim_demand = 0;
    for (unsigned bs = 0; bs < num_bs_; ++bs) {
      if (home[bs] != static_cast<unsigned>(hot)) continue;
      const Duration d = bs_ewma[bs].value_or(0);
      if (static_cast<double>(d) / cool_cap >= gap) continue;
      if (victim < 0 || d > victim_demand) {
        victim = static_cast<int>(bs);
        victim_demand = d;
      }
    }
    if (victim < 0) return;
    home[victim] = static_cast<unsigned>(cool);
    ++agg.rebalance_moves;
    (void)now;
  };

  // --- Tick sweep ----------------------------------------------------------
  // Group the workload by radio tick (phase-aligned basestations: one
  // subframe per basestation per tick), preserving arrival order within a
  // tick. Control events apply on tick boundaries.
  std::map<TimePoint, std::vector<std::size_t>> ticks;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (work[i].bs >= num_bs_)
      throw std::invalid_argument("ClusterSim: basestation id out of range");
    ticks[work[i].radio_time].push_back(i);
  }

  std::vector<Duration> node_tick_demand(M, 0);
  for (const auto& [tick_time, members] : ticks) {
    while (detection_next < detections.size() &&
           detections[detection_next].detected_at <= tick_time)
      process_detection(detections[detection_next++]);
    while (next_rebalance >= 0 && next_rebalance <= tick_time) {
      process_rebalance(next_rebalance);
      next_rebalance += cluster_.rebalance_period;
    }

    // Ingress admission control: shed the largest WCET jobs while the
    // tick's aggregate demand exceeds the believed surviving capacity.
    std::vector<bool> shed_here(members.size(), false);
    if (cluster_.shed_enabled) {
      Duration demand = 0;
      for (const std::size_t i : members)
        if (!work[i].lost) demand += work[i].wcet.total();
      Duration believed_capacity = 0;
      for (unsigned n = 0; n < M; ++n)
        if (!declared_dead[n]) believed_capacity += capacity_ns(n);
      const Duration limit = static_cast<Duration>(
          cluster_.shed_threshold * static_cast<double>(believed_capacity));
      if (demand > limit) {
        std::vector<std::size_t> order(members.size());
        for (std::size_t k = 0; k < members.size(); ++k) order[k] = k;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    const sim::SubframeWork& wa = work[members[a]];
                    const sim::SubframeWork& wb = work[members[b]];
                    if (wa.wcet.total() != wb.wcet.total())
                      return wa.wcet.total() > wb.wcet.total();
                    if (wa.bs != wb.bs) return wa.bs < wb.bs;
                    return wa.index < wb.index;
                  });
        for (const std::size_t k : order) {
          if (demand <= limit) break;
          const sim::SubframeWork& w = work[members[k]];
          if (w.lost) continue;
          shed_here[k] = true;
          demand -= w.wcet.total();
          ++agg.shed;
          control_emit({.ts = w.arrival, .bs = w.bs, .index = w.index,
                        .a = obs::clamp_payload_ns(w.deadline - w.arrival),
                        .b = obs::clamp_payload_ns(w.arrival - w.radio_time),
                        .kind = obs::EventKind::kShed});
        }
      }
    }

    // Dispatch the remainder and feed the demand estimators.
    std::fill(node_tick_demand.begin(), node_tick_demand.end(), 0);
    for (std::size_t k = 0; k < members.size(); ++k) {
      const sim::SubframeWork& w = work[members[k]];
      if (!w.lost) bs_ewma[w.bs].observe(w.wcet.total());
      if (shed_here[k]) continue;
      const unsigned n = home[w.bs];
      if (fail_at[n] >= 0 && w.arrival >= fail_at[n]) {
        // The home node is dead and the basestation has not (yet) been
        // re-homed: the subframe lands on a silent node and is lost —
        // attributed, not hidden.
        ++agg.lost;
        ++agg.failure_lost;
        ++agg.resilience.lost_subframes;
        control_emit({.ts = w.radio_time, .bs = w.bs, .index = w.index,
                      .a = 1, .kind = obs::EventKind::kLost});
        continue;
      }
      node_tick_demand[n] += w.wcet.total();
      adopt(n, w.bs);
      sim::SubframeWork local = w;
      local.bs = static_cast<unsigned>(local_id[n][w.bs]);
      plans[n].slice.push_back(local);
      ++agg.dispatched;
      if (rehome_time[w.bs] >= 0) {
        ++agg.rehomed_subframes;
        control_emit({.ts = w.arrival, .bs = w.bs, .index = w.index,
                      .a = n, .b = rehome_from[w.bs],
                      .kind = obs::EventKind::kRehome});
        // In-flight at re-homing time: the orphan sat in the dead node's
        // queue and was requeued on the survivor, PR-2's requeue semantics
        // one level up.
        if (w.radio_time < rehome_time[w.bs] &&
            w.arrival >= rehome_time[w.bs])
          ++agg.resilience.requeued_jobs;
      }
    }
    for (unsigned n = 0; n < M; ++n)
      if (!plans[n].residents.empty() && !declared_dead[n])
        node_ewma[n].observe(node_tick_demand[n]);
  }

  // --- Per-node scheduler runs --------------------------------------------
  const bool need_timeline = !detections.empty();
  sched::AdaptiveConfig adaptive = node_config_.adaptive;
  adaptive.num_antennas = node_config_.workload.num_antennas;
  adaptive.num_prb =
      phy::bandwidth_config(node_config_.workload.bandwidth).num_prb;
  adaptive.max_iterations = node_config_.workload.max_iterations;

  std::vector<std::unique_ptr<obs::Tracer>> tracers(M);
  std::vector<std::unique_ptr<sched::NodeScheduler>> schedulers(M);
  std::vector<unsigned> track_offset(M, 0);
  unsigned total_tracks = 0;
  for (unsigned n = 0; n < M; ++n) {
    NodePlan& plan = plans[n];
    const unsigned hosted =
        static_cast<unsigned>(plan.local_to_global.size());
    if (hosted == 0) continue;
    // Sort each slice back into arrival order (ticks can interleave when
    // per-basestation transport delays differ by more than a period).
    std::stable_sort(plan.slice.begin(), plan.slice.end(),
                     [](const sim::SubframeWork& a,
                        const sim::SubframeWork& b) {
                       return a.arrival < b.arrival;
                     });
    const unsigned residents =
        static_cast<unsigned>(plan.residents.size());
    std::vector<unsigned> unprovisioned;
    for (unsigned c = residents * cpb; c < hosted * cpb; ++c)
      unprovisioned.push_back(c);
    // Adopted basestations extend the partition table (phantom slots) on
    // the partitioned-style schedulers; the global scheduler just shares
    // its queue, so its core count stays the provisioned one either way.
    const unsigned node_cores =
        node_config_.scheduler == core::SchedulerKind::kGlobal
            ? residents * cpb
            : hosted * cpb;
    if (tracing)
      tracers[n] = std::make_unique<obs::Tracer>(
          node_cores, cluster_.trace.ring_capacity,
          cluster_.trace.max_stored_events);
    switch (node_config_.scheduler) {
      case core::SchedulerKind::kPartitioned: {
        sched::PartitionedConfig pc;
        pc.rtt_half = node_config_.rtt_half;
        pc.degrade = node_config_.degrade;
        pc.adaptive = adaptive;
        pc.record_samples = node_config_.record_samples;
        pc.record_timeline = need_timeline;
        pc.unprovisioned_cores = std::move(unprovisioned);
        pc.tracer = tracers[n].get();
        schedulers[n] =
            std::make_unique<sched::PartitionedScheduler>(hosted, pc);
        break;
      }
      case core::SchedulerKind::kGlobal: {
        sched::GlobalConfig gc = node_config_.global;
        gc.num_cores = residents * cpb;
        gc.degrade = node_config_.degrade;
        gc.adaptive = adaptive;
        gc.record_samples = node_config_.record_samples;
        gc.record_timeline = gc.record_timeline || need_timeline;
        gc.tracer = tracers[n].get();
        schedulers[n] = std::make_unique<sched::GlobalScheduler>(hosted, gc);
        break;
      }
      case core::SchedulerKind::kRtOpex: {
        sched::RtOpexConfig rc = node_config_.rtopex;
        rc.rtt_half = node_config_.rtt_half;
        rc.degrade = node_config_.degrade;
        rc.adaptive = adaptive;
        rc.record_samples = node_config_.record_samples;
        rc.record_timeline = rc.record_timeline || need_timeline;
        // Whole-node failures are the cluster's job; per-core failure
        // injection does not compose across nodes.
        rc.core_failures.clear();
        rc.unprovisioned_cores = std::move(unprovisioned);
        rc.tracer = tracers[n].get();
        schedulers[n] = std::make_unique<sched::RtOpexScheduler>(hosted, rc);
        break;
      }
    }
    track_offset[n] = total_tracks;
    total_tracks += schedulers[n]->num_cores();
    result.node_tracks.push_back(
        {n, track_offset[n], schedulers[n]->num_cores()});
  }
  result.cluster_track = total_tracks;
  result.health_track =
      cluster_.health.enabled ? total_tracks + 1 : total_tracks;
  result.total_tracks = total_tracks + (cluster_.health.enabled ? 2 : 1);

  agg.nodes.reserve(M);
  for (unsigned n = 0; n < M; ++n) {
    NodeReport report;
    report.node = n;
    report.resident_basestations =
        static_cast<unsigned>(plans[n].residents.size());
    report.hosted_basestations =
        static_cast<unsigned>(plans[n].local_to_global.size());
    report.failed_at = plans[n].failed_at;
    report.detected_at = plans[n].detected_at;
    if (schedulers[n]) {
      sched::NodeScheduler& node = *schedulers[n];
      report.scheduler_name = node.name();
      report.num_cores = report.resident_basestations * cpb;
      result.scheduler_name = node.name();
      report.metrics = node.run(plans[n].slice);
    }
    agg.nodes.push_back(std::move(report));
  }

  // --- Rollup + conservation ----------------------------------------------
  for (const NodeReport& nr : agg.nodes) {
    const sim::SchedulerMetrics& m = nr.metrics;
    agg.processed += m.total_subframes - m.deadline_misses -
                     m.resilience.lost_subframes;
    agg.deadline_misses += m.deadline_misses;
    agg.dropped += m.dropped;
    agg.terminated += m.terminated;
    agg.late += m.resilience.late_arrivals;
    agg.lost += m.resilience.lost_subframes;
    agg.resilience.failovers += m.resilience.failovers;
    agg.resilience.repartitions += m.resilience.repartitions;
    agg.resilience.requeued_jobs += m.resilience.requeued_jobs;
    agg.resilience.lost_subframes += m.resilience.lost_subframes;
    agg.resilience.late_arrivals += m.resilience.late_arrivals;
    agg.resilience.degraded += m.resilience.degraded;
    agg.resilience.degraded_decode_failures +=
        m.resilience.degraded_decode_failures;
    agg.resilience.flag_timeouts += m.resilience.flag_timeouts;
    for (std::size_t i = 0; i < kNumDegradeLevels; ++i)
      agg.resilience.degrade_histogram[i] +=
          m.resilience.degrade_histogram[i];
  }
  // Shed subframes are deadline misses of the dropped flavour at cluster
  // scope (classified, never blocking).
  agg.deadline_misses += agg.shed;
  agg.dropped += agg.shed;

  // --- Recovery-time histogram --------------------------------------------
  if (!rehomes.empty()) {
    TimePoint horizon_end = 0;
    for (const sim::SubframeWork& w : work)
      horizon_end = std::max(horizon_end, w.deadline);
    for (const RehomeRecord& record : rehomes) {
      TimePoint recovered_at = record.failure.detected_at;
      for (const auto& [bs, node] : record.moves) {
        const int local = local_id[node][bs];
        TimePoint first_ok = -1;
        if (local >= 0) {
          for (const sim::SchedulerMetrics::TimelineEntry& e :
               agg.nodes[node].metrics.timeline) {
            if (e.bs != static_cast<unsigned>(local) || e.missed) continue;
            if (e.start < record.failure.detected_at) continue;
            first_ok = e.end;
            break;
          }
        }
        recovered_at =
            std::max(recovered_at, first_ok >= 0 ? first_ok : horizon_end);
      }
      agg.recovery_ms.add(to_ms(recovered_at - record.failure.at));
    }
  }

  // --- Trace merge ---------------------------------------------------------
  if (tracing) {
    obs::TraceStore merged;
    for (unsigned n = 0; n < M; ++n) {
      if (!tracers[n]) continue;
      obs::TraceStore store = tracers[n]->take();
      merged.ring_drops += store.ring_drops;
      merged.store_drops += store.store_drops;
      for (obs::TraceEvent ev : store.events) {
        const bool global_kind = ev.kind == obs::EventKind::kGapBegin ||
                                 ev.kind == obs::EventKind::kGapEnd ||
                                 ev.kind == obs::EventKind::kWatchdogFire;
        if (!global_kind)
          ev.bs = plans[n].local_to_global[ev.bs];
        // Core-valued payloads move with the track remap.
        if (ev.kind == obs::EventKind::kOffload ||
            ev.kind == obs::EventKind::kHostBegin ||
            ev.kind == obs::EventKind::kHostEnd ||
            ev.kind == obs::EventKind::kWatchdogFire)
          ev.a += track_offset[n];
        ev.core += track_offset[n];
        merged.events.push_back(ev);
      }
    }
    for (obs::TraceEvent ev : control) {
      ev.core = result.cluster_track;
      merged.events.push_back(ev);
    }
    // Workload capture on the cluster track so rtopex_analyze's replay
    // path works on merged traces ("what if one big node?").
    obs::Tracer capture(1, cluster_.trace.ring_capacity,
                        cluster_.trace.max_stored_events);
    obs::analysis::capture_workload(capture, work, 0);
    obs::TraceStore captured = capture.take();
    merged.ring_drops += captured.ring_drops;
    merged.store_drops += captured.store_drops;
    for (obs::TraceEvent ev : captured.events) {
      ev.core = result.cluster_track;
      merged.events.push_back(ev);
    }
    result.trace = std::move(merged);

    // --- Health scan over the merged trace --------------------------------
    if (cluster_.health.enabled) {
      obs::health::Topology topo;
      topo.num_nodes = M;
      topo.num_basestations = num_bs_;
      // Utilization denominator is the *provisioned* capacity (residents'
      // cores); phantom slots for adopted basestations carry busy time but
      // no capacity, so an overloaded survivor reads util > 1.
      topo.node_cores.assign(M, 0);
      for (unsigned n = 0; n < M; ++n)
        topo.node_cores[n] =
            static_cast<unsigned>(plans[n].residents.size()) * cpb;
      topo.track_to_node.assign(result.cluster_track, 0);
      for (const ClusterResult::NodeTracks& nt : result.node_tracks)
        for (unsigned t = 0; t < nt.num_tracks; ++t)
          topo.track_to_node[nt.first_track + t] = nt.node;
      // Control-track events (failure_lost, shed) attribute via the
      // *initial* placement: losses in a detection window belong to the
      // node that died, not to the basestation's eventual new home.
      topo.bs_to_node = result.placement;

      const std::unique_ptr<obs::health::HealthMonitor> monitor =
          obs::health::scan_store(result.trace, cluster_.health, topo);
      for (obs::TraceEvent ev : monitor->alert_events()) {
        ev.core = result.health_track;
        result.trace.events.push_back(ev);
      }
      result.alerts = monitor->alerts();
      result.health = monitor->snapshot();
      result.health_history = monitor->history();
    }
  }
  return result;
}

void fill_registry(const ClusterMetrics& metrics, const std::string& scheduler,
                   obs::MetricsRegistry& registry) {
  auto counter = [&](const char* name, const char* help, std::size_t value) {
    registry.add_counter(name, help, static_cast<double>(value),
                         {{"scheduler", scheduler}});
  };
  counter("rtopex_cluster_offered_total", "Subframes offered to the cluster.",
          metrics.offered);
  counter("rtopex_cluster_dispatched_total",
          "Subframes dispatched to a node scheduler.", metrics.dispatched);
  counter("rtopex_cluster_shed_total",
          "Subframes shed at ingress by admission control.", metrics.shed);
  counter("rtopex_cluster_failure_lost_total",
          "Subframes lost in a dead node's detection window.",
          metrics.failure_lost);
  counter("rtopex_cluster_node_failovers_total",
          "Nodes declared dead by the cluster watchdog.",
          metrics.node_failovers);
  counter("rtopex_cluster_rehomed_basestations_total",
          "Basestations re-homed off dead nodes.",
          metrics.rehomed_basestations);
  counter("rtopex_cluster_rehomed_subframes_total",
          "Subframes dispatched to a re-homed basestation's new node.",
          metrics.rehomed_subframes);
  counter("rtopex_cluster_rebalance_moves_total",
          "Hotspot rebalancing moves.", metrics.rebalance_moves);
  counter("rtopex_cluster_misses_total", "Cluster-wide deadline misses.",
          metrics.deadline_misses);
  counter("rtopex_cluster_processed_total",
          "Subframes completed in time across all nodes.", metrics.processed);
  registry.add_histogram("rtopex_cluster_recovery_ms",
                         "Per-failure recovery time: fail instant until every "
                         "re-homed basestation completed on its new node (ms).",
                         metrics.recovery_ms, {{"scheduler", scheduler}});
}

void fill_federated_registry(const ClusterResult& result,
                             obs::MetricsRegistry& registry) {
  // Cluster control-plane rollup.
  fill_registry(result.metrics, result.scheduler_name, registry);

  // Fleet-wide latency/gap distributions: every node's histogram merged
  // into one (identical default layouts, so merge() never throws here).
  obs::Histogram fleet_processing, fleet_gap;
  for (const NodeReport& nr : result.metrics.nodes) {
    fleet_processing.merge(nr.metrics.processing_us_hist);
    fleet_gap.merge(nr.metrics.gap_us_hist);
  }
  registry.add_histogram(
      "rtopex_fleet_processing_time_us",
      "Per-subframe processing time across every node (us).", fleet_processing,
      {{"scheduler", result.scheduler_name}});
  registry.add_histogram("rtopex_fleet_gap_us",
                         "Idle-gap durations across every node (us).",
                         fleet_gap, {{"scheduler", result.scheduler_name}});

  // Health series (only meaningful when the run had health enabled — the
  // snapshot carries per-node rows then).
  if (!result.health.nodes.empty())
    obs::health::fill_registry(result.health, result.alerts, registry);

  // Every node's full sim series, kept distinct by a node="N" label.
  for (const NodeReport& nr : result.metrics.nodes) {
    obs::MetricsRegistry node_registry;
    sim::fill_registry(nr.metrics, nr.scheduler_name, node_registry);
    registry.merge(node_registry, {{"node", std::to_string(nr.node)}});
  }
}

}  // namespace rtopex::cluster
