// Cluster-scale C-RAN sharding (ROADMAP item 1): a ClusterSim shards N
// basestations across M simulated compute nodes — each an unchanged
// per-node scheduler (Partitioned / Global / RT-OPEX) running in shared
// virtual time — under a failure-aware control plane:
//
//  * Placement: static hash, load-aware (greedy LPT on measured mean
//    per-subframe cost) or headroom-aware (greedy LPT on the WCET demand a
//    scheduler can actually admit against), plus an explicit override.
//  * Node failure: a dead node stops processing at its fail instant; the
//    control plane detects the death at the first heartbeat check past the
//    detection timeout. Subframes arriving in the detection window are
//    *lost and attributed* (failure_lost), never silently dropped. On
//    detection the dead node's basestations re-home round-robin across the
//    survivors — PR-2's core-repartition semantics lifted one level up,
//    including the orphan requeue count for in-flight subframes. A
//    re-homed basestation occupies *unprovisioned* core slots on its new
//    node (sched/failover.hpp), so the survivor absorbs the load with its
//    own cores — overload is real, not hidden.
//  * Hotspot rebalancing: per-node and per-basestation demand EWMAs
//    (model::DurationEwma) drive periodic moves from an overloaded node to
//    the one with the most headroom, picking the largest basestation that
//    strictly shrinks the utilization gap.
//  * Admission control: when a tick's aggregate WCET demand exceeds the
//    believed surviving capacity, the cluster sheds the largest jobs at
//    ingress — classified as dropped (kShed / cluster_shed), never
//    blocking.
//
// Correctness anchor — the cluster-wide conservation law:
//   processed + dropped + terminated + late + lost == offered
// with shed a subset of dropped and failure_lost a subset of lost; it holds
// exactly under any kill campaign (ClusterMetrics::conserved()).
//
// Tracing: each node's events merge into one store with cores remapped to
// disjoint track ranges and local basestation ids mapped back to global
// ones; cluster-level events (kShed, kRehome, kLost in a detection window,
// kWatchdogFire at detection) ride a dedicated cluster track, and the
// merged trace keeps a kJobSpec workload capture so rtopex_analyze and the
// what-if replayer work on cluster runs unchanged.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/health/health.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace rtopex::cluster {

enum class PlacementPolicy {
  kStaticHash,     ///< node = mix(bs) % M; stateless and stable.
  kLoadAware,      ///< greedy LPT on measured mean per-subframe cost.
  kHeadroomAware,  ///< greedy LPT on per-basestation WCET demand.
};

const char* to_string(PlacementPolicy policy);

/// Whole-node fail-stop failure: from `at` onward the node processes no new
/// subframes. Detection happens at the first heartbeat check at or after
/// at + detection_timeout.
struct NodeFailure {
  unsigned node = 0;
  TimePoint at = 0;
};

struct ClusterConfig {
  unsigned num_nodes = 4;
  PlacementPolicy placement = PlacementPolicy::kStaticHash;
  /// Optional explicit basestation -> node map (indexed by basestation).
  /// When non-empty it must cover every basestation and name valid nodes;
  /// `placement` is ignored then.
  std::vector<unsigned> explicit_placement;

  /// Node heartbeat cadence; failure checks run on these boundaries.
  Duration heartbeat_period = milliseconds(10);
  /// A node whose heartbeat is this stale is declared dead — the knob for
  /// detection latency. Must be strictly greater than heartbeat_period.
  Duration detection_timeout = milliseconds(30);
  std::vector<NodeFailure> failures;

  /// Cluster-level admission control: shed (classify as dropped, never
  /// block) when a tick's aggregate WCET demand exceeds shed_threshold x
  /// the believed surviving capacity. Threshold must lie in (0, 1].
  bool shed_enabled = false;
  double shed_threshold = 1.0;

  /// Hotspot rebalancing driven by the demand EWMAs: every
  /// rebalance_period, if some node's estimated utilization exceeds
  /// hotspot_utilization, move the largest basestation whose relocation
  /// strictly shrinks the hot/cool utilization gap to the coolest node (it
  /// runs on unprovisioned slots there, like a re-homed one).
  bool rebalance_enabled = false;
  Duration rebalance_period = milliseconds(200);
  double hotspot_utilization = 0.85;
  /// EWMA gain of the per-node / per-basestation demand estimators.
  double load_alpha = 0.25;

  /// Merged cluster trace (per-node core tracks + one cluster track).
  obs::TraceConfig trace;

  /// Live SLO/alerting engine over the merged trace (obs/health). Enabling
  /// it implies tracing (the monitor consumes trace events); alerts ride a
  /// dedicated health track after the cluster track.
  obs::health::HealthConfig health;
};

/// Per-node outcome: the node's own SchedulerMetrics plus its place in the
/// cluster topology.
struct NodeReport {
  unsigned node = 0;
  unsigned resident_basestations = 0;  ///< initial placement.
  unsigned hosted_basestations = 0;    ///< residents + adopted (ever).
  unsigned num_cores = 0;              ///< provisioned cores (phantoms excluded).
  TimePoint failed_at = -1;            ///< -1: never failed.
  TimePoint detected_at = -1;          ///< -1: never declared dead.
  std::string scheduler_name;
  sim::SchedulerMetrics metrics;
};

/// ResilienceMetrics extended one level up: cluster re-homing, rebalancing
/// and shedding counters plus the recovery-time histogram, and the node
/// metrics rolled up for the conservation law.
struct ClusterMetrics {
  // Cluster control-plane counters.
  std::size_t offered = 0;      ///< subframes in the cluster workload.
  std::size_t dispatched = 0;   ///< handed to some node scheduler.
  std::size_t shed = 0;         ///< dropped at ingress by admission control.
  std::size_t failure_lost = 0; ///< arrived at a dead node pre-detection.
  std::size_t node_failovers = 0;        ///< nodes declared dead.
  std::size_t rehomed_basestations = 0;  ///< basestations moved off dead nodes.
  std::size_t rehomed_subframes = 0;     ///< dispatches to a re-homed home.
  std::size_t rebalance_moves = 0;       ///< hotspot moves.

  // Node-metric rollup (see conserved()).
  std::size_t processed = 0;        ///< completed in time on some node.
  std::size_t deadline_misses = 0;  ///< node misses + shed.
  std::size_t dropped = 0;          ///< node slack-check drops + shed.
  std::size_t terminated = 0;
  std::size_t late = 0;             ///< fronthaul late arrivals.
  std::size_t lost = 0;             ///< fronthaul lost + failure_lost.
  ResilienceMetrics resilience;     ///< summed across nodes; requeued_jobs
                                    ///< includes cluster-level re-homing
                                    ///< orphans, failovers/repartitions the
                                    ///< node-death events.

  /// One sample per node failure: milliseconds from the fail instant until
  /// every re-homed basestation completed a subframe on its new node.
  obs::Histogram recovery_ms;

  std::vector<NodeReport> nodes;

  /// The cluster-wide conservation law. Every offered subframe is counted
  /// exactly once: processed, dropped (slack check or shed), terminated at
  /// the deadline, late, or lost (fronthaul or failure window).
  bool conserved() const {
    // Ingress: every offered subframe is dispatched to a node (including
    // fronthaul-lost ones, which the node classifies), shed, or lost in a
    // dead node's detection window.
    return dispatched + shed + failure_lost == offered &&
           processed + dropped + terminated + late + lost == offered &&
           deadline_misses == dropped + terminated + late;
  }

  double miss_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(deadline_misses) /
                              static_cast<double>(offered);
  }
};

struct ClusterResult {
  ClusterMetrics metrics;
  /// Initial basestation -> node placement the run used.
  std::vector<unsigned> placement;
  /// Merged trace (empty unless config.trace.enabled): per-node core
  /// tracks in node order, then one cluster track (and, with health
  /// enabled, one health track carrying the kAlert/kAlertClear stream).
  obs::TraceStore trace;
  unsigned total_tracks = 0;   ///< core tracks + cluster (+ health) tracks.
  unsigned cluster_track = 0;  ///< track id of the cluster control plane.
  unsigned health_track = 0;   ///< alert track; == cluster_track when off.
  std::string scheduler_name;

  /// One entry per node that hosted basestations: its worker-track range
  /// in the merged trace (Perfetto process grouping, health topology).
  struct NodeTracks {
    unsigned node = 0;
    unsigned first_track = 0;
    unsigned num_tracks = 0;
  };
  std::vector<NodeTracks> node_tracks;

  /// Health engine outputs (default-empty unless config.health.enabled).
  std::vector<obs::health::Alert> alerts;
  obs::health::HealthSnapshot health;
  std::vector<obs::health::HealthSnapshot> health_history;
};

/// Shards `node_config.workload` (the *cluster-wide* workload: its
/// num_basestations is the cluster total) across simulated nodes running
/// node_config's scheduler. Construction validates the cluster config and
/// throws std::invalid_argument on: zero nodes, nothing to place, an
/// explicit placement of the wrong size or naming an invalid node, a
/// heartbeat period >= the detection timeout, a shed threshold outside
/// (0, 1], an out-of-range failure node, or invalid rebalance knobs.
class ClusterSim {
 public:
  ClusterSim(const core::ExperimentConfig& node_config,
             const ClusterConfig& cluster_config);

  /// Generates the cluster workload (core::make_workload) and runs it.
  ClusterResult run();

  /// Runs a pre-generated arrival-sorted cluster workload (reuse one
  /// workload across placement/failure comparisons).
  ClusterResult run(std::span<const sim::SubframeWork> work);

  unsigned num_basestations() const { return num_bs_; }
  unsigned num_nodes() const { return cluster_.num_nodes; }
  /// Provisioned cores per basestation (from the node scheduler's Tmax).
  unsigned cores_per_bs() const;

 private:
  core::ExperimentConfig node_config_;
  ClusterConfig cluster_;
  unsigned num_bs_ = 0;
};

/// Computes the initial basestation -> node map for a policy over a
/// workload (exposed for tests and the placement comparison in the bench).
std::vector<unsigned> make_placement(
    const ClusterConfig& config, unsigned num_basestations,
    std::span<const sim::SubframeWork> work);

/// Exposes the rollup through the Prometheus registry
/// (rtopex_cluster_* series, all labelled scheduler="<name>").
void fill_registry(const ClusterMetrics& metrics, const std::string& scheduler,
                   obs::MetricsRegistry& registry);

/// One fleet-level Prometheus snapshot instead of M disjoint ones: the
/// cluster rollup (fill_registry above), every node's full sim series
/// merged in with a node="N" label, fleet-wide processing/gap histograms
/// (obs::Histogram::merge across nodes), and — when the run had health
/// enabled — the rtopex_health_* score/burn/alert series.
void fill_federated_registry(const ClusterResult& result,
                             obs::MetricsRegistry& registry);

}  // namespace rtopex::cluster
