// Initial basestation -> node placement policies. All three are
// deterministic; the two greedy ones are classic LPT (longest processing
// time first) over a per-basestation demand key — measured mean cost for
// load-aware, WCET demand for headroom-aware (the quantity a node's
// admission control actually budgets against).
#include <algorithm>
#include <stdexcept>

#include "cluster/cluster.hpp"

namespace rtopex::cluster {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kStaticHash: return "static-hash";
    case PlacementPolicy::kLoadAware: return "load-aware";
    case PlacementPolicy::kHeadroomAware: return "headroom-aware";
  }
  return "unknown";
}

namespace {

/// SplitMix64 finalizer: spreads consecutive basestation ids across nodes
/// without the modulo striping a raw `bs % M` would give.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Greedy LPT: basestations in descending demand order, each onto the
/// least-loaded node so far. Ties break on the smaller basestation / node
/// id for bit-stable placements.
std::vector<unsigned> greedy_lpt(const std::vector<double>& demand,
                                 unsigned num_nodes) {
  std::vector<unsigned> order(demand.size());
  for (unsigned bs = 0; bs < order.size(); ++bs) order[bs] = bs;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    if (demand[a] != demand[b]) return demand[a] > demand[b];
    return a < b;
  });
  std::vector<double> node_load(num_nodes, 0.0);
  std::vector<unsigned> placement(demand.size(), 0);
  for (const unsigned bs : order) {
    unsigned best = 0;
    for (unsigned n = 1; n < num_nodes; ++n)
      if (node_load[n] < node_load[best]) best = n;
    placement[bs] = best;
    node_load[best] += demand[bs];
  }
  return placement;
}

}  // namespace

std::vector<unsigned> make_placement(
    const ClusterConfig& config, unsigned num_basestations,
    std::span<const sim::SubframeWork> work) {
  if (!config.explicit_placement.empty()) {
    if (config.explicit_placement.size() != num_basestations)
      throw std::invalid_argument(
          "make_placement: explicit placement must cover every basestation");
    for (const unsigned n : config.explicit_placement)
      if (n >= config.num_nodes)
        throw std::invalid_argument(
            "make_placement: explicit placement names an invalid node");
    return config.explicit_placement;
  }

  switch (config.placement) {
    case PlacementPolicy::kStaticHash: {
      std::vector<unsigned> placement(num_basestations);
      for (unsigned bs = 0; bs < num_basestations; ++bs)
        placement[bs] = static_cast<unsigned>(mix(bs) % config.num_nodes);
      return placement;
    }
    case PlacementPolicy::kLoadAware:
    case PlacementPolicy::kHeadroomAware: {
      // Per-basestation demand over the offered workload: mean measured
      // cost (load-aware) or mean WCET (headroom-aware).
      std::vector<double> demand(num_basestations, 0.0);
      std::vector<std::uint64_t> count(num_basestations, 0);
      for (const sim::SubframeWork& w : work) {
        if (w.bs >= num_basestations) continue;
        demand[w.bs] += static_cast<double>(
            config.placement == PlacementPolicy::kLoadAware
                ? w.costs.total()
                : w.wcet.total());
        ++count[w.bs];
      }
      for (unsigned bs = 0; bs < num_basestations; ++bs)
        if (count[bs]) demand[bs] /= static_cast<double>(count[bs]);
      return greedy_lpt(demand, config.num_nodes);
    }
  }
  throw std::invalid_argument("make_placement: unknown placement policy");
}

}  // namespace rtopex::cluster
