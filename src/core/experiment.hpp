// Public facade: one-call experiment runner combining workload generation,
// transport model and scheduler policy. This is the API the examples and the
// benchmark harness drive.
#pragma once

#include <memory>
#include <string>

#include "model/timing_model.hpp"
#include "sched/global.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace rtopex::core {

enum class SchedulerKind { kPartitioned, kGlobal, kRtOpex };

const char* to_string(SchedulerKind kind);

struct ExperimentConfig {
  sim::WorkloadConfig workload;

  /// Budgeted one-way transport delay (RTT/2). With `stochastic_transport`
  /// false this is also the exact per-subframe delay (the paper's §4.2
  /// fixed-transport evaluation); with it true, a fronthaul + cloud-network
  /// model centred near this value is used instead.
  Duration rtt_half = microseconds(500);
  bool stochastic_transport = false;

  SchedulerKind scheduler = SchedulerKind::kRtOpex;
  sched::GlobalConfig global;   ///< consulted for kGlobal.
  sched::RtOpexConfig rtopex;   ///< consulted for kRtOpex (rtt_half synced).

  /// Graceful degradation, applied to whichever scheduler runs (fronthaul
  /// faults live in `workload.fronthaul_faults` — they are a property of
  /// the generated arrivals, not of the scheduler).
  sched::DegradeConfig degrade;

  /// Online adaptive estimation, applied to whichever scheduler runs. The
  /// Eq. (1) regressor context (antennas, PRBs, iteration cap) is synced
  /// from `workload` automatically — set only `adaptive.enabled` (and
  /// optionally `adaptive.params`).
  sched::AdaptiveConfig adaptive;

  model::TimingModel timing = model::paper_gpp_model();
  model::IterationModelParams iteration;
  model::PlatformErrorParams platform_error;

  /// Fill the raw gap_us / processing_time_us sample vectors in addition to
  /// the bounded histograms (forwarded to whichever scheduler runs).
  bool record_samples = false;
  /// Optional trace sink, forwarded to whichever scheduler runs. Needs at
  /// least as many tracks as that scheduler's num_cores().
  obs::Tracer* tracer = nullptr;
};

struct ExperimentResult {
  sim::SchedulerMetrics metrics;
  std::string scheduler_name;
  unsigned num_cores = 0;
};

/// Generates the workload and runs the selected scheduler over it.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs the scheduler over a pre-generated workload (reuse one workload
/// across scheduler comparisons for paired evaluation).
ExperimentResult run_scheduler(const ExperimentConfig& config,
                               std::span<const sim::SubframeWork> work);

/// Builds the workload for a config (sorted by arrival).
std::vector<sim::SubframeWork> make_workload(const ExperimentConfig& config);

}  // namespace rtopex::core
