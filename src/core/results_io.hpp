// CSV export of experiment results, so sweeps can be plotted or diffed
// outside the binaries.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace rtopex::core {

/// One row of a sweep: free-form x value plus a result.
struct SweepPoint {
  double x = 0.0;              ///< e.g. RTT/2 in us, offered load in Mbps.
  ExperimentResult result;
};

/// Writes a sweep as CSV:
/// x, scheduler-id, cores, total, misses, miss_rate, dropped, terminated,
/// fft_migration_fraction, decode_migration_fraction, recoveries.
/// The scheduler id is numeric (0 partitioned, 1 global, 2 rt-opex) to keep
/// the file purely numeric for read_csv().
void write_sweep_csv(const std::string& path,
                     const std::vector<SweepPoint>& points);

/// Writes a metrics sample distribution (e.g. gaps or processing times) as
/// a two-column CSV of (quantile, value) rows.
void write_distribution_csv(const std::string& path,
                            const std::vector<double>& samples,
                            unsigned num_quantiles = 100);

/// Histogram flavour of the above: quantiles come from the bounded
/// log-scale histogram (accurate to one bucket width), so no raw samples —
/// and no record_samples run — are needed.
void write_distribution_csv(const std::string& path,
                            const obs::Histogram& histogram,
                            unsigned num_quantiles = 100);

/// Writes one experiment's full metrics snapshot in Prometheus text format
/// (all series labelled scheduler=<name>) — the sidecar benches drop next
/// to their CSVs.
void write_metrics_prom(const std::string& path,
                        const ExperimentResult& result);

}  // namespace rtopex::core
