#include "core/results_io.hpp"

#include <stdexcept>

#include "common/csv.hpp"
#include "common/stats.hpp"

namespace rtopex::core {
namespace {

double scheduler_id(const std::string& name) {
  if (name == "partitioned") return 0.0;
  if (name == "global") return 1.0;
  if (name == "rt-opex") return 2.0;
  return -1.0;
}

}  // namespace

void write_sweep_csv(const std::string& path,
                     const std::vector<SweepPoint>& points) {
  CsvWriter writer(path);
  writer.write_header({"x", "scheduler", "cores", "total", "misses",
                       "miss_rate", "dropped", "terminated", "fft_migration",
                       "decode_migration", "recoveries"});
  for (const auto& p : points) {
    const auto& m = p.result.metrics;
    writer.write_row({p.x, scheduler_id(p.result.scheduler_name),
                      static_cast<double>(p.result.num_cores),
                      static_cast<double>(m.total_subframes),
                      static_cast<double>(m.deadline_misses), m.miss_rate(),
                      static_cast<double>(m.dropped),
                      static_cast<double>(m.terminated),
                      m.fft_migration_fraction(),
                      m.decode_migration_fraction(),
                      static_cast<double>(m.recoveries)});
  }
}

void write_distribution_csv(const std::string& path,
                            const std::vector<double>& samples,
                            unsigned num_quantiles) {
  if (samples.empty())
    throw std::invalid_argument("write_distribution_csv: no samples");
  if (num_quantiles < 2)
    throw std::invalid_argument("write_distribution_csv: need >= 2 quantiles");
  const EmpiricalCdf cdf(samples);
  CsvWriter writer(path);
  writer.write_header({"quantile", "value"});
  for (unsigned i = 0; i <= num_quantiles; ++i) {
    const double q = static_cast<double>(i) / num_quantiles;
    writer.write_row({q, cdf.quantile(q)});
  }
}

void write_distribution_csv(const std::string& path,
                            const obs::Histogram& histogram,
                            unsigned num_quantiles) {
  if (histogram.count() == 0)
    throw std::invalid_argument("write_distribution_csv: empty histogram");
  if (num_quantiles < 2)
    throw std::invalid_argument("write_distribution_csv: need >= 2 quantiles");
  CsvWriter writer(path);
  writer.write_header({"quantile", "value"});
  for (unsigned i = 0; i <= num_quantiles; ++i) {
    const double q = static_cast<double>(i) / num_quantiles;
    writer.write_row({q, histogram.percentile(q)});
  }
}

void write_metrics_prom(const std::string& path,
                        const ExperimentResult& result) {
  obs::MetricsRegistry registry;
  registry.add_gauge("rtopex_cores", "Cores the scheduler ran on",
                     static_cast<double>(result.num_cores),
                     {{"scheduler", result.scheduler_name}});
  sim::fill_registry(result.metrics, result.scheduler_name, registry);
  registry.write(path);
}

}  // namespace rtopex::core
