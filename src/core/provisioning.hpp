// Capacity-planning helpers — the paper's stated operator use case (§4.1):
// "the tool can be used to profile the system performance … which can, in
// turn, help operators design and provision compute resources for C-RAN".
//
// Both searches exploit monotonicity of the miss rate (non-decreasing in
// the transport budget consumed and in the offered load) and bisect with
// the virtual-time simulator as the oracle.
#pragma once

#include "core/experiment.hpp"

namespace rtopex::core {

struct ProvisioningQuery {
  /// Scheduler choice, workload shape and models. The searched quantity
  /// (rtt_half or mean load) is overridden per probe.
  ExperimentConfig base;
  /// The acceptability ceiling (paper: 1e-2 is "typical of real-time
  /// systems").
  double max_miss_rate = 1e-2;
};

/// Largest one-way transport budget (RTT/2) under which the configured
/// scheduler still meets the miss ceiling, searched over [lo, hi] to the
/// given resolution. Returns lo - 1 (i.e. a value below `lo`) when even
/// `lo` fails.
Duration max_supported_rtt_half(const ProvisioningQuery& query,
                                Duration lo = microseconds(100),
                                Duration hi = microseconds(900),
                                Duration resolution = microseconds(25));

/// Largest mean offered load (normalized, in (0, 1]) the scheduler
/// sustains at the miss ceiling with the query's rtt_half. Returns 0 when
/// even the lightest probed load fails.
double max_supported_load(const ProvisioningQuery& query, double lo = 0.05,
                          double hi = 1.0, double resolution = 0.01);

}  // namespace rtopex::core
