#include "core/experiment.hpp"

#include <stdexcept>

#include "phy/lte_params.hpp"
#include "transport/transport.hpp"

namespace rtopex::core {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kPartitioned: return "partitioned";
    case SchedulerKind::kGlobal: return "global";
    case SchedulerKind::kRtOpex: return "rt-opex";
  }
  return "unknown";
}

std::vector<sim::SubframeWork> make_workload(const ExperimentConfig& config) {
  std::unique_ptr<transport::TransportModel> transport;
  if (config.stochastic_transport) {
    // Center the fronthaul so nominal fronthaul + cloud body == rtt_half.
    transport::FronthaulModel fronthaul;
    const auto cloud = transport::cloud_params_10gbe();
    const Duration cloud_nominal = microseconds_f(cloud.body_mean_us);
    const Duration fh = config.rtt_half - cloud_nominal -
                        fronthaul.switching_overhead;
    fronthaul.fiber_km = std::max(0.0, to_us(fh) / 5.0);
    transport = std::make_unique<transport::CompositeTransport>(fronthaul, cloud);
  } else {
    transport = std::make_unique<transport::FixedTransport>(config.rtt_half);
  }
  const sim::WorkloadGenerator generator(config.workload, *transport,
                                         config.timing, config.iteration,
                                         config.platform_error);
  return generator.generate();
}

ExperimentResult run_scheduler(const ExperimentConfig& config,
                               std::span<const sim::SubframeWork> work) {
  // Sync the Eq. (1) regressor context from the workload so callers only
  // flip adaptive.enabled.
  sched::AdaptiveConfig adaptive = config.adaptive;
  adaptive.num_antennas = config.workload.num_antennas;
  adaptive.num_prb =
      phy::bandwidth_config(config.workload.bandwidth).num_prb;
  adaptive.max_iterations = config.workload.max_iterations;

  std::unique_ptr<sched::NodeScheduler> scheduler;
  switch (config.scheduler) {
    case SchedulerKind::kPartitioned: {
      sched::PartitionedConfig pc;
      pc.rtt_half = config.rtt_half;
      pc.degrade = config.degrade;
      pc.adaptive = adaptive;
      pc.record_samples = config.record_samples;
      pc.tracer = config.tracer;
      scheduler = std::make_unique<sched::PartitionedScheduler>(
          config.workload.num_basestations, pc);
      break;
    }
    case SchedulerKind::kGlobal: {
      sched::GlobalConfig gc = config.global;
      gc.degrade = config.degrade;
      gc.adaptive = adaptive;
      gc.record_samples = config.record_samples;
      gc.tracer = config.tracer;
      scheduler = std::make_unique<sched::GlobalScheduler>(
          config.workload.num_basestations, gc);
      break;
    }
    case SchedulerKind::kRtOpex: {
      sched::RtOpexConfig rc = config.rtopex;
      rc.rtt_half = config.rtt_half;
      rc.degrade = config.degrade;
      rc.adaptive = adaptive;
      rc.record_samples = config.record_samples;
      rc.tracer = config.tracer;
      scheduler = std::make_unique<sched::RtOpexScheduler>(
          config.workload.num_basestations, rc);
      break;
    }
  }
  if (!scheduler) throw std::logic_error("unknown scheduler kind");

  ExperimentResult result;
  result.metrics = scheduler->run(work);
  result.scheduler_name = scheduler->name();
  result.num_cores = scheduler->num_cores();
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const auto work = make_workload(config);
  return run_scheduler(config, work);
}

}  // namespace rtopex::core
