#include "core/provisioning.hpp"

#include <stdexcept>

namespace rtopex::core {
namespace {

double miss_rate_at(const ProvisioningQuery& query, Duration rtt_half,
                    double mean_load) {
  ExperimentConfig cfg = query.base;
  cfg.rtt_half = rtt_half;
  if (mean_load > 0.0) cfg.workload.mean_load_override = mean_load;
  return run_experiment(cfg).metrics.miss_rate();
}

}  // namespace

Duration max_supported_rtt_half(const ProvisioningQuery& query, Duration lo,
                                Duration hi, Duration resolution) {
  if (lo > hi || resolution <= 0)
    throw std::invalid_argument("max_supported_rtt_half: bad search range");
  if (miss_rate_at(query, lo, -1.0) > query.max_miss_rate) return lo - 1;
  if (miss_rate_at(query, hi, -1.0) <= query.max_miss_rate) return hi;
  // Invariant: lo passes, hi fails.
  while (hi - lo > resolution) {
    const Duration mid = lo + (hi - lo) / 2;
    if (miss_rate_at(query, mid, -1.0) <= query.max_miss_rate)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double max_supported_load(const ProvisioningQuery& query, double lo, double hi,
                          double resolution) {
  if (!(lo > 0.0) || lo > hi || hi > 1.0 || resolution <= 0.0)
    throw std::invalid_argument("max_supported_load: bad search range");
  if (miss_rate_at(query, query.base.rtt_half, lo) > query.max_miss_rate)
    return 0.0;
  if (miss_rate_at(query, query.base.rtt_half, hi) <= query.max_miss_rate)
    return hi;
  while (hi - lo > resolution) {
    const double mid = (lo + hi) / 2.0;
    if (miss_rate_at(query, query.base.rtt_half, mid) <= query.max_miss_rate)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace rtopex::core
