// Fronthaul + cloud-network transport latency models (paper §2.3).
//
// A subframe's IQ samples traverse (a) the optical fronthaul — fixed
// propagation delay of ~5 us/km plus switching overhead, negligible jitter —
// and (b) the cloud network — a long-tailed distribution whose mean is
// ~0.15 ms with ~1 in 1e4 packets above 0.25 ms (Fig. 6). The packetized IQ
// model reproduces Fig. 7's serialization-dominated latency growth with
// antenna count and bandwidth.
//
// The paper's headline experiments replace the measured WARP transport with
// a *fixed* RTT/2 in 0.4–0.7 ms (§4.2); FixedTransport covers that.
#pragma once

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "phy/lte_params.hpp"

namespace rtopex::transport {

/// Fixed fronthaul delay for a fiber run.
struct FronthaulModel {
  double fiber_km = 20.0;
  Duration switching_overhead = microseconds(25);

  /// Throws std::invalid_argument on nonsense fields (negative fiber_km or
  /// switching overhead). Called by every model constructor that embeds a
  /// FronthaulModel; call it yourself when sampling from a bare aggregate.
  void validate() const;

  /// Propagation in fiber is ~5 us/km.
  Duration one_way() const {
    return microseconds_f(fiber_km * 5.0) + switching_overhead;
  }
};

/// Long-tailed one-way cloud-network latency (Fig. 6).
struct CloudNetworkParams {
  double body_mean_us = 145.0;   ///< lognormal body mean.
  double body_sigma = 0.12;      ///< lognormal shape.
  double tail_prob = 1e-4;       ///< P(extra pareto tail component).
  double tail_scale_us = 120.0;  ///< pareto scale.
  double tail_shape = 2.2;       ///< pareto shape.
};

/// Presets for the two measured networks; the paper finds them nearly
/// identical in distribution (Fig. 6), 10GbE marginally tighter.
CloudNetworkParams cloud_params_1gbe();
CloudNetworkParams cloud_params_10gbe();

class CloudNetworkModel {
 public:
  /// Throws std::invalid_argument on invalid params: non-positive body mean,
  /// negative sigma, tail_prob outside [0, 1], non-positive tail scale, or
  /// tail_shape <= 1 (a Pareto tail with infinite mean would make every
  /// latency statistic meaningless).
  explicit CloudNetworkModel(const CloudNetworkParams& params = {});

  Duration sample_one_way(Rng& rng) const;

  const CloudNetworkParams& params() const { return params_; }

 private:
  CloudNetworkParams params_;
};

/// Fronthaul fault process: per-subframe loss and late delivery, on top of
/// whatever latency model produces the nominal arrival. A *lost* subframe
/// never reaches the compute node (the runtime must free the reserved slot
/// instead of blocking a worker on it); a *late* one arrives with extra
/// delay and may land past its deadline, in which case it is classified as a
/// late arrival, not an ordinary processing miss.
struct FronthaulFaultParams {
  double loss_prob = 0.0;  ///< P(subframe never arrives).
  double late_prob = 0.0;  ///< P(extra delivery delay), given not lost.
  /// Extra delay of a late delivery: exponential with this mean, truncated
  /// at `late_delay_max`.
  Duration late_delay_mean = microseconds(300);
  Duration late_delay_max = milliseconds(5);

  bool enabled() const { return loss_prob > 0.0 || late_prob > 0.0; }
};

struct FronthaulFault {
  bool lost = false;
  Duration extra_delay = 0;  ///< 0 unless the delivery was late.
};

class FronthaulFaultModel {
 public:
  /// Throws std::invalid_argument on probabilities outside [0, 1] or a
  /// non-positive delay mean/max (when late_prob > 0).
  explicit FronthaulFaultModel(const FronthaulFaultParams& params = {});

  FronthaulFault sample(Rng& rng) const;

  const FronthaulFaultParams& params() const { return params_; }

 private:
  FronthaulFaultParams params_;
};

/// Serialization-based IQ transport latency (Fig. 7): per-radio 1 GbE links
/// aggregated through a switch into the GPP's 10 GbE port.
struct IqTransportModel {
  double radio_link_gbps = 1.0;
  double aggregate_link_gbps = 10.0;
  Duration packetization_overhead = microseconds(30);
  double jitter_sigma_us = 12.0;

  /// Bytes of IQ per antenna per subframe (16-bit I + 16-bit Q).
  static std::size_t bytes_per_antenna(phy::Bandwidth bw);

  /// Deterministic component of the one-way latency.
  Duration one_way_nominal(phy::Bandwidth bw, unsigned antennas) const;

  /// Nominal plus Gaussian jitter (clamped at the nominal value).
  Duration sample_one_way(phy::Bandwidth bw, unsigned antennas,
                          Rng& rng) const;
};

/// The transport abstraction the schedulers consume: per-subframe one-way
/// delay from radio to compute node.
class TransportModel {
 public:
  virtual ~TransportModel() = default;
  /// One-way radio -> node delay for one subframe.
  virtual Duration sample_delay(Rng& rng) const = 0;
  /// The delay the schedulers should budget for (RTT/2 in Eq. (3)).
  virtual Duration nominal_delay() const = 0;
};

/// Fixed RTT/2 as in the paper's §4.2 evaluation sweeps.
class FixedTransport final : public TransportModel {
 public:
  explicit FixedTransport(Duration one_way) : one_way_(one_way) {}
  Duration sample_delay(Rng&) const override { return one_way_; }
  Duration nominal_delay() const override { return one_way_; }

 private:
  Duration one_way_;
};

/// Fronthaul + stochastic cloud network.
class CompositeTransport final : public TransportModel {
 public:
  CompositeTransport(const FronthaulModel& fronthaul,
                     const CloudNetworkParams& cloud)
      : fronthaul_(fronthaul), cloud_(cloud) {
    fronthaul_.validate();
  }

  Duration sample_delay(Rng& rng) const override {
    return fronthaul_.one_way() + cloud_.sample_one_way(rng);
  }
  Duration nominal_delay() const override {
    return fronthaul_.one_way() +
           microseconds_f(cloud_.params().body_mean_us);
  }

 private:
  FronthaulModel fronthaul_;
  CloudNetworkModel cloud_;
};

}  // namespace rtopex::transport
