#include "transport/transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtopex::transport {

void FronthaulModel::validate() const {
  if (fiber_km < 0.0)
    throw std::invalid_argument("FronthaulModel: negative fiber_km");
  if (switching_overhead < 0)
    throw std::invalid_argument("FronthaulModel: negative switching_overhead");
}

CloudNetworkParams cloud_params_1gbe() {
  CloudNetworkParams p;
  p.body_mean_us = 152.0;
  p.body_sigma = 0.13;
  return p;
}

CloudNetworkParams cloud_params_10gbe() {
  CloudNetworkParams p;
  p.body_mean_us = 140.0;
  p.body_sigma = 0.12;
  return p;
}

CloudNetworkModel::CloudNetworkModel(const CloudNetworkParams& params)
    : params_(params) {
  if (params.body_mean_us <= 0.0)
    throw std::invalid_argument("CloudNetworkParams: non-positive body_mean_us");
  if (params.body_sigma < 0.0)
    throw std::invalid_argument("CloudNetworkParams: negative body_sigma");
  if (params.tail_prob < 0.0 || params.tail_prob > 1.0)
    throw std::invalid_argument("CloudNetworkParams: tail_prob outside [0, 1]");
  if (params.tail_prob > 0.0) {
    if (params.tail_scale_us <= 0.0)
      throw std::invalid_argument(
          "CloudNetworkParams: non-positive tail_scale_us");
    // Pareto with shape <= 1 has infinite mean: every latency statistic the
    // schedulers budget from would be meaningless.
    if (params.tail_shape <= 1.0)
      throw std::invalid_argument("CloudNetworkParams: tail_shape <= 1");
  }
}

FronthaulFaultModel::FronthaulFaultModel(const FronthaulFaultParams& params)
    : params_(params) {
  if (params.loss_prob < 0.0 || params.loss_prob > 1.0)
    throw std::invalid_argument(
        "FronthaulFaultParams: loss_prob outside [0, 1]");
  if (params.late_prob < 0.0 || params.late_prob > 1.0)
    throw std::invalid_argument(
        "FronthaulFaultParams: late_prob outside [0, 1]");
  if (params.late_prob > 0.0) {
    if (params.late_delay_mean <= 0)
      throw std::invalid_argument(
          "FronthaulFaultParams: non-positive late_delay_mean");
    if (params.late_delay_max < params.late_delay_mean)
      throw std::invalid_argument(
          "FronthaulFaultParams: late_delay_max < late_delay_mean");
  }
}

FronthaulFault FronthaulFaultModel::sample(Rng& rng) const {
  FronthaulFault f;
  if (params_.loss_prob > 0.0 && rng.bernoulli(params_.loss_prob)) {
    f.lost = true;
    return f;
  }
  if (params_.late_prob > 0.0 && rng.bernoulli(params_.late_prob)) {
    const double us = rng.exponential(to_us(params_.late_delay_mean));
    f.extra_delay = std::min(params_.late_delay_max, microseconds_f(us));
  }
  return f;
}

Duration CloudNetworkModel::sample_one_way(Rng& rng) const {
  // Lognormal body with the requested mean: mean = exp(mu + sigma^2/2).
  const double mu = std::log(params_.body_mean_us) -
                    params_.body_sigma * params_.body_sigma / 2.0;
  double us = rng.lognormal(mu, params_.body_sigma);
  if (rng.bernoulli(params_.tail_prob))
    us += rng.pareto(params_.tail_scale_us, params_.tail_shape);
  return microseconds_f(us);
}

std::size_t IqTransportModel::bytes_per_antenna(phy::Bandwidth bw) {
  const auto cfg = phy::bandwidth_config(bw);
  // One subframe is 1 ms of complex samples, 4 bytes each.
  const auto samples = static_cast<std::size_t>(cfg.sample_rate_hz / 1000.0);
  return samples * 4;
}

Duration IqTransportModel::one_way_nominal(phy::Bandwidth bw,
                                           unsigned antennas) const {
  const double bytes = static_cast<double>(bytes_per_antenna(bw));
  // Radio link serialization (per radio, in parallel across radios) plus
  // aggregated serialization into the GPP port.
  const double radio_us = bytes * 8.0 / (radio_link_gbps * 1e3);
  const double agg_us =
      bytes * antennas * 8.0 / (aggregate_link_gbps * 1e3);
  return packetization_overhead + microseconds_f(radio_us + agg_us);
}

Duration IqTransportModel::sample_one_way(phy::Bandwidth bw, unsigned antennas,
                                          Rng& rng) const {
  const Duration nominal = one_way_nominal(bw, antennas);
  const Duration jitter = microseconds_f(std::abs(rng.normal(0.0, jitter_sigma_us)));
  return nominal + jitter;
}

}  // namespace rtopex::transport
