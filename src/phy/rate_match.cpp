#include "phy/rate_match.hpp"

#include <array>
#include <stdexcept>

namespace rtopex::phy {
namespace {

// 36.212 Table 5.1.4-1 inter-column permutation.
constexpr std::array<unsigned, 32> kColumnPerm = {
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
    1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31};

}  // namespace

RateMatcher::RateMatcher(std::size_t block_size) {
  kd_ = block_size + 4;
  rows_ = (kd_ + 31) / 32;
  const std::size_t kpi = rows_ * 32;
  const std::size_t nd = kpi - kd_;  // dummies, padded at the front

  // Sub-block interleaver output order for one stream: read the (rows x 32)
  // row-major matrix [dummy*nd, d_0..d_{kd-1}] column-wise in permuted
  // column order. interleaved[j] = original stream index or -1 (dummy).
  std::vector<std::int32_t> perm(kpi);
  std::size_t j = 0;
  for (const unsigned col : kColumnPerm) {
    for (std::size_t row = 0; row < rows_; ++row) {
      const std::size_t flat = row * 32 + col;
      perm[j++] = flat < nd ? -1 : static_cast<std::int32_t>(flat - nd);
    }
  }

  // Circular buffer: v0 then v1/v2 interlaced.
  cb_map_.resize(3 * kpi);
  for (std::size_t i = 0; i < kpi; ++i) {
    cb_map_[i] = perm[i] < 0 ? -1 : perm[i];  // stream 0
    cb_map_[kpi + 2 * i] =
        perm[i] < 0 ? -1 : static_cast<std::int32_t>(kd_) + perm[i];
    cb_map_[kpi + 2 * i + 1] =
        perm[i] < 0 ? -1 : 2 * static_cast<std::int32_t>(kd_) + perm[i];
  }

  // Split form of the same mapping so the hot loops do one table lookup per
  // bit instead of a div/mod to recover (stream, offset).
  cb_stream_.resize(cb_map_.size());
  cb_off_.resize(cb_map_.size());
  for (std::size_t i = 0; i < cb_map_.size(); ++i) {
    if (cb_map_[i] < 0) {
      cb_stream_[i] = 3;
      cb_off_[i] = 0;
    } else {
      cb_stream_[i] = static_cast<std::uint8_t>(
          cb_map_[i] / static_cast<std::int32_t>(kd_));
      cb_off_[i] = static_cast<std::uint32_t>(
          cb_map_[i] % static_cast<std::int32_t>(kd_));
    }
  }

  // Dummy-compressed copy of the walk order plus the prefix counts that
  // translate a buffer start position into a compressed one.
  nd_prefix_.resize(cb_map_.size() + 1);
  nd_prefix_[0] = 0;
  for (std::size_t i = 0; i < cb_map_.size(); ++i) {
    nd_prefix_[i + 1] = nd_prefix_[i] + (cb_map_[i] >= 0 ? 1u : 0u);
    if (cb_map_[i] >= 0) {
      cbc_stream_.push_back(cb_stream_[i]);
      cbc_off_.push_back(cb_off_[i]);
    }
  }
}

std::size_t RateMatcher::start_index(unsigned rv) const {
  // 36.212-style: k0 = R * (24 * rv + 2), wrapped.
  return (rows_ * (24 * static_cast<std::size_t>(rv) + 2)) % cb_map_.size();
}

BitVector RateMatcher::match(const TurboCodeword& cw, std::size_t e,
                             unsigned redundancy_version) const {
  if (cw.systematic.size() != kd_)
    throw std::invalid_argument("RateMatcher: codeword size mismatch");
  if (e == 0) throw std::invalid_argument("RateMatcher: e == 0");

  auto stream_bit = [&](std::int32_t idx) -> std::uint8_t {
    const auto stream = idx / static_cast<std::int32_t>(kd_);
    const auto off = static_cast<std::size_t>(idx % static_cast<std::int32_t>(kd_));
    switch (stream) {
      case 0: return cw.systematic[off];
      case 1: return cw.parity1[off];
      default: return cw.parity2[off];
    }
  };

  BitVector out;
  out.reserve(e);
  std::size_t pos = start_index(redundancy_version);
  while (out.size() < e) {
    const std::int32_t idx = cb_map_[pos];
    if (idx >= 0) out.push_back(stream_bit(idx));
    pos = (pos + 1) % cb_map_.size();
  }
  return out;
}

RateMatcher::Dematched RateMatcher::dematch(std::span<const float> llrs,
                                            unsigned redundancy_version) const {
  Dematched out;
  out.systematic.assign(kd_, 0.0f);
  out.parity1.assign(kd_, 0.0f);
  out.parity2.assign(kd_, 0.0f);
  dematch_into(llrs, redundancy_version, out.systematic, out.parity1,
               out.parity2);
  return out;
}

void RateMatcher::dematch_into(std::span<const float> llrs,
                               unsigned redundancy_version,
                               std::span<float> systematic,
                               std::span<float> parity1,
                               std::span<float> parity2) const {
  if (systematic.size() < kd_ || parity1.size() < kd_ || parity2.size() < kd_)
    throw std::invalid_argument("dematch_into: stream spans too short");
  for (std::size_t i = 0; i < kd_; ++i) {
    systematic[i] = 0.0f;
    parity1[i] = 0.0f;
    parity2[i] = 0.0f;
  }
  // Walk the dummy-compressed order: one scatter-accumulate per received
  // LLR, no consume branch. The cyclic order matches the uncompressed walk
  // position for position, so soft-combining order (and thus the float
  // result) is unchanged.
  float* streams[3] = {systematic.data(), parity1.data(), parity2.data()};
  const std::size_t m = cbc_off_.size();
  std::size_t pos = nd_prefix_[start_index(redundancy_version)];
  if (pos == m) pos = 0;  // start landed past the last non-dummy
  for (std::size_t i = 0; i < llrs.size(); ++i) {
    streams[cbc_stream_[pos]][cbc_off_[pos]] += llrs[i];
    pos = pos + 1 == m ? 0 : pos + 1;
  }
}

}  // namespace rtopex::phy
