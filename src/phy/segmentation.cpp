#include "phy/segmentation.hpp"

#include <stdexcept>

#include "phy/lte_params.hpp"
#include "phy/qpp_interleaver.hpp"

namespace rtopex::phy {

Segmentation segment_transport_block(const BitVector& tb_with_crc) {
  const std::size_t b = tb_with_crc.size();
  if (b == 0) throw std::invalid_argument("segment: empty transport block");

  Segmentation seg;
  seg.payload_bits = b;

  std::size_t c = 1;
  std::size_t b_prime = b;
  if (b > kMaxCodeBlockSize) {
    const std::size_t payload = kMaxCodeBlockSize - kCrcLength;
    c = (b + payload - 1) / payload;
    b_prime = b + c * kCrcLength;
  }
  const std::size_t k = QppInterleaver::ceil_block_size((b_prime + c - 1) / c);
  seg.block_size = k;
  seg.filler_bits = c * k - b_prime;

  // Fill blocks: filler (zeros) first, then payload split sequentially,
  // then per-block CRC24B when C > 1.
  std::size_t pos = 0;
  for (std::size_t blk = 0; blk < c; ++blk) {
    BitVector block;
    block.reserve(k);
    if (blk == 0) block.assign(seg.filler_bits, 0);
    const std::size_t data_len =
        k - block.size() - (c > 1 ? kCrcLength : 0);
    for (std::size_t i = 0; i < data_len; ++i) block.push_back(tb_with_crc[pos++]);
    if (c > 1) attach_crc24(block, CrcKind::kB);
    if (block.size() != k)
      throw std::logic_error("segment: block size mismatch");
    seg.blocks.push_back(std::move(block));
  }
  if (pos != b) throw std::logic_error("segment: leftover payload");
  return seg;
}

Desegmentation desegment_transport_block(const std::vector<BitVector>& blocks,
                                         std::size_t payload_bits,
                                         std::size_t filler_bits) {
  if (blocks.empty())
    throw std::invalid_argument("desegment: no blocks");
  const std::size_t c = blocks.size();

  Desegmentation out;
  out.crc_ok.resize(c, true);
  out.tb_with_crc.reserve(payload_bits);
  for (std::size_t blk = 0; blk < c; ++blk) {
    const BitVector& block = blocks[blk];
    std::size_t begin = blk == 0 ? filler_bits : 0;
    std::size_t end = block.size();
    if (c > 1) {
      out.crc_ok[blk] = check_crc24(block, CrcKind::kB);
      out.all_ok = out.all_ok && out.crc_ok[blk];
      end -= kCrcLength;
    }
    out.tb_with_crc.insert(out.tb_with_crc.end(), block.begin() + begin,
                           block.begin() + end);
  }
  if (out.tb_with_crc.size() != payload_bits)
    throw std::invalid_argument("desegment: size mismatch with payload_bits");
  return out;
}

}  // namespace rtopex::phy
