#include "phy/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace rtopex::phy {

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (size < 2 || (size & (size - 1)) != 0)
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  twiddles_.resize(size / 2);
  for (std::size_t k = 0; k < size / 2; ++k) {
    const double angle = -2.0 * M_PI * static_cast<double>(k) /
                         static_cast<double>(size);
    twiddles_[k] = {static_cast<float>(std::cos(angle)),
                    static_cast<float>(std::sin(angle))};
  }
  reversal_.resize(size);
  unsigned bits = 0;
  while ((1u << bits) < size) ++bits;
  for (std::size_t i = 0; i < size; ++i) {
    std::uint32_t r = 0;
    for (unsigned b = 0; b < bits; ++b)
      if (i & (1u << b)) r |= 1u << (bits - 1 - b);
    reversal_[i] = r;
  }
}

void FftPlan::transform(std::span<Complex> data, bool invert) const {
  if (data.size() != size_)
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t j = reversal_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= size_; len <<= 1) {
    const std::size_t stride = size_ / len;
    for (std::size_t start = 0; start < size_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex w = twiddles_[k * stride];
        if (invert) w = std::conj(w);
        const Complex u = data[start + k];
        const Complex v = data[start + k + len / 2] * w;
        data[start + k] = u + v;
        data[start + k + len / 2] = u - v;
      }
    }
  }
  if (invert) {
    const float inv = 1.0f / static_cast<float>(size_);
    for (auto& x : data) x *= inv;
  }
}

void FftPlan::forward(std::span<Complex> data) const { transform(data, false); }

void FftPlan::inverse(std::span<Complex> data) const { transform(data, true); }

IqVector reference_dft(std::span<const Complex> data, bool invert) {
  const std::size_t n = data.size();
  IqVector out(n);
  const double sign = invert ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * M_PI * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += std::complex<double>(data[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (invert) acc /= static_cast<double>(n);
    out[k] = {static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
  }
  return out;
}

}  // namespace rtopex::phy
