#include "phy/fft.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#if defined(RTOPEX_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#elif defined(RTOPEX_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace rtopex::phy {

namespace {

// One stage's butterflies over a contiguous half-span. The SIMD lanes use
// mul/add (not FMA) so the wide path rounds identically to the scalar tail
// and the scalar-vs-SIMD differential can demand exact equality.
inline void butterfly_span(float* re0, float* im0, float* re1, float* im1,
                           const float* twr, const float* twi,
                           std::size_t half) {
  std::size_t k = 0;
#if defined(RTOPEX_SIMD) && defined(__AVX2__)
  for (; k + 8 <= half; k += 8) {
    const __m256 wr = _mm256_loadu_ps(twr + k);
    const __m256 wi = _mm256_loadu_ps(twi + k);
    const __m256 xr = _mm256_loadu_ps(re1 + k);
    const __m256 xi = _mm256_loadu_ps(im1 + k);
    const __m256 vr = _mm256_sub_ps(_mm256_mul_ps(xr, wr),
                                    _mm256_mul_ps(xi, wi));
    const __m256 vi = _mm256_add_ps(_mm256_mul_ps(xr, wi),
                                    _mm256_mul_ps(xi, wr));
    const __m256 ur = _mm256_loadu_ps(re0 + k);
    const __m256 ui = _mm256_loadu_ps(im0 + k);
    _mm256_storeu_ps(re0 + k, _mm256_add_ps(ur, vr));
    _mm256_storeu_ps(im0 + k, _mm256_add_ps(ui, vi));
    _mm256_storeu_ps(re1 + k, _mm256_sub_ps(ur, vr));
    _mm256_storeu_ps(im1 + k, _mm256_sub_ps(ui, vi));
  }
#elif defined(RTOPEX_SIMD) && defined(__ARM_NEON)
  for (; k + 4 <= half; k += 4) {
    const float32x4_t wr = vld1q_f32(twr + k);
    const float32x4_t wi = vld1q_f32(twi + k);
    const float32x4_t xr = vld1q_f32(re1 + k);
    const float32x4_t xi = vld1q_f32(im1 + k);
    const float32x4_t vr = vsubq_f32(vmulq_f32(xr, wr), vmulq_f32(xi, wi));
    const float32x4_t vi = vaddq_f32(vmulq_f32(xr, wi), vmulq_f32(xi, wr));
    const float32x4_t ur = vld1q_f32(re0 + k);
    const float32x4_t ui = vld1q_f32(im0 + k);
    vst1q_f32(re0 + k, vaddq_f32(ur, vr));
    vst1q_f32(im0 + k, vaddq_f32(ui, vi));
    vst1q_f32(re1 + k, vsubq_f32(ur, vr));
    vst1q_f32(im1 + k, vsubq_f32(ui, vi));
  }
#endif
  for (; k < half; ++k) {
    const float wr = twr[k];
    const float wi = twi[k];
    const float xr = re1[k];
    const float xi = im1[k];
    const float vr = xr * wr - xi * wi;
    const float vi = xr * wi + xi * wr;
    const float ur = re0[k];
    const float ui = im0[k];
    re0[k] = ur + vr;
    im0[k] = ui + vi;
    re1[k] = ur - vr;
    im1[k] = ui - vi;
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (size < 2 || (size & (size - 1)) != 0)
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  // Per-stage tables: stage with half-length h occupies [h - 1, 2h - 1),
  // total N - 1 entries, each stage's twiddles contiguous and unit-stride.
  tw_re_.resize(size - 1);
  tw_im_fwd_.resize(size - 1);
  tw_im_inv_.resize(size - 1);
  for (std::size_t half = 1; half < size; half <<= 1) {
    for (std::size_t k = 0; k < half; ++k) {
      const double angle =
          -M_PI * static_cast<double>(k) / static_cast<double>(half);
      const std::size_t at = (half - 1) + k;
      tw_re_[at] = static_cast<float>(std::cos(angle));
      tw_im_fwd_[at] = static_cast<float>(std::sin(angle));
      tw_im_inv_[at] = -tw_im_fwd_[at];
    }
  }
  reversal_.resize(size);
  unsigned bits = 0;
  while ((1u << bits) < size) ++bits;
  for (std::size_t i = 0; i < size; ++i) {
    std::uint32_t r = 0;
    for (unsigned b = 0; b < bits; ++b)
      if (i & (1u << b)) r |= 1u << (bits - 1 - b);
    reversal_[i] = r;
  }
}

void FftPlan::transform_soa(float* re, float* im, bool invert) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t j = reversal_[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  const float* twi_all = invert ? tw_im_inv_.data() : tw_im_fwd_.data();
  for (std::size_t half = 1; half < size_; half <<= 1) {
    const float* twr = tw_re_.data() + (half - 1);
    const float* twi = twi_all + (half - 1);
    for (std::size_t start = 0; start < size_; start += 2 * half)
      butterfly_span(re + start, im + start, re + start + half,
                     im + start + half, twr, twi, half);
  }
}

void FftPlan::forward_soa(std::span<float> re, std::span<float> im) const {
  if (re.size() != size_ || im.size() != size_)
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  transform_soa(re.data(), im.data(), false);
}

void FftPlan::inverse_soa(std::span<float> re, std::span<float> im) const {
  if (re.size() != size_ || im.size() != size_)
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  transform_soa(re.data(), im.data(), true);
  const float inv = 1.0f / static_cast<float>(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    re[i] *= inv;
    im[i] *= inv;
  }
}

namespace {
// Split scratch for the interleaved entry points. Thread-local so a plan
// shared across worker threads stays safe; sized once per thread.
thread_local std::vector<float> t_fft_re;
thread_local std::vector<float> t_fft_im;
}  // namespace

void FftPlan::forward(std::span<Complex> data) const {
  if (data.size() != size_)
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  if (t_fft_re.size() < size_) {
    t_fft_re.resize(size_);
    t_fft_im.resize(size_);
  }
  float* re = t_fft_re.data();
  float* im = t_fft_im.data();
  for (std::size_t i = 0; i < size_; ++i) {
    re[i] = data[i].real();
    im[i] = data[i].imag();
  }
  transform_soa(re, im, false);
  for (std::size_t i = 0; i < size_; ++i) data[i] = {re[i], im[i]};
}

void FftPlan::inverse(std::span<Complex> data) const {
  if (data.size() != size_)
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  if (t_fft_re.size() < size_) {
    t_fft_re.resize(size_);
    t_fft_im.resize(size_);
  }
  float* re = t_fft_re.data();
  float* im = t_fft_im.data();
  for (std::size_t i = 0; i < size_; ++i) {
    re[i] = data[i].real();
    im[i] = data[i].imag();
  }
  transform_soa(re, im, true);
  const float inv = 1.0f / static_cast<float>(size_);
  for (std::size_t i = 0; i < size_; ++i)
    data[i] = {re[i] * inv, im[i] * inv};
}

void FftPlan::transform(std::span<Complex> data, bool invert) const {
  if (data.size() != size_)
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t j = reversal_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  const float* twi_all = invert ? tw_im_inv_.data() : tw_im_fwd_.data();
  for (std::size_t half = 1; half < size_; half <<= 1) {
    const float* twr = tw_re_.data() + (half - 1);
    const float* twi = twi_all + (half - 1);
    for (std::size_t start = 0; start < size_; start += 2 * half) {
      for (std::size_t k = 0; k < half; ++k) {
        const float wr = twr[k];
        const float wi = twi[k];
        Complex& a = data[start + k];
        Complex& b = data[start + k + half];
        const float vr = b.real() * wr - b.imag() * wi;
        const float vi = b.real() * wi + b.imag() * wr;
        const float ur = a.real();
        const float ui = a.imag();
        a = {ur + vr, ui + vi};
        b = {ur - vr, ui - vi};
      }
    }
  }
  if (invert) {
    const float inv = 1.0f / static_cast<float>(size_);
    for (auto& x : data) x *= inv;
  }
}

IqVector reference_dft(std::span<const Complex> data, bool invert) {
  const std::size_t n = data.size();
  IqVector out(n);
  const double sign = invert ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * M_PI * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += std::complex<double>(data[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (invert) acc /= static_cast<double>(n);
    out[k] = {static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
  }
  return out;
}

}  // namespace rtopex::phy
