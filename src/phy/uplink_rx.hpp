// Uplink receiver with the paper's task/subtask decomposition (§2.2):
//
//   taskFFT    — one subtask per (antenna, OFDM symbol): CP strip + FFT +
//                subcarrier extraction. 14 * N subtasks.
//   taskDemod  — serial prepare (DMRS channel estimation + noise estimate),
//                then one subtask per data symbol: MRC equalization across
//                antennas + max-log LLR demapping. 12 subtasks.
//   taskDecode — serial prepare (descrambling), then one subtask per code
//                block: rate dematching + iterative turbo decode with CRC
//                early termination. C subtasks (6 at MCS 27 / 10 MHz).
//   finalize   — desegmentation + transport-block CRC: ACK or NACK.
//
// Subtasks within a stage write disjoint state in the Job, so a scheduler
// (or RT-OPEX migration) may execute them concurrently on different cores;
// stages must still run in order (precedence constraint, paper Fig. 5).
#pragma once

#include <memory>
#include <span>

#include "phy/uplink_tx.hpp"
#include "phy/workspace.hpp"

namespace rtopex::phy {

struct UplinkRxResult {
  bool crc_ok = false;           ///< transport-block CRC24A (ACK vs NACK).
  unsigned iterations = 0;       ///< max turbo iterations over code blocks (L).
  double mean_iterations = 0.0;  ///< average over code blocks.
  std::vector<bool> cb_crc_ok;   ///< per-code-block CRC.
  BitVector payload;             ///< decoded transport block (no CRC).
};

/// All intermediate state for one subframe decode. Reusable across
/// subframes. Distinct subtasks of one stage touch disjoint members and may
/// run concurrently; everything else is single-threaded.
struct UplinkRxJob {
  unsigned mcs = 0;
  std::uint32_t subframe_index = 0;
  /// 0 = decode at the configured Lm; non-zero caps the turbo iterations
  /// below Lm for this subframe only (degraded mode).
  unsigned iteration_cap = 0;

  std::vector<IqVector> antenna_samples;  ///< N streams of time samples.
  std::vector<IqVector> grid;             ///< [antenna*14 + symbol] -> nsc REs.
  std::vector<IqVector> channel_est;      ///< per antenna, nsc gains.
  float noise_var = 0.0f;                 ///< per-RE noise power estimate.
  IqVector equalized;                     ///< 12 * nsc data REs.
  std::vector<float> post_eq_noise;       ///< per data RE.
  LlrVector llrs;                         ///< G soft bits, descrambled in-place.

  struct CodeBlockResult {
    BitVector bits;
    unsigned iterations = 0;
    bool crc_ok = false;
  };
  std::vector<CodeBlockResult> cb_results;
};

class UplinkRxProcessor {
 public:
  explicit UplinkRxProcessor(const UplinkConfig& config);
  ~UplinkRxProcessor();

  UplinkRxProcessor(const UplinkRxProcessor&) = delete;
  UplinkRxProcessor& operator=(const UplinkRxProcessor&) = delete;

  using Job = UplinkRxJob;

  /// Creates a job sized for the worst-case MCS.
  Job make_job() const;

  /// Binds a received subframe to the job and resets per-subframe state.
  /// `antenna_samples` must hold config.num_antennas streams of
  /// 14 * (cp + fft) samples each; the job keeps a copy.
  void begin(Job& job, std::span<const IqVector> antenna_samples, unsigned mcs,
             std::uint32_t subframe_index) const;

  // Stage methods come in two forms: an explicit-workspace overload (the
  // zero-allocation hot path — all kernel scratch lives in `ws` and is
  // reused across subframes) and a convenience overload that uses this
  // thread's workspace. One workspace per executing thread: subtasks of one
  // job may run concurrently on different cores (RT-OPEX migration), so the
  // workspace belongs to the thread, never to the job.

  // --- Stage A: FFT ---
  std::size_t fft_subtask_count() const;
  void run_fft_subtask(Job& job, std::size_t index) const;
  void run_fft_subtask(Job& job, std::size_t index, DecodeWorkspace& ws) const;

  // --- Stage B: demod (workspace-free: writes straight into the job) ---
  void demod_prepare(Job& job) const;
  std::size_t demod_subtask_count() const { return kSymbolsPerSubframe - 2; }
  void run_demod_subtask(Job& job, std::size_t index) const;

  // --- Stage C: decode ---
  void decode_prepare(Job& job) const;
  void decode_prepare(Job& job, DecodeWorkspace& ws) const;
  std::size_t decode_subtask_count(const Job& job) const;
  void run_decode_subtask(Job& job, std::size_t index) const;
  void run_decode_subtask(Job& job, std::size_t index,
                          DecodeWorkspace& ws) const;

  /// Batched decode stage: all code blocks of the subframe through the SoA
  /// batch decoder, up to kTurboBatchLanes blocks per SISO pass.
  /// Bit-identical to running run_decode_subtask over every index (the
  /// differential tests assert it) — this is the throughput stage path
  /// NodeRuntime workers take when the decode stage is not being migrated;
  /// RT-OPEX migration keeps claiming per-block subtasks.
  void run_decode_batch(Job& job, DecodeWorkspace& ws) const;

  /// Cross-subframe batched decode: every code block of every job, grouped
  /// by (block size, iteration cap) so blocks from different basestations
  /// fill out SoA lanes that a single subframe would leave empty (a batch
  /// SISO pass costs the same whether 3 or 8 lanes carry real blocks).
  /// decode_prepare must already have run on each job. At most 16 jobs.
  void run_decode_batch(std::span<Job* const> jobs, DecodeWorkspace& ws) const;

  // --- Finalize ---
  UplinkRxResult finalize(Job& job) const;
  /// Allocation-free finalize: desegmentation goes through ws.tb_with_crc
  /// and `result`'s buffers are reused (clear + refill within capacity).
  void finalize_into(Job& job, DecodeWorkspace& ws,
                     UplinkRxResult& result) const;

  /// The calling thread's lazily-created workspace (used by the
  /// convenience overloads; also what migrated-chunk host threads share
  /// across whatever subtasks land on them).
  static DecodeWorkspace& thread_workspace();

  /// Convenience: the full chain, serially, on a fresh job.
  UplinkRxResult process(std::span<const IqVector> antenna_samples,
                         unsigned mcs, std::uint32_t subframe_index) const;

  const UplinkConfig& config() const { return config_; }

 private:
  UplinkConfig config_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtopex::phy
