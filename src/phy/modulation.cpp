#include "phy/modulation.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#if defined(RTOPEX_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#elif defined(RTOPEX_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace rtopex::phy {
namespace {

// 36.211-style per-axis amplitude from the Gray-coded bits.
// QPSK:  b0 -> I, b1 -> Q, amplitude 1/sqrt(2).
// 16QAM: (b0,b2) -> I, (b1,b3) -> Q, amplitudes {1,3}/sqrt(10).
// 64QAM: (b0,b2,b4) -> I, (b1,b3,b5) -> Q, amplitudes {1,3,5,7}/sqrt(42).

float axis16(int sign_bit, int mag_bit) {
  const float mag = mag_bit ? 3.0f : 1.0f;
  return (sign_bit ? -mag : mag) / std::sqrt(10.0f);
}

float axis64(int sign_bit, int mag_bit1, int mag_bit2) {
  // Gray mapping of (b2,b4) per 36.211: 00->3, 01->1, 10->5, 11->7.
  static constexpr std::array<float, 4> kMag = {3.0f, 1.0f, 5.0f, 7.0f};
  const float mag = kMag[(mag_bit1 << 1) | mag_bit2];
  return (sign_bit ? -mag : mag) / std::sqrt(42.0f);
}

Complex map_point(unsigned order, unsigned packed) {
  switch (order) {
    case 2: {
      const int b0 = (packed >> 1) & 1;
      const int b1 = packed & 1;
      const float a = 1.0f / std::sqrt(2.0f);
      return {b0 ? -a : a, b1 ? -a : a};
    }
    case 4: {
      const int b0 = (packed >> 3) & 1;
      const int b1 = (packed >> 2) & 1;
      const int b2 = (packed >> 1) & 1;
      const int b3 = packed & 1;
      return {axis16(b0, b2), axis16(b1, b3)};
    }
    case 6: {
      const int b0 = (packed >> 5) & 1;
      const int b1 = (packed >> 4) & 1;
      const int b2 = (packed >> 3) & 1;
      const int b3 = (packed >> 2) & 1;
      const int b4 = (packed >> 1) & 1;
      const int b5 = packed & 1;
      return {axis64(b0, b2, b4), axis64(b1, b3, b5)};
    }
    default:
      throw std::invalid_argument("modulation order must be 2, 4 or 6");
  }
}

const IqVector& table(unsigned order) {
  static const IqVector qpsk = [] {
    IqVector t(4);
    for (unsigned p = 0; p < 4; ++p) t[p] = map_point(2, p);
    return t;
  }();
  static const IqVector qam16 = [] {
    IqVector t(16);
    for (unsigned p = 0; p < 16; ++p) t[p] = map_point(4, p);
    return t;
  }();
  static const IqVector qam64 = [] {
    IqVector t(64);
    for (unsigned p = 0; p < 64; ++p) t[p] = map_point(6, p);
    return t;
  }();
  switch (order) {
    case 2: return qpsk;
    case 4: return qam16;
    case 6: return qam64;
    default:
      throw std::invalid_argument("modulation order must be 2, 4 or 6");
  }
}

}  // namespace

std::span<const Complex> constellation(unsigned order) { return table(order); }

IqVector modulate(std::span<const std::uint8_t> bits, unsigned order) {
  if (bits.size() % order != 0)
    throw std::invalid_argument("modulate: bits not a multiple of order");
  const IqVector& t = table(order);
  IqVector out(bits.size() / order);
  for (std::size_t s = 0; s < out.size(); ++s) {
    unsigned packed = 0;
    for (unsigned b = 0; b < order; ++b)
      packed = (packed << 1) | (bits[s * order + b] & 1);
    out[s] = t[packed];
  }
  return out;
}

namespace {

// The constellations are products of two independent Gray-coded axes, so
// max-log demapping decomposes exactly per axis: even-positioned bits
// (b0, b2, b4) depend only on I, odd ones only on Q. This keeps the
// demapper cost ~linear in the modulation order (2^(K/2) axis levels
// instead of 2^K grid points), as optimized receivers do.
struct AxisTable {
  unsigned bits_per_axis;
  // One amplitude per axis level; level index packs the axis bits
  // (sign bit first, then magnitude bits).
  std::array<float, 8> amplitude;
};

const AxisTable& axis_table(unsigned order) {
  static const AxisTable qpsk = [] {
    AxisTable t{1, {}};
    const float a = 1.0f / std::sqrt(2.0f);
    t.amplitude = {a, -a};
    return t;
  }();
  static const AxisTable qam16 = [] {
    AxisTable t{2, {}};
    for (unsigned lvl = 0; lvl < 4; ++lvl)
      t.amplitude[lvl] = axis16((lvl >> 1) & 1, lvl & 1);
    return t;
  }();
  static const AxisTable qam64 = [] {
    AxisTable t{3, {}};
    for (unsigned lvl = 0; lvl < 8; ++lvl)
      t.amplitude[lvl] = axis64((lvl >> 2) & 1, (lvl >> 1) & 1, lvl & 1);
    return t;
  }();
  switch (order) {
    case 2: return qpsk;
    case 4: return qam16;
    case 6: return qam64;
    default:
      throw std::invalid_argument("modulation order must be 2, 4 or 6");
  }
}

}  // namespace

namespace {

// Order-specialized max-log kernel: BITS axis bits, 2^BITS levels, all loop
// bounds compile-time so the per-symbol work fully unrolls. Produces the
// same floats as the generic reference loop (same expressions, same
// min-reduction order over levels).
template <unsigned BITS>
void demap_axes(std::span<const Complex> symbols,
                std::span<const float> noise_var, const AxisTable& t,
                float* out) {
  constexpr unsigned kLevels = 1u << BITS;
  constexpr unsigned kOrder = 2 * BITS;
  float amp[kLevels];
  for (unsigned lvl = 0; lvl < kLevels; ++lvl) amp[lvl] = t.amplitude[lvl];
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const float inv_var = 1.0f / std::max(noise_var[s], 1e-9f);
    const float yi = symbols[s].real();
    const float yq = symbols[s].imag();
    float best_i[2 * BITS], best_q[2 * BITS];
    for (unsigned j = 0; j < 2 * BITS; ++j) {
      best_i[j] = 1e30f;
      best_q[j] = 1e30f;
    }
    for (unsigned lvl = 0; lvl < kLevels; ++lvl) {
      const float di = yi - amp[lvl];
      const float dq = yq - amp[lvl];
      const float dist_i = di * di;
      const float dist_q = dq * dq;
      for (unsigned b = 0; b < BITS; ++b) {
        const unsigned value = (lvl >> (BITS - 1 - b)) & 1;
        best_i[b * 2 + value] = std::min(best_i[b * 2 + value], dist_i);
        best_q[b * 2 + value] = std::min(best_q[b * 2 + value], dist_q);
      }
    }
    float* llr = out + s * kOrder;
    for (unsigned b = 0; b < BITS; ++b) {
      llr[2 * b + 0] = (best_i[b * 2 + 1] - best_i[b * 2 + 0]) * inv_var;
      llr[2 * b + 1] = (best_q[b * 2 + 1] - best_q[b * 2 + 0]) * inv_var;
    }
  }
}

#if defined(RTOPEX_SIMD) && defined(__AVX2__)

// Vertically vectorized axis demap: 8 symbols per pass, one vector lane per
// symbol. Every lane evaluates exactly the scalar kernel's expressions —
// same subtract/multiply/min schedule, same reduction order over levels —
// so the produced LLRs are bit-identical to demap_axes (vminps/vmaxps and
// scalar std::min/std::max agree on every non-NaN input, and the distances
// are always finite and non-negative). Only whole 8-symbol blocks come
// through here; the caller runs the scalar kernel over the ragged tail.
template <unsigned BITS>
void demap_axes_simd(const Complex* symbols, const float* noise_var,
                     const AxisTable& t, float* out, std::size_t blocks) {
  constexpr unsigned kLevels = 1u << BITS;
  constexpr unsigned kOrder = 2 * BITS;
  const __m256 vhuge = _mm256_set1_ps(1e30f);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vfloor = _mm256_set1_ps(1e-9f);
  // Reorders the two shuffle_ps half-products back to symbol order.
  const __m256i vperm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const float* in = reinterpret_cast<const float*>(symbols + blk * 8);
    // Deinterleave re/im: [r0 i0 .. r3 i3 | r4 i4 .. r7 i7] -> yi, yq.
    const __m256 v0 = _mm256_loadu_ps(in);
    const __m256 v1 = _mm256_loadu_ps(in + 8);
    const __m256 re_t = _mm256_shuffle_ps(v0, v1, 0x88);
    const __m256 im_t = _mm256_shuffle_ps(v0, v1, 0xDD);
    const __m256 yi = _mm256_permutevar8x32_ps(re_t, vperm);
    const __m256 yq = _mm256_permutevar8x32_ps(im_t, vperm);
    const __m256 nv = _mm256_loadu_ps(noise_var + blk * 8);
    const __m256 inv_var = _mm256_div_ps(vone, _mm256_max_ps(nv, vfloor));

    __m256 best_i[kOrder], best_q[kOrder];
    for (unsigned j = 0; j < kOrder; ++j) best_i[j] = best_q[j] = vhuge;
    for (unsigned lvl = 0; lvl < kLevels; ++lvl) {
      const __m256 amp = _mm256_set1_ps(t.amplitude[lvl]);
      const __m256 di = _mm256_sub_ps(yi, amp);
      const __m256 dq = _mm256_sub_ps(yq, amp);
      const __m256 dist_i = _mm256_mul_ps(di, di);
      const __m256 dist_q = _mm256_mul_ps(dq, dq);
      for (unsigned b = 0; b < BITS; ++b) {
        const unsigned value = (lvl >> (BITS - 1 - b)) & 1;
        best_i[b * 2 + value] = _mm256_min_ps(best_i[b * 2 + value], dist_i);
        best_q[b * 2 + value] = _mm256_min_ps(best_q[b * 2 + value], dist_q);
      }
    }
    // llr rows (one vector = one bit position across the 8 symbols), then a
    // small register-blocked transpose out to the symbol-major LLR layout.
    alignas(32) float row_i[BITS][8];
    alignas(32) float row_q[BITS][8];
    for (unsigned b = 0; b < BITS; ++b) {
      _mm256_store_ps(row_i[b],
                      _mm256_mul_ps(_mm256_sub_ps(best_i[b * 2 + 1],
                                                  best_i[b * 2 + 0]),
                                    inv_var));
      _mm256_store_ps(row_q[b],
                      _mm256_mul_ps(_mm256_sub_ps(best_q[b * 2 + 1],
                                                  best_q[b * 2 + 0]),
                                    inv_var));
    }
    float* o = out + blk * 8 * kOrder;
    for (unsigned s = 0; s < 8; ++s)
      for (unsigned b = 0; b < BITS; ++b) {
        o[s * kOrder + 2 * b + 0] = row_i[b][s];
        o[s * kOrder + 2 * b + 1] = row_q[b][s];
      }
  }
}

constexpr std::size_t kDemapBlock = 8;

#elif defined(RTOPEX_SIMD) && defined(__ARM_NEON)

// NEON analogue: 4 symbols per pass (vld2q deinterleaves re/im directly).
// Same expression schedule as the scalar kernel, hence bit-identical.
template <unsigned BITS>
void demap_axes_simd(const Complex* symbols, const float* noise_var,
                     const AxisTable& t, float* out, std::size_t blocks) {
  constexpr unsigned kLevels = 1u << BITS;
  constexpr unsigned kOrder = 2 * BITS;
  const float32x4_t vhuge = vdupq_n_f32(1e30f);
  const float32x4_t vfloor = vdupq_n_f32(1e-9f);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const float* in = reinterpret_cast<const float*>(symbols + blk * 4);
    const float32x4x2_t iq = vld2q_f32(in);
    const float32x4_t yi = iq.val[0];
    const float32x4_t yq = iq.val[1];
    const float32x4_t nv = vld1q_f32(noise_var + blk * 4);
    const float32x4_t inv_var =
        vdivq_f32(vdupq_n_f32(1.0f), vmaxq_f32(nv, vfloor));

    float32x4_t best_i[kOrder], best_q[kOrder];
    for (unsigned j = 0; j < kOrder; ++j) best_i[j] = best_q[j] = vhuge;
    for (unsigned lvl = 0; lvl < kLevels; ++lvl) {
      const float32x4_t amp = vdupq_n_f32(t.amplitude[lvl]);
      const float32x4_t di = vsubq_f32(yi, amp);
      const float32x4_t dq = vsubq_f32(yq, amp);
      const float32x4_t dist_i = vmulq_f32(di, di);
      const float32x4_t dist_q = vmulq_f32(dq, dq);
      for (unsigned b = 0; b < BITS; ++b) {
        const unsigned value = (lvl >> (BITS - 1 - b)) & 1;
        best_i[b * 2 + value] = vminq_f32(best_i[b * 2 + value], dist_i);
        best_q[b * 2 + value] = vminq_f32(best_q[b * 2 + value], dist_q);
      }
    }
    alignas(16) float row_i[BITS][4];
    alignas(16) float row_q[BITS][4];
    for (unsigned b = 0; b < BITS; ++b) {
      vst1q_f32(row_i[b], vmulq_f32(vsubq_f32(best_i[b * 2 + 1],
                                              best_i[b * 2 + 0]),
                                    inv_var));
      vst1q_f32(row_q[b], vmulq_f32(vsubq_f32(best_q[b * 2 + 1],
                                              best_q[b * 2 + 0]),
                                    inv_var));
    }
    float* o = out + blk * 4 * kOrder;
    for (unsigned s = 0; s < 4; ++s)
      for (unsigned b = 0; b < BITS; ++b) {
        o[s * kOrder + 2 * b + 0] = row_i[b][s];
        o[s * kOrder + 2 * b + 1] = row_q[b][s];
      }
  }
}

constexpr std::size_t kDemapBlock = 4;

#endif

template <unsigned BITS>
void demap_dispatch(std::span<const Complex> symbols,
                    std::span<const float> noise_var, const AxisTable& t,
                    float* out) {
#ifdef RTOPEX_SIMD
#if defined(__AVX2__) || defined(__ARM_NEON)
  const std::size_t blocks = symbols.size() / kDemapBlock;
  if (blocks > 0)
    demap_axes_simd<BITS>(symbols.data(), noise_var.data(), t, out, blocks);
  const std::size_t done = blocks * kDemapBlock;
  if (done < symbols.size()) {
    demap_axes<BITS>(symbols.subspan(done), noise_var.subspan(done), t,
                     out + done * 2 * BITS);
  }
  return;
#endif
#endif
  demap_axes<BITS>(symbols, noise_var, t, out);
}

}  // namespace

void demodulate_into(std::span<const Complex> symbols,
                     std::span<const float> noise_var, unsigned order,
                     std::span<float> out) {
  if (symbols.size() != noise_var.size())
    throw std::invalid_argument("demodulate: size mismatch");
  if (out.size() != symbols.size() * order)
    throw std::invalid_argument("demodulate_into: bad output size");
  const AxisTable& t = axis_table(order);
  switch (order) {
    case 2: demap_dispatch<1>(symbols, noise_var, t, out.data()); break;
    case 4: demap_dispatch<2>(symbols, noise_var, t, out.data()); break;
    default: demap_dispatch<3>(symbols, noise_var, t, out.data()); break;
  }
}

LlrVector demodulate(std::span<const Complex> symbols,
                     std::span<const float> noise_var, unsigned order) {
  LlrVector llrs(symbols.size() * order);
  demodulate_into(symbols, noise_var, order, llrs);
  return llrs;
}

LlrVector demodulate_reference(std::span<const Complex> symbols,
                               std::span<const float> noise_var,
                               unsigned order) {
  if (symbols.size() != noise_var.size())
    throw std::invalid_argument("demodulate: size mismatch");
  const AxisTable& t = axis_table(order);
  const unsigned levels = 1u << t.bits_per_axis;

  LlrVector llrs(symbols.size() * order);
  std::array<float, 6> best;  // [axis_bit * 2 + value], bits_per_axis <= 3
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const float inv_var = 1.0f / std::max(noise_var[s], 1e-9f);
    for (unsigned axis = 0; axis < 2; ++axis) {
      const float y = axis == 0 ? symbols[s].real() : symbols[s].imag();
      best.fill(1e30f);
      for (unsigned lvl = 0; lvl < levels; ++lvl) {
        const float d = y - t.amplitude[lvl];
        const float dist = d * d;
        for (unsigned b = 0; b < t.bits_per_axis; ++b) {
          const unsigned value = (lvl >> (t.bits_per_axis - 1 - b)) & 1;
          float& slot = best[b * 2 + value];
          slot = std::min(slot, dist);
        }
      }
      // Axis bit b maps to symbol bit position 2*b + axis (I: 0,2,4;
      // Q: 1,3,5).
      for (unsigned b = 0; b < t.bits_per_axis; ++b)
        llrs[s * order + 2 * b + axis] =
            (best[b * 2 + 1] - best[b * 2 + 0]) * inv_var;
    }
  }
  return llrs;
}

}  // namespace rtopex::phy
