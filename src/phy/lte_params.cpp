#include "phy/lte_params.hpp"

#include <array>
#include <stdexcept>

namespace rtopex::phy {
namespace {

// Spectral efficiency per MCS in bits per resource element (subcarrier load D
// at 100% PRB utilization). Monotone, spanning the 0.16–3.7 range the paper
// reports for MCS 0–27 at 10 MHz; the modulation split (QPSK/16QAM/64QAM)
// follows the LTE uplink convention.
constexpr std::array<double, kMaxMcs + 1> kEfficiency = {
    // MCS 0..10: QPSK
    0.16, 0.21, 0.26, 0.33, 0.41, 0.50, 0.60, 0.72, 0.84, 0.95, 1.06,
    // MCS 11..20: 16QAM
    1.18, 1.33, 1.48, 1.66, 1.85, 2.04, 2.19, 2.33, 2.46, 2.59,
    // MCS 21..27: 64QAM
    2.76, 2.94, 3.12, 3.28, 3.45, 3.60, 3.775};

}  // namespace

BandwidthConfig bandwidth_config(Bandwidth bw) {
  switch (bw) {
    case Bandwidth::kMHz5:
      return {25, 512, 36, 7.68e6};
    case Bandwidth::kMHz10:
      return {50, 1024, 72, 15.36e6};
    case Bandwidth::kMHz20:
      return {100, 2048, 144, 30.72e6};
  }
  throw std::invalid_argument("unknown bandwidth");
}

unsigned modulation_order(unsigned mcs) {
  if (mcs > kMaxMcs) throw std::out_of_range("mcs > 27");
  if (mcs <= 10) return 2;
  if (mcs <= 20) return 4;
  return 6;
}

unsigned resource_elements(unsigned num_prb) {
  return num_prb * kSubcarriersPerPrb * kSymbolsPerSubframe;
}

unsigned data_resource_elements(unsigned num_prb) {
  return num_prb * kSubcarriersPerPrb * (kSymbolsPerSubframe - 2);
}

unsigned transport_block_size(unsigned mcs, unsigned num_prb) {
  if (mcs > kMaxMcs) throw std::out_of_range("mcs > 27");
  if (num_prb == 0) throw std::invalid_argument("num_prb == 0");
  const double bits = kEfficiency[mcs] * resource_elements(num_prb);
  // Byte-align and keep at least one byte of payload beyond the CRC.
  auto tbs = static_cast<unsigned>(bits / 8.0) * 8;
  if (tbs < 40) tbs = 40;
  return tbs;
}

double subcarrier_load(unsigned mcs, unsigned num_prb) {
  return static_cast<double>(transport_block_size(mcs, num_prb)) /
         static_cast<double>(resource_elements(num_prb));
}

unsigned num_code_blocks(unsigned mcs, unsigned num_prb) {
  const unsigned b = transport_block_size(mcs, num_prb) + kCrcLength;
  if (b <= kMaxCodeBlockSize) return 1;
  const unsigned payload = kMaxCodeBlockSize - kCrcLength;
  return (b + payload - 1) / payload;
}

}  // namespace rtopex::phy
