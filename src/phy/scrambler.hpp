// Gold-sequence scrambling (36.211 §7.2 style).
//
// c(n) = x1(n + Nc) XOR x2(n + Nc) with Nc = 1600, x1 seeded with a fixed
// pattern and x2 with c_init (derived from cell/user identity). Scrambling
// whitens the coded bits; the receiver flips LLR signs instead of bits.
#pragma once

#include <cstdint>
#include <span>

#include "phy/crc.hpp"
#include "phy/turbo.hpp"
#include "phy/workspace.hpp"

namespace rtopex::phy {

/// Generates `length` scrambling bits for the given initializer.
BitVector scrambling_sequence(std::uint32_t c_init, std::size_t length);

/// c_init as in 36.211: f(RNTI, subframe, cell id).
std::uint32_t scrambling_init(std::uint16_t rnti, std::uint32_t subframe_index,
                              std::uint16_t cell_id);

/// XORs `bits` with the sequence in place.
void scramble_bits(std::span<std::uint8_t> bits, std::uint32_t c_init);

/// Flips the sign of `llrs[i]` where the sequence bit is 1 (descrambling on
/// the soft path: a scrambled 1 inverts the bit, hence the LLR).
void descramble_llrs(std::span<float> llrs, std::uint32_t c_init);

/// Allocation-free descramble through the workspace's bounded LRU sequence
/// cache (ScrambleCache). A basestation cycles through at most 10 c_init
/// values, so a steady-state worker's whole rotation stays resident and
/// every call is a pure sign-flip pass; workers batching many basestations
/// evict least-recently-used entries instead of growing, keeping retained
/// memory capped at ScrambleCache::kEntries sequences. Gold sequences are
/// prefix-stable — c(n) depends only on n — so a cached longer sequence
/// serves shorter requests.
void descramble_llrs_cached(std::span<float> llrs, std::uint32_t c_init,
                            DecodeWorkspace& ws);

}  // namespace rtopex::phy
