// Code-block segmentation (36.212 §5.1.2 style).
//
// A transport block (with its CRC24A already attached) is split into C code
// blocks, each at most 6144 bits. When C > 1 every code block gets its own
// CRC24B, which is what lets the decode task be parallelized per code block
// (paper §2.2) — each block's decoder can early-terminate on its own CRC.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/crc.hpp"

namespace rtopex::phy {

struct Segmentation {
  std::vector<BitVector> blocks;  ///< each of grid size K (filler included).
  std::size_t block_size = 0;     ///< common K for all blocks.
  std::size_t filler_bits = 0;    ///< zero filler prepended to block 0.
  std::size_t payload_bits = 0;   ///< original input length B.

  std::size_t num_blocks() const { return blocks.size(); }
};

/// Segments `tb_with_crc` (the transport block including CRC24A).
/// For C > 1, each block ends with a CRC24B over its contents.
Segmentation segment_transport_block(const BitVector& tb_with_crc);

/// Reassembles the transport block from decoded code blocks: verifies each
/// CRC24B (when C > 1), strips filler and per-block CRCs.
/// `crc_ok` reports the per-block CRC results (all true when C == 1 — the
/// transport-block CRC24A is the caller's to check).
struct Desegmentation {
  BitVector tb_with_crc;
  std::vector<bool> crc_ok;
  bool all_ok = true;
};

Desegmentation desegment_transport_block(const std::vector<BitVector>& blocks,
                                         std::size_t payload_bits,
                                         std::size_t filler_bits);

}  // namespace rtopex::phy
