// LTE CRC generators (36.212 §5.1.1): gCRC24A protects the transport block,
// gCRC24B protects each code block after segmentation.
//
// The data path carries bits as std::vector<std::uint8_t> with one bit per
// element (values 0/1); CRCs operate directly on that representation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rtopex::phy {

using BitVector = std::vector<std::uint8_t>;

/// Generic bitwise CRC over a bit sequence. `poly` lists the generator
/// polynomial coefficients from x^len down to x^0 (so poly.size() == len+1
/// and poly.front() == 1). Reference implementation; the crc24a/crc24b
/// entry points below use a byte-wise 256-entry table instead and are
/// differentially tested against the *_reference forms.
std::uint32_t crc_bits(std::span<const std::uint8_t> bits,
                       std::span<const std::uint8_t> poly);

/// CRC-24A: x^24+x^23+x^18+x^17+x^14+x^11+x^10+x^7+x^6+x^5+x^4+x^3+x+1.
std::uint32_t crc24a(std::span<const std::uint8_t> bits);

/// CRC-24B: x^24+x^23+x^6+x^5+x+1.
std::uint32_t crc24b(std::span<const std::uint8_t> bits);

/// Bit-at-a-time LFSR forms of the same CRCs, retained for testing.
std::uint32_t crc24a_reference(std::span<const std::uint8_t> bits);
std::uint32_t crc24b_reference(std::span<const std::uint8_t> bits);

/// Appends the 24 CRC bits (MSB first) of the given kind to `bits`.
enum class CrcKind { kA, kB };
void attach_crc24(BitVector& bits, CrcKind kind);

/// True when the trailing 24 bits are a valid CRC over the preceding bits.
bool check_crc24(std::span<const std::uint8_t> bits_with_crc, CrcKind kind);

}  // namespace rtopex::phy
