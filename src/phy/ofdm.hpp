// OFDM symbol (de)modulation and reference signals.
//
// Subcarrier mapping is DC-centred: the nsc occupied subcarriers straddle
// bin 0, which stays empty (as in LTE downlink numerology; close enough to
// SC-FDMA for the compute-load purposes of this reproduction, see DESIGN.md).
// Each symbol carries a cyclic prefix so that short multipath channels stay
// free of inter-symbol interference.
#pragma once

#include <cstddef>

#include "phy/fft.hpp"
#include "phy/workspace.hpp"

namespace rtopex::phy {

/// FFT bin index for occupied subcarrier k in [0, nsc).
std::size_t subcarrier_bin(std::size_t k, std::size_t nsc,
                           std::size_t fft_size);

/// Zadoff–Chu sequence of the given root, cyclically extended from the
/// largest prime <= length (constant amplitude, used for DMRS).
IqVector zadoff_chu(unsigned root, std::size_t length);

/// The demodulation reference sequence for a cell (nsc entries).
IqVector dmrs_sequence(std::size_t nsc, unsigned cell_id);

/// Frequency-domain symbol (nsc subcarriers) -> time-domain samples
/// (cp + fft_size), via IFFT and cyclic-prefix insertion.
IqVector ofdm_modulate(const FftPlan& plan, std::span<const Complex> subcarriers,
                       std::size_t cp_samples);

/// Time-domain samples (cp + fft_size) -> nsc occupied subcarriers.
IqVector ofdm_demodulate(const FftPlan& plan, std::span<const Complex> samples,
                         std::size_t cp_samples, std::size_t nsc);

/// Allocation-free demodulation into `out` (exactly nsc entries): the
/// post-CP samples are deinterleaved into the workspace's split re/im
/// buffers, transformed via the SoA FFT path, and the occupied bins
/// gathered back out.
void ofdm_demodulate_into(const FftPlan& plan, std::span<const Complex> samples,
                          std::size_t cp_samples, std::span<Complex> out,
                          DecodeWorkspace& ws);

}  // namespace rtopex::phy
