// Gray-coded QPSK/16QAM/64QAM mapping and max-log LLR demapping
// (36.211 §7.1 constellations).
//
// LLR convention matches the turbo decoder: llr = log P(0) - log P(1),
// so a confidently-zero bit has a large positive LLR.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "phy/crc.hpp"
#include "phy/turbo.hpp"

namespace rtopex::phy {

using Complex = std::complex<float>;
using IqVector = std::vector<Complex>;

/// Maps bits to constellation symbols. `order` is bits per symbol: 2, 4, 6.
/// bits.size() must be a multiple of `order`. Average symbol energy is 1.
IqVector modulate(std::span<const std::uint8_t> bits, unsigned order);

/// Max-log LLR demapping of equalized symbols with per-symbol effective
/// noise variance. `noise_var` must have one entry per symbol (post-
/// equalization). Produces order * symbols.size() LLRs.
LlrVector demodulate(std::span<const Complex> symbols,
                     std::span<const float> noise_var, unsigned order);

/// Allocation-free demapper: writes order * symbols.size() LLRs into `out`
/// (which must be exactly that long). The axis decomposition is dispatched
/// once per call to an order-specialized kernel with compile-time level
/// counts, so the per-symbol loop is branchless and unrolled.
void demodulate_into(std::span<const Complex> symbols,
                     std::span<const float> noise_var, unsigned order,
                     std::span<float> out);

/// The original table-driven generic loop, retained as the differential
/// reference for demodulate_into.
LlrVector demodulate_reference(std::span<const Complex> symbols,
                               std::span<const float> noise_var,
                               unsigned order);

/// The constellation for a modulation order (2^order points, Gray mapped:
/// point index == packed bits, MSB = first bit).
std::span<const Complex> constellation(unsigned order);

}  // namespace rtopex::phy
