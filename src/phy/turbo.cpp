#include "phy/turbo.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace rtopex::phy {
namespace {

constexpr int kNumStates = 8;
constexpr float kNegInf = -1e30f;

// RSC state: (s0, s1, s2) = last three feedback values, s0 most recent,
// packed as s0 | s1<<1 | s2<<2.
//
// Feedback  a_t = u_t ^ s1 ^ s2          (g0 = 1 + D^2 + D^3)
// Parity    z_t = a_t ^ s0 ^ s2          (g1 = 1 + D + D^3)
// Next      (a_t, s0, s1)

struct Transition {
  std::uint8_t next;    // next state
  std::uint8_t parity;  // z for this (state, input)
};

struct Trellis {
  // [state][input] -> transition
  std::array<std::array<Transition, 2>, kNumStates> step{};
  // Termination input per state (drives the feedback to zero).
  std::array<std::uint8_t, kNumStates> term_input{};

  Trellis() {
    for (int s = 0; s < kNumStates; ++s) {
      const int s0 = s & 1;
      const int s1 = (s >> 1) & 1;
      const int s2 = (s >> 2) & 1;
      for (int u = 0; u < 2; ++u) {
        const int a = u ^ s1 ^ s2;
        const int z = a ^ s0 ^ s2;
        const int next = a | (s0 << 1) | (s1 << 2);
        step[s][u] = {static_cast<std::uint8_t>(next),
                      static_cast<std::uint8_t>(z)};
      }
      term_input[s] = static_cast<std::uint8_t>(s1 ^ s2);
    }
  }
};

const Trellis& trellis() {
  static const Trellis t;
  return t;
}

// One RSC encoder pass. Returns parity bits; appends the 3 termination
// (input, parity) pairs to tail_sys/tail_par and leaves the register at 0.
BitVector rsc_encode(std::span<const std::uint8_t> bits, BitVector& tail_sys,
                     BitVector& tail_par) {
  const Trellis& t = trellis();
  BitVector parity(bits.size());
  int state = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const auto& tr = t.step[state][bits[i] & 1];
    parity[i] = tr.parity;
    state = tr.next;
  }
  for (int i = 0; i < 3; ++i) {
    const std::uint8_t u = t.term_input[state];
    const auto& tr = t.step[state][u];
    tail_sys.push_back(u);
    tail_par.push_back(tr.parity);
    state = tr.next;
  }
  return parity;
}

// Max-log-MAP (BCJR) over one constituent code.
//
// Inputs are in the "metric" domain: llr(bit) = log P(0) - log P(1); a
// hypothesized bit b contributes 0.5 * sign(b) * llr with sign(0) = +1,
// sign(1) = -1. `sys_in` already contains channel-plus-apriori information
// for the K data positions and channel tail information for the last 3.
// Returns the a-posteriori LLR for the K data bits (not the tails).
//
// The trellis starts in state 0 and, thanks to termination, ends in state 0
// after K + 3 steps.
LlrVector siso_decode(std::span<const float> sys_in,
                      std::span<const float> par_in, std::size_t k) {
  const Trellis& t = trellis();
  const std::size_t steps = k + 3;
  if (sys_in.size() != steps || par_in.size() != steps)
    throw std::invalid_argument("siso_decode: bad input length");

  // Branch metric for (state s, input u) at step i.
  auto gamma = [&](std::size_t i, int s, int u) {
    const float bu = u == 0 ? 0.5f : -0.5f;
    const int z = t.step[s][u].parity;
    const float bz = z == 0 ? 0.5f : -0.5f;
    return bu * sys_in[i] + bz * par_in[i];
  };

  // The forward/backward metric arrays are large (8 floats per trellis
  // step); decoding is a hot path run concurrently from many cores, so the
  // scratch is recycled per thread instead of reallocated per call.
  thread_local std::vector<std::array<float, kNumStates>> alpha;
  thread_local std::vector<std::array<float, kNumStates>> beta_all;
  if (alpha.size() < steps + 1) {
    alpha.resize(steps + 1);
    beta_all.resize(steps + 1);
  }
  alpha[0].fill(kNegInf);
  alpha[0][0] = 0.0f;
  for (std::size_t i = 0; i < steps; ++i) {
    alpha[i + 1].fill(kNegInf);
    for (int s = 0; s < kNumStates; ++s) {
      if (alpha[i][s] <= kNegInf) continue;
      for (int u = 0; u < 2; ++u) {
        const int ns = t.step[s][u].next;
        const float m = alpha[i][s] + gamma(i, s, u);
        alpha[i + 1][ns] = std::max(alpha[i + 1][ns], m);
      }
    }
  }

  std::array<float, kNumStates> beta;
  beta.fill(kNegInf);
  beta[0] = 0.0f;  // terminated trellis
  beta_all[steps] = beta;
  for (std::size_t i = steps; i-- > 0;) {
    std::array<float, kNumStates> prev;
    prev.fill(kNegInf);
    for (int s = 0; s < kNumStates; ++s) {
      for (int u = 0; u < 2; ++u) {
        const int ns = t.step[s][u].next;
        if (beta_all[i + 1][ns] <= kNegInf) continue;
        const float m = beta_all[i + 1][ns] + gamma(i, s, u);
        prev[s] = std::max(prev[s], m);
      }
    }
    beta_all[i] = prev;
  }

  LlrVector out(k);
  for (std::size_t i = 0; i < k; ++i) {
    float m0 = kNegInf;
    float m1 = kNegInf;
    for (int s = 0; s < kNumStates; ++s) {
      if (alpha[i][s] <= kNegInf) continue;
      for (int u = 0; u < 2; ++u) {
        const int ns = t.step[s][u].next;
        const float m = alpha[i][s] + gamma(i, s, u) + beta_all[i + 1][ns];
        if (u == 0)
          m0 = std::max(m0, m);
        else
          m1 = std::max(m1, m);
      }
    }
    out[i] = m0 - m1;
  }
  return out;
}

// Flattened max-log-MAP over the same trellis, bit-identical to siso_decode:
//
//  * The four distinct branch metrics per step — gamma(u, z) =
//    (±0.5)·sys + (±0.5)·par — are precomputed into ws.gamma as
//    {a+b, a-b, b-a, -(a+b)} with a = 0.5f·sys, b = 0.5f·par. Each equals
//    the reference's bu·sys + bz·par exactly: multiplying by -0.5f instead
//    of 0.5f only flips the sign bit, IEEE negation is exact, and rounding
//    is symmetric.
//  * The 8-state transition structure is unrolled at compile time from the
//    generators (g0 = 1 + D^2 + D^3, g1 = 1 + D + D^3), removing the
//    per-branch table walk and the reachability branches. Unreachable
//    states are handled arithmetically: their metric is exactly kNegInf,
//    and kNegInf + gamma == kNegInf in float (the ulp at 1e30 dwarfs any
//    branch metric), so the branchless max yields the same floats the
//    guarded reference produces.
//  * Forward metrics go to ws.alpha (8 per step); backward metrics never
//    materialize — beta lives in 8 registers and the LLR extraction is
//    fused into the backward sweep.
//
// Association orders match the reference exactly: alpha-then-gamma,
// beta-then-gamma, (alpha + gamma) + beta.
void siso_decode_flat(const float* sys_in, const float* par_in, std::size_t k,
                      DecodeWorkspace& ws, float* app_out) {
  const std::size_t steps = k + 3;

  grow_buffer(ws.gamma, 4 * steps);
  grow_buffer(ws.alpha, 8 * (steps + 1));
  float* g = ws.gamma.data();
  float* alpha = ws.alpha.data();

  // Branch metrics, indexed (u << 1) | z.
  for (std::size_t i = 0; i < steps; ++i) {
    const float a = 0.5f * sys_in[i];
    const float b = 0.5f * par_in[i];
    g[4 * i + 0] = a + b;     // u=0, z=0
    g[4 * i + 1] = a - b;     // u=0, z=1
    g[4 * i + 2] = b - a;     // u=1, z=0
    g[4 * i + 3] = -(a + b);  // u=1, z=1
  }

  // Forward pass. Transition map (state s, input u) -> (next, z):
  //   s0: u0->(0,0) u1->(1,1)    s4: u0->(1,0) u1->(0,1)
  //   s1: u0->(2,1) u1->(3,0)    s5: u0->(3,1) u1->(2,0)
  //   s2: u0->(5,1) u1->(4,0)    s6: u0->(4,1) u1->(5,0)
  //   s3: u0->(7,0) u1->(6,1)    s7: u0->(6,0) u1->(7,1)
  alpha[0] = 0.0f;
  for (int s = 1; s < kNumStates; ++s) alpha[s] = kNegInf;
  for (std::size_t i = 0; i < steps; ++i) {
    const float* a = alpha + 8 * i;
    float* n = alpha + 8 * (i + 1);
    const float g0 = g[4 * i + 0];
    const float g1 = g[4 * i + 1];
    const float g2 = g[4 * i + 2];
    const float g3 = g[4 * i + 3];
    n[0] = std::max(a[0] + g0, a[4] + g3);
    n[1] = std::max(a[0] + g3, a[4] + g0);
    n[2] = std::max(a[1] + g1, a[5] + g2);
    n[3] = std::max(a[1] + g2, a[5] + g1);
    n[4] = std::max(a[2] + g2, a[6] + g1);
    n[5] = std::max(a[2] + g1, a[6] + g2);
    n[6] = std::max(a[3] + g3, a[7] + g0);
    n[7] = std::max(a[3] + g0, a[7] + g3);
  }

  // Backward sweep with fused LLR extraction. beta starts terminated (state
  // 0) at `steps`, walks the three tail steps, then emits app_out[i] from
  // (alpha[i], gamma[i], beta[i+1]) before retiring step i.
  float b0 = 0.0f, b1 = kNegInf, b2 = kNegInf, b3 = kNegInf;
  float b4 = kNegInf, b5 = kNegInf, b6 = kNegInf, b7 = kNegInf;
  auto beta_step = [&](std::size_t i) {
    const float g0 = g[4 * i + 0];
    const float g1 = g[4 * i + 1];
    const float g2 = g[4 * i + 2];
    const float g3 = g[4 * i + 3];
    const float p0 = std::max(b0 + g0, b1 + g3);
    const float p1 = std::max(b2 + g1, b3 + g2);
    const float p2 = std::max(b5 + g1, b4 + g2);
    const float p3 = std::max(b7 + g0, b6 + g3);
    const float p4 = std::max(b1 + g0, b0 + g3);
    const float p5 = std::max(b3 + g1, b2 + g2);
    const float p6 = std::max(b4 + g1, b5 + g2);
    const float p7 = std::max(b6 + g0, b7 + g3);
    b0 = p0; b1 = p1; b2 = p2; b3 = p3;
    b4 = p4; b5 = p5; b6 = p6; b7 = p7;
  };
  for (std::size_t i = steps; i-- > k;) beta_step(i);
  for (std::size_t i = k; i-- > 0;) {
    const float* a = alpha + 8 * i;
    const float g0 = g[4 * i + 0];
    const float g1 = g[4 * i + 1];
    const float g2 = g[4 * i + 2];
    const float g3 = g[4 * i + 3];
    float m0 = (a[0] + g0) + b0;
    m0 = std::max(m0, (a[1] + g1) + b2);
    m0 = std::max(m0, (a[2] + g1) + b5);
    m0 = std::max(m0, (a[3] + g0) + b7);
    m0 = std::max(m0, (a[4] + g0) + b1);
    m0 = std::max(m0, (a[5] + g1) + b3);
    m0 = std::max(m0, (a[6] + g1) + b4);
    m0 = std::max(m0, (a[7] + g0) + b6);
    float m1 = (a[0] + g3) + b1;
    m1 = std::max(m1, (a[1] + g2) + b3);
    m1 = std::max(m1, (a[2] + g2) + b4);
    m1 = std::max(m1, (a[3] + g3) + b6);
    m1 = std::max(m1, (a[4] + g3) + b0);
    m1 = std::max(m1, (a[5] + g2) + b2);
    m1 = std::max(m1, (a[6] + g2) + b5);
    m1 = std::max(m1, (a[7] + g3) + b7);
    app_out[i] = m0 - m1;
    beta_step(i);
  }
}

// Batched SoA variant of siso_decode_flat: every buffer holds lane-major
// rows of kTurboBatchLanes floats ([trellis step][8 states][8 lanes]), and
// each scalar statement of the flat kernel becomes one row statement whose
// lane loop is pure vertical arithmetic — lane b performs exactly the
// operations siso_decode_flat would on block b, in the same association
// order, so every lane is bit-identical to the scalar kernel by
// construction. The fixed power-of-two row width keeps the lane loops
// trivially vectorizable (one AVX2 vector or two NEON vectors per row) with
// contiguous, shuffle-free loads; the 8-state transition shuffles move
// whole rows, never elements within a row.
void siso_decode_flat_batch(const float* sys_in, const float* par_in,
                            std::size_t k, DecodeWorkspace& ws,
                            float* app_out) {
  constexpr std::size_t kL = kTurboBatchLanes;
  const std::size_t steps = k + 3;

  grow_buffer(ws.bat_gamma, 4 * steps * kL);
  grow_buffer(ws.bat_alpha, 8 * (steps + 1) * kL);
  float* __restrict__ g = ws.bat_gamma.data();
  float* __restrict__ alpha = ws.bat_alpha.data();

  // Branch-metric rows, indexed (u << 1) | z.
  for (std::size_t i = 0; i < steps; ++i) {
    const float* __restrict__ s = sys_in + i * kL;
    const float* __restrict__ p = par_in + i * kL;
    float* __restrict__ gi = g + 4 * i * kL;
    for (std::size_t b = 0; b < kL; ++b) {
      const float a = 0.5f * s[b];
      const float c = 0.5f * p[b];
      gi[0 * kL + b] = a + c;     // u=0, z=0
      gi[1 * kL + b] = a - c;     // u=0, z=1
      gi[2 * kL + b] = c - a;     // u=1, z=0
      gi[3 * kL + b] = -(a + c);  // u=1, z=1
    }
  }

  // Forward pass over the same transition map as the scalar kernel.
  for (std::size_t b = 0; b < kL; ++b) alpha[b] = 0.0f;
  for (std::size_t s = 1; s < 8; ++s)
    for (std::size_t b = 0; b < kL; ++b) alpha[s * kL + b] = kNegInf;
  for (std::size_t i = 0; i < steps; ++i) {
    const float* __restrict__ a = alpha + 8 * i * kL;
    float* __restrict__ n = alpha + 8 * (i + 1) * kL;
    const float* __restrict__ g0 = g + (4 * i + 0) * kL;
    const float* __restrict__ g1 = g + (4 * i + 1) * kL;
    const float* __restrict__ g2 = g + (4 * i + 2) * kL;
    const float* __restrict__ g3 = g + (4 * i + 3) * kL;
    for (std::size_t b = 0; b < kL; ++b) {
      n[0 * kL + b] = std::max(a[0 * kL + b] + g0[b], a[4 * kL + b] + g3[b]);
      n[1 * kL + b] = std::max(a[0 * kL + b] + g3[b], a[4 * kL + b] + g0[b]);
      n[2 * kL + b] = std::max(a[1 * kL + b] + g1[b], a[5 * kL + b] + g2[b]);
      n[3 * kL + b] = std::max(a[1 * kL + b] + g2[b], a[5 * kL + b] + g1[b]);
      n[4 * kL + b] = std::max(a[2 * kL + b] + g2[b], a[6 * kL + b] + g1[b]);
      n[5 * kL + b] = std::max(a[2 * kL + b] + g1[b], a[6 * kL + b] + g2[b]);
      n[6 * kL + b] = std::max(a[3 * kL + b] + g3[b], a[7 * kL + b] + g0[b]);
      n[7 * kL + b] = std::max(a[3 * kL + b] + g0[b], a[7 * kL + b] + g3[b]);
    }
  }

  // Backward sweep with fused LLR extraction; beta lives in two 8x8 row
  // blocks (64 floats each — 8 AVX2 vectors) that swap roles per step.
  alignas(64) float beta_a[8 * kL];
  alignas(64) float beta_b[8 * kL];
  float* __restrict__ bb = beta_a;
  float* __restrict__ bp = beta_b;
  for (std::size_t b = 0; b < kL; ++b) bb[b] = 0.0f;  // terminated trellis
  for (std::size_t s = 1; s < 8; ++s)
    for (std::size_t b = 0; b < kL; ++b) bb[s * kL + b] = kNegInf;
  const auto beta_step = [&](std::size_t i) {
    const float* __restrict__ g0 = g + (4 * i + 0) * kL;
    const float* __restrict__ g1 = g + (4 * i + 1) * kL;
    const float* __restrict__ g2 = g + (4 * i + 2) * kL;
    const float* __restrict__ g3 = g + (4 * i + 3) * kL;
    for (std::size_t b = 0; b < kL; ++b) {
      bp[0 * kL + b] = std::max(bb[0 * kL + b] + g0[b], bb[1 * kL + b] + g3[b]);
      bp[1 * kL + b] = std::max(bb[2 * kL + b] + g1[b], bb[3 * kL + b] + g2[b]);
      bp[2 * kL + b] = std::max(bb[5 * kL + b] + g1[b], bb[4 * kL + b] + g2[b]);
      bp[3 * kL + b] = std::max(bb[7 * kL + b] + g0[b], bb[6 * kL + b] + g3[b]);
      bp[4 * kL + b] = std::max(bb[1 * kL + b] + g0[b], bb[0 * kL + b] + g3[b]);
      bp[5 * kL + b] = std::max(bb[3 * kL + b] + g1[b], bb[2 * kL + b] + g2[b]);
      bp[6 * kL + b] = std::max(bb[4 * kL + b] + g1[b], bb[5 * kL + b] + g2[b]);
      bp[7 * kL + b] = std::max(bb[6 * kL + b] + g0[b], bb[7 * kL + b] + g3[b]);
    }
    std::swap(bb, bp);
  };
  for (std::size_t i = steps; i-- > k;) beta_step(i);
  for (std::size_t i = k; i-- > 0;) {
    const float* __restrict__ a = alpha + 8 * i * kL;
    const float* __restrict__ g0 = g + (4 * i + 0) * kL;
    const float* __restrict__ g1 = g + (4 * i + 1) * kL;
    const float* __restrict__ g2 = g + (4 * i + 2) * kL;
    const float* __restrict__ g3 = g + (4 * i + 3) * kL;
    float* __restrict__ out = app_out + i * kL;
    for (std::size_t b = 0; b < kL; ++b) {
      float m0 = (a[0 * kL + b] + g0[b]) + bb[0 * kL + b];
      m0 = std::max(m0, (a[1 * kL + b] + g1[b]) + bb[2 * kL + b]);
      m0 = std::max(m0, (a[2 * kL + b] + g1[b]) + bb[5 * kL + b]);
      m0 = std::max(m0, (a[3 * kL + b] + g0[b]) + bb[7 * kL + b]);
      m0 = std::max(m0, (a[4 * kL + b] + g0[b]) + bb[1 * kL + b]);
      m0 = std::max(m0, (a[5 * kL + b] + g1[b]) + bb[3 * kL + b]);
      m0 = std::max(m0, (a[6 * kL + b] + g1[b]) + bb[4 * kL + b]);
      m0 = std::max(m0, (a[7 * kL + b] + g0[b]) + bb[6 * kL + b]);
      float m1 = (a[0 * kL + b] + g3[b]) + bb[1 * kL + b];
      m1 = std::max(m1, (a[1 * kL + b] + g2[b]) + bb[3 * kL + b]);
      m1 = std::max(m1, (a[2 * kL + b] + g2[b]) + bb[4 * kL + b]);
      m1 = std::max(m1, (a[3 * kL + b] + g3[b]) + bb[6 * kL + b]);
      m1 = std::max(m1, (a[4 * kL + b] + g3[b]) + bb[0 * kL + b]);
      m1 = std::max(m1, (a[5 * kL + b] + g2[b]) + bb[2 * kL + b]);
      m1 = std::max(m1, (a[6 * kL + b] + g2[b]) + bb[5 * kL + b]);
      m1 = std::max(m1, (a[7 * kL + b] + g3[b]) + bb[7 * kL + b]);
      out[b] = m0 - m1;
    }
    beta_step(i);
  }
}

}  // namespace

TurboCodeword TurboEncoder::encode(std::span<const std::uint8_t> bits) const {
  const std::size_t k = interleaver_.size();
  if (bits.size() != k)
    throw std::invalid_argument("TurboEncoder: input size != K");

  BitVector input(bits.begin(), bits.end());
  BitVector tail_sys1, tail_par1, tail_sys2, tail_par2;
  BitVector parity1 = rsc_encode(input, tail_sys1, tail_par1);

  BitVector interleaved(k);
  for (std::size_t i = 0; i < k; ++i) interleaved[i] = input[interleaver_.map(i)];
  BitVector parity2 = rsc_encode(interleaved, tail_sys2, tail_par2);

  // Tail packing (4 extra entries per stream, 12 tail bits total):
  //   systematic: x_K  x_K+1  x_K+2  x'_K
  //   parity1:    z_K  z_K+1  z_K+2  z'_K
  //   parity2:    x'_K+1  x'_K+2  z'_K+1  z'_K+2
  TurboCodeword cw;
  cw.systematic = std::move(input);
  cw.systematic.insert(cw.systematic.end(),
                       {tail_sys1[0], tail_sys1[1], tail_sys1[2], tail_sys2[0]});
  cw.parity1 = std::move(parity1);
  cw.parity1.insert(cw.parity1.end(),
                    {tail_par1[0], tail_par1[1], tail_par1[2], tail_par2[0]});
  cw.parity2 = std::move(parity2);
  cw.parity2.insert(cw.parity2.end(),
                    {tail_sys2[1], tail_sys2[2], tail_par2[1], tail_par2[2]});
  return cw;
}

TurboDecodeResult TurboDecoder::decode(
    std::span<const float> systematic, std::span<const float> parity1,
    std::span<const float> parity2,
    const std::function<bool(std::span<const std::uint8_t>)>& crc_check,
    unsigned max_iterations_override) const {
  // Value-semantics convenience wrapper; the hot path calls decode_into with
  // the caller's workspace directly.
  thread_local DecodeWorkspace ws;
  decode_into(systematic, parity1, parity2, ws, crc_check,
              max_iterations_override);
  TurboDecodeResult result;
  result.bits.assign(ws.bits.begin(),
                     ws.bits.begin() +
                         static_cast<std::ptrdiff_t>(interleaver_.size()));
  result.iterations = ws.iterations;
  result.early_terminated = ws.early_terminated;
  return result;
}

void TurboDecoder::decode_into(
    std::span<const float> systematic, std::span<const float> parity1,
    std::span<const float> parity2, DecodeWorkspace& ws,
    const std::function<bool(std::span<const std::uint8_t>)>& crc_check,
    unsigned max_iterations_override) const {
  const std::size_t k = interleaver_.size();
  if (systematic.size() != k + 4 || parity1.size() != k + 4 ||
      parity2.size() != k + 4)
    throw std::invalid_argument("TurboDecoder: bad stream length");

  grow_buffer(ws.sys1, k + 3);
  grow_buffer(ws.par1, k + 3);
  grow_buffer(ws.sys2, k + 3);
  grow_buffer(ws.par2, k + 3);
  grow_buffer(ws.extrinsic1, k);
  grow_buffer(ws.extrinsic2, k);
  grow_buffer(ws.app, k);
  grow_buffer(ws.bits, k);
  float* sys1 = ws.sys1.data();
  float* par1 = ws.par1.data();
  float* sys2 = ws.sys2.data();
  float* par2 = ws.par2.data();
  float* extrinsic1 = ws.extrinsic1.data();
  float* extrinsic2 = ws.extrinsic2.data();
  float* app = ws.app.data();
  std::uint8_t* bits = ws.bits.data();

  // Tail unpacking identical to decode_reference (see encoder packing).
  for (std::size_t i = 0; i < k; ++i) par1[i] = parity1[i];
  for (std::size_t i = 0; i < 3; ++i) {
    sys1[k + i] = systematic[k + i];
    par1[k + i] = parity1[k + i];
  }
  for (std::size_t i = 0; i < k; ++i) par2[i] = parity2[i];
  sys2[k] = systematic[k + 3];
  sys2[k + 1] = parity2[k];
  sys2[k + 2] = parity2[k + 1];
  par2[k] = parity1[k + 3];
  par2[k + 1] = parity2[k + 2];
  par2[k + 2] = parity2[k + 3];

  for (std::size_t i = 0; i < k; ++i) extrinsic2[i] = 0.0f;
  for (std::size_t i = 0; i < k; ++i) bits[i] = 0;
  ws.iterations = 0;
  ws.early_terminated = false;

  const std::size_t* fwd = interleaver_.forward_map().data();
  const unsigned lm = max_iterations_override == 0
                          ? max_iterations_
                          : std::min(max_iterations_, max_iterations_override);
  for (unsigned iter = 1; iter <= lm; ++iter) {
    // --- SISO 1 ---
    for (std::size_t i = 0; i < k; ++i)
      sys1[i] = systematic[i] + extrinsic2[i];
    siso_decode_flat(sys1, par1, k, ws, app);
    for (std::size_t i = 0; i < k; ++i) extrinsic1[i] = app[i] - sys1[i];

    // --- SISO 2 (interleaved domain, gathered via the precomputed map) ---
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t src = fwd[i];
      sys2[i] = systematic[src] + extrinsic1[src];
    }
    siso_decode_flat(sys2, par2, k, ws, app);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t src = fwd[i];
      extrinsic2[src] = app[i] - sys2[i];
      bits[src] = app[i] < 0.0f ? 1 : 0;
    }
    ws.iterations = iter;

    if (crc_check && crc_check(std::span<const std::uint8_t>(bits, k))) {
      ws.early_terminated = true;
      break;
    }
  }
}

void TurboDecoder::decode_batch_into(
    std::span<const TurboBatchLane> lanes, DecodeWorkspace& ws,
    const std::function<bool(std::size_t lane,
                             std::span<const std::uint8_t>)>& crc_check,
    unsigned max_iterations_override) const {
  constexpr std::size_t kL = kTurboBatchLanes;
  const std::size_t k = interleaver_.size();
  const std::size_t n = lanes.size();
  if (n == 0 || n > kL)
    throw std::invalid_argument("decode_batch_into: 1..8 lanes required");
  for (const TurboBatchLane& lane : lanes)
    if (lane.systematic.size() != k + 4 || lane.parity1.size() != k + 4 ||
        lane.parity2.size() != k + 4)
      throw std::invalid_argument("TurboDecoder: bad stream length");

  grow_buffer(ws.bat_sysc, k * kL);
  grow_buffer(ws.bat_sys1, (k + 3) * kL);
  grow_buffer(ws.bat_par1, (k + 3) * kL);
  grow_buffer(ws.bat_sys2, (k + 3) * kL);
  grow_buffer(ws.bat_par2, (k + 3) * kL);
  grow_buffer(ws.bat_ext1, k * kL);
  grow_buffer(ws.bat_ext2, k * kL);
  grow_buffer(ws.bat_app, k * kL);
  grow_buffer(ws.bat_bits, k * kL);
  float* __restrict__ sysc = ws.bat_sysc.data();
  float* __restrict__ sys1 = ws.bat_sys1.data();
  float* __restrict__ par1 = ws.bat_par1.data();
  float* __restrict__ sys2 = ws.bat_sys2.data();
  float* __restrict__ par2 = ws.bat_par2.data();
  float* __restrict__ ext1 = ws.bat_ext1.data();
  float* __restrict__ ext2 = ws.bat_ext2.data();
  float* __restrict__ app = ws.bat_app.data();

  // Transpose the lane streams into lane-major rows; ragged tail lanes are
  // zero-filled, which keeps their metrics finite (the kNegInf arithmetic
  // never overflows) and their extrinsics identically zero — padding costs
  // no masking anywhere in the hot loops.
  for (std::size_t i = 0; i < k; ++i) {
    float* sc = sysc + i * kL;
    float* p1 = par1 + i * kL;
    float* p2 = par2 + i * kL;
    for (std::size_t b = 0; b < n; ++b) {
      sc[b] = lanes[b].systematic[i];
      p1[b] = lanes[b].parity1[i];
      p2[b] = lanes[b].parity2[i];
    }
    for (std::size_t b = n; b < kL; ++b) sc[b] = p1[b] = p2[b] = 0.0f;
  }
  // Tail rows, unpacked exactly as decode_into (see encoder packing).
  for (std::size_t i = 0; i < 3; ++i) {
    float* s1 = sys1 + (k + i) * kL;
    float* p1 = par1 + (k + i) * kL;
    float* s2 = sys2 + (k + i) * kL;
    float* p2 = par2 + (k + i) * kL;
    for (std::size_t b = 0; b < kL; ++b) s1[b] = p1[b] = s2[b] = p2[b] = 0.0f;
    for (std::size_t b = 0; b < n; ++b) {
      s1[b] = lanes[b].systematic[k + i];
      p1[b] = lanes[b].parity1[k + i];
    }
  }
  for (std::size_t b = 0; b < n; ++b) {
    sys2[(k + 0) * kL + b] = lanes[b].systematic[k + 3];
    sys2[(k + 1) * kL + b] = lanes[b].parity2[k];
    sys2[(k + 2) * kL + b] = lanes[b].parity2[k + 1];
    par2[(k + 0) * kL + b] = lanes[b].parity1[k + 3];
    par2[(k + 1) * kL + b] = lanes[b].parity2[k + 2];
    par2[(k + 2) * kL + b] = lanes[b].parity2[k + 3];
  }

  for (std::size_t i = 0; i < k * kL; ++i) ext2[i] = 0.0f;
  for (std::size_t b = 0; b < n; ++b) {
    std::uint8_t* bits = ws.bat_bits.data() + b * k;
    for (std::size_t i = 0; i < k; ++i) bits[i] = 0;
  }
  ws.bat_iterations.fill(0);
  ws.bat_early_terminated.fill(false);

  std::array<bool, kL> active{};
  for (std::size_t b = 0; b < n; ++b) active[b] = true;
  std::size_t num_active = n;

  const std::size_t* fwd = interleaver_.forward_map().data();
  const unsigned lm = max_iterations_override == 0
                          ? max_iterations_
                          : std::min(max_iterations_, max_iterations_override);
  for (unsigned iter = 1; iter <= lm && num_active > 0; ++iter) {
    // --- SISO 1 (rows 0..k-1 are contiguous: one flat vertical pass) ---
    for (std::size_t i = 0; i < k * kL; ++i) sys1[i] = sysc[i] + ext2[i];
    siso_decode_flat_batch(sys1, par1, k, ws, app);
    for (std::size_t i = 0; i < k * kL; ++i) ext1[i] = app[i] - sys1[i];

    // --- SISO 2 (interleaved domain; the gather moves whole rows, so each
    // QPP lookup serves all 8 lanes with one contiguous row copy) ---
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t src = fwd[i] * kL;
      float* s2 = sys2 + i * kL;
      for (std::size_t b = 0; b < kL; ++b)
        s2[b] = sysc[src + b] + ext1[src + b];
    }
    siso_decode_flat_batch(sys2, par2, k, ws, app);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t src = fwd[i] * kL;
      const float* ap = app + i * kL;
      const float* s2 = sys2 + i * kL;
      for (std::size_t b = 0; b < kL; ++b) ext2[src + b] = ap[b] - s2[b];
    }

    // Hard decisions and CRC per still-active lane; a lane whose CRC passes
    // freezes with exactly the bits and iteration count the scalar
    // decode_into would have returned for that block.
    for (std::size_t b = 0; b < n; ++b) {
      if (!active[b]) continue;
      std::uint8_t* bits = ws.bat_bits.data() + b * k;
      for (std::size_t i = 0; i < k; ++i)
        bits[fwd[i]] = app[i * kL + b] < 0.0f ? 1 : 0;
      ws.bat_iterations[b] = iter;
      if (crc_check &&
          crc_check(b, std::span<const std::uint8_t>(bits, k))) {
        ws.bat_early_terminated[b] = true;
        active[b] = false;
        --num_active;
      }
    }
  }
}

TurboDecodeResult TurboDecoder::decode_reference(
    std::span<const float> systematic, std::span<const float> parity1,
    std::span<const float> parity2,
    const std::function<bool(std::span<const std::uint8_t>)>& crc_check,
    unsigned max_iterations_override) const {
  const std::size_t k = interleaver_.size();
  if (systematic.size() != k + 4 || parity1.size() != k + 4 ||
      parity2.size() != k + 4)
    throw std::invalid_argument("TurboDecoder: bad stream length");

  // Unpack tails (see encoder packing).
  // Decoder 1 operates on [sys(K), x_K..x_K+2] and [par1(K), z_K..z_K+2].
  LlrVector sys1(k + 3), par1(k + 3);
  for (std::size_t i = 0; i < k; ++i) {
    sys1[i] = systematic[i];
    par1[i] = parity1[i];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    sys1[k + i] = systematic[k + i];
    par1[k + i] = parity1[k + i];
  }
  // Decoder 2 operates on interleaved systematic plus its own tails:
  // x'_K = systematic[k+3], x'_K+1/2 = parity2[k], parity2[k+1];
  // z'_K = parity1[k+3], z'_K+1/2 = parity2[k+2], parity2[k+3].
  LlrVector sys2(k + 3), par2(k + 3);
  for (std::size_t i = 0; i < k; ++i) par2[i] = parity2[i];
  sys2[k] = systematic[k + 3];
  sys2[k + 1] = parity2[k];
  sys2[k + 2] = parity2[k + 1];
  par2[k] = parity1[k + 3];
  par2[k + 1] = parity2[k + 2];
  par2[k + 2] = parity2[k + 3];

  LlrVector extrinsic2(k, 0.0f);  // from decoder 2, deinterleaved
  TurboDecodeResult result;
  result.bits.assign(k, 0);

  const unsigned lm = max_iterations_override == 0
                          ? max_iterations_
                          : std::min(max_iterations_, max_iterations_override);
  for (unsigned iter = 1; iter <= lm; ++iter) {
    // --- SISO 1 ---
    for (std::size_t i = 0; i < k; ++i)
      sys1[i] = systematic[i] + extrinsic2[i];
    const LlrVector app1 = siso_decode(sys1, par1, k);
    LlrVector extrinsic1(k);
    for (std::size_t i = 0; i < k; ++i)
      extrinsic1[i] = app1[i] - sys1[i];

    // --- SISO 2 (interleaved domain) ---
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t src = interleaver_.map(i);
      sys2[i] = systematic[src] + extrinsic1[src];
    }
    const LlrVector app2 = siso_decode(sys2, par2, k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t src = interleaver_.map(i);
      extrinsic2[src] = app2[i] - sys2[i];
    }

    // Hard decision from decoder 2's a-posteriori, deinterleaved.
    for (std::size_t i = 0; i < k; ++i)
      result.bits[interleaver_.map(i)] = app2[i] < 0.0f ? 1 : 0;
    result.iterations = iter;

    if (crc_check && crc_check(result.bits)) {
      result.early_terminated = true;
      break;
    }
  }
  return result;
}

}  // namespace rtopex::phy
