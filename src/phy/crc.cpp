#include "phy/crc.hpp"

#include <array>
#include <stdexcept>

namespace rtopex::phy {
namespace {

// Coefficients from x^24 down to x^0 (generic-LFSR form, kept as the
// reference the table path is differentially tested against).
constexpr std::array<std::uint8_t, 25> kPoly24A = {
    1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1, 0, 1, 1};
constexpr std::array<std::uint8_t, 25> kPoly24B = {
    1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1};

// Low 24 bits of the same polynomials (the x^24 term is implicit in the
// MSB-first shift).
constexpr std::uint32_t kPolyBits24A = 0x864CFB;
constexpr std::uint32_t kPolyBits24B = 0x800063;

constexpr std::array<std::uint32_t, 256> make_crc24_table(std::uint32_t poly) {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    std::uint32_t crc = byte << 16;
    for (int b = 0; b < 8; ++b)
      crc = (crc & 0x800000u) ? (((crc << 1) ^ poly) & 0xFFFFFFu)
                              : ((crc << 1) & 0xFFFFFFu);
    table[byte] = crc;
  }
  return table;
}

constexpr auto kTable24A = make_crc24_table(kPolyBits24A);
constexpr auto kTable24B = make_crc24_table(kPolyBits24B);

// Byte-wise table CRC over the one-bit-per-element representation. Any
// leading bits.size() % 8 bits are folded in one at a time, then the rest
// proceeds a byte per table lookup. CRC with zero init is prefix-
// composable, so chunking does not change the remainder.
std::uint32_t crc24_table(std::span<const std::uint8_t> bits,
                          const std::array<std::uint32_t, 256>& table,
                          std::uint32_t poly) {
  std::uint32_t crc = 0;
  std::size_t i = 0;
  const std::size_t lead = bits.size() % 8;
  for (; i < lead; ++i) {
    const std::uint32_t fb = ((crc >> 23) ^ bits[i]) & 1u;
    crc = ((crc << 1) & 0xFFFFFFu) ^ (fb ? poly : 0u);
  }
  for (; i < bits.size(); i += 8) {
    std::uint32_t byte = 0;
    for (int b = 0; b < 8; ++b)
      byte = (byte << 1) | (bits[i + b] & 1u);
    crc = ((crc << 8) & 0xFFFFFFu) ^ table[((crc >> 16) ^ byte) & 0xFFu];
  }
  // The LFSR reference clocks 24 explicit flush steps after the message
  // (its register sees bits followed by 24 zeros), scaling the remainder by
  // an extra x^24 mod G. Three zero-byte folds reproduce that exactly.
  for (int n = 0; n < 3; ++n)
    crc = ((crc << 8) & 0xFFFFFFu) ^ table[(crc >> 16) & 0xFFu];
  return crc;
}

}  // namespace

std::uint32_t crc_bits(std::span<const std::uint8_t> bits,
                       std::span<const std::uint8_t> poly) {
  if (poly.size() < 2 || poly.front() != 1)
    throw std::invalid_argument("crc_bits: malformed polynomial");
  const std::size_t len = poly.size() - 1;
  std::vector<std::uint8_t> reg(len, 0);
  for (std::size_t i = 0; i < bits.size() + len; ++i) {
    const std::uint8_t in = i < bits.size() ? (bits[i] & 1) : 0;
    const std::uint8_t feedback = static_cast<std::uint8_t>(reg[0] ^ in);
    for (std::size_t j = 0; j + 1 < len; ++j)
      reg[j] = static_cast<std::uint8_t>(reg[j + 1] ^ (feedback & poly[j + 1]));
    reg[len - 1] = static_cast<std::uint8_t>(feedback & poly[len]);
  }
  std::uint32_t crc = 0;
  for (std::size_t j = 0; j < len; ++j) crc = (crc << 1) | reg[j];
  return crc;
}

std::uint32_t crc24a_reference(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, kPoly24A);
}

std::uint32_t crc24b_reference(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, kPoly24B);
}

std::uint32_t crc24a(std::span<const std::uint8_t> bits) {
  return crc24_table(bits, kTable24A, kPolyBits24A);
}

std::uint32_t crc24b(std::span<const std::uint8_t> bits) {
  return crc24_table(bits, kTable24B, kPolyBits24B);
}

void attach_crc24(BitVector& bits, CrcKind kind) {
  const std::uint32_t crc =
      kind == CrcKind::kA ? crc24a(bits) : crc24b(bits);
  for (int b = 23; b >= 0; --b)
    bits.push_back(static_cast<std::uint8_t>((crc >> b) & 1));
}

bool check_crc24(std::span<const std::uint8_t> bits_with_crc, CrcKind kind) {
  if (bits_with_crc.size() < 24) return false;
  const auto payload = bits_with_crc.first(bits_with_crc.size() - 24);
  const std::uint32_t crc =
      kind == CrcKind::kA ? crc24a(payload) : crc24b(payload);
  for (int b = 0; b < 24; ++b) {
    const std::uint8_t expected =
        static_cast<std::uint8_t>((crc >> (23 - b)) & 1);
    if (bits_with_crc[bits_with_crc.size() - 24 + b] != expected) return false;
  }
  return true;
}

}  // namespace rtopex::phy
