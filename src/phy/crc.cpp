#include "phy/crc.hpp"

#include <array>
#include <stdexcept>

namespace rtopex::phy {
namespace {

// Coefficients from x^24 down to x^0.
constexpr std::array<std::uint8_t, 25> kPoly24A = {
    1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1, 0, 1, 1};
constexpr std::array<std::uint8_t, 25> kPoly24B = {
    1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1};

}  // namespace

std::uint32_t crc_bits(std::span<const std::uint8_t> bits,
                       std::span<const std::uint8_t> poly) {
  if (poly.size() < 2 || poly.front() != 1)
    throw std::invalid_argument("crc_bits: malformed polynomial");
  const std::size_t len = poly.size() - 1;
  std::vector<std::uint8_t> reg(len, 0);
  for (std::size_t i = 0; i < bits.size() + len; ++i) {
    const std::uint8_t in = i < bits.size() ? (bits[i] & 1) : 0;
    const std::uint8_t feedback = static_cast<std::uint8_t>(reg[0] ^ in);
    for (std::size_t j = 0; j + 1 < len; ++j)
      reg[j] = static_cast<std::uint8_t>(reg[j + 1] ^ (feedback & poly[j + 1]));
    reg[len - 1] = static_cast<std::uint8_t>(feedback & poly[len]);
  }
  std::uint32_t crc = 0;
  for (std::size_t j = 0; j < len; ++j) crc = (crc << 1) | reg[j];
  return crc;
}

std::uint32_t crc24a(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, kPoly24A);
}

std::uint32_t crc24b(std::span<const std::uint8_t> bits) {
  return crc_bits(bits, kPoly24B);
}

void attach_crc24(BitVector& bits, CrcKind kind) {
  const std::uint32_t crc =
      kind == CrcKind::kA ? crc24a(bits) : crc24b(bits);
  for (int b = 23; b >= 0; --b)
    bits.push_back(static_cast<std::uint8_t>((crc >> b) & 1));
}

bool check_crc24(std::span<const std::uint8_t> bits_with_crc, CrcKind kind) {
  if (bits_with_crc.size() < 24) return false;
  const auto payload = bits_with_crc.first(bits_with_crc.size() - 24);
  const std::uint32_t crc =
      kind == CrcKind::kA ? crc24a(payload) : crc24b(payload);
  for (int b = 0; b < 24; ++b) {
    const std::uint8_t expected =
        static_cast<std::uint8_t>((crc >> (23 - b)) & 1);
    if (bits_with_crc[bits_with_crc.size() - 24 + b] != expected) return false;
  }
  return true;
}

}  // namespace rtopex::phy
