// Uplink transmitter: builds a decodable subframe for one user occupying all
// allocated PRBs (the paper's conservative single-user, 100%-PRB scenario,
// §4.2). Output is one time-domain sample stream; the channel model fans it
// out to N receive antennas.
#pragma once

#include <cstdint>

#include "phy/fft.hpp"
#include "phy/lte_params.hpp"
#include "phy/modulation.hpp"
#include "phy/segmentation.hpp"
#include "phy/turbo.hpp"

namespace rtopex::phy {

/// Static configuration of one basestation's uplink.
struct UplinkConfig {
  Bandwidth bandwidth = Bandwidth::kMHz10;
  unsigned num_antennas = 2;      ///< receive antennas N.
  unsigned max_iterations = 4;    ///< turbo decoder Lm (paper: 4).
  std::uint16_t rnti = 0x003D;    ///< user identity (scrambling).
  std::uint16_t cell_id = 0;      ///< cell identity (scrambling + DMRS).

  BandwidthConfig bw_config() const { return bandwidth_config(bandwidth); }
  unsigned num_prb() const { return bw_config().num_prb; }
  unsigned num_subcarriers() const { return num_prb() * kSubcarriersPerPrb; }
};

/// Everything the receiver needs to verify a decoded subframe in tests, plus
/// the transmitted samples.
struct TxSubframe {
  BitVector payload;        ///< transport block bits (before CRC24A).
  IqVector samples;         ///< 14 * (cp + fft) time-domain samples.
  unsigned mcs = 0;
  std::uint32_t subframe_index = 0;
};

/// Per-code-block rate-matching geometry shared by TX and RX.
struct CodeBlockLayout {
  std::size_t block_size = 0;          ///< turbo K.
  std::size_t filler_bits = 0;
  std::size_t payload_bits = 0;        ///< TB bits incl. CRC24A.
  std::vector<std::size_t> e_bits;     ///< coded bits per block (sums to G).
};

/// Computes the layout for (mcs, config): segmentation sizes and the split
/// of the G = data_REs * Qm coded bits across code blocks (multiples of Qm).
CodeBlockLayout code_block_layout(const UplinkConfig& config, unsigned mcs);

class UplinkTransmitter {
 public:
  explicit UplinkTransmitter(const UplinkConfig& config);

  /// Encodes random payload bits (drawn from `payload_seed`) at the given
  /// MCS into a transmitted subframe.
  TxSubframe transmit(unsigned mcs, std::uint32_t subframe_index,
                      std::uint64_t payload_seed) const;

  const UplinkConfig& config() const { return config_; }

 private:
  UplinkConfig config_;
  FftPlan fft_;
  IqVector dmrs_;
};

}  // namespace rtopex::phy
