// LTE-style rate-1/3 turbo codec.
//
// Two 8-state recursive systematic convolutional (RSC) constituent encoders
// with generators g0 = 1 + D^2 + D^3 (feedback) and g1 = 1 + D + D^3
// (parity), coupled by a QPP interleaver, with explicit trellis termination
// (12 tail bits). The decoder is an iterative max-log-MAP (BCJR) with
// optional early termination via a caller-supplied CRC check — the source of
// the non-deterministic iteration count L in the paper's Eq. (1).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "phy/crc.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/workspace.hpp"

namespace rtopex::phy {

using LlrVector = std::vector<float>;

/// Encoded streams for one code block of size K. Each stream has K + 4
/// entries; the last four of each carry the 12 termination (tail) bits
/// (see turbo.cpp for the packing).
struct TurboCodeword {
  BitVector systematic;  ///< K + 4
  BitVector parity1;     ///< K + 4
  BitVector parity2;     ///< K + 4

  std::size_t block_size() const { return systematic.size() - 4; }
};

class TurboEncoder {
 public:
  explicit TurboEncoder(const QppInterleaver& interleaver)
      : interleaver_(interleaver) {}

  /// Encodes exactly interleaver.size() bits.
  TurboCodeword encode(std::span<const std::uint8_t> bits) const;

 private:
  const QppInterleaver& interleaver_;
};

struct TurboDecodeResult {
  BitVector bits;           ///< K hard decisions.
  unsigned iterations = 0;  ///< full (SISO1+SISO2) iterations executed.
  bool early_terminated = false;  ///< CRC passed before max_iterations.
};

/// Lane width of the batched SoA decoder: one SISO pass advances this many
/// code blocks per instruction stream. Eight lanes fill one AVX2 vector
/// (two NEON vectors); callers may submit fewer blocks — the ragged tail
/// lanes are padded internally and cost nothing extra.
inline constexpr std::size_t kTurboBatchLanes = 8;

/// One code block's channel LLR streams for a batched decode. All lanes of
/// one decode_batch_into call must share the decoder's K (same interleaver);
/// each span is K + 4 entries, packed like TurboCodeword.
struct TurboBatchLane {
  std::span<const float> systematic;
  std::span<const float> parity1;
  std::span<const float> parity2;
};

class TurboDecoder {
 public:
  /// `max_iterations` is the paper's Lm (default 4, as in §2.1).
  explicit TurboDecoder(const QppInterleaver& interleaver,
                        unsigned max_iterations = 4)
      : interleaver_(interleaver), max_iterations_(max_iterations) {}

  /// Decodes from channel LLRs (positive LLR == bit 0 more likely... see
  /// convention note below). Each LLR vector must be K + 4 long, matching
  /// TurboCodeword streams; punctured positions carry 0.
  ///
  /// LLR convention: llr = log(P(bit=0)/P(bit=1)) — the demapper and the
  /// decoder agree on this throughout the PHY.
  ///
  /// `crc_check` (may be empty) is invoked on the K hard-decision bits after
  /// every iteration; returning true stops decoding early.
  ///
  /// `max_iterations_override`, when non-zero, caps the iteration count below
  /// the configured Lm for this call only — the degraded-mode knob: a slack
  /// check that cannot fit the full-quality decode shrinks the cap instead of
  /// dropping the subframe.
  TurboDecodeResult decode(
      std::span<const float> systematic, std::span<const float> parity1,
      std::span<const float> parity2,
      const std::function<bool(std::span<const std::uint8_t>)>& crc_check = {},
      unsigned max_iterations_override = 0) const;

  /// Zero-allocation decode: all intermediates (SISO inputs, extrinsics,
  /// the per-step branch-metric table, forward metrics, hard decisions) live
  /// in `ws` and only ever grow. Results land in ws.bits (first K entries),
  /// ws.iterations and ws.early_terminated. The flattened SISO produces
  /// bit-identical hard decisions and iteration counts to decode_reference
  /// (asserted by the kernel differential tests).
  void decode_into(
      std::span<const float> systematic, std::span<const float> parity1,
      std::span<const float> parity2, DecodeWorkspace& ws,
      const std::function<bool(std::span<const std::uint8_t>)>& crc_check = {},
      unsigned max_iterations_override = 0) const;

  /// Batched SoA decode of 1..kTurboBatchLanes code blocks: the state
  /// metrics live in lane-major rows ([trellis step][8 states][8 lanes]) so
  /// one forward/backward sweep advances every block with vertical,
  /// per-lane-independent arithmetic. Because each lane performs exactly
  /// the operations of decode_into in the same association order, every
  /// lane's hard decisions, iteration count and early-termination flag are
  /// bit-identical to a scalar decode_into of that block alone (asserted by
  /// the kernel differential tests, including ragged tails of 1..7 lanes).
  ///
  /// `crc_check` (may be empty) is called per lane after every iteration;
  /// a lane whose CRC passes is frozen — its outputs stop updating — while
  /// the remaining lanes keep iterating (wall time is governed by the
  /// slowest lane, as on a single core it would be anyway).
  ///
  /// Results land in ws.bat_bits (lane b occupies [b*K, (b+1)*K)),
  /// ws.bat_iterations[b] and ws.bat_early_terminated[b]. All scratch is
  /// grow-only workspace state: zero allocations once warm.
  void decode_batch_into(
      std::span<const TurboBatchLane> lanes, DecodeWorkspace& ws,
      const std::function<bool(std::size_t lane,
                               std::span<const std::uint8_t>)>& crc_check = {},
      unsigned max_iterations_override = 0) const;

  /// The original branchy per-lambda-gamma implementation, retained as the
  /// differential reference for decode / decode_into.
  TurboDecodeResult decode_reference(
      std::span<const float> systematic, std::span<const float> parity1,
      std::span<const float> parity2,
      const std::function<bool(std::span<const std::uint8_t>)>& crc_check = {},
      unsigned max_iterations_override = 0) const;

  unsigned max_iterations() const { return max_iterations_; }

 private:
  const QppInterleaver& interleaver_;
  unsigned max_iterations_;
};

}  // namespace rtopex::phy
