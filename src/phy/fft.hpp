// Power-of-two radix-2 FFT with precomputed twiddles.
//
// The OFDM (de)modulation runs one transform per OFDM symbol per antenna —
// the "FFT task" of the paper, parallelizable across its 14 * N subtasks
// (§2.2). A plan is immutable after construction and safe to share across
// threads executing transforms on distinct buffers.
//
// Two execution paths share the plan's tables:
//   * forward/inverse — structure-of-arrays (split re/im) transform. The
//     split layout gives contiguous unit-stride butterflies per stage that
//     autovectorize, and avoids libstdc++'s __mulsc3 complex multiply. With
//     -DRTOPEX_SIMD the inner butterflies additionally use explicit 8-wide
//     AVX2 (or 4-wide NEON) kernels.
//   * transform — the retained scalar interleaved fallback, kept as the
//     in-place reference for the differential tests.
// Conjugation for the inverse direction is hoisted into a second twiddle
// table at plan construction; neither path branches per butterfly.
#pragma once

#include <cstddef>
#include <span>

#include "phy/modulation.hpp"

namespace rtopex::phy {

class FftPlan {
 public:
  /// `size` must be a power of two >= 2.
  explicit FftPlan(std::size_t size);

  std::size_t size() const { return size_; }

  /// In-place forward DFT (no normalization).
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT, normalized by 1/N (so inverse(forward(x)) == x).
  void inverse(std::span<Complex> data) const;

  /// Split re/im in-place transforms. Both spans must be `size()` long;
  /// the inverse variant normalizes by 1/N. This is the zero-allocation
  /// entry point: callers own the split buffers (see DecodeWorkspace).
  void forward_soa(std::span<float> re, std::span<float> im) const;
  void inverse_soa(std::span<float> re, std::span<float> im) const;

  /// Retained scalar interleaved fallback (and differential reference):
  /// same radix-2 schedule as the SoA path, one butterfly at a time.
  void transform(std::span<Complex> data, bool invert) const;

 private:
  void transform_soa(float* re, float* im, bool invert) const;

  std::size_t size_;
  /// Per-stage twiddle tables, stage with half-length h at offset h - 1
  /// (h = 1, 2, 4, ...): tw_re_[h-1+k] + i*tw_im_fwd_[h-1+k] = e^{-iπk/h}.
  /// The inverse table carries the conjugate so no path branches on
  /// direction per butterfly.
  std::vector<float> tw_re_;
  std::vector<float> tw_im_fwd_;
  std::vector<float> tw_im_inv_;
  std::vector<std::uint32_t> reversal_;  ///< bit-reversal permutation.
};

/// O(N^2) reference DFT for testing.
IqVector reference_dft(std::span<const Complex> data, bool invert);

}  // namespace rtopex::phy
