// Power-of-two radix-2 FFT with precomputed twiddles.
//
// The OFDM (de)modulation runs one transform per OFDM symbol per antenna —
// the "FFT task" of the paper, parallelizable across its 14 * N subtasks
// (§2.2). A plan is immutable after construction and safe to share across
// threads executing transforms on distinct buffers.
#pragma once

#include <cstddef>
#include <span>

#include "phy/modulation.hpp"

namespace rtopex::phy {

class FftPlan {
 public:
  /// `size` must be a power of two >= 2.
  explicit FftPlan(std::size_t size);

  std::size_t size() const { return size_; }

  /// In-place forward DFT (no normalization).
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT, normalized by 1/N (so inverse(forward(x)) == x).
  void inverse(std::span<Complex> data) const;

 private:
  void transform(std::span<Complex> data, bool invert) const;

  std::size_t size_;
  std::vector<Complex> twiddles_;       // e^{-2πik/N}, k < N/2
  std::vector<std::uint32_t> reversal_;  // bit-reversal permutation
};

/// O(N^2) reference DFT for testing.
IqVector reference_dft(std::span<const Complex> data, bool invert);

}  // namespace rtopex::phy
