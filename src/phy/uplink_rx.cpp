#include "phy/uplink_rx.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "phy/ofdm.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"

#if defined(RTOPEX_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#elif defined(RTOPEX_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace rtopex::phy {
namespace {

/// Indices of the 12 data symbols (all except the two DMRS positions).
std::array<unsigned, 12> data_symbol_indices() {
  std::array<unsigned, 12> idx{};
  unsigned j = 0;
  for (unsigned s = 0; s < kSymbolsPerSubframe; ++s)
    if (s != kDmrsSymbol0 && s != kDmrsSymbol1) idx[j++] = s;
  return idx;
}

#if defined(RTOPEX_SIMD) && defined(__AVX2__)

/// MRC + equalization for 8 subcarriers per pass. Lane arithmetic mirrors
/// the scalar loop expression-for-expression (mul/add plus one IEEE divide
/// per output, no FMA), so the vector path is bit-identical to the scalar
/// tail — the same contract the demapper and turbo SIMD paths honor.
/// Returns the number of subcarriers handled; the caller finishes the tail.
std::size_t mrc_equalize_simd(const std::vector<IqVector>& channel_est,
                              const std::vector<IqVector>& grid,
                              unsigned symbol, unsigned n, float noise_var,
                              std::size_t nsc, Complex* eq_out,
                              float* noise_out) {
  const std::size_t blocks = nsc / 8;
  const __m256i vperm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const __m256 vfloor = _mm256_set1_ps(1e-12f);
  const __m256 vnoise = _mm256_set1_ps(noise_var);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    __m256 num_re = _mm256_setzero_ps();
    __m256 num_im = _mm256_setzero_ps();
    __m256 denom = _mm256_setzero_ps();
    for (unsigned a = 0; a < n; ++a) {
      const float* hp =
          reinterpret_cast<const float*>(channel_est[a].data()) + blk * 16;
      const float* yp = reinterpret_cast<const float*>(
                            grid[a * kSymbolsPerSubframe + symbol].data()) +
                        blk * 16;
      const __m256 h0 = _mm256_loadu_ps(hp);
      const __m256 h1 = _mm256_loadu_ps(hp + 8);
      const __m256 g0 = _mm256_loadu_ps(yp);
      const __m256 g1 = _mm256_loadu_ps(yp + 8);
      const __m256 hr =
          _mm256_permutevar8x32_ps(_mm256_shuffle_ps(h0, h1, 0x88), vperm);
      const __m256 hi =
          _mm256_permutevar8x32_ps(_mm256_shuffle_ps(h0, h1, 0xDD), vperm);
      const __m256 yr =
          _mm256_permutevar8x32_ps(_mm256_shuffle_ps(g0, g1, 0x88), vperm);
      const __m256 yi =
          _mm256_permutevar8x32_ps(_mm256_shuffle_ps(g0, g1, 0xDD), vperm);
      num_re = _mm256_add_ps(
          num_re,
          _mm256_add_ps(_mm256_mul_ps(hr, yr), _mm256_mul_ps(hi, yi)));
      num_im = _mm256_add_ps(
          num_im,
          _mm256_sub_ps(_mm256_mul_ps(hr, yi), _mm256_mul_ps(hi, yr)));
      denom = _mm256_add_ps(
          denom, _mm256_add_ps(_mm256_mul_ps(hr, hr), _mm256_mul_ps(hi, hi)));
    }
    denom = _mm256_max_ps(denom, vfloor);
    const __m256 eq_re = _mm256_div_ps(num_re, denom);
    const __m256 eq_im = _mm256_div_ps(num_im, denom);
    const __m256 ilo = _mm256_unpacklo_ps(eq_re, eq_im);
    const __m256 ihi = _mm256_unpackhi_ps(eq_re, eq_im);
    float* ep = reinterpret_cast<float*>(eq_out) + blk * 16;
    _mm256_storeu_ps(ep, _mm256_permute2f128_ps(ilo, ihi, 0x20));
    _mm256_storeu_ps(ep + 8, _mm256_permute2f128_ps(ilo, ihi, 0x31));
    _mm256_storeu_ps(noise_out + blk * 8, _mm256_div_ps(vnoise, denom));
  }
  return blocks * 8;
}

#elif defined(RTOPEX_SIMD) && defined(__ARM_NEON)

/// NEON analogue: 4 subcarriers per pass (vld2q/vst2q do the re/im
/// (de)interleave directly). Same expression schedule, hence bit-identical.
std::size_t mrc_equalize_simd(const std::vector<IqVector>& channel_est,
                              const std::vector<IqVector>& grid,
                              unsigned symbol, unsigned n, float noise_var,
                              std::size_t nsc, Complex* eq_out,
                              float* noise_out) {
  const std::size_t blocks = nsc / 4;
  const float32x4_t vfloor = vdupq_n_f32(1e-12f);
  const float32x4_t vnoise = vdupq_n_f32(noise_var);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    float32x4_t num_re = vdupq_n_f32(0.0f);
    float32x4_t num_im = vdupq_n_f32(0.0f);
    float32x4_t denom = vdupq_n_f32(0.0f);
    for (unsigned a = 0; a < n; ++a) {
      const float* hp =
          reinterpret_cast<const float*>(channel_est[a].data()) + blk * 8;
      const float* yp = reinterpret_cast<const float*>(
                            grid[a * kSymbolsPerSubframe + symbol].data()) +
                        blk * 8;
      const float32x4x2_t h = vld2q_f32(hp);
      const float32x4x2_t y = vld2q_f32(yp);
      num_re = vaddq_f32(num_re, vaddq_f32(vmulq_f32(h.val[0], y.val[0]),
                                           vmulq_f32(h.val[1], y.val[1])));
      num_im = vaddq_f32(num_im, vsubq_f32(vmulq_f32(h.val[0], y.val[1]),
                                           vmulq_f32(h.val[1], y.val[0])));
      denom = vaddq_f32(denom, vaddq_f32(vmulq_f32(h.val[0], h.val[0]),
                                         vmulq_f32(h.val[1], h.val[1])));
    }
    denom = vmaxq_f32(denom, vfloor);
    float32x4x2_t eq;
    eq.val[0] = vdivq_f32(num_re, denom);
    eq.val[1] = vdivq_f32(num_im, denom);
    vst2q_f32(reinterpret_cast<float*>(eq_out) + blk * 8, eq);
    vst1q_f32(noise_out + blk * 4, vdivq_f32(vnoise, denom));
  }
  return blocks * 4;
}

#endif

}  // namespace

/// Per-MCS decode context: segmentation layout plus the codec objects for
/// that block size, built once at processor construction.
struct McsContext {
  CodeBlockLayout layout;
  std::shared_ptr<QppInterleaver> interleaver;
  std::shared_ptr<TurboDecoder> decoder;
  std::shared_ptr<RateMatcher> matcher;
  std::vector<std::size_t> e_offsets;  ///< start of each block's LLR span.
};

struct UplinkRxProcessor::Impl {
  FftPlan fft;
  IqVector dmrs;
  std::array<unsigned, 12> data_symbols = data_symbol_indices();
  std::vector<McsContext> per_mcs;  ///< indexed by MCS.

  explicit Impl(const UplinkConfig& config)
      : fft(config.bw_config().fft_size),
        dmrs(dmrs_sequence(config.num_subcarriers(), config.cell_id)) {}
};

UplinkRxProcessor::UplinkRxProcessor(const UplinkConfig& config)
    : config_(config), impl_(std::make_unique<Impl>(config)) {
  // Build per-MCS contexts, sharing codecs across MCS with equal block size.
  impl_->per_mcs.resize(kMaxMcs + 1);
  std::vector<std::pair<std::size_t, std::size_t>> built;  // (K, mcs index)
  for (unsigned mcs = 0; mcs <= kMaxMcs; ++mcs) {
    McsContext& ctx = impl_->per_mcs[mcs];
    ctx.layout = code_block_layout(config_, mcs);
    const std::size_t k = ctx.layout.block_size;
    const auto it = std::find_if(built.begin(), built.end(),
                                 [&](const auto& p) { return p.first == k; });
    if (it != built.end()) {
      const McsContext& src = impl_->per_mcs[it->second];
      ctx.interleaver = src.interleaver;
      ctx.decoder = src.decoder;
      ctx.matcher = src.matcher;
    } else {
      ctx.interleaver = std::make_shared<QppInterleaver>(k);
      ctx.decoder = std::make_shared<TurboDecoder>(*ctx.interleaver,
                                                   config_.max_iterations);
      ctx.matcher = std::make_shared<RateMatcher>(k);
      built.emplace_back(k, mcs);
    }
    ctx.e_offsets.resize(ctx.layout.e_bits.size());
    std::size_t off = 0;
    for (std::size_t b = 0; b < ctx.layout.e_bits.size(); ++b) {
      ctx.e_offsets[b] = off;
      off += ctx.layout.e_bits[b];
    }
  }
}

UplinkRxProcessor::~UplinkRxProcessor() = default;

UplinkRxProcessor::Job UplinkRxProcessor::make_job() const {
  Job job;
  const auto bw = config_.bw_config();
  const unsigned nsc = config_.num_subcarriers();
  const unsigned n = config_.num_antennas;
  job.antenna_samples.assign(
      n, IqVector(kSymbolsPerSubframe * (bw.cp_samples + bw.fft_size)));
  job.grid.assign(static_cast<std::size_t>(n) * kSymbolsPerSubframe,
                  IqVector(nsc));
  job.channel_est.assign(n, IqVector(nsc));
  job.equalized.resize(static_cast<std::size_t>(nsc) * 12);
  job.post_eq_noise.resize(job.equalized.size());
  // Worst-case LLR buffer: 64QAM over all data REs.
  job.llrs.resize(job.equalized.size() * 6);
  return job;
}

void UplinkRxProcessor::begin(Job& job,
                              std::span<const IqVector> antenna_samples,
                              unsigned mcs,
                              std::uint32_t subframe_index) const {
  if (mcs > kMaxMcs) throw std::out_of_range("begin: mcs > 27");
  if (antenna_samples.size() != config_.num_antennas)
    throw std::invalid_argument("begin: antenna count mismatch");
  const auto bw = config_.bw_config();
  const std::size_t expected =
      kSymbolsPerSubframe * (bw.cp_samples + bw.fft_size);
  job.mcs = mcs;
  job.subframe_index = subframe_index;
  job.iteration_cap = 0;
  for (unsigned a = 0; a < config_.num_antennas; ++a) {
    if (antenna_samples[a].size() != expected)
      throw std::invalid_argument("begin: sample count mismatch");
    job.antenna_samples[a] = antenna_samples[a];
  }
  const unsigned qm = modulation_order(mcs);
  job.llrs.assign(job.equalized.size() * qm, 0.0f);
  // Reset per-block results without freeing their bit buffers: a reused job
  // decoding the same MCS every subframe must not reallocate here.
  const std::size_t c = impl_->per_mcs[mcs].layout.e_bits.size();
  job.cb_results.resize(c);
  for (auto& cb : job.cb_results) {
    cb.bits.clear();
    cb.iterations = 0;
    cb.crc_ok = false;
  }
}

DecodeWorkspace& UplinkRxProcessor::thread_workspace() {
  thread_local DecodeWorkspace ws;
  return ws;
}

std::size_t UplinkRxProcessor::fft_subtask_count() const {
  return static_cast<std::size_t>(config_.num_antennas) * kSymbolsPerSubframe;
}

void UplinkRxProcessor::run_fft_subtask(Job& job, std::size_t index) const {
  run_fft_subtask(job, index, thread_workspace());
}

void UplinkRxProcessor::run_fft_subtask(Job& job, std::size_t index,
                                        DecodeWorkspace& ws) const {
  const auto bw = config_.bw_config();
  const std::size_t antenna = index / kSymbolsPerSubframe;
  const std::size_t symbol = index % kSymbolsPerSubframe;
  if (antenna >= config_.num_antennas)
    throw std::out_of_range("run_fft_subtask: bad index");
  const std::size_t sym_len = bw.cp_samples + bw.fft_size;
  const std::span<const Complex> samples(
      job.antenna_samples[antenna].data() + symbol * sym_len, sym_len);
  // The grid cell is pre-sized to nsc by make_job; the SoA FFT runs in the
  // workspace's split buffers.
  ofdm_demodulate_into(impl_->fft, samples, bw.cp_samples,
                       job.grid[antenna * kSymbolsPerSubframe + symbol], ws);
}

void UplinkRxProcessor::demod_prepare(Job& job) const {
  const unsigned nsc = config_.num_subcarriers();
  const unsigned n = config_.num_antennas;
  // LS channel estimate per antenna, averaged over the two DMRS symbols;
  // the half-difference of the two estimates gives the noise power.
  double noise_acc = 0.0;
  std::size_t noise_cnt = 0;
  for (unsigned a = 0; a < n; ++a) {
    const IqVector& y0 = job.grid[a * kSymbolsPerSubframe + kDmrsSymbol0];
    const IqVector& y1 = job.grid[a * kSymbolsPerSubframe + kDmrsSymbol1];
    IqVector& h = job.channel_est[a];
    for (unsigned k = 0; k < nsc; ++k) {
      // DMRS has unit magnitude, so dividing is multiplying by conj.
      // Explicit float math (h = y * conj(p)) to avoid __mulsc3 per RE.
      const float pr = impl_->dmrs[k].real();
      const float pi = impl_->dmrs[k].imag();
      const float h0r = y0[k].real() * pr + y0[k].imag() * pi;
      const float h0i = y0[k].imag() * pr - y0[k].real() * pi;
      const float h1r = y1[k].real() * pr + y1[k].imag() * pi;
      const float h1i = y1[k].imag() * pr - y1[k].real() * pi;
      h[k] = {0.5f * (h0r + h1r), 0.5f * (h0i + h1i)};
      const float dr = h0r - h1r;
      const float di = h0i - h1i;
      noise_acc += 0.5 * (dr * dr + di * di);
      ++noise_cnt;
    }
  }
  job.noise_var =
      static_cast<float>(noise_acc / static_cast<double>(noise_cnt));
  job.noise_var = std::max(job.noise_var, 1e-12f);
}

void UplinkRxProcessor::run_demod_subtask(Job& job, std::size_t index) const {
  if (index >= demod_subtask_count())
    throw std::out_of_range("run_demod_subtask: bad index");
  const unsigned nsc = config_.num_subcarriers();
  const unsigned n = config_.num_antennas;
  const unsigned symbol = impl_->data_symbols[index];
  const unsigned qm = modulation_order(job.mcs);

  // MRC across antennas per subcarrier. Explicit float math: conj(h) * y
  // through std::complex would emit a __mulsc3 library call per RE.
  const std::size_t out_base = index * nsc;
  unsigned k_first = 0;
#if defined(RTOPEX_SIMD) && (defined(__AVX2__) || defined(__ARM_NEON))
  k_first = static_cast<unsigned>(mrc_equalize_simd(
      job.channel_est, job.grid, symbol, n, job.noise_var, nsc,
      job.equalized.data() + out_base, job.post_eq_noise.data() + out_base));
#endif
  for (unsigned k = k_first; k < nsc; ++k) {
    float num_re = 0.0f;
    float num_im = 0.0f;
    float denom = 0.0f;
    for (unsigned a = 0; a < n; ++a) {
      const Complex h = job.channel_est[a][k];
      const Complex y = job.grid[a * kSymbolsPerSubframe + symbol][k];
      num_re += h.real() * y.real() + h.imag() * y.imag();
      num_im += h.real() * y.imag() - h.imag() * y.real();
      denom += h.real() * h.real() + h.imag() * h.imag();
    }
    denom = std::max(denom, 1e-12f);
    job.equalized[out_base + k] = {num_re / denom, num_im / denom};
    job.post_eq_noise[out_base + k] = job.noise_var / denom;
  }

  // Demap this symbol's REs straight into the right LLR slice.
  const std::span<const Complex> eq(job.equalized.data() + out_base, nsc);
  const std::span<const float> nv(job.post_eq_noise.data() + out_base, nsc);
  demodulate_into(
      eq, nv, qm,
      std::span<float>(job.llrs.data() + out_base * qm,
                       static_cast<std::size_t>(nsc) * qm));
}

void UplinkRxProcessor::decode_prepare(Job& job) const {
  decode_prepare(job, thread_workspace());
}

void UplinkRxProcessor::decode_prepare(Job& job, DecodeWorkspace& ws) const {
  // c_init cycles through at most 10 values per basestation (subframe mod
  // 10), so a steady-state worker's whole rotation stays resident in the
  // workspace's bounded LRU cache; misses regenerate into a recycled
  // entry's grow-only buffer. Either way nothing allocates in steady state.
  descramble_llrs_cached(job.llrs,
                         scrambling_init(config_.rnti, job.subframe_index,
                                         config_.cell_id),
                         ws);
}

std::size_t UplinkRxProcessor::decode_subtask_count(const Job& job) const {
  return impl_->per_mcs[job.mcs].layout.e_bits.size();
}

void UplinkRxProcessor::run_decode_subtask(Job& job, std::size_t index) const {
  run_decode_subtask(job, index, thread_workspace());
}

void UplinkRxProcessor::run_decode_subtask(Job& job, std::size_t index,
                                           DecodeWorkspace& ws) const {
  const McsContext& ctx = impl_->per_mcs[job.mcs];
  if (index >= ctx.layout.e_bits.size())
    throw std::out_of_range("run_decode_subtask: bad index");
  const std::size_t c = ctx.layout.e_bits.size();
  const std::size_t k = ctx.layout.block_size;
  const std::size_t kd = k + 4;

  const std::span<const float> cb_llrs(job.llrs.data() + ctx.e_offsets[index],
                                       ctx.layout.e_bits[index]);
  grow_buffer(ws.dm_systematic, kd);
  grow_buffer(ws.dm_parity1, kd);
  grow_buffer(ws.dm_parity2, kd);
  const std::span<float> sys(ws.dm_systematic.data(), kd);
  const std::span<float> par1(ws.dm_parity1.data(), kd);
  const std::span<float> par2(ws.dm_parity2.data(), kd);
  ctx.matcher->dematch_into(cb_llrs, 0, sys, par1, par2);

  // Early-termination CRC: per-block CRC24B when segmented, else the
  // transport block's CRC24A (which then covers filler-free payload).
  // Captures one pointer + one size_t so the std::function stays within
  // libstdc++'s small-object buffer — no heap allocation.
  const McsContext* ctx_ptr = &ctx;
  const auto crc_check = [ctx_ptr, c](std::span<const std::uint8_t> bits) {
    if (c > 1) return check_crc24(bits, CrcKind::kB);
    // Single block: strip filler before checking CRC24A.
    const auto payload = bits.subspan(ctx_ptr->layout.filler_bits);
    return check_crc24(payload, CrcKind::kA);
  };

  ctx.decoder->decode_into(sys, par1, par2, ws, crc_check, job.iteration_cap);
  auto& out = job.cb_results[index];
  out.bits.assign(ws.bits.begin(),
                  ws.bits.begin() + static_cast<std::ptrdiff_t>(k));
  out.iterations = ws.iterations;
  out.crc_ok = ws.early_terminated ||
               crc_check(std::span<const std::uint8_t>(ws.bits.data(), k));
}

void UplinkRxProcessor::run_decode_batch(Job& job, DecodeWorkspace& ws) const {
  Job* jobs[1] = {&job};
  run_decode_batch(std::span<Job* const>(jobs, 1), ws);
}

void UplinkRxProcessor::run_decode_batch(std::span<Job* const> jobs,
                                         DecodeWorkspace& ws) const {
  constexpr std::size_t kMaxJobs = 16;
  constexpr std::size_t kL = kTurboBatchLanes;
  if (jobs.empty() || jobs.size() > kMaxJobs)
    throw std::invalid_argument("run_decode_batch: 1..16 jobs required");

  // Distinct (block size, iteration cap) keys in first-appearance order.
  // Lanes of one batch must share the decoder (same K / interleaver) and
  // the degraded-mode cap, so blocks are grouped under these keys; jobs at
  // different MCS with equal K batch together (their codecs are shared).
  struct GroupKey {
    std::size_t block_size;
    unsigned cap;
  };
  std::array<GroupKey, kMaxJobs> keys;
  std::size_t num_keys = 0;
  for (const Job* job : jobs) {
    const GroupKey key{impl_->per_mcs[job->mcs].layout.block_size,
                       job->iteration_cap};
    bool found = false;
    for (std::size_t i = 0; i < num_keys; ++i)
      found = found || (keys[i].block_size == key.block_size &&
                        keys[i].cap == key.cap);
    if (!found) keys[num_keys++] = key;
  }

  for (std::size_t ki = 0; ki < num_keys; ++ki) {
    const GroupKey key = keys[ki];
    const std::size_t k = key.block_size;
    const std::size_t kd = k + 4;

    // Gather this key's (job, block) pairs; grow-only workspace scratch.
    ws.bat_group.clear();
    const TurboDecoder* decoder = nullptr;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const Job& job = *jobs[j];
      const McsContext& ctx = impl_->per_mcs[job.mcs];
      if (ctx.layout.block_size != k || job.iteration_cap != key.cap)
        continue;
      decoder = ctx.decoder.get();
      for (std::size_t blk = 0; blk < ctx.layout.e_bits.size(); ++blk)
        ws.bat_group.push_back(
            static_cast<std::uint32_t>((j << 16) | blk));
    }

    for (std::size_t g0 = 0; g0 < ws.bat_group.size(); g0 += kL) {
      const std::size_t lanes_n = std::min(kL, ws.bat_group.size() - g0);
      // The SoA sweep costs a full 8-lane pass regardless of fill (ragged
      // lanes are padded), roughly four scalar blocks' worth. Mostly-empty
      // residual groups are cheaper through the scalar decoder, which is
      // bit-identical (the batch differential tests assert exactly that),
      // so this is a pure cost decision.
      if (lanes_n <= kL / 2 - 1) {
        for (std::size_t b = 0; b < lanes_n; ++b) {
          const std::uint32_t pair = ws.bat_group[g0 + b];
          run_decode_subtask(*jobs[pair >> 16], pair & 0xFFFF, ws);
        }
        continue;
      }
      grow_buffer(ws.bat_in, kL * 3 * kd);
      std::array<TurboBatchLane, kL> lanes{};
      // Per-lane CRC identity: one pointer capture keeps the std::function
      // within libstdc++'s small-object buffer — no heap allocation.
      struct LaneCrc {
        bool segmented;
        std::size_t filler;
      };
      std::array<LaneCrc, kL> lane_crc{};
      for (std::size_t b = 0; b < lanes_n; ++b) {
        const std::uint32_t pair = ws.bat_group[g0 + b];
        const Job& job = *jobs[pair >> 16];
        const std::size_t blk = pair & 0xFFFF;
        const McsContext& ctx = impl_->per_mcs[job.mcs];
        float* base = ws.bat_in.data() + b * 3 * kd;
        const std::span<float> sys(base, kd);
        const std::span<float> par1(base + kd, kd);
        const std::span<float> par2(base + 2 * kd, kd);
        const std::span<const float> cb_llrs(
            job.llrs.data() + ctx.e_offsets[blk], ctx.layout.e_bits[blk]);
        ctx.matcher->dematch_into(cb_llrs, 0, sys, par1, par2);
        lanes[b] = {sys, par1, par2};
        lane_crc[b] = {ctx.layout.e_bits.size() > 1, ctx.layout.filler_bits};
      }
      const LaneCrc* lc = lane_crc.data();
      const std::function<bool(std::size_t, std::span<const std::uint8_t>)>
          crc_check = [lc](std::size_t lane,
                           std::span<const std::uint8_t> bits) {
            if (lc[lane].segmented) return check_crc24(bits, CrcKind::kB);
            return check_crc24(bits.subspan(lc[lane].filler), CrcKind::kA);
          };
      decoder->decode_batch_into(
          std::span<const TurboBatchLane>(lanes.data(), lanes_n), ws,
          crc_check, key.cap);
      for (std::size_t b = 0; b < lanes_n; ++b) {
        const std::uint32_t pair = ws.bat_group[g0 + b];
        Job& job = *jobs[pair >> 16];
        const std::size_t blk = pair & 0xFFFF;
        const std::uint8_t* bits = ws.bat_bits.data() + b * k;
        auto& out = job.cb_results[blk];
        out.bits.assign(bits, bits + k);
        out.iterations = ws.bat_iterations[b];
        out.crc_ok =
            ws.bat_early_terminated[b] ||
            crc_check(b, std::span<const std::uint8_t>(bits, k));
      }
    }
  }
}

UplinkRxResult UplinkRxProcessor::finalize(Job& job) const {
  UplinkRxResult result;
  finalize_into(job, thread_workspace(), result);
  return result;
}

void UplinkRxProcessor::finalize_into(Job& job, DecodeWorkspace& ws,
                                      UplinkRxResult& result) const {
  const McsContext& ctx = impl_->per_mcs[job.mcs];
  const std::size_t c = job.cb_results.size();
  result.cb_crc_ok.clear();
  result.payload.clear();
  unsigned iter_max = 0;
  double iter_sum = 0.0;
  for (const auto& cb : job.cb_results) {
    result.cb_crc_ok.push_back(cb.crc_ok);
    iter_max = std::max(iter_max, cb.iterations);
    iter_sum += cb.iterations;
  }
  result.iterations = iter_max;
  result.mean_iterations = iter_sum / static_cast<double>(c);

  // Desegmentation inlined into the workspace buffer: strip block 0's
  // filler and (when segmented) each block's CRC24B, concatenate. The
  // CRC24B results were already computed by the decode subtasks, so unlike
  // desegment_transport_block no recheck happens here.
  ws.tb_with_crc.clear();
  for (std::size_t blk = 0; blk < c; ++blk) {
    const BitVector& bits = job.cb_results[blk].bits;
    const std::size_t begin = blk == 0 ? ctx.layout.filler_bits : 0;
    const std::size_t end = bits.size() - (c > 1 ? kCrcLength : 0);
    ws.tb_with_crc.insert(ws.tb_with_crc.end(),
                          bits.begin() + static_cast<std::ptrdiff_t>(begin),
                          bits.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (ws.tb_with_crc.size() != ctx.layout.payload_bits)
    throw std::logic_error("finalize: size mismatch with payload_bits");
  result.crc_ok = check_crc24(ws.tb_with_crc, CrcKind::kA);
  if (result.crc_ok) {
    result.payload.assign(ws.tb_with_crc.begin(),
                          ws.tb_with_crc.end() - kCrcLength);
  }
}

UplinkRxResult UplinkRxProcessor::process(
    std::span<const IqVector> antenna_samples, unsigned mcs,
    std::uint32_t subframe_index) const {
  Job job = make_job();
  begin(job, antenna_samples, mcs, subframe_index);
  for (std::size_t i = 0; i < fft_subtask_count(); ++i)
    run_fft_subtask(job, i);
  demod_prepare(job);
  for (std::size_t i = 0; i < demod_subtask_count(); ++i)
    run_demod_subtask(job, i);
  decode_prepare(job);
  for (std::size_t i = 0; i < decode_subtask_count(job); ++i)
    run_decode_subtask(job, i);
  return finalize(job);
}

}  // namespace rtopex::phy
