#include "phy/uplink_rx.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "phy/ofdm.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"

namespace rtopex::phy {
namespace {

/// Indices of the 12 data symbols (all except the two DMRS positions).
std::array<unsigned, 12> data_symbol_indices() {
  std::array<unsigned, 12> idx{};
  unsigned j = 0;
  for (unsigned s = 0; s < kSymbolsPerSubframe; ++s)
    if (s != kDmrsSymbol0 && s != kDmrsSymbol1) idx[j++] = s;
  return idx;
}

}  // namespace

/// Per-MCS decode context: segmentation layout plus the codec objects for
/// that block size, built once at processor construction.
struct McsContext {
  CodeBlockLayout layout;
  std::shared_ptr<QppInterleaver> interleaver;
  std::shared_ptr<TurboDecoder> decoder;
  std::shared_ptr<RateMatcher> matcher;
  std::vector<std::size_t> e_offsets;  ///< start of each block's LLR span.
};

struct UplinkRxProcessor::Impl {
  FftPlan fft;
  IqVector dmrs;
  std::array<unsigned, 12> data_symbols = data_symbol_indices();
  std::vector<McsContext> per_mcs;  ///< indexed by MCS.

  explicit Impl(const UplinkConfig& config)
      : fft(config.bw_config().fft_size),
        dmrs(dmrs_sequence(config.num_subcarriers(), config.cell_id)) {}
};

UplinkRxProcessor::UplinkRxProcessor(const UplinkConfig& config)
    : config_(config), impl_(std::make_unique<Impl>(config)) {
  // Build per-MCS contexts, sharing codecs across MCS with equal block size.
  impl_->per_mcs.resize(kMaxMcs + 1);
  std::vector<std::pair<std::size_t, std::size_t>> built;  // (K, mcs index)
  for (unsigned mcs = 0; mcs <= kMaxMcs; ++mcs) {
    McsContext& ctx = impl_->per_mcs[mcs];
    ctx.layout = code_block_layout(config_, mcs);
    const std::size_t k = ctx.layout.block_size;
    const auto it = std::find_if(built.begin(), built.end(),
                                 [&](const auto& p) { return p.first == k; });
    if (it != built.end()) {
      const McsContext& src = impl_->per_mcs[it->second];
      ctx.interleaver = src.interleaver;
      ctx.decoder = src.decoder;
      ctx.matcher = src.matcher;
    } else {
      ctx.interleaver = std::make_shared<QppInterleaver>(k);
      ctx.decoder = std::make_shared<TurboDecoder>(*ctx.interleaver,
                                                   config_.max_iterations);
      ctx.matcher = std::make_shared<RateMatcher>(k);
      built.emplace_back(k, mcs);
    }
    ctx.e_offsets.resize(ctx.layout.e_bits.size());
    std::size_t off = 0;
    for (std::size_t b = 0; b < ctx.layout.e_bits.size(); ++b) {
      ctx.e_offsets[b] = off;
      off += ctx.layout.e_bits[b];
    }
  }
}

UplinkRxProcessor::~UplinkRxProcessor() = default;

UplinkRxProcessor::Job UplinkRxProcessor::make_job() const {
  Job job;
  const auto bw = config_.bw_config();
  const unsigned nsc = config_.num_subcarriers();
  const unsigned n = config_.num_antennas;
  job.antenna_samples.assign(
      n, IqVector(kSymbolsPerSubframe * (bw.cp_samples + bw.fft_size)));
  job.grid.assign(static_cast<std::size_t>(n) * kSymbolsPerSubframe,
                  IqVector(nsc));
  job.channel_est.assign(n, IqVector(nsc));
  job.equalized.resize(static_cast<std::size_t>(nsc) * 12);
  job.post_eq_noise.resize(job.equalized.size());
  // Worst-case LLR buffer: 64QAM over all data REs.
  job.llrs.resize(job.equalized.size() * 6);
  return job;
}

void UplinkRxProcessor::begin(Job& job,
                              std::span<const IqVector> antenna_samples,
                              unsigned mcs,
                              std::uint32_t subframe_index) const {
  if (mcs > kMaxMcs) throw std::out_of_range("begin: mcs > 27");
  if (antenna_samples.size() != config_.num_antennas)
    throw std::invalid_argument("begin: antenna count mismatch");
  const auto bw = config_.bw_config();
  const std::size_t expected =
      kSymbolsPerSubframe * (bw.cp_samples + bw.fft_size);
  job.mcs = mcs;
  job.subframe_index = subframe_index;
  job.iteration_cap = 0;
  for (unsigned a = 0; a < config_.num_antennas; ++a) {
    if (antenna_samples[a].size() != expected)
      throw std::invalid_argument("begin: sample count mismatch");
    job.antenna_samples[a] = antenna_samples[a];
  }
  const unsigned qm = modulation_order(mcs);
  job.llrs.assign(job.equalized.size() * qm, 0.0f);
  // Reset per-block results without freeing their bit buffers: a reused job
  // decoding the same MCS every subframe must not reallocate here.
  const std::size_t c = impl_->per_mcs[mcs].layout.e_bits.size();
  job.cb_results.resize(c);
  for (auto& cb : job.cb_results) {
    cb.bits.clear();
    cb.iterations = 0;
    cb.crc_ok = false;
  }
}

DecodeWorkspace& UplinkRxProcessor::thread_workspace() {
  thread_local DecodeWorkspace ws;
  return ws;
}

std::size_t UplinkRxProcessor::fft_subtask_count() const {
  return static_cast<std::size_t>(config_.num_antennas) * kSymbolsPerSubframe;
}

void UplinkRxProcessor::run_fft_subtask(Job& job, std::size_t index) const {
  run_fft_subtask(job, index, thread_workspace());
}

void UplinkRxProcessor::run_fft_subtask(Job& job, std::size_t index,
                                        DecodeWorkspace& ws) const {
  const auto bw = config_.bw_config();
  const std::size_t antenna = index / kSymbolsPerSubframe;
  const std::size_t symbol = index % kSymbolsPerSubframe;
  if (antenna >= config_.num_antennas)
    throw std::out_of_range("run_fft_subtask: bad index");
  const std::size_t sym_len = bw.cp_samples + bw.fft_size;
  const std::span<const Complex> samples(
      job.antenna_samples[antenna].data() + symbol * sym_len, sym_len);
  // The grid cell is pre-sized to nsc by make_job; the SoA FFT runs in the
  // workspace's split buffers.
  ofdm_demodulate_into(impl_->fft, samples, bw.cp_samples,
                       job.grid[antenna * kSymbolsPerSubframe + symbol], ws);
}

void UplinkRxProcessor::demod_prepare(Job& job) const {
  const unsigned nsc = config_.num_subcarriers();
  const unsigned n = config_.num_antennas;
  // LS channel estimate per antenna, averaged over the two DMRS symbols;
  // the half-difference of the two estimates gives the noise power.
  double noise_acc = 0.0;
  std::size_t noise_cnt = 0;
  for (unsigned a = 0; a < n; ++a) {
    const IqVector& y0 = job.grid[a * kSymbolsPerSubframe + kDmrsSymbol0];
    const IqVector& y1 = job.grid[a * kSymbolsPerSubframe + kDmrsSymbol1];
    IqVector& h = job.channel_est[a];
    for (unsigned k = 0; k < nsc; ++k) {
      // DMRS has unit magnitude, so dividing is multiplying by conj.
      // Explicit float math (h = y * conj(p)) to avoid __mulsc3 per RE.
      const float pr = impl_->dmrs[k].real();
      const float pi = impl_->dmrs[k].imag();
      const float h0r = y0[k].real() * pr + y0[k].imag() * pi;
      const float h0i = y0[k].imag() * pr - y0[k].real() * pi;
      const float h1r = y1[k].real() * pr + y1[k].imag() * pi;
      const float h1i = y1[k].imag() * pr - y1[k].real() * pi;
      h[k] = {0.5f * (h0r + h1r), 0.5f * (h0i + h1i)};
      const float dr = h0r - h1r;
      const float di = h0i - h1i;
      noise_acc += 0.5 * (dr * dr + di * di);
      ++noise_cnt;
    }
  }
  job.noise_var =
      static_cast<float>(noise_acc / static_cast<double>(noise_cnt));
  job.noise_var = std::max(job.noise_var, 1e-12f);
}

void UplinkRxProcessor::run_demod_subtask(Job& job, std::size_t index) const {
  if (index >= demod_subtask_count())
    throw std::out_of_range("run_demod_subtask: bad index");
  const unsigned nsc = config_.num_subcarriers();
  const unsigned n = config_.num_antennas;
  const unsigned symbol = impl_->data_symbols[index];
  const unsigned qm = modulation_order(job.mcs);

  // MRC across antennas per subcarrier. Explicit float math: conj(h) * y
  // through std::complex would emit a __mulsc3 library call per RE.
  const std::size_t out_base = index * nsc;
  for (unsigned k = 0; k < nsc; ++k) {
    float num_re = 0.0f;
    float num_im = 0.0f;
    float denom = 0.0f;
    for (unsigned a = 0; a < n; ++a) {
      const Complex h = job.channel_est[a][k];
      const Complex y = job.grid[a * kSymbolsPerSubframe + symbol][k];
      num_re += h.real() * y.real() + h.imag() * y.imag();
      num_im += h.real() * y.imag() - h.imag() * y.real();
      denom += h.real() * h.real() + h.imag() * h.imag();
    }
    denom = std::max(denom, 1e-12f);
    job.equalized[out_base + k] = {num_re / denom, num_im / denom};
    job.post_eq_noise[out_base + k] = job.noise_var / denom;
  }

  // Demap this symbol's REs straight into the right LLR slice.
  const std::span<const Complex> eq(job.equalized.data() + out_base, nsc);
  const std::span<const float> nv(job.post_eq_noise.data() + out_base, nsc);
  demodulate_into(
      eq, nv, qm,
      std::span<float>(job.llrs.data() + out_base * qm,
                       static_cast<std::size_t>(nsc) * qm));
}

void UplinkRxProcessor::decode_prepare(Job& job) const {
  decode_prepare(job, thread_workspace());
}

void UplinkRxProcessor::decode_prepare(Job& job, DecodeWorkspace& ws) const {
  // c_init cycles through at most 10 values per basestation (subframe mod
  // 10); on a miss the sequence regenerates into grow-only workspace
  // buffers, so either way this allocates nothing in steady state.
  descramble_llrs_cached(job.llrs,
                         scrambling_init(config_.rnti, job.subframe_index,
                                         config_.cell_id),
                         ws);
}

std::size_t UplinkRxProcessor::decode_subtask_count(const Job& job) const {
  return impl_->per_mcs[job.mcs].layout.e_bits.size();
}

void UplinkRxProcessor::run_decode_subtask(Job& job, std::size_t index) const {
  run_decode_subtask(job, index, thread_workspace());
}

void UplinkRxProcessor::run_decode_subtask(Job& job, std::size_t index,
                                           DecodeWorkspace& ws) const {
  const McsContext& ctx = impl_->per_mcs[job.mcs];
  if (index >= ctx.layout.e_bits.size())
    throw std::out_of_range("run_decode_subtask: bad index");
  const std::size_t c = ctx.layout.e_bits.size();
  const std::size_t k = ctx.layout.block_size;
  const std::size_t kd = k + 4;

  const std::span<const float> cb_llrs(job.llrs.data() + ctx.e_offsets[index],
                                       ctx.layout.e_bits[index]);
  grow_buffer(ws.dm_systematic, kd);
  grow_buffer(ws.dm_parity1, kd);
  grow_buffer(ws.dm_parity2, kd);
  const std::span<float> sys(ws.dm_systematic.data(), kd);
  const std::span<float> par1(ws.dm_parity1.data(), kd);
  const std::span<float> par2(ws.dm_parity2.data(), kd);
  ctx.matcher->dematch_into(cb_llrs, 0, sys, par1, par2);

  // Early-termination CRC: per-block CRC24B when segmented, else the
  // transport block's CRC24A (which then covers filler-free payload).
  // Captures one pointer + one size_t so the std::function stays within
  // libstdc++'s small-object buffer — no heap allocation.
  const McsContext* ctx_ptr = &ctx;
  const auto crc_check = [ctx_ptr, c](std::span<const std::uint8_t> bits) {
    if (c > 1) return check_crc24(bits, CrcKind::kB);
    // Single block: strip filler before checking CRC24A.
    const auto payload = bits.subspan(ctx_ptr->layout.filler_bits);
    return check_crc24(payload, CrcKind::kA);
  };

  ctx.decoder->decode_into(sys, par1, par2, ws, crc_check, job.iteration_cap);
  auto& out = job.cb_results[index];
  out.bits.assign(ws.bits.begin(),
                  ws.bits.begin() + static_cast<std::ptrdiff_t>(k));
  out.iterations = ws.iterations;
  out.crc_ok = ws.early_terminated ||
               crc_check(std::span<const std::uint8_t>(ws.bits.data(), k));
}

UplinkRxResult UplinkRxProcessor::finalize(Job& job) const {
  UplinkRxResult result;
  finalize_into(job, thread_workspace(), result);
  return result;
}

void UplinkRxProcessor::finalize_into(Job& job, DecodeWorkspace& ws,
                                      UplinkRxResult& result) const {
  const McsContext& ctx = impl_->per_mcs[job.mcs];
  const std::size_t c = job.cb_results.size();
  result.cb_crc_ok.clear();
  result.payload.clear();
  unsigned iter_max = 0;
  double iter_sum = 0.0;
  for (const auto& cb : job.cb_results) {
    result.cb_crc_ok.push_back(cb.crc_ok);
    iter_max = std::max(iter_max, cb.iterations);
    iter_sum += cb.iterations;
  }
  result.iterations = iter_max;
  result.mean_iterations = iter_sum / static_cast<double>(c);

  // Desegmentation inlined into the workspace buffer: strip block 0's
  // filler and (when segmented) each block's CRC24B, concatenate. The
  // CRC24B results were already computed by the decode subtasks, so unlike
  // desegment_transport_block no recheck happens here.
  ws.tb_with_crc.clear();
  for (std::size_t blk = 0; blk < c; ++blk) {
    const BitVector& bits = job.cb_results[blk].bits;
    const std::size_t begin = blk == 0 ? ctx.layout.filler_bits : 0;
    const std::size_t end = bits.size() - (c > 1 ? kCrcLength : 0);
    ws.tb_with_crc.insert(ws.tb_with_crc.end(),
                          bits.begin() + static_cast<std::ptrdiff_t>(begin),
                          bits.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (ws.tb_with_crc.size() != ctx.layout.payload_bits)
    throw std::logic_error("finalize: size mismatch with payload_bits");
  result.crc_ok = check_crc24(ws.tb_with_crc, CrcKind::kA);
  if (result.crc_ok) {
    result.payload.assign(ws.tb_with_crc.begin(),
                          ws.tb_with_crc.end() - kCrcLength);
  }
}

UplinkRxResult UplinkRxProcessor::process(
    std::span<const IqVector> antenna_samples, unsigned mcs,
    std::uint32_t subframe_index) const {
  Job job = make_job();
  begin(job, antenna_samples, mcs, subframe_index);
  for (std::size_t i = 0; i < fft_subtask_count(); ++i)
    run_fft_subtask(job, i);
  demod_prepare(job);
  for (std::size_t i = 0; i < demod_subtask_count(); ++i)
    run_demod_subtask(job, i);
  decode_prepare(job);
  for (std::size_t i = 0; i < decode_subtask_count(job); ++i)
    run_decode_subtask(job, i);
  return finalize(job);
}

}  // namespace rtopex::phy
