// LTE-like system parameters for the uplink processing chain.
//
// The reproduction does not aim at 3GPP bit-exactness (see DESIGN.md §2);
// it preserves the quantities the RT-OPEX scheduler and the paper's Eq. (1)
// model depend on: transport-block size as a function of MCS and PRB count,
// modulation order K, subcarrier load D (bits per resource element), number
// of code blocks, and the OFDM grid geometry.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rtopex::phy {

/// Subcarriers per physical resource block.
inline constexpr unsigned kSubcarriersPerPrb = 12;
/// OFDM symbols per 1 ms subframe (normal cyclic prefix).
inline constexpr unsigned kSymbolsPerSubframe = 14;
/// Indices of the PUSCH demodulation reference symbols within a subframe
/// (one per slot, as in LTE PUSCH).
inline constexpr unsigned kDmrsSymbol0 = 3;
inline constexpr unsigned kDmrsSymbol1 = 10;
/// Maximum turbo code block size (bits), as in 36.212.
inline constexpr unsigned kMaxCodeBlockSize = 6144;
/// CRC length attached to the transport block and to each code block.
inline constexpr unsigned kCrcLength = 24;
/// Highest MCS index supported (0..27, as evaluated in the paper).
inline constexpr unsigned kMaxMcs = 27;

/// Channel bandwidth configurations used in the paper (§2.3, §4.2).
enum class Bandwidth : std::uint8_t {
  kMHz5,   ///< 25 PRBs, 512-point FFT, 7.68 Msps
  kMHz10,  ///< 50 PRBs, 1024-point FFT, 15.36 Msps
  kMHz20,  ///< 100 PRBs, 2048-point FFT, 30.72 Msps
};

struct BandwidthConfig {
  unsigned num_prb;        ///< physical resource blocks.
  unsigned fft_size;       ///< OFDM (I)FFT length.
  unsigned cp_samples;     ///< cyclic prefix length per symbol (simplified: constant).
  double sample_rate_hz;   ///< baseband sampling rate.
};

BandwidthConfig bandwidth_config(Bandwidth bw);

/// Modulation order K (bits per constellation symbol): 2, 4 or 6.
unsigned modulation_order(unsigned mcs);

/// Transport block size in bits for the given MCS and PRB allocation.
/// Calibrated so the subcarrier load D spans ~0.16–3.7 bits/RE at 50 PRBs
/// (paper §2.1), i.e. nominal PHY throughput 1.3–31.7 Mbps at 10 MHz.
unsigned transport_block_size(unsigned mcs, unsigned num_prb);

/// Total resource elements in a subframe over `num_prb` PRBs (including
/// DMRS REs, matching the paper's definition: 8400 for 50 PRBs).
unsigned resource_elements(unsigned num_prb);

/// Data-carrying REs (total minus the two DMRS symbols).
unsigned data_resource_elements(unsigned num_prb);

/// Subcarrier load D = transport block bits / total REs (paper §2.1).
double subcarrier_load(unsigned mcs, unsigned num_prb);

/// Number of turbo code blocks the transport block is segmented into.
unsigned num_code_blocks(unsigned mcs, unsigned num_prb);

}  // namespace rtopex::phy
