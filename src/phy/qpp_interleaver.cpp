#include "phy/qpp_interleaver.hpp"

#include <numeric>
#include <stdexcept>

namespace rtopex::phy {
namespace {

bool is_bijection(std::size_t k, std::size_t f1, std::size_t f2,
                  std::vector<std::size_t>& out) {
  out.assign(k, 0);
  std::vector<char> seen(k, 0);
  // Incremental evaluation avoids overflow: pi(i+1) - pi(i) =
  // f1 + f2*(2i+1) mod K.
  std::size_t pi = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (seen[pi]) return false;
    seen[pi] = 1;
    out[i] = pi;
    pi = (pi + f1 + (f2 * ((2 * i + 1) % k)) % k) % k;
  }
  return true;
}

}  // namespace

namespace {

// Product of the distinct prime factors of k. A QPP with f2 a multiple of
// rad(k) (times 2 when 4 | k) and gcd(f1, k) == 1 is a known-sufficient
// bijection structure; we still verify explicitly.
std::size_t radical(std::size_t k) {
  std::size_t rad = 1;
  std::size_t n = k;
  for (std::size_t p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      rad *= p;
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) rad *= n;
  return rad;
}

}  // namespace

QppInterleaver::QppInterleaver(std::size_t k) {
  if (k < 8) throw std::invalid_argument("QppInterleaver: K too small");
  std::size_t base = radical(k);
  if (k % 4 == 0 && base % 4 != 0) base *= 2;
  for (std::size_t f2 = base; f2 < k; f2 += base) {
    for (std::size_t f1 = 3; f1 < k; f1 += 2) {
      if (std::gcd(f1, k) != 1) continue;
      if (is_bijection(k, f1, f2, forward_)) {
        f1_ = f1;
        f2_ = f2;
        inverse_.assign(k, 0);
        for (std::size_t i = 0; i < k; ++i) inverse_[forward_[i]] = i;
        return;
      }
      break;  // with a structurally valid f2, the first coprime f1 suffices;
              // otherwise move to the next f2 multiple.
    }
  }
  throw std::invalid_argument("QppInterleaver: no valid parameters found");
}

QppInterleaver::QppInterleaver(std::size_t k, std::size_t f1, std::size_t f2) {
  if (k < 8) throw std::invalid_argument("QppInterleaver: K too small");
  build(k, f1, f2);
}

void QppInterleaver::build(std::size_t k, std::size_t f1, std::size_t f2) {
  if (!is_bijection(k, f1, f2, forward_))
    throw std::invalid_argument("QppInterleaver: (f1,f2) not a bijection");
  f1_ = f1;
  f2_ = f2;
  inverse_.assign(k, 0);
  for (std::size_t i = 0; i < k; ++i) inverse_[forward_[i]] = i;
}

const std::vector<std::size_t>& QppInterleaver::valid_block_sizes() {
  static const std::vector<std::size_t> sizes = [] {
    std::vector<std::size_t> s;
    for (std::size_t k = 40; k <= 512; k += 8) s.push_back(k);
    for (std::size_t k = 528; k <= 1024; k += 16) s.push_back(k);
    for (std::size_t k = 1056; k <= 2048; k += 32) s.push_back(k);
    for (std::size_t k = 2112; k <= 6144; k += 64) s.push_back(k);
    return s;
  }();
  return sizes;
}

std::size_t QppInterleaver::ceil_block_size(std::size_t k) {
  for (const std::size_t s : valid_block_sizes())
    if (s >= k) return s;
  throw std::invalid_argument("ceil_block_size: k exceeds 6144");
}

}  // namespace rtopex::phy
