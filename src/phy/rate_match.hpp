// Circular-buffer rate matching (36.212 §5.1.4 style).
//
// Each turbo stream is passed through a 32-column sub-block interleaver,
// the three interleaved streams are packed into a circular buffer
// (systematic first, then parity1/parity2 interlaced), and E bits are read
// out starting at a redundancy-version-dependent offset. The receiver-side
// dematcher inverts the mapping, soft-combining repeated bits and leaving
// zero LLRs at punctured positions.
//
// Simplification vs. 3GPP (documented in DESIGN.md): the same column
// permutation is used for all three streams (3GPP offsets the second parity
// stream by one) — irrelevant to coding performance at the fidelity level
// the scheduler study needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/turbo.hpp"

namespace rtopex::phy {

class RateMatcher {
 public:
  /// `block_size` is the turbo block size K; streams have K + 4 entries.
  explicit RateMatcher(std::size_t block_size);

  std::size_t block_size() const { return kd_ - 4; }
  /// Circular buffer length (3 * Kpi, including dummy padding).
  std::size_t buffer_size() const { return cb_map_.size(); }

  /// Selects `e` coded bits for transmission.
  BitVector match(const TurboCodeword& cw, std::size_t e,
                  unsigned redundancy_version = 0) const;

  struct Dematched {
    LlrVector systematic;  ///< K + 4
    LlrVector parity1;     ///< K + 4
    LlrVector parity2;     ///< K + 4
  };

  /// Scatters `e` received LLRs back onto the three streams.
  Dematched dematch(std::span<const float> llrs,
                    unsigned redundancy_version = 0) const;

  /// Allocation-free dematch: zero-fills the three spans (each K + 4 long)
  /// and soft-combines the received LLRs into them. The circular buffer is
  /// walked via precomputed stream/offset tables, so the per-bit work is a
  /// single indexed accumulate with no division.
  void dematch_into(std::span<const float> llrs, unsigned redundancy_version,
                    std::span<float> systematic, std::span<float> parity1,
                    std::span<float> parity2) const;

 private:
  std::size_t start_index(unsigned rv) const;

  std::size_t kd_ = 0;    ///< stream length K + 4.
  std::size_t rows_ = 0;  ///< sub-block interleaver rows.
  /// Circular-buffer position -> (stream * kd_ + index), or -1 for a dummy.
  std::vector<std::int32_t> cb_map_;
  /// The same mapping split for branch-light kernels: stream index (0..2,
  /// or 3 for a dummy) and within-stream offset per buffer position.
  std::vector<std::uint8_t> cb_stream_;
  std::vector<std::uint32_t> cb_off_;
  /// Dummy-compressed walk order: the non-dummy positions in cyclic order,
  /// so the dematch hot loop runs exactly `e` iterations with no consume
  /// branch. `nd_prefix_[p]` counts non-dummies before buffer position `p`,
  /// mapping a redundancy-version start index into the compressed tables.
  std::vector<std::uint8_t> cbc_stream_;
  std::vector<std::uint32_t> cbc_off_;
  std::vector<std::uint32_t> nd_prefix_;
};

}  // namespace rtopex::phy
