#include "phy/uplink_tx.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "phy/ofdm.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"

namespace rtopex::phy {

CodeBlockLayout code_block_layout(const UplinkConfig& config, unsigned mcs) {
  const unsigned nprb = config.num_prb();
  const unsigned qm = modulation_order(mcs);
  const std::size_t g =
      static_cast<std::size_t>(data_resource_elements(nprb)) * qm;

  // Segmentation geometry (without building the bits): replicate
  // segment_transport_block's arithmetic.
  const std::size_t b = transport_block_size(mcs, nprb) + kCrcLength;
  std::size_t c = 1;
  std::size_t b_prime = b;
  if (b > kMaxCodeBlockSize) {
    const std::size_t payload = kMaxCodeBlockSize - kCrcLength;
    c = (b + payload - 1) / payload;
    b_prime = b + c * kCrcLength;
  }

  CodeBlockLayout layout;
  layout.payload_bits = b;
  layout.block_size = QppInterleaver::ceil_block_size((b_prime + c - 1) / c);
  layout.filler_bits = c * layout.block_size - b_prime;

  // Split G into per-block shares, each a multiple of Qm.
  const std::size_t base = (g / c) / qm * qm;
  std::size_t leftover = g - base * c;
  layout.e_bits.assign(c, base);
  for (std::size_t i = 0; i < c && leftover >= qm; ++i) {
    layout.e_bits[i] += qm;
    leftover -= qm;
  }
  // Any sub-Qm remainder goes to the first block so that sum(e) == G.
  layout.e_bits[0] += leftover;
  return layout;
}

UplinkTransmitter::UplinkTransmitter(const UplinkConfig& config)
    : config_(config),
      fft_(config.bw_config().fft_size),
      dmrs_(dmrs_sequence(config.num_subcarriers(), config.cell_id)) {}

TxSubframe UplinkTransmitter::transmit(unsigned mcs,
                                       std::uint32_t subframe_index,
                                       std::uint64_t payload_seed) const {
  const auto bw = config_.bw_config();
  const unsigned nsc = config_.num_subcarriers();
  const unsigned qm = modulation_order(mcs);

  TxSubframe tx;
  tx.mcs = mcs;
  tx.subframe_index = subframe_index;

  // Random payload.
  Rng rng(payload_seed);
  tx.payload.resize(transport_block_size(mcs, bw.num_prb));
  for (auto& bit : tx.payload)
    bit = static_cast<std::uint8_t>(rng.next() & 1);

  // Transport block CRC + segmentation.
  BitVector tb = tx.payload;
  attach_crc24(tb, CrcKind::kA);
  const Segmentation seg = segment_transport_block(tb);

  // Per-block turbo encoding + rate matching, concatenated.
  const CodeBlockLayout layout = code_block_layout(config_, mcs);
  if (layout.e_bits.size() != seg.num_blocks())
    throw std::logic_error("transmit: layout/segmentation mismatch");
  const QppInterleaver interleaver(seg.block_size);
  const TurboEncoder encoder(interleaver);
  const RateMatcher matcher(seg.block_size);

  BitVector codeword;
  for (std::size_t blk = 0; blk < seg.num_blocks(); ++blk) {
    const TurboCodeword cw = encoder.encode(seg.blocks[blk]);
    const BitVector matched = matcher.match(cw, layout.e_bits[blk]);
    codeword.insert(codeword.end(), matched.begin(), matched.end());
  }

  // Scramble + modulate.
  scramble_bits(codeword,
                scrambling_init(config_.rnti, subframe_index, config_.cell_id));
  const IqVector symbols = modulate(codeword, qm);
  if (symbols.size() != data_resource_elements(bw.num_prb))
    throw std::logic_error("transmit: RE count mismatch");

  // Grid mapping + OFDM: 14 symbols, DMRS at kDmrsSymbol0/1.
  tx.samples.reserve(kSymbolsPerSubframe * (bw.cp_samples + bw.fft_size));
  std::size_t data_pos = 0;
  for (unsigned sym = 0; sym < kSymbolsPerSubframe; ++sym) {
    std::span<const Complex> content;
    if (sym == kDmrsSymbol0 || sym == kDmrsSymbol1) {
      content = dmrs_;
    } else {
      content = std::span<const Complex>(symbols).subspan(data_pos, nsc);
      data_pos += nsc;
    }
    const IqVector time = ofdm_modulate(fft_, content, bw.cp_samples);
    tx.samples.insert(tx.samples.end(), time.begin(), time.end());
  }
  return tx;
}

}  // namespace rtopex::phy
