#include "phy/ofdm.hpp"

#include <cmath>
#include <stdexcept>

namespace rtopex::phy {
namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

std::size_t largest_prime_not_above(std::size_t n) {
  for (std::size_t p = n; p >= 2; --p)
    if (is_prime(p)) return p;
  throw std::invalid_argument("no prime <= n");
}

}  // namespace

std::size_t subcarrier_bin(std::size_t k, std::size_t nsc,
                           std::size_t fft_size) {
  if (k >= nsc || nsc >= fft_size)
    throw std::invalid_argument("subcarrier_bin: out of range");
  const std::size_t half = nsc / 2;
  // Lower half maps to negative frequencies, upper half to bins 1..half.
  if (k < half) return fft_size - half + k;
  return k - half + 1;
}

IqVector zadoff_chu(unsigned root, std::size_t length) {
  const std::size_t nzc = largest_prime_not_above(length);
  IqVector seq(length);
  for (std::size_t n = 0; n < length; ++n) {
    const std::size_t m = n % nzc;
    const double phase = -M_PI * static_cast<double>(root) *
                         static_cast<double>(m) * static_cast<double>(m + 1) /
                         static_cast<double>(nzc);
    seq[n] = {static_cast<float>(std::cos(phase)),
              static_cast<float>(std::sin(phase))};
  }
  return seq;
}

IqVector dmrs_sequence(std::size_t nsc, unsigned cell_id) {
  // Root depends on the cell identity so that different basestations use
  // different (low-cross-correlation) reference signals.
  const unsigned root = 25 + (cell_id % 5);
  return zadoff_chu(root, nsc);
}

IqVector ofdm_modulate(const FftPlan& plan, std::span<const Complex> subcarriers,
                       std::size_t cp_samples) {
  const std::size_t n = plan.size();
  IqVector freq(n, Complex{0.0f, 0.0f});
  for (std::size_t k = 0; k < subcarriers.size(); ++k)
    freq[subcarrier_bin(k, subcarriers.size(), n)] = subcarriers[k];
  plan.inverse(freq);
  IqVector out;
  out.reserve(cp_samples + n);
  out.insert(out.end(), freq.end() - static_cast<std::ptrdiff_t>(cp_samples),
             freq.end());
  out.insert(out.end(), freq.begin(), freq.end());
  return out;
}

IqVector ofdm_demodulate(const FftPlan& plan, std::span<const Complex> samples,
                         std::size_t cp_samples, std::size_t nsc) {
  const std::size_t n = plan.size();
  if (samples.size() != cp_samples + n)
    throw std::invalid_argument("ofdm_demodulate: bad sample count");
  IqVector freq(samples.begin() + static_cast<std::ptrdiff_t>(cp_samples),
                samples.end());
  plan.forward(freq);
  IqVector out(nsc);
  for (std::size_t k = 0; k < nsc; ++k)
    out[k] = freq[subcarrier_bin(k, nsc, n)];
  return out;
}

void ofdm_demodulate_into(const FftPlan& plan, std::span<const Complex> samples,
                          std::size_t cp_samples, std::span<Complex> out,
                          DecodeWorkspace& ws) {
  const std::size_t n = plan.size();
  if (samples.size() != cp_samples + n)
    throw std::invalid_argument("ofdm_demodulate: bad sample count");
  const std::size_t nsc = out.size();
  grow_buffer(ws.fft_re, n);
  grow_buffer(ws.fft_im, n);
  float* re = ws.fft_re.data();
  float* im = ws.fft_im.data();
  const Complex* in = samples.data() + cp_samples;
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = in[i].real();
    im[i] = in[i].imag();
  }
  plan.forward_soa(std::span<float>(re, n), std::span<float>(im, n));
  // The occupied bins straddle DC: negative frequencies sit at the top of
  // the spectrum, so the gather is two contiguous runs (see subcarrier_bin).
  const std::size_t half = nsc / 2;
  for (std::size_t k = 0; k < half; ++k) {
    const std::size_t bin = n - half + k;
    out[k] = {re[bin], im[bin]};
  }
  for (std::size_t k = half; k < nsc; ++k) {
    const std::size_t bin = k - half + 1;
    out[k] = {re[bin], im[bin]};
  }
}

}  // namespace rtopex::phy
