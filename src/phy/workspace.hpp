// Per-thread scratch for the uplink receive chain.
//
// Every hot-path kernel (FFT, demapper, rate dematcher, turbo SISO,
// descrambler, desegmentation) writes its intermediates into a
// DecodeWorkspace instead of allocating. Buffers only ever grow, so after
// one warm-up subframe a steady-state subframe performs zero heap
// allocations (asserted by tests/phy/test_zero_alloc.cpp with a counting
// allocator).
//
// Ownership rule: one workspace per executing thread. Subtasks of one
// UplinkRxJob may run concurrently on different cores (including migrated
// RT-OPEX chunks); each executing thread must bring its own workspace.
// UplinkRxProcessor's no-workspace overloads use a thread_local instance
// (UplinkRxProcessor::thread_workspace()), which is what the NodeRuntime
// workers and migrated-chunk hosts reuse across subframes.
#pragma once

#include <cstdint>
#include <vector>

namespace rtopex::phy {

struct TurboDecodeResult;

/// Grow-only resize: never shrinks, so steady-state reuse never allocates.
template <typename T>
inline void grow_buffer(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

struct DecodeWorkspace {
  // --- FFT: structure-of-arrays transform scratch (FftPlan::size floats).
  std::vector<float> fft_re;
  std::vector<float> fft_im;

  // --- Rate dematcher output streams (K + 4 each).
  std::vector<float> dm_systematic;
  std::vector<float> dm_parity1;
  std::vector<float> dm_parity2;

  // --- Turbo decoder scratch (K data bits, K + 3 trellis steps).
  std::vector<float> sys1, par1;    ///< SISO 1 inputs (K + 3).
  std::vector<float> sys2, par2;    ///< SISO 2 inputs (K + 3).
  std::vector<float> extrinsic1;    ///< decoder 1 -> 2 (K).
  std::vector<float> extrinsic2;    ///< decoder 2 -> 1, deinterleaved (K).
  std::vector<float> app;           ///< SISO a-posteriori output (K).
  std::vector<float> gamma;         ///< 4 branch metrics per step (4*(K+3)).
  std::vector<float> alpha;         ///< forward metrics (8*(K+4)).
  std::vector<std::uint8_t> bits;   ///< hard decisions (K).
  unsigned iterations = 0;          ///< of the last decode_into call.
  bool early_terminated = false;    ///< of the last decode_into call.

  // --- Descrambler: cached sequence plus generator scratch. The cache key
  // is (c_init, length); a steady-state worker decodes the same
  // basestation's scrambling identity every subframe and pays generation
  // once.
  std::vector<std::uint8_t> scramble_seq;
  std::vector<std::uint8_t> scramble_x1, scramble_x2;
  std::uint32_t scramble_c_init = 0;
  /// Entries of scramble_seq valid for scramble_c_init (the buffer itself
  /// is grow-only and may be longer than the last generation).
  std::size_t scramble_len = 0;
  bool scramble_valid = false;

  // --- Finalize: reassembled transport block (payload + CRC24A bits).
  std::vector<std::uint8_t> tb_with_crc;
};

}  // namespace rtopex::phy
