// Per-thread scratch for the uplink receive chain.
//
// Every hot-path kernel (FFT, demapper, rate dematcher, turbo SISO,
// descrambler, desegmentation) writes its intermediates into a
// DecodeWorkspace instead of allocating. Buffers only ever grow, so after
// one warm-up subframe a steady-state subframe performs zero heap
// allocations (asserted by tests/phy/test_zero_alloc.cpp with a counting
// allocator).
//
// Ownership rule: one workspace per executing thread. Subtasks of one
// UplinkRxJob may run concurrently on different cores (including migrated
// RT-OPEX chunks); each executing thread must bring its own workspace.
// UplinkRxProcessor's no-workspace overloads use a thread_local instance
// (UplinkRxProcessor::thread_workspace()), which is what the NodeRuntime
// workers and migrated-chunk hosts reuse across subframes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rtopex::phy {

struct TurboDecodeResult;

/// Grow-only resize: never shrinks, so steady-state reuse never allocates.
template <typename T>
inline void grow_buffer(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

/// Bounded LRU cache of Gold scrambling sequences, keyed by c_init. One
/// basestation cycles through at most 10 c_init values (subframe mod 10),
/// so kEntries covers a worker's own basestation entirely and leaves room
/// for batched neighbours; a worker serving many basestations evicts in LRU
/// order instead of growing. Each entry's buffer is grow-only but capped by
/// the longest sequence ever requested, so total retained memory is bounded
/// by kEntries * max_length regardless of how many distinct c_init values a
/// long cluster run touches (asserted by the kernel regression tests).
struct ScrambleCache {
  static constexpr std::size_t kEntries = 16;

  struct Entry {
    std::uint32_t c_init = 0;
    std::size_t len = 0;     ///< valid prefix of seq for c_init.
    std::uint64_t stamp = 0; ///< LRU clock value of the last hit.
    bool valid = false;
    std::vector<std::uint8_t> seq;  ///< grow-only sequence storage.
  };

  std::array<Entry, kEntries> entries;
  std::uint64_t clock = 0;
  /// Generator shift-register scratch, shared across entries (grow-only).
  std::vector<std::uint8_t> x1, x2;

  /// Total sequence bytes retained — the quantity the bounded-memory
  /// regression test asserts on.
  std::size_t retained_bytes() const {
    std::size_t total = 0;
    for (const Entry& e : entries) total += e.seq.capacity();
    return total;
  }
};

struct DecodeWorkspace {
  // --- FFT: structure-of-arrays transform scratch (FftPlan::size floats).
  std::vector<float> fft_re;
  std::vector<float> fft_im;

  // --- Rate dematcher output streams (K + 4 each).
  std::vector<float> dm_systematic;
  std::vector<float> dm_parity1;
  std::vector<float> dm_parity2;

  // --- Turbo decoder scratch (K data bits, K + 3 trellis steps).
  std::vector<float> sys1, par1;    ///< SISO 1 inputs (K + 3).
  std::vector<float> sys2, par2;    ///< SISO 2 inputs (K + 3).
  std::vector<float> extrinsic1;    ///< decoder 1 -> 2 (K).
  std::vector<float> extrinsic2;    ///< decoder 2 -> 1, deinterleaved (K).
  std::vector<float> app;           ///< SISO a-posteriori output (K).
  std::vector<float> gamma;         ///< 4 branch metrics per step (4*(K+3)).
  std::vector<float> alpha;         ///< forward metrics (8*(K+4)).
  std::vector<std::uint8_t> bits;   ///< hard decisions (K).
  unsigned iterations = 0;          ///< of the last decode_into call.
  bool early_terminated = false;    ///< of the last decode_into call.

  // --- Batched SoA turbo decoder scratch (decode_batch_into). All float
  // buffers hold lane-major rows of kTurboBatchLanes: element [i*8 + b] is
  // trellis position i of lane (code block) b. Sizes below are per lane.
  std::vector<float> bat_in;        ///< dematcher output, lane-contiguous
                                    ///< (3 streams of K+4 per lane).
  std::vector<float> bat_sysc;      ///< channel systematic rows (K).
  std::vector<float> bat_sys1, bat_par1;  ///< SISO 1 input rows (K+3).
  std::vector<float> bat_sys2, bat_par2;  ///< SISO 2 input rows (K+3).
  std::vector<float> bat_ext1, bat_ext2;  ///< extrinsic rows (K).
  std::vector<float> bat_app;       ///< SISO a-posteriori rows (K).
  std::vector<float> bat_gamma;     ///< branch-metric rows (4*(K+3)).
  std::vector<float> bat_alpha;     ///< forward-metric rows (8*(K+4)).
  std::vector<std::uint8_t> bat_bits;  ///< lane-contiguous decisions (K per
                                       ///< lane, lane b at [b*K, (b+1)*K)).
  std::array<unsigned, 8> bat_iterations{};      ///< per-lane iterations.
  std::array<bool, 8> bat_early_terminated{};    ///< per-lane CRC pass.
  /// Cross-subframe batching scratch: (job, block) pairs grouped by K.
  std::vector<std::uint32_t> bat_group;

  // --- Descrambler: bounded LRU sequence cache. A steady-state worker
  // cycles through its basestation's (at most 10) c_init values and pays
  // generation once per value; eviction keeps memory bounded on workers
  // that serve many basestations.
  ScrambleCache scramble;

  // --- Finalize: reassembled transport block (payload + CRC24A bits).
  std::vector<std::uint8_t> tb_with_crc;
};

}  // namespace rtopex::phy
