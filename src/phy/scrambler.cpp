#include "phy/scrambler.hpp"

namespace rtopex::phy {
namespace {

constexpr std::size_t kNc = 1600;

}  // namespace

BitVector scrambling_sequence(std::uint32_t c_init, std::size_t length) {
  const std::size_t total = kNc + length;
  BitVector x1(total + 31), x2(total + 31);
  x1[0] = 1;  // fixed init: x1 = 100...0
  for (int i = 0; i < 31; ++i) x2[i] = (c_init >> i) & 1;
  for (std::size_t n = 0; n + 31 < total + 31; ++n) {
    x1[n + 31] = x1[n + 3] ^ x1[n];
    x2[n + 31] = x2[n + 3] ^ x2[n + 2] ^ x2[n + 1] ^ x2[n];
  }
  BitVector c(length);
  for (std::size_t n = 0; n < length; ++n)
    c[n] = x1[n + kNc] ^ x2[n + kNc];
  return c;
}

std::uint32_t scrambling_init(std::uint16_t rnti, std::uint32_t subframe_index,
                              std::uint16_t cell_id) {
  return (static_cast<std::uint32_t>(rnti) << 14) ^
         ((subframe_index % 10) << 9) ^ cell_id;
}

void scramble_bits(std::span<std::uint8_t> bits, std::uint32_t c_init) {
  const BitVector c = scrambling_sequence(c_init, bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] ^= c[i];
}

void descramble_llrs(std::span<float> llrs, std::uint32_t c_init) {
  const BitVector c = scrambling_sequence(c_init, llrs.size());
  for (std::size_t i = 0; i < llrs.size(); ++i)
    if (c[i]) llrs[i] = -llrs[i];
}

}  // namespace rtopex::phy
