#include "phy/scrambler.hpp"

namespace rtopex::phy {
namespace {

constexpr std::size_t kNc = 1600;

// Generates into caller-owned buffers: c gets `length` bits, x1/x2 are
// generator scratch (grow-only).
void generate_sequence(std::uint32_t c_init, std::size_t length, BitVector& c,
                       BitVector& x1, BitVector& x2) {
  const std::size_t total = kNc + length;
  grow_buffer(x1, total + 31);
  grow_buffer(x2, total + 31);
  grow_buffer(c, length);
  // Restrict-qualified raw pointers: with plain vector references the
  // compiler must assume the three buffers alias and stops vectorizing the
  // shift-register loops (a measured 2x on the sequence generation).
  std::uint8_t* __restrict__ p1 = x1.data();
  std::uint8_t* __restrict__ p2 = x2.data();
  std::uint8_t* __restrict__ pc = c.data();
  p1[0] = 1;  // fixed init: x1 = 100...0
  for (int i = 1; i < 31; ++i) p1[i] = 0;
  for (int i = 0; i < 31; ++i) p2[i] = (c_init >> i) & 1;
  for (std::size_t n = 0; n + 31 < total + 31; ++n) {
    p1[n + 31] = p1[n + 3] ^ p1[n];
    p2[n + 31] = p2[n + 3] ^ p2[n + 2] ^ p2[n + 1] ^ p2[n];
  }
  for (std::size_t n = 0; n < length; ++n)
    pc[n] = p1[n + kNc] ^ p2[n + kNc];
}

}  // namespace

BitVector scrambling_sequence(std::uint32_t c_init, std::size_t length) {
  BitVector c, x1, x2;
  generate_sequence(c_init, length, c, x1, x2);
  c.resize(length);
  return c;
}

std::uint32_t scrambling_init(std::uint16_t rnti, std::uint32_t subframe_index,
                              std::uint16_t cell_id) {
  return (static_cast<std::uint32_t>(rnti) << 14) ^
         ((subframe_index % 10) << 9) ^ cell_id;
}

void scramble_bits(std::span<std::uint8_t> bits, std::uint32_t c_init) {
  const BitVector c = scrambling_sequence(c_init, bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] ^= c[i];
}

void descramble_llrs(std::span<float> llrs, std::uint32_t c_init) {
  const BitVector c = scrambling_sequence(c_init, llrs.size());
  for (std::size_t i = 0; i < llrs.size(); ++i)
    if (c[i]) llrs[i] = -llrs[i];
}

void descramble_llrs_cached(std::span<float> llrs, std::uint32_t c_init,
                            DecodeWorkspace& ws) {
  // Bounded LRU over c_init. A hit needs a valid entry whose cached prefix
  // covers the request (Gold sequences are prefix-stable, so a longer
  // cached sequence serves shorter requests). A miss regenerates into the
  // least-recently-used slot, reusing its grow-only buffer — total retained
  // memory stays capped at kEntries * max requested length no matter how
  // many distinct c_init values a long multi-BS run touches.
  ScrambleCache& cache = ws.scramble;
  ScrambleCache::Entry* hit = nullptr;
  ScrambleCache::Entry* same_key = nullptr;
  ScrambleCache::Entry* lru = &cache.entries[0];
  for (ScrambleCache::Entry& e : cache.entries) {
    if (e.valid && e.c_init == c_init) {
      if (e.len >= llrs.size()) {
        hit = &e;
        break;
      }
      same_key = &e;  // regenerate in place rather than duplicating the key
    }
    if (!e.valid) {
      lru = &e;
    } else if (lru->valid && e.stamp < lru->stamp) {
      lru = &e;
    }
  }
  if (!hit) {
    ScrambleCache::Entry* victim = same_key ? same_key : lru;
    generate_sequence(c_init, llrs.size(), victim->seq, cache.x1, cache.x2);
    victim->c_init = c_init;
    victim->len = llrs.size();
    victim->valid = true;
    hit = victim;
  }
  hit->stamp = ++cache.clock;
  const std::uint8_t* c = hit->seq.data();
  for (std::size_t i = 0; i < llrs.size(); ++i)
    if (c[i]) llrs[i] = -llrs[i];
}

}  // namespace rtopex::phy
