// Quadratic permutation polynomial (QPP) interleaver for the turbo code:
// pi(i) = (f1*i + f2*i^2) mod K.
//
// 3GPP 36.212 fixes (f1, f2) per block size K in a 188-row table. We instead
// search the smallest valid (f1, f2) per K and verify bijectivity explicitly
// (see DESIGN.md §2 — bit-exact 3GPP interop is not a goal; contention-free
// parallel decodability and bijectivity are what matter). A handful of known
// 3GPP pairs are used in tests as sanity anchors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rtopex::phy {

class QppInterleaver {
 public:
  /// Builds the interleaver for block size K, searching valid parameters.
  /// Throws std::invalid_argument if K < 8 or no parameters are found.
  explicit QppInterleaver(std::size_t k);

  /// Builds with explicit parameters; throws if (f1, f2) is not a bijection
  /// over [0, K).
  QppInterleaver(std::size_t k, std::size_t f1, std::size_t f2);

  std::size_t size() const { return forward_.size(); }
  std::size_t f1() const { return f1_; }
  std::size_t f2() const { return f2_; }

  /// Interleaved index of position i.
  std::size_t map(std::size_t i) const { return forward_[i]; }
  /// Original index of interleaved position j.
  std::size_t inverse(std::size_t j) const { return inverse_[j]; }

  /// Whole permutation tables, for gather-style kernels that index the raw
  /// arrays instead of calling map()/inverse() per element.
  std::span<const std::size_t> forward_map() const { return forward_; }
  std::span<const std::size_t> inverse_map() const { return inverse_; }

  /// Interleave / deinterleave whole sequences.
  template <typename T>
  std::vector<T> interleave(const std::vector<T>& in) const {
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[forward_[i]];
    return out;
  }
  template <typename T>
  std::vector<T> deinterleave(const std::vector<T>& in) const {
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[forward_[i]] = in[i];
    return out;
  }

  /// The K grid used by code-block segmentation: 40..6144 with LTE-style
  /// granularity (8 up to 512, 16 to 1024, 32 to 2048, 64 to 6144).
  static const std::vector<std::size_t>& valid_block_sizes();
  /// Smallest grid size >= k (throws if k > 6144).
  static std::size_t ceil_block_size(std::size_t k);

 private:
  void build(std::size_t k, std::size_t f1, std::size_t f2);

  std::size_t f1_ = 0;
  std::size_t f2_ = 0;
  std::vector<std::size_t> forward_;
  std::vector<std::size_t> inverse_;
};

}  // namespace rtopex::phy
