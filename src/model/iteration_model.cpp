#include "model/iteration_model.hpp"

#include <algorithm>
#include <cmath>

namespace rtopex::model {

double IterationModel::margin_db(unsigned mcs, double snr_db) const {
  const double threshold =
      params_.threshold_base_db + params_.threshold_slope_db * mcs;
  return snr_db - threshold;
}

double IterationModel::failure_probability(unsigned mcs, double snr_db) const {
  const double m = margin_db(mcs, snr_db);
  return 1.0 / (1.0 + std::exp(m / params_.fail_scale_db));
}

IterationModel::Outcome IterationModel::sample(unsigned mcs, double snr_db,
                                               unsigned max_iterations,
                                               Rng& rng) const {
  Outcome out;
  if (rng.bernoulli(failure_probability(mcs, snr_db))) {
    out.decoded = false;
    out.iterations = max_iterations;
    return out;
  }
  const double m = margin_db(mcs, snr_db);
  const double q = std::clamp(params_.q_base - params_.q_slope * m,
                              params_.q_min, params_.q_max);
  unsigned l = 1;
  while (l < max_iterations && rng.bernoulli(q)) ++l;
  out.iterations = l;
  return out;
}

}  // namespace rtopex::model
