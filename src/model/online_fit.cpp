#include "model/online_fit.hpp"

#include <algorithm>
#include <cmath>

#include "phy/lte_params.hpp"

namespace rtopex::model {

namespace {

constexpr double kNsPerUs = 1000.0;

bool all_finite(const std::array<double, RlsEstimator::kDim>& v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

RlsEstimator::RlsEstimator(double lambda, double delta)
    : lambda_(std::clamp(lambda, 1e-3, 1.0)) {
  const double d = delta > 0.0 && std::isfinite(delta) ? delta : 1e3;
  for (std::size_t i = 0; i < kDim; ++i) p_[i][i] = d;
}

void RlsEstimator::observe(const std::array<double, kDim>& x, double y) {
  if (!std::isfinite(y) || !all_finite(x)) return;

  // px = P x  (P is symmetric), denom = lambda + x' P x.
  std::array<double, kDim> px{};
  for (std::size_t i = 0; i < kDim; ++i)
    for (std::size_t j = 0; j < kDim; ++j) px[i] += p_[i][j] * x[j];
  double denom = lambda_;
  for (std::size_t i = 0; i < kDim; ++i) denom += x[i] * px[i];
  if (!(denom > 1e-12) || !std::isfinite(denom)) return;

  std::array<double, kDim> k{};
  for (std::size_t i = 0; i < kDim; ++i) k[i] = px[i] / denom;

  double err = y;
  for (std::size_t i = 0; i < kDim; ++i) err -= theta_[i] * x[i];

  std::array<double, kDim> theta = theta_;
  for (std::size_t i = 0; i < kDim; ++i) theta[i] += k[i] * err;
  // P' = (P - k (P x)') / lambda; reject the update wholesale if anything
  // went non-finite (extreme inputs), keeping the prior state intact.
  std::array<std::array<double, kDim>, kDim> p = p_;
  bool ok = all_finite(theta);
  for (std::size_t i = 0; i < kDim && ok; ++i)
    for (std::size_t j = 0; j < kDim; ++j) {
      p[i][j] = (p_[i][j] - k[i] * px[j]) / lambda_;
      if (!std::isfinite(p[i][j])) {
        ok = false;
        break;
      }
    }
  if (!ok) return;
  theta_ = theta;
  p_ = p;
  ++samples_;
}

double RlsEstimator::predict(const std::array<double, kDim>& x) const {
  double y = 0.0;
  for (std::size_t i = 0; i < kDim; ++i) y += theta_[i] * x[i];
  return y;
}

Eq1OnlineFit::Eq1OnlineFit(const AdaptiveParams& params)
    : params_(params), rls_(params.rls_lambda, params.rls_delta) {}

void Eq1OnlineFit::observe(unsigned antennas, unsigned modulation_order,
                           double subcarrier_load, double iterations,
                           Duration time) {
  if (time <= 0) return;  // stage never ran (fault-truncated / dropped).
  const std::array<double, RlsEstimator::kDim> x = {
      1.0, static_cast<double>(antennas),
      static_cast<double>(modulation_order), subcarrier_load * iterations};
  rls_.observe(x, static_cast<double>(time) / kNsPerUs);
}

Duration Eq1OnlineFit::predict_or(unsigned antennas, unsigned modulation_order,
                                  double subcarrier_load, double iterations,
                                  Duration fallback) const {
  const Duration safe_fallback = std::max<Duration>(1, fallback);
  if (!warmed_up()) return safe_fallback;
  const std::array<double, RlsEstimator::kDim> x = {
      1.0, static_cast<double>(antennas),
      static_cast<double>(modulation_order), subcarrier_load * iterations};
  const double us = rls_.predict(x);
  if (!std::isfinite(us) || us <= 0.0) return safe_fallback;
  return std::max<Duration>(1, static_cast<Duration>(std::llround(us * kNsPerUs)));
}

IterationPredictor::IterationPredictor(double initial, unsigned max_iterations,
                                       const AdaptiveParams& params)
    : mean_(initial), lm_(std::max(1u, max_iterations)), params_(params) {
  if (!std::isfinite(mean_) || mean_ <= 0.0) mean_ = static_cast<double>(lm_);
}

void IterationPredictor::observe(unsigned executed) {
  if (executed == 0) return;  // decode never ran; not an iteration sample.
  const double sample =
      std::min(static_cast<double>(executed), static_cast<double>(lm_));
  mean_ += params_.iteration_alpha * (sample - mean_);
  ++samples_;
}

unsigned IterationPredictor::predict() const {
  const double with_headroom = mean_ + params_.iteration_headroom;
  if (!std::isfinite(with_headroom)) return lm_;
  const double rounded = std::ceil(with_headroom);
  return static_cast<unsigned>(
      std::clamp(rounded, 1.0, static_cast<double>(lm_)));
}

void DurationEwma::observe(Duration sample) {
  if (sample <= 0) return;
  const double s = static_cast<double>(sample);
  value_ = samples_ == 0 ? s : value_ + alpha_ * (s - value_);
  ++samples_;
}

Duration DurationEwma::value_or(Duration fallback) const {
  if (samples_ == 0 || !std::isfinite(value_) || value_ < 1.0)
    return std::max<Duration>(1, fallback);
  return static_cast<Duration>(std::llround(value_));
}

void MeanVarEwma::observe(double sample) {
  if (!std::isfinite(sample)) return;
  if (samples_ == 0) {
    mean_ = sample;
  } else {
    // Deviation against the *previous* mean keeps the variance estimate
    // unbiased-ish under level shifts (the shift itself contributes spread).
    const double dev = sample - mean_;
    var_ += alpha_ * (dev * dev - var_);
    mean_ += alpha_ * dev;
  }
  ++samples_;
}

double MeanVarEwma::stddev() const {
  if (samples_ < 2 || !std::isfinite(var_) || var_ <= 0.0) return 0.0;
  return std::sqrt(var_);
}

double MeanVarEwma::zscore(double x) const {
  if (!warmed_up() || !std::isfinite(x)) return 0.0;
  const double sigma = stddev();
  if (sigma <= 0.0) return 0.0;
  const double z = (x - mean_) / sigma;
  return std::isfinite(z) ? z : 0.0;
}

OnlineEstimators::OnlineEstimators(unsigned num_antennas, unsigned num_prb,
                                   unsigned num_basestations,
                                   unsigned max_iterations,
                                   const AdaptiveParams& params)
    : antennas_(num_antennas),
      num_prb_(num_prb),
      lm_(std::max(1u, max_iterations)),
      params_(params),
      fit_(params),
      decode_subtask_(params.duration_alpha),
      fft_subtask_(params.duration_alpha) {
  per_bs_.reserve(num_basestations);
  for (unsigned bs = 0; bs < num_basestations; ++bs)
    per_bs_.emplace_back(static_cast<double>(lm_), lm_, params);
}

unsigned OnlineEstimators::predict_iterations(unsigned bs) const {
  if (bs >= per_bs_.size()) return lm_;
  return per_bs_[bs].predict();
}

Duration OnlineEstimators::predict_decode(unsigned bs, unsigned mcs,
                                          Duration fallback) const {
  const unsigned m = std::min(mcs, phy::kMaxMcs);
  return fit_.predict_or(antennas_, phy::modulation_order(m),
                         phy::subcarrier_load(m, num_prb_),
                         static_cast<double>(predict_iterations(bs)),
                         fallback);
}

void OnlineEstimators::observe_decode(unsigned bs, unsigned mcs,
                                      unsigned executed_iterations,
                                      Duration decode_ns,
                                      Duration decode_subtask_ns) {
  if (bs < per_bs_.size()) per_bs_[bs].observe(executed_iterations);
  if (executed_iterations == 0) return;
  const unsigned m = std::min(mcs, phy::kMaxMcs);
  fit_.observe(antennas_, phy::modulation_order(m),
               phy::subcarrier_load(m, num_prb_),
               static_cast<double>(executed_iterations), decode_ns);
  decode_subtask_.observe(decode_subtask_ns);
}

void OnlineEstimators::observe_fft(Duration fft_subtask_ns) {
  fft_subtask_.observe(fft_subtask_ns);
}

}  // namespace rtopex::model
