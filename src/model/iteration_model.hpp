// Stochastic model of the turbo decoder's iteration count L and decode
// outcome as a function of the SNR margin above the MCS threshold.
//
// The paper (§2.1) observes that L is non-deterministic even at fixed SNR
// and takes values in [1, Lm]. We model L as a truncated geometric whose
// continuation probability q grows as the SNR margin shrinks, with decode
// failure (NACK, L = Lm) probability following a logistic in the margin.
// Defaults are sanity-checked against this repo's real PHY chain
// (tests/model/test_iteration_model.cpp).
#pragma once

#include "common/rng.hpp"

namespace rtopex::model {

struct IterationModelParams {
  /// Decoding SNR threshold for MCS m: threshold_base + threshold_slope * m.
  double threshold_base_db = -6.0;
  double threshold_slope_db = 1.1;
  /// Truncated-geometric continuation probability q(margin) =
  /// clamp(q_base - q_slope * margin_db, q_min, q_max).
  double q_base = 0.62;
  double q_slope = 0.05;
  double q_min = 0.05;
  double q_max = 0.95;
  /// Failure probability: logistic(-margin / fail_scale).
  double fail_scale_db = 0.8;
};

class IterationModel {
 public:
  explicit IterationModel(const IterationModelParams& params = {})
      : params_(params) {}

  struct Outcome {
    unsigned iterations = 1;  ///< L in [1, Lm].
    bool decoded = true;      ///< CRC pass (ACK) vs fail (NACK).
  };

  /// SNR margin (dB) of the given MCS at the given SNR.
  double margin_db(unsigned mcs, double snr_db) const;

  /// Probability that decoding fails outright.
  double failure_probability(unsigned mcs, double snr_db) const;

  /// Samples (L, decoded). On failure, L == max_iterations (no early
  /// termination is possible).
  Outcome sample(unsigned mcs, double snr_db, unsigned max_iterations,
                 Rng& rng) const;

  const IterationModelParams& params() const { return params_; }

 private:
  IterationModelParams params_;
};

}  // namespace rtopex::model
