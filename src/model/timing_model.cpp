#include "model/timing_model.hpp"

#include <stdexcept>

namespace rtopex::model {

Duration TimingModel::predict(unsigned antennas, unsigned modulation_order,
                              double subcarrier_load, double iterations) const {
  const double us = w0_us + w1_us * antennas + w2_us * modulation_order +
                    w3_us * subcarrier_load * iterations;
  return microseconds_f(us);
}

Duration TimingModel::wcet(unsigned antennas, unsigned modulation_order,
                           double subcarrier_load,
                           unsigned max_iterations) const {
  return predict(antennas, modulation_order, subcarrier_load,
                 static_cast<double>(max_iterations));
}

TimingModel paper_gpp_model() { return TimingModel{}; }

TimingModel fit_timing_model(const std::vector<TimingMeasurement>& data) {
  if (data.size() < 4)
    throw std::invalid_argument("fit_timing_model: need >= 4 observations");
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(data.size());
  y.reserve(data.size());
  for (const auto& m : data) {
    rows.push_back({1.0, static_cast<double>(m.antennas),
                    static_cast<double>(m.modulation_order),
                    m.subcarrier_load * m.iterations});
    y.push_back(m.time_us);
  }
  const OlsFit fit = ols_fit(rows, y);
  TimingModel model;
  model.w0_us = fit.coefficients[0];
  model.w1_us = fit.coefficients[1];
  model.w2_us = fit.coefficients[2];
  model.w3_us = fit.coefficients[3];
  model.r_squared = fit.r_squared;
  return model;
}

double CyclesModel::predict_kcycles(unsigned antennas,
                                    unsigned modulation_order,
                                    double subcarrier_load,
                                    double iterations) const {
  return c0_kc + c1_kc * antennas + c2_kc * modulation_order +
         c3_kc * subcarrier_load * iterations;
}

CyclesModel fit_cycles_model(const std::vector<TimingMeasurement>& data) {
  if (data.size() < 4)
    throw std::invalid_argument("fit_cycles_model: need >= 4 observations");
  const auto col = [](const TimingMeasurement& m, int j) {
    switch (j) {
      case 0: return static_cast<double>(m.antennas);
      case 1: return static_cast<double>(m.modulation_order);
      default: return m.subcarrier_load * m.iterations;
    }
  };
  // A predictor held constant across the sample (one antenna configuration
  // per process) is collinear with the intercept; keep only the columns
  // that vary so the normal equations stay non-singular.
  bool active[3] = {false, false, false};
  for (int j = 0; j < 3; ++j)
    for (std::size_t i = 1; i < data.size() && !active[j]; ++i)
      active[j] = col(data[i], j) != col(data[0], j);
  std::vector<double> y;
  y.reserve(data.size());
  for (const auto& m : data) y.push_back(m.time_us);
  for (;;) {
    std::vector<std::vector<double>> rows;
    rows.reserve(data.size());
    for (const auto& m : data) {
      std::vector<double> r{1.0};
      for (int j = 0; j < 3; ++j)
        if (active[j]) r.push_back(col(m, j));
      rows.push_back(std::move(r));
    }
    try {
      const OlsFit fit = ols_fit(rows, y);
      CyclesModel model;
      model.c0_kc = fit.coefficients[0];
      double* coeffs[3] = {&model.c1_kc, &model.c2_kc, &model.c3_kc};
      std::size_t k = 1;
      for (int j = 0; j < 3; ++j)
        *coeffs[j] = active[j] ? fit.coefficients[k++] : 0.0;
      model.r_squared = fit.r_squared;
      return model;
    } catch (const std::runtime_error&) {
      // Varying columns can still be mutually collinear (single-iteration
      // runs where the per-MCS modulation order tracks the code-block
      // count exactly). Shed the least load-bearing predictor — mod order
      // first, then antennas, keeping D*L, Eq. (1)'s dominant term — and
      // refit; rethrow once nothing is left to drop.
      if (active[1]) {
        active[1] = false;
      } else if (active[0]) {
        active[0] = false;
      } else {
        throw;
      }
    }
  }
}

std::vector<double> model_residuals(const TimingModel& model,
                                    const std::vector<TimingMeasurement>& data) {
  std::vector<double> res;
  res.reserve(data.size());
  for (const auto& m : data) {
    const double pred =
        to_us(model.predict(m.antennas, m.modulation_order, m.subcarrier_load,
                            m.iterations));
    res.push_back(m.time_us - pred);
  }
  return res;
}

}  // namespace rtopex::model
