#include "model/timing_model.hpp"

#include <stdexcept>

namespace rtopex::model {

Duration TimingModel::predict(unsigned antennas, unsigned modulation_order,
                              double subcarrier_load, double iterations) const {
  const double us = w0_us + w1_us * antennas + w2_us * modulation_order +
                    w3_us * subcarrier_load * iterations;
  return microseconds_f(us);
}

Duration TimingModel::wcet(unsigned antennas, unsigned modulation_order,
                           double subcarrier_load,
                           unsigned max_iterations) const {
  return predict(antennas, modulation_order, subcarrier_load,
                 static_cast<double>(max_iterations));
}

TimingModel paper_gpp_model() { return TimingModel{}; }

TimingModel fit_timing_model(const std::vector<TimingMeasurement>& data) {
  if (data.size() < 4)
    throw std::invalid_argument("fit_timing_model: need >= 4 observations");
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(data.size());
  y.reserve(data.size());
  for (const auto& m : data) {
    rows.push_back({1.0, static_cast<double>(m.antennas),
                    static_cast<double>(m.modulation_order),
                    m.subcarrier_load * m.iterations});
    y.push_back(m.time_us);
  }
  const OlsFit fit = ols_fit(rows, y);
  TimingModel model;
  model.w0_us = fit.coefficients[0];
  model.w1_us = fit.coefficients[1];
  model.w2_us = fit.coefficients[2];
  model.w3_us = fit.coefficients[3];
  model.r_squared = fit.r_squared;
  return model;
}

std::vector<double> model_residuals(const TimingModel& model,
                                    const std::vector<TimingMeasurement>& data) {
  std::vector<double> res;
  res.reserve(data.size());
  for (const auto& m : data) {
    const double pred =
        to_us(model.predict(m.antennas, m.modulation_order, m.subcarrier_load,
                            m.iterations));
    res.push_back(m.time_us - pred);
  }
  return res;
}

}  // namespace rtopex::model
