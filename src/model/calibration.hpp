// Calibration of the stochastic iteration model against measurements of a
// real decoder (this repo's PHY, or logged basestation data).
//
// Given samples of (mcs, snr, L, decoded), estimates:
//  * the per-MCS decoding threshold (SNR at 50 % failure, interpolated),
//    then threshold_base/threshold_slope by least squares, and
//  * the truncated-geometric continuation probability q as a function of
//    the SNR margin, then q_base/q_slope by least squares over the
//    per-(mcs, snr) cells.
#pragma once

#include <vector>

#include "model/iteration_model.hpp"

namespace rtopex::model {

struct IterationSample {
  unsigned mcs = 0;
  double snr_db = 0.0;
  unsigned iterations = 1;
  bool decoded = true;
};

/// Fits IterationModelParams from decoder observations. Keeps the defaults
/// for any component the data cannot identify (e.g. no failures observed ->
/// thresholds untouched). Requires at least two distinct (mcs, snr) cells.
IterationModelParams calibrate_iteration_model(
    const std::vector<IterationSample>& samples,
    const IterationModelParams& defaults = {});

}  // namespace rtopex::model
