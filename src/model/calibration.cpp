#include "model/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/stats.hpp"

namespace rtopex::model {
namespace {

struct Cell {
  std::size_t n = 0;
  std::size_t failures = 0;
  std::size_t continued = 0;  ///< samples with L >= 2 among successes
  std::size_t successes = 0;

  double failure_rate() const {
    return n ? static_cast<double>(failures) / static_cast<double>(n) : 0.0;
  }
};

}  // namespace

IterationModelParams calibrate_iteration_model(
    const std::vector<IterationSample>& samples,
    const IterationModelParams& defaults) {
  if (samples.empty())
    throw std::invalid_argument("calibrate_iteration_model: no samples");

  // Aggregate per (mcs, snr) cell.
  std::map<std::pair<unsigned, double>, Cell> cells;
  for (const auto& s : samples) {
    Cell& c = cells[{s.mcs, s.snr_db}];
    ++c.n;
    if (!s.decoded) {
      ++c.failures;
    } else {
      ++c.successes;
      if (s.iterations >= 2) ++c.continued;
    }
  }
  if (cells.size() < 2)
    throw std::invalid_argument(
        "calibrate_iteration_model: need >= 2 (mcs, snr) cells");

  IterationModelParams params = defaults;

  // --- Thresholds: per MCS, the SNR where the failure rate crosses 0.5,
  // linearly interpolated between the bracketing cells.
  std::vector<std::vector<double>> threshold_rows;
  std::vector<double> threshold_y;
  std::map<unsigned, std::vector<std::pair<double, double>>> per_mcs;
  for (const auto& [key, cell] : cells)
    per_mcs[key.first].push_back({key.second, cell.failure_rate()});
  for (auto& [mcs, curve] : per_mcs) {
    std::sort(curve.begin(), curve.end());
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
      const auto [snr_hi_fail, rate_hi] = curve[i];
      const auto [snr_lo_fail, rate_lo] = curve[i + 1];
      if (rate_hi >= 0.5 && rate_lo < 0.5) {
        const double frac = (rate_hi - 0.5) / (rate_hi - rate_lo + 1e-12);
        const double threshold =
            snr_hi_fail + frac * (snr_lo_fail - snr_hi_fail);
        threshold_rows.push_back({1.0, static_cast<double>(mcs)});
        threshold_y.push_back(threshold);
        break;
      }
    }
  }
  if (threshold_rows.size() >= 2) {
    const OlsFit fit = ols_fit(threshold_rows, threshold_y);
    params.threshold_base_db = fit.coefficients[0];
    params.threshold_slope_db = fit.coefficients[1];
  }

  // --- Continuation probability: P(L >= 2 | success) in each cell is an
  // unbiased estimate of q at that cell's margin; fit q = q_base -
  // q_slope * margin over cells with enough successes.
  std::vector<std::vector<double>> q_rows;
  std::vector<double> q_y;
  for (const auto& [key, cell] : cells) {
    if (cell.successes < 10) continue;
    const double margin =
        key.second -
        (params.threshold_base_db + params.threshold_slope_db * key.first);
    if (margin <= 0.0) continue;  // near/below threshold q saturates
    const double q_hat = static_cast<double>(cell.continued) /
                         static_cast<double>(cell.successes);
    // Exclude cells in the clamp plateaus — only the linear region of
    // q(margin) identifies (q_base, q_slope).
    if (q_hat < 0.08 || q_hat > 0.9) continue;
    q_rows.push_back({1.0, margin});
    q_y.push_back(q_hat);
  }
  if (q_rows.size() >= 2) {
    const OlsFit fit = ols_fit(q_rows, q_y);
    params.q_base = std::clamp(fit.coefficients[0], 0.05, 0.95);
    params.q_slope = std::max(0.0, -fit.coefficients[1]);
  }
  return params;
}

}  // namespace rtopex::model
