// Online adaptive estimators closing the loop from executed stage times
// back into the Eq. (1) cost model (ROADMAP item 5): a recursive
// least-squares fit over Eq. (1)'s regressors streamed one observation at
// a time, per-basestation EWMA predictors of the executed turbo-iteration
// count, and NaN-proof EWMA duration trackers for adaptive migration-chunk
// sizing. Everything here is substrate-agnostic: the virtual-time sim
// feeds it exact stage costs, the real-thread runtime feeds it wall-clock
// measurements, and both fall back to the static seeded estimates until
// the fit has warmed up — a disabled/empty estimator never changes a
// decision.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/time_types.hpp"
#include "model/timing_model.hpp"

namespace rtopex::model {

/// Tuning knobs shared by every online estimator. The defaults favour
/// stability over reaction speed: forgetting keeps roughly the last
/// 1/(1-lambda) ~ 200 subframes alive, and predictions only replace the
/// static seeds after `warmup_samples` observations.
struct AdaptiveParams {
  double rls_lambda = 0.995;  ///< RLS forgetting factor in (0, 1].
  double rls_delta = 1e3;     ///< initial covariance scale (P = delta*I).
  /// Observations before predict_or() trusts the fit over the fallback.
  unsigned warmup_samples = 32;
  double iteration_alpha = 0.25;  ///< EWMA gain for the iteration predictor.
  /// Extra turbo iterations of safety margin added to the EWMA mean before
  /// rounding up (guards against admission on an under-estimate).
  double iteration_headroom = 0.5;
  double duration_alpha = 0.25;  ///< EWMA gain for duration trackers.
};

/// Recursive least squares over Eq. (1)'s four regressors
/// x = [1, N, K, D*L] with exponential forgetting:
///
///   k      = P x / (lambda + x' P x)
///   theta += k (y - x' theta)
///   P      = (P - k x' P) / lambda
///
/// Numerically guarded: an observation whose gain denominator degenerates
/// (or that would push any coefficient to a non-finite value) is dropped
/// rather than poisoning the state.
class RlsEstimator {
 public:
  static constexpr std::size_t kDim = 4;

  explicit RlsEstimator(double lambda = 0.995, double delta = 1e3);

  /// Folds one (regressors, response) pair into the fit. Non-finite inputs
  /// are ignored.
  void observe(const std::array<double, kDim>& x, double y);

  /// theta' x — the raw linear prediction (no guards; see Eq1OnlineFit for
  /// the guarded entry point).
  double predict(const std::array<double, kDim>& x) const;

  std::size_t samples() const { return samples_; }
  const std::array<double, kDim>& coefficients() const { return theta_; }

 private:
  double lambda_;
  std::array<double, kDim> theta_{};
  std::array<std::array<double, kDim>, kDim> p_{};
  std::size_t samples_ = 0;
};

/// Streaming Eq. (1) fit: learns processing time (of whatever stage the
/// caller feeds it — the sim uses the decode stage, bench/tab01 the whole
/// chain) as a linear function of [1, N, K, D*L]. Predictions are guarded:
/// until warmup, or whenever the fitted value is non-finite or
/// non-positive, the caller's fallback wins — so an adversarial stream
/// (zero-iteration jobs, fault-truncated stages) can never produce a
/// non-positive or NaN estimate.
class Eq1OnlineFit {
 public:
  explicit Eq1OnlineFit(const AdaptiveParams& params = {});

  /// One executed observation. Non-positive durations (a stage that never
  /// ran, e.g. fault-truncated) are ignored.
  void observe(unsigned antennas, unsigned modulation_order,
               double subcarrier_load, double iterations, Duration time);

  /// Fitted estimate at the given operating point, or `fallback` until the
  /// fit is warmed up / whenever the fit is degenerate. Never returns a
  /// value below 1 ns.
  Duration predict_or(unsigned antennas, unsigned modulation_order,
                      double subcarrier_load, double iterations,
                      Duration fallback) const;

  bool warmed_up() const { return rls_.samples() >= params_.warmup_samples; }
  std::size_t samples() const { return rls_.samples(); }
  /// Current coefficients in Eq. (1)'s units (us): {w0, w1, w2, w3}.
  std::array<double, RlsEstimator::kDim> coefficients_us() const {
    return rls_.coefficients();
  }

 private:
  AdaptiveParams params_;
  RlsEstimator rls_;
};

/// Per-basestation EWMA over executed turbo-iteration counts. predict()
/// adds the configured headroom, rounds up, and clamps into [1, Lm] — it
/// can never exceed the PR-2 iteration cap or drop below one iteration.
class IterationPredictor {
 public:
  IterationPredictor(double initial, unsigned max_iterations,
                     const AdaptiveParams& params = {});

  /// One executed iteration count; zero (decode never ran) is ignored.
  void observe(unsigned executed);

  unsigned predict() const;
  double mean() const { return mean_; }
  std::size_t samples() const { return samples_; }

 private:
  double mean_;
  unsigned lm_;
  AdaptiveParams params_;
  std::size_t samples_ = 0;
};

/// NaN-proof EWMA over a nanosecond duration. Non-positive samples are
/// ignored and value_or() never returns below 1 ns, so a consumer sizing
/// migration chunks can divide by it safely.
class DurationEwma {
 public:
  explicit DurationEwma(double alpha = 0.25) : alpha_(alpha) {}

  void observe(Duration sample);
  /// EWMA value once at least one sample landed, else `fallback`; >= 1 ns.
  Duration value_or(Duration fallback) const;
  std::size_t samples() const { return samples_; }

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t samples_ = 0;
};

/// EWMA tracker of a scalar signal's mean *and* variance, the z-score
/// backbone of the health-layer anomaly detectors (obs/health): variance is
/// an EWMA of squared deviations from the running mean, so both moments
/// forget at the same rate and a level shift shows up as a large |z| until
/// the tracker re-converges. NaN-proof like DurationEwma: non-finite
/// samples are ignored, and zscore() returns 0 until the tracker has both
/// warmed up (>= warmup samples) and observed genuine spread — a constant
/// signal never divides by a zero sigma.
class MeanVarEwma {
 public:
  explicit MeanVarEwma(double alpha = 0.25, std::size_t warmup = 8)
      : alpha_(alpha), warmup_(warmup) {}

  void observe(double sample);

  double mean() const { return mean_; }
  /// sqrt of the deviation EWMA; 0 until two samples landed.
  double stddev() const;
  /// (x - mean) / stddev, or 0 while warming up / on degenerate spread.
  double zscore(double x) const;
  bool warmed_up() const { return samples_ >= warmup_; }
  std::size_t samples() const { return samples_; }

 private:
  double alpha_;
  std::size_t warmup_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t samples_ = 0;
};

/// Bundle wired into the schedulers when adaptive estimation is enabled:
/// the decode-stage Eq. (1) fit, one iteration predictor per basestation,
/// and the per-subtask duration trackers replacing Algorithm 1's fixed
/// chunk constants. All observe/predict helpers resolve the Eq. (1)
/// regressors from (mcs, bs) via the PHY tables, so scheduler call sites
/// stay one-liners.
class OnlineEstimators {
 public:
  OnlineEstimators(unsigned num_antennas, unsigned num_prb,
                   unsigned num_basestations, unsigned max_iterations,
                   const AdaptiveParams& params = {});

  // Prediction side (consulted before execution) -------------------------
  /// Predicted turbo iterations for `bs` (headroom included, in [1, Lm]).
  unsigned predict_iterations(unsigned bs) const;
  /// Decode-stage estimate at the predicted iteration count for `bs`, or
  /// `fallback` until the fit warms up.
  Duration predict_decode(unsigned bs, unsigned mcs, Duration fallback) const;
  /// Learned per-code-block decode time (adaptive migration chunk size).
  Duration decode_subtask_or(Duration fallback) const {
    return decode_subtask_.value_or(fallback);
  }
  /// Learned per-FFT-subtask time.
  Duration fft_subtask_or(Duration fallback) const {
    return fft_subtask_.value_or(fallback);
  }

  // Observation side (fed after execution) -------------------------------
  /// Executed decode stage: total stage time, per-code-block time, and the
  /// iteration count the turbo loop actually ran.
  void observe_decode(unsigned bs, unsigned mcs, unsigned executed_iterations,
                      Duration decode_ns, Duration decode_subtask_ns);
  void observe_fft(Duration fft_subtask_ns);

  const Eq1OnlineFit& decode_fit() const { return fit_; }
  std::size_t decode_samples() const { return fit_.samples(); }

 private:
  unsigned antennas_;
  unsigned num_prb_;
  unsigned lm_;
  AdaptiveParams params_;
  Eq1OnlineFit fit_;
  std::vector<IterationPredictor> per_bs_;
  DurationEwma decode_subtask_;
  DurationEwma fft_subtask_;
};

}  // namespace rtopex::model
