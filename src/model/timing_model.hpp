// The paper's Eq. (1) processing-time model and its fit (Table 1):
//
//   T_rxproc = w0 + w1*N + w2*K + w3*D*L + E
//
// N antennas, K modulation order, D subcarrier load (bits/RE), L turbo
// iterations, E platform error. Constants are platform-specific; the paper's
// GPP estimates (w0=31.4, w1=169.1, w2=49.7, w3=93.0 us, r^2=0.992) are
// provided as a preset so the simulator reproduces paper-scale numbers, and
// fit_timing_model() re-estimates them from measurements of this repo's own
// PHY chain (bench/tab01_model_fit).
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "common/time_types.hpp"

namespace rtopex::model {

struct TimingModel {
  double w0_us = 31.4;   ///< constant overhead.
  double w1_us = 169.1;  ///< per antenna.
  double w2_us = 49.7;   ///< per modulation-order unit.
  double w3_us = 93.0;   ///< per (bit/RE * iteration).
  double r_squared = 0.992;

  /// Predicted processing time (no platform error term).
  Duration predict(unsigned antennas, unsigned modulation_order,
                   double subcarrier_load, double iterations) const;

  /// WCET bound: L substituted by Lm (paper §2.1).
  Duration wcet(unsigned antennas, unsigned modulation_order,
                double subcarrier_load, unsigned max_iterations) const;
};

/// The paper's Table 1 GPP estimates.
TimingModel paper_gpp_model();

/// One observation for the regression.
struct TimingMeasurement {
  unsigned antennas = 0;
  unsigned modulation_order = 0;
  double subcarrier_load = 0.0;
  double iterations = 0.0;
  double time_us = 0.0;
};

/// Ordinary least squares over Eq. (1)'s regressors. Requires >= 4
/// observations with non-degenerate variation.
TimingModel fit_timing_model(const std::vector<TimingMeasurement>& data);

/// Residuals of a model against measurements (us), for Fig. 3(d)-style
/// error-distribution analysis.
std::vector<double> model_residuals(const TimingModel& model,
                                    const std::vector<TimingMeasurement>& data);

/// Eq. (1) in the cycles domain: the same regressors (N, K, D*L) with the
/// response in kilocycles instead of microseconds, fitted from the
/// profiler's hardware-counter spans (obs/profile). A separate struct —
/// not TimingModel with re-purposed fields — so the two domains cannot be
/// confused; c3 directly reads as kilocycles per (code block x iteration).
struct CyclesModel {
  double c0_kc = 0.0;  ///< constant overhead (kilocycles).
  double c1_kc = 0.0;  ///< per antenna.
  double c2_kc = 0.0;  ///< per modulation-order unit.
  double c3_kc = 0.0;  ///< per (subcarrier-load unit x iteration).
  double r_squared = 0.0;

  double predict_kcycles(unsigned antennas, unsigned modulation_order,
                         double subcarrier_load, double iterations) const;
};

/// OLS over Eq. (1)'s regressors with `time_us` carrying kilocycles.
/// Needs >= 4 observations, but unlike fit_timing_model it tolerates
/// predictors held constant across the sample (an in-process profile runs
/// one antenna configuration): a constant column is collinear with the
/// intercept, so it is dropped from the regression — absorbed by c0 — and
/// its coefficient reported as 0. Throws only when every predictor is
/// constant (nothing to regress on).
CyclesModel fit_cycles_model(const std::vector<TimingMeasurement>& data);

}  // namespace rtopex::model
