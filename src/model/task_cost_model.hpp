// Decomposition of the Eq. (1) total processing time into the three-stage
// task structure (FFT -> demod -> decode) and their subtasks, used by the
// virtual-time node simulator.
//
// Calibration anchors from the paper (all at N = 2, MCS 27):
//  * Fig. 4(a)/Fig. 18: the FFT task is fully parallelizable (two cores
//    halve it, <= 6 us residual) and takes ~108 us — so the FFT share of
//    the w1*N antenna term is ~0.32.
//  * Total at L = 2 is ~1356 us (Eq. 1 with Table 1), and Fig. 4(b) puts
//    the decode task at ~980 us then, leaving ~270 us for demod. Hence the
//    demod stage carries ~0.48 of w1*N (equalization + copies) and only a
//    quarter of w2*K (the demapper); the rest of w2*K is the rate
//    dematcher, which lives in the decode stage.
//  * Fig. 4(b): two cores take decode 980 -> 670 us, i.e. a ~310 us serial
//    decode residue (dematcher + descrambler, L-independent) with the
//    turbo iterations (w3*D*L) fully parallel across code blocks.
//  * Eq. (1): stage totals always sum to w0 + w1*N + w2*K + w3*D*L + E.
#pragma once

#include "common/time_types.hpp"
#include "model/timing_model.hpp"
#include "phy/lte_params.hpp"

namespace rtopex::model {

struct TaskCostParams {
  /// Share of the antenna term (w1*N) spent in the FFT task.
  double fft_share = 0.32;
  /// Share of w1*N spent in demod (equalization, symbol copies); whatever
  /// remains after fft_share + demod_antenna_share is decode-entry work
  /// (buffer gathering), part of the serial decode residue.
  double demod_antenna_share = 0.48;
  /// Share of the modulation-order term (w2*K) spent in the demapper
  /// (demod stage); the rest is the rate dematcher (decode stage, serial).
  double demapper_share = 0.25;
  /// Split of the fixed overhead w0 across (fft, demod, decode); the decode
  /// share is the remainder.
  double w0_fft_share = 0.15;
  double w0_demod_share = 0.25;
};

/// Per-subframe stage costs in virtual time.
struct SubframeCosts {
  Duration fft = 0;
  Duration demod = 0;
  Duration decode = 0;  ///< includes the platform-error sample.

  unsigned fft_subtasks = 0;     ///< 14 * N.
  unsigned decode_subtasks = 0;  ///< code blocks C.
  Duration fft_subtask = 0;      ///< per-subtask time (fft fully parallel).
  Duration decode_subtask = 0;   ///< per-code-block decode time.

  Duration total() const { return fft + demod + decode; }
  /// Serial residue of the decode stage (dematch, descramble, jitter).
  Duration decode_serial() const {
    return decode - static_cast<Duration>(decode_subtasks) * decode_subtask;
  }
};

class TaskCostModel {
 public:
  TaskCostModel(const TimingModel& timing, unsigned num_antennas,
                unsigned num_prb, const TaskCostParams& params = {});

  /// Costs for one subframe at the given MCS with the sampled iteration
  /// count and platform-error (jitter) draw.
  SubframeCosts costs(unsigned mcs, unsigned iterations,
                      Duration platform_error) const;

  unsigned num_antennas() const { return antennas_; }
  const TimingModel& timing() const { return timing_; }

 private:
  TimingModel timing_;
  unsigned antennas_;
  unsigned num_prb_;
  TaskCostParams params_;
};

}  // namespace rtopex::model
