#include "model/task_cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtopex::model {

TaskCostModel::TaskCostModel(const TimingModel& timing, unsigned num_antennas,
                             unsigned num_prb, const TaskCostParams& params)
    : timing_(timing),
      antennas_(num_antennas),
      num_prb_(num_prb),
      params_(params) {
  if (num_antennas == 0 || num_prb == 0)
    throw std::invalid_argument("TaskCostModel: antennas/prb must be > 0");
  if (params_.fft_share < 0.0 ||
      params_.fft_share + params_.demod_antenna_share > 1.0 ||
      params_.demapper_share < 0.0 || params_.demapper_share > 1.0 ||
      params_.w0_fft_share + params_.w0_demod_share > 1.0)
    throw std::invalid_argument("TaskCostModel: bad decomposition params");
}

SubframeCosts TaskCostModel::costs(unsigned mcs, unsigned iterations,
                                   Duration platform_error) const {
  const unsigned k = phy::modulation_order(mcs);
  const double d = phy::subcarrier_load(mcs, num_prb_);
  // Eq. (1)'s constants were fit at the paper's 10 MHz / 50 PRB
  // configuration; the variable-cost terms scale with the amount of data
  // (samples, REs, bits), i.e. linearly in the PRB count. This keeps the
  // 50-PRB case bit-identical and makes narrowband cells proportionally
  // cheaper (heterogeneous deployments, paper §5 D).
  const double bw_scale = static_cast<double>(num_prb_) / 50.0;
  const double w0 = timing_.w0_us;
  const double antenna_term = timing_.w1_us * antennas_ * bw_scale;
  const double demap_term = timing_.w2_us * k * bw_scale;
  const double decode_term = timing_.w3_us * d * iterations * bw_scale;

  SubframeCosts c;
  c.fft = microseconds_f(params_.w0_fft_share * w0 +
                         params_.fft_share * antenna_term);
  c.demod = microseconds_f(params_.w0_demod_share * w0 +
                           params_.demod_antenna_share * antenna_term +
                           params_.demapper_share * demap_term);
  const double w0_decode =
      (1.0 - params_.w0_fft_share - params_.w0_demod_share) * w0;
  const double decode_entry =
      (1.0 - params_.fft_share - params_.demod_antenna_share) * antenna_term;
  const double dematch = (1.0 - params_.demapper_share) * demap_term;
  c.decode = microseconds_f(w0_decode + decode_entry + dematch + decode_term) +
             platform_error;

  c.fft_subtasks = phy::kSymbolsPerSubframe * antennas_;
  c.fft_subtask = c.fft / c.fft_subtasks;
  c.decode_subtasks = phy::num_code_blocks(mcs, num_prb_);
  // The turbo iterations (w3*D*L) parallelize per code block; the entry,
  // dematch and descramble work is the L-independent serial residue.
  const Duration parallel_decode = microseconds_f(decode_term);
  c.decode_subtask = parallel_decode / c.decode_subtasks;
  // Guard: rounding must never make the serial residue negative.
  if (c.decode_serial() < 0) c.decode_subtask = c.decode / c.decode_subtasks;
  return c;
}

}  // namespace rtopex::model
