#include "model/platform_error.hpp"

#include <cmath>

namespace rtopex::model {

Duration PlatformErrorModel::sample(Rng& rng) const {
  double us = std::abs(rng.normal(0.0, params_.sigma_body_us));
  if (rng.bernoulli(params_.spike_prob))
    us += rng.uniform(params_.spike_lo_us, params_.spike_hi_us);
  return microseconds_f(us);
}

}  // namespace rtopex::model
