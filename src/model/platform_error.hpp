// Platform (execution environment) jitter — the E term of Eq. (1).
//
// The paper validates (Fig. 3(d), cyclictest vs hackbench stress) that E is
// dominated by soft-real-time OS disturbances: 99.9% of observations below
// 0.15 ms, rare spikes up to 0.7 ms, order statistics ~1 in 1e5 above a few
// hundred microseconds. We model E as a non-negative mixture:
//   body:  |N(0, sigma_body)|          (scheduler noise, cache effects)
//   spike: Uniform(spike_lo, spike_hi) with probability spike_prob
//          (interrupt storms, kernel housekeeping)
#pragma once

#include "common/rng.hpp"
#include "common/time_types.hpp"

namespace rtopex::model {

struct PlatformErrorParams {
  double sigma_body_us = 35.0;
  double spike_prob = 2e-5;    ///< ~1 in 5e4 subframes sees a big spike.
  double spike_lo_us = 250.0;
  double spike_hi_us = 700.0;
};

class PlatformErrorModel {
 public:
  explicit PlatformErrorModel(const PlatformErrorParams& params = {})
      : params_(params) {}

  /// One jitter sample, >= 0.
  Duration sample(Rng& rng) const;

  const PlatformErrorParams& params() const { return params_; }

 private:
  PlatformErrorParams params_;
};

}  // namespace rtopex::model
