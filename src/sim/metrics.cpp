#include "sim/metrics.hpp"

namespace rtopex::sim {

void fill_registry(const SchedulerMetrics& m, const std::string& scheduler,
                   obs::MetricsRegistry& registry) {
  const obs::MetricsRegistry::Labels base = {{"scheduler", scheduler}};
  auto counter = [&](const char* name, const char* help, std::size_t value) {
    registry.add_counter(name, help, static_cast<double>(value), base);
  };

  counter("rtopex_subframes_total", "Subframes offered to the scheduler",
          m.total_subframes);
  counter("rtopex_deadline_misses_total", "Subframes dropped or terminated",
          m.deadline_misses);
  counter("rtopex_dropped_total", "Subframes rejected by the slack check",
          m.dropped);
  counter("rtopex_terminated_total",
          "Subframes killed mid-execution at the deadline", m.terminated);
  counter("rtopex_decode_failures_total",
          "Subframes completed in time but NACKed", m.decode_failures);
  registry.add_gauge("rtopex_miss_rate", "deadline_misses / subframes",
                     m.miss_rate(), base);

  counter("rtopex_fft_subtasks_total", "FFT subtasks eligible for migration",
          m.fft_subtasks_total);
  counter("rtopex_fft_subtasks_migrated_total",
          "FFT subtasks placed on remote cores", m.fft_subtasks_migrated);
  counter("rtopex_decode_subtasks_total",
          "Decode subtasks eligible for migration", m.decode_subtasks_total);
  counter("rtopex_decode_subtasks_migrated_total",
          "Decode subtasks placed on remote cores", m.decode_subtasks_migrated);
  counter("rtopex_recoveries_total",
          "Migrated subtasks re-executed locally after preemption",
          m.recoveries);

  const ResilienceMetrics& r = m.resilience;
  counter("rtopex_failovers_total", "Cores declared dead by the watchdog",
          r.failovers);
  counter("rtopex_repartitions_total",
          "Partition-table rebuilds after core failures", r.repartitions);
  counter("rtopex_requeued_jobs_total", "Jobs moved off a dead core's queue",
          r.requeued_jobs);
  counter("rtopex_lost_subframes_total",
          "Fronthaul loss: subframes that never arrived", r.lost_subframes);
  counter("rtopex_late_arrivals_total",
          "Subframes that arrived after their deadline", r.late_arrivals);
  counter("rtopex_degraded_total", "Subframes processed below full quality",
          r.degraded);
  counter("rtopex_degraded_decode_failures_total",
          "Capped decodes that NACKed because of the cap",
          r.degraded_decode_failures);

  registry.add_histogram("rtopex_processing_time_us",
                         "Arrival-to-completion time of completed subframes",
                         m.processing_us_hist, base);
  registry.add_histogram("rtopex_gap_us",
                         "Idle gaps between consecutive executions on a core",
                         m.gap_us_hist, base);
  static const char* kStageNames[] = {"none", "fft", "demod", "decode"};
  for (unsigned s = 1; s < obs::kNumStages; ++s) {
    auto labels = base;
    labels.emplace_back("stage", kStageNames[s]);
    registry.add_histogram("rtopex_stage_us", "Per-stage execution time",
                           m.stage_us_hist[s], labels);
  }
  for (std::size_t bs = 0; bs < m.per_bs.size(); ++bs) {
    auto labels = base;
    labels.emplace_back("bs", std::to_string(bs));
    registry.add_counter("rtopex_bs_subframes_total",
                         "Subframes offered, per basestation",
                         static_cast<double>(m.per_bs[bs].subframes), labels);
    registry.add_counter("rtopex_bs_misses_total",
                         "Deadline misses, per basestation",
                         static_cast<double>(m.per_bs[bs].misses), labels);
    registry.add_histogram("rtopex_bs_processing_time_us",
                           "Processing time, per basestation",
                           m.per_bs[bs].processing_us, labels);
  }
}

}  // namespace rtopex::sim
