// Per-run metrics collected by the node schedulers: deadline misses, idle
// gaps, migration counts and processing-time samples — everything needed to
// regenerate the paper's Figs. 15–19.
#pragma once

#include <cstddef>
#include <vector>

#include "common/resilience.hpp"
#include "common/time_types.hpp"

namespace rtopex::sim {

struct BsCounters {
  std::size_t subframes = 0;
  std::size_t misses = 0;  ///< dropped or terminated at the deadline.
};

struct SchedulerMetrics {
  std::size_t total_subframes = 0;
  std::size_t deadline_misses = 0;   ///< dropped + terminated.
  std::size_t dropped = 0;           ///< rejected by the slack check.
  std::size_t terminated = 0;        ///< killed mid-execution at the deadline.
  std::size_t decode_failures = 0;   ///< completed in time but NACK (not a miss).
  std::vector<BsCounters> per_bs;

  /// Failure-handling counters (fronthaul faults, core failures, graceful
  /// degradation) — all zero unless the matching config knobs are enabled.
  ResilienceMetrics resilience;

  // Idle gaps between consecutive executions on a core (us).
  std::vector<double> gap_us;

  // Migration accounting (RT-OPEX only).
  std::size_t fft_subtasks_total = 0;
  std::size_t fft_subtasks_migrated = 0;
  std::size_t decode_subtasks_total = 0;
  std::size_t decode_subtasks_migrated = 0;
  std::size_t recoveries = 0;  ///< migrated subtasks re-executed locally.

  // Processing time (arrival -> completion, us) of subframes that finished.
  std::vector<double> processing_time_us;

  /// Per-subframe execution record, only populated when the scheduler's
  /// config sets record_timeline (used for Fig. 9/10/11-style renderings).
  struct TimelineEntry {
    unsigned bs = 0;
    std::uint32_t index = 0;
    unsigned core = 0;
    TimePoint start = 0;
    TimePoint end = 0;
    bool missed = false;
  };
  std::vector<TimelineEntry> timeline;

  double miss_rate() const {
    return total_subframes == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(total_subframes);
  }
  double fft_migration_fraction() const {
    return fft_subtasks_total == 0
               ? 0.0
               : static_cast<double>(fft_subtasks_migrated) /
                     static_cast<double>(fft_subtasks_total);
  }
  double decode_migration_fraction() const {
    return decode_subtasks_total == 0
               ? 0.0
               : static_cast<double>(decode_subtasks_migrated) /
                     static_cast<double>(decode_subtasks_total);
  }
};

}  // namespace rtopex::sim
