// Per-run metrics collected by the node schedulers: deadline misses, idle
// gaps, migration counts and processing-time distributions — everything
// needed to regenerate the paper's Figs. 15–19.
//
// Latency-like samples are recorded into bounded log-scale histograms by
// default (obs::Histogram, p50/p95/p99 within one bucket width); the raw
// unbounded sample vectors are only filled when the scheduler config sets
// record_samples (needed for exact CDFs, costly on long runs).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/resilience.hpp"
#include "common/time_types.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_event.hpp"

namespace rtopex::sim {

struct BsCounters {
  std::size_t subframes = 0;
  std::size_t misses = 0;  ///< dropped or terminated at the deadline.
  /// Per-basestation processing-time breakdown (completed subframes, us).
  obs::Histogram processing_us;
};

struct SchedulerMetrics {
  std::size_t total_subframes = 0;
  std::size_t deadline_misses = 0;   ///< dropped + terminated.
  std::size_t dropped = 0;           ///< rejected by the slack check.
  std::size_t terminated = 0;        ///< killed mid-execution at the deadline.
  std::size_t decode_failures = 0;   ///< completed in time but NACK (not a miss).
  std::vector<BsCounters> per_bs;

  /// Failure-handling counters (fronthaul faults, core failures, graceful
  /// degradation) — all zero unless the matching config knobs are enabled.
  ResilienceMetrics resilience;

  // Bounded histogram views — always recorded, memory independent of run
  // length. Stage histograms are indexed by obs::Stage (kNone unused).
  obs::Histogram processing_us_hist;
  obs::Histogram gap_us_hist;
  obs::Histogram stage_us_hist[obs::kNumStages];

  // Raw samples — only filled when the scheduler config sets record_samples.
  /// Idle gaps between consecutive executions on a core (us).
  std::vector<double> gap_us;
  /// Processing time (arrival -> completion, us) of subframes that finished.
  std::vector<double> processing_time_us;

  // Decode-estimate accuracy: sum of |admission estimate - executed decode
  // time| over decodes that ran to natural completion. `static` is what the
  // frozen seed (WCET or optimistic) predicted, `used` what the scheduler
  // actually admitted with — identical unless adaptive estimation is on
  // (the BENCH_whatif accuracy comparison).
  std::size_t decode_est_samples = 0;
  double decode_est_used_abs_err_us = 0.0;
  double decode_est_static_abs_err_us = 0.0;

  // Migration accounting (RT-OPEX only).
  std::size_t fft_subtasks_total = 0;
  std::size_t fft_subtasks_migrated = 0;
  std::size_t decode_subtasks_total = 0;
  std::size_t decode_subtasks_migrated = 0;
  std::size_t recoveries = 0;  ///< migrated subtasks re-executed locally.

  /// Per-subframe execution record, only populated when the scheduler's
  /// config sets record_timeline (used for Fig. 9/10/11-style renderings).
  struct TimelineEntry {
    unsigned bs = 0;
    std::uint32_t index = 0;
    unsigned core = 0;
    TimePoint start = 0;
    TimePoint end = 0;
    bool missed = false;
    /// Stage the miss happened at (kNone when the subframe completed).
    obs::Stage missed_stage = obs::Stage::kNone;
    /// First remote core that hosted a migrated chunk of this subframe
    /// (-1 when nothing migrated).
    int host_core = -1;
  };
  std::vector<TimelineEntry> timeline;

  void record_processing(unsigned bs, double us, bool keep_samples) {
    processing_us_hist.add(us);
    if (bs < per_bs.size()) per_bs[bs].processing_us.add(us);
    if (keep_samples) processing_time_us.push_back(us);
  }
  void record_gap(double us, bool keep_samples) {
    gap_us_hist.add(us);
    if (keep_samples) gap_us.push_back(us);
  }
  void record_stage(obs::Stage stage, double us) {
    stage_us_hist[static_cast<unsigned>(stage)].add(us);
  }
  void record_decode_estimate(double used_us, double static_us,
                              double actual_us) {
    ++decode_est_samples;
    decode_est_used_abs_err_us += std::abs(used_us - actual_us);
    decode_est_static_abs_err_us += std::abs(static_us - actual_us);
  }

  double mean_est_err_used_us() const {
    return decode_est_samples == 0 ? 0.0
                                   : decode_est_used_abs_err_us /
                                         static_cast<double>(decode_est_samples);
  }
  double mean_est_err_static_us() const {
    return decode_est_samples == 0
               ? 0.0
               : decode_est_static_abs_err_us /
                     static_cast<double>(decode_est_samples);
  }

  double miss_rate() const {
    return total_subframes == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(total_subframes);
  }
  double fft_migration_fraction() const {
    return fft_subtasks_total == 0
               ? 0.0
               : static_cast<double>(fft_subtasks_migrated) /
                     static_cast<double>(fft_subtasks_total);
  }
  double decode_migration_fraction() const {
    return decode_subtasks_total == 0
               ? 0.0
               : static_cast<double>(decode_subtasks_migrated) /
                     static_cast<double>(decode_subtasks_total);
  }
};

/// Snapshots every counter and histogram of `m` into the registry in
/// Prometheus form; all series carry a scheduler="<name>" label.
void fill_registry(const SchedulerMetrics& m, const std::string& scheduler,
                   obs::MetricsRegistry& registry);

}  // namespace rtopex::sim
