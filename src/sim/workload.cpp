#include "sim/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtopex::sim {

WorkloadGenerator::WorkloadGenerator(
    const WorkloadConfig& config, const transport::TransportModel& transport,
    const model::TimingModel& timing,
    const model::IterationModelParams& iteration_params,
    const model::PlatformErrorParams& error_params)
    : config_(config),
      transport_(transport),
      timing_(timing),
      iteration_model_(iteration_params),
      error_model_(error_params) {
  if (config.num_basestations == 0 || config.subframes_per_bs == 0)
    throw std::invalid_argument("WorkloadGenerator: empty workload");
  if (config.fixed_mcs > static_cast<int>(phy::kMaxMcs))
    throw std::invalid_argument("WorkloadGenerator: fixed_mcs > 27");
  // Validate the fault params up front (throws std::invalid_argument).
  transport::FronthaulFaultModel(config.fronthaul_faults);
}

std::vector<SubframeWork> WorkloadGenerator::generate() const {
  Rng master(config_.seed);
  const auto params =
      trace::metropolitan_preset_cycled(config_.num_basestations);

  std::vector<trace::LoadTrace> file_traces;
  if (!config_.trace_csv.empty() && config_.fixed_mcs < 0) {
    file_traces = trace::read_traces_csv(config_.trace_csv);
    if (file_traces.size() < config_.num_basestations)
      throw std::invalid_argument(
          "WorkloadGenerator: trace file has fewer basestations than "
          "configured");
  }

  std::vector<SubframeWork> out;
  out.reserve(config_.num_basestations * config_.subframes_per_bs);

  for (unsigned bs = 0; bs < config_.num_basestations; ++bs) {
    const phy::Bandwidth bw = bs < config_.per_bs_bandwidth.size()
                                  ? config_.per_bs_bandwidth[bs]
                                  : config_.bandwidth;
    const model::TaskCostModel cost_model(
        timing_, config_.num_antennas, phy::bandwidth_config(bw).num_prb);
    Rng rng = master.split();
    // Independent fault stream: the cost/iteration samples of a faulty run
    // match its clean twin exactly.
    const transport::FronthaulFaultModel fault_model(
        config_.fronthaul_faults);
    const bool faults = config_.fronthaul_faults.enabled();
    Rng fault_rng(config_.seed ^ (0x9e3779b97f4a7c15ULL + bs));
    trace::LoadTrace trace;
    if (config_.fixed_mcs < 0) {
      if (!file_traces.empty()) {
        trace = file_traces[bs];
      } else {
        trace::BasestationLoadParams p = params[bs];
        if (config_.mean_load_override > 0.0)
          p.mean = config_.mean_load_override;
        trace = trace::generate_load_trace(p, config_.subframes_per_bs,
                                           rng.next());
      }
    }
    for (std::size_t j = 0; j < config_.subframes_per_bs; ++j) {
      SubframeWork w;
      w.bs = bs;
      w.index = static_cast<std::uint32_t>(j);
      w.radio_time = static_cast<TimePoint>(j) * kSubframePeriod;
      const Duration extra = bs < config_.per_bs_extra_delay.size()
                                 ? config_.per_bs_extra_delay[bs]
                                 : 0;
      w.arrival = w.radio_time + transport_.sample_delay(rng) + extra;
      w.deadline = w.radio_time + kEndToEndBudget;
      w.mcs = config_.fixed_mcs >= 0
                  ? static_cast<unsigned>(config_.fixed_mcs)
                  : trace::mcs_from_load(trace.load(j));
      const auto outcome = iteration_model_.sample(
          w.mcs, config_.snr_db, config_.max_iterations, rng);
      w.iterations = outcome.iterations;
      w.lm = config_.max_iterations;
      w.decodable = outcome.decoded;
      if (faults) {
        const transport::FronthaulFault f = fault_model.sample(fault_rng);
        if (f.lost)
          w.lost = true;
        else
          w.arrival += f.extra_delay;
      }
      w.costs =
          cost_model.costs(w.mcs, w.iterations, error_model_.sample(rng));
      w.wcet = cost_model.costs(w.mcs, config_.max_iterations, 0);
      w.decode_optimistic = cost_model.costs(w.mcs, 1, 0).decode;
      out.push_back(w);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SubframeWork& a, const SubframeWork& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.bs < b.bs;
                   });
  return out;
}

}  // namespace rtopex::sim
