// Virtual-time workload generation: turns load traces + channel conditions
// into per-subframe processing jobs with sampled costs, arrivals and
// deadlines — the input consumed by every node scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "model/iteration_model.hpp"
#include "model/platform_error.hpp"
#include "model/task_cost_model.hpp"
#include "trace/load_trace.hpp"
#include "transport/transport.hpp"

namespace rtopex::sim {

/// One subframe's processing job as seen by the compute node.
struct SubframeWork {
  unsigned bs = 0;              ///< basestation index.
  std::uint32_t index = 0;      ///< subframe index within the basestation.
  TimePoint radio_time = 0;     ///< reception at the radio (j * 1 ms).
  TimePoint arrival = 0;        ///< arrival at the node (radio + transport).
  TimePoint deadline = 0;       ///< radio_time + 2 ms (paper Eq. 2).
  unsigned mcs = 0;
  unsigned iterations = 0;      ///< sampled turbo iterations L.
  unsigned lm = 4;              ///< configured iteration cap Lm.
  bool decodable = true;        ///< CRC outcome if fully processed.
  /// Fronthaul loss: the subframe never reaches the node. It stays in the
  /// workload (schedulers must classify it) but is never executed; a lost
  /// subframe's reserved slot is free for migration.
  bool lost = false;
  model::SubframeCosts costs;   ///< actual stage/subtask durations.
  /// Model-predicted worst-case costs (L = Lm, no jitter): what a scheduler
  /// can know at admission time (the paper's WCET, §2.1/§3.1.1).
  model::SubframeCosts wcet;
  /// Best-case decode time (L = 1, no jitter) — the optimistic admission
  /// ablation.
  Duration decode_optimistic = 0;
};

struct WorkloadConfig {
  unsigned num_basestations = 4;
  std::size_t subframes_per_bs = 30000;
  unsigned num_antennas = 2;
  phy::Bandwidth bandwidth = phy::Bandwidth::kMHz10;
  /// Optional per-basestation bandwidth override (heterogeneous standards,
  /// paper §5 D — e.g. narrowband cellular-IoT cells beside macro cells).
  /// Indexed by basestation; missing entries use `bandwidth`.
  std::vector<phy::Bandwidth> per_bs_bandwidth;
  unsigned max_iterations = 4;  ///< turbo Lm.
  double snr_db = 30.0;         ///< fixed AWGN SNR (paper §4.2).
  /// MCS source: < 0 -> trace-driven (metropolitan preset); >= 0 -> fixed
  /// MCS for every subframe.
  int fixed_mcs = -1;
  /// When > 0 (and fixed_mcs < 0), every basestation's trace is generated
  /// around this mean load instead of the preset's per-BS operating points —
  /// the Fig. 17 offered-load sweep.
  double mean_load_override = -1.0;
  /// Optional per-basestation extra one-way transport delay (e.g. different
  /// fronthaul distances in a heterogeneous deployment, paper §5 D). Indexed
  /// by basestation; missing entries mean zero. Deadlines are unaffected
  /// (still radio_time + 2 ms), so distant basestations have less slack —
  /// the case where the global scheduler's EDF and FIFO orders diverge.
  std::vector<Duration> per_bs_extra_delay;
  /// Optional measured load traces (one per basestation, as written by
  /// trace::write_traces_csv); when set they replace the synthetic traces
  /// (cycled if shorter than subframes_per_bs). Takes precedence over
  /// mean_load_override; ignored when fixed_mcs >= 0.
  std::string trace_csv;
  std::uint64_t seed = 1;
  /// Fronthaul loss / late-delivery process. Sampled from an RNG stream
  /// independent of the cost/iteration streams, so enabling faults does not
  /// perturb the rest of the workload (a faulty run differs from its clean
  /// twin only in `lost` flags and late arrivals).
  transport::FronthaulFaultParams fronthaul_faults;
};

/// Generates the full multi-basestation workload, sorted by arrival time.
/// Basestations' subframes are phase-aligned (all arrive each 1 ms), as in
/// the paper's testbed where radios are frame-synchronized.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& config,
                    const transport::TransportModel& transport,
                    const model::TimingModel& timing,
                    const model::IterationModelParams& iteration_params = {},
                    const model::PlatformErrorParams& error_params = {});

  std::vector<SubframeWork> generate() const;

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  const transport::TransportModel& transport_;
  model::TimingModel timing_;
  model::IterationModel iteration_model_;
  model::PlatformErrorModel error_model_;
};

}  // namespace rtopex::sim
