#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace rtopex {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformIntUnbiasedAcrossRange) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_int(10)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(29);
  const auto x0 = rng.next();
  rng.next();
  rng.reseed(29);
  EXPECT_EQ(rng.next(), x0);
}

}  // namespace
}  // namespace rtopex
