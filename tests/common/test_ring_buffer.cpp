#include <gtest/gtest.h>

#include <thread>

#include "common/ring_buffer.hpp"

namespace rtopex {
namespace {

TEST(SpscRingBufferTest, PushPopOrder) {
  SpscRingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 0; i < 4; ++i) {
    const auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingBufferTest, FullRejectsPush) {
  SpscRingBuffer<int> ring(2);
  std::size_t pushed = 0;
  while (ring.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_GE(pushed, 2u);
  EXPECT_FALSE(ring.try_push(99));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(99));
}

TEST(SpscRingBufferTest, ConcurrentProducerConsumer) {
  SpscRingBuffer<int> ring(64);
  constexpr int kCount = 100000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (ring.try_push(i)) ++i;
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < kCount) {
    if (const auto v = ring.try_pop()) {
      EXPECT_EQ(*v, received);
      sum += *v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(MpmcRingBufferTest, EvictsOldestWhenFull) {
  MpmcRingBuffer<int> ring(3);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_FALSE(ring.push(4));  // evicts 1
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(*ring.try_pop(), 2);
  EXPECT_EQ(*ring.try_pop(), 3);
  EXPECT_EQ(*ring.try_pop(), 4);
}

TEST(MpmcRingBufferTest, BlockingPopWakesOnPush) {
  MpmcRingBuffer<int> ring(8);
  std::thread consumer([&] {
    const auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.push(42);
  consumer.join();
}

TEST(MpmcRingBufferTest, CloseReleasesBlockedPop) {
  MpmcRingBuffer<int> ring(8);
  std::thread consumer([&] {
    const auto v = ring.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.close();
  consumer.join();
}

}  // namespace
}  // namespace rtopex
