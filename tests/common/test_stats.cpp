#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rtopex {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  Rng rng(5);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(EmpiricalCdfTest, EvaluationAndInverse) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);   // clamps into bin 0
  h.add(100.0);  // clamps into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 2.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(OlsFitTest, RecoversExactCoefficients) {
  // y = 2 + 3a - 1.5b, exactly.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0, 10), b = rng.uniform(0, 10);
    rows.push_back({1.0, a, b});
    y.push_back(2.0 + 3.0 * a - 1.5 * b);
  }
  const OlsFit fit = ols_fit(rows, y);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], -1.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(OlsFitTest, NoisyFitHasHighR2AndResiduals) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(0, 10);
    rows.push_back({1.0, a});
    y.push_back(5.0 + 2.0 * a + rng.normal(0.0, 0.1));
  }
  const OlsFit fit = ols_fit(rows, y);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_EQ(fit.residuals.size(), 500u);
  double resid_mean = 0.0;
  for (const double r : fit.residuals) resid_mean += r;
  EXPECT_NEAR(resid_mean / 500.0, 0.0, 0.02);
}

TEST(OlsFitTest, RejectsMalformedInput) {
  EXPECT_THROW(ols_fit({}, {}), std::invalid_argument);
  EXPECT_THROW(ols_fit({{1.0, 2.0}}, std::vector<double>{1.0}),
               std::invalid_argument);  // fewer rows than columns
  // Singular: duplicate column.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({1.0, 1.0});
    y.push_back(1.0);
  }
  EXPECT_THROW(ols_fit(rows, y), std::runtime_error);
}

}  // namespace
}  // namespace rtopex
