#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"

namespace rtopex {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/rtopex_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, RoundTripWithHeader) {
  {
    CsvWriter w(path_);
    w.write_header({"a", "b", "c"});
    w.write_row({1.0, 2.5, -3.0});
    w.write_row({4.0, 5.0, 6.0});
  }
  const CsvTable t = read_csv(path_);
  ASSERT_EQ(t.header.size(), 3u);
  EXPECT_EQ(t.header[1], "b");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[0][1], 2.5);
  EXPECT_DOUBLE_EQ(t.rows[1][2], 6.0);
}

TEST_F(CsvTest, HeaderlessNumericFile) {
  {
    std::ofstream out(path_);
    out << "1,2\n3,4\n";
  }
  const CsvTable t = read_csv(path_);
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[1][0], 3.0);
}

TEST_F(CsvTest, RejectsRaggedRows) {
  {
    std::ofstream out(path_);
    out << "1,2\n3,4,5\n";
  }
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, RejectsNonNumericMidFile) {
  {
    std::ofstream out(path_);
    out << "1,2\nx,4\n";
  }
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path.csv"), std::runtime_error);
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST_F(CsvTest, HandlesCrLf) {
  {
    std::ofstream out(path_);
    out << "a,b\r\n1,2\r\n";
  }
  const CsvTable t = read_csv(path_);
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[1], "b");
  ASSERT_EQ(t.rows.size(), 1u);
}

}  // namespace
}  // namespace rtopex
