// Determinism regression: identical seeds must produce bit-identical
// simulator results and identical decode decisions from the real runtime.
// The virtual-time substrate uses integer nanoseconds precisely so that
// event ordering cannot drift across platforms or repeated runs; this test
// pins that property (and the seeded workload/channel generation) down.
#include <gtest/gtest.h>

#include "model/timing_model.hpp"
#include "runtime/node_runtime.hpp"
#include "sched/global.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "transport/transport.hpp"

namespace rtopex::sim {
namespace {

std::vector<SubframeWork> generate(std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_basestations = 3;
  cfg.subframes_per_bs = 2000;
  cfg.seed = seed;
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  return gen.generate();
}

void expect_identical(const SchedulerMetrics& a, const SchedulerMetrics& b) {
  EXPECT_EQ(a.total_subframes, b.total_subframes);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.decode_failures, b.decode_failures);
  EXPECT_EQ(a.fft_subtasks_total, b.fft_subtasks_total);
  EXPECT_EQ(a.fft_subtasks_migrated, b.fft_subtasks_migrated);
  EXPECT_EQ(a.decode_subtasks_total, b.decode_subtasks_total);
  EXPECT_EQ(a.decode_subtasks_migrated, b.decode_subtasks_migrated);
  EXPECT_EQ(a.recoveries, b.recoveries);
  // Bit-identical sample vectors, not just equal lengths.
  EXPECT_EQ(a.gap_us, b.gap_us);
  EXPECT_EQ(a.processing_time_us, b.processing_time_us);
  // Histogram state must agree bucket-for-bucket as well.
  EXPECT_EQ(a.processing_us_hist, b.processing_us_hist);
  EXPECT_EQ(a.gap_us_hist, b.gap_us_hist);
  ASSERT_EQ(a.per_bs.size(), b.per_bs.size());
  for (std::size_t i = 0; i < a.per_bs.size(); ++i) {
    EXPECT_EQ(a.per_bs[i].subframes, b.per_bs[i].subframes);
    EXPECT_EQ(a.per_bs[i].misses, b.per_bs[i].misses);
  }
}

TEST(DeterminismTest, WorkloadGenerationIsBitIdentical) {
  const auto a = generate(97);
  const auto b = generate(97);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bs, b[i].bs);
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].mcs, b[i].mcs);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_EQ(a[i].decodable, b[i].decodable);
    EXPECT_EQ(a[i].costs.fft_subtask, b[i].costs.fft_subtask);
    EXPECT_EQ(a[i].costs.decode_subtask, b[i].costs.decode_subtask);
  }
}

TEST(DeterminismTest, SchedulerMetricsAreBitIdenticalAcrossRuns) {
  const auto work = generate(101);

  // record_samples keeps the raw vectors populated so the bit-identical
  // sample comparison stays meaningful alongside the histogram check.
  sched::PartitionedConfig pc;
  pc.rtt_half = microseconds(500);
  pc.record_samples = true;
  sched::PartitionedScheduler part_a(3, pc);
  sched::PartitionedScheduler part_b(3, pc);
  expect_identical(part_a.run(work), part_b.run(work));

  sched::GlobalConfig gc;
  gc.num_cores = 5;
  gc.record_samples = true;
  expect_identical(sched::GlobalScheduler(3, gc).run(work),
                   sched::GlobalScheduler(3, gc).run(work));

  sched::RtOpexConfig rc;
  rc.rtt_half = microseconds(500);
  rc.record_samples = true;
  expect_identical(sched::RtOpexScheduler(3, rc).run(work),
                   sched::RtOpexScheduler(3, rc).run(work));
}

TEST(DeterminismTest, SameSeedSameWorkloadObject) {
  // A scheduler must not mutate the workload: running twice over the same
  // span is the same as running over two identically generated spans.
  const auto work = generate(103);
  sched::RtOpexConfig rc;
  rc.rtt_half = microseconds(500);
  sched::RtOpexScheduler sched(3, rc);
  expect_identical(sched.run(work), sched.run(work));
}

TEST(DeterminismTest, RuntimeSingleCoreDecisionsAreSeedDeterministic) {
  // Single worker, pacing-independent decisions (enforcement off): the CRC
  // outcome and iteration count of every subframe derive only from the
  // seeded TX/channel generation, so two runs must agree bit-for-bit.
  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kPartitioned;
  cfg.num_basestations = 1;
  cfg.cores_per_bs = 1;
  cfg.subframes_per_bs = 6;
  cfg.subframe_period = milliseconds(60);
  cfg.deadline_budget = milliseconds(120);
  cfg.mcs_cycle = {4, 16, 27};
  cfg.phy.num_antennas = 2;
  cfg.phy.bandwidth = phy::Bandwidth::kMHz5;
  cfg.enforce_deadlines = false;
  cfg.seed = 5;

  runtime::NodeRuntime first(cfg);
  const auto a = first.run();
  runtime::NodeRuntime second(cfg);
  const auto b = second.run();

  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].bs, b.records[i].bs);
    EXPECT_EQ(a.records[i].index, b.records[i].index);
    EXPECT_EQ(a.records[i].mcs, b.records[i].mcs);
    EXPECT_EQ(a.records[i].crc_ok, b.records[i].crc_ok);
    EXPECT_EQ(a.records[i].iterations, b.records[i].iterations);
    EXPECT_EQ(a.records[i].dropped, b.records[i].dropped);
  }
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.crc_failures, b.crc_failures);
}

}  // namespace
}  // namespace rtopex::sim
