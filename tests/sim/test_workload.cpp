#include <gtest/gtest.h>

#include <set>

#include "model/timing_model.hpp"
#include "sim/workload.hpp"

namespace rtopex::sim {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.num_basestations = 4;
  cfg.subframes_per_bs = 2000;
  cfg.seed = 11;
  return cfg;
}

TEST(WorkloadTest, GeneratesAllSubframesSortedByArrival) {
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(small_config(), transport,
                              model::paper_gpp_model());
  const auto work = gen.generate();
  EXPECT_EQ(work.size(), 8000u);
  std::set<std::pair<unsigned, std::uint32_t>> seen;
  TimePoint prev = -1;
  for (const auto& w : work) {
    EXPECT_GE(w.arrival, prev);
    prev = w.arrival;
    EXPECT_TRUE(seen.insert({w.bs, w.index}).second);
    EXPECT_EQ(w.arrival, w.radio_time + microseconds(500));
    EXPECT_EQ(w.deadline, w.radio_time + milliseconds(2));
    EXPECT_LE(w.mcs, 27u);
    EXPECT_GE(w.iterations, 1u);
    EXPECT_LE(w.iterations, 4u);
    EXPECT_GT(w.costs.total(), 0);
    EXPECT_GT(w.decode_optimistic, 0);
    EXPECT_LE(w.decode_optimistic, w.costs.decode);
  }
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  const transport::FixedTransport transport(microseconds(400));
  const WorkloadGenerator gen(small_config(), transport,
                              model::paper_gpp_model());
  const auto a = gen.generate();
  const auto b = gen.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mcs, b[i].mcs);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_EQ(a[i].costs.total(), b[i].costs.total());
  }
}

TEST(WorkloadTest, FixedMcsMode) {
  auto cfg = small_config();
  cfg.fixed_mcs = 20;
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  for (const auto& w : gen.generate()) EXPECT_EQ(w.mcs, 20u);
}

TEST(WorkloadTest, TraceModeSpansMcsRange) {
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(small_config(), transport,
                              model::paper_gpp_model());
  std::set<unsigned> mcs_seen;
  for (const auto& w : gen.generate()) mcs_seen.insert(w.mcs);
  EXPECT_GT(mcs_seen.size(), 15u);  // the traces exercise most of the range
}

TEST(WorkloadTest, LowerSnrRaisesIterations) {
  auto cfg = small_config();
  const transport::FixedTransport transport(microseconds(500));
  cfg.snr_db = 30.0;
  double high_snr = 0.0, low_snr = 0.0;
  {
    const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
    for (const auto& w : gen.generate()) high_snr += w.iterations;
  }
  cfg.snr_db = 18.0;
  {
    const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
    for (const auto& w : gen.generate()) low_snr += w.iterations;
  }
  EXPECT_GT(low_snr, high_snr);
}

TEST(WorkloadTest, RejectsBadConfig) {
  const transport::FixedTransport transport(microseconds(500));
  WorkloadConfig cfg = small_config();
  cfg.num_basestations = 0;
  EXPECT_THROW(WorkloadGenerator(cfg, transport, model::paper_gpp_model()),
               std::invalid_argument);
  cfg = small_config();
  cfg.fixed_mcs = 28;
  EXPECT_THROW(WorkloadGenerator(cfg, transport, model::paper_gpp_model()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::sim
