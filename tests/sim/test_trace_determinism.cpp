// Trace-layer determinism and accuracy on the virtual-time simulator:
// same-seed runs must produce bit-identical event streams (the virtual
// clock is the only timestamp source), the exported Chrome JSON must be
// structurally valid with monotone per-track timestamps, and histogram
// percentiles must match the raw-sample quantiles within one bucket width.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "model/timing_model.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/tracer.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "support/mini_json.hpp"
#include "transport/transport.hpp"

namespace rtopex::sim {
namespace {

using testsupport::JsonValue;
using testsupport::parse_json;

std::vector<SubframeWork> generate(std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 400;
  cfg.seed = seed;
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  return gen.generate();
}

obs::TraceStore traced_rtopex_run(const std::vector<SubframeWork>& work) {
  sched::RtOpexConfig rc;
  rc.rtt_half = microseconds(500);
  sched::RtOpexScheduler sched(2, rc);
  obs::Tracer tracer(sched.num_cores());
  rc.tracer = &tracer;
  sched::RtOpexScheduler traced(2, rc);
  traced.run(work);
  return tracer.take();
}

TEST(TraceDeterminismTest, SameSeedRunsProduceIdenticalEventStreams) {
  if (!RTOPEX_TRACE_ENABLED) GTEST_SKIP() << "built with RTOPEX_TRACING=OFF";
  const auto work = generate(211);
  const obs::TraceStore a = traced_rtopex_run(work);
  const obs::TraceStore b = traced_rtopex_run(work);

  ASSERT_GT(a.events.size(), 0u);
  EXPECT_EQ(a.ring_drops, 0u);
  EXPECT_EQ(a.store_drops, 0u);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
}

TEST(TraceDeterminismTest, SimTraceExportsAsValidChromeJson) {
  if (!RTOPEX_TRACE_ENABLED) GTEST_SKIP() << "built with RTOPEX_TRACING=OFF";
  const obs::TraceStore store = traced_rtopex_run(generate(223));
  obs::ChromeTraceOptions opts;
  opts.num_cores = 4;
  const JsonValue root = parse_json(chrome_trace_json(store, opts));

  const JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  EXPECT_EQ(root.at("otherData").at("event_count").number(),
            static_cast<double>(store.events.size()));
  EXPECT_EQ(root.at("otherData").at("ring_drops").number(), 0.0);

  // Per-track timestamps are monotone in the exported order.
  std::map<double, double> last_ts;
  std::size_t timed = 0;
  for (const JsonValue& event : events.array()) {
    if (event.at("ph").str() == "M") continue;
    const double tid = event.at("tid").number();
    const double ts = event.at("ts").number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "tid " << tid;
    }
    last_ts[tid] = ts;
    ++timed;
  }
  // Offload/host events render as two JSON records each (span or instant
  // plus one half of the flow arrow), so the JSON carries at least one
  // record per stored event.
  EXPECT_GE(timed, store.events.size());
}

// Acceptance criterion: with raw samples retained, histogram percentile
// reads agree with the exact sample quantiles within one bucket width
// (relative width g = 10^(1/24) for the default layout).
TEST(TraceDeterminismTest, HistogramPercentilesMatchRawSamples) {
  const auto work = generate(227);
  sched::PartitionedConfig pc;
  pc.rtt_half = microseconds(500);
  pc.record_samples = true;
  const auto m = sched::PartitionedScheduler(2, pc).run(work);

  ASSERT_GT(m.processing_time_us.size(), 100u);
  ASSERT_EQ(m.processing_us_hist.count(), m.processing_time_us.size());
  const double g = std::pow(10.0, 1.0 / 24.0);
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = quantile(m.processing_time_us, q);
    const double est = m.processing_us_hist.percentile(q);
    EXPECT_GE(est, exact / g * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(est, exact * g * (1.0 + 1e-9)) << "q=" << q;
  }
  if (!m.gap_us.empty()) {
    const double exact = quantile(m.gap_us, 0.95);
    const double est = m.gap_us_hist.percentile(0.95);
    EXPECT_GE(est, exact / g * (1.0 - 1e-9));
    EXPECT_LE(est, exact * g * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace rtopex::sim
