// Trace-file replay: measured load traces drive the workload instead of the
// synthetic generator.
#include <gtest/gtest.h>

#include <cstdio>

#include "model/timing_model.hpp"
#include "sim/workload.hpp"
#include "trace/load_trace.hpp"
#include "transport/transport.hpp"

namespace rtopex::sim {
namespace {

class TraceReplayTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/rtopex_replay.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceReplayTest, ReplayedLoadsDriveMcsExactly) {
  // Two basestations with hand-crafted loads.
  const std::vector<trace::LoadTrace> traces = {
      trace::LoadTrace({0.0, 0.5, 1.0, 0.25}),
      trace::LoadTrace({1.0, 1.0, 0.0, 0.0}),
  };
  trace::write_traces_csv(path_, traces);

  WorkloadConfig cfg;
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 8;  // exercises cycling past the 4-entry trace
  cfg.trace_csv = path_;
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  const auto work = gen.generate();
  ASSERT_EQ(work.size(), 16u);
  for (const auto& w : work) {
    const double load = traces[w.bs].load(w.index);
    EXPECT_EQ(w.mcs, trace::mcs_from_load(load))
        << "bs=" << w.bs << " idx=" << w.index;
  }
}

TEST_F(TraceReplayTest, TooFewTraceColumnsRejected) {
  trace::write_traces_csv(path_, {trace::LoadTrace({0.5, 0.5})});
  WorkloadConfig cfg;
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 4;
  cfg.trace_csv = path_;
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  EXPECT_THROW(gen.generate(), std::invalid_argument);
}

TEST_F(TraceReplayTest, FixedMcsIgnoresTraceFile) {
  WorkloadConfig cfg;
  cfg.num_basestations = 2;
  cfg.subframes_per_bs = 4;
  cfg.trace_csv = "/nonexistent.csv";  // must not even be opened
  cfg.fixed_mcs = 7;
  const transport::FixedTransport transport(microseconds(500));
  const WorkloadGenerator gen(cfg, transport, model::paper_gpp_model());
  for (const auto& w : gen.generate()) EXPECT_EQ(w.mcs, 7u);
}

}  // namespace
}  // namespace rtopex::sim
