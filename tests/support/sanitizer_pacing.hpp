// Shared test helper: scale real-time pacing when the build runs under a
// sanitizer. The NodeRuntime tests stretch the 1 ms subframe period so a
// loaded CI host keeps up; sanitizer instrumentation slows the PHY decode
// by another 2-15x, so the stretch factor must grow with it or the slack
// check starts (correctly) dropping subframes the tests expect to decode.
#pragma once

namespace rtopex::test {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define RTOPEX_TEST_TSAN 1
#endif
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define RTOPEX_TEST_ASAN 1
#endif
#endif

constexpr int pacing_scale() {
#if defined(__SANITIZE_THREAD__) || defined(RTOPEX_TEST_TSAN)
  return 8;   // TSan: ~5-15x slower PHY
#elif defined(__SANITIZE_ADDRESS__) || defined(RTOPEX_TEST_ASAN)
  return 4;   // ASan (+UBSan): ~2-4x slower
#else
  return 1;
#endif
}

}  // namespace rtopex::test
