// Minimal JSON parser for test-side validation of exported artifacts
// (Chrome trace JSON). Supports the full value grammar — objects, arrays,
// strings with escapes, numbers, booleans, null — with no dependencies
// beyond the standard library. Throws std::runtime_error on malformed
// input; not a production parser (no streaming, no duplicate-key policy).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace rtopex::testsupport {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(Storage v) : value_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool boolean() const { return std::get<bool>(value_); }
  double number() const { return std::get<double>(value_); }
  const std::string& str() const { return std::get<std::string>(value_); }
  const Array& array() const { return std::get<Array>(value_); }
  const Object& object() const { return std::get<Object>(value_); }

  bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    const auto& obj = object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  const JsonValue& operator[](std::size_t i) const { return array().at(i); }
  std::size_t size() const { return array().size(); }

 private:
  Storage value_;
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(JsonValue::Storage(parse_string()));
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(JsonValue::Storage(true));
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(JsonValue::Storage(false));
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(JsonValue::Storage(nullptr));
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(JsonValue::Storage(std::move(obj)));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(JsonValue::Storage(std::move(obj)));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(JsonValue::Storage(std::move(arr)));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(JsonValue::Storage(std::move(arr)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair recombination; the exporters
          // under test never emit astral-plane characters).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    try {
      return JsonValue(
          JsonValue::Storage(std::stod(text_.substr(start, pos_ - start))));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue parse_json(const std::string& text) {
  return detail::JsonParser(text).parse();
}

}  // namespace rtopex::testsupport
