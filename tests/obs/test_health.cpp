// Live health engine: burn-rate window math against hand-fed outcome
// streams (fire, hysteresis clear, the min-sample gate), slack-collapse
// anomaly detection, per-node scope attribution, bit-identical replay of
// the same feed, the kAlert/kAlertClear event encoding, the Prometheus
// rendering (lint-clean), and config/topology validation.
#include "obs/health/health.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "obs/prom_lint.hpp"

namespace rtopex::obs::health {
namespace {

TraceEvent make_event(TimePoint ts, EventKind kind, std::uint32_t bs,
                      std::uint32_t index, std::uint32_t a = 0,
                      std::uint32_t b = 0, std::uint32_t core = 0) {
  TraceEvent ev;
  ev.ts = ts;
  ev.kind = kind;
  ev.bs = bs;
  ev.index = index;
  ev.a = a;
  ev.b = b;
  ev.core = core;
  return ev;
}

/// Tight windows so tests stay in the low milliseconds: eval every 1 ms,
/// fast burn over 2/4 ms at 10x SLO, slow burn over 4/8 ms at 2x.
HealthConfig tight_config() {
  HealthConfig cfg;
  cfg.enabled = true;
  cfg.slo_miss_rate = 0.01;
  cfg.eval_period = milliseconds(1);
  cfg.fast_burn = {milliseconds(2), milliseconds(4), 10.0, 0.5,
                   milliseconds(2), Severity::kPage};
  cfg.slow_burn = {milliseconds(4), milliseconds(8), 2.0, 0.5,
                   milliseconds(4), Severity::kWarn};
  cfg.min_window_samples = 10;
  cfg.anomaly_enabled = false;
  return cfg;
}

Topology one_bs_topology() {
  Topology topo;
  topo.num_basestations = 1;
  return topo;
}

/// Feeds one kSubframeEnd per 100 us on bs 0 over [from, to), all bad or
/// all good — 10 outcomes per 1 ms bucket.
void feed_outcomes(HealthMonitor& m, TimePoint from, TimePoint to, bool bad) {
  std::uint32_t index = 0;
  for (TimePoint ts = from; ts < to; ts += microseconds(100))
    m.observe(make_event(ts, EventKind::kSubframeEnd, 0, index++,
                         bad ? 1 : 0));
}

TEST(HealthMonitor, CleanStreamStaysSilent) {
  HealthMonitor m(tight_config(), one_bs_topology());
  feed_outcomes(m, 0, milliseconds(50), /*bad=*/false);
  m.finish(milliseconds(50));
  EXPECT_TRUE(m.alerts().empty());
  EXPECT_TRUE(m.alert_events().empty());
  EXPECT_EQ(m.snapshot().cluster.health_score, 100.0);
}

TEST(HealthMonitor, FastBurnPagesAndClearsWithHold) {
  const HealthConfig cfg = tight_config();
  HealthMonitor m(cfg, one_bs_topology());
  feed_outcomes(m, 0, milliseconds(10), /*bad=*/false);
  feed_outcomes(m, milliseconds(10), milliseconds(20), /*bad=*/true);
  feed_outcomes(m, milliseconds(20), milliseconds(60), /*bad=*/false);
  m.finish(milliseconds(60));

  const Alert* page = nullptr;
  for (const Alert& a : m.alerts())
    if (a.rule == Rule::kFastBurn && a.scope == ScopeKind::kCluster)
      page = &a;
  ASSERT_NE(page, nullptr) << "fast burn never fired at cluster scope";
  EXPECT_EQ(page->severity, Severity::kPage);
  // Fires within a few eval periods of the burst, not before it.
  EXPECT_GT(page->fired_at, milliseconds(10));
  EXPECT_LE(page->fired_at, milliseconds(16));
  EXPECT_GE(page->value, cfg.fast_burn.threshold);
  // Hysteresis: the clear cannot precede the burst end plus the hold.
  ASSERT_FALSE(page->active());
  EXPECT_GE(page->cleared_at,
            milliseconds(20) + cfg.fast_burn.clear_hold);

  // Every scope of this one-bs topology saw the same outcomes, so the burn
  // rules fire at cluster, node and bs scope alike — and all clear.
  for (const Alert& a : m.alerts()) {
    EXPECT_FALSE(a.active()) << describe(a);
    EXPECT_TRUE(a.rule == Rule::kFastBurn || a.rule == Rule::kSlowBurn);
  }
  EXPECT_EQ(m.active_alerts(Severity::kPage), 0u);
  EXPECT_EQ(m.active_alerts(Severity::kWarn), 0u);
}

TEST(HealthMonitor, MinWindowSamplesGatesSparseTraffic) {
  // All-bad traffic, but only one outcome per bucket: the fast-burn long
  // window holds at most 4 < min_window_samples outcomes, so no page even
  // at burn 100x. Firing is gated; an empty window must not page either.
  HealthConfig cfg = tight_config();
  cfg.slow_burn.long_window = milliseconds(4);  // keep both windows sparse
  cfg.slow_burn.short_window = milliseconds(4);
  HealthMonitor m(cfg, one_bs_topology());
  for (TimePoint ts = 0; ts < milliseconds(30); ts += milliseconds(1))
    m.observe(make_event(ts, EventKind::kSubframeEnd, 0,
                         static_cast<std::uint32_t>(ts / milliseconds(1)),
                         /*a=*/1));
  m.finish(milliseconds(30));
  EXPECT_TRUE(m.alerts().empty());
}

TEST(HealthMonitor, LossesBurnBudgetLikeMisses) {
  // A dead node produces kLost, never kSubframeEnd — losses must count as
  // offered+bad or a fail-stop would look like an idle (healthy) window.
  HealthMonitor m(tight_config(), one_bs_topology());
  feed_outcomes(m, 0, milliseconds(10), /*bad=*/false);
  std::uint32_t index = 0;
  for (TimePoint ts = milliseconds(10); ts < milliseconds(20);
       ts += microseconds(100))
    m.observe(make_event(ts, EventKind::kLost, 0, index++));
  m.finish(milliseconds(20));
  bool paged = false;
  for (const Alert& a : m.alerts())
    if (a.severity == Severity::kPage) paged = true;
  EXPECT_TRUE(paged);
}

TEST(HealthMonitor, NodeScopeAttributionIsolatesTheSickNode) {
  Topology topo;
  topo.num_nodes = 2;
  topo.num_basestations = 2;
  topo.node_cores = {2, 2};
  topo.track_to_node = {0, 1};
  topo.bs_to_node = {0, 1};
  HealthMonitor m(tight_config(), topo);
  for (TimePoint ts = 0; ts < milliseconds(30); ts += microseconds(100)) {
    const auto index = static_cast<std::uint32_t>(ts / microseconds(100));
    m.observe(make_event(ts, EventKind::kSubframeEnd, 0, index, 0, 0,
                         /*core=*/0));
    m.observe(make_event(ts, EventKind::kSubframeEnd, 1, index,
                         ts >= milliseconds(10) ? 1 : 0, 0, /*core=*/1));
  }
  m.finish(milliseconds(30));

  bool node1_paged = false;
  for (const Alert& a : m.alerts()) {
    if (a.scope == ScopeKind::kNode) {
      EXPECT_EQ(a.scope_id, 1u) << "healthy node 0 must stay green: "
                                << describe(a);
      if (a.severity == Severity::kPage) node1_paged = true;
    }
    if (a.scope == ScopeKind::kBasestation) {
      EXPECT_EQ(a.scope_id, 1u);
    }
  }
  EXPECT_TRUE(node1_paged);
  const HealthSnapshot snap = m.snapshot();
  ASSERT_EQ(snap.nodes.size(), 2u);
  EXPECT_EQ(snap.nodes[0].kind, ScopeKind::kNode);
}

TEST(HealthMonitor, SlackCollapseFiresAnomalyNotBurn) {
  HealthConfig cfg = tight_config();
  cfg.anomaly_enabled = true;
  cfg.z_threshold = 4.0;
  cfg.z_consecutive = 2;
  cfg.z_warmup = 4;
  // Burn rules out of the picture: nothing here ever misses.
  cfg.fast_burn.threshold = 1e9;
  cfg.slow_burn.threshold = 1e9;
  HealthMonitor m(cfg, one_bs_topology());

  // One completion per bucket; slack oscillates 900/1100 us (so sigma is
  // genuine), then collapses to 10 us.
  for (unsigned bucket = 0; bucket < 40; ++bucket) {
    const TimePoint ts = milliseconds(1) * bucket + microseconds(500);
    const Duration slack = bucket < 30
                               ? microseconds(bucket % 2 ? 900 : 1100)
                               : microseconds(10);
    m.observe(make_event(ts, EventKind::kArrival, 0, bucket,
                         static_cast<std::uint32_t>(slack)));
    m.observe(make_event(ts, EventKind::kSubframeEnd, 0, bucket, 0));
  }
  m.finish(milliseconds(40));

  const Alert* anomaly = nullptr;
  for (const Alert& a : m.alerts())
    if (a.rule == Rule::kSlackAnomaly && a.scope == ScopeKind::kCluster)
      anomaly = &a;
  ASSERT_NE(anomaly, nullptr);
  EXPECT_EQ(anomaly->severity, Severity::kWarn);
  EXPECT_GE(anomaly->fired_at, milliseconds(30));
  EXPECT_GE(anomaly->value, cfg.z_threshold);
  for (const Alert& a : m.alerts())
    EXPECT_NE(a.rule, Rule::kFastBurn) << describe(a);
}

TEST(HealthMonitor, SameFeedIsBitIdentical) {
  const HealthConfig cfg = tight_config();
  auto run = [&cfg]() {
    auto m = std::make_unique<HealthMonitor>(cfg, one_bs_topology());
    feed_outcomes(*m, 0, milliseconds(10), false);
    feed_outcomes(*m, milliseconds(10), milliseconds(18), true);
    feed_outcomes(*m, milliseconds(18), milliseconds(50), false);
    m->finish(milliseconds(50));
    return m;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a->alerts().empty());
  EXPECT_EQ(a->alerts(), b->alerts());
  ASSERT_EQ(a->alert_events().size(), b->alert_events().size());
  for (std::size_t i = 0; i < a->alert_events().size(); ++i) {
    const TraceEvent& x = a->alert_events()[i];
    const TraceEvent& y = b->alert_events()[i];
    EXPECT_EQ(x.ts, y.ts);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.bs, y.bs);
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.a, y.a);
    EXPECT_EQ(x.b, y.b);
  }
}

TEST(HealthMonitor, AlertEventsEncodeTheAlertStream) {
  HealthMonitor m(tight_config(), one_bs_topology());
  feed_outcomes(m, 0, milliseconds(10), false);
  feed_outcomes(m, milliseconds(10), milliseconds(20), true);
  feed_outcomes(m, milliseconds(20), milliseconds(60), false);
  m.finish(milliseconds(60));

  std::size_t fired = 0, cleared = 0;
  for (const TraceEvent& ev : m.alert_events()) {
    const auto severity = static_cast<Severity>(ev.a & 0xff);
    const auto kind = static_cast<ScopeKind>(ev.a >> 8);
    if (ev.kind == EventKind::kAlert) {
      // Every kAlert matches its Alert record by (rule, scope, fire time).
      const Alert& a = m.alerts()[fired];
      EXPECT_EQ(static_cast<Rule>(ev.index), a.rule);
      EXPECT_EQ(severity, a.severity);
      EXPECT_EQ(kind, a.scope);
      EXPECT_EQ(ev.bs, a.scope_id);
      EXPECT_EQ(ev.ts, a.fired_at);
      ++fired;
    } else {
      ASSERT_EQ(ev.kind, EventKind::kAlertClear);
      ++cleared;
    }
  }
  EXPECT_EQ(fired, m.alerts().size());
  EXPECT_EQ(cleared, m.alerts().size());  // everything cleared by finish()
}

TEST(HealthMonitor, ScanStoreMatchesSortedFeed) {
  // scan_store sorts internally, so a shuffled (track-interleaved) store
  // must produce the same alert stream as the chronological feed.
  const HealthConfig cfg = tight_config();
  HealthMonitor sorted(cfg, one_bs_topology());
  TraceStore store;
  std::uint32_t index = 0;
  for (TimePoint ts = 0; ts < milliseconds(40); ts += microseconds(100)) {
    const bool bad = ts >= milliseconds(10) && ts < milliseconds(20);
    store.events.push_back(
        make_event(ts, EventKind::kSubframeEnd, 0, index++, bad ? 1 : 0));
  }
  for (const TraceEvent& ev : store.events) sorted.observe(ev);
  sorted.finish(milliseconds(40));

  std::rotate(store.events.begin(), store.events.begin() + 57,
              store.events.end());
  const auto scanned = scan_store(store, cfg, one_bs_topology());
  EXPECT_EQ(scanned->alerts(), sorted.alerts());
}

TEST(HealthMonitor, RegistryRendersLintClean) {
  HealthMonitor m(tight_config(), one_bs_topology());
  feed_outcomes(m, 0, milliseconds(10), false);
  feed_outcomes(m, milliseconds(10), milliseconds(20), true);
  m.finish(milliseconds(20));
  ASSERT_FALSE(m.alerts().empty());

  MetricsRegistry reg;
  m.fill_registry(reg);
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_health_score{scope=\"cluster\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_health_alerts_fired_total{rule=\"fast_burn\"}"),
            std::string::npos);
  const std::vector<std::string> problems = lint_prometheus_text(text);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(HealthMonitor, SlackHistogramExportMatchesGauges) {
  // Arrivals carry deadline - arrival in `a`; completing on time with a
  // spread of budgets fills the slack histograms. The native
  // rtopex_health_slack_us export is run-cumulative (monotone bucket
  // counters, Prometheus histogram semantics) so it survives quiescent end
  // windows; with a stationary feed its percentiles agree with the windowed
  // p50/p99 gauges to within one bucket width, letting rtopex_top derive
  // percentiles from the buckets alone.
  HealthMonitor m(tight_config(), one_bs_topology());
  std::uint32_t index = 0;
  for (TimePoint ts = 0; ts < milliseconds(20); ts += microseconds(100)) {
    const auto budget =
        static_cast<std::uint32_t>(microseconds(100 + 100 * (index % 10)));
    m.observe(make_event(ts, EventKind::kArrival, 0, index, budget));
    m.observe(make_event(ts, EventKind::kSubframeEnd, 0, index, /*a=*/0));
    ++index;
  }
  m.advance(milliseconds(20));

  const ScopeHealth& cluster = m.snapshot().cluster;
  // Cumulative: every completed subframe of the run, not just the window.
  EXPECT_EQ(cluster.slack.count(), 200u);
  // Stationary feed: cumulative and windowed distributions have the same
  // shape, so the percentiles agree to bucket resolution (~33%).
  EXPECT_NEAR(cluster.slack.p50(), cluster.slack_p50_us,
              0.35 * cluster.slack_p50_us);
  EXPECT_NEAR(cluster.slack.percentile(0.01), cluster.slack_p99_us,
              0.35 * cluster.slack_p99_us);
  // Slacks span 100..1000 us.
  EXPECT_GT(cluster.slack_p50_us, 100.0);
  EXPECT_LT(cluster.slack_p50_us, 1000.0);

  MetricsRegistry reg;
  m.fill_registry(reg);
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_health_slack_us_bucket{scope=\"cluster\","),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_health_slack_us_count{scope=\"cluster\"} 200"),
            std::string::npos);
  const std::vector<std::string> problems = lint_prometheus_text(text);
  EXPECT_TRUE(problems.empty()) << problems.front();

  // The export survives a quiescent tail: after finish() the windowed
  // gauges go idle but the cumulative histogram still carries the run.
  m.finish(milliseconds(20));
  MetricsRegistry reg2;
  m.fill_registry(reg2);
  EXPECT_NE(reg2.render().find(
                "rtopex_health_slack_us_count{scope=\"cluster\"} 200"),
            std::string::npos);
}

TEST(HealthMonitor, AlertLogCsvAndDescribe) {
  HealthMonitor m(tight_config(), one_bs_topology());
  feed_outcomes(m, 0, milliseconds(10), false);
  feed_outcomes(m, milliseconds(10), milliseconds(20), true);
  feed_outcomes(m, milliseconds(20), milliseconds(60), false);
  m.finish(milliseconds(60));
  ASSERT_FALSE(m.alerts().empty());

  const std::string path = ::testing::TempDir() + "/health_alerts.csv";
  write_alert_log_csv(path, m.alerts());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("rule,severity,scope"), std::string::npos);
  EXPECT_NE(ss.str().find("fast_burn,page"), std::string::npos);
  std::remove(path.c_str());

  const std::string line = describe(m.alerts().front());
  EXPECT_NE(line.find("fast_burn"), std::string::npos);
  EXPECT_NE(line.find("fired="), std::string::npos);
}

TEST(HealthConfigValidation, RejectsBadKnobs) {
  const Topology topo = one_bs_topology();
  HealthConfig cfg = tight_config();
  cfg.eval_period = 0;
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  cfg = tight_config();
  cfg.slo_miss_rate = 0.0;
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  cfg = tight_config();
  cfg.fast_burn.short_window = milliseconds(8);  // exceeds its long window
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  cfg = tight_config();
  cfg.slow_burn.long_window = microseconds(2500);  // not a period multiple
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  cfg = tight_config();
  cfg.fast_burn.threshold = 0.0;
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  cfg = tight_config();
  cfg.slow_burn.clear_fraction = 1.5;
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  cfg = tight_config();
  cfg.anomaly_enabled = true;
  cfg.z_consecutive = 0;
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);
}

TEST(HealthTopologyValidation, RejectsBadMaps) {
  const HealthConfig cfg = tight_config();
  Topology topo;
  topo.num_nodes = 0;
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  topo = one_bs_topology();
  topo.num_nodes = 2;
  topo.track_to_node = {0, 5};
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);

  topo = one_bs_topology();
  topo.bs_to_node = {3};
  EXPECT_THROW(HealthMonitor(cfg, topo), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::obs::health
