#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rtopex::obs {
namespace {

TEST(HistogramTest, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  // The empty-percentile guard: 0, never a bucket edge of nothing.
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(HistogramTest, RejectsBadLayout) {
  EXPECT_THROW(Histogram(0.0, 100.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(-1.0, 100.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(100.0, 100.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(100.0, 10.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 100.0, 0), std::invalid_argument);
}

TEST(HistogramTest, MomentsAreExact) {
  // count/sum/mean/min/max come from running moments, not buckets, so they
  // are exact regardless of bucket resolution.
  Histogram h(1.0, 1e4, 4);
  for (const double x : {3.0, 7.0, 100.0, 2500.0}) h.add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 2610.0);
  EXPECT_DOUBLE_EQ(h.mean(), 652.5);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 2500.0);
}

TEST(HistogramTest, SingleSamplePercentilesCollapse) {
  Histogram h;
  h.add(42.0);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.percentile(q), 42.0);
}

TEST(HistogramTest, PercentileClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(100.0 + i);
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_LE(h.percentile(1.0), h.max());
}

TEST(HistogramTest, OutOfRangeSamplesKeepTotalMass) {
  Histogram h(1.0, 100.0, 4);
  h.add(-5.0);    // below range -> first bucket
  h.add(0.0);
  h.add(1e9);     // above range -> last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // Percentiles stay within the observed extrema even for clipped mass.
  EXPECT_LE(h.percentile(1.0), 1e9);
}

TEST(HistogramTest, PercentileMatchesRawWithinOneBucketWidth) {
  // The documented accuracy contract: a percentile read is within one
  // bucket width (relative width g = 10^(1/bpd)) of the true sample
  // quantile. Checked against common/stats on a log-uniform sample.
  Rng rng(7);
  Histogram h;  // default: 24 buckets/decade over [0.1, 1e7)
  std::vector<double> raw;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::pow(10.0, 1.0 + 3.0 * rng.uniform());
    raw.push_back(x);
    h.add(x);
  }
  std::sort(raw.begin(), raw.end());
  const double g = std::pow(10.0, 1.0 / 24.0);
  for (const double q : {0.05, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    const double exact = quantile(raw, q);
    const double est = h.percentile(q);
    EXPECT_GE(est, exact / g * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(est, exact * g * (1.0 + 1e-9)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeAddsMassAndChecksLayout) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.add(i);
  for (int i = 101; i <= 200; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 200.0);
  const double median = a.percentile(0.5);
  EXPECT_GT(median, 80.0);
  EXPECT_LT(median, 125.0);

  Histogram other(1.0, 100.0, 4);
  EXPECT_THROW(a.merge(other), std::invalid_argument);
}

TEST(HistogramTest, ResetRestoresEmptyState) {
  Histogram h;
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h, Histogram());
}

TEST(HistogramTest, EqualityIsBucketExact) {
  Histogram a, b;
  a.add(10.0);
  b.add(10.0);
  EXPECT_EQ(a, b);
  b.add(11.0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rtopex::obs
