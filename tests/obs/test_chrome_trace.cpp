// Golden validation of the Chrome trace-event exporter: the JSON must
// parse, per-track timestamps must be monotone, every flow-start ("s")
// must have a matching flow-finish ("f") with the same id, and the
// otherData accounting must match the store. Parsed with the test-side
// mini JSON parser, not string matching, so structural regressions fail
// loudly.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/mini_json.hpp"

namespace rtopex::obs {
namespace {

using testsupport::JsonValue;
using testsupport::parse_json;

TraceEvent ev(TimePoint ts, std::uint32_t core, EventKind kind,
              Stage stage = Stage::kNone, std::uint32_t bs = 0,
              std::uint32_t index = 0, std::uint32_t a = 0,
              std::uint32_t b = 0) {
  return TraceEvent{ts, bs, index, a, b, core, kind, stage};
}

/// A miniature but representative run: core 0 processes one subframe with
/// a decode stage, offloads two subtasks to core 1 which hosts them, the
/// ticker track (2) fires the watchdog, and core 1 finishes its own
/// subframe late. Events are deliberately appended out of timestamp order
/// to exercise the exporter's sort.
TraceStore make_store() {
  TraceStore store;
  auto& e = store.events;
  e.push_back(ev(1000, 0, EventKind::kSubframeBegin, Stage::kNone, 0, 7));
  e.push_back(ev(1500, 0, EventKind::kStageBegin, Stage::kDecode, 0, 7));
  e.push_back(ev(2000, 0, EventKind::kOffload, Stage::kDecode, 0, 7,
                 /*target=*/1, /*count=*/2));
  e.push_back(ev(6000, 0, EventKind::kStageEnd, Stage::kDecode, 0, 7));
  e.push_back(ev(6500, 0, EventKind::kSubframeEnd, Stage::kNone, 0, 7,
                 /*missed=*/0));
  // Host side, interleaved timestamps.
  e.push_back(ev(2500, 1, EventKind::kHostBegin, Stage::kDecode, 0, 7,
                 /*src=*/0));
  e.push_back(ev(5500, 1, EventKind::kHostEnd, Stage::kDecode, 0, 7, 0,
                 /*completed=*/2));
  e.push_back(ev(7000, 1, EventKind::kSubframeBegin, Stage::kNone, 1, 3));
  e.push_back(ev(9000, 1, EventKind::kSubframeEnd, Stage::kNone, 1, 3,
                 /*missed=*/1));
  // Ticker track markers.
  e.push_back(ev(4000, 2, EventKind::kWatchdogFire, Stage::kNone, 0, 0,
                 /*dead=*/3));
  e.push_back(ev(8000, 2, EventKind::kLost, Stage::kNone, 1, 4));
  store.ring_drops = 5;
  store.store_drops = 1;
  return store;
}

ChromeTraceOptions two_core_options() {
  ChromeTraceOptions opts;
  opts.process_name = "unit test";
  opts.num_cores = 2;
  return opts;
}

TEST(ChromeTraceTest, ExportParsesAsJson) {
  const JsonValue root =
      parse_json(chrome_trace_json(make_store(), two_core_options()));
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.at("traceEvents").is_array());
  const JsonValue& other = root.at("otherData");
  EXPECT_EQ(other.at("event_count").number(), 11.0);
  EXPECT_EQ(other.at("ring_drops").number(), 5.0);
  EXPECT_EQ(other.at("store_drops").number(), 1.0);
}

TEST(ChromeTraceTest, EmptyStoreIsStillValid) {
  const JsonValue root = parse_json(chrome_trace_json(TraceStore{}));
  ASSERT_TRUE(root.at("traceEvents").is_array());
  // Only the process_name metadata record remains.
  ASSERT_EQ(root.at("traceEvents").size(), 1u);
  EXPECT_EQ(root.at("traceEvents")[0].at("ph").str(), "M");
  EXPECT_EQ(root.at("otherData").at("event_count").number(), 0.0);
}

TEST(ChromeTraceTest, PerTrackTimestampsAreMonotone) {
  const JsonValue root =
      parse_json(chrome_trace_json(make_store(), two_core_options()));
  std::map<double, double> last_ts;  // tid -> last seen ts
  std::size_t timed = 0;
  for (const JsonValue& event : root.at("traceEvents").array()) {
    const std::string& ph = event.at("ph").str();
    if (ph == "M") continue;  // metadata carries no ts
    const double tid = event.at("tid").number();
    const double ts = event.at("ts").number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "tid " << tid;
    }
    last_ts[tid] = ts;
    ++timed;
  }
  EXPECT_GT(timed, 0u);
  EXPECT_EQ(last_ts.size(), 3u);  // cores 0, 1 and the ticker track
}

TEST(ChromeTraceTest, SpanBeginsAndEndsBalancePerTrack) {
  const JsonValue root =
      parse_json(chrome_trace_json(make_store(), two_core_options()));
  std::map<double, int> depth;  // tid -> open span count
  for (const JsonValue& event : root.at("traceEvents").array()) {
    const std::string& ph = event.at("ph").str();
    if (ph == "B") ++depth[event.at("tid").number()];
    if (ph == "E") {
      const int d = --depth[event.at("tid").number()];
      EXPECT_GE(d, 0) << "E without matching B";
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(ChromeTraceTest, FlowArrowsPairUpAcrossTracks) {
  const JsonValue root =
      parse_json(chrome_trace_json(make_store(), two_core_options()));
  std::map<std::string, double> starts;   // flow id -> source tid
  std::map<std::string, double> finishes; // flow id -> destination tid
  for (const JsonValue& event : root.at("traceEvents").array()) {
    const std::string& ph = event.at("ph").str();
    if (ph == "s") starts[event.at("id").str()] = event.at("tid").number();
    if (ph == "f") finishes[event.at("id").str()] = event.at("tid").number();
  }
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(finishes.size(), 1u);
  for (const auto& [id, src_tid] : starts) {
    const auto it = finishes.find(id);
    ASSERT_NE(it, finishes.end()) << "unterminated flow " << id;
    EXPECT_NE(it->second, src_tid) << "flow must cross tracks";
  }
  // Both halves derived the same id independently from their own events.
  EXPECT_EQ(starts.begin()->first, "bs0.7.decode.0-1");
}

TEST(ChromeTraceTest, TrackMetadataNamesCoresAndTicker) {
  const JsonValue root =
      parse_json(chrome_trace_json(make_store(), two_core_options()));
  std::map<double, std::string> names;  // tid -> thread name
  for (const JsonValue& event : root.at("traceEvents").array()) {
    if (event.at("ph").str() != "M") continue;
    if (event.at("name").str() != "thread_name") continue;
    names[event.at("tid").number()] = event.at("args").at("name").str();
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0.0], "core 0");
  EXPECT_EQ(names[1.0], "core 1");
  EXPECT_EQ(names[2.0], "ticker 2");
}

TEST(ChromeTraceTest, MarkersCarryKindAndPayload) {
  const JsonValue root =
      parse_json(chrome_trace_json(make_store(), two_core_options()));
  bool saw_watchdog = false, saw_lost = false;
  for (const JsonValue& event : root.at("traceEvents").array()) {
    if (event.at("ph").str() != "i") continue;
    const std::string& name = event.at("name").str();
    if (name == "watchdog_fire") {
      saw_watchdog = true;
      EXPECT_EQ(event.at("args").at("a").number(), 3.0);
    }
    if (name == "lost") {
      saw_lost = true;
      EXPECT_EQ(event.at("args").at("bs").number(), 1.0);
      EXPECT_EQ(event.at("args").at("index").number(), 4.0);
    }
  }
  EXPECT_TRUE(saw_watchdog);
  EXPECT_TRUE(saw_lost);
}

TEST(ChromeTraceTest, WriteChromeTraceRoundtripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/chrome_trace_test.json";
  const TraceStore store = make_store();
  write_chrome_trace(path, store, two_core_options());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), chrome_trace_json(store, two_core_options()));
  std::remove(path.c_str());
  EXPECT_THROW(write_chrome_trace("/nonexistent-dir-xyz/t.json", store),
               std::runtime_error);
}

TEST(ChromeTraceTest, CsvDumpHasOneRowPerEventPlusFooter) {
  const std::string path = ::testing::TempDir() + "/chrome_trace_test.csv";
  const TraceStore store = make_store();
  write_trace_csv(path, store);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  std::string last;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_EQ(line.rfind("ts_ns_v3", 0), 0u);
  while (std::getline(in, line))
    if (!line.empty()) {
      ++rows;
      last = line;
    }
  // One row per event plus the footer sentinel, which carries the event
  // count in its first (ts) column. make_store() has no per-track drop
  // breakdown, so no kind-254 rows appear.
  EXPECT_EQ(rows, store.events.size() + 1);
  EXPECT_EQ(last.rfind(std::to_string(store.events.size()) + ",", 0), 0u);
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, CsvV3EmitsPerTrackDropRowsBeforeTheFooter) {
  const std::string path = ::testing::TempDir() + "/chrome_trace_v3.csv";
  TraceStore store = make_store();
  // Drops on tracks 0 and 2; track 1 still gets a (zero) row — the drop
  // row count doubles as the track count on reload.
  store.ring_drops_per_track = {3, 0, 2};
  write_trace_csv(path, store);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::string> rows;
  while (std::getline(in, line))
    if (!line.empty()) rows.push_back(line);
  std::remove(path.c_str());

  ASSERT_EQ(rows.size(), store.events.size() + 4);
  // CSV columns: ts,core,kind,stage,bs,index,a,b. The drop rows sit
  // between the last event and the footer, ordered by track.
  auto field = [](const std::string& row, int col) {
    std::size_t begin = 0;
    for (int c = 0; c < col; ++c) begin = row.find(',', begin) + 1;
    return row.substr(begin, row.find(',', begin) - begin);
  };
  const char* expected_counts[] = {"3", "0", "2"};
  for (std::size_t t = 0; t < 3; ++t) {
    const std::string& row = rows[store.events.size() + t];
    EXPECT_EQ(field(row, 2), std::to_string(kTraceCsvTrackDropsKind));
    EXPECT_EQ(field(row, 1), std::to_string(t));
    EXPECT_EQ(field(row, 6), expected_counts[t]);
  }
  EXPECT_EQ(field(rows.back(), 2), std::to_string(kTraceCsvFooterKind));
}

TEST(ChromeTraceTest, ProcessGroupsRenderPerNodeMetadata) {
  // The merged-cluster layout: node 0 owns tracks 0-1, node 1 owns track
  // 2, and any unclaimed track falls into a trailing control process.
  ChromeTraceOptions opts;
  opts.process_name = "cluster control";
  opts.processes.push_back({"node 0", 0, 2});
  opts.processes.push_back({"node 1", 2, 1});
  const JsonValue root = parse_json(chrome_trace_json(make_store(), opts));

  // Collect process_name / thread_name metadata by (pid, tid).
  std::map<double, std::string> process_names;
  std::map<std::pair<double, double>, std::string> thread_names;
  std::map<std::pair<double, double>, std::size_t> events_per_thread;
  for (const JsonValue& event : root.at("traceEvents").array()) {
    if (event.at("ph").str() == "M") {
      const std::string& name = event.at("name").str();
      if (name == "process_name")
        process_names[event.at("pid").number()] =
            event.at("args").at("name").str();
      if (name == "thread_name")
        thread_names[{event.at("pid").number(), event.at("tid").number()}] =
            event.at("args").at("name").str();
      continue;
    }
    ++events_per_thread[{event.at("pid").number(), event.at("tid").number()}];
  }

  EXPECT_EQ(process_names[0], "node 0");
  EXPECT_EQ(process_names[1], "node 1");
  EXPECT_EQ(process_names[2], "cluster control");
  // Track names are relative to the owning group's range.
  EXPECT_EQ((thread_names[{0, 0}]), "core 0");
  EXPECT_EQ((thread_names[{0, 1}]), "core 1");
  EXPECT_EQ((thread_names[{1, 2}]), "core 0");
  // make_store() tracks: 0, 1 -> node 0; 2 -> node 1; no unclaimed events.
  EXPECT_GT((events_per_thread[{0, 0}]), 0u);
  EXPECT_GT((events_per_thread[{0, 1}]), 0u);
  EXPECT_GT((events_per_thread[{1, 2}]), 0u);
  for (const auto& [key, count] : events_per_thread)
    EXPECT_LE(key.first, 1.0) << "event escaped its process group";
}

}  // namespace
}  // namespace rtopex::obs
