#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/histogram.hpp"

namespace rtopex::obs {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(MetricsRegistryTest, RendersCounterAndGauge) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_subframes_total", "Subframes processed.", 42);
  reg.add_gauge("rtopex_miss_rate", "Fraction missed.", 0.25);
  const std::string text = reg.render();
  EXPECT_NE(text.find("# HELP rtopex_subframes_total Subframes processed."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rtopex_subframes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_subframes_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rtopex_miss_rate gauge"), std::string::npos);
  EXPECT_NE(text.find("rtopex_miss_rate 0.25\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelsAreRenderedAndEscaped) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_bs_total", "Per-BS.", 7, {{"bs", "3"}});
  reg.add_counter("rtopex_odd", "Escaping.", 1,
                  {{"note", "a\"b\\c\nd"}});
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_bs_total{bs=\"3\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("rtopex_odd{note=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SharedNameGetsOneHeader) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_bs_total", "Per-BS subframes.", 1, {{"bs", "0"}});
  reg.add_counter("rtopex_bs_total", "ignored duplicate help", 2,
                  {{"bs", "1"}});
  const std::string text = reg.render();
  EXPECT_EQ(count_occurrences(text, "# HELP rtopex_bs_total"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE rtopex_bs_total"), 1u);
  EXPECT_NE(text.find("rtopex_bs_total{bs=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("rtopex_bs_total{bs=\"1\"} 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramRendersCumulativeBuckets) {
  Histogram h(1.0, 1000.0, 2);
  for (const double x : {2.0, 20.0, 200.0, 200.0}) h.add(x);
  MetricsRegistry reg;
  reg.add_histogram("rtopex_latency_us", "Latency.", h);
  const std::string text = reg.render();
  EXPECT_NE(text.find("# TYPE rtopex_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_latency_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_latency_us_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("rtopex_latency_us_sum 422\n"), std::string::npos);

  // Cumulative: the le counts never decrease through the rendered series.
  std::istringstream lines(text);
  std::string line;
  double prev = 0.0;
  while (std::getline(lines, line)) {
    if (line.rfind("rtopex_latency_us_bucket", 0) != 0) continue;
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(prev, 4.0);
}

TEST(MetricsRegistryTest, EmptyHistogramStillRendersCountAndInf) {
  MetricsRegistry reg;
  reg.add_histogram("rtopex_empty_us", "Empty.", Histogram());
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_empty_us_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_empty_us_count 0\n"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteRoundtripsAndFailsOnBadPath) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_x_total", "X.", 5);
  const std::string path =
      ::testing::TempDir() + "/metrics_registry_test.prom";
  reg.write(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.render());
  std::remove(path.c_str());
  EXPECT_THROW(reg.write("/nonexistent-dir-xyz/file.prom"),
               std::runtime_error);
}

TEST(MetricsRegistryTest, ClearEmptiesRegistry) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add_gauge("rtopex_g", "G.", 1.0);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.render(), "");
}

}  // namespace
}  // namespace rtopex::obs
