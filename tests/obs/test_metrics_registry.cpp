#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/prom_lint.hpp"

namespace rtopex::obs {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(MetricsRegistryTest, RendersCounterAndGauge) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_subframes_total", "Subframes processed.", 42);
  reg.add_gauge("rtopex_miss_rate", "Fraction missed.", 0.25);
  const std::string text = reg.render();
  EXPECT_NE(text.find("# HELP rtopex_subframes_total Subframes processed."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rtopex_subframes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_subframes_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rtopex_miss_rate gauge"), std::string::npos);
  EXPECT_NE(text.find("rtopex_miss_rate 0.25\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelsAreRenderedAndEscaped) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_bs_total", "Per-BS.", 7, {{"bs", "3"}});
  reg.add_counter("rtopex_odd", "Escaping.", 1,
                  {{"note", "a\"b\\c\nd"}});
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_bs_total{bs=\"3\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("rtopex_odd{note=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SharedNameGetsOneHeader) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_bs_total", "Per-BS subframes.", 1, {{"bs", "0"}});
  reg.add_counter("rtopex_bs_total", "ignored duplicate help", 2,
                  {{"bs", "1"}});
  const std::string text = reg.render();
  EXPECT_EQ(count_occurrences(text, "# HELP rtopex_bs_total"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE rtopex_bs_total"), 1u);
  EXPECT_NE(text.find("rtopex_bs_total{bs=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("rtopex_bs_total{bs=\"1\"} 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramRendersCumulativeBuckets) {
  Histogram h(1.0, 1000.0, 2);
  for (const double x : {2.0, 20.0, 200.0, 200.0}) h.add(x);
  MetricsRegistry reg;
  reg.add_histogram("rtopex_latency_us", "Latency.", h);
  const std::string text = reg.render();
  EXPECT_NE(text.find("# TYPE rtopex_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_latency_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_latency_us_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("rtopex_latency_us_sum 422\n"), std::string::npos);

  // Cumulative: the le counts never decrease through the rendered series.
  std::istringstream lines(text);
  std::string line;
  double prev = 0.0;
  while (std::getline(lines, line)) {
    if (line.rfind("rtopex_latency_us_bucket", 0) != 0) continue;
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(prev, 4.0);
}

TEST(MetricsRegistryTest, EmptyHistogramStillRendersCountAndInf) {
  MetricsRegistry reg;
  reg.add_histogram("rtopex_empty_us", "Empty.", Histogram());
  const std::string text = reg.render();
  EXPECT_NE(text.find("rtopex_empty_us_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("rtopex_empty_us_count 0\n"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteRoundtripsAndFailsOnBadPath) {
  MetricsRegistry reg;
  reg.add_counter("rtopex_x_total", "X.", 5);
  const std::string path =
      ::testing::TempDir() + "/metrics_registry_test.prom";
  reg.write(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.render());
  std::remove(path.c_str());
  EXPECT_THROW(reg.write("/nonexistent-dir-xyz/file.prom"),
               std::runtime_error);
}

// --- Federation: Histogram::merge + MetricsRegistry::merge ----------------

TEST(HistogramMergeTest, MergePreservesMassAndMoments) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.add(i);
  for (int i = 101; i <= 200; ++i) b.add(i);
  const double sum_before = a.sum() + b.sum();
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.sum(), sum_before);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 200.0);
  // Merged p50 sits at the seam between the two halves (one bucket slop).
  EXPECT_NEAR(a.percentile(0.5), 100.0, 15.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 200u);
}

TEST(HistogramMergeTest, MergeRejectsLayoutMismatch) {
  Histogram a;                     // default layout
  Histogram b(1.0, 1e6, 12);      // different edges
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistryMergeTest, ExtraLabelsAppendAndOverride) {
  MetricsRegistry node;
  node.add_counter("rtopex_subframes_total", "Subframes.", 400.0);
  node.add_gauge("rtopex_util", "Utilization.", 0.5,
                 {{"node", "stale"}, {"core", "2"}});

  MetricsRegistry fleet;
  fleet.merge(node, {{"node", "0"}});
  fleet.merge(node, {{"node", "1"}});
  const std::string text = fleet.render();
  // Unlabelled samples gain the node label; pre-existing `node` labels are
  // overridden (the federator, not the producer, owns topology labels) and
  // unrelated labels survive.
  EXPECT_EQ(count_occurrences(
                text, "rtopex_subframes_total{node=\"0\"} 400"),
            1u);
  EXPECT_EQ(count_occurrences(
                text, "rtopex_subframes_total{node=\"1\"} 400"),
            1u);
  EXPECT_EQ(count_occurrences(text, "node=\"stale\""), 0u);
  EXPECT_EQ(count_occurrences(text, "core=\"2\""), 2u);
  // Distinct node labels keep the series apart: lints clean.
  EXPECT_TRUE(lint_prometheus_text(text).empty());
}

TEST(MetricsRegistryMergeTest, MergedHistogramsLintClean) {
  Histogram h;
  for (int i = 1; i <= 50; ++i) h.add(i * 10.0);
  MetricsRegistry node;
  node.add_histogram("rtopex_processing_time_us", "Processing time.", h);

  MetricsRegistry fleet;
  fleet.merge(node, {{"node", "0"}});
  fleet.merge(node, {{"node", "1"}});
  const std::string text = fleet.render();
  // One family header, two labelled bucket families, cumulative and
  // +Inf-terminated: the linter checks all of it.
  EXPECT_EQ(count_occurrences(text, "# TYPE rtopex_processing_time_us"), 1u);
  EXPECT_EQ(count_occurrences(text, "rtopex_processing_time_us_count"), 2u);
  const std::vector<std::string> problems = lint_prometheus_text(text);
  EXPECT_TRUE(problems.empty())
      << problems.size() << " lint errors, first: " << problems.front();
}

// --- The format linter itself ---------------------------------------------

TEST(PromLintTest, AcceptsACompliantExposition) {
  const std::string text =
      "# HELP rtopex_ok A counter.\n"
      "# TYPE rtopex_ok counter\n"
      "rtopex_ok{bs=\"0\"} 1\n"
      "rtopex_ok{bs=\"1\"} 2\n"
      "# HELP rtopex_h A histogram.\n"
      "# TYPE rtopex_h histogram\n"
      "rtopex_h_bucket{le=\"1\"} 3\n"
      "rtopex_h_bucket{le=\"+Inf\"} 5\n"
      "rtopex_h_sum 4.2\n"
      "rtopex_h_count 5\n";
  EXPECT_TRUE(lint_prometheus_text(text).empty());
}

TEST(PromLintTest, FlagsFormatViolations) {
  // Each fixture is one violation; the linter must name the line.
  const struct {
    const char* text;
    const char* needle;
  } fixtures[] = {
      {"2bad_name 1\n", "invalid metric name"},
      {"rtopex_x{9key=\"v\"} 1\n", "invalid label name"},
      {"rtopex_x{k=\"v} 1\n", "unterminated label value"},
      {"rtopex_x notanumber\n", "unparseable sample value"},
      {"rtopex_x 1 not_a_timestamp\n", "trailing garbage"},
      {"# TYPE rtopex_x sidecar\nrtopex_x 1\n", "unknown TYPE"},
      {"# TYPE rtopex_x gauge\n# TYPE rtopex_x gauge\nrtopex_x 1\n",
       "duplicate TYPE"},
      {"rtopex_a 1\nrtopex_b 2\nrtopex_a 3\n", "interleaved"},
      {"rtopex_a{k=\"v\"} 1\nrtopex_a{k=\"v\"} 2\n", "duplicate series"},
      {"# TYPE rtopex_h histogram\n"
       "rtopex_h_bucket{le=\"1\"} 5\n"
       "rtopex_h_bucket{le=\"2\"} 3\n"
       "rtopex_h_bucket{le=\"+Inf\"} 5\n"
       "rtopex_h_sum 1\nrtopex_h_count 5\n",
       "not cumulative"},
      {"# TYPE rtopex_h histogram\n"
       "rtopex_h_bucket{le=\"1\"} 3\n"
       "rtopex_h_sum 1\nrtopex_h_count 3\n",
       "missing its +Inf bucket"},
      {"# TYPE rtopex_h histogram\n"
       "rtopex_h_bucket{le=\"+Inf\"} 5\n"
       "rtopex_h_sum 1\nrtopex_h_count 4\n",
       "_count != +Inf bucket"},
  };
  for (const auto& f : fixtures) {
    const std::vector<std::string> problems = lint_prometheus_text(f.text);
    ASSERT_FALSE(problems.empty()) << "accepted: " << f.text;
    bool found = false;
    for (const std::string& p : problems)
      if (p.find(f.needle) != std::string::npos) found = true;
    EXPECT_TRUE(found) << "for \"" << f.text << "\" expected \"" << f.needle
                       << "\", got: " << problems.front();
  }
}

TEST(PromLintTest, RegistryRenderIsAlwaysCompliant) {
  // The end-to-end property every snapshot path relies on: whatever a
  // producer puts into the registry (odd label values included), render()
  // emits a lint-clean exposition.
  Histogram h;
  for (int i = 0; i < 32; ++i) h.add(i * 3.0);
  MetricsRegistry reg;
  reg.add_counter("rtopex_events_total", "Events.", 12,
                  {{"kind", "weird \"quoted\" \\ value\nwith newline"}});
  reg.add_gauge("rtopex_level", "Level.", -3.5, {{"bs", "7"}});
  reg.add_histogram("rtopex_lat_us", "Latency.", h, {{"node", "2"}});
  const std::vector<std::string> problems = lint_prometheus_text(reg.render());
  EXPECT_TRUE(problems.empty())
      << problems.size() << " lint errors, first: " << problems.front();
}

TEST(MetricsRegistryTest, ClearEmptiesRegistry) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add_gauge("rtopex_g", "G.", 1.0);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.render(), "");
}

}  // namespace
}  // namespace rtopex::obs
