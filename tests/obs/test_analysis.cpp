// Deadline-miss postmortem engine (obs/analysis) tests:
//  * golden hand-built event streams, one per taxonomy cause, checking the
//    reconstructed path, the attributed cause and the dominant overage;
//  * determinism: the verdicts are identical regardless of event order in
//    the store, and bit-identical across repeated analyses;
//  * CSV round-trip: write_trace_csv -> load_trace_csv preserves the
//    events and the analysis verbatim;
//  * a seeded, faulted fig15-style simulation run meeting the accuracy
//    bar (>= 95% of misses attributed to a non-unknown cause) and agreeing
//    with the scheduler's own metrics and timeline;
//  * a sim-vs-runtime differential: both substrates' traces reconstruct to
//    the same fault classification their own counters report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "runtime/node_runtime.hpp"
#include "sched/partitioned.hpp"

namespace rtopex {
namespace {

using obs::EventKind;
using obs::Stage;
using obs::TraceEvent;
using obs::TraceStore;
namespace analysis = obs::analysis;
using analysis::MissCause;

constexpr TimePoint us(std::int64_t n) { return n * 1000; }

std::uint32_t pay(std::int64_t ns) { return obs::clamp_payload_ns(ns); }

/// Hand-built event stream. Events are appended in emission order; the
/// analyzer must not care (it re-sorts by timestamp).
struct StreamBuilder {
  TraceStore store;

  void ev(TimePoint ts, EventKind kind, std::uint32_t index,
          std::uint32_t a = 0, std::uint32_t b = 0, unsigned core = 0,
          Stage stage = Stage::kNone, std::uint32_t bs = 0) {
    store.events.push_back({ts, bs, index, a, b,
                            static_cast<std::uint32_t>(core), kind, stage});
  }

  /// Fronthaul delivery: deadline = arrival + budget_left.
  void arrival(std::uint32_t index, TimePoint at, Duration budget_left,
               Duration transport, unsigned core = 0) {
    ev(at, EventKind::kArrival, index, pay(budget_left), pay(transport), core);
  }

  void stage_span(std::uint32_t index, Stage stage, TimePoint begin,
                  TimePoint end, Duration expected, std::uint32_t iters = 0,
                  unsigned core = 0) {
    ev(begin, EventKind::kStageBegin, index, pay(expected), iters, core,
       stage);
    ev(end, EventKind::kStageEnd, index, 0, 0, core, stage);
  }
};

std::uint64_t count(const analysis::AnalysisReport& rep, MissCause cause) {
  return rep.cause_counts[static_cast<unsigned>(cause)];
}

// ---------------------------------------------------------------------------
// Golden streams: one subframe per test, one taxonomy cause each.

TEST(AnalysisGolden, CompletedSubframeAttributesNone) {
  StreamBuilder sb;
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(520), EventKind::kSubframeBegin, 0);
  sb.stage_span(0, Stage::kFft, us(520), us(620), us(100));
  sb.stage_span(0, Stage::kDemod, us(620), us(820), us(200));
  sb.stage_span(0, Stage::kDecode, us(820), us(1220), us(400), 4);
  sb.ev(us(1220), EventKind::kSubframeEnd, 0, 0, 4);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(rep.subframes, 1u);
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.misses, 0u);
  EXPECT_EQ(count(rep, MissCause::kNone), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  const analysis::SubframeAnalysis& sf = rep.detail[0];
  EXPECT_EQ(sf.cause, MissCause::kNone);
  EXPECT_EQ(sf.queue_ns, us(20));
  EXPECT_EQ(sf.slack_ns, us(780));
  EXPECT_EQ(sf.radio_time, us(0));
  ASSERT_EQ(rep.cores.size(), 1u);
  EXPECT_EQ(rep.cores[0].busy_ns, us(700));
}

TEST(AnalysisGolden, LateArrivalIsFronthaulLate) {
  StreamBuilder sb;
  // Delivered 300 us past the deadline; transport took 900 us.
  sb.ev(us(2300), EventKind::kLate, 0, pay(us(300)), pay(us(900)));

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(rep.misses, 1u);
  EXPECT_EQ(rep.late, 1u);
  EXPECT_EQ(count(rep, MissCause::kFronthaulLate), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  EXPECT_EQ(rep.detail[0].dominant_over_ns, us(300));
}

TEST(AnalysisGolden, TransportOverageIsCloudTail) {
  StreamBuilder sb;
  // Transport took 900 us against the 500 us nominal; every stage ran
  // exactly at its estimate, yet the subframe finished 100 us past the
  // deadline: the 400 us transport overage is the only overrun.
  sb.arrival(0, us(900), us(1100), us(900));
  sb.ev(us(900), EventKind::kSubframeBegin, 0);
  sb.stage_span(0, Stage::kFft, us(900), us(1000), us(100));
  sb.stage_span(0, Stage::kDemod, us(1000), us(1200), us(200));
  sb.stage_span(0, Stage::kDecode, us(1200), us(2100), us(900), 4);
  sb.ev(us(2100), EventKind::kSubframeEnd, 0, 1, 4);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(rep.misses, 1u);
  EXPECT_EQ(count(rep, MissCause::kCloudTail), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  const analysis::SubframeAnalysis& sf = rep.detail[0];
  EXPECT_EQ(sf.cause, MissCause::kCloudTail);
  EXPECT_EQ(sf.dominant_over_ns, us(400));
  EXPECT_EQ(sf.slack_ns, -us(100));
  // Full critical path: transport, queue, fft, demod, decode — with the
  // end-of-path slack recorded at the last boundary.
  ASSERT_EQ(sf.path.size(), 5u);
  EXPECT_EQ(sf.path.front().kind, analysis::PathSegment::Kind::kTransport);
  EXPECT_EQ(sf.path.back().kind, analysis::PathSegment::Kind::kDecode);
  EXPECT_EQ(sf.path.back().slack_after, -us(100));
}

TEST(AnalysisGolden, QueueWaitIsQueueingBacklog) {
  StreamBuilder sb;
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(1800), EventKind::kSubframeBegin, 0);  // 1300 us in queue
  sb.stage_span(0, Stage::kFft, us(1800), us(1900), us(100));
  sb.stage_span(0, Stage::kDemod, us(1900), us(2000), us(100));
  sb.stage_span(0, Stage::kDecode, us(2000), us(2100), us(100), 4);
  sb.ev(us(2100), EventKind::kSubframeEnd, 0, 1, 4);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(count(rep, MissCause::kQueueingBacklog), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  EXPECT_EQ(rep.detail[0].dominant_over_ns, us(1300));
}

TEST(AnalysisGolden, QueueWaitAfterWatchdogIsFailoverRepartition) {
  StreamBuilder sb;
  // Same shape as the backlog case, but a watchdog fired 800 us before the
  // subframe finally started: the wait is repartition fallout.
  sb.ev(us(1000), EventKind::kWatchdogFire, 0, /*dead core=*/2, 0, 5);
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(1800), EventKind::kSubframeBegin, 0);
  sb.stage_span(0, Stage::kFft, us(1800), us(1900), us(100));
  sb.stage_span(0, Stage::kDemod, us(1900), us(2000), us(100));
  sb.stage_span(0, Stage::kDecode, us(2000), us(2100), us(100), 4);
  sb.ev(us(2100), EventKind::kSubframeEnd, 0, 1, 4);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(count(rep, MissCause::kFailoverRepartition), 1u);
  EXPECT_EQ(count(rep, MissCause::kQueueingBacklog), 0u);
}

TEST(AnalysisGolden, ExcessIterationsAreDecodeOverrun) {
  StreamBuilder sb;
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(510), EventKind::kSubframeBegin, 0);
  sb.stage_span(0, Stage::kFft, us(510), us(610), us(100));
  sb.stage_span(0, Stage::kDemod, us(610), us(810), us(200));
  // Admitted at 2 iterations / 500 us; ran 6 iterations for 1300 us.
  sb.stage_span(0, Stage::kDecode, us(810), us(2110), us(500), 2);
  sb.ev(us(2110), EventKind::kSubframeEnd, 0, 1, 6);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(count(rep, MissCause::kDecodeOverrun), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  EXPECT_EQ(rep.detail[0].dominant_over_ns, us(800));
  EXPECT_EQ(rep.detail[0].iterations_estimated, 2u);
  EXPECT_EQ(rep.detail[0].iterations_executed, 6u);
}

TEST(AnalysisGolden, RecoveryTailIsMigrationRecovery) {
  StreamBuilder sb;
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(510), EventKind::kSubframeBegin, 0);
  sb.stage_span(0, Stage::kFft, us(510), us(610), us(100));
  sb.stage_span(0, Stage::kDemod, us(610), us(810), us(200));
  // Decode overran by 740 us, of which 650 us were spent re-executing
  // offloaded subtasks locally after the host stalled (kRecovery marks the
  // local end; the tail runs to the stage end).
  sb.ev(us(810), EventKind::kStageBegin, 0, pay(us(500)), 4, 0,
        Stage::kDecode);
  sb.ev(us(900), EventKind::kOffload, 0, /*target=*/1, /*count=*/2, 0,
        Stage::kDecode);
  sb.ev(us(950), EventKind::kHostBegin, 0, /*src=*/0, 0, 1, Stage::kDecode);
  sb.ev(us(1100), EventKind::kHostEnd, 0, /*src=*/0, /*completed=*/1, 1,
        Stage::kDecode);
  sb.ev(us(1400), EventKind::kRecovery, 0, 0, /*count=*/1, 0, Stage::kDecode);
  sb.ev(us(2050), EventKind::kStageEnd, 0, 0, 0, 0, Stage::kDecode);
  sb.ev(us(2050), EventKind::kSubframeEnd, 0, 1, 4);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(count(rep, MissCause::kMigrationRecovery), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  const analysis::SubframeAnalysis& sf = rep.detail[0];
  EXPECT_EQ(sf.dominant_over_ns, us(650));
  EXPECT_EQ(sf.offloads, 1u);
  EXPECT_EQ(sf.stages[static_cast<unsigned>(Stage::kDecode)].recovery_ns,
            us(650));
  // The hosted chunk shows up as host-busy time on the remote core.
  bool found_host = false;
  for (const analysis::CoreUsage& cu : rep.cores)
    if (cu.core == 1) {
      found_host = true;
      EXPECT_EQ(cu.host_busy_ns, us(150));
    }
  EXPECT_TRUE(found_host);
}

TEST(AnalysisGolden, StageJitterIsPlatformErrorSpike) {
  StreamBuilder sb;
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(510), EventKind::kSubframeBegin, 0);
  // The FFT ran 890 us against a 100 us estimate — platform jitter, no
  // excess iterations anywhere.
  sb.stage_span(0, Stage::kFft, us(510), us(1400), us(100));
  sb.stage_span(0, Stage::kDemod, us(1400), us(1700), us(300));
  sb.stage_span(0, Stage::kDecode, us(1700), us(2100), us(400), 4);
  sb.ev(us(2100), EventKind::kSubframeEnd, 0, 1, 4);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(count(rep, MissCause::kPlatformErrorSpike), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  EXPECT_EQ(rep.detail[0].dominant_over_ns, us(790));
}

TEST(AnalysisGolden, LostSubframeIsNotAMiss) {
  StreamBuilder sb;
  sb.ev(us(0), EventKind::kLost, 0);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(rep.subframes, 1u);
  EXPECT_EQ(rep.lost, 1u);
  EXPECT_EQ(rep.misses, 0u);
  EXPECT_EQ(count(rep, MissCause::kNone), 1u);
}

TEST(AnalysisGolden, AdmissionDropBlamesTheBudgetConsumer) {
  StreamBuilder sb;
  // The slack check rejected the subframe: nothing overran an estimate,
  // but 1400 us of the budget went to queueing — the fallback blames the
  // largest absolute consumer.
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(1900), EventKind::kSubframeBegin, 0);
  sb.ev(us(1900), EventKind::kDrop, 0, 0, 0, 0, Stage::kDecode);

  const analysis::AnalysisReport rep = analysis::analyze(sb.store);
  EXPECT_EQ(rep.misses, 1u);
  EXPECT_EQ(rep.dropped, 1u);
  EXPECT_EQ(count(rep, MissCause::kQueueingBacklog), 1u);
  ASSERT_EQ(rep.detail.size(), 1u);
  EXPECT_TRUE(rep.detail[0].dropped);
  EXPECT_EQ(rep.detail[0].dominant_over_ns, us(1400));
}

// ---------------------------------------------------------------------------
// Determinism and I/O round-trips over a combined stream.

/// Several of the golden subframes merged into one store (distinct indices).
TraceStore combined_stream() {
  StreamBuilder sb;
  sb.arrival(0, us(500), us(1500), us(500));
  sb.ev(us(520), EventKind::kSubframeBegin, 0);
  sb.stage_span(0, Stage::kFft, us(520), us(620), us(100));
  sb.stage_span(0, Stage::kDemod, us(620), us(820), us(200));
  sb.stage_span(0, Stage::kDecode, us(820), us(1220), us(400), 4);
  sb.ev(us(1220), EventKind::kSubframeEnd, 0, 0, 4);

  sb.ev(us(2300), EventKind::kLate, 1, pay(us(300)), pay(us(900)));
  sb.ev(us(1000), EventKind::kLost, 2);

  sb.arrival(3, us(900), us(1100), us(900), 1);
  sb.ev(us(900), EventKind::kSubframeBegin, 3, 0, 0, 1);
  sb.stage_span(3, Stage::kFft, us(900), us(1000), us(100), 0, 1);
  sb.stage_span(3, Stage::kDemod, us(1000), us(1200), us(200), 0, 1);
  sb.stage_span(3, Stage::kDecode, us(1200), us(2100), us(900), 4, 1);
  sb.ev(us(2100), EventKind::kSubframeEnd, 3, 1, 4, 1);

  sb.arrival(4, us(500), us(1500), us(500), 2);
  sb.ev(us(1800), EventKind::kSubframeBegin, 4, 0, 0, 2);
  sb.stage_span(4, Stage::kFft, us(1800), us(1900), us(100), 0, 2);
  sb.stage_span(4, Stage::kDemod, us(1900), us(2000), us(100), 0, 2);
  sb.stage_span(4, Stage::kDecode, us(2000), us(2100), us(100), 4, 2);
  sb.ev(us(2100), EventKind::kSubframeEnd, 4, 1, 4, 2);
  return std::move(sb.store);
}

TEST(AnalysisDeterminism, EventOrderDoesNotChangeTheReport) {
  const TraceStore forward = combined_stream();
  TraceStore reversed;
  reversed.events.assign(forward.events.rbegin(), forward.events.rend());

  const analysis::AnalysisReport a = analysis::analyze(forward);
  const analysis::AnalysisReport b = analysis::analyze(reversed);
  EXPECT_EQ(analysis::summary_json(a), analysis::summary_json(b));
  ASSERT_EQ(a.detail.size(), b.detail.size());
  for (std::size_t i = 0; i < a.detail.size(); ++i) {
    EXPECT_EQ(a.detail[i].cause, b.detail[i].cause);
    EXPECT_EQ(a.detail[i].dominant_over_ns, b.detail[i].dominant_over_ns);
    EXPECT_EQ(a.detail[i].slack_ns, b.detail[i].slack_ns);
  }
  // Repeated analysis of the same store is bit-identical too.
  EXPECT_EQ(analysis::summary_json(a),
            analysis::summary_json(analysis::analyze(forward)));
}

TEST(AnalysisDeterminism, CsvRoundTripPreservesEventsAndVerdicts) {
  const TraceStore store = combined_stream();
  const std::string path = ::testing::TempDir() + "analysis_roundtrip.csv";
  obs::write_trace_csv(path, store);
  const TraceStore loaded = analysis::load_trace_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.events.size(), store.events.size());
  for (std::size_t i = 0; i < store.events.size(); ++i)
    EXPECT_EQ(loaded.events[i], store.events[i]) << "event " << i;
  EXPECT_EQ(analysis::summary_json(analysis::analyze(store)),
            analysis::summary_json(analysis::analyze(loaded)));
}

TEST(AnalysisDeterminism, MissReportCsvHasOneRowPerMiss) {
  const analysis::AnalysisReport rep = analysis::analyze(combined_stream());
  const std::string path = ::testing::TempDir() + "analysis_missreport.csv";
  analysis::write_miss_report_csv(path, rep);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::size_t lines = 0;
  for (int c; (c = std::fgetc(f)) != EOF;)
    if (c == '\n') ++lines;
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(lines, 1u + rep.misses);  // header + one row per miss
}

// ---------------------------------------------------------------------------
// Seeded faulted simulation run: the fig15-style accuracy bar.

core::ExperimentConfig faulted_sim_config() {
  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 3000;
  cfg.workload.seed = 11;
  cfg.workload.fronthaul_faults.loss_prob = 0.02;
  cfg.workload.fronthaul_faults.late_prob = 0.02;
  cfg.degrade.enabled = true;
  cfg.rtt_half = microseconds(650);  // past the knee: plenty of misses
  cfg.scheduler = core::SchedulerKind::kPartitioned;
  return cfg;
}

std::pair<TraceStore, core::ExperimentResult> run_traced(
    core::ExperimentConfig& cfg, std::span<const sim::SubframeWork> work) {
  obs::Tracer tracer(24, /*ring_capacity=*/1 << 15,
                     /*max_stored_events=*/4 << 20);
  cfg.tracer = &tracer;
  core::ExperimentResult result = core::run_scheduler(cfg, work);
  cfg.tracer = nullptr;
  return {tracer.take(), std::move(result)};
}

TEST(AnalysisSim, FaultedRunMeetsTheAttributionBar) {
  core::ExperimentConfig cfg = faulted_sim_config();
  const auto work = core::make_workload(cfg);
  auto [store, result] = run_traced(cfg, work);
  ASSERT_EQ(store.total_drops(), 0u);

  analysis::AnalyzerOptions aopts;
  aopts.nominal_transport = cfg.rtt_half;
  const analysis::AnalysisReport rep = analysis::analyze(store, aopts);

  // Every offered subframe is reconstructed, including lost/late ones.
  EXPECT_EQ(rep.subframes, 4u * 3000u);
  ASSERT_GT(rep.misses, 0u);
  // Acceptance bar: >= 95% of misses carry a non-unknown cause.
  EXPECT_LE(rep.unknown() * 20, rep.misses)
      << analysis::summary_json(rep);

  // The analyzer's counts agree with the scheduler's own accounting.
  EXPECT_EQ(rep.lost, result.metrics.resilience.lost_subframes);
  EXPECT_EQ(rep.late, result.metrics.resilience.late_arrivals);
  // deadline_misses already includes late arrivals (filter_faulted counts
  // them as misses), so the two totals must match exactly.
  EXPECT_EQ(rep.misses, result.metrics.deadline_misses);
  EXPECT_GT(rep.lost, 0u);
  EXPECT_GT(rep.late, 0u);
  EXPECT_EQ(count(rep, MissCause::kFronthaulLate), rep.late);
}

TEST(AnalysisSim, SameSeedYieldsBitIdenticalReports) {
  core::ExperimentConfig cfg = faulted_sim_config();
  const auto work = core::make_workload(cfg);
  auto [store_a, result_a] = run_traced(cfg, work);
  auto [store_b, result_b] = run_traced(cfg, work);

  analysis::AnalyzerOptions aopts;
  aopts.nominal_transport = cfg.rtt_half;
  const analysis::AnalysisReport a = analysis::analyze(store_a, aopts);
  const analysis::AnalysisReport b = analysis::analyze(store_b, aopts);
  EXPECT_EQ(analysis::summary_json(a), analysis::summary_json(b));
  ASSERT_EQ(a.detail.size(), b.detail.size());
  for (std::size_t i = 0; i < a.detail.size(); ++i) {
    EXPECT_EQ(a.detail[i].cause, b.detail[i].cause) << "subframe " << i;
    EXPECT_EQ(a.detail[i].dominant_over_ns, b.detail[i].dominant_over_ns);
  }
}

TEST(AnalysisSim, CriticalPathMatchesTheRecordedTimeline) {
  // Clean run (no faults) through the partitioned scheduler with both the
  // timeline recorder and the tracer on: for every miss, the reconstructed
  // execution span must match the recorded one within one log-scale
  // histogram bucket (growth factor g = 10^(1/24)).
  sched::PartitionedConfig pcfg;
  pcfg.rtt_half = microseconds(600);
  pcfg.record_timeline = true;
  obs::Tracer tracer(24, 1 << 15, 4 << 20);
  pcfg.tracer = &tracer;

  core::ExperimentConfig wcfg;
  wcfg.workload.num_basestations = 2;
  wcfg.workload.subframes_per_bs = 2000;
  wcfg.workload.seed = 3;
  wcfg.rtt_half = pcfg.rtt_half;
  const auto work = core::make_workload(wcfg);

  sched::PartitionedScheduler sched(2, pcfg);
  const sim::SchedulerMetrics metrics = sched.run(work);
  const TraceStore store = tracer.take();
  ASSERT_EQ(store.total_drops(), 0u);

  analysis::AnalyzerOptions aopts;
  aopts.nominal_transport = pcfg.rtt_half;
  const analysis::AnalysisReport rep = analysis::analyze(store, aopts);
  // Clean run: no fronthaul faults, and nothing stays unattributed.
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.late, 0u);
  EXPECT_EQ(rep.unknown(), 0u) << analysis::summary_json(rep);
  ASSERT_GT(rep.misses, 0u);

  std::map<std::pair<std::uint32_t, std::uint32_t>,
           const sim::SchedulerMetrics::TimelineEntry*>
      by_id;
  for (const auto& te : metrics.timeline) by_id[{te.bs, te.index}] = &te;

  const double g = std::pow(10.0, 1.0 / 24.0);
  std::size_t compared = 0;
  for (const analysis::SubframeAnalysis& sf : rep.detail) {
    if (!sf.missed || sf.lost || sf.late) continue;
    const auto it = by_id.find({sf.bs, sf.index});
    ASSERT_NE(it, by_id.end()) << "bs " << sf.bs << " sf " << sf.index;
    const auto& te = *it->second;
    EXPECT_EQ(sf.missed, te.missed);
    const double recorded = static_cast<double>(te.end - te.start);
    const double rebuilt = static_cast<double>(sf.end - sf.start);
    if (recorded <= 0.0 || rebuilt <= 0.0) continue;
    EXPECT_LE(rebuilt, recorded * g) << "bs " << sf.bs << " sf " << sf.index;
    EXPECT_GE(rebuilt, recorded / g) << "bs " << sf.bs << " sf " << sf.index;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

// ---------------------------------------------------------------------------
// Sim-vs-runtime differential: the same postmortem over the real-thread
// runtime's trace agrees with the runtime's own fault counters, exactly as
// it does with the simulator's (checked above).

TEST(AnalysisRuntime, RuntimeTraceAgreesWithItsOwnCounters) {
  runtime::RuntimeConfig cfg;
  cfg.mode = runtime::RuntimeMode::kRtOpex;
  cfg.num_basestations = 2;
  cfg.cores_per_bs = 2;
  cfg.subframes_per_bs = 12;
  // Relaxed pacing so a loaded CI host keeps up (see the differential
  // suite); the fault classification is pacing-independent.
  cfg.subframe_period = milliseconds(30);
  cfg.deadline_budget = milliseconds(60);
  cfg.rtt_half = microseconds(500);
  cfg.mcs_cycle = {16, 10};
  cfg.phy.num_antennas = 2;
  cfg.phy.bandwidth = phy::Bandwidth::kMHz5;
  cfg.enforce_deadlines = false;
  cfg.seed = 5;
  cfg.trace.enabled = true;
  cfg.trace.ring_capacity = 1 << 14;
  // Late deliveries are delayed far past the budget so every one of them
  // is a genuine late arrival, not merely a slow transport.
  cfg.resilience.fronthaul_faults.loss_prob = 0.25;
  cfg.resilience.fronthaul_faults.late_prob = 0.25;
  cfg.resilience.fronthaul_faults.late_delay_mean = milliseconds(200);
  cfg.resilience.fronthaul_faults.late_delay_max = milliseconds(400);

  runtime::NodeRuntime rt(cfg);
  const runtime::RuntimeReport report = rt.run();

  analysis::AnalyzerOptions aopts;
  aopts.budget = cfg.deadline_budget;
  aopts.nominal_transport = cfg.rtt_half;
  const analysis::AnalysisReport rep = analysis::analyze(report.trace, aopts);

  EXPECT_EQ(rep.subframes, 24u);
  EXPECT_EQ(rep.lost, report.resilience.lost_subframes);
  EXPECT_EQ(rep.late, report.resilience.late_arrivals);
  EXPECT_GT(rep.lost + rep.late, 0u);
  EXPECT_EQ(count(rep, MissCause::kFronthaulLate), rep.late);
  // Wall-clock jitter may add misses beyond the injected faults, but every
  // miss must still land on a cause.
  EXPECT_EQ(rep.unknown(), 0u) << analysis::summary_json(rep);
}

// ---------------------------------------------------------------------------
// Alert windows: the postmortem side of the health layer. kAlert /
// kAlertClear events (scope id in bs, rule in index, severity|scope_kind in
// a, milli-value in b) become AlertWindows with the misses inside each
// window linked and cause-attributed.

TEST(AnalysisAlerts, WindowsLinkMissesByTimeAndScope) {
  StreamBuilder sb;
  // Four late deliveries (cause kFronthaulLate, linkage time = deadline =
  // ts - over) and one lost subframe (linkage time = radio time).
  sb.ev(us(100), EventKind::kLate, 0, pay(us(10)), pay(us(900)));
  sb.ev(us(600), EventKind::kLate, 1, pay(us(10)), pay(us(900)));
  sb.ev(us(700), EventKind::kLate, 2, pay(us(10)), pay(us(900)), 0,
        Stage::kNone, /*bs=*/1);
  sb.ev(us(2500), EventKind::kLate, 3, pay(us(10)), pay(us(900)));
  sb.ev(us(1500), EventKind::kLost, 4, 0, 0, 0, Stage::kNone, /*bs=*/1);

  // A node-scope page over [1000 us, 2000 us] and a bs-1-scope warn that
  // never clears. a = severity | (scope_kind << 8); b = value * 1000.
  sb.ev(us(1000), EventKind::kAlert, /*rule=*/0, 2u | (1u << 8),
        /*b=*/16300, /*core=*/5, Stage::kNone, /*scope_id=*/0);
  sb.ev(us(1000), EventKind::kAlert, /*rule=*/1, 1u | (2u << 8),
        /*b=*/4200, /*core=*/5, Stage::kNone, /*scope_id=*/1);
  sb.ev(us(2000), EventKind::kAlertClear, /*rule=*/0, 1u << 8, 0,
        /*core=*/5, Stage::kNone, /*scope_id=*/0);

  analysis::AnalyzerOptions options;
  options.alert_lookback = us(500);
  const analysis::AnalysisReport rep = analysis::analyze(sb.store, options);

  // Alert events are global: no phantom subframes keyed on (scope, rule).
  EXPECT_EQ(rep.subframes, 5u);
  ASSERT_EQ(rep.alerts.size(), 2u);

  // Node-scope page: window [fired - lookback, cleared] = [500, 2000] us.
  // Exported traces carry no track->node map, so node windows link
  // trace-wide: the two in-window lates plus the lost subframe; the lates
  // at 90 us (before) and 2490 us (after clear) stay out.
  const analysis::AlertWindow& page = rep.alerts[0];
  EXPECT_EQ(page.rule, 0u);
  EXPECT_EQ(page.severity, 2u);
  EXPECT_EQ(page.scope_kind, 1u);
  EXPECT_EQ(page.scope_id, 0u);
  EXPECT_EQ(page.fired_at, us(1000));
  EXPECT_EQ(page.cleared_at, us(2000));
  EXPECT_NEAR(page.value, 16.3, 1e-9);
  EXPECT_EQ(page.misses_in_window, 3u);
  EXPECT_EQ(page.dominant_cause, MissCause::kFronthaulLate);

  // bs-scope warn: filtered to bs 1, still firing, so the window runs to
  // the end of the trace — the bs-1 late and the bs-1 loss, nothing else.
  const analysis::AlertWindow& warn = rep.alerts[1];
  EXPECT_EQ(warn.severity, 1u);
  EXPECT_EQ(warn.scope_kind, 2u);
  EXPECT_EQ(warn.scope_id, 1u);
  EXPECT_EQ(warn.cleared_at, -1);
  EXPECT_NEAR(warn.value, 4.2, 1e-9);
  EXPECT_EQ(warn.misses_in_window, 2u);

  // The rollups surface the stream: summary counts and the snapshot
  // counters both say two alerts, one of page severity.
  const std::string json = analysis::summary_json(rep);
  EXPECT_NE(json.find("\"alerts\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"page_alerts\":1"), std::string::npos) << json;
}

TEST(AnalysisAlerts, AlertStreamSurvivesTheCsvRoundTrip) {
  StreamBuilder sb;
  sb.ev(us(600), EventKind::kLate, 0, pay(us(10)), pay(us(900)));
  sb.ev(us(1000), EventKind::kAlert, 0, 2u | (1u << 8), 16300, 5);
  sb.ev(us(2000), EventKind::kAlertClear, 0, 1u << 8, 0, 5);
  const std::string path = ::testing::TempDir() + "analysis_alerts.csv";
  obs::write_trace_csv(path, sb.store);
  const TraceStore loaded = analysis::load_trace_csv(path);
  std::remove(path.c_str());

  analysis::AnalyzerOptions options;
  options.alert_lookback = us(500);
  const analysis::AnalysisReport a = analysis::analyze(sb.store, options);
  const analysis::AnalysisReport b = analysis::analyze(loaded, options);
  ASSERT_EQ(b.alerts.size(), 1u);
  EXPECT_EQ(a.alerts[0].fired_at, b.alerts[0].fired_at);
  EXPECT_EQ(a.alerts[0].cleared_at, b.alerts[0].cleared_at);
  EXPECT_EQ(a.alerts[0].misses_in_window, b.alerts[0].misses_in_window);
  EXPECT_EQ(analysis::summary_json(a), analysis::summary_json(b));
}

TEST(AnalysisAlerts, CsvV3RestoresThePerTrackDropBreakdown) {
  const TraceStore store = [] {
    TraceStore s = combined_stream();
    s.ring_drops = 5;
    s.store_drops = 2;
    s.ring_drops_per_track = {4, 0, 1};
    return s;
  }();
  const std::string path = ::testing::TempDir() + "analysis_v3_drops.csv";
  obs::write_trace_csv(path, store);
  const TraceStore loaded = analysis::load_trace_csv(path);
  std::remove(path.c_str());

  // The kind-254 rows restore the per-ring loss breakdown; the footer
  // restores the totals; neither leaks into the event stream.
  EXPECT_EQ(loaded.events.size(), store.events.size());
  EXPECT_EQ(loaded.ring_drops, 5u);
  EXPECT_EQ(loaded.store_drops, 2u);
  ASSERT_EQ(loaded.ring_drops_per_track.size(), 3u);
  EXPECT_EQ(loaded.ring_drops_per_track, store.ring_drops_per_track);
  // And the human renderer names the lossy tracks from the breakdown.
  const std::string warning = obs::describe_trace_drops(loaded);
  EXPECT_NE(warning.find("0=4"), std::string::npos) << warning;
  EXPECT_NE(warning.find("2=1"), std::string::npos) << warning;
}

}  // namespace
}  // namespace rtopex
