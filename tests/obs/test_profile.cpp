// Continuous-profiling layer: backend resolution (kAuto falls back to
// software wherever perf is denied), structural parity between the perf
// and software span streams, deterministic folded/golden output under the
// synthetic backend + virtual clock, drop accounting on slab/depth
// overflow, aggregation cuts, and a multi-track concurrency hammer for the
// TSan leg.
#include "obs/profile/profile.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile/profile_report.hpp"

namespace rtopex::obs::profile {
namespace {

/// Synthetic counter source: every read advances cycles by 100,
/// instructions by 200, LLC misses by 1 and cpu time by 50 ns, so span
/// deltas are exact multiples of the number of reads in between.
struct SyntheticCounter {
  std::uint64_t reads = 0;
  Counters operator()() {
    ++reads;
    Counters c;
    c.cycles = 100 * reads;
    c.instructions = 200 * reads;
    c.llc_misses = reads;
    c.cpu_time_ns = 50 * reads;
    return c;
  }
};

ProfileConfig synthetic_config(SyntheticCounter& counter) {
  ProfileConfig cfg;
  cfg.enabled = true;
  cfg.backend = Backend::kSynthetic;
  cfg.synthetic_read = [&counter] { return counter(); };
  return cfg;
}

TEST(Profiler, AutoResolvesToPerfExactlyWhenAvailable) {
  ProfileConfig cfg;
  cfg.enabled = true;
  cfg.backend = Backend::kAuto;
  Profiler p(1, cfg);
  EXPECT_EQ(p.backend(),
            perf_available() ? Backend::kPerf : Backend::kSoftware);
}

TEST(Profiler, SoftwareBackendFillsSoftwareCountersOnly) {
  ProfileConfig cfg;
  cfg.enabled = true;
  cfg.backend = Backend::kSoftware;
  Profiler p(1, cfg);

  const auto token = p.begin(0, "work");
  // Burn enough cpu for CLOCK_THREAD_CPUTIME_ID to tick.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 1e-9;
  p.end(0, token);

  const ProfileStore store = p.take();
  ASSERT_EQ(store.samples.size(), 1u);
  EXPECT_EQ(store.backend, Backend::kSoftware);
  const ProfileSample& s = store.samples[0];
  EXPECT_GT(s.delta.cpu_time_ns, 0u);
  EXPECT_EQ(s.delta.cycles, 0u);  // hardware fields stay zero.
  EXPECT_EQ(s.delta.instructions, 0u);
  ASSERT_EQ(s.depth, 1u);
  EXPECT_STREQ(s.frames[0], "work");
}

TEST(Profiler, PerfAndSoftwareSpanStreamsAreStructurallyIdentical) {
  // The fallback contract: consumers see the same span structure (paths,
  // stages, payloads, nesting) whichever backend sampled. Drive the same
  // span program through a software profiler and through kAuto (perf where
  // the host allows it, software otherwise) and diff everything but the
  // counter values.
  const auto drive = [](Profiler& p) {
    const auto sf = p.begin(0, "subframe", Stage::kNone, /*bs=*/3,
                            /*index=*/7);
    const auto fft = p.begin(0, "fft", Stage::kFft, 3, 7);
    p.end(0, fft, /*a=*/128);
    const auto dec = p.begin(0, "decode", Stage::kDecode, 3, 7);
    p.end(0, dec, pack_decode_regressors(6, 2, 27), pack_decode_load(12, 3));
    p.end(0, sf);
  };

  ProfileConfig sw;
  sw.enabled = true;
  sw.backend = Backend::kSoftware;
  Profiler p_sw(1, sw);
  drive(p_sw);

  ProfileConfig autod;
  autod.enabled = true;
  autod.backend = Backend::kAuto;
  Profiler p_auto(1, autod);
  drive(p_auto);

  const ProfileStore a = p_sw.take();
  const ProfileStore b = p_auto.take();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const ProfileSample& x = a.samples[i];
    const ProfileSample& y = b.samples[i];
    EXPECT_EQ(x.depth, y.depth);
    for (unsigned d = 0; d < x.depth; ++d)
      EXPECT_STREQ(x.frames[d], y.frames[d]);
    EXPECT_EQ(x.stage, y.stage);
    EXPECT_EQ(x.bs, y.bs);
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.a, y.a);
    EXPECT_EQ(x.b, y.b);
  }
  // Both aggregate to the same path set.
  const ProfileReport ra = aggregate(a);
  const ProfileReport rb = aggregate(b);
  ASSERT_EQ(ra.by_path.size(), rb.by_path.size());
  auto ia = ra.by_path.begin();
  for (const auto& [path, agg] : rb.by_path) {
    EXPECT_EQ(ia->first, path);
    EXPECT_EQ(ia->second.spans, agg.spans);
    ++ia;
  }
}

TEST(Profiler, SyntheticFoldedOutputIsGolden) {
  // Virtual clock + synthetic counters: the folded export is byte-exact.
  // Read sequence: sf begin (100), fft begin (200), fft end (300),
  // dec begin (400), dec end (500), sf end (600) — cycles deltas:
  // fft = 100, dec = 100, subframe = 500 inclusive. Self cost subtracts
  // the children: subframe = 300.
  SyntheticCounter counter;
  Profiler p(1, synthetic_config(counter));
  TimePoint vclock = 0;
  p.set_clock([&vclock] { return vclock += 1000; });

  const auto sf = p.begin(0, "subframe");
  const auto fft = p.begin(0, "fft", Stage::kFft);
  p.end(0, fft);
  const auto dec = p.begin(0, "decode", Stage::kDecode);
  p.end(0, dec);
  p.end(0, sf);

  const ProfileStore store = p.take();
  ASSERT_EQ(store.samples.size(), 3u);
  EXPECT_EQ(folded(store),
            "subframe 300\n"
            "subframe;decode 100\n"
            "subframe;fft 100\n");

  // Same program again: identical folded bytes (determinism, not luck).
  SyntheticCounter counter2;
  Profiler p2(1, synthetic_config(counter2));
  TimePoint vclock2 = 0;
  p2.set_clock([&vclock2] { return vclock2 += 1000; });
  const auto sf2 = p2.begin(0, "subframe");
  const auto fft2 = p2.begin(0, "fft", Stage::kFft);
  p2.end(0, fft2);
  const auto dec2 = p2.begin(0, "decode", Stage::kDecode);
  p2.end(0, dec2);
  p2.end(0, sf2);
  EXPECT_EQ(folded(p2.take()), folded(store));
}

TEST(Profiler, AggregateCutsAndCounterTracks) {
  SyntheticCounter counter;
  Profiler p(2, synthetic_config(counter));
  TimePoint vclock = 0;
  p.set_clock([&vclock] { return vclock += 500; });

  // Two tracks, distinct stages and basestations.
  const auto t0 = p.begin(0, "fft", Stage::kFft, /*bs=*/0);
  p.end(0, t0);
  const auto t1 = p.begin(1, "decode", Stage::kDecode, /*bs=*/1);
  p.end(1, t1);

  const ProfileStore store = p.take();
  const ProfileReport report = aggregate(store);
  EXPECT_EQ(report.total.spans, 2u);
  ASSERT_EQ(report.by_stage_core.size(), 2u);
  EXPECT_EQ(report.by_stage_core.count({Stage::kFft, 0u}), 1u);
  EXPECT_EQ(report.by_stage_core.count({Stage::kDecode, 1u}), 1u);
  ASSERT_EQ(report.by_stage_bs.size(), 2u);
  EXPECT_EQ(report.by_stage_bs.count({Stage::kDecode, 1u}), 1u);

  // Synthetic deltas carry cycles, so each core gets an IPC lane with one
  // point per stage-tagged span.
  const auto tracks = counter_tracks(store);
  std::size_t ipc_lanes = 0, points = 0;
  for (const auto& t : tracks)
    if (t.name.find("IPC") != std::string::npos) {
      ++ipc_lanes;
      points += t.points.size();
    }
  EXPECT_EQ(ipc_lanes, 2u);
  EXPECT_EQ(points, 2u);

  // The report renders without throwing and names the backend.
  const std::string text = render_report(report);
  EXPECT_NE(text.find("synthetic"), std::string::npos);
}

TEST(Profiler, DropsOnFullSlabAndDepthOverflowAndTakeResets) {
  SyntheticCounter counter;
  ProfileConfig cfg = synthetic_config(counter);
  cfg.max_samples_per_track = 2;
  Profiler p(1, cfg);

  for (int i = 0; i < 4; ++i) {
    const auto t = p.begin(0, "span");
    p.end(0, t);
  }
  EXPECT_EQ(p.total_drops(), 2u);

  ProfileStore store = p.take();
  EXPECT_EQ(store.samples.size(), 2u);
  EXPECT_EQ(store.drops, 2u);

  // take() reset the slab and the drop counter.
  EXPECT_EQ(p.total_drops(), 0u);
  const auto t = p.begin(0, "again");
  p.end(0, t);
  store = p.take();
  EXPECT_EQ(store.samples.size(), 1u);
  EXPECT_EQ(store.drops, 0u);

  // Depth overflow: begins past kMaxSpanDepth drop, their ends are no-ops,
  // and the in-range spans still close cleanly.
  Profiler deep(1, synthetic_config(counter));
  std::vector<Profiler::SpanToken> tokens;
  for (unsigned d = 0; d < kMaxSpanDepth + 2; ++d)
    tokens.push_back(deep.begin(0, "deep"));
  for (auto it = tokens.rbegin(); it != tokens.rend(); ++it)
    deep.end(0, *it);
  const ProfileStore deep_store = deep.take();
  EXPECT_EQ(deep_store.samples.size(), kMaxSpanDepth);
  EXPECT_EQ(deep_store.drops, 2u);
}

TEST(Profiler, ProfileSpanRaiiAndNullProfilerAreSafe) {
  SyntheticCounter counter;
  Profiler p(1, synthetic_config(counter));
  {
    ProfileSpan span(&p, 0, "outer");
    ProfileSpan inner(&p, 0, "inner", Stage::kDemod);
    inner.set_payload(11, 22);
  }
  { ProfileSpan noop(nullptr, 0, "ignored"); }
  const ProfileStore store = p.take();
  ASSERT_EQ(store.samples.size(), 2u);
  EXPECT_STREQ(store.samples[0].frames[1], "inner");
  EXPECT_EQ(store.samples[0].a, 11u);
  EXPECT_EQ(store.samples[0].b, 22u);
  EXPECT_STREQ(store.samples[1].frames[0], "outer");
}

TEST(Profiler, ConcurrentTracksHammer) {
  // One producer thread per track, all spinning begin/end concurrently —
  // the SPSC-per-track contract must hold under TSan with zero cross-track
  // interference and exact per-track sample counts.
  constexpr unsigned kTracks = 4;
  constexpr int kSpansPerTrack = 2000;
  ProfileConfig cfg;
  cfg.enabled = true;
  cfg.backend = Backend::kSoftware;
  cfg.max_samples_per_track = kSpansPerTrack;
  Profiler p(kTracks, cfg);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kTracks; ++t)
    threads.emplace_back([&p, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kSpansPerTrack; ++i) {
        const auto outer = p.begin(t, "outer", Stage::kFft, t,
                                   static_cast<std::uint32_t>(i));
        const auto inner = p.begin(t, "inner", Stage::kDecode, t,
                                   static_cast<std::uint32_t>(i));
        p.end(t, inner);
        p.end(t, outer);
      }
    });
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  const ProfileStore store = p.take();
  // Each track recorded kSpansPerTrack spans then dropped the rest.
  std::uint64_t per_track[kTracks] = {};
  for (const ProfileSample& s : store.samples) {
    ASSERT_LT(s.core, kTracks);
    ++per_track[s.core];
  }
  for (unsigned t = 0; t < kTracks; ++t)
    EXPECT_EQ(per_track[t], cfg.max_samples_per_track);
  EXPECT_EQ(store.drops,
            kTracks * (2ull * kSpansPerTrack - cfg.max_samples_per_track));
}

}  // namespace
}  // namespace rtopex::obs::profile
