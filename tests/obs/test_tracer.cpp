#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rtopex::obs {
namespace {

TraceEvent make_event(std::uint32_t core, std::uint32_t seq) {
  TraceEvent ev;
  ev.ts = static_cast<TimePoint>(seq);
  ev.core = core;
  ev.index = seq;
  ev.kind = EventKind::kSubframeBegin;
  return ev;
}

TEST(TracerTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(Tracer(0), std::invalid_argument);
  EXPECT_THROW(Tracer(2, 0), std::invalid_argument);
}

TEST(TracerTest, EmitCollectRoundtripPreservesOrder) {
  Tracer tracer(2, 64);
  for (std::uint32_t i = 0; i < 10; ++i) tracer.emit(make_event(0, i));
  for (std::uint32_t i = 0; i < 5; ++i) tracer.emit(make_event(1, 100 + i));
  EXPECT_EQ(tracer.collect(), 15u);
  const TraceStore& store = tracer.store();
  ASSERT_EQ(store.events.size(), 15u);
  // Per-track FIFO order survives the drain.
  std::uint32_t last0 = 0, last1 = 0;
  bool first0 = true, first1 = true;
  for (const auto& ev : store.events) {
    auto& last = ev.core == 0 ? last0 : last1;
    auto& first = ev.core == 0 ? first0 : first1;
    if (!first) {
      EXPECT_GT(ev.index, last);
    }
    last = ev.index;
    first = false;
  }
  EXPECT_EQ(store.total_drops(), 0u);
}

TEST(TracerTest, EmitNowStampsInstalledClock) {
  Tracer tracer(1, 16);
  TimePoint now = 1234;
  tracer.set_clock([&now] { return now; });
  tracer.emit_now(make_event(0, 0));
  now = 5678;
  tracer.emit_now(make_event(0, 1));
  tracer.collect();
  ASSERT_EQ(tracer.store().events.size(), 2u);
  EXPECT_EQ(tracer.store().events[0].ts, 1234);
  EXPECT_EQ(tracer.store().events[1].ts, 5678);
}

TEST(TracerTest, FullRingDropsAndAccounts) {
  // Capacity is rounded up to a power of two and one slot is sacrificed,
  // so don't assume an exact fill point — assert conservation instead.
  const std::size_t kEmitted = 1000;
  Tracer tracer(1, 32);
  for (std::uint32_t i = 0; i < kEmitted; ++i) tracer.emit(make_event(0, i));
  EXPECT_GT(tracer.drops(0), 0u);
  const TraceStore store = tracer.take();
  EXPECT_EQ(store.events.size() + store.ring_drops, kEmitted);
  // Survivors are the oldest events, still in order.
  for (std::size_t i = 0; i < store.events.size(); ++i)
    EXPECT_EQ(store.events[i].index, i);
}

TEST(TracerTest, WraparoundKeepsStreamIntactWhenDrained) {
  // Ring capacity 8 but drained every 4 events: no drops, full stream.
  Tracer tracer(1, 8);
  std::size_t collected = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    tracer.emit(make_event(0, i));
    if (i % 4 == 3) collected += tracer.collect();
  }
  collected += tracer.collect();
  EXPECT_EQ(collected, 1000u);
  EXPECT_EQ(tracer.drops(0), 0u);
  const TraceStore& store = tracer.store();
  ASSERT_EQ(store.events.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i)
    EXPECT_EQ(store.events[i].index, i);
}

TEST(TracerTest, BoundedStoreAccountsOverflow) {
  Tracer tracer(1, 64, /*max_stored_events=*/10);
  for (std::uint32_t i = 0; i < 30; ++i) tracer.emit(make_event(0, i));
  tracer.collect();
  const TraceStore& store = tracer.store();
  EXPECT_EQ(store.events.size(), 10u);
  EXPECT_EQ(store.store_drops, 20u);
}

TEST(TracerTest, EmitToUnknownTrackThrows) {
  Tracer tracer(2);
  EXPECT_THROW(tracer.emit(make_event(2, 0)), std::out_of_range);
}

TEST(TracerTest, TakeLeavesTracerEmpty) {
  Tracer tracer(1);
  tracer.emit(make_event(0, 0));
  const TraceStore first = tracer.take();
  EXPECT_EQ(first.events.size(), 1u);
  const TraceStore second = tracer.take();
  EXPECT_TRUE(second.events.empty());
}

// The concurrency contract under load: one producer thread per track
// hammering emit() while a single collector drains — per-track sequences
// must arrive gap-checked in order, and every emitted event is either
// stored or accounted as a drop. Runs under the TSan preset as well.
TEST(TracerHammerTest, SpscProducersSingleCollector) {
  constexpr unsigned kTracks = 4;
  constexpr std::uint32_t kPerTrack = 50000;
  // Small rings force constant wraparound and some overflow drops.
  Tracer tracer(kTracks, 64);

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kTracks);
  for (unsigned t = 0; t < kTracks; ++t) {
    producers.emplace_back([&tracer, t] {
      for (std::uint32_t i = 0; i < kPerTrack; ++i)
        tracer.emit(make_event(t, i));
    });
  }
  std::thread collector([&tracer, &done] {
    while (!done.load(std::memory_order_acquire)) {
      tracer.collect();
      std::this_thread::yield();
    }
  });
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  collector.join();

  const TraceStore store = tracer.take();
  // Conservation: stored + ring drops == emitted (store is unbounded here).
  EXPECT_EQ(store.store_drops, 0u);
  EXPECT_EQ(store.events.size() + store.ring_drops,
            static_cast<std::size_t>(kTracks) * kPerTrack);

  // Per-track sequence numbers must be strictly increasing (drops create
  // gaps, never reordering or duplication).
  std::vector<std::int64_t> last(kTracks, -1);
  std::vector<std::size_t> received(kTracks, 0);
  for (const auto& ev : store.events) {
    ASSERT_LT(ev.core, kTracks);
    EXPECT_GT(static_cast<std::int64_t>(ev.index), last[ev.core]);
    last[ev.core] = static_cast<std::int64_t>(ev.index);
    ++received[ev.core];
  }
  // Per-track conservation as well.
  for (unsigned t = 0; t < kTracks; ++t)
    EXPECT_EQ(received[t] + tracer.drops(t), kPerTrack) << "track " << t;
}

}  // namespace
}  // namespace rtopex::obs
