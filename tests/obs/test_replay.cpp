// What-if trace replay engine: workload capture/recovery round-trips, the
// self-replay identity anchor (replaying a captured run under its original
// scheduler/config reproduces the original per-cause miss counts exactly,
// including across a CSV round-trip), counterfactual determinism, and the
// trace-CSV loader's corruption handling (truncated files, unknown
// versions, bad footers).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "obs/analysis/replay.hpp"
#include "obs/chrome_trace.hpp"

namespace rtopex {
namespace {

using obs::TraceStore;
namespace analysis = obs::analysis;

// Fig. 15-style faulted partitioned run (matches the postmortem suite's
// accuracy-bar config): enough misses, losses, late arrivals and degrades
// to make identity a demanding check.
core::ExperimentConfig faulted_sim_config() {
  core::ExperimentConfig cfg;
  cfg.workload.num_basestations = 4;
  cfg.workload.subframes_per_bs = 3000;
  cfg.workload.seed = 11;
  cfg.workload.fronthaul_faults.loss_prob = 0.02;
  cfg.workload.fronthaul_faults.late_prob = 0.02;
  cfg.degrade.enabled = true;
  cfg.rtt_half = microseconds(650);
  cfg.scheduler = core::SchedulerKind::kPartitioned;
  return cfg;
}

/// Runs `cfg` over `work` with workload capture + tracing; returns the
/// drained store (capture events and scheduler events interleaved).
TraceStore run_captured(core::ExperimentConfig& cfg,
                        std::span<const sim::SubframeWork> work) {
  obs::Tracer tracer(24, /*ring_capacity=*/1 << 15,
                     /*max_stored_events=*/4 << 20);
  analysis::capture_workload(tracer, work);
  cfg.tracer = &tracer;
  core::run_scheduler(cfg, work);
  cfg.tracer = nullptr;
  return tracer.take();
}

analysis::ReplayConfig matching_replay_config(
    const core::ExperimentConfig& cfg) {
  analysis::ReplayConfig rcfg;
  rcfg.policy = analysis::ReplayConfig::Policy::kPartitioned;
  rcfg.partitioned.rtt_half = cfg.rtt_half;
  rcfg.partitioned.degrade = cfg.degrade;
  rcfg.rtopex.rtt_half = cfg.rtt_half;
  rcfg.rtopex.degrade = cfg.degrade;
  rcfg.analyzer.nominal_transport = cfg.rtt_half;
  return rcfg;
}

TEST(ReplayRecover, CaptureRoundTripsEverySubframeField) {
  core::ExperimentConfig cfg = faulted_sim_config();
  cfg.workload.subframes_per_bs = 200;
  const auto work = core::make_workload(cfg);

  obs::Tracer tracer(2, 1 << 15, 4 << 20);
  analysis::capture_workload(tracer, work);
  const auto recovered = analysis::recover_workload(tracer.take());

  ASSERT_EQ(recovered.size(), work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    const sim::SubframeWork& a = work[i];
    const sim::SubframeWork& b = recovered[i];
    SCOPED_TRACE("subframe " + std::to_string(i));
    EXPECT_EQ(a.bs, b.bs);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.radio_time, b.radio_time);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.mcs, b.mcs);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.lm, b.lm);
    EXPECT_EQ(a.decodable, b.decodable);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.costs.fft, b.costs.fft);
    EXPECT_EQ(a.costs.demod, b.costs.demod);
    EXPECT_EQ(a.costs.decode, b.costs.decode);
    EXPECT_EQ(a.costs.fft_subtasks, b.costs.fft_subtasks);
    EXPECT_EQ(a.costs.fft_subtask, b.costs.fft_subtask);
    EXPECT_EQ(a.costs.decode_subtasks, b.costs.decode_subtasks);
    EXPECT_EQ(a.costs.decode_subtask, b.costs.decode_subtask);
    EXPECT_EQ(a.wcet.fft, b.wcet.fft);
    EXPECT_EQ(a.wcet.demod, b.wcet.demod);
    EXPECT_EQ(a.wcet.decode, b.wcet.decode);
    EXPECT_EQ(a.wcet.fft_subtask, b.wcet.fft_subtask);
    EXPECT_EQ(a.wcet.decode_subtask, b.wcet.decode_subtask);
    EXPECT_EQ(a.decode_optimistic, b.decode_optimistic);
  }
}

TEST(ReplayIdentity, SelfReplayReproducesTheReportBitExactly) {
  core::ExperimentConfig cfg = faulted_sim_config();
  const auto work = core::make_workload(cfg);
  const TraceStore store = run_captured(cfg, work);
  ASSERT_EQ(store.total_drops(), 0u);

  const analysis::ReplayConfig rcfg = matching_replay_config(cfg);
  const analysis::AnalysisReport original =
      analysis::analyze(store, rcfg.analyzer);
  ASSERT_GT(original.misses, 0u);

  const analysis::ReplayResult replayed = analysis::replay(store, rcfg);
  const analysis::ReportDelta d =
      analysis::diff_reports(original, replayed.report);
  EXPECT_TRUE(d.empty()) << analysis::delta_json(d);
  EXPECT_EQ(analysis::summary_json(original),
            analysis::summary_json(replayed.report));
}

TEST(ReplayIdentity, IdentitySurvivesTheCsvRoundTrip) {
  core::ExperimentConfig cfg = faulted_sim_config();
  cfg.workload.subframes_per_bs = 1000;
  const auto work = core::make_workload(cfg);
  const TraceStore store = run_captured(cfg, work);

  const std::string path = ::testing::TempDir() + "replay_roundtrip.csv";
  obs::write_trace_csv(path, store);
  const TraceStore loaded = analysis::load_trace_csv(path);
  std::remove(path.c_str());

  const analysis::ReplayConfig rcfg = matching_replay_config(cfg);
  const analysis::AnalysisReport original =
      analysis::analyze(store, rcfg.analyzer);
  const analysis::ReplayResult replayed = analysis::replay(loaded, rcfg);
  const analysis::ReportDelta d =
      analysis::diff_reports(original, replayed.report);
  EXPECT_TRUE(d.empty()) << analysis::delta_json(d);
}

TEST(ReplayCounterfactual, PolicySwapIsDeterministic) {
  core::ExperimentConfig cfg = faulted_sim_config();
  cfg.workload.subframes_per_bs = 1000;
  const auto work = core::make_workload(cfg);
  const TraceStore store = run_captured(cfg, work);

  analysis::ReplayConfig rcfg = matching_replay_config(cfg);
  rcfg.policy = analysis::ReplayConfig::Policy::kRtOpex;
  const analysis::ReplayResult a = analysis::replay(store, rcfg);
  const analysis::ReplayResult b = analysis::replay(store, rcfg);
  EXPECT_TRUE(analysis::diff_reports(a.report, b.report).empty());
  EXPECT_EQ(analysis::summary_json(a.report),
            analysis::summary_json(b.report));
  EXPECT_EQ(a.scheduler_name, "rt-opex");

  // And the counterfactual genuinely re-schedules: same offered load, with
  // the per-cause counts free to differ from the partitioned original.
  const analysis::AnalysisReport original =
      analysis::analyze(store, rcfg.analyzer);
  EXPECT_EQ(a.report.subframes, original.subframes);
  EXPECT_EQ(a.report.lost, original.lost);
}

TEST(ReplayErrors, TraceWithoutCaptureThrows) {
  core::ExperimentConfig cfg = faulted_sim_config();
  cfg.workload.subframes_per_bs = 50;
  const auto work = core::make_workload(cfg);
  // Traced run, but no capture_workload call.
  obs::Tracer tracer(24, 1 << 15, 4 << 20);
  cfg.tracer = &tracer;
  core::run_scheduler(cfg, work);
  cfg.tracer = nullptr;
  EXPECT_THROW(analysis::replay(tracer.take(), matching_replay_config(cfg)),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Trace-CSV loader corruption handling (regression fixtures).

std::string small_csv() {
  obs::TraceStore store;
  obs::TraceEvent ev;
  ev.ts = 1000;
  ev.bs = 0;
  ev.index = 1;
  ev.core = 0;
  ev.kind = obs::EventKind::kArrival;
  store.events.push_back(ev);
  ev.ts = 2000;
  ev.kind = obs::EventKind::kSubframeEnd;
  store.events.push_back(ev);
  const std::string path = ::testing::TempDir() + "replay_fixture.csv";
  obs::write_trace_csv(path, store);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

std::string write_text(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(TraceCsvRobustness, TruncatedFileIsRejected) {
  const std::string text = small_csv();
  // Drop the footer row (and with it the trailing newline): simulates a
  // file cut off mid-write.
  const std::size_t last = text.rfind('\n', text.size() - 2);
  ASSERT_NE(last, std::string::npos);
  const std::string path =
      write_text("replay_truncated.csv", text.substr(0, last + 1));
  EXPECT_THROW(
      {
        try {
          analysis::load_trace_csv(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("footer"), std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCsvRobustness, UnknownVersionHeaderIsRejected) {
  std::string text = small_csv();
  const std::string path = write_text(
      "replay_unknown_version.csv",
      "ts_ns_v99,core,kind,stage,bs,index,a,b\n" +
          text.substr(text.find('\n') + 1));
  EXPECT_THROW(
      {
        try {
          analysis::load_trace_csv(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCsvRobustness, FooterCountMismatchIsRejected) {
  const std::string text = small_csv();
  // Remove one event row but keep the footer claiming the original count.
  const std::size_t first_row = text.find('\n') + 1;
  const std::size_t second_row = text.find('\n', first_row) + 1;
  const std::string path = write_text(
      "replay_count_mismatch.csv",
      text.substr(0, first_row) + text.substr(second_row));
  EXPECT_THROW(analysis::load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCsvRobustness, LegacyHeaderWithoutFooterStillLoads) {
  std::string text = small_csv();
  // Strip the v2 footer and downgrade the header to the legacy name
  // ("ts_ns_v2" -> "ts_ns", 8 header chars replaced).
  const std::size_t last = text.rfind('\n', text.size() - 2);
  std::string legacy = "ts_ns" + text.substr(8, last + 1 - 8);
  const std::string path = write_text("replay_legacy.csv", legacy);
  const obs::TraceStore loaded = analysis::load_trace_csv(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.events.size(), 2u);
}

}  // namespace
}  // namespace rtopex
