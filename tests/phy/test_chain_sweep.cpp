// Property sweep over the full TX -> channel -> RX chain: every MCS must
// decode at high SNR, for 1 and 2 antennas, and under mild multipath.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

struct SweepCase {
  unsigned mcs;
  unsigned antennas;
};

class ChainSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ChainSweepTest, DecodesAtHighSnr) {
  const auto [mcs, antennas] = GetParam();
  UplinkConfig cfg;
  cfg.num_antennas = antennas;
  cfg.bandwidth = Bandwidth::kMHz5;  // keep the sweep fast
  UplinkTransmitter tx(cfg);
  UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(mcs, /*subframe_index=*/3, 1000 + mcs);
  channel::ChannelConfig ch;
  ch.snr_db = 32.0;
  ch.num_rx_antennas = antennas;
  const auto samples =
      channel::pass_through_channel(sf.samples, ch, 2000 + mcs);
  const UplinkRxResult result = rx.process(samples, mcs, sf.subframe_index);
  ASSERT_TRUE(result.crc_ok) << "mcs=" << mcs << " antennas=" << antennas;
  EXPECT_EQ(result.payload, sf.payload);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (unsigned mcs = 0; mcs <= kMaxMcs; ++mcs)
    cases.push_back({mcs, 2});
  for (const unsigned mcs : {0u, 9u, 15u, 21u, 27u})
    cases.push_back({mcs, 1});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(McsAntenna, ChainSweepTest,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           return "mcs" + std::to_string(info.param.mcs) +
                                  "_n" + std::to_string(info.param.antennas);
                         });

TEST(ChainMultipathTest, DecodesThroughFadingMultipath) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  cfg.bandwidth = Bandwidth::kMHz5;
  UplinkTransmitter tx(cfg);
  UplinkRxProcessor rx(cfg);
  int successes = 0;
  constexpr int kTrials = 6;
  for (int t = 0; t < kTrials; ++t) {
    const TxSubframe sf = tx.transmit(/*mcs=*/10, 1, 500 + t);
    channel::ChannelConfig ch;
    ch.snr_db = 28.0;
    ch.num_rx_antennas = 2;
    ch.num_taps = 4;  // within the CP
    ch.rayleigh_fading = true;
    const auto samples = channel::pass_through_channel(sf.samples, ch, 700 + t);
    const auto result = rx.process(samples, 10, sf.subframe_index);
    if (result.crc_ok && result.payload == sf.payload) ++successes;
  }
  // Rayleigh fading can null an antenna pair occasionally; MRC over two
  // antennas should still decode most of the time at this margin.
  EXPECT_GE(successes, kTrials - 2);
}

TEST(ChainStageTest, SubtaskPartitionMatchesSerialExecution) {
  // Running subtasks in a scrambled order must produce the same decode as
  // the canonical serial order (the property migration relies on).
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  cfg.bandwidth = Bandwidth::kMHz5;
  UplinkTransmitter tx(cfg);
  UplinkRxProcessor rx(cfg);
  const unsigned mcs = 27;  // multiple code blocks
  const TxSubframe sf = tx.transmit(mcs, 2, 42);
  channel::ChannelConfig ch;
  ch.snr_db = 30.0;
  ch.num_rx_antennas = 2;
  const auto samples = channel::pass_through_channel(sf.samples, ch, 43);

  const auto serial = rx.process(samples, mcs, sf.subframe_index);

  auto job = rx.make_job();
  rx.begin(job, samples, mcs, sf.subframe_index);
  for (std::size_t i = rx.fft_subtask_count(); i-- > 0;)
    rx.run_fft_subtask(job, i);  // reverse order
  rx.demod_prepare(job);
  for (std::size_t i = 0; i < rx.demod_subtask_count(); i += 2)
    rx.run_demod_subtask(job, i);
  for (std::size_t i = 1; i < rx.demod_subtask_count(); i += 2)
    rx.run_demod_subtask(job, i);
  rx.decode_prepare(job);
  for (std::size_t i = rx.decode_subtask_count(job); i-- > 0;)
    rx.run_decode_subtask(job, i);
  const auto scrambled_order = rx.finalize(job);

  EXPECT_EQ(serial.crc_ok, scrambled_order.crc_ok);
  EXPECT_EQ(serial.payload, scrambled_order.payload);
  EXPECT_EQ(serial.iterations, scrambled_order.iterations);
}

}  // namespace
}  // namespace rtopex::phy
