// Error-path and contract tests for the RX processor and TX builder.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

TEST(UplinkTxTest, DeterministicForSameSeed) {
  UplinkConfig cfg;
  cfg.bandwidth = Bandwidth::kMHz5;
  const UplinkTransmitter tx(cfg);
  const TxSubframe a = tx.transmit(13, 2, 77);
  const TxSubframe b = tx.transmit(13, 2, 77);
  EXPECT_EQ(a.payload, b.payload);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    EXPECT_EQ(a.samples[i], b.samples[i]);
  const TxSubframe c = tx.transmit(13, 2, 78);
  EXPECT_NE(a.payload, c.payload);
}

TEST(UplinkTxTest, SampleCountMatchesGrid) {
  for (const auto bw : {Bandwidth::kMHz5, Bandwidth::kMHz10}) {
    UplinkConfig cfg;
    cfg.bandwidth = bw;
    const auto bc = cfg.bw_config();
    const UplinkTransmitter tx(cfg);
    const TxSubframe sf = tx.transmit(0, 0, 1);
    EXPECT_EQ(sf.samples.size(),
              kSymbolsPerSubframe * (bc.cp_samples + bc.fft_size));
  }
}

TEST(UplinkRxTest, BeginValidatesInputs) {
  UplinkConfig cfg;
  cfg.bandwidth = Bandwidth::kMHz5;
  cfg.num_antennas = 2;
  const UplinkRxProcessor rx(cfg);
  auto job = rx.make_job();

  const auto bc = cfg.bw_config();
  const std::size_t n = kSymbolsPerSubframe * (bc.cp_samples + bc.fft_size);
  std::vector<IqVector> good(2, IqVector(n));
  std::vector<IqVector> wrong_count(1, IqVector(n));
  std::vector<IqVector> wrong_size(2, IqVector(n - 1));

  EXPECT_NO_THROW(rx.begin(job, good, 5, 0));
  EXPECT_THROW(rx.begin(job, wrong_count, 5, 0), std::invalid_argument);
  EXPECT_THROW(rx.begin(job, wrong_size, 5, 0), std::invalid_argument);
  EXPECT_THROW(rx.begin(job, good, 28, 0), std::out_of_range);
}

TEST(UplinkRxTest, SubtaskIndexBoundsChecked) {
  UplinkConfig cfg;
  cfg.bandwidth = Bandwidth::kMHz5;
  const UplinkRxProcessor rx(cfg);
  auto job = rx.make_job();
  const auto bc = cfg.bw_config();
  const std::size_t n = kSymbolsPerSubframe * (bc.cp_samples + bc.fft_size);
  const std::vector<IqVector> samples(cfg.num_antennas, IqVector(n));
  rx.begin(job, samples, 5, 0);
  EXPECT_THROW(rx.run_fft_subtask(job, rx.fft_subtask_count()),
               std::out_of_range);
  EXPECT_THROW(rx.run_demod_subtask(job, rx.demod_subtask_count()),
               std::out_of_range);
  EXPECT_THROW(rx.run_decode_subtask(job, rx.decode_subtask_count(job)),
               std::out_of_range);
}

TEST(UplinkRxTest, JobReuseAcrossSubframes) {
  UplinkConfig cfg;
  cfg.bandwidth = Bandwidth::kMHz5;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);
  auto job = rx.make_job();
  channel::ChannelConfig ch;
  ch.snr_db = 30.0;
  ch.num_rx_antennas = cfg.num_antennas;
  // Same job object decodes different MCS back to back.
  for (const unsigned mcs : {2u, 25u, 9u}) {
    const TxSubframe sf = tx.transmit(mcs, mcs, 100 + mcs);
    const auto samples =
        channel::pass_through_channel(sf.samples, ch, 200 + mcs);
    rx.begin(job, samples, mcs, sf.subframe_index);
    for (std::size_t i = 0; i < rx.fft_subtask_count(); ++i)
      rx.run_fft_subtask(job, i);
    rx.demod_prepare(job);
    for (std::size_t i = 0; i < rx.demod_subtask_count(); ++i)
      rx.run_demod_subtask(job, i);
    rx.decode_prepare(job);
    for (std::size_t i = 0; i < rx.decode_subtask_count(job); ++i)
      rx.run_decode_subtask(job, i);
    const auto result = rx.finalize(job);
    EXPECT_TRUE(result.crc_ok) << "mcs=" << mcs;
    EXPECT_EQ(result.payload, sf.payload) << "mcs=" << mcs;
  }
}

TEST(UplinkRxTest, TwentyMhzChainDecodes) {
  UplinkConfig cfg;
  cfg.bandwidth = Bandwidth::kMHz20;
  cfg.num_antennas = 1;  // keep the heavy config quick
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(12, 0, 3);
  channel::ChannelConfig ch;
  ch.snr_db = 30.0;
  ch.num_rx_antennas = 1;
  const auto samples = channel::pass_through_channel(sf.samples, ch, 4);
  const auto result = rx.process(samples, 12, sf.subframe_index);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, sf.payload);
}

}  // namespace
}  // namespace rtopex::phy
