#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "phy/modulation.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

class ModulationOrderTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModulationOrderTest, UnitAveragePower) {
  const unsigned order = GetParam();
  const auto points = constellation(order);
  EXPECT_EQ(points.size(), 1u << order);
  double power = 0.0;
  for (const Complex& p : points) power += std::norm(p);
  EXPECT_NEAR(power / static_cast<double>(points.size()), 1.0, 1e-6);
}

TEST_P(ModulationOrderTest, AllPointsDistinct) {
  const unsigned order = GetParam();
  const auto points = constellation(order);
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      EXPECT_GT(std::abs(points[i] - points[j]), 1e-3);
}

TEST_P(ModulationOrderTest, NoiselessDemapRecoversBits) {
  const unsigned order = GetParam();
  const BitVector bits = random_bits(order * 100, order);
  const IqVector symbols = modulate(bits, order);
  const std::vector<float> nv(symbols.size(), 0.01f);
  const LlrVector llrs = demodulate(symbols, nv, order);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Positive LLR -> bit 0, negative -> bit 1 (decoder convention).
    EXPECT_EQ(llrs[i] < 0.0f, bits[i] == 1) << "bit " << i;
  }
}

TEST_P(ModulationOrderTest, LlrMagnitudeScalesWithNoise) {
  const unsigned order = GetParam();
  const BitVector bits = random_bits(order * 10, 3);
  const IqVector symbols = modulate(bits, order);
  const std::vector<float> low_noise(symbols.size(), 0.01f);
  const std::vector<float> high_noise(symbols.size(), 1.0f);
  const LlrVector confident = demodulate(symbols, low_noise, order);
  const LlrVector hesitant = demodulate(symbols, high_noise, order);
  for (std::size_t i = 0; i < confident.size(); ++i)
    EXPECT_GT(std::abs(confident[i]), std::abs(hesitant[i]));
}

INSTANTIATE_TEST_SUITE_P(Orders, ModulationOrderTest,
                         ::testing::Values(2u, 4u, 6u));

TEST(ModulationTest, GrayMappingNeighborsDifferInOneBit) {
  // For QPSK, adjacent constellation points along each axis differ in
  // exactly one bit (Gray property).
  const auto points = constellation(2);
  // Indices: b0 controls I sign, b1 controls Q sign.
  EXPECT_EQ(points[0].real(), points[1].real());   // 00 vs 01: same I
  EXPECT_NE(points[0].imag(), points[1].imag());   // different Q
}

TEST(ModulationTest, RejectsBadArguments) {
  EXPECT_THROW(modulate(BitVector(5, 0), 2), std::invalid_argument);
  EXPECT_THROW(modulate(BitVector(6, 0), 3), std::invalid_argument);
  const IqVector sym(4);
  const std::vector<float> nv(3);
  EXPECT_THROW(demodulate(sym, nv, 2), std::invalid_argument);
}

TEST(ModulationTest, DemapSurvivesModerateNoise) {
  Rng rng(11);
  const unsigned order = 4;
  const BitVector bits = random_bits(order * 1000, 12);
  IqVector symbols = modulate(bits, order);
  const float noise_var = 0.02f;
  const float sigma = std::sqrt(noise_var / 2.0f);
  for (auto& s : symbols)
    s += Complex{static_cast<float>(rng.normal(0.0, sigma)),
                 static_cast<float>(rng.normal(0.0, sigma))};
  const std::vector<float> nv(symbols.size(), noise_var);
  const LlrVector llrs = demodulate(symbols, nv, order);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if ((llrs[i] < 0.0f) != (bits[i] == 1)) ++errors;
  EXPECT_LT(errors, bits.size() / 100);
}

}  // namespace
}  // namespace rtopex::phy
