#include <gtest/gtest.h>

#include "phy/lte_params.hpp"

namespace rtopex::phy {
namespace {

TEST(LteParamsTest, BandwidthConfigs) {
  const auto b5 = bandwidth_config(Bandwidth::kMHz5);
  EXPECT_EQ(b5.num_prb, 25u);
  EXPECT_EQ(b5.fft_size, 512u);
  const auto b10 = bandwidth_config(Bandwidth::kMHz10);
  EXPECT_EQ(b10.num_prb, 50u);
  EXPECT_EQ(b10.fft_size, 1024u);
  EXPECT_DOUBLE_EQ(b10.sample_rate_hz, 15.36e6);
  const auto b20 = bandwidth_config(Bandwidth::kMHz20);
  EXPECT_EQ(b20.num_prb, 100u);
  EXPECT_EQ(b20.fft_size, 2048u);
}

TEST(LteParamsTest, ResourceElementCountsMatchPaper) {
  // Paper §2.1: "For 10MHz bandwidth, which has 8400 REs".
  EXPECT_EQ(resource_elements(50), 8400u);
  EXPECT_EQ(data_resource_elements(50), 7200u);  // minus 2 DMRS symbols
}

TEST(LteParamsTest, ModulationOrderBands) {
  EXPECT_EQ(modulation_order(0), 2u);
  EXPECT_EQ(modulation_order(10), 2u);
  EXPECT_EQ(modulation_order(11), 4u);
  EXPECT_EQ(modulation_order(20), 4u);
  EXPECT_EQ(modulation_order(21), 6u);
  EXPECT_EQ(modulation_order(27), 6u);
  EXPECT_THROW(modulation_order(28), std::out_of_range);
}

TEST(LteParamsTest, SubcarrierLoadSpansPaperRange) {
  // Paper §2.1: D varies from 0.16 to 3.7 bits/RE for MCS 0..27 at 50 PRB.
  EXPECT_NEAR(subcarrier_load(0, 50), 0.16, 0.01);
  EXPECT_NEAR(subcarrier_load(27, 50), 3.7, 0.09);
}

TEST(LteParamsTest, ThroughputRangeMatchesPaper) {
  // Paper §4.2: nominal PHY throughput 1.3 to 31.7 Mbps at 10 MHz.
  const double mbps0 = transport_block_size(0, 50) / 1000.0;
  const double mbps27 = transport_block_size(27, 50) / 1000.0;
  EXPECT_NEAR(mbps0, 1.3, 0.1);
  EXPECT_NEAR(mbps27, 31.7, 0.6);
}

TEST(LteParamsTest, TransportBlockSizeMonotoneInMcs) {
  for (unsigned mcs = 1; mcs <= kMaxMcs; ++mcs)
    EXPECT_GT(transport_block_size(mcs, 50), transport_block_size(mcs - 1, 50))
        << "mcs=" << mcs;
}

TEST(LteParamsTest, TransportBlockSizeScalesWithPrb) {
  for (const unsigned mcs : {0u, 13u, 27u}) {
    const double per_prb_50 = transport_block_size(mcs, 50) / 50.0;
    const double per_prb_100 = transport_block_size(mcs, 100) / 100.0;
    EXPECT_NEAR(per_prb_50, per_prb_100, per_prb_50 * 0.02);
  }
}

TEST(LteParamsTest, TbsByteAlignedAndBounded) {
  for (unsigned mcs = 0; mcs <= kMaxMcs; ++mcs) {
    const unsigned tbs = transport_block_size(mcs, 50);
    EXPECT_EQ(tbs % 8, 0u);
    EXPECT_GE(tbs, 40u);
  }
  EXPECT_THROW(transport_block_size(0, 0), std::invalid_argument);
  EXPECT_THROW(transport_block_size(28, 50), std::out_of_range);
}

TEST(LteParamsTest, CodeBlockCountMonotone) {
  unsigned prev = 1;
  for (unsigned mcs = 0; mcs <= kMaxMcs; ++mcs) {
    const unsigned c = num_code_blocks(mcs, 50);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(num_code_blocks(0, 50), 1u);
  EXPECT_EQ(num_code_blocks(27, 50), 6u);
}

}  // namespace
}  // namespace rtopex::phy
