#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/lte_params.hpp"
#include "phy/segmentation.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

BitVector random_tb(std::size_t payload, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(payload);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  attach_crc24(bits, CrcKind::kA);
  return bits;
}

TEST(SegmentationTest, SmallBlockSingleSegment) {
  const BitVector tb = random_tb(1000, 1);
  const Segmentation seg = segment_transport_block(tb);
  EXPECT_EQ(seg.num_blocks(), 1u);
  EXPECT_GE(seg.block_size, tb.size());
  EXPECT_EQ(seg.blocks[0].size(), seg.block_size);
  // Filler zeros precede the payload.
  for (std::size_t i = 0; i < seg.filler_bits; ++i)
    EXPECT_EQ(seg.blocks[0][i], 0);
}

TEST(SegmentationTest, LargeBlockSplitsWithPerBlockCrc) {
  const BitVector tb = random_tb(20000, 2);
  const Segmentation seg = segment_transport_block(tb);
  EXPECT_GT(seg.num_blocks(), 1u);
  EXPECT_LE(seg.block_size, kMaxCodeBlockSize);
  for (const auto& block : seg.blocks) {
    EXPECT_EQ(block.size(), seg.block_size);
    EXPECT_TRUE(check_crc24(block, CrcKind::kB));
  }
}

TEST(SegmentationTest, RoundTripRecoversTransportBlock) {
  for (const std::size_t payload : {100u, 6000u, 6121u, 12000u, 30000u}) {
    const BitVector tb = random_tb(payload, payload);
    const Segmentation seg = segment_transport_block(tb);
    const Desegmentation de = desegment_transport_block(
        seg.blocks, seg.payload_bits, seg.filler_bits);
    EXPECT_TRUE(de.all_ok);
    EXPECT_EQ(de.tb_with_crc, tb) << "payload=" << payload;
  }
}

TEST(SegmentationTest, CorruptedBlockDetected) {
  const BitVector tb = random_tb(20000, 3);
  Segmentation seg = segment_transport_block(tb);
  seg.blocks[1][10] ^= 1;
  const Desegmentation de =
      desegment_transport_block(seg.blocks, seg.payload_bits, seg.filler_bits);
  EXPECT_FALSE(de.all_ok);
  EXPECT_TRUE(de.crc_ok[0]);
  EXPECT_FALSE(de.crc_ok[1]);
}

TEST(SegmentationTest, Mcs27At50PrbYieldsSixBlocks) {
  // The paper's anchor: "at MCS 27, LTE utilizes 6 code-blocks" (§2.2).
  EXPECT_EQ(num_code_blocks(27, 50), 6u);
}

TEST(SegmentationTest, RejectsEmptyInput) {
  EXPECT_THROW(segment_transport_block({}), std::invalid_argument);
  EXPECT_THROW(desegment_transport_block({}, 0, 0), std::invalid_argument);
}

// Segmentation geometry must agree with code_block_layout for every MCS.
class SegmentationLayoutTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentationLayoutTest, LayoutMatchesActualSegmentation) {
  const unsigned mcs = GetParam();
  UplinkConfig cfg;  // 10 MHz, 50 PRB
  const CodeBlockLayout layout = code_block_layout(cfg, mcs);
  BitVector tb = random_tb(transport_block_size(mcs, cfg.num_prb()), mcs);
  const Segmentation seg = segment_transport_block(tb);
  EXPECT_EQ(seg.num_blocks(), layout.e_bits.size());
  EXPECT_EQ(seg.block_size, layout.block_size);
  EXPECT_EQ(seg.filler_bits, layout.filler_bits);
  EXPECT_EQ(seg.payload_bits, layout.payload_bits);
  // Coded bits split: sums to data REs * Qm, all multiples of Qm.
  std::size_t total = 0;
  for (const std::size_t e : layout.e_bits) total += e;
  EXPECT_EQ(total, static_cast<std::size_t>(data_resource_elements(
                       cfg.num_prb())) *
                       modulation_order(mcs));
}

INSTANTIATE_TEST_SUITE_P(AllMcs, SegmentationLayoutTest,
                         ::testing::Range(0u, kMaxMcs + 1));

}  // namespace
}  // namespace rtopex::phy
