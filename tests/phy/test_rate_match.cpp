#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/rate_match.hpp"

namespace rtopex::phy {
namespace {

TurboCodeword random_codeword(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  TurboCodeword cw;
  cw.systematic.resize(k + 4);
  cw.parity1.resize(k + 4);
  cw.parity2.resize(k + 4);
  for (auto* s : {&cw.systematic, &cw.parity1, &cw.parity2})
    for (auto& b : *s) b = static_cast<std::uint8_t>(rng.next() & 1);
  return cw;
}

TEST(RateMatchTest, OutputLengthIsExactlyE) {
  const RateMatcher rm(104);
  const auto cw = random_codeword(104, 1);
  for (const std::size_t e : {50u, 108u * 3u, 1000u})
    EXPECT_EQ(rm.match(cw, e).size(), e);
}

TEST(RateMatchTest, MatchDematchInverseAtFullRate) {
  const std::size_t k = 104;
  const RateMatcher rm(k);
  const auto cw = random_codeword(k, 2);
  const std::size_t total = 3 * (k + 4);
  const BitVector sent = rm.match(cw, total);
  LlrVector llrs(total);
  for (std::size_t i = 0; i < total; ++i) llrs[i] = sent[i] ? -4.0f : 4.0f;
  const auto streams = rm.dematch(llrs);
  // Every stream position must be reconstructed with the right sign.
  for (std::size_t i = 0; i < k + 4; ++i) {
    EXPECT_EQ(streams.systematic[i] < 0, cw.systematic[i] == 1) << i;
    EXPECT_EQ(streams.parity1[i] < 0, cw.parity1[i] == 1) << i;
    EXPECT_EQ(streams.parity2[i] < 0, cw.parity2[i] == 1) << i;
  }
}

TEST(RateMatchTest, PuncturedPositionsHaveZeroLlr) {
  const std::size_t k = 512;
  const RateMatcher rm(k);
  const auto cw = random_codeword(k, 3);
  const std::size_t e = k;  // rate ~3: heavy puncturing
  const BitVector sent = rm.match(cw, e);
  LlrVector llrs(e, 1.0f);
  const auto streams = rm.dematch(llrs);
  std::size_t zeros = 0, nonzeros = 0;
  for (const auto* s : {&streams.systematic, &streams.parity1, &streams.parity2})
    for (const float v : *s) (v == 0.0f ? zeros : nonzeros)++;
  EXPECT_EQ(nonzeros, e);
  EXPECT_EQ(zeros, 3 * (k + 4) - e);
}

TEST(RateMatchTest, RepetitionSoftCombines) {
  const std::size_t k = 40;
  const RateMatcher rm(k);
  const auto cw = random_codeword(k, 4);
  const std::size_t buffer = 3 * (k + 4);
  const std::size_t e = buffer * 2;  // every bit sent twice (wrap-around)
  const BitVector sent = rm.match(cw, e);
  LlrVector llrs(e);
  for (std::size_t i = 0; i < e; ++i) llrs[i] = sent[i] ? -1.0f : 1.0f;
  const auto streams = rm.dematch(llrs);
  for (std::size_t i = 0; i < k + 4; ++i) {
    EXPECT_FLOAT_EQ(std::abs(streams.systematic[i]), 2.0f);
    EXPECT_FLOAT_EQ(std::abs(streams.parity1[i]), 2.0f);
    EXPECT_FLOAT_EQ(std::abs(streams.parity2[i]), 2.0f);
  }
}

TEST(RateMatchTest, SystematicBitsPreferredAtHighRate) {
  // The circular buffer starts (nearly) at the systematic stream, so at
  // high code rates most systematic bits survive puncturing.
  const std::size_t k = 512;
  const RateMatcher rm(k);
  const auto cw = random_codeword(k, 5);
  LlrVector llrs(k + 100, 1.0f);
  const auto streams = rm.dematch(llrs);
  std::size_t sys_filled = 0;
  for (const float v : streams.systematic)
    if (v != 0.0f) ++sys_filled;
  EXPECT_GT(sys_filled, (k + 4) * 9 / 10);
}

TEST(RateMatchTest, RedundancyVersionsShiftTheWindow) {
  const std::size_t k = 256;
  const RateMatcher rm(k);
  const auto cw = random_codeword(k, 6);
  const BitVector rv0 = rm.match(cw, 200, 0);
  const BitVector rv2 = rm.match(cw, 200, 2);
  EXPECT_NE(rv0, rv2);
}

TEST(RateMatchTest, RejectsBadInput) {
  const RateMatcher rm(104);
  const auto cw = random_codeword(104, 7);
  EXPECT_THROW(rm.match(cw, 0), std::invalid_argument);
  const auto wrong = random_codeword(112, 8);
  EXPECT_THROW(rm.match(wrong, 100), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::phy
