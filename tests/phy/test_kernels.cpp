// Differential tests for the vectorized PHY kernels: every optimized path
// (SoA/SIMD FFT, table CRC, flattened turbo SISO, unrolled demapper,
// table-walk dematcher, cached descrambler) is checked against the retained
// reference implementation. The turbo and FFT checks demand EXACT equality —
// the optimized kernels are written to round identically to the references
// (mul/add SIMD schedule, preserved association order), so any drift is a
// bug, not tolerance noise.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "phy/crc.hpp"
#include "phy/fft.hpp"
#include "phy/ofdm.hpp"
#include "phy/rate_match.hpp"
#include "phy/scrambler.hpp"
#include "phy/turbo.hpp"
#include "phy/workspace.hpp"

namespace rtopex::phy {
namespace {

IqVector random_iq(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  IqVector v(n);
  for (auto& x : v)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return v;
}

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

LlrVector noisy_llrs(const BitVector& bits, double snr_db, Rng& rng) {
  const double sigma = std::sqrt(0.5 / std::pow(10.0, snr_db / 10.0));
  LlrVector llrs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double x = bits[i] ? -1.0 : 1.0;
    const double y = x + rng.normal(0.0, sigma);
    llrs[i] = static_cast<float>(2.0 * y / (sigma * sigma));
  }
  return llrs;
}

void expect_bit_identical(std::span<const Complex> got,
                          std::span<const Complex> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].real(), want[i].real()) << "re at " << i;
    EXPECT_EQ(got[i].imag(), want[i].imag()) << "im at " << i;
  }
}

// --- FFT -------------------------------------------------------------------

class FftKernelDifferentialTest : public ::testing::TestWithParam<std::size_t> {
};

// The SoA path (optionally SIMD) must round identically to the retained
// interleaved scalar transform: same tables, same schedule, mul/add only.
TEST_P(FftKernelDifferentialTest, ForwardSoaBitIdenticalToScalarTransform) {
  const std::size_t n = GetParam();
  const FftPlan plan(n);
  const IqVector input = random_iq(n, 7000 + n);

  IqVector scalar = input;
  plan.transform(scalar, /*invert=*/false);

  std::vector<float> re(n), im(n);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = input[i].real();
    im[i] = input[i].imag();
  }
  plan.forward_soa(re, im);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(re[i], scalar[i].real()) << "re at " << i;
    EXPECT_EQ(im[i], scalar[i].imag()) << "im at " << i;
  }

  IqVector interleaved = input;
  plan.forward(interleaved);
  expect_bit_identical(interleaved, scalar);
}

TEST_P(FftKernelDifferentialTest, InverseSoaBitIdenticalToScalarTransform) {
  const std::size_t n = GetParam();
  const FftPlan plan(n);
  const IqVector input = random_iq(n, 8000 + n);

  IqVector scalar = input;
  plan.transform(scalar, /*invert=*/true);

  std::vector<float> re(n), im(n);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = input[i].real();
    im[i] = input[i].imag();
  }
  plan.inverse_soa(re, im);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(re[i], scalar[i].real()) << "re at " << i;
    EXPECT_EQ(im[i], scalar[i].imag()) << "im at " << i;
  }

  IqVector interleaved = input;
  plan.inverse(interleaved);
  expect_bit_identical(interleaved, scalar);
}

TEST_P(FftKernelDifferentialTest, ForwardSoaMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const FftPlan plan(n);
  IqVector data = random_iq(n, 9000 + n);
  const IqVector expected = reference_dft(data, false);
  plan.forward(data);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(data[i] - expected[i])));
  EXPECT_LT(max_err, 1e-2 * std::sqrt(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftKernelDifferentialTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u, 512u, 1024u,
                                           2048u));

// A shared immutable plan must be usable from many threads on distinct
// buffers; every thread must see the single-thread result bit for bit.
// (Runs under the TSan CI preset via the Differential filter.)
TEST(FftConcurrencyDifferentialTest, SharedPlanThreadsMatchSingleThread) {
  const std::size_t n = 1024;
  const FftPlan plan(n);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kReps = 16;

  std::vector<IqVector> inputs(kThreads);
  std::vector<IqVector> expected(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    inputs[t] = random_iq(n, 100 + t);
    expected[t] = inputs[t];
    plan.forward(expected[t]);
  }

  std::vector<IqVector> got(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (unsigned rep = 0; rep < kReps; ++rep) {
        got[t] = inputs[t];
        plan.forward(got[t]);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 0; t < kThreads; ++t)
    expect_bit_identical(got[t], expected[t]);
}

// --- CRC -------------------------------------------------------------------

TEST(CrcKernelDifferentialTest, TableMatchesBitwiseReferenceAllLengths) {
  // Every length 0..130 covers all bits.size() % 8 phases of the leading
  // bitwise fold, plus multi-byte table walks.
  for (std::size_t len = 0; len <= 130; ++len) {
    const BitVector bits = random_bits(len, 3000 + len);
    EXPECT_EQ(crc24a(bits), crc24a_reference(bits)) << "24A len " << len;
    EXPECT_EQ(crc24b(bits), crc24b_reference(bits)) << "24B len " << len;
  }
}

TEST(CrcKernelDifferentialTest, TableMatchesBitwiseReferenceCorners) {
  for (const std::size_t len : {1u, 7u, 8u, 9u, 23u, 24u, 25u, 6144u, 6145u}) {
    const BitVector zeros(len, 0);
    const BitVector ones(len, 1);
    EXPECT_EQ(crc24a(zeros), crc24a_reference(zeros)) << "zeros len " << len;
    EXPECT_EQ(crc24a(ones), crc24a_reference(ones)) << "ones len " << len;
    EXPECT_EQ(crc24b(zeros), crc24b_reference(zeros)) << "zeros len " << len;
    EXPECT_EQ(crc24b(ones), crc24b_reference(ones)) << "ones len " << len;
    // Single set bit at each end: catches reflected/shifted table bugs.
    BitVector lead(len, 0), trail(len, 0);
    lead.front() = 1;
    trail.back() = 1;
    EXPECT_EQ(crc24a(lead), crc24a_reference(lead)) << "lead len " << len;
    EXPECT_EQ(crc24a(trail), crc24a_reference(trail)) << "trail len " << len;
  }
  const BitVector empty;
  EXPECT_EQ(crc24a(empty), crc24a_reference(empty));
  EXPECT_EQ(crc24b(empty), crc24b_reference(empty));
}

// --- Turbo -----------------------------------------------------------------

struct TurboCase {
  std::size_t k;
  double snr_db;
  std::uint64_t seed;
};

// The flattened SISO must reproduce the reference decoder EXACTLY: same hard
// decisions, same iteration count, same early-termination flag — across
// block sizes, noise levels (including undecodable), CRC-gated and free
// running. The workspace is shared across all cases (large K before small)
// to prove stale grow-only buffers never leak into a decode.
TEST(TurboKernelDifferentialTest, DecodeIntoMatchesReferenceExactly) {
  const TurboCase cases[] = {
      {6144, 2.0, 1}, {6144, -1.0, 2}, {1024, 6.0, 3},  {1024, -2.5, 4},
      {512, 0.0, 5},  {104, 4.0, 6},   {104, -4.0, 7},  {40, 8.0, 8},
      {40, -6.0, 9},  {2048, -2.0, 10},
  };
  DecodeWorkspace ws;
  for (const auto& c : cases) {
    const QppInterleaver qpp(c.k);
    const TurboEncoder enc(qpp);
    const TurboDecoder dec(qpp, 6);
    Rng rng(c.seed);
    BitVector payload = random_bits(c.k - 24, c.seed * 31);
    attach_crc24(payload, CrcKind::kB);
    const auto cw = enc.encode(payload);
    const LlrVector sys = noisy_llrs(cw.systematic, c.snr_db, rng);
    const LlrVector p1 = noisy_llrs(cw.parity1, c.snr_db, rng);
    const LlrVector p2 = noisy_llrs(cw.parity2, c.snr_db, rng);
    const auto crc = [](std::span<const std::uint8_t> b) {
      return check_crc24(b, CrcKind::kB);
    };

    const auto ref = dec.decode_reference(sys, p1, p2, crc);
    dec.decode_into(sys, p1, p2, ws, crc);
    ASSERT_GE(ws.bits.size(), c.k);
    EXPECT_TRUE(std::equal(ref.bits.begin(), ref.bits.end(), ws.bits.begin()))
        << "K=" << c.k << " snr=" << c.snr_db;
    EXPECT_EQ(ws.iterations, ref.iterations) << "K=" << c.k;
    EXPECT_EQ(ws.early_terminated, ref.early_terminated) << "K=" << c.k;

    const auto opt = dec.decode(sys, p1, p2, crc);
    EXPECT_EQ(opt.bits, ref.bits) << "K=" << c.k;
    EXPECT_EQ(opt.iterations, ref.iterations) << "K=" << c.k;
    EXPECT_EQ(opt.early_terminated, ref.early_terminated) << "K=" << c.k;
  }
}

TEST(TurboKernelDifferentialTest, FreeRunningAndCappedMatchReference) {
  const QppInterleaver qpp(512);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 8);
  Rng rng(77);
  const BitVector bits = random_bits(512, 78);
  const auto cw = enc.encode(bits);
  const LlrVector sys = noisy_llrs(cw.systematic, -2.0, rng);
  const LlrVector p1 = noisy_llrs(cw.parity1, -2.0, rng);
  const LlrVector p2 = noisy_llrs(cw.parity2, -2.0, rng);

  // No CRC callback: runs to Lm; iteration override: degraded-mode cap.
  for (const unsigned cap : {0u, 1u, 3u}) {
    const auto ref = dec.decode_reference(sys, p1, p2, {}, cap);
    const auto opt = dec.decode(sys, p1, p2, {}, cap);
    EXPECT_EQ(opt.bits, ref.bits) << "cap=" << cap;
    EXPECT_EQ(opt.iterations, ref.iterations) << "cap=" << cap;
    EXPECT_EQ(opt.early_terminated, ref.early_terminated) << "cap=" << cap;
  }
}

// --- Batched SoA turbo decoder ---------------------------------------------

/// Per-lane reference decode + comparison harness: decodes `lanes_n`
/// distinct codewords scalar (decode_reference), then batched, and demands
/// exact agreement on bits, iteration counts and early-termination flags.
void check_batch_against_scalar(std::size_t k, std::size_t lanes_n,
                                unsigned lm, unsigned cap, bool with_crc,
                                std::uint64_t seed_base,
                                std::span<const double> snrs,
                                DecodeWorkspace& ws) {
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, lm);
  const auto crc = [](std::span<const std::uint8_t> b) {
    return check_crc24(b, CrcKind::kB);
  };

  std::vector<LlrVector> sys(lanes_n), p1(lanes_n), p2(lanes_n);
  std::vector<TurboDecodeResult> ref(lanes_n);
  std::vector<TurboBatchLane> lanes(lanes_n);
  for (std::size_t b = 0; b < lanes_n; ++b) {
    Rng rng(seed_base + b);
    BitVector payload = random_bits(k - 24, seed_base * 31 + b);
    attach_crc24(payload, CrcKind::kB);
    const auto cw = enc.encode(payload);
    const double snr = snrs[b % snrs.size()];
    sys[b] = noisy_llrs(cw.systematic, snr, rng);
    p1[b] = noisy_llrs(cw.parity1, snr, rng);
    p2[b] = noisy_llrs(cw.parity2, snr, rng);
    ref[b] = dec.decode_reference(
        sys[b], p1[b], p2[b],
        with_crc ? std::function<bool(std::span<const std::uint8_t>)>(crc)
                 : std::function<bool(std::span<const std::uint8_t>)>{},
        cap);
    lanes[b] = {sys[b], p1[b], p2[b]};
  }

  dec.decode_batch_into(
      lanes, ws,
      with_crc ? std::function<bool(std::size_t,
                                    std::span<const std::uint8_t>)>(
                     [&](std::size_t, std::span<const std::uint8_t> bits) {
                       return check_crc24(bits, CrcKind::kB);
                     })
               : std::function<bool(std::size_t,
                                    std::span<const std::uint8_t>)>{},
      cap);

  for (std::size_t b = 0; b < lanes_n; ++b) {
    ASSERT_GE(ws.bat_bits.size(), (b + 1) * k);
    EXPECT_TRUE(std::equal(ref[b].bits.begin(), ref[b].bits.end(),
                           ws.bat_bits.begin() +
                               static_cast<std::ptrdiff_t>(b * k)))
        << "K=" << k << " lanes=" << lanes_n << " lane=" << b;
    EXPECT_EQ(ws.bat_iterations[b], ref[b].iterations)
        << "K=" << k << " lanes=" << lanes_n << " lane=" << b;
    EXPECT_EQ(ws.bat_early_terminated[b], ref[b].early_terminated)
        << "K=" << k << " lanes=" << lanes_n << " lane=" << b;
  }
}

// Every batch width 1..kTurboBatchLanes (ragged tails included) with mixed
// per-lane noise — some lanes early-terminate on the first iteration while
// undecodable neighbours run to Lm — must reproduce the scalar reference
// lane for lane. The workspace is shared across widths (wide before
// narrow) to prove stale grow-only rows never leak between batches.
TEST(TurboBatchDifferentialTest, AllBatchWidthsMatchScalarExactly) {
  const double snrs[] = {6.0, -1.0, 2.0, -4.0, 8.0, 0.0, -2.5, 4.0};
  DecodeWorkspace ws;
  for (std::size_t lanes_n = kTurboBatchLanes; lanes_n >= 1; --lanes_n)
    check_batch_against_scalar(1024, lanes_n, /*lm=*/6, /*cap=*/0,
                               /*with_crc=*/true, 900 + 17 * lanes_n, snrs,
                               ws);
}

// Block sizes spanning the MCS classes (tiny blocks to the 6144 maximum),
// free-running and iteration-capped (degraded mode), full batches.
TEST(TurboBatchDifferentialTest, BlockSizesAndCapsMatchScalarExactly) {
  const double snrs[] = {4.0, -2.0, 1.0, -5.0, 7.0, 0.5, -1.5, 3.0};
  DecodeWorkspace ws;
  for (const std::size_t k : {40u, 104u, 512u, 2048u, 6144u}) {
    check_batch_against_scalar(k, kTurboBatchLanes, /*lm=*/4, /*cap=*/0,
                               /*with_crc=*/false, 1200 + k, snrs, ws);
    check_batch_against_scalar(k, kTurboBatchLanes, /*lm=*/4, /*cap=*/2,
                               /*with_crc=*/false, 1300 + k, snrs, ws);
  }
}

// CRC-gated batches at every block size: per-lane early termination must
// freeze exactly the lanes whose scalar counterparts terminate, at the
// same iteration, while the rest keep refining.
TEST(TurboBatchDifferentialTest, CrcGatedBlockSizesMatchScalarExactly) {
  const double snrs[] = {8.0, -4.0, 6.0, -1.0, 4.0, 2.0, 0.0, -2.5};
  DecodeWorkspace ws;
  for (const std::size_t k : {104u, 512u, 6144u})
    check_batch_against_scalar(k, kTurboBatchLanes, /*lm=*/6, /*cap=*/0,
                               /*with_crc=*/true, 1400 + k, snrs, ws);
}

// --- Demapper --------------------------------------------------------------

TEST(DemodKernelDifferentialTest, UnrolledMatchesReferenceExactly) {
  for (const unsigned order : {2u, 4u, 6u}) {
    const std::size_t n = 600;
    const IqVector symbols = random_iq(n, 4000 + order);
    Rng rng(4100 + order);
    std::vector<float> noise(n);
    for (auto& v : noise)
      v = static_cast<float>(std::abs(rng.normal(0.05, 0.02)));
    noise[0] = 0.0f;    // hits the 1e-9 clamp in both paths.
    noise[1] = 1e-12f;  // below the clamp.

    const LlrVector ref = demodulate_reference(symbols, noise, order);
    const LlrVector opt = demodulate(symbols, noise, order);
    ASSERT_EQ(opt.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(opt[i], ref[i]) << "order " << order << " llr " << i;

    LlrVector into(n * order);
    demodulate_into(symbols, noise, order, into);
    EXPECT_EQ(into, ref) << "order " << order;
  }
}

// The vectorized demapper processes a fixed block of symbols per pass and
// hands the ragged tail to the scalar kernel; every (order, length) pair
// must match the axis-decomposed reference bit for bit. Lengths cover all
// tail residues of both the AVX2 (8-symbol) and NEON (4-symbol) blocks,
// plus the pure-tail lengths below one block.
TEST(DemodKernelDifferentialTest, SimdBlocksAndRaggedTailsMatchReference) {
  const std::size_t lengths[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 15, 16, 17,
                                 31, 32, 33, 100, 601};
  for (const unsigned order : {2u, 4u, 6u}) {
    for (const std::size_t n : lengths) {
      const IqVector symbols = random_iq(n, 4300 + 100 * order + n);
      Rng rng(4400 + n);
      std::vector<float> noise(n);
      for (auto& v : noise)
        v = static_cast<float>(std::abs(rng.normal(0.05, 0.02)));
      if (n > 2) noise[2] = 0.0f;  // clamp path inside a SIMD block.

      const LlrVector ref = demodulate_reference(symbols, noise, order);
      LlrVector into(n * order);
      demodulate_into(symbols, noise, order, into);
      ASSERT_EQ(into.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(into[i], ref[i])
            << "order " << order << " n " << n << " llr " << i;
    }
  }
}

// --- Rate dematcher --------------------------------------------------------

TEST(RateMatchKernelDifferentialTest, DematchIntoMatchesDematchExactly) {
  const std::size_t k = 512;
  const RateMatcher rm(k);
  const std::size_t kd = k + 4;
  // Below capacity (puncturing), exactly one wrap, and heavy repetition.
  const std::size_t e_values[] = {kd, 2 * kd, rm.buffer_size() + 17,
                                  3 * rm.buffer_size() + 5};
  for (const std::size_t e : e_values) {
    for (unsigned rv = 0; rv < 4; ++rv) {
      Rng rng(5000 + e + rv);
      LlrVector llrs(e);
      for (auto& v : llrs) v = static_cast<float>(rng.normal());

      const auto ref = rm.dematch(llrs, rv);
      LlrVector sys(kd, 99.0f), p1(kd, 99.0f), p2(kd, 99.0f);  // stale fill.
      rm.dematch_into(llrs, rv, sys, p1, p2);
      EXPECT_EQ(sys, ref.systematic) << "e=" << e << " rv=" << rv;
      EXPECT_EQ(p1, ref.parity1) << "e=" << e << " rv=" << rv;
      EXPECT_EQ(p2, ref.parity2) << "e=" << e << " rv=" << rv;
    }
  }
}

// --- Descrambler -----------------------------------------------------------

TEST(ScramblerKernelDifferentialTest, CachedMatchesUncachedAcrossKeyChanges) {
  DecodeWorkspace ws;
  const std::uint32_t init_a = scrambling_init(0x003D, 1, 0);
  const std::uint32_t init_b = scrambling_init(0x003D, 2, 0);
  // The adversarial order for a (c_init, length)-keyed grow-only cache:
  // long B, then shorter A (buffer longer than A's generated prefix), then
  // longer A again (must regenerate, not serve B's stale tail).
  const struct {
    std::uint32_t c_init;
    std::size_t len;
  } steps[] = {{init_b, 300}, {init_a, 200}, {init_a, 300},
               {init_a, 120}, {init_b, 300}, {init_a, 301}};
  for (const auto& step : steps) {
    Rng rng(6000 + step.len);
    LlrVector llrs(step.len);
    for (auto& v : llrs) v = static_cast<float>(rng.normal());
    LlrVector expected = llrs;
    descramble_llrs(expected, step.c_init);
    descramble_llrs_cached(llrs, step.c_init, ws);
    EXPECT_EQ(llrs, expected) << "c_init=" << step.c_init
                              << " len=" << step.len;
  }
}

// Bounded-memory regression: hammer the cache with far more distinct
// c_init values than it has slots. Retained bytes must stay capped at
// kEntries sequences of the longest requested length — the pre-LRU
// grow-only map would retain one sequence per distinct key and fail this.
TEST(ScramblerKernelDifferentialTest, CacheMemoryStaysBoundedUnderManyKeys) {
  DecodeWorkspace ws;
  const std::size_t len = 256;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const std::uint32_t c_init = scrambling_init(
        static_cast<std::uint16_t>(i & 0xffff), i % 10,
        static_cast<std::uint16_t>(i / 10));
    Rng rng(7000 + i);
    LlrVector llrs(len);
    for (auto& v : llrs) v = static_cast<float>(rng.normal());
    LlrVector expected = llrs;
    descramble_llrs(expected, c_init);
    descramble_llrs_cached(llrs, c_init, ws);
    ASSERT_EQ(llrs, expected) << "c_init=" << c_init;
  }
  EXPECT_LE(ws.scramble.retained_bytes(),
            ScrambleCache::kEntries * 2 * len);

  // A worker's steady state — one basestation's 10-value rotation — stays
  // fully resident: after one warm lap, every further lap hits (clock
  // advances exactly once per call, never regenerates).
  std::array<std::uint32_t, 10> rotation;
  for (std::uint32_t s = 0; s < 10; ++s)
    rotation[s] = scrambling_init(0x003D, s, 7);
  LlrVector llrs(len, 1.0f);
  for (const std::uint32_t c : rotation)
    descramble_llrs_cached(llrs, c, ws);  // warm lap
  const std::size_t retained = ws.scramble.retained_bytes();
  for (unsigned lap = 0; lap < 3; ++lap)
    for (const std::uint32_t c : rotation)
      descramble_llrs_cached(llrs, c, ws);
  EXPECT_EQ(ws.scramble.retained_bytes(), retained);
}

// --- OFDM ------------------------------------------------------------------

TEST(OfdmKernelDifferentialTest, DemodulateIntoMatchesPlainExactly) {
  const FftPlan plan(2048);
  const std::size_t nsc = 600, cp = 144;
  const IqVector time = random_iq(2048 + cp, 42);
  const IqVector ref = ofdm_demodulate(plan, time, cp, nsc);

  DecodeWorkspace ws;
  IqVector out(nsc);
  ofdm_demodulate_into(plan, time, cp, out, ws);
  expect_bit_identical(out, ref);
}

}  // namespace
}  // namespace rtopex::phy
