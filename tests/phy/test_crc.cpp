#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/crc.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

TEST(CrcTest, AttachAndCheckRoundTripA) {
  BitVector bits = random_bits(100, 1);
  attach_crc24(bits, CrcKind::kA);
  EXPECT_EQ(bits.size(), 124u);
  EXPECT_TRUE(check_crc24(bits, CrcKind::kA));
}

TEST(CrcTest, AttachAndCheckRoundTripB) {
  BitVector bits = random_bits(357, 2);
  attach_crc24(bits, CrcKind::kB);
  EXPECT_TRUE(check_crc24(bits, CrcKind::kB));
}

TEST(CrcTest, DetectsEverySingleBitFlip) {
  BitVector bits = random_bits(64, 3);
  attach_crc24(bits, CrcKind::kA);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] ^= 1;
    EXPECT_FALSE(check_crc24(bits, CrcKind::kA)) << "undetected flip at " << i;
    bits[i] ^= 1;
  }
}

TEST(CrcTest, DetectsBurstErrorsUpTo24Bits) {
  BitVector bits = random_bits(200, 4);
  attach_crc24(bits, CrcKind::kB);
  for (unsigned len = 2; len <= 24; ++len) {
    BitVector corrupted = bits;
    for (unsigned i = 0; i < len; ++i) corrupted[50 + i] ^= 1;
    EXPECT_FALSE(check_crc24(corrupted, CrcKind::kB))
        << "undetected burst of length " << len;
  }
}

TEST(CrcTest, KindsDiffer) {
  const BitVector bits = random_bits(80, 5);
  EXPECT_NE(crc24a(bits), crc24b(bits));
}

TEST(CrcTest, ZeroMessageHasZeroCrc) {
  // CRC of all-zero input is zero for these polynomials (no init/xorout).
  const BitVector zeros(100, 0);
  EXPECT_EQ(crc24a(zeros), 0u);
  EXPECT_EQ(crc24b(zeros), 0u);
}

TEST(CrcTest, LinearityProperty) {
  // CRC(a xor b) == CRC(a) xor CRC(b) for linear CRCs without init/xorout.
  const BitVector a = random_bits(128, 6);
  const BitVector b = random_bits(128, 7);
  BitVector x(128);
  for (std::size_t i = 0; i < 128; ++i)
    x[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
  EXPECT_EQ(crc24a(x), crc24a(a) ^ crc24a(b));
}

TEST(CrcTest, TooShortFailsCheck) {
  const BitVector bits(10, 1);
  EXPECT_FALSE(check_crc24(bits, CrcKind::kA));
}

TEST(CrcTest, MalformedPolynomialThrows) {
  const BitVector bits(8, 1);
  const std::vector<std::uint8_t> bad = {0, 1, 1};
  EXPECT_THROW(crc_bits(bits, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::phy
