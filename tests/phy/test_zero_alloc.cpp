// Zero-allocation guarantee for the steady-state uplink hot path.
//
// This binary replaces the global operator new/delete with counting
// versions. Each test warms a job + workspace (grow-only buffers reach
// their high-water mark), then flips the counter on and drives further
// subframes through the exact entry points the runtime workers use — the
// counter must stay at zero. Assertions run outside the measured region so
// gtest's own bookkeeping never pollutes the count.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>

#include "common/rng.hpp"
#include "obs/profile/profile.hpp"
#include "phy/turbo.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"
#include "runtime/workspace_pool.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rtopex::phy {
namespace {

/// Runs `fn` with allocation counting enabled; returns the number of
/// operator-new calls it performed.
template <typename Fn>
std::size_t count_allocations(Fn&& fn) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(ZeroAllocTest, CountingOperatorNewIsLive) {
  const std::size_t n = count_allocations([] {
    // Direct operator-new call: a new-expression could legally be elided.
    void* p = ::operator new(16);
    ::operator delete(p);
  });
  EXPECT_GE(n, 1u);
}

TEST(ZeroAllocTest, TurboDecodeIntoIsAllocationFreeWhenWarm) {
  const std::size_t k = 6144;
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 4);
  Rng rng(11);
  BitVector payload(k - 24);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next() & 1);
  attach_crc24(payload, CrcKind::kB);
  const auto cw = enc.encode(payload);
  const double sigma = 0.5;
  LlrVector sys(cw.systematic.size()), p1(sys.size()), p2(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    sys[i] = static_cast<float>((cw.systematic[i] ? -1.0 : 1.0) +
                                rng.normal(0.0, sigma));
    p1[i] = static_cast<float>((cw.parity1[i] ? -1.0 : 1.0) +
                               rng.normal(0.0, sigma));
    p2[i] = static_cast<float>((cw.parity2[i] ? -1.0 : 1.0) +
                               rng.normal(0.0, sigma));
  }
  const std::function<bool(std::span<const std::uint8_t>)> crc =
      [](std::span<const std::uint8_t> b) {
        return check_crc24(b, CrcKind::kB);
      };

  DecodeWorkspace ws;
  dec.decode_into(sys, p1, p2, ws, crc);  // warm-up: buffers grow here.
  const auto warm = ws.iterations;

  const std::size_t allocs = count_allocations([&] {
    for (int rep = 0; rep < 4; ++rep) dec.decode_into(sys, p1, p2, ws, crc);
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(ws.iterations, warm);  // deterministic reuse.
}

// The full subframe path as a NodeRuntime worker drives it: begin, FFT /
// demod / decode subtask loops, finalize_into — with a reused job, a reused
// per-thread workspace and a reused result. After one warm-up subframe per
// subframe index, steady state must not touch the heap at all, including
// across c_init changes (the descrambler regenerates in place).
TEST(ZeroAllocTest, UplinkSubframeSteadyStateIsAllocationFree) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  const unsigned mcs = 27;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);

  // Pre-generate subframes at distinct subframe indices (distinct scrambling
  // c_init) and fan each out to both antennas noiselessly.
  constexpr std::uint32_t kIndices[] = {1, 2, 3};
  std::vector<std::vector<IqVector>> antenna_sets;
  std::vector<TxSubframe> sent;
  for (const auto idx : kIndices) {
    sent.push_back(tx.transmit(mcs, idx, 900 + idx));
    antenna_sets.push_back(
        std::vector<IqVector>(cfg.num_antennas, sent.back().samples));
  }

  auto job = rx.make_job();
  DecodeWorkspace& ws = UplinkRxProcessor::thread_workspace();
  UplinkRxResult result;
  unsigned crc_failures = 0;
  const auto run_subframe = [&](std::size_t i) {
    rx.begin(job, antenna_sets[i], mcs, kIndices[i]);
    for (std::size_t s = 0; s < rx.fft_subtask_count(); ++s)
      rx.run_fft_subtask(job, s, ws);
    rx.demod_prepare(job);
    for (std::size_t s = 0; s < rx.demod_subtask_count(); ++s)
      rx.run_demod_subtask(job, s);
    rx.decode_prepare(job, ws);
    for (std::size_t s = 0; s < rx.decode_subtask_count(job); ++s)
      rx.run_decode_subtask(job, s, ws);
    rx.finalize_into(job, ws, result);
    if (!result.crc_ok) ++crc_failures;
  };

  for (std::size_t i = 0; i < sent.size(); ++i) run_subframe(i);  // warm-up.
  ASSERT_EQ(crc_failures, 0u) << "noiseless warm-up subframe failed CRC";

  const std::size_t allocs = count_allocations([&] {
    for (int rep = 0; rep < 6; ++rep) run_subframe(rep % sent.size());
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(crc_failures, 0u);
  EXPECT_EQ(result.payload, sent[2].payload);  // last rep = 5 % 3 -> set 2.
}

// Same property through the convenience overloads (thread-local workspace),
// which is the exact call pattern of NodeRuntime's migrated-chunk hosts.
TEST(ZeroAllocTest, ThreadWorkspaceOverloadsAreAllocationFreeWhenWarm) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  const unsigned mcs = 16;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(mcs, 4, 77);
  const std::vector<IqVector> antennas(cfg.num_antennas, sf.samples);

  auto job = rx.make_job();
  UplinkRxResult result;
  const auto run_subframe = [&] {
    rx.begin(job, antennas, mcs, sf.subframe_index);
    for (std::size_t s = 0; s < rx.fft_subtask_count(); ++s)
      rx.run_fft_subtask(job, s);
    rx.demod_prepare(job);
    for (std::size_t s = 0; s < rx.demod_subtask_count(); ++s)
      rx.run_demod_subtask(job, s);
    rx.decode_prepare(job);
    for (std::size_t s = 0; s < rx.decode_subtask_count(job); ++s)
      rx.run_decode_subtask(job, s);
    rx.finalize_into(job, UplinkRxProcessor::thread_workspace(), result);
  };

  run_subframe();  // warm-up.
  ASSERT_TRUE(result.crc_ok);

  const std::size_t allocs = count_allocations([&] {
    for (int rep = 0; rep < 4; ++rep) run_subframe();
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, sf.payload);
}

// The throughput-mode batched path as a batched NodeRuntime worker drives
// it: two persistent workers, each draining two subframes per pass (begin /
// FFT / demod / decode_prepare per job, then one cross-subframe
// run_decode_batch over both jobs) out of a pre-warmed WorkspacePool
// workspace. Thread spawning, pool construction/pre-warm and the first
// (growth) lap are setup; every later pass must leave the heap untouched on
// both threads — the counting operator new is global, so worker-thread
// allocations count too.
TEST(ZeroAllocTest, BatchedDecodeAcrossWorkersIsAllocationFreeWhenWarm) {
  namespace rt = rtopex::runtime;
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  const unsigned mcs = 27;
  const UplinkTransmitter tx(cfg);
  const UplinkRxProcessor rx(cfg);

  // Four noiseless subframes at distinct subframe indices; worker w owns
  // subframes {2w, 2w+1}.
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kPerWorker = 2;
  std::vector<TxSubframe> sent;
  std::vector<std::vector<IqVector>> antenna_sets;
  for (std::uint32_t i = 0; i < kWorkers * kPerWorker; ++i) {
    sent.push_back(tx.transmit(mcs, i + 1, 500 + i));
    antenna_sets.push_back(
        std::vector<IqVector>(cfg.num_antennas, sent.back().samples));
  }

  // Pool pre-warm (setup): a full dummy-subframe decode grows the
  // single-subframe buffers; the first worker lap below grows the
  // cross-subframe batch scratch to its two-job size.
  const rt::NumaTopology topo = rt::detect_numa_topology();
  const auto prewarm = [&](DecodeWorkspace& ws) {
    auto job = rx.make_job();
    UplinkRxResult r;
    rx.begin(job, antenna_sets[0], mcs, 1);
    for (std::size_t s = 0; s < rx.fft_subtask_count(); ++s)
      rx.run_fft_subtask(job, s, ws);
    rx.demod_prepare(job);
    for (std::size_t s = 0; s < rx.demod_subtask_count(); ++s)
      rx.run_demod_subtask(job, s);
    rx.decode_prepare(job, ws);
    rx.run_decode_batch(job, ws);
    rx.finalize_into(job, ws, r);
  };
  rt::WorkspacePool pool(topo, {}, kWorkers, prewarm);

  // Per-worker jobs/results built before the threads spawn (setup).
  std::vector<std::vector<UplinkRxJob>> jobs(kWorkers);
  std::vector<std::vector<UplinkRxResult>> results(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    for (std::size_t j = 0; j < kPerWorker; ++j) jobs[w].push_back(rx.make_job());
    results[w].resize(kPerWorker);
  }
  std::atomic<unsigned> crc_failures{0};

  const auto run_pass = [&](std::size_t w) {
    DecodeWorkspace& ws = pool.workspace(w);
    std::array<UplinkRxJob*, kPerWorker> batch{};
    for (std::size_t j = 0; j < kPerWorker; ++j) {
      UplinkRxJob& job = jobs[w][j];
      const std::size_t i = w * kPerWorker + j;
      rx.begin(job, antenna_sets[i], mcs,
               static_cast<std::uint32_t>(i + 1));
      for (std::size_t s = 0; s < rx.fft_subtask_count(); ++s)
        rx.run_fft_subtask(job, s, ws);
      rx.demod_prepare(job);
      for (std::size_t s = 0; s < rx.demod_subtask_count(); ++s)
        rx.run_demod_subtask(job, s);
      rx.decode_prepare(job, ws);
      batch[j] = &job;
    }
    rx.run_decode_batch(std::span<UplinkRxJob* const>(batch), ws);
    for (std::size_t j = 0; j < kPerWorker; ++j) {
      rx.finalize_into(*batch[j], ws, results[w][j]);
      if (!results[w][j].crc_ok)
        crc_failures.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Persistent workers driven by a generation gate (spawning a std::thread
  // allocates, so both outlive the counted region).
  std::mutex m;
  std::condition_variable cv;
  int pass = 0, done = 0;
  bool quit = false;
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      int seen = 0;
      for (;;) {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return quit || pass != seen; });
        if (quit) return;
        seen = pass;
        lk.unlock();
        run_pass(w);
        lk.lock();
        ++done;
        cv.notify_all();
      }
    });
  }
  const auto run_all = [&] {
    std::unique_lock<std::mutex> lk(m);
    done = 0;
    ++pass;
    cv.notify_all();
    cv.wait(lk, [&] { return done == static_cast<int>(kWorkers); });
  };

  run_all();  // warm lap: batch scratch reaches its two-job high-water mark.
  ASSERT_EQ(crc_failures.load(), 0u) << "noiseless warm-up lap failed CRC";

  const std::size_t allocs = count_allocations([&] {
    for (int rep = 0; rep < 3; ++rep) run_all();
  });
  {
    std::lock_guard<std::mutex> lk(m);
    quit = true;
    cv.notify_all();
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(crc_failures.load(), 0u);
  for (std::size_t w = 0; w < kWorkers; ++w)
    for (std::size_t j = 0; j < kPerWorker; ++j)
      EXPECT_EQ(results[w][j].payload, sent[w * kPerWorker + j].payload);
}

// The profiling layer rides on the same hot path, so its steady state must
// be allocation-free too: the sample slab is preallocated at construction
// and begin/end/ProfileSpan only write into it. Both real backends are
// held to the guarantee (software always; perf wherever the host allows
// it, via kAuto).
TEST(ZeroAllocTest, ProfileSpanSteadyStateIsAllocationFree) {
  namespace prof = rtopex::obs::profile;
  for (const auto backend :
       {prof::Backend::kSoftware, prof::Backend::kAuto}) {
    prof::ProfileConfig cfg;
    cfg.enabled = true;
    cfg.backend = backend;
    prof::Profiler profiler(1, cfg);

    // Warm-up: the perf backend opens its per-thread counter group on the
    // owner's first begin().
    {
      prof::ProfileSpan warm(&profiler, 0, "warm", rtopex::obs::Stage::kFft);
    }

    const std::size_t allocs = count_allocations([&] {
      for (int rep = 0; rep < 64; ++rep) {
        prof::ProfileSpan outer(&profiler, 0, "subframe");
        prof::ProfileSpan inner(&profiler, 0, "decode",
                                rtopex::obs::Stage::kDecode, 0,
                                static_cast<std::uint32_t>(rep));
        inner.set_payload(prof::pack_decode_regressors(6, 2, 27),
                          prof::pack_decode_load(12, 1));
      }
    });
    EXPECT_EQ(allocs, 0u) << "backend " << prof::to_string(backend);

    const prof::ProfileStore store = profiler.take();
    EXPECT_EQ(store.samples.size(), 2u * 64u + 1u);
    EXPECT_EQ(store.drops, 0u);
  }
}

}  // namespace
}  // namespace rtopex::phy
