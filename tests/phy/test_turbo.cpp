#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "phy/crc.hpp"
#include "phy/turbo.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

/// Converts bits to "channel" LLRs at the given reliability (positive for 0).
LlrVector to_llrs(const BitVector& bits, float magnitude) {
  LlrVector llrs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    llrs[i] = bits[i] ? -magnitude : magnitude;
  return llrs;
}

/// Adds Gaussian noise to BPSK-modulated bits; returns channel LLRs.
LlrVector noisy_llrs(const BitVector& bits, double snr_db, Rng& rng) {
  const double sigma = std::sqrt(0.5 / std::pow(10.0, snr_db / 10.0));
  LlrVector llrs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double x = bits[i] ? -1.0 : 1.0;
    const double y = x + rng.normal(0.0, sigma);
    llrs[i] = static_cast<float>(2.0 * y / (sigma * sigma));
  }
  return llrs;
}

TEST(TurboTest, EncoderOutputShape) {
  const QppInterleaver qpp(40);
  const TurboEncoder enc(qpp);
  const auto cw = enc.encode(random_bits(40, 1));
  EXPECT_EQ(cw.systematic.size(), 44u);
  EXPECT_EQ(cw.parity1.size(), 44u);
  EXPECT_EQ(cw.parity2.size(), 44u);
  EXPECT_EQ(cw.block_size(), 40u);
}

TEST(TurboTest, EncoderSystematicPartMatchesInput) {
  const QppInterleaver qpp(104);
  const TurboEncoder enc(qpp);
  const BitVector bits = random_bits(104, 2);
  const auto cw = enc.encode(bits);
  for (std::size_t i = 0; i < bits.size(); ++i)
    EXPECT_EQ(cw.systematic[i], bits[i]);
}

TEST(TurboTest, EncoderRejectsWrongSize)
{
  const QppInterleaver qpp(40);
  const TurboEncoder enc(qpp);
  EXPECT_THROW(enc.encode(random_bits(39, 3)), std::invalid_argument);
}

TEST(TurboTest, NoiselessDecodeIsPerfectInOneIteration) {
  const QppInterleaver qpp(128);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 4);
  const BitVector bits = random_bits(128, 4);
  const auto cw = enc.encode(bits);
  const auto result =
      dec.decode(to_llrs(cw.systematic, 10.0f), to_llrs(cw.parity1, 10.0f),
                 to_llrs(cw.parity2, 10.0f));
  EXPECT_EQ(result.bits, bits);
  EXPECT_EQ(result.iterations, 4u);  // no CRC callback -> runs to Lm
}

TEST(TurboTest, EarlyTerminationStopsAtFirstCrcPass) {
  const QppInterleaver qpp(128);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 4);
  BitVector payload = random_bits(104, 5);
  attach_crc24(payload, CrcKind::kB);
  const auto cw = enc.encode(payload);
  const auto result = dec.decode(
      to_llrs(cw.systematic, 10.0f), to_llrs(cw.parity1, 10.0f),
      to_llrs(cw.parity2, 10.0f),
      [](std::span<const std::uint8_t> b) { return check_crc24(b, CrcKind::kB); });
  EXPECT_TRUE(result.early_terminated);
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_EQ(result.bits, payload);
}

TEST(TurboTest, DecodesThroughModerateNoise) {
  const QppInterleaver qpp(512);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 6);
  Rng rng(6);
  int successes = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const BitVector bits = random_bits(512, 100 + trial);
    const auto cw = enc.encode(bits);
    // Rate-1/3 turbo at ~1.5 dB Eb/N0 equivalent should mostly decode.
    const double snr_db = -2.0;
    const auto result = dec.decode(noisy_llrs(cw.systematic, snr_db, rng),
                                   noisy_llrs(cw.parity1, snr_db, rng),
                                   noisy_llrs(cw.parity2, snr_db, rng));
    if (result.bits == bits) ++successes;
  }
  EXPECT_GE(successes, 4);
}

TEST(TurboTest, MoreNoiseNeedsMoreIterations) {
  const QppInterleaver qpp(512);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 8);
  Rng rng(7);
  const auto crc_free_count = [&](double snr_db, std::uint64_t seed) {
    Rng local(seed);
    BitVector payload = random_bits(488, seed);
    attach_crc24(payload, CrcKind::kB);
    const auto cw = enc.encode(payload);
    const auto result = dec.decode(
        noisy_llrs(cw.systematic, snr_db, local),
        noisy_llrs(cw.parity1, snr_db, local),
        noisy_llrs(cw.parity2, snr_db, local),
        [](std::span<const std::uint8_t> b) {
          return check_crc24(b, CrcKind::kB);
        });
    return result.iterations;
  };
  double clean = 0.0, noisy = 0.0;
  for (int i = 0; i < 4; ++i) {
    clean += crc_free_count(6.0, 200 + i);
    noisy += crc_free_count(-2.5, 200 + i);
  }
  EXPECT_LT(clean, noisy);
}

TEST(TurboTest, PuncturedPositionsToleratedAsZeroLlrs) {
  const QppInterleaver qpp(256);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 6);
  const BitVector bits = random_bits(256, 8);
  const auto cw = enc.encode(bits);
  auto sys = to_llrs(cw.systematic, 8.0f);
  auto p1 = to_llrs(cw.parity1, 8.0f);
  auto p2 = to_llrs(cw.parity2, 8.0f);
  // Puncture half of parity2 (as high-rate rate matching would).
  for (std::size_t i = 0; i < p2.size(); i += 2) p2[i] = 0.0f;
  const auto result = dec.decode(sys, p1, p2);
  EXPECT_EQ(result.bits, bits);
}

TEST(TurboTest, RejectsWrongStreamLengths) {
  const QppInterleaver qpp(40);
  const TurboDecoder dec(qpp);
  const LlrVector good(44, 1.0f), bad(43, 1.0f);
  EXPECT_THROW(dec.decode(bad, good, good), std::invalid_argument);
  EXPECT_THROW(dec.decode(good, bad, good), std::invalid_argument);
  EXPECT_THROW(dec.decode(good, good, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rtopex::phy
