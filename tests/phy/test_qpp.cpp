#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "phy/qpp_interleaver.hpp"

namespace rtopex::phy {
namespace {

TEST(QppTest, KnownLteParametersAreValid) {
  // 36.212 Table 5.1.3-3 anchors: (K, f1, f2).
  EXPECT_NO_THROW((QppInterleaver{40, 3, 10}));
  EXPECT_NO_THROW((QppInterleaver{64, 7, 16}));
  EXPECT_NO_THROW((QppInterleaver{128, 15, 32}));
  EXPECT_NO_THROW((QppInterleaver{1024, 31, 64}));
  EXPECT_NO_THROW((QppInterleaver{6144, 263, 480}));
}

TEST(QppTest, RejectsNonBijectiveParameters) {
  // f1 sharing a factor with K cannot be a bijection.
  EXPECT_THROW((QppInterleaver{40, 5, 10}), std::invalid_argument);
  EXPECT_THROW((QppInterleaver{4, 1, 2}), std::invalid_argument);
}

TEST(QppTest, InverseIsConsistent) {
  const QppInterleaver qpp(256);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(qpp.inverse(qpp.map(i)), i);
  }
}

TEST(QppTest, InterleaveDeinterleaveRoundTrip) {
  const QppInterleaver qpp(104);
  std::vector<int> data(104);
  std::iota(data.begin(), data.end(), 0);
  const auto scrambled = qpp.interleave(data);
  EXPECT_NE(scrambled, data);
  EXPECT_EQ(qpp.deinterleave(scrambled), data);
}

TEST(QppTest, BlockSizeGridProperties) {
  const auto& sizes = QppInterleaver::valid_block_sizes();
  EXPECT_EQ(sizes.front(), 40u);
  EXPECT_EQ(sizes.back(), 6144u);
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
  EXPECT_EQ(QppInterleaver::ceil_block_size(40), 40u);
  EXPECT_EQ(QppInterleaver::ceil_block_size(41), 48u);
  EXPECT_EQ(QppInterleaver::ceil_block_size(6100), 6144u);
  EXPECT_THROW(QppInterleaver::ceil_block_size(6145), std::invalid_argument);
}

// Property sweep: the search constructor must find a valid bijection for
// every grid size (this is what code-block segmentation relies on).
class QppGridTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QppGridTest, SearchFindsBijection) {
  const std::size_t k = GetParam();
  const QppInterleaver qpp(k);
  EXPECT_EQ(qpp.size(), k);
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < k; ++i) seen.insert(qpp.map(i));
  EXPECT_EQ(seen.size(), k);
}

INSTANTIATE_TEST_SUITE_P(
    AllGridSizes, QppGridTest,
    ::testing::ValuesIn(QppInterleaver::valid_block_sizes()));

}  // namespace
}  // namespace rtopex::phy
