#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "phy/fft.hpp"
#include "phy/ofdm.hpp"

namespace rtopex::phy {
namespace {

IqVector random_iq(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  IqVector v(n);
  for (auto& x : v)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return v;
}

double max_error(const IqVector& a, const IqVector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  return m;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  const FftPlan plan(n);
  IqVector data = random_iq(n, n);
  const IqVector expected = reference_dft(data, false);
  plan.forward(data);
  EXPECT_LT(max_error(data, expected), 1e-2 * std::sqrt(n));
}

TEST_P(FftSizeTest, InverseIsExactInverse) {
  const std::size_t n = GetParam();
  const FftPlan plan(n);
  const IqVector original = random_iq(n, n + 1);
  IqVector data = original;
  plan.forward(data);
  plan.inverse(data);
  EXPECT_LT(max_error(data, original), 1e-4 * std::sqrt(n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeTest,
                         ::testing::Values(2u, 8u, 64u, 512u, 1024u, 2048u));

TEST(FftTest, ParsevalHolds) {
  const std::size_t n = 256;
  const FftPlan plan(n);
  IqVector data = random_iq(n, 5);
  double time_energy = 0.0;
  for (const auto& x : data) time_energy += std::norm(x);
  plan.forward(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / n, time_energy, time_energy * 1e-4);
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  const FftPlan plan(64);
  IqVector data(64, Complex{0, 0});
  data[0] = {1.0f, 0.0f};
  plan.forward(data);
  for (const auto& x : data) EXPECT_NEAR(std::abs(x), 1.0, 1e-5);
}

TEST(FftTest, RejectsBadSizes) {
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
  EXPECT_THROW(FftPlan(1), std::invalid_argument);
  EXPECT_THROW(FftPlan(100), std::invalid_argument);
  const FftPlan plan(8);
  IqVector wrong(7);
  EXPECT_THROW(plan.forward(wrong), std::invalid_argument);
}

TEST(OfdmTest, SubcarrierBinMappingIsDcCentred) {
  // nsc = 4, fft = 16: subcarriers -2,-1,+1,+2 -> bins 14,15,1,2.
  EXPECT_EQ(subcarrier_bin(0, 4, 16), 14u);
  EXPECT_EQ(subcarrier_bin(1, 4, 16), 15u);
  EXPECT_EQ(subcarrier_bin(2, 4, 16), 1u);
  EXPECT_EQ(subcarrier_bin(3, 4, 16), 2u);
  EXPECT_THROW(subcarrier_bin(4, 4, 16), std::invalid_argument);
}

TEST(OfdmTest, ModulateDemodulateRoundTrip) {
  const FftPlan plan(256);
  const std::size_t nsc = 120, cp = 18;
  const IqVector subcarriers = random_iq(nsc, 9);
  const IqVector time = ofdm_modulate(plan, subcarriers, cp);
  EXPECT_EQ(time.size(), 256 + cp);
  const IqVector back = ofdm_demodulate(plan, time, cp, nsc);
  EXPECT_LT(max_error(back, subcarriers), 1e-3);
}

TEST(OfdmTest, CyclicPrefixIsEndOfSymbol) {
  const FftPlan plan(64);
  const IqVector subcarriers = random_iq(30, 10);
  const IqVector time = ofdm_modulate(plan, subcarriers, 8);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(time[i] - time[64 + i]), 0.0, 1e-6);
}

TEST(OfdmTest, ZadoffChuHasConstantAmplitude) {
  const IqVector zc = zadoff_chu(25, 600);
  for (const auto& x : zc) EXPECT_NEAR(std::abs(x), 1.0, 1e-5);
}

TEST(OfdmTest, DifferentCellsGetDifferentDmrs) {
  const IqVector a = dmrs_sequence(120, 0);
  const IqVector b = dmrs_sequence(120, 1);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(OfdmTest, CircularDelayOnlyRotatesPhase) {
  // A cyclic shift within the CP appears as a per-subcarrier phase ramp,
  // with unchanged magnitude — the property channel estimation relies on.
  const FftPlan plan(128);
  const std::size_t nsc = 60, cp = 12;
  const IqVector subcarriers = random_iq(nsc, 11);
  IqVector time = ofdm_modulate(plan, subcarriers, cp);
  // Delay by 3 samples (within the CP) by shifting the whole symbol.
  IqVector delayed(time.size());
  for (std::size_t i = 3; i < time.size(); ++i) delayed[i] = time[i - 3];
  // Fill the first samples from the (cyclically equivalent) symbol tail.
  for (std::size_t i = 0; i < 3; ++i)
    delayed[i] = time[time.size() - 3 + i];
  const IqVector received = ofdm_demodulate(plan, delayed, cp, nsc);
  for (std::size_t k = 0; k < nsc; ++k)
    EXPECT_NEAR(std::abs(received[k]), std::abs(subcarriers[k]), 1e-3);
}

}  // namespace
}  // namespace rtopex::phy
