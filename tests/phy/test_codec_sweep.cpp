// Parameterized sweeps of the codec path over the block-size grid: turbo
// encode/decode loopback and rate-matching inversion must hold for every
// class of K the segmentation can produce.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/crc.hpp"
#include "phy/qpp_interleaver.hpp"
#include "phy/rate_match.hpp"
#include "phy/turbo.hpp"

namespace rtopex::phy {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

LlrVector to_llrs(const BitVector& bits, float magnitude) {
  LlrVector llrs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    llrs[i] = bits[i] ? -magnitude : magnitude;
  return llrs;
}

// A sample of the grid covering each granularity region (step 8/16/32/64)
// plus the extremes.
std::vector<std::size_t> grid_sample() {
  return {40, 104, 512, 528, 1024, 1056, 2048, 2112, 4160, 6144};
}

class CodecGridTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecGridTest, NoiselessTurboLoopback) {
  const std::size_t k = GetParam();
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 2);
  const BitVector bits = random_bits(k, k);
  const auto cw = enc.encode(bits);
  const auto result =
      dec.decode(to_llrs(cw.systematic, 8.0f), to_llrs(cw.parity1, 8.0f),
                 to_llrs(cw.parity2, 8.0f));
  EXPECT_EQ(result.bits, bits);
}

TEST_P(CodecGridTest, RateMatchFullRateInverse) {
  const std::size_t k = GetParam();
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const RateMatcher rm(k);
  const auto cw = enc.encode(random_bits(k, k + 1));
  const std::size_t total = 3 * (k + 4);
  const BitVector sent = rm.match(cw, total);
  LlrVector llrs(total);
  for (std::size_t i = 0; i < total; ++i) llrs[i] = sent[i] ? -1.0f : 1.0f;
  const auto streams = rm.dematch(llrs);
  for (std::size_t i = 0; i < k + 4; ++i) {
    ASSERT_EQ(streams.systematic[i] < 0, cw.systematic[i] == 1) << i;
    ASSERT_EQ(streams.parity1[i] < 0, cw.parity1[i] == 1) << i;
    ASSERT_EQ(streams.parity2[i] < 0, cw.parity2[i] == 1) << i;
  }
}

TEST_P(CodecGridTest, PuncturedRateMatchedLoopbackDecodes) {
  // Encode -> rate match at ~0.83 code rate -> dematch -> decode: the full
  // code-block path at a high code rate typical of MCS 27.
  const std::size_t k = GetParam();
  const QppInterleaver qpp(k);
  const TurboEncoder enc(qpp);
  const TurboDecoder dec(qpp, 4);
  const RateMatcher rm(k);
  BitVector payload = random_bits(k - 24, 2 * k);
  attach_crc24(payload, CrcKind::kB);
  const auto cw = enc.encode(payload);
  const std::size_t e = (k * 6) / 5;  // rate ~0.83
  const BitVector sent = rm.match(cw, e);
  LlrVector llrs(e);
  for (std::size_t i = 0; i < e; ++i) llrs[i] = sent[i] ? -6.0f : 6.0f;
  const auto streams = rm.dematch(llrs);
  const auto result = dec.decode(
      streams.systematic, streams.parity1, streams.parity2,
      [](std::span<const std::uint8_t> b) {
        return check_crc24(b, CrcKind::kB);
      });
  EXPECT_TRUE(result.early_terminated) << "K=" << k;
  EXPECT_EQ(result.bits, payload);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, CodecGridTest,
                         ::testing::ValuesIn(grid_sample()),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rtopex::phy
