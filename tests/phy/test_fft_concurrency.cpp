// The FftPlan is shared by every subtask the scheduler may run on any core
// concurrently — verify that concurrent transforms on distinct buffers are
// safe and correct.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "phy/fft.hpp"

namespace rtopex::phy {
namespace {

TEST(FftConcurrencyTest, SharedPlanConcurrentTransforms) {
  const FftPlan plan(1024);
  Rng rng(1);
  IqVector original(1024);
  for (auto& x : original)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  IqVector reference = original;
  plan.forward(reference);

  constexpr int kThreads = 8;
  constexpr int kReps = 50;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kReps; ++r) {
        IqVector data = original;
        plan.forward(data);
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (std::abs(data[i] - reference[i]) > 1e-4f) {
            mismatches.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(FftConcurrencyTest, ConcurrentSubframeJobsStaySeparate) {
  // Two jobs processed by "different cores" (threads) must not interfere:
  // the UplinkRxProcessor is shared, jobs are private.
  // (The heavier cross-checks live in tests/runtime.)
  const FftPlan plan(512);
  Rng rng(2);
  IqVector a(512), b(512);
  for (auto& x : a)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  for (auto& x : b)
    x = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  IqVector ra = a, rb = b;
  plan.forward(ra);
  plan.forward(rb);
  std::thread t1([&] { plan.forward(a); });
  std::thread t2([&] { plan.forward(b); });
  t1.join();
  t2.join();
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_LT(std::abs(a[i] - ra[i]), 1e-4f);
    EXPECT_LT(std::abs(b[i] - rb[i]), 1e-4f);
  }
}

}  // namespace
}  // namespace rtopex::phy
