// End-to-end uplink chain tests: TX -> channel -> RX must decode, iteration
// count must respond to SNR, and failure must be detected (NACK), never
// silently mis-decoded.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "phy/uplink_rx.hpp"
#include "phy/uplink_tx.hpp"

namespace rtopex::phy {
namespace {

channel::ChannelConfig awgn(double snr_db, unsigned antennas) {
  channel::ChannelConfig c;
  c.snr_db = snr_db;
  c.num_rx_antennas = antennas;
  c.num_taps = 1;
  c.rayleigh_fading = false;
  return c;
}

UplinkRxResult loopback(const UplinkConfig& cfg, unsigned mcs, double snr_db,
                        std::uint64_t seed, BitVector* sent = nullptr,
                        unsigned taps = 1, bool fading = false) {
  UplinkTransmitter tx(cfg);
  UplinkRxProcessor rx(cfg);
  const TxSubframe sf = tx.transmit(mcs, /*subframe_index=*/1, seed);
  if (sent) *sent = sf.payload;
  auto ch_cfg = awgn(snr_db, cfg.num_antennas);
  ch_cfg.num_taps = taps;
  ch_cfg.rayleigh_fading = fading;
  const auto rx_samples =
      channel::pass_through_channel(sf.samples, ch_cfg, seed ^ 0xabcdef);
  return rx.process(rx_samples, mcs, sf.subframe_index);
}

TEST(ChainTest, DecodesLowMcsAtHighSnr) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  BitVector sent;
  const auto result = loopback(cfg, /*mcs=*/0, /*snr_db=*/30.0, 42, &sent);
  ASSERT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, sent);
  EXPECT_GE(result.iterations, 1u);
}

TEST(ChainTest, DecodesHighMcsAtHighSnr) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  BitVector sent;
  const auto result = loopback(cfg, /*mcs=*/27, /*snr_db=*/30.0, 7, &sent);
  ASSERT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, sent);
}

TEST(ChainTest, FailsCleanlyAtVeryLowSnr) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  BitVector sent;
  const auto result = loopback(cfg, /*mcs=*/27, /*snr_db=*/-5.0, 13, &sent);
  // NACK expected; the essential property is no silent corruption.
  if (result.crc_ok) EXPECT_EQ(result.payload, sent);
  EXPECT_EQ(result.iterations, cfg.max_iterations);
}

TEST(ChainTest, IterationCountRisesAsSnrDrops) {
  UplinkConfig cfg;
  cfg.num_antennas = 2;
  double high_snr_iters = 0.0;
  double low_snr_iters = 0.0;
  constexpr int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    high_snr_iters += loopback(cfg, 16, 30.0, 100 + i).mean_iterations;
    low_snr_iters += loopback(cfg, 16, 9.0, 100 + i).mean_iterations;
  }
  EXPECT_GE(low_snr_iters, high_snr_iters);
}

}  // namespace
}  // namespace rtopex::phy
