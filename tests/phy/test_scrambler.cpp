#include <gtest/gtest.h>

#include "phy/scrambler.hpp"

namespace rtopex::phy {
namespace {

TEST(ScramblerTest, SequenceIsDeterministic) {
  const BitVector a = scrambling_sequence(12345, 1000);
  const BitVector b = scrambling_sequence(12345, 1000);
  EXPECT_EQ(a, b);
}

TEST(ScramblerTest, DifferentInitsDecorrelate) {
  const BitVector a = scrambling_sequence(1, 10000);
  const BitVector b = scrambling_sequence(2, 10000);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++agree;
  EXPECT_NEAR(static_cast<double>(agree) / a.size(), 0.5, 0.03);
}

TEST(ScramblerTest, SequenceIsBalanced) {
  const BitVector c = scrambling_sequence(777, 100000);
  std::size_t ones = 0;
  for (const auto b : c) ones += b;
  EXPECT_NEAR(static_cast<double>(ones) / c.size(), 0.5, 0.01);
}

TEST(ScramblerTest, ScrambleIsInvolution) {
  BitVector bits(500);
  for (std::size_t i = 0; i < bits.size(); ++i)
    bits[i] = static_cast<std::uint8_t>(i % 3 == 0);
  const BitVector original = bits;
  scramble_bits(bits, 42);
  EXPECT_NE(bits, original);
  scramble_bits(bits, 42);
  EXPECT_EQ(bits, original);
}

TEST(ScramblerTest, LlrDescrambleMatchesBitScramble) {
  BitVector bits(200, 0);
  for (std::size_t i = 0; i < bits.size(); i += 2) bits[i] = 1;
  BitVector scrambled = bits;
  scramble_bits(scrambled, 99);
  // Map scrambled bits to LLRs and descramble: signs must encode the
  // original bits.
  LlrVector llrs(scrambled.size());
  for (std::size_t i = 0; i < llrs.size(); ++i)
    llrs[i] = scrambled[i] ? -1.0f : 1.0f;
  descramble_llrs(llrs, 99);
  for (std::size_t i = 0; i < llrs.size(); ++i)
    EXPECT_EQ(llrs[i] < 0.0f, bits[i] == 1) << i;
}

TEST(ScramblerTest, InitDependsOnAllIdentity) {
  const auto base = scrambling_init(100, 3, 7);
  EXPECT_NE(base, scrambling_init(101, 3, 7));
  EXPECT_NE(base, scrambling_init(100, 4, 7));
  EXPECT_NE(base, scrambling_init(100, 3, 8));
  // Subframe index wraps mod 10 as in LTE.
  EXPECT_EQ(base, scrambling_init(100, 13, 7));
}

}  // namespace
}  // namespace rtopex::phy
