// Direct unit tests of the shared stage-chain executor with hand-built
// subframes: admission drops at each stage, deadline termination,
// completion, and the two admission policies.
#include <gtest/gtest.h>

#include "model/task_cost_model.hpp"
#include "sched/serial_exec.hpp"

namespace rtopex::sched {
namespace {

sim::SubframeWork make_work(unsigned mcs, unsigned iterations,
                            Duration platform_error = 0) {
  const model::TaskCostModel cost(model::paper_gpp_model(), 2, 50);
  sim::SubframeWork w;
  w.bs = 0;
  w.index = 0;
  w.radio_time = 0;
  w.arrival = microseconds(500);
  w.deadline = milliseconds(2);
  w.mcs = mcs;
  w.iterations = iterations;
  w.costs = cost.costs(mcs, iterations, platform_error);
  w.wcet = cost.costs(mcs, 4, 0);
  w.decode_optimistic = cost.costs(mcs, 1, 0).decode;
  return w;
}

TEST(SerialExecTest, CompletesWithAmpleTime) {
  const auto w = make_work(10, 1);
  const auto o = execute_serial(w, w.arrival);
  EXPECT_TRUE(o.completed);
  EXPECT_FALSE(o.miss);
  EXPECT_EQ(o.end, w.arrival + w.costs.total());
}

TEST(SerialExecTest, EntryPenaltyDelaysCompletion) {
  const auto w = make_work(10, 1);
  const auto base = execute_serial(w, w.arrival);
  const auto delayed = execute_serial(w, w.arrival, microseconds(80));
  EXPECT_EQ(delayed.end, base.end + microseconds(80));
}

TEST(SerialExecTest, DropsAtFftWhenHopeless) {
  auto w = make_work(10, 1);
  // Start beyond the deadline minus the FFT time.
  const TimePoint late = w.deadline - w.costs.fft / 2;
  const auto o = execute_serial(w, late);
  EXPECT_TRUE(o.miss);
  EXPECT_TRUE(o.dropped);
  EXPECT_FALSE(o.terminated);
  EXPECT_EQ(o.end, late);  // nothing executed
}

TEST(SerialExecTest, DropsAtDemodWhenOnlyFftFits) {
  auto w = make_work(27, 1);
  const TimePoint late =
      w.deadline - w.costs.fft - w.costs.demod / 2;
  const auto o = execute_serial(w, late);
  EXPECT_TRUE(o.dropped);
  EXPECT_EQ(o.end, late + w.costs.fft);  // FFT ran, then the check fired
}

TEST(SerialExecTest, WcetAdmissionDropsHighMcsEvenWhenActualFits) {
  // The defining behaviour of the paper's partitioned scheduler: a subframe
  // whose *worst case* cannot fit is dropped even if its actual iteration
  // count would have fit (Fig. 17's 100%-miss cliff).
  const auto w = make_work(27, 1);  // actual L = 1 would fit in 1.5 ms
  const TimePoint start = w.arrival;  // budget 1.5 ms
  ASSERT_LT(start + w.costs.total(), w.deadline);           // actual fits
  ASSERT_GT(start + w.costs.fft + w.costs.demod + w.wcet.decode,
            w.deadline);                                    // WCET does not
  const auto wcet = execute_serial(w, start, 0, AdmissionPolicy::kWcet);
  EXPECT_TRUE(wcet.dropped);
  const auto opt = execute_serial(w, start, 0, AdmissionPolicy::kOptimistic);
  EXPECT_TRUE(opt.completed);
}

TEST(SerialExecTest, OptimisticAdmissionTerminatesAtDeadline) {
  // Optimistic admission lets a long decode start, then kills it at the
  // deadline.
  const auto w = make_work(27, 4);  // ~2.04 ms total, budget 1.5 ms
  const auto o =
      execute_serial(w, w.arrival, 0, AdmissionPolicy::kOptimistic);
  EXPECT_TRUE(o.miss);
  EXPECT_TRUE(o.terminated);
  EXPECT_EQ(o.end, w.deadline);  // the core is freed exactly at the deadline
}

TEST(SerialExecTest, PlatformJitterCanTerminateAdmittedSubframe) {
  // A subframe admitted under WCET (no-jitter bound) can still overrun via
  // the platform-error term and be terminated.
  auto w = make_work(14, 4, /*platform_error=*/microseconds(900));
  ASSERT_LE(w.arrival + w.costs.fft + w.costs.demod + w.wcet.decode,
            w.deadline);
  ASSERT_GT(w.arrival + w.costs.total(), w.deadline);
  const auto o = execute_serial(w, w.arrival, 0, AdmissionPolicy::kWcet);
  EXPECT_TRUE(o.terminated);
}

}  // namespace
}  // namespace rtopex::sched
