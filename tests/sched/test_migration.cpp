// Unit and property tests of Algorithm 1 (the migration planner).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/migration.hpp"

namespace rtopex::sched {
namespace {

TEST(MigrationPlanTest, NoCandidatesKeepsEverythingLocal) {
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), {});
  EXPECT_TRUE(plan.chunks.empty());
  EXPECT_EQ(plan.local_subtasks, 6u);
}

TEST(MigrationPlanTest, SingleSubtaskNeverMigrates) {
  const std::vector<MigrationCandidate> cands = {{1, milliseconds(10)}};
  const auto plan = plan_migration(1, microseconds(100), microseconds(20), cands);
  EXPECT_TRUE(plan.chunks.empty());
  EXPECT_EQ(plan.local_subtasks, 1u);
}

TEST(MigrationPlanTest, LargeWindowTakesHalf) {
  // R3: at most floor(S/2) to one core.
  const std::vector<MigrationCandidate> cands = {{1, milliseconds(100)}};
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), cands);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].count, 3u);
  EXPECT_EQ(plan.local_subtasks, 3u);
}

TEST(MigrationPlanTest, WindowLimitsChunkSize) {
  // R1: lim_off = floor(f_ck / (t_p + delta)).
  const std::vector<MigrationCandidate> cands = {{1, microseconds(250)}};
  const auto plan = plan_migration(8, microseconds(100), microseconds(20), cands);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].count, 2u);  // 250 / 120 = 2
  EXPECT_EQ(plan.local_subtasks, 6u);
}

TEST(MigrationPlanTest, SecondCoreRespectsR2) {
  // After a chunk of 3, S = 3 and max_off = 3, so R2 blocks further
  // migration (S - max_off = 0).
  const std::vector<MigrationCandidate> cands = {{1, milliseconds(100)},
                                                 {2, milliseconds(100)}};
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), cands);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.local_subtasks, 3u);
}

TEST(MigrationPlanTest, NarrowWindowsSpreadAcrossCores) {
  // Windows of 1 subtask each: 2 cores get one each before R2/R3 bind.
  const std::vector<MigrationCandidate> cands = {
      {1, microseconds(130)}, {2, microseconds(130)}, {3, microseconds(130)}};
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), cands);
  EXPECT_EQ(plan.migrated_total() + plan.local_subtasks, 6u);
  for (const auto& c : plan.chunks) EXPECT_EQ(c.count, 1u);
  EXPECT_GE(plan.chunks.size(), 2u);
}

TEST(MigrationPlanTest, ZeroWindowCoresSkipped) {
  const std::vector<MigrationCandidate> cands = {{1, 0}, {2, microseconds(10)}};
  const auto plan = plan_migration(4, microseconds(100), microseconds(20), cands);
  EXPECT_TRUE(plan.chunks.empty());
  EXPECT_EQ(plan.local_subtasks, 4u);
}

TEST(MigrationPlanTest, RejectsNonPositiveSubtaskTime) {
  EXPECT_THROW(plan_migration(4, 0, microseconds(20), {}),
               std::invalid_argument);
}

// Property sweep: R1-R3 must hold for arbitrary candidate sets.
class MigrationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationPropertyTest, InvariantsHoldForRandomInputs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned subtasks = 1 + static_cast<unsigned>(rng.uniform_int(30));
    const Duration tp = microseconds(1 + rng.uniform_int(300));
    const Duration delta = microseconds(rng.uniform_int(50));
    std::vector<MigrationCandidate> cands;
    const unsigned n_cands = static_cast<unsigned>(rng.uniform_int(8));
    for (unsigned c = 0; c < n_cands; ++c)
      cands.push_back(
          {c, microseconds(static_cast<std::int64_t>(rng.uniform_int(3000)))});

    const auto plan = plan_migration(subtasks, tp, delta, cands);

    // Conservation: every subtask is either local or migrated exactly once.
    EXPECT_EQ(plan.local_subtasks + plan.migrated_total(), subtasks);
    unsigned max_off = 0;
    for (const auto& chunk : plan.chunks) {
      EXPECT_GT(chunk.count, 0u);
      // R1: the chunk fits in the candidate's window.
      const auto cand =
          std::find_if(cands.begin(), cands.end(),
                       [&](const auto& c) { return c.core == chunk.core; });
      ASSERT_NE(cand, cands.end());
      EXPECT_LE(static_cast<Duration>(chunk.count) * (tp + delta),
                cand->free_window);
      max_off = std::max(max_off, chunk.count);
    }
    // R2/R3 aggregate consequence: local keeps at least the largest chunk,
    // and at least half... of what remained at each step; globally local
    // never holds fewer subtasks than the largest migrated chunk.
    EXPECT_GE(plan.local_subtasks, max_off);
    if (subtasks >= 1) EXPECT_GE(plan.local_subtasks, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace rtopex::sched
