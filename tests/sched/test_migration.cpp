// Unit and property tests of Algorithm 1 (the migration planner).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "sched/migration.hpp"

namespace rtopex::sched {
namespace {

TEST(MigrationPlanTest, NoCandidatesKeepsEverythingLocal) {
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), {});
  EXPECT_TRUE(plan.chunks.empty());
  EXPECT_EQ(plan.local_subtasks, 6u);
}

TEST(MigrationPlanTest, SingleSubtaskNeverMigrates) {
  const std::vector<MigrationCandidate> cands = {{1, milliseconds(10)}};
  const auto plan = plan_migration(1, microseconds(100), microseconds(20), cands);
  EXPECT_TRUE(plan.chunks.empty());
  EXPECT_EQ(plan.local_subtasks, 1u);
}

TEST(MigrationPlanTest, LargeWindowTakesHalf) {
  // R3: at most floor(S/2) to one core.
  const std::vector<MigrationCandidate> cands = {{1, milliseconds(100)}};
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), cands);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].count, 3u);
  EXPECT_EQ(plan.local_subtasks, 3u);
}

TEST(MigrationPlanTest, WindowLimitsChunkSize) {
  // R1: lim_off = floor(f_ck / (t_p + delta)).
  const std::vector<MigrationCandidate> cands = {{1, microseconds(250)}};
  const auto plan = plan_migration(8, microseconds(100), microseconds(20), cands);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].count, 2u);  // 250 / 120 = 2
  EXPECT_EQ(plan.local_subtasks, 6u);
}

TEST(MigrationPlanTest, SecondCoreRespectsR2) {
  // After a chunk of 3, S = 3 and max_off = 3, so R2 blocks further
  // migration (S - max_off = 0).
  const std::vector<MigrationCandidate> cands = {{1, milliseconds(100)},
                                                 {2, milliseconds(100)}};
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), cands);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.local_subtasks, 3u);
}

TEST(MigrationPlanTest, NarrowWindowsSpreadAcrossCores) {
  // Windows of 1 subtask each: 2 cores get one each before R2/R3 bind.
  const std::vector<MigrationCandidate> cands = {
      {1, microseconds(130)}, {2, microseconds(130)}, {3, microseconds(130)}};
  const auto plan = plan_migration(6, microseconds(100), microseconds(20), cands);
  EXPECT_EQ(plan.migrated_total() + plan.local_subtasks, 6u);
  for (const auto& c : plan.chunks) EXPECT_EQ(c.count, 1u);
  EXPECT_GE(plan.chunks.size(), 2u);
}

TEST(MigrationPlanTest, ZeroWindowCoresSkipped) {
  const std::vector<MigrationCandidate> cands = {{1, 0}, {2, microseconds(10)}};
  const auto plan = plan_migration(4, microseconds(100), microseconds(20), cands);
  EXPECT_TRUE(plan.chunks.empty());
  EXPECT_EQ(plan.local_subtasks, 4u);
}

TEST(MigrationPlanTest, RejectsNonPositiveSubtaskTime) {
  EXPECT_THROW(plan_migration(4, 0, microseconds(20), {}),
               std::invalid_argument);
}

// Property sweep: R1-R3 must hold for arbitrary candidate sets.
class MigrationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationPropertyTest, InvariantsHoldForRandomInputs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned subtasks = 1 + static_cast<unsigned>(rng.uniform_int(30));
    const Duration tp = microseconds(1 + rng.uniform_int(300));
    const Duration delta = microseconds(rng.uniform_int(50));
    std::vector<MigrationCandidate> cands;
    const unsigned n_cands = static_cast<unsigned>(rng.uniform_int(8));
    for (unsigned c = 0; c < n_cands; ++c)
      cands.push_back(
          {c, microseconds(static_cast<std::int64_t>(rng.uniform_int(3000)))});

    const auto plan = plan_migration(subtasks, tp, delta, cands);

    // Conservation: every subtask is either local or migrated exactly once.
    EXPECT_EQ(plan.local_subtasks + plan.migrated_total(), subtasks);
    unsigned max_off = 0;
    for (const auto& chunk : plan.chunks) {
      EXPECT_GT(chunk.count, 0u);
      // R1: the chunk fits in the candidate's window.
      const auto cand =
          std::find_if(cands.begin(), cands.end(),
                       [&](const auto& c) { return c.core == chunk.core; });
      ASSERT_NE(cand, cands.end());
      EXPECT_LE(static_cast<Duration>(chunk.count) * (tp + delta),
                cand->free_window);
      max_off = std::max(max_off, chunk.count);
    }
    // R2/R3 aggregate consequence: local keeps at least the largest chunk,
    // and at least half... of what remained at each step; globally local
    // never holds fewer subtasks than the largest migrated chunk.
    EXPECT_GE(plan.local_subtasks, max_off);
    if (subtasks >= 1) EXPECT_GE(plan.local_subtasks, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Replay-based property tests: re-run Algorithm 1's greedy loop step by
// step over the planner's own chunk sequence and check the paper's exact
// per-step formula  n_off = min(S - max_off, lim_off, floor(S / 2)).
class MigrationReplayTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationReplayTest, ChunksMatchAlgorithmOneStepByStep) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned subtasks = 1 + static_cast<unsigned>(rng.uniform_int(40));
    const Duration tp = microseconds(1 + rng.uniform_int(400));
    const Duration delta = microseconds(rng.uniform_int(60));
    std::vector<MigrationCandidate> cands;
    const unsigned n_cands = static_cast<unsigned>(rng.uniform_int(10));
    for (unsigned c = 0; c < n_cands; ++c)
      cands.push_back(
          {c, microseconds(static_cast<std::int64_t>(rng.uniform_int(5000)))});

    const auto plan = plan_migration(subtasks, tp, delta, cands);

    // Replay: walk the candidate list with the paper's formula and demand
    // the planner produced exactly the same chunk at every step.
    unsigned s = subtasks;
    unsigned max_off = 0;
    std::size_t chunk_idx = 0;
    for (const auto& cand : cands) {
      if (s <= 1) break;
      const auto lim_off = static_cast<unsigned>(
          std::max<Duration>(0, cand.free_window / (tp + delta)));
      const unsigned n_off =
          std::min({lim_off, s - max_off, s / 2});
      if (n_off == 0) continue;
      ASSERT_LT(chunk_idx, plan.chunks.size());
      EXPECT_EQ(plan.chunks[chunk_idx].core, cand.core);
      EXPECT_EQ(plan.chunks[chunk_idx].count, n_off);
      // Per-step bounds, spelled out: never more than half of what
      // remains, never more than the window fits, never exposing the
      // local side to a straggler larger than what it keeps.
      EXPECT_LE(n_off, s / 2);
      EXPECT_LE(n_off, lim_off);
      EXPECT_LE(n_off, s - max_off);
      max_off = std::max(max_off, n_off);
      s -= n_off;
      ++chunk_idx;
    }
    EXPECT_EQ(chunk_idx, plan.chunks.size());
    // Conservation: chunk counts sum to S - local_subtasks.
    EXPECT_EQ(plan.migrated_total(), subtasks - plan.local_subtasks);
    EXPECT_EQ(plan.local_subtasks, s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationReplayTest,
                         ::testing::Values(11u, 12u, 13u));

TEST(MigrationPlanTest, EmptyCandidatesAlwaysAllLocal) {
  // The empty-candidate input must yield an all-local plan for any S,
  // including with the ablation constraints disabled.
  for (unsigned s : {0u, 1u, 2u, 7u, 64u}) {
    const auto plan =
        plan_migration(s, microseconds(100), microseconds(20), {});
    EXPECT_TRUE(plan.chunks.empty());
    EXPECT_EQ(plan.local_subtasks, s);
    MigrationConstraints loose;
    loose.local_covers_largest_chunk = false;
    loose.local_keeps_majority = false;
    const auto plan2 =
        plan_migration(s, microseconds(100), microseconds(20), {}, loose);
    EXPECT_TRUE(plan2.chunks.empty());
    EXPECT_EQ(plan2.local_subtasks, s);
  }
}

TEST(MigrationPlanTest, LimOffIsExactlyFloorWindowOverPerSubtaskCost) {
  // lim_off = floor(f_ck / (t_p + delta)): probe the boundary on both
  // sides of a multiple of the per-subtask cost.
  const Duration tp = microseconds(100);
  const Duration delta = microseconds(25);
  for (unsigned k : {1u, 2u, 3u}) {
    const Duration per = tp + delta;
    // Window one ns short of k subtasks -> k - 1 fit.
    const std::vector<MigrationCandidate> below = {
        {1, static_cast<Duration>(k) * per - 1}};
    const auto plan_below = plan_migration(100, tp, delta, below);
    ASSERT_LE(plan_below.chunks.size(), 1u);
    const unsigned got_below =
        plan_below.chunks.empty() ? 0 : plan_below.chunks[0].count;
    EXPECT_EQ(got_below, k - 1);
    // Window of exactly k subtasks -> k fit.
    const std::vector<MigrationCandidate> at = {
        {1, static_cast<Duration>(k) * per}};
    const auto plan_at = plan_migration(100, tp, delta, at);
    ASSERT_EQ(plan_at.chunks.size(), 1u);
    EXPECT_EQ(plan_at.chunks[0].count, k);
  }
}

TEST(MigrationPlanTest, NeverMigratesMoreThanHalfPerStep) {
  // One enormous window: R3 alone must cap the chunk at floor(S/2).
  for (unsigned s = 2; s <= 33; ++s) {
    const std::vector<MigrationCandidate> cands = {{1, milliseconds(10'000)}};
    const auto plan =
        plan_migration(s, microseconds(50), microseconds(10), cands);
    ASSERT_EQ(plan.chunks.size(), 1u);
    EXPECT_EQ(plan.chunks[0].count, s / 2);
    EXPECT_EQ(plan.local_subtasks, s - s / 2);
  }
}

}  // namespace
}  // namespace rtopex::sched
