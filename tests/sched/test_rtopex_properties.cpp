// Property sweeps of the RT-OPEX policy across seeds and budgets:
// determinism, conservation, the never-worse guarantee and migration
// bookkeeping.
#include <gtest/gtest.h>

#include "model/timing_model.hpp"
#include "sched/partitioned.hpp"
#include "sched/rt_opex.hpp"
#include "sim/workload.hpp"
#include "transport/transport.hpp"

namespace rtopex::sched {
namespace {

struct Case {
  std::uint64_t seed;
  int rtt_us;
  bool stochastic;
};

class RtOpexPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  std::vector<sim::SubframeWork> make_work() const {
    const auto [seed, rtt_us, stochastic] = GetParam();
    sim::WorkloadConfig cfg;
    cfg.num_basestations = 4;
    cfg.subframes_per_bs = 4000;
    cfg.seed = seed;
    if (stochastic) {
      transport::FronthaulModel fh;
      fh.fiber_km = (rtt_us - 165.0) / 5.0;
      const transport::CompositeTransport transport(
          fh, transport::cloud_params_10gbe());
      return sim::WorkloadGenerator(cfg, transport, model::paper_gpp_model())
          .generate();
    }
    const transport::FixedTransport transport(microseconds(rtt_us));
    return sim::WorkloadGenerator(cfg, transport, model::paper_gpp_model())
        .generate();
  }
};

TEST_P(RtOpexPropertyTest, DeterministicAndConserving) {
  const auto work = make_work();
  RtOpexConfig rc;
  rc.rtt_half = microseconds(GetParam().rtt_us);
  RtOpexScheduler a(4, rc), b(4, rc);
  const auto ma = a.run(work);
  const auto mb = b.run(work);

  // Determinism: identical metrics for identical inputs.
  EXPECT_EQ(ma.deadline_misses, mb.deadline_misses);
  EXPECT_EQ(ma.fft_subtasks_migrated, mb.fft_subtasks_migrated);
  EXPECT_EQ(ma.decode_subtasks_migrated, mb.decode_subtasks_migrated);
  EXPECT_EQ(ma.recoveries, mb.recoveries);

  // Conservation: every subframe is accounted for exactly once.
  EXPECT_EQ(ma.total_subframes, work.size());
  EXPECT_EQ(ma.deadline_misses, ma.dropped + ma.terminated);
  EXPECT_EQ(static_cast<std::size_t>(ma.processing_us_hist.count()) +
                ma.deadline_misses,
            ma.total_subframes);
  EXPECT_EQ(ma.processing_us_hist, mb.processing_us_hist);
  std::size_t per_bs = 0;
  for (const auto& bs : ma.per_bs) per_bs += bs.subframes;
  EXPECT_EQ(per_bs, work.size());

  // Migration bookkeeping stays within bounds.
  EXPECT_LE(ma.fft_subtasks_migrated, ma.fft_subtasks_total);
  EXPECT_LE(ma.decode_subtasks_migrated, ma.decode_subtasks_total);
  EXPECT_LE(ma.recoveries,
            ma.fft_subtasks_migrated + ma.decode_subtasks_migrated);
}

TEST_P(RtOpexPropertyTest, NeverWorseThanPartitionedBaseline) {
  const auto work = make_work();
  PartitionedConfig pc;
  pc.rtt_half = microseconds(GetParam().rtt_us);
  RtOpexConfig rc;
  rc.rtt_half = pc.rtt_half;
  const auto mp = PartitionedScheduler(4, pc).run(work);
  const auto mo = RtOpexScheduler(4, rc).run(work);
  EXPECT_LE(mo.deadline_misses, mp.deadline_misses);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBudgets, RtOpexPropertyTest,
    ::testing::Values(Case{1, 400, false}, Case{2, 450, false},
                      Case{3, 500, false}, Case{4, 550, false},
                      Case{5, 600, false}, Case{6, 650, false},
                      Case{7, 700, false}, Case{8, 500, true},
                      Case{9, 600, true}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_rtt" +
             std::to_string(info.param.rtt_us) +
             (info.param.stochastic ? "_jitter" : "_fixed");
    });

}  // namespace
}  // namespace rtopex::sched
